open Seed_util
open Seed_schema
open Seed_error

(* ------------------------------------------------------------------ *)
(* The copy-on-write root                                               *)
(*                                                                      *)
(* Everything a reader can observe — item table, indexes, extents, the  *)
(* version tree, the schema revisions — lives in one immutable [root]   *)
(* built from persistent maps. A mutation builds a new root sharing all *)
(* untouched branches with the old one; publishing it is a single       *)
(* atomic pointer store, and grabbing a consistent snapshot is a single *)
(* atomic load. Pinned roots stay valid forever: nothing reachable from *)
(* a root is ever mutated.                                              *)
(* ------------------------------------------------------------------ *)

type root = {
  r_schema : Schema.t;
  r_schemas : (int * Schema.t) list;
  r_items : Item.t Ident.Map.t;
  r_names : Ident.t Smap.t;
  r_children : Idmap.t;
  r_rels_of : Idmap.t;
  r_inheritors : Idmap.t;
  r_obj_extent : Ident.Set.t Smap.t;
  r_pattern_extent : Ident.Set.t Smap.t;
  r_rel_extent : Ident.Set.t Smap.t;
  r_rel_pattern_extent : Ident.Set.t Smap.t;
  r_dependent_extent : Ident.Set.t;
  r_text : Text_index.t option;  (* [None] = text indexing disabled *)
  r_versions : Versioning.t;
  r_current_base : Version_id.t option;
  r_retrieval_version : Version_id.t option;
  r_dirty : Ident.Set.t;
}

(* A materialized view of one saved version: the live ids per class and
   association, the name index, and every resolved state of that
   version, computed by a single reconstruction sweep over the item
   table. Once built, any read against the version is a lookup instead
   of an ancestor-chain resolution per item. Id lists are sorted deduped
   arrays: compact, cache-friendly, and O(log n) membership. *)
type version_extent = {
  ve_obj : (string, Ident.t array) Hashtbl.t;
  ve_pattern : (string, Ident.t array) Hashtbl.t;
  ve_rel : (string, Ident.t array) Hashtbl.t;
  ve_rel_pattern : (string, Ident.t array) Hashtbl.t;
  ve_dependents : Ident.t array;
  ve_names : (string, Ident.t) Hashtbl.t;
  ve_states : Item.state Ident.Tbl.t;
  mutable ve_text : Text_index.t option;
      (* trigram index over this version's string values, built lazily
         on the first text query against the view *)
  mutable ve_tick : int;  (* last access, for LRU eviction *)
}

type version_cache_stats = {
  vc_hits : int;
  vc_misses : int;
  vc_evictions : int;
}

type t = {
  mutable working : root;
  published : root Atomic.t;
  mutable txn_root : root option;
  gen : Ident.Gen.t;
  snapshot_count : int Atomic.t;
  commit_count : int Atomic.t;
  (* Handle-private version-extent LRU cache. A frozen handle gets its
     own empty cache, so concurrent readers never share these tables. *)
  version_cache : (Version_id.t, version_extent) Hashtbl.t;
  mutable version_cache_capacity : int;
  mutable version_cache_tick : int;
  mutable vc_hit_count : int;
  mutable vc_miss_count : int;
  mutable vc_eviction_count : int;
  mutable text_hit_count : int;  (* text predicates answered from the index *)
  mutable text_fallback_count : int;  (* text predicates that had to scan *)
  procedures : (string, proc) Hashtbl.t;
  mutable proc_depth : int;
  mutable transition_rules :
    (string * (t -> base:Version_id.t option -> (unit, Seed_error.t) result))
    list;
  (* registered by Persist.Session so Database.stats can surface the
     store's group-commit counters without the state layer holding a
     store *)
  mutable write_stats_source :
    (unit -> (int * Seed_storage.Commit_daemon.stats) list) option;
}

and proc = t -> Event.t -> (unit, Seed_error.t) result

let empty_root schema =
  {
    r_schema = schema;
    r_schemas = [ (Schema.revision schema, schema) ];
    r_items = Ident.Map.empty;
    r_names = Smap.empty;
    r_children = Idmap.empty;
    r_rels_of = Idmap.empty;
    r_inheritors = Idmap.empty;
    r_obj_extent = Smap.empty;
    r_pattern_extent = Smap.empty;
    r_rel_extent = Smap.empty;
    r_rel_pattern_extent = Smap.empty;
    r_dependent_extent = Ident.Set.empty;
    r_text = Some Text_index.empty;
    r_versions = Versioning.empty;
    r_current_base = None;
    r_retrieval_version = None;
    r_dirty = Ident.Set.empty;
  }

let create schema =
  let root = empty_root schema in
  {
    working = root;
    published = Atomic.make root;
    txn_root = None;
    gen = Ident.Gen.create ();
    snapshot_count = Atomic.make 0;
    commit_count = Atomic.make 0;
    version_cache = Hashtbl.create 8;
    version_cache_capacity = 8;
    version_cache_tick = 0;
    vc_hit_count = 0;
    vc_miss_count = 0;
    vc_eviction_count = 0;
    text_hit_count = 0;
    text_fallback_count = 0;
    procedures = Hashtbl.create 8;
    proc_depth = 0;
    transition_rules = [];
    write_stats_source = None;
  }

(* ------------------------------------------------------------------ *)
(* Roots, publication, snapshots                                        *)
(* ------------------------------------------------------------------ *)

let root t = t.working
let set_root t root = t.working <- root

let publish t =
  if t.txn_root = None then begin
    (* Schema closures are memoized behind [Lazy.t]; force them on the
       writer before the root escapes so no reader domain ever races on
       [Lazy.force]. *)
    Schema.prepare t.working.r_schema;
    List.iter (fun (_, s) -> Schema.prepare s) t.working.r_schemas;
    Atomic.set t.published t.working;
    Atomic.incr t.commit_count
  end

let published_root t = Atomic.get t.published

let freeze t =
  let root = Atomic.get t.published in
  Atomic.incr t.snapshot_count;
  {
    working = root;
    published = Atomic.make root;
    txn_root = None;
    gen = t.gen;
    snapshot_count = t.snapshot_count;
    commit_count = t.commit_count;
    version_cache = Hashtbl.create 8;
    version_cache_capacity = t.version_cache_capacity;
    version_cache_tick = 0;
    vc_hit_count = 0;
    vc_miss_count = 0;
    vc_eviction_count = 0;
    text_hit_count = 0;
    text_fallback_count = 0;
    procedures = t.procedures;
    proc_depth = 0;
    transition_rules = [];
    write_stats_source = t.write_stats_source;
  }

let snapshot_grabs t = Atomic.get t.snapshot_count
let commits_published t = Atomic.get t.commit_count
let set_write_stats_source t f = t.write_stats_source <- Some f

let write_stats t =
  match t.write_stats_source with None -> [] | Some f -> f ()

let begin_txn t = t.txn_root <- Some t.working

let commit_txn t =
  t.txn_root <- None;
  publish t

let rollback_txn t =
  match t.txn_root with
  | Some r ->
    t.working <- r;
    t.txn_root <- None
  | None -> ()

let txn_active t = t.txn_root <> None

(* ------------------------------------------------------------------ *)
(* Root-level field accessors                                           *)
(* ------------------------------------------------------------------ *)

let schema t = t.working.r_schema
let set_schema t s = t.working <- { t.working with r_schema = s }
let schemas t = t.working.r_schemas
let set_schemas t l = t.working <- { t.working with r_schemas = l }
let versions t = t.working.r_versions
let set_versions t v = t.working <- { t.working with r_versions = v }
let current_base t = t.working.r_current_base
let set_current_base t b = t.working <- { t.working with r_current_base = b }
let retrieval_version t = t.working.r_retrieval_version

let set_retrieval_version t v =
  t.working <- { t.working with r_retrieval_version = v }

let gen t = t.gen
let fresh_id t = Ident.Gen.next t.gen

let find_item t id = Ident.Map.find_opt id t.working.r_items

let find_item_res t id =
  match find_item t id with
  | Some it -> Ok it
  | None -> fail (Unknown_item (Ident.to_string id))

let item_count t = Ident.Map.cardinal t.working.r_items

let iter_items t f = Ident.Map.iter (fun _ it -> f it) t.working.r_items

let fold_items t ~init ~f =
  Ident.Map.fold (fun _ it acc -> f acc it) t.working.r_items init

(* ------------------------------------------------------------------ *)
(* Class / association extents                                          *)
(*                                                                      *)
(* Invariant: after every replacement of an item's current state the    *)
(* item belongs to exactly the extent matching that state —             *)
(* [r_obj_extent cls] holds the live normal independent objects         *)
(* classified [cls], [r_pattern_extent cls] the live pattern objects,   *)
(* [r_rel_extent assoc] and [r_rel_pattern_extent assoc] the live       *)
(* (pattern) relationships, and [r_dependent_extent] the live           *)
(* sub-objects. Deleted items and items with no current state are in no *)
(* extent. Re-classification moves the item between class extents,      *)
(* deletion drops it, and a pattern flip (never produced today, but     *)
(* handled uniformly) would move it between the normal and pattern      *)
(* maps. [replace_state] maintains all of this in one place.            *)
(* ------------------------------------------------------------------ *)

(* The text index covers exactly the live object states (independent or
   dependent, patterns included) carrying a string value; the class path
   — the full dotted path for sub-objects — is the posting's attribute
   path. This predicate is the single source of truth for what gets
   indexed: the incremental hooks, the wholesale rebuilds, and the
   consistency check in the soak harness all go through it. *)
let text_doc_of_state (item : Item.t) (state : Item.state option) =
  match (item.Item.body, state) with
  | (Item.Independent | Item.Dependent _), Some (Item.Obj o)
    when not o.Item.deleted -> (
    match o.Item.value with
    | Some (Value.String s) -> Some (o.Item.cls, s)
    | Some _ | None -> None)
  | _ -> None

let root_text_index r (item : Item.t) (state : Item.state option) =
  match r.r_text with
  | None -> r
  | Some tx -> (
    match text_doc_of_state item state with
    | Some (path, s) ->
      { r with r_text = Some (Text_index.add_doc tx item.Item.id ~path s) }
    | None -> r)

let root_text_unindex r (item : Item.t) (state : Item.state option) =
  match r.r_text with
  | None -> r
  | Some tx -> (
    match text_doc_of_state item state with
    | Some (_, s) ->
      { r with r_text = Some (Text_index.remove_doc tx item.Item.id s) }
    | None -> r)

(* Enter [state]'s extent membership for [item] into [r]; no-op for
   deleted or absent states. *)
let root_index_state r (item : Item.t) (state : Item.state option) =
  let r = root_text_index r item state in
  match state with
  | None -> r
  | Some s when Item.state_deleted s -> r
  | Some (Item.Obj o) -> (
    match item.body with
    | Item.Independent ->
      let r =
        if o.Item.pattern then
          { r with r_pattern_extent = Smap.add_id r.r_pattern_extent o.Item.cls item.id }
        else { r with r_obj_extent = Smap.add_id r.r_obj_extent o.Item.cls item.id }
      in
      (match o.Item.name with
      | Some n -> { r with r_names = Smap.add n item.id r.r_names }
      | None -> r)
    | Item.Dependent _ ->
      { r with r_dependent_extent = Ident.Set.add item.id r.r_dependent_extent }
    | Item.Relationship -> r)
  | Some (Item.Rel rel) -> (
    match item.body with
    | Item.Relationship ->
      if rel.Item.rel_pattern then
        {
          r with
          r_rel_pattern_extent =
            Smap.add_id r.r_rel_pattern_extent rel.Item.assoc item.id;
        }
      else { r with r_rel_extent = Smap.add_id r.r_rel_extent rel.Item.assoc item.id }
    | Item.Independent | Item.Dependent _ -> r)

(* Drop [state]'s extent membership for [item] from [r]. *)
let root_unindex_state r (item : Item.t) (state : Item.state option) =
  let r = root_text_unindex r item state in
  match state with
  | None -> r
  | Some (Item.Obj o) -> (
    match item.body with
    | Item.Independent ->
      let r =
        if Item.state_deleted (Item.Obj o) then r
        else if o.Item.pattern then
          {
            r with
            r_pattern_extent = Smap.remove_id r.r_pattern_extent o.Item.cls item.id;
          }
        else
          { r with r_obj_extent = Smap.remove_id r.r_obj_extent o.Item.cls item.id }
      in
      (match o.Item.name with
      | Some n when (match Smap.find_opt n r.r_names with
                    | Some id -> Ident.equal id item.id
                    | None -> false) ->
        { r with r_names = Smap.remove n r.r_names }
      | Some _ | None -> r)
    | Item.Dependent _ ->
      { r with r_dependent_extent = Ident.Set.remove item.id r.r_dependent_extent }
    | Item.Relationship -> r)
  | Some (Item.Rel rel) -> (
    match item.body with
    | Item.Relationship ->
      if Item.state_deleted (Item.Rel rel) then r
      else if rel.Item.rel_pattern then
        {
          r with
          r_rel_pattern_extent =
            Smap.remove_id r.r_rel_pattern_extent rel.Item.assoc item.id;
        }
      else
        { r with r_rel_extent = Smap.remove_id r.r_rel_extent rel.Item.assoc item.id }
    | Item.Independent | Item.Dependent _ -> r)

let obj_extent_ids t cls = Smap.ids t.working.r_obj_extent cls
let pattern_extent_ids t cls = Smap.ids t.working.r_pattern_extent cls
let rel_extent_ids t assoc = Smap.ids t.working.r_rel_extent assoc
let rel_pattern_extent_ids t assoc = Smap.ids t.working.r_rel_pattern_extent assoc
let all_obj_extent_ids t = Smap.all_ids t.working.r_obj_extent
let all_pattern_extent_ids t = Smap.all_ids t.working.r_pattern_extent
let all_rel_extent_ids t = Smap.all_ids t.working.r_rel_extent
let all_rel_pattern_extent_ids t = Smap.all_ids t.working.r_rel_pattern_extent
let dependent_extent_ids t = Ident.Set.elements t.working.r_dependent_extent
let live_dependent_count t = Ident.Set.cardinal t.working.r_dependent_extent

let obj_extent_count t cls = Ident.Set.cardinal (Smap.set t.working.r_obj_extent cls)
let pattern_extent_count t cls =
  Ident.Set.cardinal (Smap.set t.working.r_pattern_extent cls)
let rel_extent_count t assoc =
  Ident.Set.cardinal (Smap.set t.working.r_rel_extent assoc)
let rel_pattern_extent_count t assoc =
  Ident.Set.cardinal (Smap.set t.working.r_rel_pattern_extent assoc)

let all_live_ids t =
  all_obj_extent_ids t @ all_pattern_extent_ids t @ all_rel_extent_ids t
  @ all_rel_pattern_extent_ids t @ dependent_extent_ids t

(* ------------------------------------------------------------------ *)
(* Item mutation (new roots)                                            *)
(* ------------------------------------------------------------------ *)

let add_item t (item : Item.t) =
  let r = t.working in
  let r = { r with r_items = Ident.Map.add item.id item r.r_items } in
  let r = root_index_state r item item.current in
  let r =
    match item.body with
    | Item.Dependent { parent; _ } ->
      { r with r_children = Idmap.add r.r_children parent item.id }
    | Item.Independent -> r
    | Item.Relationship -> (
      match Item.rel_state item with
      | Some { endpoints; _ } ->
        {
          r with
          r_rels_of =
            List.fold_left (fun m e -> Idmap.add m e item.id) r.r_rels_of endpoints;
        }
      | None -> r)
  in
  t.working <- r

let add_loaded_item t (item : Item.t) =
  (* Like [add_item] but suitable for items loaded from storage: an item
     may exist only in history (current = None), in which case the
     relationship index must still cover its historical endpoints. Name,
     inheritor, and extent indexes are rebuilt wholesale afterwards. *)
  let r = t.working in
  let r = { r with r_items = Ident.Map.add item.id item r.r_items } in
  let r =
    match item.body with
    | Item.Dependent { parent; _ } ->
      { r with r_children = Idmap.add r.r_children parent item.id }
    | Item.Independent -> r
    | Item.Relationship -> (
      let state =
        match item.current with
        | Some s -> Some s
        | None -> Item.any_history_state item
      in
      match state with
      | Some (Item.Rel { endpoints; _ }) ->
        {
          r with
          r_rels_of =
            List.fold_left (fun m e -> Idmap.add m e item.id) r.r_rels_of endpoints;
        }
      | Some (Item.Obj _) | None -> r)
  in
  t.working <- r

let remove_item t (item : Item.t) =
  let r = t.working in
  let item =
    match Ident.Map.find_opt item.Item.id r.r_items with
    | Some it -> it
    | None -> item
  in
  let r = root_unindex_state r item item.current in
  let r = { r with r_items = Ident.Map.remove item.id r.r_items } in
  let r =
    match item.body with
    | Item.Dependent { parent; _ } ->
      { r with r_children = Idmap.remove r.r_children parent item.id }
    | Item.Independent -> r
    | Item.Relationship -> (
      match Item.rel_state item with
      | Some { endpoints; _ } ->
        {
          r with
          r_rels_of =
            List.fold_left
              (fun m e -> Idmap.remove m e item.id)
              r.r_rels_of endpoints;
        }
      | None -> r)
  in
  t.working <- { r with r_dirty = Ident.Set.remove item.id r.r_dirty }

let replace_state t id new_state =
  match Ident.Map.find_opt id t.working.r_items with
  | None -> ()
  | Some item ->
    let r = root_unindex_state t.working item item.current in
    let item' = Item.with_current item new_state in
    let r = { r with r_items = Ident.Map.add id item' r.r_items } in
    t.working <- root_index_state r item' new_state

let unsafe_put_item t (item : Item.t) =
  (* Replace the stored record without any index maintenance — test
     support for tampering with an item behind the API's back. *)
  t.working <-
    { t.working with r_items = Ident.Map.add item.Item.id item t.working.r_items }

let map_items t f =
  let r = t.working in
  t.working <- { r with r_items = Ident.Map.map f r.r_items }

(* ------------------------------------------------------------------ *)
(* The delta set                                                        *)
(* ------------------------------------------------------------------ *)

let mark_dirty t (item : Item.t) =
  match Ident.Map.find_opt item.Item.id t.working.r_items with
  | Some it when not it.Item.dirty ->
    t.working <-
      {
        t.working with
        r_items = Ident.Map.add it.Item.id (Item.with_dirty it true) t.working.r_items;
        r_dirty = Ident.Set.add it.Item.id t.working.r_dirty;
      }
  | Some _ | None -> ()

let dirty_ids t = Ident.Set.elements t.working.r_dirty

let take_dirty t =
  let r = t.working in
  let items =
    Ident.Set.fold
      (fun id acc ->
        match Ident.Map.find_opt id r.r_items with
        | Some it when it.Item.dirty -> it :: acc
        | Some _ | None -> acc)
      r.r_dirty []
  in
  t.working <- { r with r_dirty = Ident.Set.empty };
  items

let clear_dirty t =
  let r = t.working in
  let items =
    Ident.Set.fold
      (fun id m ->
        match Ident.Map.find_opt id m with
        | Some it -> Ident.Map.add id (Item.with_dirty it false) m
        | None -> m)
      r.r_dirty r.r_items
  in
  t.working <- { r with r_items = items; r_dirty = Ident.Set.empty }

let rebuild_dirty t =
  let r = t.working in
  let dirty =
    Ident.Map.fold
      (fun id it acc -> if it.Item.dirty then Ident.Set.add id acc else acc)
      r.r_items Ident.Set.empty
  in
  t.working <- { r with r_dirty = dirty }

let stamp_dirty t vid =
  let r = t.working in
  let count = ref 0 in
  let items =
    Ident.Set.fold
      (fun id m ->
        match Ident.Map.find_opt id m with
        | Some it when it.Item.dirty ->
          incr count;
          Ident.Map.add id (Item.stamp it vid) m
        | Some _ | None -> m)
      r.r_dirty r.r_items
  in
  t.working <- { r with r_items = items; r_dirty = Ident.Set.empty };
  !count

let drop_version_stamps t vid =
  let r = t.working in
  t.working <- { r with r_items = Ident.Map.map (fun it -> Item.drop_stamp it vid) r.r_items }

(* ------------------------------------------------------------------ *)
(* Identity indexes                                                     *)
(* ------------------------------------------------------------------ *)

let children_ids t id = Idmap.ids t.working.r_children id
let rels_ids t id = Idmap.ids t.working.r_rels_of id
let inheritor_ids t id = Idmap.ids t.working.r_inheritors id

let index_inheritor t ~pattern ~inheritor =
  t.working <-
    { t.working with r_inheritors = Idmap.add t.working.r_inheritors pattern inheritor }

let unindex_inheritor t ~pattern ~inheritor =
  t.working <-
    {
      t.working with
      r_inheritors = Idmap.remove t.working.r_inheritors pattern inheritor;
    }

let index_name t name id =
  t.working <- { t.working with r_names = Smap.add name id t.working.r_names }

let unindex_name t name =
  t.working <- { t.working with r_names = Smap.remove name t.working.r_names }

let find_id_by_name t name = Smap.find_opt name t.working.r_names

let rebuild_state_indexes t =
  let r = t.working in
  let r =
    {
      r with
      r_names = Smap.empty;
      r_inheritors = Idmap.empty;
      r_obj_extent = Smap.empty;
      r_pattern_extent = Smap.empty;
      r_rel_extent = Smap.empty;
      r_rel_pattern_extent = Smap.empty;
      r_dependent_extent = Ident.Set.empty;
      (* reset but preserve enabledness *)
      r_text = Option.map (fun _ -> Text_index.empty) r.r_text;
    }
  in
  let r =
    Ident.Map.fold
      (fun _ it r ->
        let r = root_index_state r it it.Item.current in
        match (it.Item.body, it.Item.current) with
        | Item.Independent, Some (Item.Obj o) when not o.Item.deleted ->
          List.fold_left
            (fun r p -> { r with r_inheritors = Idmap.add r.r_inheritors p it.Item.id })
            r o.Item.inherits
        | _ -> r)
      r.r_items r
  in
  t.working <- r

(* ------------------------------------------------------------------ *)
(* Materialized version views                                           *)
(*                                                                      *)
(* A version's view is a pure function of the item histories and the    *)
(* version tree, both of which change only at well-known points: a new  *)
(* snapshot stamps a {e fresh} label (never a cached one — labels are   *)
(* never reused), version deletion is leaf-only and drops exactly that  *)
(* label's stamps, and a load rebuilds the whole state. A cached extent *)
(* therefore stays valid until its own version is deleted; the cache is *)
(* invalidated per label on delete and starts empty after load/restore  *)
(* (and in every frozen handle — the cache is private to its handle, so *)
(* reader domains never contend on it). Capacity is configurable        *)
(* ({!set_version_cache_capacity}); 0 disables materialization and      *)
(* readers fall back to the resolution scan.                            *)
(* ------------------------------------------------------------------ *)

let sorted_ids l =
  let a = Array.of_list l in
  Array.sort Ident.compare a;
  (* dedupe in place: build sweeps each item once so duplicates should
     not occur, but the extent promises a set *)
  let n = Array.length a in
  if n = 0 then a
  else begin
    let w = ref 1 in
    for i = 1 to n - 1 do
      if not (Ident.equal a.(i) a.(!w - 1)) then begin
        a.(!w) <- a.(i);
        incr w
      end
    done;
    if !w = n then a else Array.sub a 0 !w
  end

let finalize_id_lists src =
  let dst = Hashtbl.create (Hashtbl.length src) in
  Hashtbl.iter (fun k l -> Hashtbl.replace dst k (sorted_ids l)) src;
  dst

let ve_push tbl key id =
  Hashtbl.replace tbl key
    (id :: (match Hashtbl.find_opt tbl key with Some l -> l | None -> []))

let build_version_extent t vid =
  let obj = Hashtbl.create 16 in
  let pattern = Hashtbl.create 4 in
  let rel = Hashtbl.create 16 in
  let rel_pattern = Hashtbl.create 4 in
  let dependents = ref [] in
  let names = Hashtbl.create 64 in
  let states = Ident.Tbl.create 256 in
  let versions = t.working.r_versions in
  iter_items t (fun it ->
      match Versioning.state_at versions it vid with
      | None -> ()
      | Some s ->
        Ident.Tbl.replace states it.Item.id s;
        if not (Item.state_deleted s) then begin
          match (it.Item.body, s) with
          | Item.Independent, Item.Obj o ->
            let tbl = if o.Item.pattern then pattern else obj in
            ve_push tbl o.Item.cls it.Item.id;
            (match o.Item.name with
            | Some n -> Hashtbl.replace names n it.Item.id
            | None -> ())
          | Item.Dependent _, Item.Obj _ -> dependents := it.Item.id :: !dependents
          | Item.Relationship, Item.Rel r ->
            let tbl = if r.Item.rel_pattern then rel_pattern else rel in
            ve_push tbl r.Item.assoc it.Item.id
          | _ -> ()
        end);
  {
    ve_obj = finalize_id_lists obj;
    ve_pattern = finalize_id_lists pattern;
    ve_rel = finalize_id_lists rel;
    ve_rel_pattern = finalize_id_lists rel_pattern;
    ve_dependents = sorted_ids !dependents;
    ve_names = names;
    ve_states = states;
    ve_text = None;
    ve_tick = 0;
  }

let evict_version_lru t =
  let victim =
    Hashtbl.fold
      (fun vid ve acc ->
        match acc with
        | Some (_, best) when best <= ve.ve_tick -> acc
        | _ -> Some (vid, ve.ve_tick))
      t.version_cache None
  in
  match victim with
  | Some (vid, _) ->
    Hashtbl.remove t.version_cache vid;
    t.vc_eviction_count <- t.vc_eviction_count + 1
  | None -> ()

let version_extent t vid =
  if
    t.version_cache_capacity <= 0
    || not (Versioning.mem t.working.r_versions vid)
  then None
  else begin
    t.version_cache_tick <- t.version_cache_tick + 1;
    match Hashtbl.find_opt t.version_cache vid with
    | Some ve ->
      ve.ve_tick <- t.version_cache_tick;
      t.vc_hit_count <- t.vc_hit_count + 1;
      Some ve
    | None ->
      t.vc_miss_count <- t.vc_miss_count + 1;
      let ve = build_version_extent t vid in
      ve.ve_tick <- t.version_cache_tick;
      Hashtbl.replace t.version_cache vid ve;
      while Hashtbl.length t.version_cache > t.version_cache_capacity do
        evict_version_lru t
      done;
      Some ve
  end

let cached_version_extent t vid = Hashtbl.find_opt t.version_cache vid

let invalidate_version_cache t vid = Hashtbl.remove t.version_cache vid
let clear_version_cache t = Hashtbl.reset t.version_cache

let set_version_cache_capacity t n =
  t.version_cache_capacity <- max 0 n;
  while Hashtbl.length t.version_cache > t.version_cache_capacity do
    evict_version_lru t
  done

let version_cache_capacity t = t.version_cache_capacity

let version_cache_stats t =
  {
    vc_hits = t.vc_hit_count;
    vc_misses = t.vc_miss_count;
    vc_evictions = t.vc_eviction_count;
  }

let ve_ids tbl key =
  match Hashtbl.find_opt tbl key with Some a -> Array.to_list a | None -> []

let ve_all_ids tbl =
  Hashtbl.fold (fun _ a acc -> Array.fold_left (fun acc id -> id :: acc) acc a) tbl []

let ve_obj_ids ve cls = ve_ids ve.ve_obj cls
let ve_pattern_ids ve cls = ve_ids ve.ve_pattern cls
let ve_rel_ids ve assoc = ve_ids ve.ve_rel assoc
let ve_rel_pattern_ids ve assoc = ve_ids ve.ve_rel_pattern assoc
let ve_all_obj_ids ve = ve_all_ids ve.ve_obj
let ve_all_pattern_ids ve = ve_all_ids ve.ve_pattern
let ve_all_rel_ids ve = ve_all_ids ve.ve_rel
let ve_dependent_ids ve = Array.to_list ve.ve_dependents

let sorted_mem a id =
  let lo = ref 0 and hi = ref (Array.length a) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = Ident.compare id a.(mid) in
    if c = 0 then found := true
    else if c < 0 then hi := mid
    else lo := mid + 1
  done;
  !found

let ve_class_mem ve cls id =
  match Hashtbl.find_opt ve.ve_obj cls with
  | Some a -> sorted_mem a id
  | None -> false

let ve_obj_count ve cls =
  match Hashtbl.find_opt ve.ve_obj cls with Some a -> Array.length a | None -> 0

let ve_rel_count ve assoc =
  match Hashtbl.find_opt ve.ve_rel assoc with Some a -> Array.length a | None -> 0

let ve_find_name ve name = Hashtbl.find_opt ve.ve_names name
let ve_state ve id = Ident.Tbl.find_opt ve.ve_states id

(* ------------------------------------------------------------------ *)
(* Text index                                                           *)
(*                                                                      *)
(* The trigram index lives in the root next to the extents and is       *)
(* maintained by the same hooks ([root_index_state] /                   *)
(* [root_unindex_state]), so every state replacement — create, value    *)
(* update, logical delete, re-classification, rollback by root swap —   *)
(* keeps it exact, and [rebuild_state_indexes] rebuilds it wholesale on *)
(* branch switch and load. Version views get their own frozen index,    *)
(* built lazily from the materialized states and cached on the          *)
(* version extent (handle-private, like the extent itself).             *)
(* ------------------------------------------------------------------ *)

let text_index t = t.working.r_text
let text_index_enabled t = t.working.r_text <> None

let build_text_index items =
  Ident.Map.fold
    (fun _ (it : Item.t) tx ->
      match text_doc_of_state it it.Item.current with
      | Some (path, s) -> Text_index.add_doc tx it.Item.id ~path s
      | None -> tx)
    items Text_index.empty

let rebuilt_text_index t = build_text_index t.working.r_items

let set_text_index_enabled t on =
  match (t.working.r_text, on) with
  | Some _, true | None, false -> ()
  | Some _, false -> t.working <- { t.working with r_text = None }
  | None, true ->
    t.working <-
      { t.working with r_text = Some (build_text_index t.working.r_items) }

let text_stats t = Option.map Text_index.stats t.working.r_text
let note_text_hit t = t.text_hit_count <- t.text_hit_count + 1
let note_text_fallback t = t.text_fallback_count <- t.text_fallback_count + 1
let text_counters t = (t.text_hit_count, t.text_fallback_count)

let ve_text_index ve =
  match ve.ve_text with
  | Some tx -> tx
  | None ->
    (* mirror [text_doc_of_state]: any item holding an [Obj] state has a
       non-relationship body, so the body check is implied here *)
    let tx =
      Ident.Tbl.fold
        (fun id s tx ->
          match s with
          | Item.Obj o when not o.Item.deleted -> (
            match o.Item.value with
            | Some (Value.String str) -> Text_index.add_doc tx id ~path:o.Item.cls str
            | Some _ | None -> tx)
          | Item.Obj _ | Item.Rel _ -> tx)
        ve.ve_states Text_index.empty
    in
    ve.ve_text <- Some tx;
    tx

(* ------------------------------------------------------------------ *)
(* Registries (handle-level, not part of the root)                      *)
(* ------------------------------------------------------------------ *)

let register_procedure t name p = Hashtbl.replace t.procedures name p

let find_procedure t name =
  match Hashtbl.find_opt t.procedures name with
  | Some p -> Ok p
  | None -> fail (Unknown_procedure name)

let proc_depth t = t.proc_depth
let set_proc_depth t d = t.proc_depth <- d
let transition_rules t = t.transition_rules
let set_transition_rules t l = t.transition_rules <- l

let schema_at_revision t rev = List.assoc_opt rev t.working.r_schemas
