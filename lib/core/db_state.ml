open Seed_util
open Seed_schema
open Seed_error

module Name_index = Seed_storage.Btree.Make (String)

type proc = t -> Event.t -> (unit, Seed_error.t) result

(* A materialized view of one saved version: the live ids per class and
   association, the name index, and every resolved state of that
   version, computed by a single reconstruction sweep over the item
   table. Once built, any read against the version is a table lookup
   instead of an ancestor-chain resolution per item. *)
and version_extent = {
  ve_obj : (string, Ident.t list) Hashtbl.t;
  ve_pattern : (string, Ident.t list) Hashtbl.t;
  ve_rel : (string, Ident.t list) Hashtbl.t;
  ve_rel_pattern : (string, Ident.t list) Hashtbl.t;
  mutable ve_dependents : Ident.t list;
  ve_names : (string, Ident.t) Hashtbl.t;
  ve_states : Item.state Ident.Tbl.t;
  mutable ve_tick : int;  (* last access, for LRU eviction *)
}

and version_cache_stats = {
  vc_hits : int;
  vc_misses : int;
  vc_evictions : int;
}

and t = {
  mutable schema : Schema.t;
  mutable schemas : (int * Schema.t) list;
  items : Item.t Ident.Tbl.t;
  gen : Ident.Gen.t;
  name_index : Ident.t Name_index.t;
  children : Ident.Set.t ref Ident.Tbl.t;
  rels_of : Ident.Set.t ref Ident.Tbl.t;
  inheritors : Ident.Set.t ref Ident.Tbl.t;
  obj_extent : (string, Ident.Hset.t) Hashtbl.t;
  pattern_extent : (string, Ident.Hset.t) Hashtbl.t;
  rel_extent : (string, Ident.Hset.t) Hashtbl.t;
  rel_pattern_extent : (string, Ident.Hset.t) Hashtbl.t;
  dependent_extent : Ident.Hset.t;
  versions : Versioning.t;
  version_cache : (Version_id.t, version_extent) Hashtbl.t;
  mutable version_cache_capacity : int;
  mutable version_cache_tick : int;
  mutable vc_hit_count : int;
  mutable vc_miss_count : int;
  mutable vc_eviction_count : int;
  mutable current_base : Version_id.t option;
  mutable retrieval_version : Version_id.t option;
  dirty_set : Ident.Hset.t;
  procedures : (string, proc) Hashtbl.t;
  mutable proc_depth : int;
  mutable transition_rules :
    (string * (t -> base:Version_id.t option -> (unit, Seed_error.t) result))
    list;
  mutable txn_undo : (unit -> unit) list option;
}

let create schema =
  {
    schema;
    schemas = [ (Schema.revision schema, schema) ];
    items = Ident.Tbl.create 256;
    gen = Ident.Gen.create ();
    name_index = Name_index.create ();
    children = Ident.Tbl.create 64;
    rels_of = Ident.Tbl.create 64;
    inheritors = Ident.Tbl.create 16;
    obj_extent = Hashtbl.create 16;
    pattern_extent = Hashtbl.create 16;
    rel_extent = Hashtbl.create 16;
    rel_pattern_extent = Hashtbl.create 16;
    dependent_extent = Ident.Hset.create 64;
    versions = Versioning.create ();
    version_cache = Hashtbl.create 8;
    version_cache_capacity = 8;
    version_cache_tick = 0;
    vc_hit_count = 0;
    vc_miss_count = 0;
    vc_eviction_count = 0;
    current_base = None;
    retrieval_version = None;
    dirty_set = Ident.Hset.create 64;
    procedures = Hashtbl.create 8;
    proc_depth = 0;
    transition_rules = [];
    txn_undo = None;
  }

let txn_active t = t.txn_undo <> None

let log_undo t f =
  match t.txn_undo with
  | None -> ()
  | Some fs -> t.txn_undo <- Some (f :: fs)

let find_item t id = Ident.Tbl.find_opt t.items id

let find_item_res t id =
  match find_item t id with
  | Some it -> Ok it
  | None -> fail (Unknown_item (Ident.to_string id))

let fresh_id t = Ident.Gen.next t.gen

let multi_add tbl key v =
  match Ident.Tbl.find_opt tbl key with
  | Some cell -> cell := Ident.Set.add v !cell
  | None -> Ident.Tbl.replace tbl key (ref (Ident.Set.singleton v))

let multi_remove tbl key v =
  match Ident.Tbl.find_opt tbl key with
  | Some cell -> cell := Ident.Set.remove v !cell
  | None -> ()

let multi_get tbl key =
  match Ident.Tbl.find_opt tbl key with
  | Some cell -> Ident.Set.elements !cell
  | None -> []

let index_name t name id = Name_index.insert t.name_index name id
let unindex_name t name = ignore (Name_index.remove t.name_index name)

(* ------------------------------------------------------------------ *)
(* Class / association extents                                          *)
(*                                                                      *)
(* Invariant: after every mutation of an item's current state the item  *)
(* belongs to exactly the extent matching that state — [obj_extent cls] *)
(* holds the live normal independent objects classified [cls],          *)
(* [pattern_extent cls] the live pattern objects, [rel_extent assoc]    *)
(* and [rel_pattern_extent assoc] the live (pattern) relationships, and *)
(* [dependent_extent] the live sub-objects. Deleted items and items     *)
(* with no current state are in no extent. Re-classification moves the  *)
(* item between class extents, deletion drops it, and a pattern flip    *)
(* (never produced today, but handled uniformly) would move it between  *)
(* the normal and pattern tables.                                       *)
(* ------------------------------------------------------------------ *)

let extent_get tbl key =
  match Hashtbl.find_opt tbl key with
  | Some set -> set
  | None ->
    let set = Ident.Hset.create 16 in
    Hashtbl.add tbl key set;
    set

let extent_ids tbl key =
  match Hashtbl.find_opt tbl key with
  | Some set -> Ident.Hset.elements set
  | None -> []

let all_extent_ids tbl =
  Hashtbl.fold (fun _ set acc -> Ident.Hset.fold List.cons set acc) tbl []

(* Add the item's current state to its extent. Called with the state the
   item is about to expose; a no-op for deleted or stateless items. *)
let index_extent t (item : Item.t) =
  match item.current with
  | None -> ()
  | Some s when Item.state_deleted s -> ()
  | Some (Item.Obj o) -> (
    match item.body with
    | Item.Independent ->
      let tbl = if o.Item.pattern then t.pattern_extent else t.obj_extent in
      Ident.Hset.add (extent_get tbl o.Item.cls) item.id
    | Item.Dependent _ -> Ident.Hset.add t.dependent_extent item.id
    | Item.Relationship -> ())
  | Some (Item.Rel r) -> (
    match item.body with
    | Item.Relationship ->
      let tbl =
        if r.Item.rel_pattern then t.rel_pattern_extent else t.rel_extent
      in
      Ident.Hset.add (extent_get tbl r.Item.assoc) item.id
    | Item.Independent | Item.Dependent _ -> ())

(* Remove the item's current-state extent membership. Must be called
   BEFORE the current state is overwritten. *)
let unindex_extent t (item : Item.t) =
  match item.current with
  | None -> ()
  | Some (Item.Obj o) -> (
    match item.body with
    | Item.Independent ->
      let tbl = if o.Item.pattern then t.pattern_extent else t.obj_extent in
      (match Hashtbl.find_opt tbl o.Item.cls with
      | Some set -> Ident.Hset.remove set item.id
      | None -> ())
    | Item.Dependent _ -> Ident.Hset.remove t.dependent_extent item.id
    | Item.Relationship -> ())
  | Some (Item.Rel r) -> (
    match item.body with
    | Item.Relationship ->
      let tbl =
        if r.Item.rel_pattern then t.rel_pattern_extent else t.rel_extent
      in
      (match Hashtbl.find_opt tbl r.Item.assoc with
      | Some set -> Ident.Hset.remove set item.id
      | None -> ())
    | Item.Independent | Item.Dependent _ -> ())

let obj_extent_ids t cls = extent_ids t.obj_extent cls
let pattern_extent_ids t cls = extent_ids t.pattern_extent cls
let rel_extent_ids t assoc = extent_ids t.rel_extent assoc
let rel_pattern_extent_ids t assoc = extent_ids t.rel_pattern_extent assoc
let all_obj_extent_ids t = all_extent_ids t.obj_extent
let all_pattern_extent_ids t = all_extent_ids t.pattern_extent
let all_rel_extent_ids t = all_extent_ids t.rel_extent
let all_rel_pattern_extent_ids t = all_extent_ids t.rel_pattern_extent
let dependent_extent_ids t = Ident.Hset.elements t.dependent_extent
let live_dependent_count t = Ident.Hset.cardinal t.dependent_extent

let all_live_ids t =
  all_obj_extent_ids t @ all_pattern_extent_ids t @ all_rel_extent_ids t
  @ all_rel_pattern_extent_ids t @ dependent_extent_ids t

let add_item t (item : Item.t) =
  Ident.Tbl.replace t.items item.id item;
  index_extent t item;
  (match item.body with
  | Item.Dependent { parent; _ } -> multi_add t.children parent item.id
  | Item.Independent -> (
    match Item.obj_state item with
    | Some { name = Some n; _ } -> index_name t n item.id
    | Some _ | None -> ())
  | Item.Relationship -> (
    match Item.rel_state item with
    | Some { endpoints; _ } ->
      List.iter (fun e -> multi_add t.rels_of e item.id) endpoints
    | None -> ()))

let add_loaded_item t (item : Item.t) =
  (* Like [add_item] but suitable for items loaded from storage: an item
     may exist only in history (current = None), in which case the
     relationship index must still cover its historical endpoints. Name,
     inheritor, and extent indexes are rebuilt wholesale afterwards. *)
  Ident.Tbl.replace t.items item.id item;
  (match item.body with
  | Item.Dependent { parent; _ } -> multi_add t.children parent item.id
  | Item.Independent -> ()
  | Item.Relationship ->
    let state =
      match item.current with
      | Some s -> Some s
      | None -> Item.any_history_state item
    in
    (match state with
    | Some (Item.Rel { endpoints; _ }) ->
      List.iter (fun e -> multi_add t.rels_of e item.id) endpoints
    | Some (Item.Obj _) | None -> ()))

let remove_item t (item : Item.t) =
  unindex_extent t item;
  Ident.Tbl.remove t.items item.id;
  (match item.body with
  | Item.Dependent { parent; _ } -> multi_remove t.children parent item.id
  | Item.Independent -> (
    match Item.obj_state item with
    | Some { name = Some n; _ } -> unindex_name t n
    | Some _ | None -> ())
  | Item.Relationship -> (
    match Item.rel_state item with
    | Some { endpoints; _ } ->
      List.iter (fun e -> multi_remove t.rels_of e item.id) endpoints
    | None -> ()));
  Ident.Hset.remove t.dirty_set item.id

let mark_dirty t (item : Item.t) =
  if not item.dirty then begin
    item.dirty <- true;
    Ident.Hset.add t.dirty_set item.id
  end

let take_dirty t =
  let ids = Ident.Hset.elements t.dirty_set in
  Ident.Hset.clear t.dirty_set;
  List.filter_map
    (fun id ->
      match find_item t id with
      | Some it when it.Item.dirty -> Some it
      | Some _ | None -> None)
    ids

let clear_dirty t =
  Ident.Hset.iter
    (fun id ->
      match find_item t id with
      | Some it -> it.Item.dirty <- false
      | None -> ())
    t.dirty_set;
  Ident.Hset.clear t.dirty_set

let dirty_ids t = Ident.Hset.elements t.dirty_set

let children_ids t id = multi_get t.children id
let rels_ids t id = multi_get t.rels_of id
let inheritor_ids t id = multi_get t.inheritors id

let index_inheritor t ~pattern ~inheritor = multi_add t.inheritors pattern inheritor

let unindex_inheritor t ~pattern ~inheritor =
  multi_remove t.inheritors pattern inheritor

let iter_items t f = Ident.Tbl.iter (fun _ it -> f it) t.items

let fold_items t ~init ~f =
  Ident.Tbl.fold (fun _ it acc -> f acc it) t.items init

(* ------------------------------------------------------------------ *)
(* Materialized version views                                           *)
(*                                                                      *)
(* A version's view is a pure function of the item histories and the    *)
(* version tree, both of which change only at well-known points: a new  *)
(* snapshot stamps a {e fresh} label (never a cached one — labels are   *)
(* never reused), version deletion is leaf-only and drops exactly that  *)
(* label's stamps, and a load rebuilds the whole state. A cached extent *)
(* therefore stays valid until its own version is deleted; the cache is *)
(* invalidated per label on delete and starts empty after load/restore. *)
(* Capacity is configurable ({!set_version_cache_capacity}); 0 disables *)
(* materialization and readers fall back to the resolution scan.        *)
(* ------------------------------------------------------------------ *)

let ve_push tbl key id =
  Hashtbl.replace tbl key
    (id :: (match Hashtbl.find_opt tbl key with Some l -> l | None -> []))

let build_version_extent t vid =
  let ve =
    {
      ve_obj = Hashtbl.create 16;
      ve_pattern = Hashtbl.create 4;
      ve_rel = Hashtbl.create 16;
      ve_rel_pattern = Hashtbl.create 4;
      ve_dependents = [];
      ve_names = Hashtbl.create 64;
      ve_states = Ident.Tbl.create 256;
      ve_tick = 0;
    }
  in
  iter_items t (fun it ->
      match Versioning.state_at t.versions it vid with
      | None -> ()
      | Some s ->
        Ident.Tbl.replace ve.ve_states it.Item.id s;
        if not (Item.state_deleted s) then begin
          match (it.Item.body, s) with
          | Item.Independent, Item.Obj o ->
            let tbl = if o.Item.pattern then ve.ve_pattern else ve.ve_obj in
            ve_push tbl o.Item.cls it.Item.id;
            (match o.Item.name with
            | Some n -> Hashtbl.replace ve.ve_names n it.Item.id
            | None -> ())
          | Item.Dependent _, Item.Obj _ ->
            ve.ve_dependents <- it.Item.id :: ve.ve_dependents
          | Item.Relationship, Item.Rel r ->
            let tbl =
              if r.Item.rel_pattern then ve.ve_rel_pattern else ve.ve_rel
            in
            ve_push tbl r.Item.assoc it.Item.id
          | _ -> ()
        end);
  ve

let evict_version_lru t =
  let victim =
    Hashtbl.fold
      (fun vid ve acc ->
        match acc with
        | Some (_, best) when best <= ve.ve_tick -> acc
        | _ -> Some (vid, ve.ve_tick))
      t.version_cache None
  in
  match victim with
  | Some (vid, _) ->
    Hashtbl.remove t.version_cache vid;
    t.vc_eviction_count <- t.vc_eviction_count + 1
  | None -> ()

let version_extent t vid =
  if t.version_cache_capacity <= 0 || not (Versioning.mem t.versions vid) then
    None
  else begin
    t.version_cache_tick <- t.version_cache_tick + 1;
    match Hashtbl.find_opt t.version_cache vid with
    | Some ve ->
      ve.ve_tick <- t.version_cache_tick;
      t.vc_hit_count <- t.vc_hit_count + 1;
      Some ve
    | None ->
      t.vc_miss_count <- t.vc_miss_count + 1;
      let ve = build_version_extent t vid in
      ve.ve_tick <- t.version_cache_tick;
      Hashtbl.replace t.version_cache vid ve;
      while Hashtbl.length t.version_cache > t.version_cache_capacity do
        evict_version_lru t
      done;
      Some ve
  end

let cached_version_extent t vid = Hashtbl.find_opt t.version_cache vid

let invalidate_version_cache t vid = Hashtbl.remove t.version_cache vid
let clear_version_cache t = Hashtbl.reset t.version_cache

let set_version_cache_capacity t n =
  t.version_cache_capacity <- max 0 n;
  while Hashtbl.length t.version_cache > t.version_cache_capacity do
    evict_version_lru t
  done

let version_cache_capacity t = t.version_cache_capacity

let version_cache_stats t =
  { vc_hits = t.vc_hit_count; vc_misses = t.vc_miss_count; vc_evictions = t.vc_eviction_count }

let ve_ids tbl key =
  match Hashtbl.find_opt tbl key with Some l -> l | None -> []

let ve_all_ids tbl = Hashtbl.fold (fun _ l acc -> List.rev_append l acc) tbl []

let ve_obj_ids ve cls = ve_ids ve.ve_obj cls
let ve_pattern_ids ve cls = ve_ids ve.ve_pattern cls
let ve_rel_ids ve assoc = ve_ids ve.ve_rel assoc
let ve_rel_pattern_ids ve assoc = ve_ids ve.ve_rel_pattern assoc
let ve_all_obj_ids ve = ve_all_ids ve.ve_obj
let ve_all_pattern_ids ve = ve_all_ids ve.ve_pattern
let ve_all_rel_ids ve = ve_all_ids ve.ve_rel
let ve_dependent_ids ve = ve.ve_dependents
let ve_find_name ve name = Hashtbl.find_opt ve.ve_names name
let ve_state ve id = Ident.Tbl.find_opt ve.ve_states id

let rebuild_state_indexes t =
  (* name index *)
  let names = Name_index.to_list t.name_index in
  List.iter (fun (n, _) -> unindex_name t n) names;
  Ident.Tbl.reset t.inheritors;
  Hashtbl.reset t.obj_extent;
  Hashtbl.reset t.pattern_extent;
  Hashtbl.reset t.rel_extent;
  Hashtbl.reset t.rel_pattern_extent;
  Ident.Hset.clear t.dependent_extent;
  iter_items t (fun it ->
      index_extent t it;
      match (it.Item.body, it.Item.current) with
      | Item.Independent, Some (Item.Obj o) when not o.Item.deleted ->
        (match o.Item.name with
        | Some n -> index_name t n it.Item.id
        | None -> ());
        List.iter
          (fun p -> index_inheritor t ~pattern:p ~inheritor:it.Item.id)
          o.Item.inherits
      | _ -> ())

let find_id_by_name t name = Name_index.find t.name_index name

let register_procedure t name p = Hashtbl.replace t.procedures name p

let find_procedure t name =
  match Hashtbl.find_opt t.procedures name with
  | Some p -> Ok p
  | None -> fail (Unknown_procedure name)

let schema_at_revision t rev =
  List.assoc_opt rev t.schemas
