open Seed_util
open Seed_error

type node = {
  vid : Version_id.t;
  parent : Version_id.t option;
  children_rev : Version_id.t list;
  seq : int;
  schema_rev : int;
  next_branch : int;
  ancestors : Version_id.t list;
}

type t = {
  nodes : node Version_id.Map.t;
  next_seq : int;
  trunk : int;
}

let empty = { nodes = Version_id.Map.empty; next_seq = 1; trunk = 0 }
let create () = empty

let is_empty t = Version_id.Map.is_empty t.nodes
let mem t vid = Version_id.Map.mem vid t.nodes
let find t vid = Version_id.Map.find_opt vid t.nodes

let find_res t vid =
  match find t vid with
  | Some n -> Ok n
  | None -> fail (Unknown_version (Version_id.to_string vid))

let trunk_count t = t.trunk

let children n = List.rev n.children_rev
let has_children n = n.children_rev <> []

(* The ancestor chain is computed once at creation and stored in the
   node: parents are immutable and only leaves can be deleted (nobody's
   ancestor), so the chain stays valid for the node's whole lifetime —
   the purely functional replacement for the old per-version memo
   table. *)
let add_node t ~vid ~parent ~schema_rev =
  let ancestors =
    match parent with
    | None -> [ vid ]
    | Some p -> (
      match Version_id.Map.find_opt p t.nodes with
      | Some pn -> vid :: pn.ancestors
      | None -> assert false)
  in
  let node =
    {
      vid;
      parent;
      children_rev = [];
      seq = t.next_seq;
      schema_rev;
      next_branch = 1;
      ancestors;
    }
  in
  let nodes = Version_id.Map.add vid node t.nodes in
  let nodes =
    match parent with
    | None -> nodes
    | Some p ->
      Version_id.Map.update p
        (function
          | Some pn -> Some { pn with children_rev = vid :: pn.children_rev }
          | None -> assert false)
        nodes
  in
  (vid, { t with nodes; next_seq = t.next_seq + 1 })

let derive t ~base ~schema_rev =
  match base with
  | None ->
    if t.trunk > 0 then
      fail (Invalid_operation "version tree: trunk exists but no base version")
    else
      Ok
        (add_node { t with trunk = 1 } ~vid:(Version_id.trunk 1) ~parent:None
           ~schema_rev)
  | Some b ->
    let* bn = find_res t b in
    if Version_id.is_trunk b && Version_id.major b = t.trunk then
      (* continuing the latest trunk version extends the trunk *)
      let t = { t with trunk = t.trunk + 1 } in
      Ok (add_node t ~vid:(Version_id.trunk t.trunk) ~parent:(Some b) ~schema_rev)
    else begin
      let vid = Version_id.child b bn.next_branch in
      let nodes =
        Version_id.Map.add b { bn with next_branch = bn.next_branch + 1 } t.nodes
      in
      let t = { t with nodes } in
      if mem t vid then fail (Duplicate_version (Version_id.to_string vid))
      else Ok (add_node t ~vid ~parent:(Some b) ~schema_rev)
    end

let ancestors t vid =
  match find t vid with
  | Some n -> n.ancestors
  | None -> []

let state_at t item vid =
  if Item.history_is_empty item then None
  else
    match find t vid with
    | None ->
      (* not in the tree: only an exact stamp could answer *)
      Item.stamp_at item vid
    | Some n ->
      let rec first = function
        | [] -> None
        | v :: rest -> (
          match Item.stamp_at item v with
          | Some s -> Some s
          | None -> first rest)
      in
      first n.ancestors

let delete t vid =
  let* n = find_res t vid in
  if has_children n then
    fail
      (Invalid_operation
         (Printf.sprintf "version %s has derived versions and cannot be deleted"
            (Version_id.to_string vid)))
  else begin
    let nodes = Version_id.Map.remove vid t.nodes in
    let nodes =
      match n.parent with
      | None -> nodes
      | Some p ->
        Version_id.Map.update p
          (function
            | Some pn ->
              Some
                {
                  pn with
                  children_rev =
                    List.filter
                      (fun c -> not (Version_id.equal c vid))
                      pn.children_rev;
                }
            | None -> None)
          nodes
    in
    (* the latest trunk version may be deleted; the trunk counter keeps
       counting upward so labels are never reused *)
    Ok { t with nodes }
  end

let all t =
  Version_id.Map.bindings t.nodes
  |> List.map snd
  |> List.sort (fun a b -> Int.compare a.seq b.seq)

let since t vid =
  match find t vid with
  | None -> []
  | Some n -> List.filter (fun m -> m.seq >= n.seq) (all t)

type raw = {
  r_vid : Version_id.t;
  r_parent : Version_id.t option;
  r_seq : int;
  r_schema_rev : int;
  r_next_branch : int;
}

let dump t =
  ( t.trunk,
    List.map
      (fun n ->
        {
          r_vid = n.vid;
          r_parent = n.parent;
          r_seq = n.seq;
          r_schema_rev = n.schema_rev;
          r_next_branch = n.next_branch;
        })
      (all t) )

let restore ~trunk ~nodes =
  (* first pass: nodes without links; children and ancestor chains need
     every node present *)
  let next_seq, bare =
    List.fold_left
      (fun (next_seq, m) r ->
        let node =
          {
            vid = r.r_vid;
            parent = r.r_parent;
            children_rev = [];
            seq = r.r_seq;
            schema_rev = r.r_schema_rev;
            next_branch = r.r_next_branch;
            ancestors = [];
          }
        in
        (max next_seq (r.r_seq + 1), Version_id.Map.add r.r_vid node m))
      (1, Version_id.Map.empty)
      nodes
  in
  let children =
    Version_id.Map.fold
      (fun vid n acc ->
        match n.parent with
        | None -> acc
        | Some p ->
          Version_id.Map.update p
            (function None -> Some [ vid ] | Some l -> Some (vid :: l))
            acc)
      bare Version_id.Map.empty
  in
  (* ancestor chains: walk parents through [bare] (acyclic by
     construction of the dump) *)
  let rec chain vid =
    match Version_id.Map.find_opt vid bare with
    | None -> []
    | Some n -> (
      match n.parent with None -> [ vid ] | Some p -> vid :: chain p)
  in
  let nodes =
    Version_id.Map.mapi
      (fun vid n ->
        {
          n with
          ancestors = chain vid;
          children_rev =
            (match Version_id.Map.find_opt vid children with
            | Some l -> l
            | None -> []);
        })
      bare
  in
  { nodes; next_seq; trunk }
