open Seed_util
open Seed_error

type node = {
  vid : Version_id.t;
  parent : Version_id.t option;
  mutable children_rev : Version_id.t list;
  seq : int;
  schema_rev : int;
  mutable next_branch : int;
}

type t = {
  mutable nodes : node Version_id.Map.t;
  mutable next_seq : int;
  mutable trunk : int;
  path_memo : (Version_id.t, Version_id.t list) Hashtbl.t;
}

let create () =
  {
    nodes = Version_id.Map.empty;
    next_seq = 1;
    trunk = 0;
    path_memo = Hashtbl.create 16;
  }

let is_empty t = Version_id.Map.is_empty t.nodes
let mem t vid = Version_id.Map.mem vid t.nodes
let find t vid = Version_id.Map.find_opt vid t.nodes

let find_res t vid =
  match find t vid with
  | Some n -> Ok n
  | None -> fail (Unknown_version (Version_id.to_string vid))

let trunk_count t = t.trunk

let children n = List.rev n.children_rev
let has_children n = n.children_rev <> []

let add_node t ~vid ~parent ~schema_rev =
  let node =
    {
      vid;
      parent;
      children_rev = [];
      seq = t.next_seq;
      schema_rev;
      next_branch = 1;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.nodes <- Version_id.Map.add vid node t.nodes;
  (match parent with
  | None -> ()
  | Some p -> (
    match find t p with
    | Some pn -> pn.children_rev <- vid :: pn.children_rev
    | None -> assert false));
  vid

let derive t ~base ~schema_rev =
  match base with
  | None ->
    if t.trunk > 0 then
      fail (Invalid_operation "version tree: trunk exists but no base version")
    else begin
      t.trunk <- 1;
      Ok (add_node t ~vid:(Version_id.trunk 1) ~parent:None ~schema_rev)
    end
  | Some b ->
    let* bn = find_res t b in
    if Version_id.is_trunk b && Version_id.major b = t.trunk then begin
      (* continuing the latest trunk version extends the trunk *)
      t.trunk <- t.trunk + 1;
      Ok (add_node t ~vid:(Version_id.trunk t.trunk) ~parent:(Some b) ~schema_rev)
    end
    else begin
      let vid = Version_id.child b bn.next_branch in
      bn.next_branch <- bn.next_branch + 1;
      if mem t vid then
        fail (Duplicate_version (Version_id.to_string vid))
      else Ok (add_node t ~vid ~parent:(Some b) ~schema_rev)
    end

(* Ancestor chains are memoized per version: parents are immutable, a
   fresh node cannot appear in an existing chain, and only leaves can be
   deleted (nobody's ancestor), so a memoized path stays valid until the
   version itself is deleted or the whole tree is restored. *)
let ancestors t vid =
  match Hashtbl.find_opt t.path_memo vid with
  | Some p -> p
  | None ->
    let rec go acc v =
      match find t v with
      | None -> List.rev acc
      | Some n -> (
        match n.parent with
        | None -> List.rev (v :: acc)
        | Some p -> go (v :: acc) p)
    in
    let p = go [] vid in
    if p <> [] then Hashtbl.replace t.path_memo vid p;
    p

let state_at t item vid =
  if Item.history_is_empty item then None
  else
    match find t vid with
    | None ->
      (* not in the tree: only an exact stamp could answer *)
      Item.stamp_at item vid
    | Some _ ->
      let rec first = function
        | [] -> None
        | v :: rest -> (
          match Item.stamp_at item v with
          | Some s -> Some s
          | None -> first rest)
      in
      first (ancestors t vid)

let delete t vid =
  let* n = find_res t vid in
  if has_children n then
    fail
      (Invalid_operation
         (Printf.sprintf "version %s has derived versions and cannot be deleted"
            (Version_id.to_string vid)))
  else begin
    (match n.parent with
    | None -> ()
    | Some p -> (
      match find t p with
      | Some pn ->
        pn.children_rev <-
          List.filter (fun c -> not (Version_id.equal c vid)) pn.children_rev
      | None -> ()));
    t.nodes <- Version_id.Map.remove vid t.nodes;
    Hashtbl.remove t.path_memo vid;
    (* the latest trunk version may be deleted; the trunk counter keeps
       counting upward so labels are never reused *)
    Ok ()
  end

let all t =
  Version_id.Map.bindings t.nodes
  |> List.map snd
  |> List.sort (fun a b -> Int.compare a.seq b.seq)

let since t vid =
  match find t vid with
  | None -> []
  | Some n -> List.filter (fun m -> m.seq >= n.seq) (all t)

type raw = {
  r_vid : Version_id.t;
  r_parent : Version_id.t option;
  r_seq : int;
  r_schema_rev : int;
  r_next_branch : int;
}

let dump t =
  ( t.trunk,
    List.map
      (fun n ->
        {
          r_vid = n.vid;
          r_parent = n.parent;
          r_seq = n.seq;
          r_schema_rev = n.schema_rev;
          r_next_branch = n.next_branch;
        })
      (all t) )

let restore t ~trunk ~nodes =
  t.nodes <- Version_id.Map.empty;
  t.trunk <- trunk;
  t.next_seq <- 1;
  Hashtbl.reset t.path_memo;
  List.iter
    (fun r ->
      let node =
        {
          vid = r.r_vid;
          parent = r.r_parent;
          children_rev = [];
          seq = r.r_seq;
          schema_rev = r.r_schema_rev;
          next_branch = r.r_next_branch;
        }
      in
      t.nodes <- Version_id.Map.add r.r_vid node t.nodes;
      if r.r_seq >= t.next_seq then t.next_seq <- r.r_seq + 1)
    nodes;
  List.iter
    (fun node ->
      match node.parent with
      | None -> ()
      | Some p -> (
        match find t p with
        | Some pn -> pn.children_rev <- node.vid :: pn.children_rev
        | None -> ()))
    (all t)
