open Seed_util
open Seed_schema
open Seed_error

(* ------------------------------------------------------------------ *)
(* Counting helpers                                                     *)
(* ------------------------------------------------------------------ *)

let count_children_role view vi ~role =
  View.children_v view vi
  |> List.filter (fun (v : View.vitem) ->
         match v.item.Item.body with
         | Item.Dependent d -> String.equal d.role role
         | Item.Independent | Item.Relationship -> false)
  |> List.length

let count_participation view (obj : Item.t) ~assoc ~pos =
  let schema = View.schema view in
  View.rels_v view obj
  |> List.filter (fun (vr : View.vrel) ->
         match View.rel_state view vr.rel with
         | Some rs ->
           Schema.assoc_is_a schema ~sub:rs.assoc ~super:assoc
           && (match List.nth_opt vr.endpoints pos with
              | Some e -> Ident.equal e obj.Item.id
              | None -> false)
         | None -> false)
  |> List.length

let pattern_root_of view (item : Item.t) =
  let rec go (it : Item.t) =
    match it.body with
    | Item.Independent -> Some it
    | Item.Relationship -> None
    | Item.Dependent { parent; _ } -> (
      match Db_state.find_item (View.db view) parent with
      | Some p -> go p
      | None -> None)
  in
  go item

let has_normal_context view (item : Item.t) =
  match View.state view item with
  | None -> false
  | Some s ->
    if not (Item.state_pattern s) then true
    else
      let root =
        match item.body with
        | Item.Relationship ->
          (* a pattern relationship is checked through its pattern
             endpoints' inheritors *)
          None
        | Item.Independent | Item.Dependent _ -> pattern_root_of view item
      in
      let roots =
        match (root, item.body) with
        | Some r, _ -> [ r ]
        | None, Item.Relationship -> (
          match View.rel_state view item with
          | Some rs ->
            List.filter_map
              (fun e ->
                match Db_state.find_item (View.db view) e with
                | Some it when View.live_pattern view it -> Some it
                | Some _ | None -> None)
              rs.endpoints
          | None -> [])
        | None, _ -> []
      in
      let rec has_normal_inheritor seen (p : Item.t) =
        if Ident.Set.mem p.Item.id seen then false
        else
          let seen = Ident.Set.add p.Item.id seen in
          List.exists
            (fun (inh : Item.t) ->
              View.live_normal view inh
              || (View.live_pattern view inh && has_normal_inheritor seen inh))
            (View.inheritors_of view p.Item.id)
      in
      List.exists (has_normal_inheritor Ident.Set.empty) roots

(* Normal objects whose context exposes this pattern item — the contexts
   that must be re-validated when the pattern changes. *)
let normal_inheritor_contexts view (item : Item.t) =
  let rec collect seen acc (p : Item.t) =
    if Ident.Set.mem p.Item.id seen then (seen, acc)
    else
      let seen = Ident.Set.add p.Item.id seen in
      List.fold_left
        (fun (seen, acc) (inh : Item.t) ->
          if View.live_normal view inh then (seen, inh :: acc)
          else if View.live_pattern view inh then collect seen acc inh
          else (seen, acc))
        (seen, acc)
        (View.inheritors_of view p.Item.id)
  in
  let roots =
    match item.body with
    | Item.Independent | Item.Dependent _ -> (
      match pattern_root_of view item with Some r -> [ r ] | None -> [])
    | Item.Relationship -> (
      match View.rel_state view item with
      | Some rs ->
        List.filter_map
          (fun e ->
            match Db_state.find_item (View.db view) e with
            | Some it when View.live_pattern view it -> Some it
            | Some _ | None -> None)
          rs.endpoints
      | None -> [])
  in
  let _, contexts =
    List.fold_left
      (fun (seen, acc) r -> collect seen acc r)
      (Ident.Set.empty, []) roots
  in
  contexts

(* ------------------------------------------------------------------ *)
(* Primitive checks                                                     *)
(* ------------------------------------------------------------------ *)

let item_name_for_msg view (item : Item.t) =
  match View.full_name view item with
  | Some n -> n
  | None -> Ident.to_string item.Item.id

let obj_state_res view (item : Item.t) =
  match View.obj_state view item with
  | Some o -> Ok o
  | None -> fail (Unknown_item (Ident.to_string item.Item.id))

let rel_state_res view (item : Item.t) =
  match View.rel_state view item with
  | Some r -> Ok r
  | None -> fail (Unknown_item (Ident.to_string item.Item.id))

let check_max ~element ~subject ~card count =
  if Cardinality.within_max card count then Ok ()
  else
    fail
      (Cardinality_violation
         {
           element;
           subject;
           bound = "max " ^ Cardinality.to_string card;
           count;
         })

(* Would adding the directed edge (src → dst) close a cycle in the graph
   of relationships belonging to [assoc]'s subtree? Edges run from role
   position 0 to role position 1; inherited (virtual) relationships
   participate. *)
let creates_cycle view ~assoc ~src ~dst ~ignore_rel =
  if Ident.equal src dst then true
  else
    let schema = View.schema view in
    let db = View.db view in
    let visited = ref Ident.Set.empty in
    (* DFS from [dst] looking for [src] *)
    let rec dfs node =
      if Ident.equal node src then true
      else if Ident.Set.mem node !visited then false
      else begin
        visited := Ident.Set.add node !visited;
        match Db_state.find_item db node with
        | None -> false
        | Some obj ->
          let nexts =
            View.rels_v view obj
            |> List.filter_map (fun (vr : View.vrel) ->
                   match
                     (ignore_rel, View.rel_state view vr.View.rel)
                   with
                   | Some ig, _ when Ident.equal ig vr.View.rel.Item.id -> None
                   | _, Some rs
                     when Schema.assoc_is_a schema ~sub:rs.assoc ~super:assoc
                     -> (
                     match vr.View.endpoints with
                     | [ a; b ] when Ident.equal a node -> Some b
                     | _ -> None)
                   | _, (Some _ | None) -> None)
          in
          List.exists dfs nexts
      end
    in
    dfs dst

(* Maximum-cardinality participation checks for binding [obj] at position
   [pos] of association [assoc], counting the prospective relationship. *)
let check_participation_max view (obj : Item.t) ~assoc ~pos ~extra =
  let schema = View.schema view in
  let levels = assoc :: Schema.assoc_supers schema assoc in
  iter_result
    (fun level ->
      match Schema.find_assoc schema level with
      | None -> fail (Unknown_association level)
      | Some def ->
        let role = Assoc_def.nth_role def pos in
        let count = count_participation view obj ~assoc:level ~pos + extra in
        check_max
          ~element:(level ^ "." ^ role.Assoc_def.role_name)
          ~subject:(item_name_for_msg view obj)
          ~card:role.Assoc_def.card count)
    levels

(* ------------------------------------------------------------------ *)
(* Update preconditions                                                 *)
(* ------------------------------------------------------------------ *)

let check_new_object view ~cls ~name =
  let schema = View.schema view in
  let* def = Schema.find_class_res schema cls in
  let* () =
    if Class_def.is_top_level def then Ok ()
    else
      fail
        (Invalid_operation
           (cls ^ " is a sub-class; use create_sub_object for dependent objects"))
  in
  match View.find_object view name with
  | Some _ -> fail (Duplicate_name name)
  | None -> Ok ()

let check_new_sub_object view ~parent ~role ~index ~value =
  let schema = View.schema view in
  let* pstate = obj_state_res view parent in
  let* () =
    if View.live view parent then Ok ()
    else fail (Unknown_item (Ident.to_string parent.Item.id))
  in
  let* def = Schema.resolve_child schema ~cls:pstate.Item.cls ~role in
  let card = def.Class_def.card in
  let single = Cardinality.equal card Cardinality.one || Cardinality.equal card Cardinality.opt in
  let* () =
    match (single, index) with
    | true, Some _ ->
      fail
        (Invalid_operation
           (Printf.sprintf "role %s admits a single instance; no index allowed"
              role))
    | _ -> Ok ()
  in
  (* (role, index) uniqueness among the full (expanded) context *)
  let* () =
    match index with
    | None when not single -> Ok () (* auto-assigned by the caller *)
    | _ -> (
      let existing =
        View.child_v view (View.vitem_real parent) ~role ?index ()
      in
      match existing with
      | Some _ ->
        fail
          (Duplicate_name
             (item_name_for_msg view parent ^ "." ^ role
             ^ match index with
               | Some i -> Printf.sprintf "[%d]" i
               | None -> ""))
      | None -> Ok ())
  in
  (* maximum cardinality — a counting check, skipped for patterns with no
     normal context *)
  let* () =
    if has_normal_context view parent then
      let count = count_children_role view (View.vitem_real parent) ~role in
      check_max
        ~element:(Class_def.name def)
        ~subject:(item_name_for_msg view parent)
        ~card (count + 1)
    else Ok ()
  in
  (* value type — structural, always checked *)
  let* () =
    match (value, def.Class_def.content) with
    | None, _ -> Ok ()
    | Some _, None ->
      fail
        (Type_mismatch
           { expected = "no content for class " ^ Class_def.name def; got = "a value" })
    | Some v, Some ty -> Value.check ty v
  in
  Ok def

let check_new_relationship view ~assoc ~endpoints ~pattern =
  let schema = View.schema view in
  let* def = Schema.find_assoc_res schema assoc in
  let* () =
    if List.length endpoints = Assoc_def.arity def then Ok ()
    else
      fail
        (Invalid_operation
           (Printf.sprintf "association %s has arity %d, got %d endpoints" assoc
              (Assoc_def.arity def) (List.length endpoints)))
  in
  let indexed = List.mapi (fun i e -> (i, e)) endpoints in
  let* () =
    iter_result
      (fun (_, (e : Item.t)) ->
        match e.body with
        | Item.Independent ->
          if View.live view e then Ok ()
          else fail (Unknown_item (Ident.to_string e.id))
        | Item.Dependent _ | Item.Relationship ->
          fail
            (Invalid_operation
               "relationships connect independent objects only"))
      indexed
  in
  let any_pattern_endpoint =
    List.exists (fun (e : Item.t) -> View.live_pattern view e) endpoints
  in
  let* () =
    if any_pattern_endpoint && not pattern then
      fail
        (Pattern_violation
           "a relationship involving a pattern object must itself be a pattern")
    else Ok ()
  in
  (* membership — structural, always checked *)
  let* () =
    iter_result
      (fun (i, (e : Item.t)) ->
        let* es = obj_state_res view e in
        let role = Assoc_def.nth_role def i in
        if Schema.class_is_a schema ~sub:es.Item.cls ~super:role.Assoc_def.target
        then Ok ()
        else
          fail
            (Membership_violation
               {
                 expected = role.Assoc_def.target;
                 got = es.Item.cls;
                 context = assoc ^ "." ^ role.Assoc_def.role_name;
               }))
      indexed
  in
  (* counting checks apply to normal relationships only *)
  let* () =
    if pattern then Ok ()
    else
      iter_result
        (fun (i, e) -> check_participation_max view e ~assoc ~pos:i ~extra:1)
        indexed
  in
  let* () =
    if pattern then Ok ()
    else
      let levels = assoc :: Schema.assoc_supers schema assoc in
      iter_result
        (fun level ->
          match Schema.find_assoc schema level with
          | Some d when d.Assoc_def.acyclic -> (
            match endpoints with
            | [ a; b ] ->
              if
                creates_cycle view ~assoc:level ~src:a.Item.id ~dst:b.Item.id
                  ~ignore_rel:None
              then fail (Cycle_detected level)
              else Ok ()
            | _ -> Ok ())
          | Some _ | None -> Ok ())
        levels
  in
  Ok def

let check_set_value view (item : Item.t) value =
  let schema = View.schema view in
  let* st = obj_state_res view item in
  let* () =
    if View.live view item then Ok ()
    else fail (Unknown_item (Ident.to_string item.Item.id))
  in
  let* def = Schema.find_class_res schema st.Item.cls in
  match (value, def.Class_def.content) with
  | None, _ -> Ok ()
  | Some _, None ->
    fail
      (Type_mismatch
         { expected = "no content for class " ^ st.Item.cls; got = "a value" })
  | Some v, Some ty -> Value.check ty v

let check_set_rel_attr view (item : Item.t) name value =
  let schema = View.schema view in
  let* rs = rel_state_res view item in
  let* () =
    if View.live view item then Ok ()
    else fail (Unknown_item (Ident.to_string item.Item.id))
  in
  let* decl = Schema.resolve_attr schema ~assoc:rs.Item.assoc ~attr:name in
  match value with
  | None -> Ok ()
  | Some v -> Value.check decl.Assoc_def.attr_type v

let check_rename view (item : Item.t) new_name =
  let* st = obj_state_res view item in
  let* () =
    match (item.body, st.Item.name) with
    | Item.Independent, Some _ -> Ok ()
    | _ -> fail (Invalid_operation "only independent objects can be renamed")
  in
  if String.equal new_name "" then
    fail (Invalid_operation "object names must be non-empty")
  else
    match View.find_object view new_name with
    | Some other when not (Ident.equal other.Item.id item.Item.id) ->
      fail (Duplicate_name new_name)
    | Some _ | None -> Ok ()

(* every live (real) sub-object role of [item] must resolve identically
   under class [cls] *)
let check_children_fit view (item : Item.t) ~cls =
  let schema = View.schema view in
  iter_result
    (fun (child : Item.t) ->
      match (child.body, View.obj_state view child) with
      | Item.Dependent { role; _ }, Some cst -> (
        match Schema.resolve_child schema ~cls ~role with
        | Ok def when String.equal (Class_def.name def) cst.Item.cls -> Ok ()
        | Ok def ->
          fail
            (Membership_violation
               {
                 expected = Class_def.name def;
                 got = cst.Item.cls;
                 context =
                   Printf.sprintf "sub-object %s under re-classified %s" role
                     cls;
               })
        | Error _ ->
          fail
            (Membership_violation
               {
                 expected = cls ^ "." ^ role;
                 got = cst.Item.cls;
                 context = "sub-object does not exist in target class";
               }))
      | _ -> Ok ())
    (View.children view item.Item.id)

let check_reclassify_object view (item : Item.t) ~to_ =
  let schema = View.schema view in
  let* st = obj_state_res view item in
  let* () =
    if item.body = Item.Independent then Ok ()
    else
      fail
        (Invalid_operation
           "only independent objects can be re-classified (sub-objects follow \
            their class definition)")
  in
  let* () =
    if View.live view item then Ok ()
    else fail (Unknown_item (Ident.to_string item.Item.id))
  in
  let* def = Schema.find_class_res schema to_ in
  let* () =
    if Class_def.is_top_level def then Ok ()
    else fail (Invalid_operation (to_ ^ " is a sub-class"))
  in
  let* () =
    if Schema.same_class_hierarchy schema st.Item.cls to_ then Ok ()
    else fail (Not_in_generalization { item_class = st.Item.cls; target = to_ })
  in
  let* () = check_children_fit view item ~cls:to_ in
  (* inherited pattern children must also fit the new class *)
  let* () =
    iter_result
      (fun (p : Item.t) -> check_children_fit view p ~cls:to_)
      (View.transitive_patterns view item)
  in
  (* every relationship the object takes part in must still accept it *)
  let* () =
    iter_result
      (fun (vr : View.vrel) ->
        match View.rel_state view vr.View.rel with
        | None -> Ok ()
        | Some rs ->
          let* rdef = Schema.find_assoc_res schema rs.Item.assoc in
          iter_result
            (fun (i, e) ->
              if not (Ident.equal e item.Item.id) then Ok ()
              else
                let role = Assoc_def.nth_role rdef i in
                if Schema.class_is_a schema ~sub:to_ ~super:role.Assoc_def.target
                then Ok ()
                else
                  fail
                    (Membership_violation
                       {
                         expected = role.Assoc_def.target;
                         got = to_;
                         context =
                           rs.Item.assoc ^ "." ^ role.Assoc_def.role_name;
                       }))
            (List.mapi (fun i e -> (i, e)) vr.View.endpoints))
      (View.rels_v view item)
  in
  Ok ()

let check_reclassify_rel view (item : Item.t) ~to_ =
  let schema = View.schema view in
  let* rs = rel_state_res view item in
  let* () =
    if View.live view item then Ok ()
    else fail (Unknown_item (Ident.to_string item.Item.id))
  in
  let* def = Schema.find_assoc_res schema to_ in
  let* () =
    if Schema.same_assoc_hierarchy schema rs.Item.assoc to_ then Ok ()
    else fail (Not_in_generalization { item_class = rs.Item.assoc; target = to_ })
  in
  let db = View.db view in
  let endpoints =
    List.filter_map (Db_state.find_item db) rs.Item.endpoints
  in
  (* membership under the new roles *)
  let* () =
    iter_result
      (fun (i, (e : Item.t)) ->
        let* es = obj_state_res view e in
        let role = Assoc_def.nth_role def i in
        if Schema.class_is_a schema ~sub:es.Item.cls ~super:role.Assoc_def.target
        then Ok ()
        else
          fail
            (Membership_violation
               {
                 expected = role.Assoc_def.target;
                 got = es.Item.cls;
                 context = to_ ^ "." ^ role.Assoc_def.role_name;
               }))
      (List.mapi (fun i e -> (i, e)) endpoints)
  in
  (* every defined attribute must remain declared (with a compatible
     type) under the new classification: generalizing a Write with a
     NumberOfWrites to Access is refused until the attribute is
     undefined *)
  let* () =
    iter_result
      (fun (n, v) ->
        let* decl = Schema.resolve_attr schema ~assoc:to_ ~attr:n in
        Value.check decl.Assoc_def.attr_type v)
      rs.Item.rel_attrs
  in
  if rs.Item.rel_pattern && not (has_normal_context view item) then Ok ()
  else
    (* participation maxima under the new classification: levels of the
       new chain that the old chain did not already cover gain one *)
    let old_levels = rs.Item.assoc :: Schema.assoc_supers schema rs.Item.assoc in
    let* () =
      iter_result
        (fun (i, (e : Item.t)) ->
          let levels = to_ :: Schema.assoc_supers schema to_ in
          iter_result
            (fun level ->
              if List.exists (String.equal level) old_levels then Ok ()
              else
                match Schema.find_assoc schema level with
                | None -> fail (Unknown_association level)
                | Some d ->
                  let role = Assoc_def.nth_role d i in
                  let count =
                    count_participation view e ~assoc:level ~pos:i + 1
                  in
                  check_max
                    ~element:(level ^ "." ^ role.Assoc_def.role_name)
                    ~subject:(item_name_for_msg view e)
                    ~card:role.Assoc_def.card count)
            levels)
        (List.mapi (fun i e -> (i, e)) endpoints)
    in
    (* acyclicity on any newly-entered acyclic level *)
    let levels = to_ :: Schema.assoc_supers schema to_ in
    iter_result
      (fun level ->
        if List.exists (String.equal level) old_levels then Ok ()
        else
          match Schema.find_assoc schema level with
          | Some d when d.Assoc_def.acyclic -> (
            match rs.Item.endpoints with
            | [ a; b ] ->
              if
                creates_cycle view ~assoc:level ~src:a ~dst:b
                  ~ignore_rel:(Some item.Item.id)
              then fail (Cycle_detected level)
              else Ok ()
            | _ -> Ok ())
          | Some _ | None -> Ok ())
      levels

(* Full-context validation of one normal object: children counts per
   role, (role, index) uniqueness, membership of inherited children,
   participation maxima, acyclicity of its incident edges. *)
let check_inheritor_context view (obj : Item.t) =
  let schema = View.schema view in
  let* st = obj_state_res view obj in
  let kids = View.children_v view (View.vitem_real obj) in
  (* group by role *)
  let module SM = Map.Make (String) in
  let by_role =
    List.fold_left
      (fun m (v : View.vitem) ->
        match v.item.Item.body with
        | Item.Dependent d ->
          SM.update d.role
            (function None -> Some [ v ] | Some l -> Some (v :: l))
            m
        | Item.Independent | Item.Relationship -> m)
      SM.empty kids
  in
  let* () =
    iter_result
      (fun (role, vs) ->
        let* def = Schema.resolve_child schema ~cls:st.Item.cls ~role in
        (* membership of each child (inherited ones may come from an
           incompatible pattern class) *)
        let* () =
          iter_result
            (fun (v : View.vitem) ->
              match View.obj_state view v.View.item with
              | Some cst
                when String.equal cst.Item.cls (Class_def.name def) ->
                Ok ()
              | Some cst ->
                fail
                  (Membership_violation
                     {
                       expected = Class_def.name def;
                       got = cst.Item.cls;
                       context =
                         Printf.sprintf "context of %s"
                           (item_name_for_msg view obj);
                     })
              | None -> Ok ())
            vs
        in
        (* maximum cardinality over the expanded context *)
        let* () =
          check_max
            ~element:(Class_def.name def)
            ~subject:(item_name_for_msg view obj)
            ~card:def.Class_def.card (List.length vs)
        in
        (* (role, index) collisions between own and inherited *)
        let indices =
          List.map
            (fun (v : View.vitem) ->
              match v.View.item.Item.body with
              | Item.Dependent d -> d.index
              | Item.Independent | Item.Relationship -> None)
            vs
        in
        let sorted = List.sort compare indices in
        let rec dup = function
          | a :: (b :: _ as rest) ->
            if a = b then true else dup rest
          | [ _ ] | [] -> false
        in
        if dup sorted then
          fail
            (Pattern_violation
               (Printf.sprintf
                  "inherited sub-objects collide with own ones at role %s of %s"
                  role
                  (item_name_for_msg view obj)))
        else Ok ())
      (SM.bindings by_role)
  in
  (* participation maxima over the expanded relationship set *)
  let* () =
    iter_result
      (fun (def, pos, (role : Assoc_def.role)) ->
        let count =
          count_participation view obj ~assoc:def.Assoc_def.name ~pos
        in
        check_max
          ~element:(def.Assoc_def.name ^ "." ^ role.Assoc_def.role_name)
          ~subject:(item_name_for_msg view obj)
          ~card:role.Assoc_def.card count)
      (Schema.participation_constraints schema ~cls:st.Item.cls)
  in
  (* acyclicity of incident virtual/real edges *)
  let* () =
    iter_result
      (fun (vr : View.vrel) ->
        match View.rel_state view vr.View.rel with
        | None -> Ok ()
        | Some rs ->
          let levels = rs.Item.assoc :: Schema.assoc_supers schema rs.Item.assoc in
          iter_result
            (fun level ->
              match Schema.find_assoc schema level with
              | Some d when d.Assoc_def.acyclic -> (
                match vr.View.endpoints with
                | [ a; b ] ->
                  (* the edge is already present; a cycle exists iff b
                     reaches a without using this very edge *)
                  if
                    creates_cycle view ~assoc:level ~src:a ~dst:b
                      ~ignore_rel:(Some vr.View.rel.Item.id)
                  then fail (Cycle_detected level)
                  else Ok ()
                | _ -> Ok ())
              | Some _ | None -> Ok ())
            levels)
      (View.rels_v view obj)
  in
  Ok ()

let check_inheritance view ~pattern ~inheritor =
  let* pst = obj_state_res view pattern in
  let* ist = obj_state_res view inheritor in
  let* () =
    if pattern.Item.body = Item.Independent && pst.Item.pattern then Ok ()
    else fail (Pattern_violation "only independent pattern objects can be inherited")
  in
  let* () =
    if View.live view pattern && View.live view inheritor then Ok ()
    else fail (Pattern_violation "pattern and inheritor must be live")
  in
  let* () =
    if inheritor.Item.body = Item.Independent then Ok ()
    else fail (Pattern_violation "only independent objects can inherit patterns")
  in
  let* () =
    if List.exists (Ident.equal pattern.Item.id) ist.Item.inherits then
      fail (Pattern_violation "pattern already inherited")
    else Ok ()
  in
  (* cycle through the inherits relation *)
  let* () =
    if Ident.equal pattern.Item.id inheritor.Item.id then
      fail (Pattern_violation "an item cannot inherit itself")
    else if
      List.exists
        (fun (p : Item.t) -> Ident.equal p.Item.id inheritor.Item.id)
        (View.transitive_patterns view pattern)
    then fail (Pattern_violation "inheritance cycle")
    else Ok ()
  in
  (* a normal inheritor's combined context must be consistent; check by
     simulation: contexts are dynamic, so validating the inheritor after
     the (tentative) link is what Database does — here we validate the
     pattern's pieces against the inheritor's class *)
  if ist.Item.pattern then Ok ()
  else
    let schema = View.schema view in
    let* () = check_children_fit view pattern ~cls:ist.Item.cls in
    iter_result
      (fun (r : Item.t) ->
        match View.rel_state view r with
        | None -> Ok ()
        | Some rs ->
          let* rdef = Schema.find_assoc_res schema rs.Item.assoc in
          iter_result
            (fun (i, e) ->
              if not (Ident.equal e pattern.Item.id) then Ok ()
              else
                let role = Assoc_def.nth_role rdef i in
                if
                  Schema.class_is_a schema ~sub:ist.Item.cls
                    ~super:role.Assoc_def.target
                then Ok ()
                else
                  fail
                    (Membership_violation
                       {
                         expected = role.Assoc_def.target;
                         got = ist.Item.cls;
                         context =
                           Printf.sprintf "inherited relationship %s"
                             rs.Item.assoc;
                       }))
            (List.mapi (fun i e -> (i, e)) rs.Item.endpoints))
      (View.rels view pattern.Item.id)

let check_delete view (item : Item.t) =
  let* () =
    if View.live view item then Ok ()
    else fail (Unknown_item (Ident.to_string item.Item.id))
  in
  match View.state view item with
  | Some s when Item.state_pattern s && item.Item.body = Item.Independent -> (
    match View.inheritors_of view item.Item.id with
    | [] -> Ok ()
    | inh :: _ ->
      fail
        (Pattern_violation
           (Printf.sprintf "pattern is inherited by %s; remove inheritance first"
              (item_name_for_msg view inh))))
  | Some _ -> Ok ()
  | None -> fail (Unknown_item (Ident.to_string item.Item.id))

let check_database view =
  let db = View.db view in
  let schema = View.schema view in
  let check_item (item : Item.t) =
    if not (View.live view item) then Ok ()
    else
      match View.state view item with
      | None -> Ok ()
      | Some (Item.Obj o) ->
        let* def = Schema.find_class_res schema o.Item.cls in
        let* () =
          match (o.Item.value, def.Class_def.content) with
          | None, _ -> Ok ()
          | Some _, None ->
            fail
              (Type_mismatch
                 { expected = "no content for " ^ o.Item.cls; got = "a value" })
          | Some v, Some ty -> Value.check ty v
        in
        if
          item.Item.body = Item.Independent
          && (not o.Item.pattern)
        then check_inheritor_context view item
        else Ok ()
      | Some (Item.Rel r) ->
        let* def = Schema.find_assoc_res schema r.Item.assoc in
        let* () =
          if List.length r.Item.endpoints = Assoc_def.arity def then Ok ()
          else fail (Invalid_operation ("arity mismatch in " ^ r.Item.assoc))
        in
        let* () =
          iter_result
            (fun (n, value) ->
              let* decl =
                Schema.resolve_attr schema ~assoc:r.Item.assoc ~attr:n
              in
              Value.check decl.Assoc_def.attr_type value)
            r.Item.rel_attrs
        in
        if r.Item.rel_pattern then Ok ()
        else
          iter_result
            (fun (i, e) ->
              match Db_state.find_item db e with
              | None -> fail (Unknown_item (Ident.to_string e))
              | Some eit -> (
                match View.obj_state view eit with
                | None -> fail (Unknown_item (Ident.to_string e))
                | Some es ->
                  let role = Assoc_def.nth_role def i in
                  if
                    Schema.class_is_a schema ~sub:es.Item.cls
                      ~super:role.Assoc_def.target
                  then Ok ()
                  else
                    fail
                      (Membership_violation
                         {
                           expected = role.Assoc_def.target;
                           got = es.Item.cls;
                           context =
                             r.Item.assoc ^ "." ^ role.Assoc_def.role_name;
                         })))
            (List.mapi (fun i e -> (i, e)) r.Item.endpoints)
  in
  let items =
    (* [check_item] skips non-live items, so on a current view the
       extents already enumerate everything that can fail a check; a
       version view still has to walk the whole table *)
    match View.version view with
    | None ->
      List.filter_map (Db_state.find_item db) (Db_state.all_live_ids db)
    | Some _ -> Db_state.fold_items db ~init:[] ~f:(fun acc it -> it :: acc)
  in
  iter_result check_item items

