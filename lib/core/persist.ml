open Seed_util
open Seed_schema
open Seed_error
module Codec = Seed_storage.Codec
module W = Codec.Writer
module R = Codec.Reader
module Store = Seed_storage.Store

let format_version = 1

(* ------------------------------------------------------------------ *)
(* Encoders                                                             *)
(* ------------------------------------------------------------------ *)

let w_ident w id = W.varint w (Ident.to_int id)

let w_value w (v : Value.t) =
  match v with
  | Value.String s ->
    W.u8 w 0;
    W.string w s
  | Value.Int i ->
    W.u8 w 1;
    W.varint w i
  | Value.Float f ->
    W.u8 w 2;
    W.float w f
  | Value.Bool b ->
    W.u8 w 3;
    W.bool w b
  | Value.Date d ->
    W.u8 w 4;
    W.varint w d.Value.year;
    W.varint w d.Value.month;
    W.varint w d.Value.day
  | Value.Enum c ->
    W.u8 w 5;
    W.string w c

let w_value_type w (t : Value_type.t) =
  match t with
  | Value_type.String -> W.u8 w 0
  | Value_type.Int -> W.u8 w 1
  | Value_type.Float -> W.u8 w 2
  | Value_type.Bool -> W.u8 w 3
  | Value_type.Date -> W.u8 w 4
  | Value_type.Enum cs ->
    W.u8 w 5;
    W.list w W.string cs

let w_card w (c : Cardinality.t) =
  W.varint w c.Cardinality.min;
  W.option w W.varint c.Cardinality.max

let w_class w (c : Class_def.t) =
  W.list w W.string c.Class_def.path;
  w_card w c.Class_def.card;
  W.option w w_value_type c.Class_def.content;
  W.option w W.string c.Class_def.super;
  W.bool w c.Class_def.covering;
  W.list w W.string c.Class_def.procedures

let w_role w (r : Assoc_def.role) =
  W.string w r.Assoc_def.role_name;
  W.string w r.Assoc_def.target;
  w_card w r.Assoc_def.card

let w_attr w (x : Assoc_def.attr) =
  W.string w x.Assoc_def.attr_name;
  w_value_type w x.Assoc_def.attr_type;
  W.bool w x.Assoc_def.required

let w_assoc w (a : Assoc_def.t) =
  W.string w a.Assoc_def.name;
  W.list w w_role a.Assoc_def.roles;
  W.list w w_attr a.Assoc_def.attrs;
  W.bool w a.Assoc_def.acyclic;
  W.option w W.string a.Assoc_def.super;
  W.bool w a.Assoc_def.covering;
  W.list w W.string a.Assoc_def.procedures

let w_schema w s =
  W.varint w (Schema.revision s);
  W.list w w_class (Schema.classes s);
  W.list w w_assoc (Schema.assocs s)

let w_version_id w (v : Version_id.t) = W.list w W.varint (v :> int list)

let w_state w (s : Item.state) =
  match s with
  | Item.Obj o ->
    W.u8 w 0;
    W.option w W.string o.Item.name;
    W.string w o.Item.cls;
    W.option w w_value o.Item.value;
    W.bool w o.Item.pattern;
    W.list w w_ident o.Item.inherits;
    W.bool w o.Item.deleted
  | Item.Rel r ->
    W.u8 w 1;
    W.string w r.Item.assoc;
    W.list w w_ident r.Item.endpoints;
    W.list w
      (fun w (n, v) ->
        W.string w n;
        w_value w v)
      r.Item.rel_attrs;
    W.bool w r.Item.rel_pattern;
    W.bool w r.Item.rel_deleted

let w_body w (b : Item.body) =
  match b with
  | Item.Independent -> W.u8 w 0
  | Item.Dependent { parent; role; index } ->
    W.u8 w 1;
    w_ident w parent;
    W.string w role;
    W.option w W.varint index
  | Item.Relationship -> W.u8 w 2

let w_item w (it : Item.t) =
  w_ident w it.Item.id;
  w_body w it.Item.body;
  W.option w w_state it.Item.current;
  W.bool w it.Item.dirty;
  W.list w
    (fun w (vid, s) -> w_version_id w vid; w_state w s)
    (Item.history_bindings it)

let w_raw_node w (r : Versioning.raw) =
  w_version_id w r.Versioning.r_vid;
  W.option w w_version_id r.Versioning.r_parent;
  W.varint w r.Versioning.r_seq;
  W.varint w r.Versioning.r_schema_rev;
  W.varint w r.Versioning.r_next_branch

let w_meta w (st : Db_state.t) =
  W.varint w (Ident.Gen.current (Db_state.gen st));
  let trunk, nodes = Versioning.dump (Db_state.versions st) in
  W.varint w trunk;
  W.list w w_raw_node nodes;
  W.option w w_version_id (Db_state.current_base st);
  W.list w
    (fun w (rev, s) ->
      W.varint w rev;
      w_schema w s)
    (Db_state.schemas st)

(* ------------------------------------------------------------------ *)
(* Decoders                                                             *)
(* ------------------------------------------------------------------ *)

let r_ident r =
  let* i = R.varint r in
  Ok (Ident.of_int i)

let r_value r =
  let* tag = R.u8 r in
  match tag with
  | 0 ->
    let* s = R.string r in
    Ok (Value.String s)
  | 1 ->
    let* i = R.varint r in
    Ok (Value.Int i)
  | 2 ->
    let* f = R.float r in
    Ok (Value.Float f)
  | 3 ->
    let* b = R.bool r in
    Ok (Value.Bool b)
  | 4 ->
    let* year = R.varint r in
    let* month = R.varint r in
    let* day = R.varint r in
    Ok (Value.Date { Value.year; month; day })
  | 5 ->
    let* c = R.string r in
    Ok (Value.Enum c)
  | _ -> fail (Corrupt "bad value tag")

let r_value_type r =
  let* tag = R.u8 r in
  match tag with
  | 0 -> Ok Value_type.String
  | 1 -> Ok Value_type.Int
  | 2 -> Ok Value_type.Float
  | 3 -> Ok Value_type.Bool
  | 4 -> Ok Value_type.Date
  | 5 ->
    let* cs = R.list r R.string in
    Ok (Value_type.Enum cs)
  | _ -> fail (Corrupt "bad value-type tag")

let r_card r =
  let* min = R.varint r in
  let* max = R.option r R.varint in
  Ok (Cardinality.make min max)

let r_class r =
  let* path = R.list r R.string in
  let* card = r_card r in
  let* content = R.option r r_value_type in
  let* super = R.option r R.string in
  let* covering = R.bool r in
  let* procedures = R.list r R.string in
  Ok (Class_def.v ~card ?content ?super ~covering ~procedures path)

let r_role r =
  let* role_name = R.string r in
  let* target = R.string r in
  let* card = r_card r in
  Ok (Assoc_def.role ~card role_name target)

let r_attr r =
  let* attr_name = R.string r in
  let* attr_type = r_value_type r in
  let* required = R.bool r in
  Ok (Assoc_def.attr ~required attr_name attr_type)

let r_assoc r =
  let* name = R.string r in
  let* roles = R.list r r_role in
  let* attrs = R.list r r_attr in
  let* acyclic = R.bool r in
  let* super = R.option r R.string in
  let* covering = R.bool r in
  let* procedures = R.list r R.string in
  Ok (Assoc_def.v ~attrs ~acyclic ?super ~covering ~procedures name roles)

let r_schema r =
  let* rev = R.varint r in
  let* classes = R.list r r_class in
  let* assocs = R.list r r_assoc in
  (* parents before children for of_defs *)
  let classes =
    List.sort
      (fun (a : Class_def.t) b ->
        Int.compare (List.length a.Class_def.path) (List.length b.Class_def.path))
      classes
  in
  let* s = Schema.of_defs classes assocs in
  Ok (Schema.with_revision s rev)

let r_version_id r =
  let* ints = R.list r R.varint in
  Version_id.of_ints ints

let r_state r =
  let* tag = R.u8 r in
  match tag with
  | 0 ->
    let* name = R.option r R.string in
    let* cls = R.string r in
    let* value = R.option r r_value in
    let* pattern = R.bool r in
    let* inherits = R.list r r_ident in
    let* deleted = R.bool r in
    Ok (Item.Obj { Item.name; cls; value; pattern; inherits; deleted })
  | 1 ->
    let* assoc = R.string r in
    let* endpoints = R.list r r_ident in
    let* rel_attrs =
      R.list r (fun r ->
          let* n = R.string r in
          let* v = r_value r in
          Ok (n, v))
    in
    let* rel_pattern = R.bool r in
    let* rel_deleted = R.bool r in
    Ok (Item.Rel { Item.assoc; endpoints; rel_attrs; rel_pattern; rel_deleted })
  | _ -> fail (Corrupt "bad state tag")

let r_body r =
  let* tag = R.u8 r in
  match tag with
  | 0 -> Ok Item.Independent
  | 1 ->
    let* parent = r_ident r in
    let* role = R.string r in
    let* index = R.option r R.varint in
    Ok (Item.Dependent { parent; role; index })
  | 2 -> Ok Item.Relationship
  | _ -> fail (Corrupt "bad body tag")

let r_item r =
  let* id = r_ident r in
  let* body = r_body r in
  let* current = R.option r r_state in
  let* dirty = R.bool r in
  let* history =
    R.list r (fun r ->
        let* vid = r_version_id r in
        let* s = r_state r in
        Ok (vid, s))
  in
  Ok { Item.id; body; current; dirty; history = Item.history_of_bindings history }

let r_raw_node r =
  let* r_vid = r_version_id r in
  let* r_parent = R.option r r_version_id in
  let* r_seq = R.varint r in
  let* r_schema_rev = R.varint r in
  let* r_next_branch = R.varint r in
  Ok { Versioning.r_vid; r_parent; r_seq; r_schema_rev; r_next_branch }

type meta = {
  m_gen : int;
  m_trunk : int;
  m_nodes : Versioning.raw list;
  m_base : Version_id.t option;
  m_schemas : (int * Schema.t) list;
}

let r_meta r =
  let* m_gen = R.varint r in
  let* m_trunk = R.varint r in
  let* m_nodes = R.list r r_raw_node in
  let* m_base = R.option r r_version_id in
  let* m_schemas =
    R.list r (fun r ->
        let* rev = R.varint r in
        let* s = r_schema r in
        Ok (rev, s))
  in
  Ok { m_gen; m_trunk; m_nodes; m_base; m_schemas }

(* ------------------------------------------------------------------ *)
(* Whole-database snapshot                                              *)
(* ------------------------------------------------------------------ *)

let items_in_id_order (st : Db_state.t) =
  Db_state.fold_items st ~init:[] ~f:(fun acc it -> it :: acc)
  |> List.sort (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)

let encode_db db =
  let st = Database.raw db in
  let w = W.create ~initial_size:4096 () in
  W.varint w format_version;
  w_meta w st;
  W.list w w_item (items_in_id_order st);
  W.contents w

let build_db meta items ~verify =
  let* schema =
    match meta.m_schemas with
    | (_, s) :: _ -> Ok s
    | [] -> fail (Corrupt "database without schema")
  in
  let st = Db_state.create schema in
  Db_state.set_schemas st meta.m_schemas;
  Ident.Gen.mark_used (Db_state.gen st) (Ident.of_int meta.m_gen);
  Db_state.set_versions st
    (Versioning.restore ~trunk:meta.m_trunk ~nodes:meta.m_nodes);
  Db_state.set_current_base st meta.m_base;
  List.iter
    (fun (it : Item.t) ->
      Db_state.add_loaded_item st it;
      Ident.Gen.mark_used (Db_state.gen st) it.Item.id)
    items;
  Db_state.rebuild_state_indexes st;
  (* rebuild the delta set from the persisted dirty flags *)
  Db_state.rebuild_dirty st;
  (* the loaded state is the first committed state *)
  Db_state.publish st;
  let db = Database.of_raw st in
  let* () =
    if verify then Consistency.check_database (View.current st) else Ok ()
  in
  Ok db

let decode_snapshot payload =
  let r = R.of_string payload in
  let* v = R.varint r in
  let* () =
    if v = format_version then Ok ()
    else fail (Corrupt (Printf.sprintf "unsupported format version %d" v))
  in
  let* meta = r_meta r in
  let* items = R.list r r_item in
  let* () = R.expect_end r in
  Ok (meta, items)

let decode_db payload =
  let* meta, items = decode_snapshot payload in
  build_db meta items ~verify:true

(* ------------------------------------------------------------------ *)
(* Journal records                                                      *)
(* ------------------------------------------------------------------ *)

let record_meta st =
  let w = W.create () in
  W.u8 w 0;
  w_meta w st;
  W.contents w

let record_item (it : Item.t) =
  let w = W.create () in
  W.u8 w 1;
  w_item w it;
  W.contents w

let apply_records meta_ref items_map records =
  iter_result
    (fun payload ->
      let r = R.of_string payload in
      let* tag = R.u8 r in
      match tag with
      | 0 ->
        let* m = r_meta r in
        let* () = R.expect_end r in
        meta_ref := Some m;
        Ok ()
      | 1 ->
        let* it = r_item r in
        let* () = R.expect_end r in
        items_map := Ident.Map.add it.Item.id it !items_map;
        Ok ()
      | _ -> fail (Corrupt "bad journal record tag"))
    records

let load_parts snapshot records =
  let* base =
    match snapshot with
    | None -> Ok None
    | Some payload ->
      let r = R.of_string payload in
      let* v = R.varint r in
      let* () =
        if v = format_version then Ok ()
        else fail (Corrupt (Printf.sprintf "unsupported format version %d" v))
      in
      let* meta = r_meta r in
      let* items = R.list r r_item in
      let* () = R.expect_end r in
      Ok (Some (meta, items))
  in
  let meta_ref = ref (Option.map fst base) in
  let items_map =
    ref
      (match base with
      | Some (_, items) ->
        List.fold_left
          (fun m (it : Item.t) -> Ident.Map.add it.Item.id it m)
          Ident.Map.empty items
      | None -> Ident.Map.empty)
  in
  let* () = apply_records meta_ref items_map records in
  match !meta_ref with
  | None -> Ok None
  | Some meta ->
    Ok (Some (meta, List.map snd (Ident.Map.bindings !items_map)))

let save db ~dir =
  let* store, _, _, _ = Store.open_dir dir in
  let result = Store.compact store ~snapshot:(encode_db db) in
  Store.close store;
  result

let load ?(verify = true) ~dir () =
  let* store, snapshot, records, _ = Store.open_dir dir in
  Store.close store;
  let* parts = load_parts snapshot records in
  match parts with
  | None -> fail (Io_error ("no database found in " ^ dir))
  | Some (meta, items) -> build_db meta items ~verify

(* ------------------------------------------------------------------ *)
(* Sessions                                                             *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type shadow = { sh_state : Item.state option; sh_history_len : int }

  type t = {
    database : Database.t;
    store : Store.t;
    recovery : Store.recovery;
    shadows : shadow Ident.Tbl.t;
    mutable meta_fingerprint : string;
  }

  let fingerprint st =
    let w = W.create () in
    w_meta w st;
    W.contents w

  let shadow_of (it : Item.t) =
    { sh_state = it.Item.current; sh_history_len = Item.history_size it }

  let remember t (it : Item.t) = Ident.Tbl.replace t.shadows it.Item.id (shadow_of it)

  let snapshot_shadows t =
    Ident.Tbl.reset t.shadows;
    Db_state.iter_items (Database.raw t.database) (fun it -> remember t it)

  let open_ ~dir ?schema ?(verify = true) ?io ?sync ?generations ?partitions
      ?retry ?sleep () =
    let* store, snapshot, records, recovery =
      Store.open_dir ?io ?sync ?generations ?partitions ?retry ?sleep dir
    in
    let* parts = load_parts snapshot records in
    let* database =
      match (parts, schema) with
      | Some (meta, items), _ -> build_db meta items ~verify
      | None, Some schema -> Ok (Database.create schema)
      | None, None ->
        Store.close store;
        fail (Io_error ("no database in " ^ dir ^ " and no schema given"))
    in
    let t =
      {
        database;
        store;
        recovery;
        shadows = Ident.Tbl.create 256;
        meta_fingerprint = fingerprint (Database.raw database);
      }
    in
    snapshot_shadows t;
    Db_state.set_write_stats_source (Database.raw database) (fun () ->
        Store.write_stats store);
    (* a fresh database directory gets an initial meta record so load
       finds something even before the first flush *)
    let* () =
      if parts = None then Store.append store (record_meta (Database.raw database))
      else Ok ()
    in
    Ok t

  let db t = t.database
  let recovery t = t.recovery

  let changed t (it : Item.t) =
    match Ident.Tbl.find_opt t.shadows it.Item.id with
    | None -> true
    | Some sh ->
      (not (sh.sh_state == it.Item.current))
      || sh.sh_history_len <> Item.history_size it

  let flush t =
    let st = Database.raw t.database in
    let dirty_items =
      Db_state.fold_items st ~init:[] ~f:(fun acc it ->
          if changed t it then it :: acc else acc)
      |> List.sort (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)
    in
    let fp = fingerprint st in
    let records =
      List.map record_item dirty_items
      @ (if String.equal fp t.meta_fingerprint then [] else [ record_meta st ])
    in
    (* routed by the root object of the batch: a checkin's group lands
       whole on one journal partition, and conflicting checkins (same
       root, serialized by the server's lock table) share a partition *)
    let key =
      match dirty_items with
      | (it : Item.t) :: _ -> Some (Ident.to_string it.Item.id)
      | [] -> None
    in
    (* one transaction group: a crash mid-flush durably persists either
       the whole batch (items + meta) or none of it — recovery can no
       longer see a prefix of a checkin *)
    let* () = Store.append_group ?key t.store records in
    List.iter (fun it -> remember t it) dirty_items;
    t.meta_fingerprint <- fp;
    Ok ()

  let compact t =
    let* () = Store.compact t.store ~snapshot:(encode_db t.database) in
    snapshot_shadows t;
    t.meta_fingerprint <- fingerprint (Database.raw t.database);
    Ok ()

  let journal_records t = Store.journal_size t.store
  let partitions t = Store.partitions t.store
  let write_stats t = Store.write_stats t.store
  let sync t = Store.sync t.store

  let close t = Store.close t.store
end
