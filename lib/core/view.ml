open Seed_util

type mode = Current | At of Version_id.t

type t = { db_ : Db_state.t; mode : mode }

let current db_ = { db_; mode = Current }
let at db_ vid = { db_; mode = At vid }

let retrieval db_ =
  match Db_state.retrieval_version db_ with
  | None -> current db_
  | Some vid -> at db_ vid

let version t = match t.mode with Current -> None | At v -> Some v
let db t = t.db_

let schema t =
  match t.mode with
  | Current -> Db_state.schema t.db_
  | At v -> (
    match Versioning.find (Db_state.versions t.db_) v with
    | None -> Db_state.schema t.db_
    | Some node -> (
      match Db_state.schema_at_revision t.db_ node.Versioning.schema_rev with
      | Some s -> s
      | None -> Db_state.schema t.db_))

let state t (item : Item.t) =
  match t.mode with
  | Current -> (
    (* resolve by id: items are immutable values, so a handle obtained
       before an update still points at the superseded record *)
    match Db_state.find_item t.db_ item.Item.id with
    | Some it -> it.Item.current
    | None -> None)
  | At v -> (
    (* a materialized view answers from its state table; otherwise walk
       the ancestor chain *)
    match Db_state.cached_version_extent t.db_ v with
    | Some ve -> Db_state.ve_state ve item.Item.id
    | None -> Versioning.state_at (Db_state.versions t.db_) item v)

let live t item =
  match state t item with Some s -> not (Item.state_deleted s) | None -> false

let live_normal t item =
  match state t item with
  | Some s -> (not (Item.state_deleted s)) && not (Item.state_pattern s)
  | None -> false

let live_pattern t item =
  match state t item with
  | Some s -> (not (Item.state_deleted s)) && Item.state_pattern s
  | None -> false

let obj_state t item =
  match state t item with
  | Some (Item.Obj o) -> Some o
  | Some (Item.Rel _) | None -> None

let rel_state t item =
  match state t item with
  | Some (Item.Rel r) -> Some r
  | Some (Item.Obj _) | None -> None

let items_of_ids t ids =
  List.filter_map (Db_state.find_item t.db_) ids

let find_object t name =
  match t.mode with
  | Current -> (
    match Db_state.find_id_by_name t.db_ name with
    | Some id -> (
      match Db_state.find_item t.db_ id with
      | Some it when live t it -> Some it
      | Some _ | None -> None)
    | None -> None)
  | At v -> (
    match Db_state.version_extent t.db_ v with
    | Some ve -> (
      (* the materialized view carries a per-version name index *)
      match Db_state.ve_find_name ve name with
      | Some id -> Db_state.find_item t.db_ id
      | None -> None)
    | None -> (
      (* materialization disabled: scan independent objects, stopping
         at the first hit (names are unique among live objects) *)
      let exception Found of Item.t in
      try
        Db_state.iter_items t.db_ (fun it ->
            if it.Item.body = Item.Independent then
              match obj_state t it with
              | Some { name = Some n; deleted = false; _ }
                when String.equal n name ->
                raise_notrace (Found it)
              | Some _ | None -> ());
        None
      with Found it -> Some it))

let children t id =
  Db_state.children_ids t.db_ id
  |> items_of_ids t
  |> List.filter (live t)
  |> List.sort (fun (a : Item.t) b -> Ident.compare a.id b.id)

let child t id ~role ?index () =
  children t id
  |> List.find_opt (fun (it : Item.t) ->
         match it.body with
         | Item.Dependent d ->
           String.equal d.role role
           && (match index with None -> true | Some i -> d.index = Some i)
         | Item.Independent | Item.Relationship -> false)

let rels t id =
  Db_state.rels_ids t.db_ id
  |> items_of_ids t
  |> List.filter (live t)
  |> List.sort (fun (a : Item.t) b -> Ident.compare a.id b.id)

let inherits_of t item =
  match obj_state t item with Some o -> o.inherits | None -> []

let inheritors_of t id =
  match t.mode with
  | Current ->
    Db_state.inheritor_ids t.db_ id
    |> items_of_ids t
    |> List.filter (fun it ->
           live t it && List.exists (Ident.equal id) (inherits_of t it))
  | At _ ->
    Db_state.fold_items t.db_ ~init:[] ~f:(fun acc it ->
        if
          it.Item.body = Item.Independent
          && live t it
          && List.exists (Ident.equal id) (inherits_of t it)
        then it :: acc
        else acc)
    |> List.sort (fun (a : Item.t) b -> Ident.compare a.id b.id)

let transitive_patterns t item =
  let seen = ref Ident.Set.empty in
  let acc = ref [] in
  let rec go it =
    List.iter
      (fun pid ->
        if not (Ident.Set.mem pid !seen) then begin
          seen := Ident.Set.add pid !seen;
          match Db_state.find_item t.db_ pid with
          | Some p when live_pattern t p ->
            acc := p :: !acc;
            go p
          | Some _ | None -> ()
        end)
      (inherits_of t it)
  in
  go item;
  List.rev !acc

let rec full_name t (item : Item.t) =
  match item.body with
  | Item.Independent -> (
    match obj_state t item with
    | Some { name = Some n; deleted = false; _ } -> Some n
    | Some _ | None -> None)
  | Item.Relationship -> None
  | Item.Dependent { parent; role; index } -> (
    match Db_state.find_item t.db_ parent with
    | None -> None
    | Some p -> (
      match full_name t p with
      | None -> None
      | Some pn ->
        let comp =
          match index with
          | None -> role
          | Some i -> Printf.sprintf "%s[%d]" role i
        in
        if live t item then Some (pn ^ "." ^ comp) else None))

let resolve_name t s =
  match Path.of_string s with
  | Error _ -> None
  | Ok path -> (
    match path with
    | [] -> None
    | root_comp :: rest ->
      if root_comp.Path.index <> None then None
      else
        let rec descend item = function
          | [] -> Some item
          | (c : Path.component) :: rest -> (
            match child t item.Item.id ~role:c.name ?index:c.index () with
            | Some k -> descend k rest
            | None -> None)
        in
        (match find_object t root_comp.Path.name with
        | Some obj -> descend obj rest
        | None -> None))

let class_path_of t item =
  match obj_state t item with Some o -> Some o.cls | None -> None

(* ------------------------------------------------------------------ *)
(* Pattern expansion                                                    *)
(* ------------------------------------------------------------------ *)

type vitem = { item : Item.t; via : (Ident.t * Ident.t) option }

type vrel = {
  rel : Item.t;
  endpoints : Ident.t list;
  via : (Ident.t * Ident.t) option;
}

let vitem_real item = { item; via = None }

let rec relative_components t (item : Item.t) ~root acc =
  (* path components from [root] (exclusive) down to [item] (inclusive) *)
  if Ident.equal item.id root then Some acc
  else
    match item.body with
    | Item.Dependent { parent; role; index } -> (
      match Db_state.find_item t.db_ parent with
      | None -> None
      | Some p ->
        let comp =
          match index with
          | None -> role
          | Some i -> Printf.sprintf "%s[%d]" role i
        in
        relative_components t p ~root (comp :: acc))
    | Item.Independent | Item.Relationship -> None

let vitem_name t (vi : vitem) =
  match vi.via with
  | None -> full_name t vi.item
  | Some (pattern_root, inheritor) -> (
    match Db_state.find_item t.db_ inheritor with
    | None -> None
    | Some inh -> (
      match full_name t inh with
      | None -> None
      | Some base -> (
        match relative_components t vi.item ~root:pattern_root [] with
        | None -> None
        | Some [] -> Some base
        | Some comps -> Some (base ^ "." ^ String.concat "." comps))))

let children_v t (vi : vitem) =
  let own =
    List.map (fun it -> { item = it; via = vi.via }) (children t vi.item.Item.id)
  in
  match (vi.item.Item.body, vi.via) with
  | Item.Independent, None ->
    (* expansion point: a normal object pulls in the sub-trees of all its
       (transitively) inherited patterns *)
    let inherited =
      List.concat_map
        (fun (p : Item.t) ->
          List.map
            (fun it -> { item = it; via = Some (p.Item.id, vi.item.Item.id) })
            (children t p.Item.id))
        (transitive_patterns t vi.item)
    in
    own @ inherited
  | _ -> own

let child_v t (vi : vitem) ~role ?index () =
  children_v t vi
  |> List.find_opt (fun v ->
         match v.item.Item.body with
         | Item.Dependent d ->
           String.equal d.role role
           && (match index with None -> true | Some i -> d.index = Some i)
         | Item.Independent | Item.Relationship -> false)

let rels_v t (obj : Item.t) =
  let real =
    List.filter_map
      (fun (r : Item.t) ->
        match rel_state t r with
        | Some rs when not rs.rel_pattern ->
          Some { rel = r; endpoints = rs.endpoints; via = None }
        | Some _ | None -> None)
      (rels t obj.Item.id)
  in
  let endpoint_visible e =
    match Db_state.find_item t.db_ e with
    | Some it -> live_normal t it
    | None -> false
  in
  let inherited =
    List.concat_map
      (fun (p : Item.t) ->
        List.filter_map
          (fun (r : Item.t) ->
            match rel_state t r with
            | Some rs ->
              let endpoints =
                List.map
                  (fun e ->
                    if Ident.equal e p.Item.id then obj.Item.id else e)
                  rs.endpoints
              in
              let others =
                List.filter
                  (fun e -> not (Ident.equal e obj.Item.id))
                  endpoints
              in
              if List.for_all endpoint_visible others then
                Some { rel = r; endpoints; via = Some (p.Item.id, obj.Item.id) }
              else None
            | None -> None)
          (rels t p.Item.id))
      (transitive_patterns t obj)
  in
  real @ inherited

(* In [Current] mode the class/association extents are exactly the sets
   these functions compute, so enumeration is O(live) instead of O(all
   items ever). Version views ([At _]) enumerate through the
   materialized version extent, falling back to the resolution scan when
   materialization is disabled. Either way the id sets are deliberately
   trusted without a [live] re-check: if extent maintenance ever
   drifted, the equivalence tests would expose it rather than the drift
   being silently papered over. *)

let sorted_items_of_ids t ids =
  List.sort Ident.compare ids |> items_of_ids t

let all_objects t =
  match t.mode with
  | Current -> Db_state.all_obj_extent_ids t.db_ |> sorted_items_of_ids t
  | At v -> (
    match Db_state.version_extent t.db_ v with
    | Some ve -> Db_state.ve_all_obj_ids ve |> sorted_items_of_ids t
    | None ->
      Db_state.fold_items t.db_ ~init:[] ~f:(fun acc it ->
          if it.Item.body = Item.Independent && live_normal t it then it :: acc
          else acc)
      |> List.sort (fun (a : Item.t) b -> Ident.compare a.id b.id))

let all_patterns t =
  match t.mode with
  | Current -> Db_state.all_pattern_extent_ids t.db_ |> sorted_items_of_ids t
  | At v -> (
    match Db_state.version_extent t.db_ v with
    | Some ve -> Db_state.ve_all_pattern_ids ve |> sorted_items_of_ids t
    | None ->
      Db_state.fold_items t.db_ ~init:[] ~f:(fun acc it ->
          if it.Item.body = Item.Independent && live_pattern t it then it :: acc
          else acc)
      |> List.sort (fun (a : Item.t) b -> Ident.compare a.id b.id))

let all_rels t =
  match t.mode with
  | Current -> Db_state.all_rel_extent_ids t.db_ |> sorted_items_of_ids t
  | At v -> (
    match Db_state.version_extent t.db_ v with
    | Some ve -> Db_state.ve_all_rel_ids ve |> sorted_items_of_ids t
    | None ->
      Db_state.fold_items t.db_ ~init:[] ~f:(fun acc it ->
          if it.Item.body = Item.Relationship && live_normal t it then it :: acc
          else acc)
      |> List.sort (fun (a : Item.t) b -> Ident.compare a.id b.id))
