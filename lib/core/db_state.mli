(** Copy-on-write database state: item table, indexes, class/association
    extents, the version tree, and the attached-procedure registry.

    This module is the engine room — it performs no semantic checking.
    {!Database} is the checked operational interface; {!Consistency} and
    {!Completeness} read through these accessors.

    The data lives in an immutable {!root} of persistent maps; a handle
    ([t]) carries a mutable {e working} root plus an atomically
    {e published} root. Mutators replace the working root (sharing all
    untouched branches with the previous one); {!publish} makes it the
    published root with a single atomic store. {!freeze} grabs the
    published root into a read-only handle in O(1) — the basis of
    {!Database.snapshot_view} and lock-free multi-domain readers:
    nothing reachable from a published root is ever mutated.

    Beyond the identity-level indexes, the root maintains {e extents}:
    per-class and per-association sets of the items whose current state
    is live in that class or association. They are maintained
    incrementally on create, delete, re-classify, and rollback, and give
    the {!Query} planner its candidate sets without a full item scan. *)

open Seed_util
open Seed_schema

type root
(** An immutable, internally consistent state of the whole database.
    Cheap to retain: two roots share every branch they did not change. *)

type t
(** A state handle: working/published roots plus handle-private caches
    and registries. Writer handles mutate and publish; frozen handles
    (from {!freeze}) are pinned to one published root and are safe to
    read from any domain. *)

type proc = t -> Event.t -> (unit, Seed_error.t) result
(** An attached procedure: called after the mutation it observes; an
    [Error] vetoes and rolls back the update. *)

type version_extent
(** A materialized view of one saved version — see the
    {e Materialized version views} section. *)

type version_cache_stats = {
  vc_hits : int;
  vc_misses : int;  (** misses = extent builds (reconstruction sweeps) *)
  vc_evictions : int;
}

val create : Schema.t -> t

(** {1 Roots, publication, snapshots} *)

val root : t -> root
(** The working root — every accessor below reads from it. *)

val set_root : t -> root -> unit
(** Replace the working root (op-level rollback: restoring the root
    captured before the op undoes {e everything} the op did). *)

val publish : t -> unit
(** Make the working root the published root (one atomic store) and
    count a commit. No-op while a transaction is open — readers never
    observe uncommitted intermediate states. Also forces the schema's
    memoized closures so reader domains never race on [Lazy.force]. *)

val published_root : t -> root

val freeze : t -> t
(** O(1): a read-only handle pinned to the currently published root,
    with its own private version cache — safe to hand to another
    domain. Counts a snapshot grab. *)

val snapshot_grabs : t -> int
(** Snapshots grabbed via {!freeze} over the handle's lifetime (shared
    with its frozen handles). *)

val commits_published : t -> int
(** Roots published via {!publish} (op and transaction commits). *)

val set_write_stats_source :
  t -> (unit -> (int * Seed_storage.Commit_daemon.stats) list) -> unit
(** Registered by the durable session layer: a thunk yielding the
    store's per-partition group-commit counters, so {!Database.stats}
    can report the write path without this layer holding a store. *)

val write_stats : t -> (int * Seed_storage.Commit_daemon.stats) list
(** Per-partition group-commit counters of the attached store; [[]]
    when the database has no durable session. *)

val begin_txn : t -> unit
(** Pin the working root as the transaction savepoint; {!publish}
    becomes a no-op until commit/rollback. *)

val commit_txn : t -> unit
(** Drop the savepoint and publish the working root. *)

val rollback_txn : t -> unit
(** Restore the working root to the savepoint — O(1), nothing to
    replay. *)

val txn_active : t -> bool

(** {1 Root fields} *)

val schema : t -> Schema.t
val set_schema : t -> Schema.t -> unit

val schemas : t -> (int * Schema.t) list
(** Every schema revision ever in force, newest first — schema versions
    in the sense of the paper. *)

val set_schemas : t -> (int * Schema.t) list -> unit
val versions : t -> Versioning.t
val set_versions : t -> Versioning.t -> unit

val current_base : t -> Version_id.t option
(** The saved version the current state derives from. *)

val set_current_base : t -> Version_id.t option -> unit

val retrieval_version : t -> Version_id.t option
(** The version retrieval operations read from; [None] = current. *)

val set_retrieval_version : t -> Version_id.t option -> unit
val gen : t -> Ident.Gen.t

val find_item : t -> Ident.t -> Item.t option
val find_item_res : t -> Ident.t -> (Item.t, Seed_error.t) result
val item_count : t -> int

val fresh_id : t -> Ident.t

(** {1 Item mutation}

    Each of these replaces the working root with one reflecting the
    change; none publishes. *)

val add_item : t -> Item.t -> unit
(** Insert into the item table and all identity-level indexes, the
    extent of its current state, and the name index when applicable. *)

val add_loaded_item : t -> Item.t -> unit
(** Insert an item loaded from storage: identity indexes are updated
    (covering items that exist only in history); name, inheritor, and
    extent indexes must be rebuilt with {!rebuild_state_indexes}
    afterwards. *)

val remove_item : t -> Item.t -> unit
(** Physically remove a just-created item (update rollback only — user
    deletion is always logical). *)

val replace_state : t -> Ident.t -> Item.state option -> unit
(** Overwrite the item's current state, maintaining the name index and
    all extents (the old state is unindexed, the new one indexed).
    Does not touch the dirty flag — callers {!mark_dirty}. *)

val unsafe_put_item : t -> Item.t -> unit
(** Replace the stored record with {e no} index maintenance — test
    support for tampering with an item behind the API's back. *)

val map_items : t -> (Item.t -> Item.t) -> unit
(** Replace every item by [f item] (branch switch); callers must
    {!rebuild_state_indexes} afterwards. *)

(** {1 Extents}

    Extent membership follows the {e current} state only — version
    views cannot use them and fall back to scans. All accessors return
    ids in unspecified order. *)

val obj_extent_ids : t -> string -> Ident.t list
(** Live normal independent objects classified exactly in this class. *)

val pattern_extent_ids : t -> string -> Ident.t list
val rel_extent_ids : t -> string -> Ident.t list
val rel_pattern_extent_ids : t -> string -> Ident.t list

val obj_extent_count : t -> string -> int
(** [List.length (obj_extent_ids t cls)] without building the list —
    the planner's cardinality estimate. *)

val pattern_extent_count : t -> string -> int
val rel_extent_count : t -> string -> int
val rel_pattern_extent_count : t -> string -> int

val all_obj_extent_ids : t -> Ident.t list
(** Union of {!obj_extent_ids} over all classes — the live normal
    independent objects of the current state. *)

val all_pattern_extent_ids : t -> Ident.t list
val all_rel_extent_ids : t -> Ident.t list
val all_rel_pattern_extent_ids : t -> Ident.t list

val dependent_extent_ids : t -> Ident.t list
val live_dependent_count : t -> int

val all_live_ids : t -> Ident.t list
(** Every item live in the current state (all five extent groups). *)

(** {1 The delta set} *)

val mark_dirty : t -> Item.t -> unit
(** Add to the delta set for the next version snapshot (sets the
    per-item flag). *)

val take_dirty : t -> Item.t list
(** Items changed since the last snapshot; clears the set but not the
    per-item flags (stamping does that). *)

val clear_dirty : t -> unit
(** Reset all dirty flags and the set (after a branch switch). *)

val dirty_ids : t -> Ident.t list

val rebuild_dirty : t -> unit
(** Recompute the delta set from the per-item flags (after a load). *)

val stamp_dirty : t -> Version_id.t -> int
(** Stamp every dirty item's current state under [vid], clearing flags
    and the set; returns the number of items stamped — the delta. *)

val drop_version_stamps : t -> Version_id.t -> unit
(** Remove every item's stamp for a deleted version. *)

(** {1 Identity indexes} *)

val children_ids : t -> Ident.t -> Ident.t list
val rels_ids : t -> Ident.t -> Ident.t list
val inheritor_ids : t -> Ident.t -> Ident.t list

val index_inheritor : t -> pattern:Ident.t -> inheritor:Ident.t -> unit
val unindex_inheritor : t -> pattern:Ident.t -> inheritor:Ident.t -> unit

val index_name : t -> string -> Ident.t -> unit
val unindex_name : t -> string -> unit

val find_id_by_name : t -> string -> Ident.t option
(** Current-state lookup through the name index. *)

val rebuild_state_indexes : t -> unit
(** Recompute the name, inheritor, and extent indexes from current item
    states (after a branch switch or a load). The version cache is
    untouched: it depends only on item histories and the version tree,
    neither of which a branch switch changes. *)

(** {1 Materialized version views}

    Reads against a saved version resolve every item through its
    ancestor chain; a {!version_extent} materializes the whole view
    once — per-class/association live-id arrays (sorted, deduped), the
    name index, and all resolved states — so subsequent reads are
    lookups. Extents live in a bounded LRU cache keyed by version
    label, private to the handle (frozen handles build their own).
    Validity: snapshot labels are never reused, version deletion is
    leaf-only, so a cached extent can only be invalidated by deleting
    its own version ({!invalidate_version_cache}) or replacing the
    whole state (load — the fresh state starts with an empty cache). *)

val version_extent : t -> Version_id.t -> version_extent option
(** The materialized view of a version, built on first access (one
    sweep over the item table) and served from the cache after.
    [None] when the capacity is 0 (materialization disabled) or the
    version is unknown — callers fall back to the resolution scan. *)

val cached_version_extent : t -> Version_id.t -> version_extent option
(** Cache probe without building, for tests and diagnostics. *)

val invalidate_version_cache : t -> Version_id.t -> unit
(** Drop one version's extent (called when the version is deleted). *)

val clear_version_cache : t -> unit

val set_version_cache_capacity : t -> int -> unit
(** Bound the number of materialized versions kept (default 8); excess
    entries are evicted least-recently-used. 0 disables the cache. *)

val version_cache_capacity : t -> int
val version_cache_stats : t -> version_cache_stats

val ve_obj_ids : version_extent -> string -> Ident.t list
(** Live normal independent objects classified exactly in this class,
    in that version, in ascending id order. *)

val ve_pattern_ids : version_extent -> string -> Ident.t list
val ve_rel_ids : version_extent -> string -> Ident.t list
val ve_rel_pattern_ids : version_extent -> string -> Ident.t list
val ve_all_obj_ids : version_extent -> Ident.t list
val ve_all_pattern_ids : version_extent -> Ident.t list
val ve_all_rel_ids : version_extent -> Ident.t list
val ve_dependent_ids : version_extent -> Ident.t list

val ve_class_mem : version_extent -> string -> Ident.t -> bool
(** O(log n) membership in one class's live objects (binary search on
    the sorted array). *)

val ve_obj_count : version_extent -> string -> int
val ve_rel_count : version_extent -> string -> int
val ve_find_name : version_extent -> string -> Ident.t option

val ve_state : version_extent -> Ident.t -> Item.state option
(** The item's resolved state in that version ([None] = does not
    exist there). *)

(** {1 Text index}

    A {!Text_index.t} rides in the root next to the extents, maintained
    by the same hooks: every current-state replacement — create, value
    update, logical delete (cascade included), re-classification, and
    rollback by root swap — keeps it exact over the live object states
    carrying string values, and {!rebuild_state_indexes} rebuilds it
    wholesale on branch switch and load. Being persistent, it is frozen
    for free in every published root and MVCC snapshot. *)

val text_index : t -> Text_index.t option
(** The current state's trigram index; [None] when disabled — the
    planner falls back to scans. *)

val text_index_enabled : t -> bool

val set_text_index_enabled : t -> bool -> unit
(** Disabling drops the index from the working root; re-enabling
    rebuilds it from the item table in one sweep. *)

val rebuilt_text_index : t -> Text_index.t
(** A from-scratch index over the current item states — what the
    incrementally maintained one must equal (soak invariant). *)

val text_stats : t -> Text_index.stats option

val note_text_hit : t -> unit
(** Count a text predicate answered from the index (handle-private,
    like the version-cache counters). *)

val note_text_fallback : t -> unit
(** Count a text predicate that had to scan (index disabled or needle
    too short). *)

val text_counters : t -> int * int
(** [(hits, fallbacks)]. *)

val ve_text_index : version_extent -> Text_index.t
(** The trigram index over a materialized version's string values,
    built lazily on first use and cached on the extent — historical
    text queries plan too. *)

(** {1 Registries (handle-level, not part of the root)} *)

val register_procedure : t -> string -> proc -> unit

val find_procedure : t -> string -> (proc, Seed_error.t) result

val proc_depth : t -> int
val set_proc_depth : t -> int -> unit

val transition_rules :
  t ->
  (string * (t -> base:Version_id.t option -> (unit, Seed_error.t) result)) list

val set_transition_rules :
  t ->
  (string * (t -> base:Version_id.t option -> (unit, Seed_error.t) result)) list ->
  unit

val schema_at_revision : t -> int -> Schema.t option
(** The schema that was in force at a given revision. *)

val iter_items : t -> (Item.t -> unit) -> unit

val fold_items : t -> init:'a -> f:('a -> Item.t -> 'a) -> 'a
