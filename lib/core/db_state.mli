(** Mutable database state: item tables, indexes, class/association
    extents, the version tree, and the attached-procedure registry.

    This module is the engine room — it performs no semantic checking.
    {!Database} is the checked operational interface; {!Consistency} and
    {!Completeness} read through these accessors.

    Beyond the identity-level indexes, the state maintains {e extents}:
    per-class and per-association sets of the items whose current state
    is live in that class or association. They are maintained
    incrementally on create, delete, re-classify, and rollback, and give
    the {!Query} planner its candidate sets without a full item scan. *)

open Seed_util
open Seed_schema

module Name_index : module type of Seed_storage.Btree.Make (String)

type proc = t -> Event.t -> (unit, Seed_error.t) result
(** An attached procedure: called after the mutation it observes; an
    [Error] vetoes and rolls back the update. *)

and version_extent = {
  ve_obj : (string, Ident.t list) Hashtbl.t;
      (** class → live normal independent objects in that version *)
  ve_pattern : (string, Ident.t list) Hashtbl.t;
  ve_rel : (string, Ident.t list) Hashtbl.t;
  ve_rel_pattern : (string, Ident.t list) Hashtbl.t;
  mutable ve_dependents : Ident.t list;
  ve_names : (string, Ident.t) Hashtbl.t;
      (** name → live independent object (patterns included, as in the
          current-state name index) *)
  ve_states : Item.state Ident.Tbl.t;
      (** every resolved state of the version, deleted stamps included;
          an id absent here does not exist in that version *)
  mutable ve_tick : int;
}
(** A materialized view of one saved version — see {!version_extent}. *)

and version_cache_stats = {
  vc_hits : int;
  vc_misses : int;  (** misses = extent builds (reconstruction sweeps) *)
  vc_evictions : int;
}

and t = {
  mutable schema : Schema.t;
  mutable schemas : (int * Schema.t) list;
      (** every schema revision ever in force, newest first — schema
          versions in the sense of the paper *)
  items : Item.t Ident.Tbl.t;
  gen : Ident.Gen.t;
  name_index : Ident.t Name_index.t;
      (** name → id for independent objects live in the current state *)
  children : Ident.Set.t ref Ident.Tbl.t;  (** parent id → sub-object ids *)
  rels_of : Ident.Set.t ref Ident.Tbl.t;  (** object id → relationship ids *)
  inheritors : Ident.Set.t ref Ident.Tbl.t;  (** pattern id → inheritor ids *)
  obj_extent : (string, Ident.Hset.t) Hashtbl.t;
      (** class → live normal independent objects currently in it *)
  pattern_extent : (string, Ident.Hset.t) Hashtbl.t;
      (** class → live pattern objects currently in it *)
  rel_extent : (string, Ident.Hset.t) Hashtbl.t;
      (** association → live normal relationships currently in it *)
  rel_pattern_extent : (string, Ident.Hset.t) Hashtbl.t;
      (** association → live pattern relationships currently in it *)
  dependent_extent : Ident.Hset.t;  (** all live dependent sub-objects *)
  versions : Versioning.t;
  version_cache : (Version_id.t, version_extent) Hashtbl.t;
      (** LRU-bounded materialized version views; see {!version_extent} *)
  mutable version_cache_capacity : int;
  mutable version_cache_tick : int;
  mutable vc_hit_count : int;
  mutable vc_miss_count : int;
  mutable vc_eviction_count : int;
  mutable current_base : Version_id.t option;
      (** the saved version the current state derives from *)
  mutable retrieval_version : Version_id.t option;
      (** the version retrieval operations read from; [None] = current *)
  dirty_set : Ident.Hset.t;
      (** candidate delta set: ids marked since the last snapshot; the
          per-item [dirty] flag is authoritative (rollback may leave
          stale entries, filtered on {!take_dirty}) *)
  procedures : (string, proc) Hashtbl.t;
  mutable proc_depth : int;
      (** attached-procedure nesting depth (recursion guard) *)
  mutable transition_rules :
    (string * (t -> base:Version_id.t option -> (unit, Seed_error.t) result))
    list;
      (** history-sensitive consistency rules, checked when a version is
          created (paper §Discussion lists these as an open problem) *)
  mutable txn_undo : (unit -> unit) list option;
      (** the undo log of the active transaction, newest entry first;
          [None] = no transaction is recording. Owned by
          {!Database.with_transaction}. *)
}

val create : Schema.t -> t

val txn_active : t -> bool
(** A transaction is recording undo entries. *)

val log_undo : t -> (unit -> unit) -> unit
(** Record the inverse of a mutation about to be applied. A no-op
    outside a transaction. Entries are replayed newest-first on
    rollback, so log {e before} mutating and make the inverse an
    absolute restore (safe to run more than once). *)

val find_item : t -> Ident.t -> Item.t option
val find_item_res : t -> Ident.t -> (Item.t, Seed_error.t) result

val fresh_id : t -> Ident.t

val add_item : t -> Item.t -> unit
(** Insert into the item table and all identity-level indexes, the
    extent of its current state, and the name index when applicable. *)

val add_loaded_item : t -> Item.t -> unit
(** Insert an item loaded from storage: identity indexes are updated
    (covering items that exist only in history); name, inheritor, and
    extent indexes must be rebuilt with {!rebuild_state_indexes}
    afterwards. *)

val remove_item : t -> Item.t -> unit
(** Physically remove a just-created item (update rollback only — user
    deletion is always logical). *)

(** {1 Extents}

    Extent membership follows the {e current} state only — version
    views cannot use them and fall back to scans. All accessors return
    ids in unspecified order. *)

val index_extent : t -> Item.t -> unit
(** Enter the item's current state into its extent. {!Database} calls
    this after every current-state overwrite (update and rollback);
    deleted or stateless items are not entered. *)

val unindex_extent : t -> Item.t -> unit
(** Drop the item's current-state extent membership. Must be called
    {e before} the current state is overwritten. *)

val obj_extent_ids : t -> string -> Ident.t list
(** Live normal independent objects classified exactly in this class. *)

val pattern_extent_ids : t -> string -> Ident.t list
val rel_extent_ids : t -> string -> Ident.t list
val rel_pattern_extent_ids : t -> string -> Ident.t list

val all_obj_extent_ids : t -> Ident.t list
(** Union of {!obj_extent_ids} over all classes — the live normal
    independent objects of the current state. *)

val all_pattern_extent_ids : t -> Ident.t list
val all_rel_extent_ids : t -> Ident.t list
val all_rel_pattern_extent_ids : t -> Ident.t list

val dependent_extent_ids : t -> Ident.t list
val live_dependent_count : t -> int

val all_live_ids : t -> Ident.t list
(** Every item live in the current state (all five extent groups). *)

val mark_dirty : t -> Item.t -> unit
(** Add to the delta set for the next version snapshot. *)

val take_dirty : t -> Item.t list
(** Items changed since the last snapshot; clears the set but not the
    per-item flags (stamping does that). *)

val clear_dirty : t -> unit
(** Reset all dirty flags and the set (after a branch switch). *)

val dirty_ids : t -> Ident.t list
(** The candidate delta set (callers filter on the per-item flag). *)

val children_ids : t -> Ident.t -> Ident.t list
val rels_ids : t -> Ident.t -> Ident.t list
val inheritor_ids : t -> Ident.t -> Ident.t list

val index_inheritor : t -> pattern:Ident.t -> inheritor:Ident.t -> unit
val unindex_inheritor : t -> pattern:Ident.t -> inheritor:Ident.t -> unit

val index_name : t -> string -> Ident.t -> unit
val unindex_name : t -> string -> unit

val find_id_by_name : t -> string -> Ident.t option
(** Current-state lookup through the name index. *)

val rebuild_state_indexes : t -> unit
(** Recompute the name, inheritor, and extent indexes from current item
    states (after a branch switch or a load). The version cache is
    untouched: it depends only on item histories and the version tree,
    neither of which a branch switch changes. *)

(** {1 Materialized version views}

    Reads against a saved version resolve every item through its
    ancestor chain; a {!version_extent} materializes the whole view
    once — per-class/association live-id lists, the name index, and all
    resolved states — so subsequent reads are lookups. Extents live in
    a bounded LRU cache keyed by version label. Validity: snapshot
    labels are never reused, version deletion is leaf-only, so a cached
    extent can only be invalidated by deleting its own version
    ({!invalidate_version_cache}) or replacing the whole state (load —
    the fresh state starts with an empty cache). *)

val version_extent : t -> Version_id.t -> version_extent option
(** The materialized view of a version, built on first access (one
    sweep over the item table) and served from the cache after.
    [None] when the capacity is 0 (materialization disabled) or the
    version is unknown — callers fall back to the resolution scan. *)

val cached_version_extent : t -> Version_id.t -> version_extent option
(** Cache probe without building, for tests and diagnostics. *)

val invalidate_version_cache : t -> Version_id.t -> unit
(** Drop one version's extent (called when the version is deleted). *)

val clear_version_cache : t -> unit

val set_version_cache_capacity : t -> int -> unit
(** Bound the number of materialized versions kept (default 8); excess
    entries are evicted least-recently-used. 0 disables the cache. *)

val version_cache_capacity : t -> int
val version_cache_stats : t -> version_cache_stats

val ve_obj_ids : version_extent -> string -> Ident.t list
(** Live normal independent objects classified exactly in this class,
    in that version. *)

val ve_pattern_ids : version_extent -> string -> Ident.t list
val ve_rel_ids : version_extent -> string -> Ident.t list
val ve_rel_pattern_ids : version_extent -> string -> Ident.t list
val ve_all_obj_ids : version_extent -> Ident.t list
val ve_all_pattern_ids : version_extent -> Ident.t list
val ve_all_rel_ids : version_extent -> Ident.t list
val ve_dependent_ids : version_extent -> Ident.t list
val ve_find_name : version_extent -> string -> Ident.t option

val ve_state : version_extent -> Ident.t -> Item.state option
(** The item's resolved state in that version ([None] = does not
    exist there). *)

val register_procedure : t -> string -> proc -> unit

val find_procedure : t -> string -> (proc, Seed_error.t) result

val schema_at_revision : t -> int -> Schema.t option
(** The schema that was in force at a given revision. *)

val iter_items : t -> (Item.t -> unit) -> unit

val fold_items : t -> init:'a -> f:('a -> Item.t -> 'a) -> 'a
