(** The version tree and state resolution.

    Versions are created explicitly by taking a snapshot of the database;
    they form a tree whose decimal labels reflect the history (paper,
    §Versions). Only the {e changed} items are stamped at each snapshot
    (delta storage); the view of version [v] resolves each item to the
    stamp of the nearest ancestor of [v] in this tree — the tree
    generalization of the paper's "greatest version number that is less
    than or equal to n".

    The tree is a persistent value: [derive]/[delete] return a new tree,
    so it lives inside the copy-on-write database root and pinned
    snapshots keep resolving against the tree they were taken with. *)

open Seed_util

type node = {
  vid : Version_id.t;
  parent : Version_id.t option;  (** [None] for first-trunk versions *)
  children_rev : Version_id.t list;
      (** derived versions, newest first (prepend keeps creation O(1));
          read through {!children} for creation order *)
  seq : int;  (** global creation order *)
  schema_rev : int;  (** schema revision in force when the snapshot was taken *)
  next_branch : int;  (** next branch index to hand out *)
  ancestors : Version_id.t list;
      (** [vid] first, then the parent chain up to a trunk root —
          precomputed at creation (parents are immutable and only leaves
          can be deleted, so the chain never goes stale) *)
}

type t

val empty : t

val create : unit -> t
(** Alias of {!empty} for call sites that read better imperatively. *)

val is_empty : t -> bool

val mem : t -> Version_id.t -> bool

val find : t -> Version_id.t -> node option

val find_res : t -> Version_id.t -> (node, Seed_error.t) result

val trunk_count : t -> int
(** Number of trunk versions created so far. *)

val children : node -> Version_id.t list
(** Directly derived versions, in creation order. *)

val has_children : node -> bool

val derive :
  t ->
  base:Version_id.t option ->
  schema_rev:int ->
  (Version_id.t * t, Seed_error.t) result
(** Allocate the next version label derived from [base] and record it:
    continuing from the latest trunk version (or from nothing) extends
    the trunk ([m.0] → [(m+1).0]); deriving from any other version
    opens a branch ([m.0] → [m.k], branch [l] → [l.k]). *)

val ancestors : t -> Version_id.t -> Version_id.t list
(** [v] first, then its parent chain up to a trunk root. Includes the
    implicit trunk predecessors: the parent of trunk version [m.0] is
    [(m-1).0]. *)

val state_at : t -> Item.t -> Version_id.t -> Item.state option
(** Resolve an item's state in the view of a version: the stamp at the
    nearest ancestor. [None] when the item does not exist there. The
    precomputed ancestor chain plus the item's stamp map make this
    O(depth × log stamps) without rebuilding the chain per call. *)

val delete : t -> Version_id.t -> (t, Seed_error.t) result
(** Remove a leaf version. Versions with descendants cannot be deleted
    (their views depend on the deleted stamps). *)

val all : t -> node list
(** All versions in creation order. *)

val since : t -> Version_id.t -> node list
(** Versions created at or after the given one, in creation order —
    the basis of "find all versions ... beginning with version 2.0". *)

(** {1 Persistence support} *)

type raw = {
  r_vid : Version_id.t;
  r_parent : Version_id.t option;
  r_seq : int;
  r_schema_rev : int;
  r_next_branch : int;
}

val dump : t -> int * raw list
(** [(trunk_count, nodes)] in creation order. *)

val restore : trunk:int -> nodes:raw list -> t
(** Rebuild a tree from a {!dump}; children lists, ancestor chains and
    the sequence counter are recomputed. *)
