open Seed_util

(* ------------------------------------------------------------------ *)
(* Trigram positional index                                             *)
(*                                                                      *)
(* Containment search without scans: every indexed string ("document",  *)
(* carried by exactly one item) is decomposed into its overlapping      *)
(* 3-byte substrings, and the index maps each trigram to a posting map  *)
(* carrier id -> sorted array of byte offsets at which the trigram      *)
(* occurs. A needle of length n >= 3 contains the trigram instances     *)
(* needle[i..i+2] for i = 0..n-3; a document contains the needle at     *)
(* offset p iff every instance i occurs in it at p + i. Intersecting    *)
(* the per-trigram carrier sets gives the candidates; checking the      *)
(* position lists for one aligned start verifies them exactly — no      *)
(* false positives, and the document text is never fetched.             *)
(*                                                                      *)
(* The structure is built from the same persistent maps as the          *)
(* database root, so copying it into a new root is O(1) and a frozen    *)
(* MVCC snapshot sees a frozen index for free.                          *)
(* ------------------------------------------------------------------ *)

(* A posting list carries its cardinality: stdlib [Map.cardinal] is
   O(n), and the planner must rank trigrams rarest-first on every
   query — over a common trigram's 100k-entry posting map that walk
   would dwarf the search itself. *)
type posting = { size : int; docs : int array Ident.Map.t }

type t = {
  grams : posting Smap.t;
      (* trigram -> carrier id -> sorted occurrence offsets *)
  paths : string Ident.Map.t;
      (* carrier id -> attribute (class) path of the indexed value *)
  ndocs : int;  (* cardinal of [paths] — O(1) for the planner's cutoff *)
  positions : int;  (* total offsets indexed, maintained incrementally *)
}

let empty =
  { grams = Smap.empty; paths = Ident.Map.empty; ndocs = 0; positions = 0 }

let is_empty t = Ident.Map.is_empty t.paths
let doc_count t = t.ndocs
let path_of t id = Ident.Map.find_opt id t.paths

let min_needle = 3

(* The distinct trigrams of [s] with their occurrence offsets, offsets
   accumulated in decreasing order (reversed on use). *)
let doc_grams s =
  let tbl = Hashtbl.create 64 in
  for i = 0 to String.length s - 3 do
    let g = String.sub s i 3 in
    Hashtbl.replace tbl g
      (i :: (match Hashtbl.find_opt tbl g with Some l -> l | None -> []))
  done;
  tbl

let add_doc t id ~path s =
  let grams, added =
    Hashtbl.fold
      (fun g rev_offs (grams, added) ->
        let offs = Array.of_list (List.rev rev_offs) in
        let p =
          match Smap.find_opt g grams with
          | Some p -> p
          | None -> { size = 0; docs = Ident.Map.empty }
        in
        let size = if Ident.Map.mem id p.docs then p.size else p.size + 1 in
        ( Smap.add g { size; docs = Ident.Map.add id offs p.docs } grams,
          added + Array.length offs ))
      (doc_grams s) (t.grams, 0)
  in
  {
    grams;
    paths = Ident.Map.add id path t.paths;
    ndocs = (if Ident.Map.mem id t.paths then t.ndocs else t.ndocs + 1);
    positions = t.positions + added;
  }

let remove_doc t id s =
  if not (Ident.Map.mem id t.paths) then t
  else
    let grams, removed =
      Hashtbl.fold
        (fun g _ (grams, removed) ->
          match Smap.find_opt g grams with
          | None -> (grams, removed)
          | Some p -> (
            match Ident.Map.find_opt id p.docs with
            | None -> (grams, removed)
            | Some offs ->
              let docs = Ident.Map.remove id p.docs in
              let grams =
                if Ident.Map.is_empty docs then Smap.remove g grams
                else Smap.add g { size = p.size - 1; docs } grams
              in
              (grams, removed + Array.length offs)))
        (doc_grams s) (t.grams, 0)
    in
    {
      grams;
      paths = Ident.Map.remove id t.paths;
      ndocs = t.ndocs - 1;
      positions = t.positions - removed;
    }

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)
(* ------------------------------------------------------------------ *)

type probe = {
  pr_trigrams : int;  (* distinct needle trigrams consulted *)
  pr_postings : int;  (* posting entries across their lists *)
  pr_candidates : int;  (* carriers surviving the intersection *)
  pr_verified : int;  (* carriers surviving positional verification *)
}

let int_mem a x =
  let lo = ref 0 and hi = ref (Array.length a) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = x then found := true
    else if x < a.(mid) then hi := mid
    else lo := mid + 1
  done;
  !found

let query_probe t ?path needle =
  if String.length needle < min_needle then
    invalid_arg "Text_index.query: needle shorter than 3 bytes";
  let instances =
    Hashtbl.fold
      (fun g rev_offs acc ->
        let posting =
          match Smap.find_opt g t.grams with
          | Some p -> p
          | None -> { size = 0; docs = Ident.Map.empty }
        in
        (List.rev rev_offs, posting) :: acc)
      (doc_grams needle) []
  in
  let postings =
    List.fold_left (fun acc (_, p) -> acc + p.size) 0 instances
  in
  (* intersect starting from the rarest trigram *)
  let instances =
    List.sort (fun (_, a) (_, b) -> compare a.size b.size) instances
  in
  let path_ok id =
    match path with
    | None -> true
    | Some p -> (
      match Ident.Map.find_opt id t.paths with
      | Some q -> String.equal p q
      | None -> false)
  in
  match instances with
  | [] -> assert false (* needle >= 3 bytes has at least one trigram *)
  | ((offs0, p0) :: rest) as all ->
    let off0 = List.hd offs0 in
    let candidates = ref 0 in
    let verified = ref Ident.Set.empty in
    Ident.Map.iter
      (fun id offsets0 ->
        if
          path_ok id
          && List.for_all (fun (_, p) -> Ident.Map.mem id p.docs) rest
        then begin
          incr candidates;
          (* candidate starts come from the rarest instance's offsets;
             a start is a match iff every instance aligns with it *)
          let ok =
            Array.exists
              (fun q ->
                let p = q - off0 in
                p >= 0
                && List.for_all
                     (fun (offs, inst) ->
                       match Ident.Map.find_opt id inst.docs with
                       | None -> false
                       | Some pos ->
                         List.for_all (fun off -> int_mem pos (p + off)) offs)
                     all)
              offsets0
          in
          if ok then verified := Ident.Set.add id !verified
        end)
      p0.docs;
    ( !verified,
      {
        pr_trigrams = List.length all;
        pr_postings = postings;
        pr_candidates = !candidates;
        pr_verified = Ident.Set.cardinal !verified;
      } )

let query t ?path needle = fst (query_probe t ?path needle)

(* Upper bound on the candidates [query] would verify: the size of the
   needle's rarest posting list (0 when some trigram is absent). O(#
   needle trigrams) — the planner uses it to refuse needles so common
   that walking their postings would cost more than the scan. *)
let estimate t needle =
  if String.length needle < min_needle then
    invalid_arg "Text_index.estimate: needle shorter than 3 bytes";
  Hashtbl.fold
    (fun g _ acc ->
      let size =
        match Smap.find_opt g t.grams with Some p -> p.size | None -> 0
      in
      min size acc)
    (doc_grams needle) max_int

(* Naive scan-side containment — the semantics the index answers. *)
let string_contains hay needle =
  let n = String.length needle and h = String.length hay in
  if n = 0 then true
  else if n > h then false
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= h - n do
      if String.sub hay !i n = needle then found := true else incr i
    done;
    !found
  end

(* ------------------------------------------------------------------ *)
(* Stats and structural equality                                        *)
(* ------------------------------------------------------------------ *)

type stats = {
  trigrams : int;
  postings : int;
  positions : int;
  docs : int;
  bytes : int;  (* rough resident-size estimate *)
}

let stats t =
  let trigrams = Smap.cardinal t.grams in
  let postings = Smap.fold (fun _ p acc -> acc + p.size) t.grams 0 in
  (* estimate: a map node per trigram and per posting, a word per
     position, a node plus the path string per document *)
  let path_bytes = Ident.Map.fold (fun _ p acc -> acc + String.length p) t.paths 0 in
  let bytes =
    (trigrams * 64) + (postings * 56) + (t.positions * 8)
    + (doc_count t * 48) + path_bytes
  in
  { trigrams; postings; positions = t.positions; docs = doc_count t; bytes }

let equal a b =
  Ident.Map.equal String.equal a.paths b.paths
  && Smap.equal
       (fun p q ->
         p.size = q.size
         && Ident.Map.equal (fun (x : int array) y -> x = y) p.docs q.docs)
       a.grams b.grams
