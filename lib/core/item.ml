open Seed_util
open Seed_schema

type obj_state = {
  name : string option;
  cls : string;
  value : Value.t option;
  pattern : bool;
  inherits : Ident.t list;
  deleted : bool;
}

type rel_state = {
  assoc : string;
  endpoints : Ident.t list;
  rel_attrs : (string * Value.t) list;
  rel_pattern : bool;
  rel_deleted : bool;
}

type state = Obj of obj_state | Rel of rel_state

type body =
  | Independent
  | Dependent of { parent : Ident.t; role : string; index : int option }
  | Relationship

type t = {
  id : Ident.t;
  body : body;
  current : state option;
  dirty : bool;
  history : state Version_id.Map.t;
}

(* dirty starts false so that Db_state.mark_dirty both sets the flag and
   enqueues the item in the delta set *)
let make id body state =
  { id; body; current = Some state; dirty = false; history = Version_id.Map.empty }

let with_current t current = { t with current }
let with_dirty t dirty = if t.dirty = dirty then t else { t with dirty }

let state_deleted = function
  | Obj o -> o.deleted
  | Rel r -> r.rel_deleted

let state_pattern = function
  | Obj o -> o.pattern
  | Rel r -> r.rel_pattern

let is_live t =
  match t.current with Some s -> not (state_deleted s) | None -> false

let is_live_normal t =
  match t.current with
  | Some s -> (not (state_deleted s)) && not (state_pattern s)
  | None -> false

let is_live_pattern t =
  match t.current with
  | Some s -> (not (state_deleted s)) && state_pattern s
  | None -> false

let obj_state t =
  match t.current with Some (Obj o) -> Some o | Some (Rel _) | None -> None

let rel_state t =
  match t.current with Some (Rel r) -> Some r | Some (Obj _) | None -> None

let stamp_at t vid = Version_id.Map.find_opt vid t.history

let stamp t vid =
  let history =
    match t.current with
    | Some s -> Version_id.Map.add vid s t.history
    | None -> t.history
  in
  { t with history; dirty = false }

let drop_stamp t vid =
  if Version_id.Map.mem vid t.history then
    { t with history = Version_id.Map.remove vid t.history }
  else t

let history_is_empty t = Version_id.Map.is_empty t.history
let history_size t = Version_id.Map.cardinal t.history
let history_bindings t = Version_id.Map.bindings t.history

let history_of_bindings l =
  List.fold_left (fun m (v, s) -> Version_id.Map.add v s m) Version_id.Map.empty l

let history_exists f t = Version_id.Map.exists (fun _ s -> f s) t.history
let any_history_state t = Option.map snd (Version_id.Map.choose_opt t.history)

let kind_name t =
  match t.body with
  | Independent -> "object"
  | Dependent _ -> "sub-object"
  | Relationship -> "relationship"
