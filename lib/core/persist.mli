(** Durable storage for SEED databases.

    A database directory holds an atomic snapshot plus an append-only
    journal ({!Seed_storage.Store}). Journal records are idempotent full
    re-assignments of items (last record wins); on top of that, every
    record and snapshot carries a compaction epoch, so a stale journal
    left behind by a crash mid-compaction is detected and skipped
    rather than replayed (see {!Seed_storage.Store}).

    {!Session} is the intended interface: open a directory, mutate the
    database through {!Database}, call {!Session.flush} at transaction
    boundaries (it appends only the items that changed since the last
    flush) and {!Session.compact} occasionally. The durability of each
    flush is set by the session's {!Seed_storage.Journal.sync_policy};
    what recovery found and repaired on open is in
    {!Session.recovery}. *)

open Seed_util
open Seed_schema

val encode_db : Database.t -> string
(** Whole-database snapshot payload. *)

val decode_db : string -> (Database.t, Seed_error.t) result

val save : Database.t -> dir:string -> (unit, Seed_error.t) result
(** One-shot: write a snapshot of the database into [dir] (creating it),
    truncating any journal. *)

val load : ?verify:bool -> dir:string -> unit -> (Database.t, Seed_error.t) result
(** Rebuild a database from [dir]: snapshot plus journal replay. With
    [verify] (default [true]) the loaded state is swept by
    {!Consistency.check_database} and refused when corrupt. *)

module Session : sig
  type t

  val open_ :
    dir:string -> ?schema:Schema.t -> ?verify:bool ->
    ?io:Seed_storage.Io.t -> ?sync:Seed_storage.Store.sync_policy ->
    ?generations:int -> ?partitions:int -> ?retry:Retry.policy ->
    ?sleep:(float -> unit) ->
    unit ->
    (t, Seed_error.t) result
  (** Open (or create, given [schema]) the database at [dir]. Opening an
      empty directory without a schema fails. [sync] (default
      [`Flush_only]) sets the durability of every journal append; [io]
      substitutes the I/O environment (fault injection in tests);
      [generations] (default 2) how many old snapshots compaction keeps
      for generation-by-generation recovery fallback; [partitions]
      (default 1) how many journal partitions the store writes to —
      each with its own group-commit daemon and fsync stream, merged
      back into one replay order on open; [retry]/[sleep] the
      bounded-backoff policy absorbing transient I/O faults (see
      {!Seed_storage.Store.open_dir}). *)

  val db : t -> Database.t

  val recovery : t -> Seed_storage.Store.recovery
  (** What recovery found (and repaired) when the store was opened:
      records replayed, torn-tail bytes dropped, whether a stale journal
      was skipped or the snapshot fallback was used. *)

  val flush : t -> (unit, Seed_error.t) result
  (** Append journal records for every item whose state or history
      changed since the last flush, plus a metadata record when the
      version tree, schema, or id generator advanced. The batch is one
      atomic transaction group, routed whole to the journal partition
      of the batch's first (root) dirty item; concurrent flushes
      coalesce into shared fsyncs via the partition's commit daemon. *)

  val compact : t -> (unit, Seed_error.t) result
  (** Write a fresh snapshot and truncate the journal. *)

  val journal_records : t -> int
  (** Records in the journal since the last compaction. *)

  val partitions : t -> int
  (** Journal partitions the session's store writes to. *)

  val write_stats : t -> (int * Seed_storage.Commit_daemon.stats) list
  (** Per-partition group-commit counters (see
      {!Seed_storage.Store.write_stats}). *)

  val sync : t -> (unit, Seed_error.t) result
  (** fsync the journal: everything flushed so far becomes durable
      regardless of the session's sync policy. *)

  val close : t -> unit
end
