open Seed_util
open Seed_error

type entry = { version : Version_id.t; state : Item.state; seq : int }

let stamps_of db id =
  let st = Database.raw db in
  match Db_state.find_item st id with
  | None -> []
  | Some item ->
    List.filter_map
      (fun (vid, state) ->
        match Versioning.find (Db_state.versions st) vid with
        | Some node -> Some { version = vid; state; seq = node.Versioning.seq }
        | None -> None)
      (Item.history_bindings item)
    |> List.sort (fun a b -> Int.compare a.seq b.seq)

let versions_of db id ?from_ () =
  let st = Database.raw db in
  let* _ = Db_state.find_item_res st id in
  let all = stamps_of db id in
  match from_ with
  | None -> Ok all
  | Some v ->
    let* node = Versioning.find_res (Db_state.versions st) v in
    Ok (List.filter (fun e -> e.seq >= node.Versioning.seq) all)

let find_item_by_name_anywhere db name =
  let st = Database.raw db in
  match Database.find_object db name with
  | Some id -> Db_state.find_item st id
  | None ->
    (* search history: any stamp carrying this name *)
    let found = ref None in
    Db_state.iter_items st (fun it ->
        if !found = None && it.Item.body = Item.Independent then
          let matches = function
            | Item.Obj { Item.name = Some n; _ } -> String.equal n name
            | Item.Obj _ | Item.Rel _ -> false
          in
          let in_history = Item.history_exists matches it in
          let in_current =
            match it.Item.current with Some s -> matches s | None -> false
          in
          if in_history || in_current then found := Some it);
    !found

let versions_of_object db name ?from_ () =
  match find_item_by_name_anywhere db name with
  | None -> fail (Unknown_object name)
  | Some item -> versions_of db item.Item.id ?from_ ()

let state_in db id vid =
  let st = Database.raw db in
  let* item = Db_state.find_item_res st id in
  let* _ = Versioning.find_res (Db_state.versions st) vid in
  Ok (Versioning.state_at (Db_state.versions st) item vid)

let changed_between db v1 v2 =
  let st = Database.raw db in
  let* _ = Versioning.find_res (Db_state.versions st) v1 in
  let* _ = Versioning.find_res (Db_state.versions st) v2 in
  let changed =
    (* with both views materialized, the diff is two table lookups per
       item instead of two ancestor-chain resolutions *)
    match (Db_state.version_extent st v1, Db_state.version_extent st v2) with
    | Some e1, Some e2 ->
      Db_state.fold_items st ~init:[] ~f:(fun acc item ->
          if Db_state.ve_state e1 item.Item.id <> Db_state.ve_state e2 item.Item.id
          then item.Item.id :: acc
          else acc)
    | _ ->
      Db_state.fold_items st ~init:[] ~f:(fun acc item ->
          let s1 = Versioning.state_at (Db_state.versions st) item v1 in
          let s2 = Versioning.state_at (Db_state.versions st) item v2 in
          if s1 <> s2 then item.Item.id :: acc else acc)
  in
  Ok (List.sort Ident.compare changed)

let version_path db vid =
  let st = Database.raw db in
  List.rev (Versioning.ancestors (Db_state.versions st) vid)

let pp_entry ppf e =
  let describe = function
    | Item.Obj o ->
      Printf.sprintf "class %s%s%s" o.Item.cls
        (match o.Item.value with
        | Some v -> " = " ^ Seed_schema.Value.to_string v
        | None -> "")
        (if o.Item.deleted then " (deleted)" else "")
    | Item.Rel r ->
      Printf.sprintf "assoc %s%s" r.Item.assoc
        (if r.Item.rel_deleted then " (deleted)" else "")
  in
  Fmt.pf ppf "%a: %s" Version_id.pp e.version (describe e.state)
