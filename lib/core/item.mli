(** Data items: objects, dependent sub-objects, and relationships.

    An item separates {e identity} — allocated once, immutable — from
    {e state} — everything an update can change, and therefore
    everything a version snapshot must capture. Logical deletion is a
    state whose [deleted] flag is set, never physical removal, which is
    what makes SEED's delta-based version storage possible (paper,
    §Versions: "items that have been deleted ... is made easy by marking
    items as deleted instead of removing them physically"). *)

open Seed_util
open Seed_schema

type obj_state = {
  name : string option;
      (** independent objects only; dependent names are composed *)
  cls : string;
      (** top-level class (independent) or resolved class path such as
          ["Data.Text.Body"] (dependent); changes on re-classification *)
  value : Value.t option;  (** leaf content *)
  pattern : bool;  (** pattern items are invisible to normal retrieval *)
  inherits : Ident.t list;
      (** patterns this object inherits, in inheritance order *)
  deleted : bool;
}

type rel_state = {
  assoc : string;  (** association name; changes on re-classification *)
  endpoints : Ident.t list;
      (** positional: element [i] plays role [i] of the association *)
  rel_attrs : (string * Value.t) list;
      (** relationship attributes (Fig. 3's [NumberOfWrites]); undefined
          attributes are simply absent *)
  rel_pattern : bool;
  rel_deleted : bool;
}

type state = Obj of obj_state | Rel of rel_state

type body =
  | Independent
  | Dependent of { parent : Ident.t; role : string; index : int option }
  | Relationship

type t = {
  id : Ident.t;
  body : body;
  current : state option;
      (** working state; [None] when the item does not exist in the
          current alternative (it was created on another branch) *)
  dirty : bool;  (** changed since the last version stamp — the delta set *)
  history : state Version_id.Map.t;
      (** version stamps keyed by version label, so resolving one stamp
          is a map lookup instead of an assoc-list walk; grow-only
          except for version deletion *)
}
(** Items are immutable values: an update replaces the item in the
    database root with a copy carrying the new state, so any pinned
    snapshot of an older root keeps seeing the unmodified item. *)

val make : Ident.t -> body -> state -> t
(** Fresh item with the given initial current state. The dirty flag
    starts clear; creation paths call [Db_state.mark_dirty], which both
    sets it and enqueues the item in the delta set. *)

val with_current : t -> state option -> t
(** Copy with a different working state. *)

val with_dirty : t -> bool -> t
(** Copy with the dirty flag set/cleared ([t] itself when unchanged). *)

val state_deleted : state -> bool
val state_pattern : state -> bool

val is_live : t -> bool
(** Has a current state that is not deleted. *)

val is_live_normal : t -> bool
(** Live and not a pattern — visible to normal retrieval. *)

val is_live_pattern : t -> bool

val obj_state : t -> obj_state option
(** Current state when the item is an object. *)

val rel_state : t -> rel_state option

val stamp_at : t -> Version_id.t -> state option
(** The state stamped exactly at the given version, if any. *)

val stamp : t -> Version_id.t -> t
(** Copy with the current state recorded under [vid] and the dirty flag
    cleared. *)

val drop_stamp : t -> Version_id.t -> t
(** Copy without the stamp for a deleted version ([t] itself when the
    stamp is absent). *)

val history_is_empty : t -> bool

val history_size : t -> int
(** Number of version stamps the item carries. *)

val history_bindings : t -> (Version_id.t * state) list
(** All stamps, ordered by version label (canonical order for
    serialization; creation order requires the version tree's [seq]). *)

val history_of_bindings : (Version_id.t * state) list -> state Version_id.Map.t
(** Rebuild a history map from serialized bindings (any order). *)

val history_exists : (state -> bool) -> t -> bool
(** Some stamp satisfies the predicate. *)

val any_history_state : t -> state option
(** An arbitrary stamped state — for indexes over state components that
    never change across stamps (e.g. relationship endpoints). *)

val kind_name : t -> string
(** ["object"], ["sub-object"] or ["relationship"] for messages. *)
