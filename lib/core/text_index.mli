(** Trigram positional index over string values — the access path behind
    [Query.contains]/[Query.matches] (DESIGN.md §14).

    Each indexed string is owned by exactly one carrier item; the index
    maps every overlapping 3-byte substring to a posting map
    [carrier id -> sorted occurrence offsets]. Containment is answered
    by intersecting the carrier sets of the needle's trigrams and then
    verifying positional alignment, which is exact: a carrier survives
    iff the literal needle occurs in its text, so no document string is
    ever fetched at query time.

    The structure is persistent (built from [Smap]/[Ident.Map]), so it
    rides inside the copy-on-write database root: snapshots freeze it
    for free, and transaction rollback restores it by root swap. *)

open Seed_util

type t

val empty : t
val is_empty : t -> bool

val doc_count : t -> int
(** Number of indexed carriers (documents). *)

val path_of : t -> Ident.t -> string option
(** The attribute (class) path recorded for a carrier. *)

val min_needle : int
(** Shortest needle the index can answer (3 bytes — one trigram).
    Shorter needles must fall back to a scan. *)

val add_doc : t -> Ident.t -> path:string -> string -> t
(** Index a carrier's string value under its class path. The carrier
    must not already be indexed (callers remove the old document
    first). Strings shorter than 3 bytes contribute no postings but are
    still counted as documents. *)

val remove_doc : t -> Ident.t -> string -> t
(** Drop a carrier, given the exact string that was indexed for it.
    No-op when the carrier is not indexed. *)

(** {1 Queries} *)

type probe = {
  pr_trigrams : int;  (** distinct needle trigrams consulted *)
  pr_postings : int;  (** posting entries across their lists *)
  pr_candidates : int;  (** carriers surviving the intersection *)
  pr_verified : int;  (** carriers surviving positional verification *)
}

val query : t -> ?path:string -> string -> Ident.Set.t
(** Exactly the carriers whose text contains the needle (restricted to
    carriers at [path] when given). Raises [Invalid_argument] when the
    needle is shorter than {!min_needle}. *)

val query_probe : t -> ?path:string -> string -> Ident.Set.t * probe
(** {!query} plus the access-path measurements [Query.explain]
    renders. *)

val estimate : t -> string -> int
(** Upper bound on the carriers {!query} would have to verify: the size
    of the needle's rarest posting list (0 when one of its trigrams is
    absent). Costs one lookup per needle trigram — the planner consults
    it to skip needles so common that walking their postings would cost
    more than the scan it replaces. Raises [Invalid_argument] below
    {!min_needle}. *)

val string_contains : string -> string -> bool
(** [string_contains hay needle] — the scan-side containment test the
    index is equivalent to. Empty needles match everything. *)

(** {1 Stats and equality} *)

type stats = {
  trigrams : int;
  postings : int;
  positions : int;
  docs : int;
  bytes : int;  (** rough resident-size estimate *)
}

val stats : t -> stats

val equal : t -> t -> bool
(** Structural equality — used by the soak harness to check that the
    incrementally maintained index matches a wholesale rebuild. *)
