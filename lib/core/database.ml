open Seed_util
open Seed_schema
open Seed_error

let log_src = Logs.Src.create "seed.database" ~doc:"SEED operational interface"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = Db_state.t

let create schema = Db_state.create schema
let schema (db : t) = Db_state.schema db
let raw db = db
let of_raw st = st

let view db = View.retrieval db
let view_current db = View.current db

let view_at db vid =
  if Versioning.mem (Db_state.versions db) vid then Ok (View.at db vid)
  else fail (Unknown_version (Version_id.to_string vid))

let register_procedure db name p = Db_state.register_procedure db name p

(* ------------------------------------------------------------------ *)
(* Snapshots and rollback                                               *)
(*                                                                      *)
(* Every mutation below builds a new working root; [Db_state.publish]   *)
(* at the end of a successful top-level operation makes it visible to   *)
(* snapshot readers in one atomic store. Rollback — whether of a single *)
(* failed operation or of a whole transaction — is a root swap: restore *)
(* the root captured before the work began and {e everything} it did    *)
(* (item states, indexes, extents, the dirty set, nested mutations by   *)
(* attached procedures) is undone at once, in O(1).                     *)
(* ------------------------------------------------------------------ *)

type saved = Db_state.root

let save db : saved = Db_state.root db
let restore db (r : saved) = Db_state.set_root db r

let snapshot db = Db_state.freeze db
let snapshot_view db = View.current (Db_state.freeze db)

(* Publish after a successful top-level mutation. Mutations nested
   inside an attached procedure must not publish the enclosing
   operation's intermediate state; [publish] itself already no-ops
   inside a transaction. *)
let publish_if_top db =
  if Db_state.proc_depth db = 0 then Db_state.publish db

(* ------------------------------------------------------------------ *)
(* Transactions                                                         *)
(*                                                                      *)
(* A transaction pins the working root as a savepoint and suppresses    *)
(* publication until commit: readers never observe a half-applied       *)
(* batch, and rollback is the same O(1) root swap as a single failed    *)
(* operation. Transactions do not nest, and version or schema           *)
(* operations ({!create_version}, {!begin_alternative},                 *)
(* {!delete_version}, {!update_schema}) are refused while one is        *)
(* active.                                                              *)
(* ------------------------------------------------------------------ *)

let in_transaction db = Db_state.txn_active db

let begin_transaction db =
  if Db_state.txn_active db then
    fail (Invalid_operation "a transaction is already active")
  else begin
    Db_state.begin_txn db;
    Ok ()
  end

let commit_transaction db =
  if Db_state.txn_active db then begin
    Db_state.commit_txn db;
    Ok ()
  end
  else fail (Invalid_operation "no active transaction")

let rollback_transaction db =
  if Db_state.txn_active db then begin
    Db_state.rollback_txn db;
    Ok ()
  end
  else fail (Invalid_operation "no active transaction")

let with_transaction db f =
  let* () = begin_transaction db in
  match f () with
  | Ok v ->
    Db_state.commit_txn db;
    Ok v
  | Error e ->
    Db_state.rollback_txn db;
    Error e
  | exception exn ->
    Db_state.rollback_txn db;
    raise exn

let forbid_in_transaction db what =
  if Db_state.txn_active db then
    fail (Invalid_operation (what ^ " is not allowed inside a transaction"))
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Attached procedures                                                  *)
(* ------------------------------------------------------------------ *)

let procedure_names db (it : Item.t) =
  let schema = Db_state.schema db in
  match it.Item.current with
  | Some (Item.Obj o) ->
    let chain =
      if it.Item.body = Item.Independent then
        o.Item.cls :: Schema.class_supers schema o.Item.cls
      else begin
        (* a sub-object update also counts as an update of its enclosing
           composite objects: run the procedures of every class-path
           prefix, and the generalization chain of the root *)
        let components = String.split_on_char '.' o.Item.cls in
        let prefixes =
          List.fold_left
            (fun acc c ->
              match acc with
              | [] -> [ c ]
              | last :: _ -> (last ^ "." ^ c) :: acc)
            [] components
        in
        match List.rev prefixes with
        | root :: _ -> prefixes @ Schema.class_supers schema root
        | [] -> prefixes
      end
    in
    List.concat_map
      (fun c ->
        match Schema.find_class schema c with
        | Some def -> def.Class_def.procedures
        | None -> [])
      chain
  | Some (Item.Rel r) ->
    let chain = r.Item.assoc :: Schema.assoc_supers schema r.Item.assoc in
    List.concat_map
      (fun a ->
        match Schema.find_assoc schema a with
        | Some def -> def.Assoc_def.procedures
        | None -> [])
      chain
  | None -> []

let run_procedures db (it : Item.t) event =
  let names = procedure_names db it in
  if names = [] then Ok ()
  else if Db_state.proc_depth db >= 16 then
    fail (Invalid_operation "attached procedure recursion too deep")
  else
    let* procs = map_result (Db_state.find_procedure db) names in
    Db_state.set_proc_depth db (Db_state.proc_depth db + 1);
    let result = iter_result (fun p -> p db event) procs in
    Db_state.set_proc_depth db (Db_state.proc_depth db - 1);
    result

(* After a mutation touching the item [id], re-validate the normal
   contexts that see it through pattern inheritance, then run attached
   procedures. Any failure restores [before] (the pre-operation root).
   On success the new root is published (top-level operations only).

   The item is re-fetched here: the handle the caller started from was
   superseded by the mutation.

   [recheck_contexts] is false for updates that cannot affect counting
   constraints (value changes, renames): their structural checks have
   already run, so pattern value updates stay O(1) regardless of the
   number of inheritors — the point of patterns. *)
let commit ?(recheck_contexts = true) db id event ~before =
  let v = View.current db in
  let it =
    match Db_state.find_item db id with
    | Some it -> it
    | None -> assert false (* deletion is logical; the item is present *)
  in
  let contexts =
    match it.Item.current with
    | Some s when recheck_contexts && Item.state_pattern s ->
      Consistency.normal_inheritor_contexts v it
    | Some _ | None -> []
  in
  let result =
    let* () = iter_result (Consistency.check_inheritor_context v) contexts in
    run_procedures db it event
  in
  match result with
  | Ok () ->
    publish_if_top db;
    Ok ()
  | Error e ->
    Log.debug (fun m ->
        m "update of %a rolled back: %a" Ident.pp id Seed_error.pp e);
    restore db before;
    Error e

(* ------------------------------------------------------------------ *)
(* Creation                                                             *)
(* ------------------------------------------------------------------ *)

let add_new_item db item =
  Db_state.add_item db item;
  Db_state.mark_dirty db item

let create_object db ~cls ~name ?(pattern = false) () =
  let v = View.current db in
  let* () = Consistency.check_new_object v ~cls ~name in
  let before = save db in
  let id = Db_state.fresh_id db in
  let state =
    Item.Obj
      {
        Item.name = Some name;
        cls;
        value = None;
        pattern;
        inherits = [];
        deleted = false;
      }
  in
  let item = Item.make id Item.Independent state in
  add_new_item db item;
  let* () = commit db id (Event.Created id) ~before in
  Ok id

let used_indices v parent ~role =
  View.children_v v (View.vitem_real parent)
  |> List.filter_map (fun (vi : View.vitem) ->
         match vi.View.item.Item.body with
         | Item.Dependent d when String.equal d.role role -> d.index
         | Item.Dependent _ | Item.Independent | Item.Relationship -> None)

let smallest_free used =
  let sorted = List.sort_uniq Int.compare used in
  let rec go i = function
    | [] -> i
    | x :: rest -> if x = i then go (i + 1) rest else i
  in
  go 0 sorted

let create_sub_object db ~parent ~role ?index ?value () =
  let v = View.current db in
  let* parent_item = Db_state.find_item_res db parent in
  let* def =
    Consistency.check_new_sub_object v ~parent:parent_item ~role ~index ~value
  in
  let single =
    match def.Class_def.card.Cardinality.max with Some 1 -> true | _ -> false
  in
  let index =
    match (index, single) with
    | Some i, _ -> Some i
    | None, true -> None
    | None, false -> Some (smallest_free (used_indices v parent_item ~role))
  in
  let pattern =
    match View.obj_state v parent_item with
    | Some o -> o.Item.pattern
    | None -> false
  in
  let before = save db in
  let id = Db_state.fresh_id db in
  let state =
    Item.Obj
      {
        Item.name = None;
        cls = Class_def.name def;
        value;
        pattern;
        inherits = [];
        deleted = false;
      }
  in
  let item = Item.make id (Item.Dependent { parent; role; index }) state in
  add_new_item db item;
  let* () = commit db id (Event.Created id) ~before in
  Ok id

let create_relationship db ~assoc ~endpoints ?(pattern = false) () =
  let v = View.current db in
  let* endpoint_items = map_result (Db_state.find_item_res db) endpoints in
  let* _def =
    Consistency.check_new_relationship v ~assoc ~endpoints:endpoint_items
      ~pattern
  in
  let before = save db in
  let id = Db_state.fresh_id db in
  let state =
    Item.Rel
      {
        Item.assoc;
        endpoints;
        rel_attrs = [];
        rel_pattern = pattern;
        rel_deleted = false;
      }
  in
  let item = Item.make id Item.Relationship state in
  add_new_item db item;
  let* () = commit db id (Event.Created id) ~before in
  Ok id

let create_relationship_named db ~assoc ~bindings ?(pattern = false) () =
  let* def = Schema.find_assoc_res (Db_state.schema db) assoc in
  let* endpoints =
    map_result
      (fun (role : Assoc_def.role) ->
        match
          List.find_opt
            (fun (n, _) -> String.equal n role.Assoc_def.role_name)
            bindings
        with
        | Some (_, id) -> Ok id
        | None ->
          fail
            (Invalid_operation
               (Printf.sprintf "missing binding for role %s of %s"
                  role.Assoc_def.role_name assoc)))
      def.Assoc_def.roles
  in
  let* () =
    if List.length bindings = Assoc_def.arity def then Ok ()
    else
      fail
        (Invalid_operation
           (Printf.sprintf "association %s takes %d bindings, got %d" assoc
              (Assoc_def.arity def) (List.length bindings)))
  in
  create_relationship db ~assoc ~endpoints ~pattern ()

(* ------------------------------------------------------------------ *)
(* Updates                                                              *)
(* ------------------------------------------------------------------ *)

let update_item_state db (item : Item.t) new_state =
  Db_state.replace_state db item.Item.id (Some new_state);
  Db_state.mark_dirty db item

let set_value db id value =
  let v = View.current db in
  let* item = Db_state.find_item_res db id in
  let* () = Consistency.check_set_value v item value in
  match View.obj_state v item with
  | None -> fail (Unknown_item (Ident.to_string id))
  | Some o ->
    let before = save db in
    let old_value = o.Item.value in
    update_item_state db item (Item.Obj { o with Item.value });
    commit ~recheck_contexts:false db id
      (Event.Value_updated { id; old_value })
      ~before

let set_rel_attr db id name value =
  let v = View.current db in
  let* item = Db_state.find_item_res db id in
  let* () = Consistency.check_set_rel_attr v item name value in
  match View.rel_state v item with
  | None -> fail (Unknown_item (Ident.to_string id))
  | Some r ->
    let before = save db in
    let attrs = List.remove_assoc name r.Item.rel_attrs in
    let attrs =
      match value with None -> attrs | Some value -> (name, value) :: attrs
    in
    update_item_state db item (Item.Rel { r with Item.rel_attrs = attrs });
    commit ~recheck_contexts:false db id
      (Event.Value_updated
         { id; old_value = List.assoc_opt name r.Item.rel_attrs })
      ~before

let rel_attr db id name =
  let v = view db in
  match Db_state.find_item db id with
  | Some it -> (
    match View.rel_state v it with
    | Some r -> List.assoc_opt name r.Item.rel_attrs
    | None -> None)
  | None -> None

let rename_object db id new_name =
  let v = View.current db in
  let* item = Db_state.find_item_res db id in
  let* () = Consistency.check_rename v item new_name in
  match View.obj_state v item with
  | None -> fail (Unknown_item (Ident.to_string id))
  | Some o ->
    let before = save db in
    let old_name = Option.value o.Item.name ~default:"" in
    update_item_state db item (Item.Obj { o with Item.name = Some new_name });
    commit ~recheck_contexts:false db id (Event.Renamed { id; old_name }) ~before

let reclassify db id ~to_ =
  let v = View.current db in
  let* item = Db_state.find_item_res db id in
  match View.state v item with
  | None -> fail (Unknown_item (Ident.to_string id))
  | Some (Item.Obj o) ->
    let* () = Consistency.check_reclassify_object v item ~to_ in
    let before = save db in
    let from_ = o.Item.cls in
    update_item_state db item (Item.Obj { o with Item.cls = to_ });
    commit db id (Event.Reclassified { id; from_ }) ~before
  | Some (Item.Rel r) ->
    let* () = Consistency.check_reclassify_rel v item ~to_ in
    let before = save db in
    let from_ = r.Item.assoc in
    update_item_state db item (Item.Rel { r with Item.assoc = to_ });
    commit db id (Event.Reclassified { id; from_ }) ~before

(* the sub-object tree below an object, live items only *)
let rec subtree v acc (item : Item.t) =
  let acc = item :: acc in
  List.fold_left (subtree v) acc (View.children v item.Item.id)

let delete db id =
  let v = View.current db in
  let* item = Db_state.find_item_res db id in
  let* () = Consistency.check_delete v item in
  let cascade =
    match item.Item.body with
    | Item.Relationship -> [ item ]
    | Item.Independent ->
      let tree = subtree v [] item in
      let incident = View.rels v item.Item.id |> List.filter (View.live v) in
      tree @ incident
    | Item.Dependent _ -> subtree v [] item
  in
  let before = save db in
  let mark_deleted (it : Item.t) =
    match it.Item.current with
    | Some (Item.Obj o) ->
      update_item_state db it (Item.Obj { o with Item.deleted = true })
    | Some (Item.Rel r) ->
      update_item_state db it (Item.Rel { r with Item.rel_deleted = true })
    | None -> ()
  in
  List.iter mark_deleted cascade;
  commit db id (Event.Deleted id) ~before

(* ------------------------------------------------------------------ *)
(* Patterns                                                             *)
(* ------------------------------------------------------------------ *)

let inherit_pattern db ~pattern ~inheritor =
  let v = View.current db in
  let* pat = Db_state.find_item_res db pattern in
  let* inh = Db_state.find_item_res db inheritor in
  let* () = Consistency.check_inheritance v ~pattern:pat ~inheritor:inh in
  match View.obj_state v inh with
  | None -> fail (Unknown_item (Ident.to_string inheritor))
  | Some o ->
    let before = save db in
    update_item_state db inh
      (Item.Obj { o with Item.inherits = o.Item.inherits @ [ pattern ] });
    Db_state.index_inheritor db ~pattern ~inheritor;
    let result =
      (* the combined context must be consistent right away *)
      if View.live_normal v inh then Consistency.check_inheritor_context v inh
      else Ok ()
    in
    (match result with
    | Error e ->
      restore db before;
      Error e
    | Ok () -> commit db inheritor (Event.Inherited { pattern; inheritor }) ~before)

let uninherit_pattern db ~pattern ~inheritor =
  let v = View.current db in
  let* inh = Db_state.find_item_res db inheritor in
  match View.obj_state v inh with
  | None -> fail (Unknown_item (Ident.to_string inheritor))
  | Some o ->
    if not (List.exists (Ident.equal pattern) o.Item.inherits) then
      fail (Pattern_violation "pattern is not inherited by this object")
    else begin
      let inherits =
        List.filter (fun p -> not (Ident.equal p pattern)) o.Item.inherits
      in
      update_item_state db inh (Item.Obj { o with Item.inherits });
      Db_state.unindex_inheritor db ~pattern ~inheritor;
      publish_if_top db;
      Ok ()
    end

(* ------------------------------------------------------------------ *)
(* Versions                                                             *)
(* ------------------------------------------------------------------ *)

let current_base (db : t) = Db_state.current_base db

let is_dirty db =
  List.exists
    (fun id ->
      match Db_state.find_item db id with
      | Some it -> it.Item.dirty
      | None -> false)
    (Db_state.dirty_ids db)

let create_version db =
  let* () = forbid_in_transaction db "create_version" in
  let before = save db in
  match
    let* () =
      iter_result
        (fun (_, rule) -> rule db ~base:(Db_state.current_base db))
        (Db_state.transition_rules db)
    in
    let* vid, vt =
      Versioning.derive (Db_state.versions db)
        ~base:(Db_state.current_base db)
        ~schema_rev:(Schema.revision (Db_state.schema db))
    in
    Db_state.set_versions db vt;
    let stamped = Db_state.stamp_dirty db vid in
    Db_state.set_current_base db (Some vid);
    Db_state.publish db;
    Log.info (fun m ->
        m "version %a created (%d items stamped)" Version_id.pp vid stamped);
    Ok vid
  with
  | Ok vid -> Ok vid
  | Error e ->
    restore db before;
    Error e

let select_version db vid_opt =
  match vid_opt with
  | None ->
    Db_state.set_retrieval_version db None;
    Db_state.publish db;
    Ok ()
  | Some vid ->
    if Versioning.mem (Db_state.versions db) vid then begin
      Db_state.set_retrieval_version db (Some vid);
      Db_state.publish db;
      Ok ()
    end
    else fail (Unknown_version (Version_id.to_string vid))

let selected_version (db : t) = Db_state.retrieval_version db

let begin_alternative db ~from_ ?(force = false) () =
  let* () = forbid_in_transaction db "begin_alternative" in
  let* _node = Versioning.find_res (Db_state.versions db) from_ in
  let* () =
    if is_dirty db && not force then
      fail
        (Unsaved_changes
           (match Db_state.current_base db with
           | Some v -> Version_id.to_string v
           | None -> "(unsaved initial state)"))
    else Ok ()
  in
  Db_state.clear_dirty db;
  (* a materialized view of [from_] already holds every resolved state;
     otherwise resolve each item through the ancestor chain *)
  let resolve =
    match Db_state.version_extent db from_ with
    | Some ve -> fun (it : Item.t) -> Db_state.ve_state ve it.Item.id
    | None ->
      let versions = Db_state.versions db in
      fun it -> Versioning.state_at versions it from_
  in
  Db_state.map_items db (fun it ->
      Item.with_dirty (Item.with_current it (resolve it)) false);
  Db_state.rebuild_state_indexes db;
  Db_state.set_current_base db (Some from_);
  Db_state.publish db;
  Ok ()

let delete_version db vid =
  let* () = forbid_in_transaction db "delete_version" in
  let* () =
    match Db_state.current_base db with
    | Some b when Version_id.equal b vid ->
      fail
        (Invalid_operation
           "the current version derives from this version; switch first")
    | Some _ | None -> Ok ()
  in
  let* () =
    match Db_state.retrieval_version db with
    | Some r when Version_id.equal r vid ->
      fail (Invalid_operation "version is selected for retrieval; deselect first")
    | Some _ | None -> Ok ()
  in
  let* vt = Versioning.delete (Db_state.versions db) vid in
  Db_state.set_versions db vt;
  Db_state.drop_version_stamps db vid;
  Db_state.invalidate_version_cache db vid;
  Db_state.publish db;
  Ok ()

let versions db = Versioning.all (Db_state.versions db)

let set_version_cache_capacity db n = Db_state.set_version_cache_capacity db n
let set_text_index_enabled db on = Db_state.set_text_index_enabled db on
let text_index_enabled db = Db_state.text_index_enabled db
let version_cache_stats db = Db_state.version_cache_stats db
let clear_version_cache db = Db_state.clear_version_cache db

let add_transition_rule db name rule =
  Db_state.set_transition_rules db
    (Db_state.transition_rules db @ [ (name, rule) ])

(* ------------------------------------------------------------------ *)
(* Schema evolution                                                     *)
(* ------------------------------------------------------------------ *)

let update_schema db new_schema =
  let* () = forbid_in_transaction db "update_schema" in
  let* () = Schema.validate new_schema in
  let before = save db in
  let rev = Schema.revision (Db_state.schema db) + 1 in
  let stamped = Schema.with_revision new_schema rev in
  Db_state.set_schema db stamped;
  match Consistency.check_database (View.current db) with
  | Error e ->
    restore db before;
    Error e
  | Ok () ->
    Db_state.set_schemas db ((rev, stamped) :: Db_state.schemas db);
    Db_state.publish db;
    Ok ()

(* ------------------------------------------------------------------ *)
(* Retrieval                                                            *)
(* ------------------------------------------------------------------ *)

let find_object db name =
  let v = view db in
  match View.find_object v name with
  | Some it when View.live_normal v it -> Some it.Item.id
  | Some _ | None -> None

let find_pattern db name =
  let v = view db in
  match View.find_object v name with
  | Some it when View.live_pattern v it -> Some it.Item.id
  | Some _ | None -> None

let resolve db path =
  let v = view db in
  match View.resolve_name v path with
  | Some it -> Some it.Item.id
  | None -> None

let full_name db id =
  let v = view db in
  match Db_state.find_item db id with
  | Some it -> View.full_name v it
  | None -> None

let class_of db id =
  let v = view db in
  match Db_state.find_item db id with
  | Some it -> (
    match View.obj_state v it with
    | Some o -> Some o.Item.cls
    | None -> None)
  | None -> None

let assoc_of db id =
  let v = view db in
  match Db_state.find_item db id with
  | Some it -> (
    match View.rel_state v it with
    | Some r -> Some r.Item.assoc
    | None -> None)
  | None -> None

let get_value db id =
  let v = view db in
  match Db_state.find_item db id with
  | Some it -> (
    match View.obj_state v it with
    | Some o -> o.Item.value
    | None -> None)
  | None -> None

let is_pattern db id =
  let v = view db in
  match Db_state.find_item db id with
  | Some it -> (
    match View.state v it with
    | Some s -> Item.state_pattern s
    | None -> false)
  | None -> false

let exists db id =
  let v = view db in
  match Db_state.find_item db id with
  | Some it -> View.live v it
  | None -> false

let children db id =
  let v = view db in
  View.children v id |> List.map (fun (it : Item.t) -> it.Item.id)

let relationships db id =
  let v = view db in
  View.rels v id
  |> List.filter (fun it -> View.live_normal v it)
  |> List.map (fun (it : Item.t) -> it.Item.id)

let endpoints db id =
  let v = view db in
  match Db_state.find_item db id with
  | Some it -> (
    match View.rel_state v it with
    | Some r -> r.Item.endpoints
    | None -> [])
  | None -> []

let inheritors db id =
  let v = view db in
  View.inheritors_of v id |> List.map (fun (it : Item.t) -> it.Item.id)

let object_count db = List.length (View.all_objects (view db))

type stats = {
  st_objects : int;
  st_sub_objects : int;
  st_relationships : int;
  st_patterns : int;
  st_versions : int;
  st_items_total : int;
  st_dirty : int;
  st_schema_revision : int;
  st_vc_hits : int;
  st_vc_misses : int;
  st_vc_evictions : int;
  st_text_enabled : bool;
  st_text_trigrams : int;
  st_text_postings : int;
  st_text_docs : int;
  st_text_bytes : int;
  st_text_hits : int;
  st_text_fallbacks : int;
  st_snapshots : int;
  st_commits : int;
  st_partitions : int;
  st_txns_submitted : int;
  st_txn_batches : int;
  st_txn_fsyncs : int;
  st_txn_max_batch : int;
  st_txn_queue_hwm : int;
}

let write_stats db = Db_state.write_stats db

let stats db =
  let v = view db in
  let ws = Db_state.write_stats db in
  let total =
    List.fold_left
      (fun acc (_, s) -> Seed_storage.Commit_daemon.add_stats acc s)
      Seed_storage.Commit_daemon.empty_stats ws
  in
  let st_sub_objects =
    match View.version v with
    | None -> Db_state.live_dependent_count db
    | Some _ ->
      Db_state.fold_items db ~init:0 ~f:(fun acc it ->
          match it.Item.body with
          | Item.Dependent _ when View.live v it -> acc + 1
          | _ -> acc)
  in
  let vc = Db_state.version_cache_stats db in
  let tx = Db_state.text_stats db in
  let text_hits, text_fallbacks = Db_state.text_counters db in
  {
    st_objects = List.length (View.all_objects v);
    st_sub_objects;
    st_relationships = List.length (View.all_rels v);
    st_patterns = List.length (View.all_patterns v);
    st_versions = List.length (Versioning.all (Db_state.versions db));
    st_items_total = Db_state.item_count db;
    st_dirty =
      List.length
        (List.filter
           (fun id ->
             match Db_state.find_item db id with
             | Some it -> it.Item.dirty
             | None -> false)
           (Db_state.dirty_ids db));
    st_schema_revision = Schema.revision (Db_state.schema db);
    st_vc_hits = vc.Db_state.vc_hits;
    st_vc_misses = vc.Db_state.vc_misses;
    st_vc_evictions = vc.Db_state.vc_evictions;
    st_text_enabled = tx <> None;
    st_text_trigrams =
      (match tx with Some s -> s.Text_index.trigrams | None -> 0);
    st_text_postings =
      (match tx with Some s -> s.Text_index.postings | None -> 0);
    st_text_docs = (match tx with Some s -> s.Text_index.docs | None -> 0);
    st_text_bytes = (match tx with Some s -> s.Text_index.bytes | None -> 0);
    st_text_hits = text_hits;
    st_text_fallbacks = text_fallbacks;
    st_snapshots = Db_state.snapshot_grabs db;
    st_commits = Db_state.commits_published db;
    st_partitions = List.length ws;
    st_txns_submitted = total.Seed_storage.Commit_daemon.submitted;
    st_txn_batches = total.Seed_storage.Commit_daemon.batches;
    st_txn_fsyncs = total.Seed_storage.Commit_daemon.fsyncs;
    st_txn_max_batch = total.Seed_storage.Commit_daemon.max_batch;
    st_txn_queue_hwm = total.Seed_storage.Commit_daemon.queue_hwm;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>objects: %d@,\
     sub-objects: %d@,\
     relationships: %d@,\
     patterns: %d@,\
     versions: %d@,\
     physical items: %d@,\
     unsaved changes: %d@,\
     schema revision: %d@,\
     version cache: %d hits / %d misses / %d evictions@,\
     text index: %s@,\
     text queries: %d indexed / %d scanned@,\
     snapshots grabbed: %d@,\
     roots published: %d@]"
    s.st_objects s.st_sub_objects s.st_relationships s.st_patterns
    s.st_versions s.st_items_total s.st_dirty s.st_schema_revision s.st_vc_hits
    s.st_vc_misses s.st_vc_evictions
    (if s.st_text_enabled then
       Printf.sprintf "%d docs / %d trigrams / %d postings (~%d KiB)"
         s.st_text_docs s.st_text_trigrams s.st_text_postings
         (s.st_text_bytes / 1024)
     else "disabled")
    s.st_text_hits s.st_text_fallbacks s.st_snapshots s.st_commits;
  if s.st_partitions > 0 then
    Fmt.pf ppf
      "@,\
       @[<v>journal partitions: %d@,\
       txns committed: %d in %d writes / %d fsyncs%s@,\
       largest coalesced batch: %d@,\
       commit queue high-water: %d@]"
      s.st_partitions s.st_txns_submitted s.st_txn_batches s.st_txn_fsyncs
      (if s.st_txn_batches > 0 then
         Printf.sprintf " (%.2f txns/write)"
           (float_of_int s.st_txns_submitted /. float_of_int s.st_txn_batches)
       else "")
      s.st_txn_max_batch s.st_txn_queue_hwm

let completeness_report db = Completeness.check_database (view db)

let is_complete db = Completeness.is_complete (view db)
