(** Query combinators — an extension beyond the paper's prototype.

    The SEED prototype provides the procedures for data creation, update,
    and simple retrieval by name; retrieval with complex queries is not
    supported (paper, §Data manipulation). This module supplies the
    missing complex retrieval as composable predicates and navigation
    over a {!View} — so queries are version-aware and see inherited
    pattern information, like every other retrieval operation.

    Predicates are reified: {!select} and {!count} inspect their shape
    and answer index-recognisable predicates ({!in_class}, {!is_a},
    {!name_is}, and conjunctions/disjunctions of them) from per-class
    id sets and a name index instead of enumerating every object — the
    current-state extents on a current view, the materialized version
    extent ({!Db_state.version_extent}) on a version view. Opaque
    predicates ({!of_fun} and the navigation-based ones below),
    negations, and version views with materialization disabled fall
    back to the full scan — same results, different cost. *)

open Seed_util
open Seed_schema

type pred
(** A predicate over live items of a view, as an inspectable term. *)

val of_fun : (View.t -> Item.t -> bool) -> pred
(** Wrap an arbitrary function as a predicate. Opaque to the planner:
    selections over it always scan. *)

val test : pred -> View.t -> Item.t -> bool
(** Evaluate a predicate on one item. *)

(** {1 Object predicates} *)

val in_class : string -> pred
(** Exactly this classification. *)

val is_a : string -> pred
(** This class or any of its specializations — the generalization-aware
    membership test. *)

val name_is : string -> pred

val contains : string -> string -> pred
(** [contains path needle]: the object itself or one of its live
    descendant sub-objects carries a string value, classified exactly
    [path] ([""] = any class path), containing [needle] as a substring.
    Information viewed through pattern inheritance is not searched.
    Planned from the trigram index ({!Text_index}): posting-list
    intersection plus positional verification yields the candidates
    without touching any document text; needles shorter than 3 bytes or
    a disabled index fall back to the scan — same results. *)

val matches : string -> string list -> pred
(** [matches path needles]: like {!contains} but conjunctive — one
    carrier at [path] must contain {e all} the needles. Needles below
    trigram length are dropped from the planning intersection (the
    re-test still applies them); if none remain, the query scans. *)

val name_matches : (string -> bool) -> pred
(** Applied to the composed full name. *)

val has_value : (Value.t -> bool) -> pred
(** The object carries a value satisfying the given test. Undefined
    values match nothing (paper, §Manipulating vague and incomplete
    data). *)

val has_child : role:string -> pred
(** Some live (possibly inherited) sub-object with this role exists. *)

val child_value : role:string -> (Value.t -> bool) -> pred
(** Some sub-object with this role carries a matching value; undefined
    values match nothing. *)

val related : assoc:string -> pred
(** Participates in a relationship of this association or a
    specialization (inherited relationships included). *)

val related_to : assoc:string -> Ident.t -> pred
(** Related to the given object through this association (or a
    specialization). *)

val is_incomplete : pred
(** The object has at least one completeness diagnostic. *)

(** {1 Combinators} *)

val ( &&& ) : pred -> pred -> pred
val ( ||| ) : pred -> pred -> pred
val not_ : pred -> pred

(** {1 Execution} *)

val select : View.t -> pred -> Item.t list
(** All live normal independent objects satisfying the predicate, in
    name order. *)

val count : View.t -> pred -> int

val select_rels : View.t -> assoc:string -> Item.t list
(** Live normal relationships of this association or a specialization. *)

(** {1 Plan explanation} *)

type text_probe = {
  tp_path : string;  (** attribute path probed; [""] = any path *)
  tp_needle : string;
  tp_trigrams : int;  (** distinct needle trigrams consulted *)
  tp_postings : int;  (** posting entries across their lists *)
  tp_candidates : int;  (** carriers surviving the intersection *)
  tp_verified : int;  (** carriers surviving positional verification *)
}
(** One text-index lookup of the plan, with its access-path
    measurements. *)

type plan =
  | Indexed of {
      via : string;  (** where the candidate ids come from *)
      classes : string list;  (** class extents the planner consults *)
      names : string list;  (** name-index lookups the planner makes *)
      texts : text_probe list;  (** text-index probes the planner makes *)
      est_candidates : int;
          (** candidate-set cardinality — the number of items {!select}
              would re-test, against the extents as they stand now *)
    }
  | Scan of { reason : string }

val explain : View.t -> pred -> plan
(** The access path {!select}/{!count} would take for this predicate on
    this view, without running it: an indexed candidate set (with its
    estimated cardinality) or a full scan and why. *)

val pp_plan : Format.formatter -> plan -> unit

(** {1 Navigation} *)

val neighbors :
  View.t -> Item.t -> assoc:string -> from_pos:int -> to_pos:int -> Item.t list
(** Objects bound at [to_pos] of relationships (of the association's
    subtree, inherited ones included) that bind the given object at
    [from_pos]. This is join-by-relationship: undefined items never
    appear because entity-relationship operations are defined on
    existing relationships only. *)

val reachable :
  View.t -> Item.t -> assoc:string -> from_pos:int -> to_pos:int -> Item.t list
(** Transitive closure of {!neighbors}, cycle-safe, excluding the start
    object unless it lies on a cycle. *)
