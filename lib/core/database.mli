(** The SEED operational interface.

    SEED has been designed to support the data management tasks of
    software development tools; hence it has an operational interface
    that consists of a set of procedures (paper, §Data manipulation).
    This module is that interface: data creation, update, retrieval by
    name, re-classification, version and pattern management.

    Every update permanently ensures database consistency: the rules
    derivable from the consistency information of the schema are checked
    on each call, and attached procedures may veto, in which case the
    update is rolled back. Completeness is only checked on demand
    ({!completeness_report}).

    Updates always apply to the current version; retrieval reads from
    the version selected with {!select_version} (current by default). *)

open Seed_util
open Seed_schema

type t

val create : Schema.t -> t
(** An empty database under the given schema. *)

val schema : t -> Schema.t

val raw : t -> Db_state.t
(** Engine-room access for sibling modules ({!History}, {!Persist},
    {!Query}); not part of the stable user API. *)

val of_raw : Db_state.t -> t
(** Inverse of {!raw}, used by {!Persist} when rebuilding a database
    from storage; not part of the stable user API. *)

val view : t -> View.t
(** The retrieval view: the selected version, or the current state. *)

val view_current : t -> View.t
val view_at : t -> Version_id.t -> (View.t, Seed_error.t) result

(** {1 Snapshots}

    The database state is copy-on-write: every committed operation
    publishes a new immutable root, and a snapshot is one atomic load
    of the latest published root — O(1), no lock, valid forever.
    Snapshots see only committed state (never the inside of an open
    transaction or a half-applied operation) and are safe to read from
    other domains concurrently with the writer. *)

val snapshot : t -> Db_state.t
(** A frozen handle pinned to the latest committed state. *)

val snapshot_view : t -> View.t
(** [View.current (snapshot db)] — the usual entry point for readers. *)

(** {1 Transactions}

    A transaction pins the pre-transaction root as a savepoint and
    holds back publication until commit: concurrent snapshot readers
    never observe a half-applied batch. Rollback restores the savepoint
    root — O(1), independent of how many operations the transaction
    made (including mutations by attached procedures along the way).
    Transactions do not nest, and version or schema operations
    ({!create_version}, {!begin_alternative}, {!delete_version},
    {!update_schema}) are refused while one is active. *)

val with_transaction :
  t -> (unit -> ('a, Seed_error.t) result) -> ('a, Seed_error.t) result
(** [with_transaction db f] runs [f] atomically. [Ok] keeps and
    publishes every change; [Error] (or an exception) rolls all of them
    back and re-reports. *)

val in_transaction : t -> bool

val begin_transaction : t -> (unit, Seed_error.t) result
(** Explicit bracket, for drivers that cannot use
    {!with_transaction}. Fails when a transaction is already active. *)

val commit_transaction : t -> (unit, Seed_error.t) result
(** Keep the changes and publish them to snapshot readers. *)

val rollback_transaction : t -> (unit, Seed_error.t) result
(** Undo every operation since {!begin_transaction} (one root swap). *)

(** {1 Schema evolution} *)

val update_schema : t -> Schema.t -> (unit, Seed_error.t) result
(** Replace the schema. The new schema is validated, the whole current
    state is re-checked against it, and the revision is recorded so
    versions created earlier keep their own schema version (paper:
    "we must generate schema versions, too"). *)

(** {1 Attached procedures} *)

val register_procedure : t -> string -> Db_state.proc -> unit
(** Bind an implementation to a procedure name referenced by the schema.
    Updating an item whose schema element names an unregistered
    procedure fails with [Unknown_procedure]. *)

(** {1 Data creation} *)

val create_object :
  t -> cls:string -> name:string -> ?pattern:bool -> unit ->
  (Ident.t, Seed_error.t) result
(** A new independent object. With [pattern:true] the object is entered
    as a pattern: invisible to normal retrieval and exempt from counting
    checks until inherited. *)

val create_sub_object :
  t ->
  parent:Ident.t ->
  role:string ->
  ?index:int ->
  ?value:Value.t ->
  unit ->
  (Ident.t, Seed_error.t) result
(** A new dependent object. When the role admits several instances and
    no [index] is given, the smallest free index is assigned. Sub-objects
    of a pattern belong to the pattern. *)

val create_relationship :
  t ->
  assoc:string ->
  endpoints:Ident.t list ->
  ?pattern:bool ->
  unit ->
  (Ident.t, Seed_error.t) result
(** A new relationship; [endpoints] are positional (element [i] plays
    role [i]). A relationship involving a pattern object must itself be
    a pattern. *)

val create_relationship_named :
  t ->
  assoc:string ->
  bindings:(string * Ident.t) list ->
  ?pattern:bool ->
  unit ->
  (Ident.t, Seed_error.t) result
(** Same, with endpoints given as [(role_name, object)] pairs. *)

(** {1 Updates} *)

val set_value : t -> Ident.t -> Value.t option -> (unit, Seed_error.t) result

val set_rel_attr :
  t -> Ident.t -> string -> Value.t option -> (unit, Seed_error.t) result
(** Set (or undefine, with [None]) a relationship attribute declared on
    the relationship's association or one of its generalization
    ancestors (Fig. 3's [NumberOfWrites] on [Write]). *)

val rel_attr : t -> Ident.t -> string -> Value.t option
(** Current value of a relationship attribute; [None] when undefined. *)

val rename_object : t -> Ident.t -> string -> (unit, Seed_error.t) result

val reclassify : t -> Ident.t -> to_:string -> (unit, Seed_error.t) result
(** Move an item within its generalization hierarchy — the operation
    that makes vague information more precise (paper, §Vague data), or
    vaguer again (moving up). Works on objects and on relationships. *)

val delete : t -> Ident.t -> (unit, Seed_error.t) result
(** Logical deletion. Deleting an object cascades to its sub-objects and
    to the relationships it takes part in. A pattern with inheritors
    cannot be deleted. *)

(** {1 Patterns} *)

val inherit_pattern :
  t -> pattern:Ident.t -> inheritor:Ident.t -> (unit, Seed_error.t) result
(** Establish the inherits-relationship: retrieval will view the
    pattern's sub-objects and relationships as if they were inserted in
    the inheritor's context. The combined context is consistency-checked
    here, and re-checked on every subsequent pattern update. *)

val uninherit_pattern :
  t -> pattern:Ident.t -> inheritor:Ident.t -> (unit, Seed_error.t) result

(** {1 Versions} *)

val create_version : t -> (Version_id.t, Seed_error.t) result
(** Take a snapshot: stamp every item changed since the previous version
    and return the new version's label. History-sensitive rules (if any)
    are checked first. *)

val select_version : t -> Version_id.t option -> (unit, Seed_error.t) result
(** Choose the version retrieval operations read from; [None] restores
    the current version. *)

val selected_version : t -> Version_id.t option

val current_base : t -> Version_id.t option
(** The saved version the current state derives from. *)

val is_dirty : t -> bool
(** Items changed since the last snapshot exist. *)

val begin_alternative :
  t -> from_:Version_id.t -> ?force:bool -> unit -> (unit, Seed_error.t) result
(** Make a saved version the basis of the current version. Refused while
    unsaved changes exist, unless [force] discards them.

    Label semantics follow RCS: a snapshot taken while based on the
    {e latest trunk} version extends the trunk ([2.0] → [3.0]); a
    snapshot based on any {e historical} version opens a branch
    ([1.0] → [1.1], [1.1] → [1.1.1]) — the paper's alternatives. *)

val delete_version : t -> Version_id.t -> (unit, Seed_error.t) result
(** Versions cannot be modified, except for deletion. Only leaf versions
    that the current state does not derive from can be deleted; their
    stamps are dropped from all items. *)

val versions : t -> Versioning.node list
(** All saved versions in creation order. *)

val set_version_cache_capacity : t -> int -> unit
(** Bound the number of materialized version views kept in memory
    (default 8, least-recently-used eviction; 0 disables
    materialization and version reads fall back to resolution scans).
    See {!Db_state.version_extent}. *)

val version_cache_stats : t -> Db_state.version_cache_stats

val clear_version_cache : t -> unit
(** Drop all materialized version views (they are rebuilt on demand). *)

val set_text_index_enabled : t -> bool -> unit
(** Enable or disable the trigram text index behind [Query.contains]
    (enabled by default). Disabling drops it and containment queries
    scan; re-enabling rebuilds it in one sweep over the item table. See
    {!Db_state.text_index}. *)

val text_index_enabled : t -> bool

val add_transition_rule :
  t ->
  string ->
  (Db_state.t -> base:Version_id.t option -> (unit, Seed_error.t) result) ->
  unit
(** Register a history-sensitive consistency rule, evaluated at
    {!create_version} against the current state and its base version. *)

(** {1 Retrieval} *)

val find_object : t -> string -> Ident.t option
(** Independent object by name in the retrieval view; patterns are
    invisible here. *)

val find_pattern : t -> string -> Ident.t option

val resolve : t -> string -> Ident.t option
(** Object or sub-object by composed name (["Alarms.Text.Body"]). *)

val full_name : t -> Ident.t -> string option
val class_of : t -> Ident.t -> string option
val assoc_of : t -> Ident.t -> string option
val get_value : t -> Ident.t -> Value.t option
val is_pattern : t -> Ident.t -> bool
val exists : t -> Ident.t -> bool

val children : t -> Ident.t -> Ident.t list
(** Live sub-objects in the retrieval view, inherited ones excluded
    (use {!View.children_v} for the expanded context). *)

val relationships : t -> Ident.t -> Ident.t list
(** Live relationships (normal, real) of an object. *)

val endpoints : t -> Ident.t -> Ident.t list

val inheritors : t -> Ident.t -> Ident.t list

val object_count : t -> int
(** Live normal independent objects in the retrieval view. *)

type stats = {
  st_objects : int;  (** live normal independent objects *)
  st_sub_objects : int;
  st_relationships : int;
  st_patterns : int;
  st_versions : int;
  st_items_total : int;  (** physical items, history included *)
  st_dirty : int;  (** changed since the last snapshot *)
  st_schema_revision : int;
  st_vc_hits : int;  (** materialized version view cache hits *)
  st_vc_misses : int;  (** misses = extent builds (reconstruction sweeps) *)
  st_vc_evictions : int;
  st_text_enabled : bool;
  st_text_trigrams : int;  (** distinct trigrams in the text index *)
  st_text_postings : int;  (** posting entries (carrier per trigram) *)
  st_text_docs : int;  (** indexed string values *)
  st_text_bytes : int;  (** rough resident-size estimate *)
  st_text_hits : int;  (** text predicates answered from the index *)
  st_text_fallbacks : int;  (** text predicates that had to scan *)
  st_snapshots : int;  (** snapshot roots grabbed via {!snapshot} *)
  st_commits : int;  (** roots published (op and transaction commits) *)
  st_partitions : int;
      (** journal partitions of the attached store (0 when the database
          has no durable session) *)
  st_txns_submitted : int;
      (** transactions through the store's group-commit daemons *)
  st_txn_batches : int;  (** physical journal writes those coalesced into *)
  st_txn_fsyncs : int;  (** fsyncs performed for them *)
  st_txn_max_batch : int;  (** most transactions coalesced into one write *)
  st_txn_queue_hwm : int;  (** commit-daemon queue depth high-water *)
}

val stats : t -> stats
(** Size and state summary of the retrieval view / current state. The
    [st_txn_*] write-path counters come from the store attached by
    {!Persist.Session} (zero without one). *)

val write_stats : t -> (int * Seed_storage.Commit_daemon.stats) list
(** Per-partition group-commit counters of the attached store; [[]]
    when the database has no durable session. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Completeness} *)

val completeness_report : t -> Completeness.diagnostic list
(** Check the rules derivable from the completeness conditions in the
    schema, over the retrieval view. *)

val is_complete : t -> bool
