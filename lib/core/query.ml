open Seed_util
open Seed_schema

(* Predicates are reified so [select] can plan: the structured
   constructors below are recognised by [candidates] and answered from
   the class extents and the name index; anything else is wrapped in
   [Opaque] and forces a scan of the view. *)
type pred =
  | In_class of string
  | Is_a of string
  | Name_is of string
  | Contains of { path : string; needle : string }
  | Matches of { path : string; needles : string list }
  | And of pred * pred
  | Or of pred * pred
  | Not of pred
  | Opaque of (View.t -> Item.t -> bool)

let in_class cls = In_class cls
let is_a cls = Is_a cls
let name_is n = Name_is n
let contains path needle = Contains { path; needle }
let matches path needles = Matches { path; needles }
let of_fun f = Opaque f

let name_matches f =
  Opaque
    (fun v it ->
      match View.full_name v it with Some m -> f m | None -> false)

let has_value f =
  Opaque
    (fun v it ->
      match View.obj_state v it with
      | Some { Item.value = Some value; _ } -> f value
      | Some { Item.value = None; _ } | None -> false)

let has_child ~role =
  Opaque (fun v it -> View.child_v v (View.vitem_real it) ~role () <> None)

let child_value ~role f =
  Opaque
    (fun v it ->
      View.children_v v (View.vitem_real it)
      |> List.exists (fun (vi : View.vitem) ->
             match vi.View.item.Item.body with
             | Item.Dependent d when String.equal d.role role -> (
               match View.obj_state v vi.View.item with
               | Some { Item.value = Some value; _ } -> f value
               | Some _ | None -> false)
             | Item.Dependent _ | Item.Independent | Item.Relationship ->
               false))

let rel_is_a v ~assoc (rel : Item.t) =
  match View.rel_state v rel with
  | Some rs -> Schema.assoc_is_a (View.schema v) ~sub:rs.Item.assoc ~super:assoc
  | None -> false

let related ~assoc =
  Opaque
    (fun v it ->
      View.rels_v v it
      |> List.exists (fun (vr : View.vrel) -> rel_is_a v ~assoc vr.View.rel))

let related_to ~assoc other =
  Opaque
    (fun v it ->
      View.rels_v v it
      |> List.exists (fun (vr : View.vrel) ->
             rel_is_a v ~assoc vr.View.rel
             &&
             let occurrences =
               List.length (List.filter (Ident.equal other) vr.View.endpoints)
             in
             (* the object's own binding does not make it "related to
                itself"; a genuine self-loop binds it twice *)
             if Ident.equal other it.Item.id then occurrences >= 2
             else occurrences >= 1))

let is_incomplete =
  Opaque (fun v it -> Completeness.check_object v it <> [])

(* Containment semantics: the object itself, or any of its live
   descendant sub-objects, carries a string value at the class path
   ([""] = any path) satisfying [f]. Only the object's {e own} subtree
   is walked — information viewed through pattern inheritance is not
   searched, matching what the trigram index covers. *)
let carrier_matches v (it : Item.t) ~path f =
  let path_ok cls = String.equal path "" || String.equal path cls in
  let check (node : Item.t) =
    match View.obj_state v node with
    | Some { Item.cls; value = Some (Value.String s); _ } when path_ok cls ->
      f s
    | Some _ | None -> false
  in
  let rec walk (node : Item.t) =
    check node || List.exists walk (View.children v node.Item.id)
  in
  walk it

let rec test p v it =
  match p with
  | In_class cls -> (
    match View.obj_state v it with
    | Some o -> String.equal o.Item.cls cls
    | None -> false)
  | Is_a cls -> (
    match View.obj_state v it with
    | Some o -> Schema.class_is_a (View.schema v) ~sub:o.Item.cls ~super:cls
    | None -> false)
  | Name_is n -> (
    match View.full_name v it with Some m -> String.equal m n | None -> false)
  | Contains { path; needle } ->
    carrier_matches v it ~path (fun s -> Text_index.string_contains s needle)
  | Matches { path; needles } ->
    carrier_matches v it ~path (fun s ->
        List.for_all (Text_index.string_contains s) needles)
  | And (p, q) -> test p v it && test q v it
  | Or (p, q) -> test p v it || test q v it
  | Not p -> not (test p v it)
  | Opaque f -> f v it

let ( &&& ) p q = And (p, q)
let ( ||| ) p q = Or (p, q)
let not_ p = Not p

(* ------------------------------------------------------------------ *)
(* Planner                                                              *)
(*                                                                      *)
(* [candidates] computes a superset — within the live normal            *)
(* independent objects of the current state — of the items a predicate  *)
(* can match; [None] means unbounded. The caller re-tests the full      *)
(* predicate on every candidate, so a constructor only needs to be      *)
(* sound (never omit a match), not exact:                               *)
(*   - [In_class c] matches exactly the extent of [c];                  *)
(*   - [Is_a c] matches the union of the extents of [c] and its         *)
(*     descendants, because [class_is_a ~sub ~super:c] holds iff [sub]  *)
(*     is in [class_descendants_or_self c];                             *)
(*   - [Name_is n] can only match the object the name index binds to    *)
(*     [n] — every live named independent is indexed and names are      *)
(*     unique (the index may yield a pattern; the domain filter drops   *)
(*     it);                                                             *)
(*   - [Contains]/[Matches] intersect and positionally verify trigram   *)
(*     posting lists ({!Text_index}), then map each matching carrier to *)
(*     its root object — a superset because pattern roots and inherited *)
(*     subtrees wash out in the re-test; they are unbounded when the    *)
(*     index is disabled or no needle reaches trigram length;           *)
(*   - [And] intersects (either side alone is already a superset),      *)
(*     [Or] unions (sound only when both sides are bounded);            *)
(*   - [Not] and [Opaque] are unbounded.                                *)
(* The planner is indifferent to where the id sets come from: an        *)
(* [extent_source] supplies per-class live ids and the name index —     *)
(* from the current-state extents for the current view, or from the     *)
(* materialized version extent for a version view. When neither is      *)
(* available (materialization disabled), [select] falls back to the     *)
(* scan.                                                                *)
(* ------------------------------------------------------------------ *)

type extent_source = {
  src_class_ids : string -> Ident.t list;
      (** live normal independents classified exactly in the class *)
  src_name : string -> Ident.t option;
  src_text : unit -> Text_index.t option;
      (** the trigram index for this view — the current root's for the
          current view, the lazily built per-version one for a version
          view; [None] when text indexing is disabled *)
  src_db : Db_state.t;
      (** for carrier-to-root resolution (item bodies are immutable, so
          the parent chain is version-independent) and the hit/fallback
          counters *)
}

let source_of_view v =
  let db = View.db v in
  match View.version v with
  | None ->
    Some
      {
        src_class_ids = Db_state.obj_extent_ids db;
        src_name = Db_state.find_id_by_name db;
        src_text = (fun () -> Db_state.text_index db);
        src_db = db;
      }
  | Some vid -> (
    match Db_state.version_extent db vid with
    | Some ve ->
      Some
        {
          src_class_ids = Db_state.ve_obj_ids ve;
          src_name = Db_state.ve_find_name ve;
          src_text =
            (fun () ->
              if Db_state.text_index_enabled db then
                Some (Db_state.ve_text_index ve)
              else None);
          src_db = db;
        }
    | None -> None)

(* The independent object owning a carrier: the carrier itself, or the
   top of its parent chain when the match is inside a sub-object. *)
let rec root_owner db id =
  match Db_state.find_item db id with
  | Some { Item.body = Item.Dependent { parent; _ }; _ } -> root_owner db parent
  | Some { Item.body = Item.Independent; _ } -> Some id
  | Some { Item.body = Item.Relationship; _ } | None -> None

(* Needles worth probing: long enough for a trigram and rare enough to
   beat the scan. Dropping a needle is always sound — the remaining
   ones still bound a superset and the re-test applies the full
   conjunction — so a needle whose rarest posting list covers over a
   tenth of the documents is answered by the scan instead of by walking
   a posting list of comparable size (tiny lists always pass: below 64
   candidates the walk is cheap at any ratio). *)
let probe_worthy tx needles =
  let cutoff = max 64 (Text_index.doc_count tx / 10) in
  List.filter
    (fun n ->
      String.length n >= Text_index.min_needle
      && Text_index.estimate tx n <= cutoff)
    needles

(* Verified root-object candidates for conjunctive containment. [None]
   (scan fallback) when the index is disabled or no needle is worth
   probing. *)
let text_candidates src ~path needles =
  match src.src_text () with
  | None ->
    Db_state.note_text_fallback src.src_db;
    None
  | Some tx -> (
    let qpath = if String.equal path "" then None else Some path in
    match probe_worthy tx needles with
    | [] ->
      Db_state.note_text_fallback src.src_db;
      None
    | first :: rest ->
      Db_state.note_text_hit src.src_db;
      let carriers =
        List.fold_left
          (fun acc n -> Ident.Set.inter acc (Text_index.query tx ?path:qpath n))
          (Text_index.query tx ?path:qpath first)
          rest
      in
      Some
        (Ident.Set.fold
           (fun id acc ->
             match root_owner src.src_db id with
             | Some root -> Ident.Set.add root acc
             | None -> acc)
           carriers Ident.Set.empty))

let rec candidates src schema p =
  match p with
  | In_class cls -> Some (Ident.Set.of_list (src.src_class_ids cls))
  | Is_a cls ->
    Some
      (List.fold_left
         (fun acc c ->
           List.fold_left
             (fun acc id -> Ident.Set.add id acc)
             acc (src.src_class_ids c))
         Ident.Set.empty
         (Schema.class_descendants_or_self schema cls))
  | Name_is n -> (
    match src.src_name n with
    | Some id -> Some (Ident.Set.singleton id)
    | None -> Some Ident.Set.empty)
  | Contains { path; needle } -> text_candidates src ~path [ needle ]
  | Matches { path; needles } -> text_candidates src ~path needles
  | And (p, q) -> (
    match (candidates src schema p, candidates src schema q) with
    | Some a, Some b -> Some (Ident.Set.inter a b)
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None)
  | Or (p, q) -> (
    match (candidates src schema p, candidates src schema q) with
    | Some a, Some b -> Some (Ident.Set.union a b)
    | Some _, None | None, Some _ | None, None -> None)
  | Not _ | Opaque _ -> None

(* ------------------------------------------------------------------ *)
(* Plan explanation                                                     *)
(* ------------------------------------------------------------------ *)

type text_probe = {
  tp_path : string;  (* "" = any path *)
  tp_needle : string;
  tp_trigrams : int;
  tp_postings : int;
  tp_candidates : int;
  tp_verified : int;
}

type plan =
  | Indexed of {
      via : string;
      classes : string list;
      names : string list;
      texts : text_probe list;
      est_candidates : int;
    }
  | Scan of { reason : string }

(* The first structural reason the candidate computation gives up — for
   the [Scan] diagnosis. Mirrors [candidates]'s bounding rules. *)
let rec unbounded_reason p =
  match p with
  | In_class _ | Is_a _ | Name_is _ -> None
  | Contains { needle; _ } ->
    if String.length needle >= Text_index.min_needle then None
    else
      Some
        (Printf.sprintf
           "needle %S is shorter than %d bytes (below trigram length)" needle
           Text_index.min_needle)
  | Matches { needles; _ } ->
    if
      List.exists
        (fun n -> String.length n >= Text_index.min_needle)
        needles
    then None
    else Some "no needle reaches trigram length (3 bytes)"
  | And (p, q) -> (
    (* bounded as soon as either side is *)
    match (unbounded_reason p, unbounded_reason q) with
    | Some a, Some _ -> Some a
    | _ -> None)
  | Or (p, q) -> (
    match unbounded_reason p with
    | Some r -> Some ("disjunction with an unbounded arm: " ^ r)
    | None -> (
      match unbounded_reason q with
      | Some r -> Some ("disjunction with an unbounded arm: " ^ r)
      | None -> None))
  | Not _ -> Some "negation is unbounded"
  | Opaque _ -> Some "opaque predicate (no index structure)"

(* Index terms the planner would consult, in appearance order. *)
let rec index_terms p =
  match p with
  | In_class c -> ([ c ], [])
  | Is_a c -> ([ c ^ " (and descendants)" ], [])
  | Name_is n -> ([], [ n ])
  | Contains _ | Matches _ -> ([], [])
  | And (p, q) | Or (p, q) ->
    let pc, pn = index_terms p and qc, qn = index_terms q in
    (pc @ qc, pn @ qn)
  | Not _ | Opaque _ -> ([], [])

(* Text-index lookups the planner would make: (path, needles) per node. *)
let rec text_terms p =
  match p with
  | Contains { path; needle } -> [ (path, [ needle ]) ]
  | Matches { path; needles } -> [ (path, needles) ]
  | And (p, q) | Or (p, q) -> text_terms p @ text_terms q
  | In_class _ | Is_a _ | Name_is _ | Not _ | Opaque _ -> []

let probe_texts src p =
  match src.src_text () with
  | None -> []
  | Some tx ->
    text_terms p
    |> List.concat_map (fun (path, needles) ->
           let qpath = if String.equal path "" then None else Some path in
           List.map
             (fun n ->
               let _, pr = Text_index.query_probe tx ?path:qpath n in
               {
                     tp_path = path;
                     tp_needle = n;
                     tp_trigrams = pr.Text_index.pr_trigrams;
                     tp_postings = pr.Text_index.pr_postings;
                     tp_candidates = pr.Text_index.pr_candidates;
                     tp_verified = pr.Text_index.pr_verified;
                   })
             needles)

let explain v p =
  match source_of_view v with
  | None ->
    Scan
      {
        reason =
          "version view is not materialized (version cache disabled or \
           unknown version)";
      }
  | Some src -> (
    match candidates src (View.schema v) p with
    | None ->
      Scan
        {
          reason =
            (match unbounded_reason p with
            | Some r -> r
            | None ->
              if text_terms p = [] then "predicate is unbounded"
              else if src.src_text () = None then
                "text index disabled — containment falls back to the scan"
              else
                "every containment needle matches too many documents — \
                 the scan is cheaper than walking their posting lists");
        }
    | Some ids ->
      let classes, names = index_terms p in
      let via =
        match View.version v with
        | None -> "current-state extents"
        | Some vid ->
          Printf.sprintf "materialized view of version %s"
            (Version_id.to_string vid)
      in
      Indexed
        {
          via;
          classes = List.sort_uniq String.compare classes;
          names = List.sort_uniq String.compare names;
          texts = probe_texts src p;
          est_candidates = Ident.Set.cardinal ids;
        })

let pp_plan ppf = function
  | Indexed { via; classes; names; texts; est_candidates } ->
    Fmt.pf ppf "@[<v>plan: indexed candidate set@,source: %s@," via;
    if classes <> [] then
      Fmt.pf ppf "class extents: %s@," (String.concat ", " classes);
    if names <> [] then
      Fmt.pf ppf "name index: %s@," (String.concat ", " names);
    List.iter
      (fun tp ->
        Fmt.pf ppf
          "text index: %s contains %S (%d trigrams, %d postings, %d \
           candidates, %d verified)@,"
          (if tp.tp_path = "" then "any path" else tp.tp_path)
          tp.tp_needle tp.tp_trigrams tp.tp_postings tp.tp_candidates
          tp.tp_verified)
      texts;
    Fmt.pf ppf
      "estimated candidates: %d (each re-tested against the full predicate)@]"
      est_candidates
  | Scan { reason } ->
    Fmt.pf ppf "@[<v>plan: full scan of the view@,reason: %s@]" reason

let by_name v (a : Item.t) (b : Item.t) =
  match (View.full_name v a, View.full_name v b) with
  | Some x, Some y -> String.compare x y
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None -> Ident.compare a.Item.id b.Item.id

let scan_objects v p = View.all_objects v |> List.filter (test p v)

let select v p =
  let hits =
    match source_of_view v with
    | None -> scan_objects v p
    | Some src -> (
      match candidates src (View.schema v) p with
      | None -> scan_objects v p
      | Some ids ->
        Ident.Set.elements ids
        |> List.filter_map (Db_state.find_item (View.db v))
        |> List.filter (fun it -> View.live_normal v it && test p v it))
  in
  List.sort (by_name v) hits

let count v p =
  match source_of_view v with
  | None -> List.length (scan_objects v p)
  | Some src -> (
    let db = View.db v in
    match candidates src (View.schema v) p with
    | None -> List.length (scan_objects v p)
    | Some ids ->
      Ident.Set.fold
        (fun id acc ->
          match Db_state.find_item db id with
          | Some it when View.live_normal v it && test p v it -> acc + 1
          | Some _ | None -> acc)
        ids 0)

let select_rels v ~assoc =
  (* each relationship sits in exactly one association extent, so the
     union over the association's subtree has no duplicates *)
  let of_ids rel_ids =
    Schema.assoc_descendants_or_self (View.schema v) assoc
    |> List.concat_map rel_ids
    |> List.sort Ident.compare
    |> List.filter_map (Db_state.find_item (View.db v))
  in
  match View.version v with
  | None -> of_ids (Db_state.rel_extent_ids (View.db v))
  | Some vid -> (
    match Db_state.version_extent (View.db v) vid with
    | Some ve -> of_ids (Db_state.ve_rel_ids ve)
    | None -> View.all_rels v |> List.filter (rel_is_a v ~assoc))

let neighbors v (it : Item.t) ~assoc ~from_pos ~to_pos =
  let db = View.db v in
  View.rels_v v it
  |> List.filter_map (fun (vr : View.vrel) ->
         if not (rel_is_a v ~assoc vr.View.rel) then None
         else
           match
             (List.nth_opt vr.View.endpoints from_pos,
              List.nth_opt vr.View.endpoints to_pos)
           with
           | Some f, Some t when Ident.equal f it.Item.id -> (
             match Db_state.find_item db t with
             | Some other when View.live_normal v other -> Some other
             | Some _ | None -> None)
           | _ -> None)
  |> List.sort_uniq (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)

let reachable v it ~assoc ~from_pos ~to_pos =
  let seen = ref Ident.Set.empty in
  let order = ref [] in
  let rec go (node : Item.t) =
    List.iter
      (fun (next : Item.t) ->
        if not (Ident.Set.mem next.Item.id !seen) then begin
          seen := Ident.Set.add next.Item.id !seen;
          order := next :: !order;
          go next
        end)
      (neighbors v node ~assoc ~from_pos ~to_pos)
  in
  go it;
  List.rev !order
