(** A SEED schema: classes, associations, and generalization structure.

    The schema is immutable; loading data against it happens in
    {!Seed_core}. A schema is built from {!Class_def} and {!Assoc_def}
    values and validated as a whole ({!of_defs}), after which the query
    functions below are total on the names it defines.

    Generalization queries exist in two parallel families — one over
    classes, one over associations — because the paper extends
    generalization from object classes to associations (§Vague data).
    Both families are answered from a memoized transitive-closure cache
    computed lazily per schema value: [class_is_a]/[assoc_is_a] are a
    single hash/set lookup, not a hierarchy walk, and every
    schema-producing function installs a fresh cache so a new schema
    revision can never see stale closures. *)

type t

val revision : t -> int
(** Monotonic schema revision, used by schema versioning. *)

val prepare : t -> unit
(** Force the memoized hierarchy closures. Called by the writer before
    the schema is published to other domains, so concurrent readers
    never race on the underlying [Lazy.force]. *)

val empty : t

val add_class : t -> Class_def.t -> (t, Seed_util.Seed_error.t) result
(** Adds a class; checks the name is fresh and the parent (for
    sub-classes) is already present. Global conditions are only checked
    by {!validate}. *)

val add_assoc : t -> Assoc_def.t -> (t, Seed_util.Seed_error.t) result

val validate : t -> (unit, Seed_util.Seed_error.t) result
(** Whole-schema validation: existence and top-levelness of
    generalization targets, acyclic generalization hierarchies, no
    name clashes among inherited sub-classes, positional role
    compatibility of specialized associations, [ACYCLIC] only on
    binary associations ranging over one class hierarchy, and covering
    conditions having at least one specialization. *)

val of_defs :
  Class_def.t list -> Assoc_def.t list -> (t, Seed_util.Seed_error.t) result
(** [of_defs classes assocs] adds everything and validates. Classes may
    be given in any order provided parents precede children. *)

val of_defs_exn : Class_def.t list -> Assoc_def.t list -> t

val with_revision : t -> int -> t
(** Stamp an explicit revision (used when deriving schema versions).
    The class and association hierarchies are unchanged, so the
    memoized generalization closures are shared with [s] rather than
    recomputed. *)

(** {1 Lookup} *)

val find_class : t -> string -> Class_def.t option
val find_class_res : t -> string -> (Class_def.t, Seed_util.Seed_error.t) result
val find_assoc : t -> string -> Assoc_def.t option
val find_assoc_res : t -> string -> (Assoc_def.t, Seed_util.Seed_error.t) result

val classes : t -> Class_def.t list
(** All classes, sorted by name. *)

val assocs : t -> Assoc_def.t list

val top_level_classes : t -> Class_def.t list

val own_children : t -> string -> Class_def.t list
(** Direct sub-classes of a class (by dotted name). *)

(** {1 Class generalization} *)

val class_supers : t -> string -> string list
(** Proper ancestors, nearest first. [class_supers s "OutputData"] is
    [["Data"; "Thing"]] for the Fig. 3 schema. *)

val class_is_a : t -> sub:string -> super:string -> bool
(** Reflexive: [class_is_a ~sub:c ~super:c] is [true]. *)

val class_specializations : t -> string -> string list
(** Direct specializations. *)

val class_descendants : t -> string -> string list
(** Proper descendants (transitive). *)

val class_descendants_or_self : t -> string -> string list
(** The class and its proper descendants — exactly the classes [c] with
    [class_is_a ~sub:c ~super:n]; the extent of an [is_a] query is the
    union of these classes' extents. *)

val class_hierarchy_root : t -> string -> string
(** Topmost ancestor ([t] itself if it has no super). *)

val same_class_hierarchy : t -> string -> string -> bool

(** {1 Association generalization} *)

val assoc_supers : t -> string -> string list
val assoc_is_a : t -> sub:string -> super:string -> bool
val assoc_specializations : t -> string -> string list
val assoc_descendants : t -> string -> string list
val assoc_descendants_or_self : t -> string -> string list
val assoc_hierarchy_root : t -> string -> string
val same_assoc_hierarchy : t -> string -> string -> bool

(** {1 Structure resolution} *)

val resolve_child :
  t -> cls:string -> role:string -> (Class_def.t, Seed_util.Seed_error.t) result
(** [resolve_child s ~cls ~role] finds the sub-class definition for role
    [role] of an object classified in [cls] — searching [cls] itself
    first, then its generalization ancestors (a [Data] object has a
    [Thing.Description] sub-object in the Fig. 3 schema). *)

val effective_children : t -> string -> (string * Class_def.t) list
(** All sub-classes available to instances of a class, own and
    inherited, as [(role_name, definition)] pairs. *)

val resolve_attr :
  t -> assoc:string -> attr:string -> (Assoc_def.attr, Seed_util.Seed_error.t) result
(** Find an attribute declaration for relationships of [assoc] —
    searching the association itself first, then its generalization
    ancestors (a [Write] relationship also carries attributes declared
    on [Access]). *)

val effective_attrs : t -> string -> Assoc_def.attr list
(** All attributes available to relationships of an association, own
    and inherited. *)

val participation_constraints :
  t -> cls:string -> (Assoc_def.t * int * Assoc_def.role) list
(** Every [(assoc, position, role)] whose role target is [cls] or one of
    its generalization ancestors — i.e. every participation bound that
    applies to instances of [cls]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line schema listing. *)
