open Seed_util
open Seed_error

module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* Memoized transitive closure of one generalization hierarchy: every
   [is_a] and descendant-extent query is a map lookup instead of a walk.
   Closures live behind a [Lazy.t] rebuilt by every function that
   changes the class or association maps, so a schema whose hierarchies
   changed always starts from a fresh cache; [with_revision] only
   restamps and keeps the cell. *)
type gen_closure = {
  up_list : string list;  (** proper ancestors, nearest first *)
  up_set : SSet.t;  (** ancestors including self *)
  down_list : string list;  (** proper descendants (transitive) *)
}

type closures = {
  class_closures : gen_closure SMap.t;
  assoc_closures : gen_closure SMap.t;
}

type t = {
  class_map : Class_def.t SMap.t;
  assoc_map : Assoc_def.t SMap.t;
  rev : int;
  closures : closures Lazy.t;
}

(* Generic generalization walks, shared between classes and associations.
   These are the uncached reference walks; the closure cache is computed
   with them and callers go through the cache. *)

let rec supers_of find super_of n acc =
  match find n with
  | None -> List.rev acc
  | Some def -> (
    match super_of def with
    | None -> List.rev acc
    | Some sup ->
      if List.exists (String.equal sup) acc || String.equal sup n then
        List.rev acc (* cycle: validation reports it; avoid looping *)
      else supers_of find super_of sup (sup :: acc))

let compute_closures_of map super_of =
  let find n = SMap.find_opt n map in
  (* direct-specialization adjacency, one pass over the map *)
  let children =
    SMap.fold
      (fun name def acc ->
        match super_of def with
        | Some sup ->
          SMap.update sup
            (function None -> Some [ name ] | Some l -> Some (name :: l))
            acc
        | None -> acc)
      map SMap.empty
  in
  let down_memo = Hashtbl.create 64 in
  let rec down visiting name =
    match Hashtbl.find_opt down_memo name with
    | Some d -> d
    | None ->
      if SSet.mem name visiting then [] (* cycle guard, as in supers_of *)
      else
        let visiting = SSet.add name visiting in
        let kids =
          match SMap.find_opt name children with
          | Some l -> List.rev l
          | None -> []
        in
        let d = List.concat_map (fun k -> k :: down visiting k) kids in
        Hashtbl.add down_memo name d;
        d
  in
  SMap.mapi
    (fun name _def ->
      let up_list = supers_of find super_of name [] in
      let up_set =
        List.fold_left (fun s x -> SSet.add x s) (SSet.singleton name) up_list
      in
      { up_list; up_set; down_list = down SSet.empty name })
    map

let compute_closures class_map assoc_map =
  {
    class_closures =
      compute_closures_of class_map (fun (c : Class_def.t) -> c.super);
    assoc_closures =
      compute_closures_of assoc_map (fun (a : Assoc_def.t) -> a.super);
  }

let make ~class_map ~assoc_map ~rev =
  { class_map; assoc_map; rev; closures = lazy (compute_closures class_map assoc_map) }

(* Forcing on the writer before a schema escapes to reader domains makes
   the subsequent cross-domain [Lazy.force] calls plain reads. *)
let prepare s = ignore (Lazy.force s.closures)

let class_closure s n = SMap.find_opt n (Lazy.force s.closures).class_closures
let assoc_closure s n = SMap.find_opt n (Lazy.force s.closures).assoc_closures

let revision s = s.rev
let empty = make ~class_map:SMap.empty ~assoc_map:SMap.empty ~rev:0
(* Restamping shares the (possibly already forced) closure cell: the
   hierarchies are untouched, so the closures are byte-identical. *)
let with_revision s rev = { s with rev }

let valid_component c =
  (not (String.equal c ""))
  && not (String.exists (fun ch -> ch = '.' || ch = '[' || ch = ']') c)

let add_class s (c : Class_def.t) =
  let name = Class_def.name c in
  if not (List.for_all valid_component c.path) then
    fail (Schema_violation ("bad class path: " ^ name))
  else if SMap.mem name s.class_map then fail (Duplicate_class name)
  else
    match Class_def.parent_name c with
    | Some p when not (SMap.mem p s.class_map) -> fail (Unknown_class p)
    | Some _ | None ->
      Ok
        (make
           ~class_map:(SMap.add name c s.class_map)
           ~assoc_map:s.assoc_map ~rev:s.rev)

let add_assoc s (a : Assoc_def.t) =
  if not (valid_component a.name) then
    fail (Schema_violation ("bad association name: " ^ a.name))
  else if SMap.mem a.name s.assoc_map then fail (Duplicate_association a.name)
  else
    Ok
      (make ~class_map:s.class_map
         ~assoc_map:(SMap.add a.name a s.assoc_map)
         ~rev:s.rev)

let find_class s n = SMap.find_opt n s.class_map

let find_class_res s n =
  match find_class s n with Some c -> Ok c | None -> fail (Unknown_class n)

let find_assoc s n = SMap.find_opt n s.assoc_map

let find_assoc_res s n =
  match find_assoc s n with
  | Some a -> Ok a
  | None -> fail (Unknown_association n)

let classes s = List.map snd (SMap.bindings s.class_map)
let assocs s = List.map snd (SMap.bindings s.assoc_map)

let top_level_classes s =
  List.filter Class_def.is_top_level (classes s)

let own_children s n =
  let prefix = n ^ "." in
  let plen = String.length prefix in
  SMap.fold
    (fun name c acc ->
      if
        String.length name > plen
        && String.sub name 0 plen = prefix
        && not (String.contains_from name plen '.')
      then c :: acc
      else acc)
    s.class_map []
  |> List.rev

let class_supers s n =
  match class_closure s n with Some c -> c.up_list | None -> []

let assoc_supers s n =
  match assoc_closure s n with Some c -> c.up_list | None -> []

(* A name outside the schema (possible on instances surviving a schema
   evolution) generalizes nothing but itself, as with the plain walk. *)
let class_is_a s ~sub ~super =
  match class_closure s sub with
  | Some c -> SSet.mem super c.up_set
  | None -> String.equal sub super

let assoc_is_a s ~sub ~super =
  match assoc_closure s sub with
  | Some c -> SSet.mem super c.up_set
  | None -> String.equal sub super

let class_specializations s n =
  SMap.fold
    (fun name (c : Class_def.t) acc ->
      match c.super with
      | Some sup when String.equal sup n -> name :: acc
      | Some _ | None -> acc)
    s.class_map []
  |> List.rev

let assoc_specializations s n =
  SMap.fold
    (fun name (a : Assoc_def.t) acc ->
      match a.super with
      | Some sup when String.equal sup n -> name :: acc
      | Some _ | None -> acc)
    s.assoc_map []
  |> List.rev

let descendants direct n =
  let rec go acc frontier =
    match frontier with
    | [] -> List.rev acc
    | x :: rest ->
      let kids = direct x in
      go (List.rev_append kids acc) (kids @ rest)
  in
  go [] [ n ]

(* Unknown names fall back to the scan: a class outside the schema can
   still be named as [super] by definitions added out of order. *)
let class_descendants s n =
  match class_closure s n with
  | Some c -> c.down_list
  | None -> descendants (class_specializations s) n

let assoc_descendants s n =
  match assoc_closure s n with
  | Some c -> c.down_list
  | None -> descendants (assoc_specializations s) n

let class_descendants_or_self s n = n :: class_descendants s n
let assoc_descendants_or_self s n = n :: assoc_descendants s n

let class_hierarchy_root s n =
  match List.rev (class_supers s n) with [] -> n | root :: _ -> root

let assoc_hierarchy_root s n =
  match List.rev (assoc_supers s n) with [] -> n | root :: _ -> root

let same_class_hierarchy s a b =
  String.equal (class_hierarchy_root s a) (class_hierarchy_root s b)

let same_assoc_hierarchy s a b =
  String.equal (assoc_hierarchy_root s a) (assoc_hierarchy_root s b)

let resolve_child s ~cls ~role =
  let child_of c =
    find_class s (c ^ "." ^ role)
  in
  let rec search = function
    | [] ->
      fail (Unknown_class (cls ^ "." ^ role))
    | c :: rest -> (
      match child_of c with Some def -> Ok def | None -> search rest)
  in
  search (cls :: class_supers s cls)

let effective_children s cls =
  let chain = cls :: class_supers s cls in
  List.concat_map
    (fun c ->
      List.map (fun d -> (Class_def.simple_name d, d)) (own_children s c))
    chain

let effective_attrs s assoc =
  let chain = assoc :: assoc_supers s assoc in
  List.concat_map
    (fun a ->
      match find_assoc s a with
      | Some def -> def.Assoc_def.attrs
      | None -> [])
    chain

let resolve_attr s ~assoc ~attr =
  match
    List.find_opt
      (fun (a : Assoc_def.attr) -> String.equal a.Assoc_def.attr_name attr)
      (effective_attrs s assoc)
  with
  | Some a -> Ok a
  | None ->
    fail
      (Schema_violation
         (Printf.sprintf "association %s has no attribute %s" assoc attr))

let participation_constraints s ~cls =
  SMap.fold
    (fun _ (a : Assoc_def.t) acc ->
      let indexed = List.mapi (fun i r -> (i, r)) a.roles in
      let applicable =
        List.filter_map
          (fun (i, (r : Assoc_def.role)) ->
            if class_is_a s ~sub:cls ~super:r.target then Some (a, i, r)
            else None)
          indexed
      in
      acc @ applicable)
    s.assoc_map []

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let check_super_chain kind find super_of name =
  (* Detect cycles and dangling supers in a generalization hierarchy. *)
  let rec go seen n =
    match find n with
    | None -> fail (Schema_violation (kind ^ " generalizes unknown " ^ n))
    | Some def -> (
      match super_of def with
      | None -> Ok ()
      | Some sup ->
        if List.exists (String.equal sup) seen then
          fail
            (Schema_violation
               (Printf.sprintf "generalization cycle through %s at %s" name sup))
        else go (sup :: seen) sup)
  in
  go [ name ] name

let validate_class s (c : Class_def.t) =
  let name = Class_def.name c in
  let* () =
    match c.super with
    | None -> Ok ()
    | Some sup ->
      if not (Class_def.is_top_level c) then
        fail
          (Schema_violation
             (name ^ ": only top-level classes may be generalized"))
      else
        let* sup_def = find_class_res s sup in
        if not (Class_def.is_top_level sup_def) then
          fail (Schema_violation (name ^ ": super " ^ sup ^ " is not top-level"))
        else check_super_chain ("class " ^ name) (find_class s)
               (fun (d : Class_def.t) -> d.super)
               name
  in
  let* () =
    if c.covering && class_specializations s name = [] then
      fail
        (Schema_violation
           (name ^ ": covering generalization without specializations"))
    else Ok ()
  in
  (* No name clash among own + inherited sub-classes. *)
  if Class_def.is_top_level c then
    let kids = effective_children s name in
    let names = List.map fst kids in
    let dups =
      List.filter
        (fun n -> List.length (List.filter (String.equal n) names) > 1)
        (List.sort_uniq String.compare names)
    in
    match dups with
    | [] -> Ok ()
    | d :: _ ->
      fail
        (Schema_violation
           (Printf.sprintf "class %s: sub-class %s clashes with inherited one"
              name d))
  else Ok ()

let validate_assoc s (a : Assoc_def.t) =
  let* () =
    iter_result
      (fun (r : Assoc_def.role) ->
        let* def = find_class_res s r.target in
        if Class_def.is_top_level def then Ok ()
        else
          fail
            (Schema_violation
               (Printf.sprintf "assoc %s: role %s targets sub-class %s" a.name
                  r.role_name r.target)))
      a.roles
  in
  let* () =
    match a.super with
    | None -> Ok ()
    | Some sup ->
      let* sup_def = find_assoc_res s sup in
      let* () =
        check_super_chain ("assoc " ^ a.name) (find_assoc s)
          (fun (d : Assoc_def.t) -> d.super)
          a.name
      in
      if Assoc_def.arity sup_def <> Assoc_def.arity a then
        fail
          (Schema_violation
             (Printf.sprintf "assoc %s: arity differs from super %s" a.name sup))
      else
        iter_result
          (fun (i, (r : Assoc_def.role)) ->
            let sr = Assoc_def.nth_role sup_def i in
            if class_is_a s ~sub:r.target ~super:sr.target then Ok ()
            else
              fail
                (Schema_violation
                   (Printf.sprintf
                      "assoc %s: role %s target %s does not specialize %s of %s"
                      a.name r.role_name r.target sr.target sup)))
          (List.mapi (fun i r -> (i, r)) a.roles)
  in
  let* () =
    if a.acyclic then
      if Assoc_def.arity a <> 2 then
        fail
          (Schema_violation
             (Printf.sprintf "assoc %s: ACYCLIC requires a binary association"
                a.name))
      else
        match a.roles with
        | [ r1; r2 ] ->
          if same_class_hierarchy s r1.target r2.target then Ok ()
          else
            fail
              (Schema_violation
                 (Printf.sprintf
                    "assoc %s: ACYCLIC roles must range over one hierarchy"
                    a.name))
        | _ -> assert false
    else Ok ()
  in
  let* () =
    if a.covering && assoc_specializations s a.name = [] then
      fail
        (Schema_violation
           (a.name ^ ": covering generalization without specializations"))
    else Ok ()
  in
  (* no clash among own + inherited attribute names *)
  let anames =
    List.map (fun (x : Assoc_def.attr) -> x.Assoc_def.attr_name)
      (effective_attrs s a.name)
  in
  if List.length (List.sort_uniq String.compare anames) <> List.length anames
  then
    fail
      (Schema_violation
         (a.name ^ ": attribute clashes with an inherited one"))
  else Ok ()

let validate s =
  let* () = iter_result (validate_class s) (classes s) in
  iter_result (validate_assoc s) (assocs s)

let of_defs class_defs assoc_defs =
  let* s =
    List.fold_left
      (fun acc c ->
        let* s = acc in
        add_class s c)
      (Ok empty) class_defs
  in
  let* s =
    List.fold_left
      (fun acc a ->
        let* s = acc in
        add_assoc s a)
      (Ok s) assoc_defs
  in
  let* () = validate s in
  Ok (with_revision s 1)

let of_defs_exn class_defs assoc_defs = ok_exn (of_defs class_defs assoc_defs)

let pp ppf s =
  Fmt.pf ppf "@[<v>schema (revision %d)@," s.rev;
  List.iter (fun c -> Fmt.pf ppf "  %a@," Class_def.pp c) (classes s);
  List.iter (fun a -> Fmt.pf ppf "  %a@," Assoc_def.pp a) (assocs s);
  Fmt.pf ppf "@]"
