(** Client library for the networked SEED server.

    The client owns the robustness loop so applications see plain
    results: it dials with {!Seed_util.Retry.with_deadline} exponential
    backoff, establishes a session ([Hello]/[Welcome]), and on any wire
    failure reconnects, {e resumes} the session and retransmits the
    in-flight request with its original request id — the server's replay
    cache turns the retransmit into the recorded response, so a check-in
    is applied exactly once however many times the connection dies under
    it. [Busy] and [Draining] answers are retried with backoff inside
    the same window. Responses whose id does not match the outstanding
    request (duplicates, stragglers from before a reconnect) are
    discarded.

    The one failure the client will not paper over: if the session
    lease expired while a request's outcome was unknown, resuming fails
    with [Session_expired] and the error is surfaced — retrying blind
    could apply the request twice, so the application must re-establish
    and re-verify. *)

open Seed_util

type error =
  | Transport of Seed_error.t
      (** the connection could not be (re-)established within the
          retry window; the last request's outcome may be unknown *)
  | Remote of Wire.wire_error  (** the server answered with an error *)

val pp_error : Format.formatter -> error -> unit

type config = {
  client : string;  (** lock-owner name sent in [Hello] *)
  request_timeout : float;
      (** seconds to wait for one response before presuming it lost and
          reconnecting *)
  retry_window : float;
      (** seconds a request keeps reconnecting/retrying before giving
          up; keep it inside the server's session TTL *)
  retry_policy : Retry.policy;  (** backoff shape for reconnects *)
}

val default_config : client:string -> config
(** 2s request timeout, 10s retry window, {!Retry.default_policy}. *)

type t

val create :
  ?config:config ->
  ?now:(unit -> float) ->
  ?sleep:(float -> unit) ->
  client:string ->
  dial:(unit -> (Transport.t, Seed_error.t) result) ->
  unit ->
  t
(** A client over an arbitrary transport factory. Nothing is dialled
    until the first request. [now]/[sleep] are injectable for
    deterministic tests. *)

val connect_tcp :
  ?config:config -> client:string -> host:string -> port:int -> unit -> t
(** {!create} with a TCP dialler (connection refused/reset are treated
    as transient, so a restarting server is retried, not fatal). *)

val session_id : t -> int64 option
(** The live session, once established. *)

val checkout :
  ?wait_timeout:float -> t -> string list -> (unit, error) result

val checkin : t -> Seed_server.Protocol.op list -> (unit, error) result

val release : t -> (unit, error) result

val find : t -> string -> (string option, error) result

val select_isa : t -> string -> (string list, error) result

val search : t -> path:string -> string list -> (string list, error) result
(** Names of the live objects carrying a string value at [path]
    ([""] = any class path) that contains all the needles — the
    server runs [Query.matches] against its current snapshot, planned
    from the trigram index. *)

val stats : t -> (Wire.server_stats, error) result

val ping : t -> (unit, error) result

val close : t -> unit
(** Best-effort [Bye] (frees the session's locks immediately instead of
    waiting out the lease), then closes the transport. *)
