open Seed_util

type error = Transport of Seed_error.t | Remote of Wire.wire_error

let pp_error ppf = function
  | Transport e -> Format.fprintf ppf "transport: %a" Seed_error.pp e
  | Remote w -> Format.fprintf ppf "server: %s" w.Wire.message

type config = {
  client : string;
  request_timeout : float;
  retry_window : float;
  retry_policy : Retry.policy;
}

let default_config ~client =
  {
    client;
    request_timeout = 2.0;
    retry_window = 10.0;
    retry_policy = Retry.default_policy;
  }

type t = {
  cfg : config;
  dial : unit -> (Transport.t, Seed_error.t) result;
  now : unit -> float;
  sleep : float -> unit;
  mutable tr : Transport.t option;
  mutable session : (int64 * int64) option;  (* id, token *)
  mutable next_req : int64;
}

let create ?config ?(now = Unix.gettimeofday) ?(sleep = Thread.delay) ~client
    ~dial () =
  let cfg = match config with Some c -> c | None -> default_config ~client in
  let cfg = { cfg with client } in
  { cfg; dial; now; sleep; tr = None; session = None; next_req = 1L }

let connect_tcp ?config ~client ~host ~port () =
  let dial () =
    try
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      Ok (Transport.of_fd fd)
    with
    | Unix.Unix_error
        ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.ETIMEDOUT
          | Unix.EINTR | Unix.EAGAIN | Unix.ENETUNREACH | Unix.EHOSTUNREACH ),
          fn,
          _ ) ->
      (* a server that is restarting or draining looks like this; the
         reconnect loop should keep knocking until its window closes *)
      Seed_error.fail (Seed_error.Io_transient (Printf.sprintf "connect: %s" fn))
    | Unix.Unix_error (e, fn, _) ->
      Seed_error.fail
        (Seed_error.Io_error
           (Printf.sprintf "connect: %s: %s" fn (Unix.error_message e)))
  in
  create ?config ~client ~dial ()

let session_id t = Option.map fst t.session

let fresh_id t =
  let id = t.next_req in
  t.next_req <- Int64.add id 1L;
  id

let disconnect t =
  (match t.tr with Some tr -> tr.Transport.close () | None -> ());
  t.tr <- None

(* One request/response exchange on an open transport. Responses whose
   id is not [req_id] are stragglers from a previous connection (or wire
   duplicates) — skip them. A transient recv error is a clean timeout:
   the response is presumed lost and the caller reconnects/replays. *)
let exchange t tr ~req_id body =
  let open Seed_error in
  let* () =
    tr.Transport.send (Frame.encode (Wire.encode_request { Wire.req_id; body }))
  in
  let deadline = t.now () +. t.cfg.request_timeout in
  let rec await () =
    let remaining = deadline -. t.now () in
    if remaining <= 0.0 then fail (Io_transient "response timeout")
    else
      let* frame = tr.Transport.recv ~timeout:(Some remaining) in
      let* payload = Frame.decode frame in
      let* resp = Wire.decode_response payload in
      if Int64.equal resp.Wire.rsp_id req_id then Ok resp.Wire.rbody
      else await ()
  in
  await ()

(* Establish (or resume) a session on a fresh transport. Non-retryable
   server refusals are smuggled out of the [Retry] loop through [fatal]
   as a permanent error. *)
let establish t ~fatal =
  match t.dial () with
  | Error e -> Error e
  | Ok tr -> (
    let req_id = fresh_id t in
    let hello =
      Wire.Hello
        { protocol = Frame.version; client = t.cfg.client; resume = t.session }
    in
    match exchange t tr ~req_id hello with
    | Error e ->
      tr.Transport.close ();
      Error e
    | Ok (Wire.Welcome { session; token; _ }) ->
      t.session <- Some (session, token);
      t.tr <- Some tr;
      Ok tr
    | Ok (Wire.Busy { retry_after }) ->
      tr.Transport.close ();
      t.sleep retry_after;
      Seed_error.fail (Seed_error.Io_transient "server busy")
    | Ok Wire.Draining ->
      tr.Transport.close ();
      Seed_error.fail (Seed_error.Io_transient "server draining")
    | Ok (Wire.Err w) ->
      tr.Transport.close ();
      if w.Wire.retryable then
        Seed_error.fail (Seed_error.Io_transient w.Wire.message)
      else begin
        (* e.g. Session_expired: replay safety is gone, surface it *)
        fatal := Some (Remote w);
        Seed_error.fail (Seed_error.Io_error w.Wire.message)
      end
    | Ok _ ->
      tr.Transport.close ();
      Seed_error.fail (Seed_error.Io_error "malformed hello response"))

let ensure_conn t ~deadline ~fatal =
  match t.tr with
  | Some tr -> Ok tr
  | None ->
    Retry.with_deadline ~policy:t.cfg.retry_policy ~sleep:t.sleep ~now:t.now
      ~deadline (fun () -> establish t ~fatal)

(* The robustness loop: send, await, and on any wire failure reconnect
   (resuming the session) and retransmit the SAME request id — the
   server's replay cache makes the retransmit idempotent. Busy/Draining
   answers loop with backoff inside the same deadline. *)
let rpc t body =
  let req_id = fresh_id t in
  let deadline = t.now () +. t.cfg.retry_window in
  let fatal = ref None in
  let attempt = ref 0 in
  let backoff () =
    incr attempt;
    t.sleep (Retry.delay_for t.cfg.retry_policy ~attempt:(min !attempt 16))
  in
  let rec go last_err =
    match !fatal with
    | Some e -> Error e
    | None ->
      if t.now () >= deadline then
        Error
          (match last_err with
          | Some e -> e
          | None -> Transport (Seed_error.Io_error "request retry window over"))
      else begin
        match ensure_conn t ~deadline ~fatal with
        | Error e -> (
          match !fatal with Some f -> Error f | None -> Error (Transport e))
        | Ok tr -> (
          match exchange t tr ~req_id body with
          | Error e ->
            (* lost connection or lost response: reconnect, resume,
               replay this request id *)
            disconnect t;
            go (Some (Transport e))
          | Ok (Wire.Busy { retry_after }) ->
            t.sleep retry_after;
            go (Some (Remote { code = Wire.Server_error;
                               message = "server busy";
                               retryable = true }))
          | Ok Wire.Draining ->
            backoff ();
            disconnect t;
            go (Some (Remote { code = Wire.Server_error;
                               message = "server draining";
                               retryable = true }))
          | Ok rbody -> Ok rbody)
      end
  in
  go None

let remote w = Error (Remote w)

let expect_done = function
  | Ok Wire.Done -> Ok ()
  | Ok (Wire.Err w) -> remote w
  | Ok _ ->
    remote
      { Wire.code = Wire.Server_error;
        message = "unexpected response";
        retryable = false }
  | Error e -> Error e

let checkout ?wait_timeout t names =
  expect_done (rpc t (Wire.Checkout { names; wait_timeout }))

let checkin t ops = expect_done (rpc t (Wire.Checkin ops))
let release t = expect_done (rpc t Wire.Release)

let find t name =
  match rpc t (Wire.Find name) with
  | Ok (Wire.Found r) -> Ok r
  | Ok (Wire.Err w) -> remote w
  | Ok _ ->
    remote
      { Wire.code = Wire.Server_error;
        message = "unexpected response";
        retryable = false }
  | Error e -> Error e

let select_isa t cls =
  match rpc t (Wire.Select_isa cls) with
  | Ok (Wire.Names ns) -> Ok ns
  | Ok (Wire.Err w) -> remote w
  | Ok _ ->
    remote
      { Wire.code = Wire.Server_error;
        message = "unexpected response";
        retryable = false }
  | Error e -> Error e

let search t ~path needles =
  match rpc t (Wire.Search { path; needles }) with
  | Ok (Wire.Names ns) -> Ok ns
  | Ok (Wire.Err w) -> remote w
  | Ok _ ->
    remote
      { Wire.code = Wire.Server_error;
        message = "unexpected response";
        retryable = false }
  | Error e -> Error e

let stats t =
  match rpc t Wire.Stats with
  | Ok (Wire.Stats_reply s) -> Ok s
  | Ok (Wire.Err w) -> remote w
  | Ok _ ->
    remote
      { Wire.code = Wire.Server_error;
        message = "unexpected response";
        retryable = false }
  | Error e -> Error e

let ping t =
  match rpc t Wire.Ping with
  | Ok Wire.Pong -> Ok ()
  | Ok (Wire.Err w) -> remote w
  | Ok _ ->
    remote
      { Wire.code = Wire.Server_error;
        message = "unexpected response";
        retryable = false }
  | Error e -> Error e

let close t =
  (match t.tr with
  | Some tr ->
    (* best effort: free the session's locks now rather than at TTL *)
    let req_id = fresh_id t in
    ignore (exchange t tr ~req_id Wire.Bye)
  | None -> ());
  disconnect t;
  t.session <- None
