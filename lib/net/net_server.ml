open Seed_util
module Server = Seed_server.Server
module DB = Seed_core.Database
module View = Seed_core.View
module Query = Seed_core.Query

type config = {
  max_sessions : int;
  max_in_flight : int;
  session_ttl : float;
  busy_retry_after : float;
}

let default_config =
  {
    max_sessions = 64;
    max_in_flight = 128;
    session_ttl = 30.0;
    busy_retry_after = 0.05;
  }

type session = {
  sid : int64;
  token : int64;
  client : string;
  mutable expires : float;
  mutable last_req : int64;  (* highest executed request id; 0 = none *)
  mutable last_resp : string;  (* its encoded response payload *)
}

type t = {
  eng : Server.t;
  cfg : config;
  now : unit -> float;
  sleep : float -> unit;
  m : Mutex.t;
  sessions : (int64, session) Hashtbl.t;
  by_client : (string, int64) Hashtbl.t;
  mutable next_sid : int64;
  mutable in_flight : int;
  mutable is_draining : bool;
  mutable served : int;
  mutable busy_rejects : int;
  mutable reaped : int;
}

let create ?(config = default_config) ?(now = Unix.gettimeofday)
    ?(sleep = Thread.delay) engine =
  {
    eng = engine;
    cfg = config;
    now;
    sleep;
    m = Mutex.create ();
    sessions = Hashtbl.create 32;
    by_client = Hashtbl.create 32;
    next_sid = 1L;
    in_flight = 0;
    is_draining = false;
    served = 0;
    busy_rejects = 0;
    reaped = 0;
  }

let engine t = t.eng

module Conn = struct
  type t = { mutable session : int64 option }
end

let open_conn _t = { Conn.session = None }
let close_conn _t (c : Conn.t) = c.Conn.session <- None

type action = Reply of string | Reply_close of string | Close

(* --- sessions (all with [t.m] held) ----------------------------------- *)

let reap_locked t =
  let horizon = t.now () in
  let dead =
    Hashtbl.fold
      (fun sid s acc -> if s.expires <= horizon then (sid, s) :: acc else acc)
      t.sessions []
  in
  List.map
    (fun (sid, s) ->
      Hashtbl.remove t.sessions sid;
      (match Hashtbl.find_opt t.by_client s.client with
      | Some live when Int64.equal live sid -> Hashtbl.remove t.by_client s.client
      | Some _ | None -> ());
      t.reaped <- t.reaped + 1;
      (s.client, Server.release_session t.eng ~client:s.client))
    dead

let end_session_locked t s =
  ignore (Server.release_session t.eng ~client:s.client);
  Hashtbl.remove t.sessions s.sid;
  match Hashtbl.find_opt t.by_client s.client with
  | Some live when Int64.equal live s.sid -> Hashtbl.remove t.by_client s.client
  | Some _ | None -> ()

let touch_locked t s =
  s.expires <- t.now () +. t.cfg.session_ttl;
  Server.refresh_leases t.eng ~client:s.client ~ttl:t.cfg.session_ttl

let stats_locked t =
  let ls = Server.lock_stats t.eng in
  let ds = DB.stats (Server.database t.eng) in
  {
    Wire.sv_sessions = Hashtbl.length t.sessions;
    sv_max_sessions = t.cfg.max_sessions;
    sv_in_flight = t.in_flight;
    sv_max_in_flight = t.cfg.max_in_flight;
    sv_served = t.served;
    sv_busy_rejects = t.busy_rejects;
    sv_reaped_sessions = t.reaped;
    sv_checkins = Server.checkin_count t.eng;
    sv_locks_held = ls.Seed_server.Lock_table.locks_held;
    sv_locks_leased = ls.Seed_server.Lock_table.locks_leased;
    sv_locks_expired = ls.Seed_server.Lock_table.locks_expired;
    sv_lock_waiters = ls.Seed_server.Lock_table.waiters;
    sv_objects = ds.DB.st_objects;
    sv_relationships = ds.DB.st_relationships;
    sv_versions = ds.DB.st_versions;
  }

let hello_locked t (conn : Conn.t) ~protocol ~client ~resume =
  if protocol <> Frame.version then
    Wire.Err
      {
        code = Wire.Unsupported_protocol;
        message =
          Printf.sprintf "server speaks protocol %d, client sent %d"
            Frame.version protocol;
        retryable = false;
      }
  else if t.is_draining then Wire.Draining
  else
    match resume with
    | Some (sid, token) -> (
      match Hashtbl.find_opt t.sessions sid with
      | Some s
        when Int64.equal s.token token
             && String.equal s.client client
             && s.expires > t.now () ->
        touch_locked t s;
        conn.Conn.session <- Some sid;
        Wire.Welcome
          {
            protocol = Frame.version;
            session = sid;
            token = s.token;
            ttl = t.cfg.session_ttl;
            resumed = true;
          }
      | Some _ | None ->
        (* expired, reaped, or wrong token: the locks are gone, replay
           safety with them — the client must start over and re-verify *)
        Wire.Err
          {
            code = Wire.Session_expired;
            message = "session expired or unknown; re-establish and verify";
            retryable = false;
          })
    | None ->
      if Hashtbl.length t.sessions >= t.cfg.max_sessions then begin
        t.busy_rejects <- t.busy_rejects + 1;
        Wire.Busy { retry_after = t.cfg.busy_retry_after }
      end
      else if Hashtbl.mem t.by_client client then
        Wire.Err
          {
            code = Wire.Already_connected;
            message =
              Printf.sprintf
                "client %S already has a live session; resume it or wait out \
                 its lease"
                client;
            retryable = true;
          }
      else begin
        let sid = t.next_sid in
        t.next_sid <- Int64.add t.next_sid 1L;
        let token =
          (* unique per session; mixed with the clock so a token from a
             previous server instance does not accidentally validate *)
          Int64.logxor
            (Int64.mul sid 0x9E3779B97F4A7C15L)
            (Int64.of_float (t.now () *. 1_000_000.0))
        in
        let s =
          {
            sid;
            token;
            client;
            expires = t.now () +. t.cfg.session_ttl;
            last_req = 0L;
            last_resp = "";
          }
        in
        Hashtbl.replace t.sessions sid s;
        Hashtbl.replace t.by_client client sid;
        conn.Conn.session <- Some sid;
        Wire.Welcome
          {
            protocol = Frame.version;
            session = sid;
            token;
            ttl = t.cfg.session_ttl;
            resumed = false;
          }
      end

(* --- request execution ------------------------------------------------ *)

let execute_locked t (conn : Conn.t) s (body : Wire.req_body) =
  match body with
  | Wire.Checkout { names; wait_timeout } -> (
    let ttl = t.cfg.session_ttl in
    let r =
      match wait_timeout with
      | None -> Server.checkout_lease t.eng ~client:s.client ~ttl ~names
      | Some timeout ->
        (* the engine mutex is released while the waiter sleeps so other
           connections can run — including the one that will release
           the contended lock *)
        let sleep d =
          Mutex.unlock t.m;
          Fun.protect
            ~finally:(fun () -> Mutex.lock t.m)
            (fun () -> t.sleep d)
        in
        Server.checkout_wait t.eng ~client:s.client ~ttl ~sleep ~timeout ~names
          ()
    in
    match r with
    | Ok () -> Wire.Done
    | Error e -> Wire.Err (Wire.error_to_wire e))
  | Wire.Checkin ops -> (
    match Server.checkin t.eng ~client:s.client ops with
    | Ok () -> Wire.Done
    | Error e -> Wire.Err (Wire.error_to_wire e))
  | Wire.Release ->
    Server.release t.eng ~client:s.client;
    Wire.Done
  | Wire.Find name -> (
    let v = Server.snapshot t.eng in
    match View.resolve_name v name with
    | Some it -> Wire.Found (View.class_path_of v it)
    | None -> Wire.Found None)
  | Wire.Select_isa cls ->
    let v = Server.snapshot t.eng in
    let items = Query.select v (Query.is_a cls) in
    Wire.Names
      (List.sort String.compare (List.filter_map (View.full_name v) items))
  | Wire.Search { path; needles } ->
    let v = Server.snapshot t.eng in
    let items = Query.select v (Query.matches path needles) in
    Wire.Names
      (List.sort String.compare (List.filter_map (View.full_name v) items))
  | Wire.Stats -> Wire.Stats_reply (stats_locked t)
  | Wire.Ping -> Wire.Pong
  | Wire.Bye ->
    end_session_locked t s;
    conn.Conn.session <- None;
    Wire.Done
  | Wire.Hello _ ->
    Wire.Err
      {
        code = Wire.Bad_request;
        message = "hello on an established session";
        retryable = false;
      }

let reply ~req_id rbody =
  Frame.encode (Wire.encode_response { Wire.rsp_id = req_id; rbody })

let bad_request ~req_id message =
  Reply_close
    (reply ~req_id
       (Wire.Err { code = Wire.Bad_request; message; retryable = false }))

let dispatch_locked t conn ({ Wire.req_id; body } : Wire.request) =
  ignore (reap_locked t);
  match body with
  | Wire.Hello { protocol; client; resume } ->
    let rbody = hello_locked t conn ~protocol ~client ~resume in
    Reply (reply ~req_id rbody)
  | _ when t.is_draining -> Reply (reply ~req_id Wire.Draining)
  | _ -> (
    match conn.Conn.session with
    | None -> bad_request ~req_id "request before hello"
    | Some sid -> (
      match Hashtbl.find_opt t.sessions sid with
      | None ->
        conn.Conn.session <- None;
        Reply
          (reply ~req_id
             (Wire.Err
                {
                  code = Wire.Session_expired;
                  message = "session lease expired";
                  retryable = false;
                }))
      | Some s ->
        if Int64.compare req_id 0L <= 0 then
          bad_request ~req_id "request ids must be positive"
        else if Int64.equal req_id s.last_req then begin
          (* replay of the request whose response was lost: answer from
             the cache, never re-apply *)
          touch_locked t s;
          Reply (Frame.encode s.last_resp)
        end
        else if Int64.compare req_id s.last_req < 0 then
          bad_request ~req_id "stale request id"
        else if t.in_flight >= t.cfg.max_in_flight then begin
          t.busy_rejects <- t.busy_rejects + 1;
          Reply
            (reply ~req_id (Wire.Busy { retry_after = t.cfg.busy_retry_after }))
        end
        else begin
          t.in_flight <- t.in_flight + 1;
          let rbody =
            (* a request must never take the server down: engine bugs
               surface as an error response on this one session *)
            try execute_locked t conn s body
            with exn ->
              Wire.Err
                {
                  code = Wire.Server_error;
                  message = Printexc.to_string exn;
                  retryable = false;
                }
          in
          t.in_flight <- t.in_flight - 1;
          t.served <- t.served + 1;
          let payload = Wire.encode_response { Wire.rsp_id = req_id; rbody } in
          let closing = match body with Wire.Bye -> true | _ -> false in
          if not closing then begin
            s.last_req <- req_id;
            s.last_resp <- payload;
            touch_locked t s
          end;
          if closing then Reply_close (Frame.encode payload)
          else Reply (Frame.encode payload)
        end))

let on_frame t conn frame =
  match Frame.decode frame with
  | Error _ ->
    (* framing is gone: no way to answer reliably, drop the connection
       and let the lease-protected session carry the client over *)
    Close
  | Ok payload -> (
    Mutex.lock t.m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.m)
      (fun () ->
        match Wire.decode_request payload with
        | Error e -> bad_request ~req_id:0L (Seed_error.to_string e)
        | Ok req -> dispatch_locked t conn req))

let reap t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () -> reap_locked t)

let drain t =
  Mutex.lock t.m;
  t.is_draining <- true;
  Mutex.unlock t.m

let draining t = t.is_draining

let stats t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () -> stats_locked t)

(* --- TCP front end ---------------------------------------------------- *)

type listener = {
  core : t;
  sock : Unix.file_descr;
  lport : int;
  lm : Mutex.t;
  mutable stop : bool;
  mutable handlers : Thread.t list;
  mutable conn_fds : Unix.file_descr list;
  mutable accept_thread : Thread.t option;
  mutable reaper_thread : Thread.t option;
}

let register_conn l fd =
  Mutex.lock l.lm;
  l.conn_fds <- fd :: l.conn_fds;
  Mutex.unlock l.lm

let unregister_conn l fd =
  Mutex.lock l.lm;
  l.conn_fds <- List.filter (fun f -> f != fd) l.conn_fds;
  Mutex.unlock l.lm

let handle_conn l fd =
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let tr = Transport.of_fd fd in
  let conn = open_conn l.core in
  let rec loop () =
    match tr.Transport.recv ~timeout:(Some 0.25) with
    | Error (Seed_error.Io_transient _) -> if l.stop then () else loop ()
    | Error _ -> ()
    | Ok frame -> (
      match on_frame l.core conn frame with
      | Reply r -> ( match tr.Transport.send r with Ok () -> loop () | Error _ -> ())
      | Reply_close r -> ignore (tr.Transport.send r)
      | Close -> ())
  in
  (try loop () with _ -> ());
  close_conn l.core conn;
  tr.Transport.close ();
  unregister_conn l fd

let serve ?(host = "127.0.0.1") ?(backlog = 64) ~port core =
  match
    Seed_error.wrap_io (fun () ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt sock Unix.SO_REUSEADDR true;
           Unix.bind sock
             (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
           Unix.listen sock backlog
         with e ->
           (try Unix.close sock with Unix.Unix_error _ -> ());
           raise e);
        let lport =
          match Unix.getsockname sock with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (sock, lport))
  with
  | Error e -> Error e
  | Ok (sock, lport) ->
    let l =
      {
        core;
        sock;
        lport;
        lm = Mutex.create ();
        stop = false;
        handlers = [];
        conn_fds = [];
        accept_thread = None;
        reaper_thread = None;
      }
    in
    (* the listening socket is polled non-blocking so the loop notices
       [l.stop]: a thread blocked inside [accept] would not be woken by
       another thread closing the socket, and shutdown would hang on the
       join *)
    Unix.set_nonblock sock;
    let accept_loop () =
      while not l.stop do
        match Unix.select [ l.sock ] [] [] 0.25 with
        | [], _, _ -> ()
        | _ -> (
          match Unix.accept l.sock with
          | fd, _ ->
            Unix.clear_nonblock fd;
            if core.is_draining then (
              try Unix.close fd with Unix.Unix_error _ -> ())
            else begin
              register_conn l fd;
              let th = Thread.create (fun () -> handle_conn l fd) () in
              Mutex.lock l.lm;
              l.handlers <- th :: l.handlers;
              Mutex.unlock l.lm
            end
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception _ -> if not l.stop then Thread.delay 0.05
      done
    in
    let reaper_loop () =
      while not l.stop do
        Thread.delay 0.25;
        ignore (reap core)
      done
    in
    l.accept_thread <- Some (Thread.create accept_loop ());
    l.reaper_thread <- Some (Thread.create reaper_loop ());
    Ok l

let port l = l.lport

let shutdown ?(grace = 0.2) l =
  (* 1. no new work: refuse connections and answer requests [Draining] *)
  drain l.core;
  (* 2. let in-flight requests finish *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while l.core.in_flight > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  (* 3. a short window in which queued clients still get the retryable
     [Draining] answer instead of a connection reset *)
  if grace > 0.0 then Thread.delay grace;
  (* 4. tear down: unblock accept by closing the listening socket, stop
     handler loops, close their connections, join everything *)
  l.stop <- true;
  (match l.accept_thread with Some th -> Thread.join th | None -> ());
  (try Unix.close l.sock with Unix.Unix_error _ -> ());
  (match l.reaper_thread with Some th -> Thread.join th | None -> ());
  Mutex.lock l.lm;
  let hs = l.handlers in
  Mutex.unlock l.lm;
  List.iter Thread.join hs;
  Mutex.lock l.lm;
  let fds = l.conn_fds in
  l.conn_fds <- [];
  Mutex.unlock l.lm;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds
