(** A connection that carries whole encoded frames.

    The transport moves opaque frame bytes (as produced by
    {!Frame.encode}); interpreting them is the peer's job. Keeping the
    interface this small lets the same protocol logic run over a real
    TCP socket, an in-process test harness, or a fault-injecting
    wrapper, and makes "the wire ate my frame" indistinguishable from
    "the process died" — which is exactly the assumption the session
    layer is built on. *)

type t = {
  send : string -> (unit, Seed_util.Seed_error.t) result;
      (** Ship one encoded frame. Any error means the connection is no
          longer trustworthy. *)
  recv : timeout:float option -> (string, Seed_util.Seed_error.t) result;
      (** Receive one whole encoded frame. A clean timeout (no bytes
          consumed) is [Io_transient] and the connection survives; a
          timeout mid-frame, EOF, or framing corruption is fatal. *)
  close : unit -> unit;
}

val of_fd : Unix.file_descr -> t
(** Framed transport over a stream socket. [send] writes the frame
    fully (absorbing EINTR/partial writes); [recv] reads header then
    payload, using [SO_RCVTIMEO] for the timeout. The fd is closed by
    [close]. *)

val of_functions :
  send:(string -> (unit, Seed_util.Seed_error.t) result) ->
  recv:(timeout:float option -> (string, Seed_util.Seed_error.t) result) ->
  close:(unit -> unit) ->
  t
(** Synthetic transport for tests and the chaos harness. *)
