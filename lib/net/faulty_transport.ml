(* Deterministic fault injection at the frame level, mirroring what
   Faulty_io does for disk I/O: a seeded generator decides, frame by
   frame, whether the wire drops, duplicates, corrupts, truncates or
   delays it. One instance models one direction of one connection, so a
   pair with asymmetric rates is a one-way partition. *)

type config = {
  seed : int;
  drop : float;
  dup : float;
  corrupt : float;
  truncate : float;
  delay : float;
}

let quiet =
  { seed = 0; drop = 0.0; dup = 0.0; corrupt = 0.0; truncate = 0.0; delay = 0.0 }

type t = {
  cfg : config;
  mutable state : int;
  mutable held : string list;  (* delayed frames, delivered later, reversed *)
  mutable injected : int;
}

(* splitmix-style scramble so adjacent seeds (and seed 0) start from
   well-separated states — [lor 1] alone would collide seeds 2k and
   2k+1 *)
let scramble seed =
  let z = (seed + 0x9E3779B9) land max_int in
  let z = (z lxor (z lsr 16)) * 0x85EBCA6B land max_int in
  let z = (z lxor (z lsr 13)) * 0xC2B2AE35 land max_int in
  let z = z lxor (z lsr 16) in
  if z = 0 then 1 else z

let create cfg = { cfg; state = scramble cfg.seed; held = []; injected = 0 }

(* xorshift-ish step; only determinism and rough uniformity matter *)
let next_float t =
  let s = t.state in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  let s = s land max_int in
  t.state <- s;
  float_of_int (s land 0xFFFFFF) /. float_of_int 0x1000000

let next_int t bound =
  if bound <= 0 then 0 else int_of_float (next_float t *. float_of_int bound)

let roll t p = p > 0.0 && next_float t < p

let mangle t frame =
  let n = String.length frame in
  if roll t t.cfg.corrupt && n > 0 then begin
    t.injected <- t.injected + 1;
    let i = next_int t n in
    let b = Bytes.of_string frame in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl next_int t 8)));
    Bytes.to_string b
  end
  else if roll t t.cfg.truncate && n > 1 then begin
    t.injected <- t.injected + 1;
    String.sub frame 0 (1 + next_int t (n - 1))
  end
  else frame

let injected t = t.injected

let apply t frame =
  (* anything previously delayed goes out first: the delay reorders a
     frame behind nothing, it only de-synchronizes delivery from send *)
  let backlog = List.rev t.held in
  t.held <- [];
  if roll t t.cfg.drop then begin
    t.injected <- t.injected + 1;
    backlog
  end
  else begin
    let f = mangle t frame in
    let out = if roll t t.cfg.dup then (t.injected <- t.injected + 1; [ f; f ]) else [ f ] in
    if roll t t.cfg.delay then begin
      t.injected <- t.injected + 1;
      t.held <- List.rev out;
      backlog
    end
    else backlog @ out
  end

let flush t =
  let backlog = List.rev t.held in
  t.held <- [];
  backlog

let cut t = t.held <- []

(* Wrap a live transport so its outgoing frames pass through the
   injector — the peer experiences wire faults without cooperating. *)
let wrap_send t (tr : Transport.t) =
  {
    tr with
    Transport.send =
      (fun frame ->
        let rec send_all = function
          | [] -> Ok ()
          | f :: rest -> (
            match tr.Transport.send f with
            | Ok () -> send_all rest
            | Error _ as e -> e)
        in
        send_all (apply t frame));
  }
