open Seed_util.Seed_error

type t = {
  send : string -> (unit, Seed_util.Seed_error.t) result;
  recv : timeout:float option -> (string, Seed_util.Seed_error.t) result;
  close : unit -> unit;
}

let of_functions ~send ~recv ~close = { send; recv; close }

(* --- stream sockets --------------------------------------------------- *)

let rec write_all fd s off len =
  if len = 0 then Ok ()
  else
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
      write_all fd s off len
    | exception Unix.Unix_error (e, _, _) ->
      fail (Io_error (Printf.sprintf "send: %s" (Unix.error_message e)))

(* Read exactly [len] bytes. [started] tracks whether any byte of this
   frame has been consumed: a timeout before the first byte leaves the
   stream intact (transient — the caller may simply wait again), while a
   timeout or EOF mid-frame loses framing sync and kills the
   connection. *)
let read_exact fd buf len =
  let rec go off =
    if off = len then Ok ()
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> fail (Io_error "connection closed by peer")
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
        if off = 0 then fail (Io_transient "recv timeout")
        else fail (Io_error "recv timeout mid-frame")
      | exception Unix.Unix_error (e, _, _) ->
        fail (Io_error (Printf.sprintf "recv: %s" (Unix.error_message e)))
  in
  go 0

let of_fd fd =
  let set_timeout t =
    (* SO_RCVTIMEO of 0 means "block forever" *)
    let t = match t with None -> 0.0 | Some s -> Float.max 0.000001 s in
    try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t with Unix.Unix_error _ -> ()
  in
  let send frame = write_all fd frame 0 (String.length frame) in
  let recv ~timeout =
    set_timeout timeout;
    let hdr = Bytes.create Frame.header_size in
    let* () = read_exact fd hdr Frame.header_size in
    let hdr = Bytes.to_string hdr in
    let* _v, len, _crc = Frame.parse_header hdr in
    let payload = Bytes.create len in
    let* () =
      if len = 0 then Ok ()
      else
        (* the header arrived; the payload must follow promptly or the
           stream is broken — a partial-frame stall is fatal *)
        match read_exact fd payload len with
        | Ok () -> Ok ()
        | Error (Io_transient _) -> fail (Io_error "recv timeout mid-frame")
        | Error _ as e -> e
    in
    Ok (hdr ^ Bytes.to_string payload)
  in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  { send; recv; close }
