open Seed_util
open Seed_error
open Seed_server
module Codec = Seed_storage.Codec
module W = Codec.Writer
module R = Codec.Reader

type req_body =
  | Hello of {
      protocol : int;
      client : string;
      resume : (int64 * int64) option;
    }
  | Checkout of { names : string list; wait_timeout : float option }
  | Checkin of Protocol.op list
  | Release
  | Find of string
  | Select_isa of string
  | Stats
  | Ping
  | Bye
  | Search of { path : string; needles : string list }
      (* [Query.matches] over the wire: names of the live objects with a
         carrier at [path] ("" = any) containing all the needles *)

type request = { req_id : int64; body : req_body }

type err_code =
  | Locked
  | Deadlock
  | Unknown_name
  | Session_expired
  | Already_connected
  | Bad_request
  | Unsupported_protocol
  | Op_failed
  | Server_error

type wire_error = { code : err_code; message : string; retryable : bool }

type server_stats = {
  sv_sessions : int;
  sv_max_sessions : int;
  sv_in_flight : int;
  sv_max_in_flight : int;
  sv_served : int;
  sv_busy_rejects : int;
  sv_reaped_sessions : int;
  sv_checkins : int;
  sv_locks_held : int;
  sv_locks_leased : int;
  sv_locks_expired : int;
  sv_lock_waiters : int;
  sv_objects : int;
  sv_relationships : int;
  sv_versions : int;
}

type resp_body =
  | Welcome of {
      protocol : int;
      session : int64;
      token : int64;
      ttl : float;
      resumed : bool;
    }
  | Done
  | Found of string option
  | Names of string list
  | Stats_reply of server_stats
  | Pong
  | Busy of { retry_after : float }
  | Draining
  | Err of wire_error

type response = { rsp_id : int64; rbody : resp_body }

(* --- values and operations ------------------------------------------- *)

let write_value w (v : Seed_schema.Value.t) =
  match v with
  | String s ->
    W.u8 w 0;
    W.string w s
  | Int i ->
    W.u8 w 1;
    W.varint w i
  | Float f ->
    W.u8 w 2;
    W.float w f
  | Bool b ->
    W.u8 w 3;
    W.bool w b
  | Date { year; month; day } ->
    W.u8 w 4;
    W.varint w year;
    W.varint w month;
    W.varint w day
  | Enum s ->
    W.u8 w 5;
    W.string w s

let read_value r : (Seed_schema.Value.t, t) result =
  let* tag = R.u8 r in
  match tag with
  | 0 ->
    let* s = R.string r in
    Ok (Seed_schema.Value.String s)
  | 1 ->
    let* i = R.varint r in
    Ok (Seed_schema.Value.Int i)
  | 2 ->
    let* f = R.float r in
    Ok (Seed_schema.Value.Float f)
  | 3 ->
    let* b = R.bool r in
    Ok (Seed_schema.Value.Bool b)
  | 4 ->
    let* year = R.varint r in
    let* month = R.varint r in
    let* day = R.varint r in
    Ok (Seed_schema.Value.Date { year; month; day })
  | 5 ->
    let* s = R.string r in
    Ok (Seed_schema.Value.Enum s)
  | n -> fail (Corrupt (Printf.sprintf "unknown value tag %d" n))

let write_op w (op : Protocol.op) =
  match op with
  | Create_object { cls; name; pattern } ->
    W.u8 w 0;
    W.string w cls;
    W.string w name;
    W.bool w pattern
  | Create_sub { owner; role; index; value } ->
    W.u8 w 1;
    W.string w owner;
    W.string w role;
    W.option w W.varint index;
    W.option w write_value value
  | Create_rel { assoc; endpoints; pattern } ->
    W.u8 w 2;
    W.string w assoc;
    W.list w W.string endpoints;
    W.bool w pattern
  | Set_value { path; value } ->
    W.u8 w 3;
    W.string w path;
    W.option w write_value value
  | Rename { name; new_name } ->
    W.u8 w 4;
    W.string w name;
    W.string w new_name
  | Reclassify_obj { name; to_ } ->
    W.u8 w 5;
    W.string w name;
    W.string w to_
  | Reclassify_rel { assoc; endpoints; to_ } ->
    W.u8 w 6;
    W.string w assoc;
    W.list w W.string endpoints;
    W.string w to_
  | Delete { path } ->
    W.u8 w 7;
    W.string w path
  | Inherit { pattern; inheritor } ->
    W.u8 w 8;
    W.string w pattern;
    W.string w inheritor

let read_op r : (Protocol.op, t) result =
  let* tag = R.u8 r in
  match tag with
  | 0 ->
    let* cls = R.string r in
    let* name = R.string r in
    let* pattern = R.bool r in
    Ok (Protocol.Create_object { cls; name; pattern })
  | 1 ->
    let* owner = R.string r in
    let* role = R.string r in
    let* index = R.option r R.varint in
    let* value = R.option r read_value in
    Ok (Protocol.Create_sub { owner; role; index; value })
  | 2 ->
    let* assoc = R.string r in
    let* endpoints = R.list r R.string in
    let* pattern = R.bool r in
    Ok (Protocol.Create_rel { assoc; endpoints; pattern })
  | 3 ->
    let* path = R.string r in
    let* value = R.option r read_value in
    Ok (Protocol.Set_value { path; value })
  | 4 ->
    let* name = R.string r in
    let* new_name = R.string r in
    Ok (Protocol.Rename { name; new_name })
  | 5 ->
    let* name = R.string r in
    let* to_ = R.string r in
    Ok (Protocol.Reclassify_obj { name; to_ })
  | 6 ->
    let* assoc = R.string r in
    let* endpoints = R.list r R.string in
    let* to_ = R.string r in
    Ok (Protocol.Reclassify_rel { assoc; endpoints; to_ })
  | 7 ->
    let* path = R.string r in
    Ok (Protocol.Delete { path })
  | 8 ->
    let* pattern = R.string r in
    let* inheritor = R.string r in
    Ok (Protocol.Inherit { pattern; inheritor })
  | n -> fail (Corrupt (Printf.sprintf "unknown op tag %d" n))

(* --- requests --------------------------------------------------------- *)

let encode_request { req_id; body } =
  let w = W.create () in
  W.i64 w req_id;
  (match body with
  | Hello { protocol; client; resume } ->
    W.u8 w 0;
    W.varint w protocol;
    W.string w client;
    W.option w (fun w (sid, tok) -> W.i64 w sid; W.i64 w tok) resume
  | Checkout { names; wait_timeout } ->
    W.u8 w 1;
    W.list w W.string names;
    W.option w W.float wait_timeout
  | Checkin ops ->
    W.u8 w 2;
    W.list w write_op ops
  | Release -> W.u8 w 3
  | Find name ->
    W.u8 w 4;
    W.string w name
  | Select_isa cls ->
    W.u8 w 5;
    W.string w cls
  | Stats -> W.u8 w 6
  | Ping -> W.u8 w 7
  | Bye -> W.u8 w 8
  | Search { path; needles } ->
    W.u8 w 9;
    W.string w path;
    W.list w W.string needles);
  W.contents w

let decode_request s =
  let r = R.of_string s in
  let* req_id = R.i64 r in
  let* tag = R.u8 r in
  let* body =
    match tag with
    | 0 ->
      let* protocol = R.varint r in
      let* client = R.string r in
      let* resume =
        R.option r (fun r ->
            let* sid = R.i64 r in
            let* tok = R.i64 r in
            Ok (sid, tok))
      in
      Ok (Hello { protocol; client; resume })
    | 1 ->
      let* names = R.list r R.string in
      let* wait_timeout = R.option r R.float in
      Ok (Checkout { names; wait_timeout })
    | 2 ->
      let* ops = R.list r read_op in
      Ok (Checkin ops)
    | 3 -> Ok Release
    | 4 ->
      let* name = R.string r in
      Ok (Find name)
    | 5 ->
      let* cls = R.string r in
      Ok (Select_isa cls)
    | 6 -> Ok Stats
    | 7 -> Ok Ping
    | 8 -> Ok Bye
    | 9 ->
      let* path = R.string r in
      let* needles = R.list r R.string in
      Ok (Search { path; needles })
    | n -> fail (Corrupt (Printf.sprintf "unknown request tag %d" n))
  in
  let* () = R.expect_end r in
  Ok { req_id; body }

(* --- responses -------------------------------------------------------- *)

let code_to_int = function
  | Locked -> 0
  | Deadlock -> 1
  | Unknown_name -> 2
  | Session_expired -> 3
  | Already_connected -> 4
  | Bad_request -> 5
  | Unsupported_protocol -> 6
  | Op_failed -> 7
  | Server_error -> 8

let code_of_int = function
  | 0 -> Ok Locked
  | 1 -> Ok Deadlock
  | 2 -> Ok Unknown_name
  | 3 -> Ok Session_expired
  | 4 -> Ok Already_connected
  | 5 -> Ok Bad_request
  | 6 -> Ok Unsupported_protocol
  | 7 -> Ok Op_failed
  | 8 -> Ok Server_error
  | n -> fail (Corrupt (Printf.sprintf "unknown error code %d" n))

let write_stats w s =
  List.iter (W.varint w)
    [
      s.sv_sessions; s.sv_max_sessions; s.sv_in_flight; s.sv_max_in_flight;
      s.sv_served; s.sv_busy_rejects; s.sv_reaped_sessions; s.sv_checkins;
      s.sv_locks_held; s.sv_locks_leased; s.sv_locks_expired;
      s.sv_lock_waiters; s.sv_objects; s.sv_relationships; s.sv_versions;
    ]

let read_stats r =
  let* sv_sessions = R.varint r in
  let* sv_max_sessions = R.varint r in
  let* sv_in_flight = R.varint r in
  let* sv_max_in_flight = R.varint r in
  let* sv_served = R.varint r in
  let* sv_busy_rejects = R.varint r in
  let* sv_reaped_sessions = R.varint r in
  let* sv_checkins = R.varint r in
  let* sv_locks_held = R.varint r in
  let* sv_locks_leased = R.varint r in
  let* sv_locks_expired = R.varint r in
  let* sv_lock_waiters = R.varint r in
  let* sv_objects = R.varint r in
  let* sv_relationships = R.varint r in
  let* sv_versions = R.varint r in
  Ok
    {
      sv_sessions; sv_max_sessions; sv_in_flight; sv_max_in_flight; sv_served;
      sv_busy_rejects; sv_reaped_sessions; sv_checkins; sv_locks_held;
      sv_locks_leased; sv_locks_expired; sv_lock_waiters; sv_objects;
      sv_relationships; sv_versions;
    }

let encode_response { rsp_id; rbody } =
  let w = W.create () in
  W.i64 w rsp_id;
  (match rbody with
  | Welcome { protocol; session; token; ttl; resumed } ->
    W.u8 w 0;
    W.varint w protocol;
    W.i64 w session;
    W.i64 w token;
    W.float w ttl;
    W.bool w resumed
  | Done -> W.u8 w 1
  | Found c ->
    W.u8 w 2;
    W.option w W.string c
  | Names ns ->
    W.u8 w 3;
    W.list w W.string ns
  | Stats_reply s ->
    W.u8 w 4;
    write_stats w s
  | Pong -> W.u8 w 5
  | Busy { retry_after } ->
    W.u8 w 6;
    W.float w retry_after
  | Draining -> W.u8 w 7
  | Err { code; message; retryable } ->
    W.u8 w 8;
    W.u8 w (code_to_int code);
    W.string w message;
    W.bool w retryable);
  W.contents w

let decode_response s =
  let r = R.of_string s in
  let* rsp_id = R.i64 r in
  let* tag = R.u8 r in
  let* rbody =
    match tag with
    | 0 ->
      let* protocol = R.varint r in
      let* session = R.i64 r in
      let* token = R.i64 r in
      let* ttl = R.float r in
      let* resumed = R.bool r in
      Ok (Welcome { protocol; session; token; ttl; resumed })
    | 1 -> Ok Done
    | 2 ->
      let* c = R.option r R.string in
      Ok (Found c)
    | 3 ->
      let* ns = R.list r R.string in
      Ok (Names ns)
    | 4 ->
      let* st = read_stats r in
      Ok (Stats_reply st)
    | 5 -> Ok Pong
    | 6 ->
      let* retry_after = R.float r in
      Ok (Busy { retry_after })
    | 7 -> Ok Draining
    | 8 ->
      let* ci = R.u8 r in
      let* code = code_of_int ci in
      let* message = R.string r in
      let* retryable = R.bool r in
      Ok (Err { code; message; retryable })
    | n -> fail (Corrupt (Printf.sprintf "unknown response tag %d" n))
  in
  let* () = R.expect_end r in
  Ok { rsp_id; rbody }

(* --- error classification --------------------------------------------- *)

let error_to_wire (e : t) =
  let message = Seed_error.to_string e in
  match e with
  | Seed_error.Locked _ -> { code = Locked; message; retryable = true }
  | Seed_error.Deadlock _ ->
    (* the victim's locks were released; re-checkout and retry is sound *)
    { code = Deadlock; message; retryable = true }
  | Seed_error.Io_transient _ ->
    { code = Server_error; message; retryable = true }
  | Seed_error.Unknown_object _ | Seed_error.Unknown_item _
  | Seed_error.Unknown_class _ | Seed_error.Unknown_association _
  | Seed_error.Unknown_version _ ->
    { code = Unknown_name; message; retryable = false }
  | Seed_error.Io_error _ | Seed_error.Corrupt _ ->
    { code = Server_error; message; retryable = false }
  | _ -> { code = Op_failed; message; retryable = false }

let retryable_resp = function
  | Busy _ | Draining -> true
  | Err e -> e.retryable
  | _ -> false

let pp_server_stats ppf s =
  Fmt.pf ppf
    "@[<v>sessions: %d live (max %d), %d reaped@,\
     in flight: %d (max %d)@,\
     requests served: %d, shed busy: %d@,\
     check-ins: %d@,\
     locks: %d held (%d leased), %d expired unreaped, %d waiters@,\
     objects: %d, relationships: %d, versions: %d@]"
    s.sv_sessions s.sv_max_sessions s.sv_reaped_sessions s.sv_in_flight
    s.sv_max_in_flight s.sv_served s.sv_busy_rejects s.sv_checkins
    s.sv_locks_held s.sv_locks_leased s.sv_locks_expired s.sv_lock_waiters
    s.sv_objects s.sv_relationships s.sv_versions
