(** Deterministic frame-level fault injection — {!Seed_storage.Faulty_io}
    for the wire.

    One instance models one direction of one connection. Every frame
    passed to {!apply} is, per a seeded deterministic generator,
    delivered, dropped, duplicated, corrupted (one bit flip), truncated,
    or delayed behind the next frame. Asymmetric configurations model
    one-way partitions ([drop = 1.0] on one side); cutting the
    connection mid-request is the harness's job (stop delivering and
    {!cut} the backlog).

    The chaos suite drives the server core through a pair of these and
    asserts the global invariants: the server never crashes or wedges,
    no lease outlives its TTL once its session is gone, and replayed
    request ids never double-apply a check-in. *)

type config = {
  seed : int;  (** determinism: same seed, same schedule *)
  drop : float;  (** per-frame probability the frame vanishes *)
  dup : float;  (** delivered twice *)
  corrupt : float;  (** one bit flipped (CRC catches it downstream) *)
  truncate : float;  (** cut short (framing error downstream) *)
  delay : float;  (** held back until the next send (delivery lags) *)
}

val quiet : config
(** All rates zero — a transparent wire. *)

type t

val create : config -> t

val apply : t -> string -> string list
(** [apply t frame] is the list of frames the wire actually delivers at
    this point, in order: any previously delayed frames, then this
    frame's fate (absent, once, twice, mangled). *)

val flush : t -> string list
(** Deliver anything still held by a delay. *)

val cut : t -> unit
(** Drop held frames — the connection died with them in flight. *)

val injected : t -> int
(** Number of faults injected so far (monitoring the schedule). *)

val wrap_send : t -> Transport.t -> Transport.t
(** A transport whose [send] passes through the injector, so the peer
    sees wire faults on a real connection. *)
