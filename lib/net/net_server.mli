(** The networked SEED server: sessions with TTL leases over the
    in-process {!Seed_server.Server} engine.

    The core ({!create}/{!on_frame}) is transport-agnostic — one
    function from an incoming frame to an action — so the chaos suite
    can drive it deterministically through {!Faulty_transport} without
    sockets; {!serve} puts the same core behind a TCP accept loop with
    one thread per connection.

    {b Session lifecycle.} A connection starts with [Hello]; the server
    answers [Welcome] with a session id, a resume token and the lease
    TTL. Every executed request renews the session lease {e and} the
    lease of every lock the client holds; when the lease runs out the
    session is reaped and all its locks are bulk-released
    ({!Seed_server.Lock_table.release_session}) — a dead client cannot
    wedge its objects past the TTL. A disconnected client reconnects,
    sends [Hello] with [resume = Some (id, token)] inside the lease
    window, and is back in its session: same locks, and the {e replay
    cache} (last executed request id → encoded response) means
    re-sending the request whose response was lost returns the recorded
    answer instead of applying it twice. Outside the window resume
    fails with [Session_expired] — the locks are gone and replay safety
    with them, so the client must start fresh and re-verify.

    {b Robustness rules.} Framing corruption closes the connection (a
    byte stream that lost sync is untrustworthy); the session survives
    for the lease window. Admission control sheds load instead of
    queueing it: too many sessions or too many in-flight requests get
    [Busy] — never a hang. {!drain} makes the server finish what it is
    executing and answer everything newly arriving with the retryable
    [Draining]. No client input may crash the server: [on_frame]
    converts engine exceptions into [Server_error] responses. *)

type config = {
  max_sessions : int;  (** admission cap on live sessions (default 64) *)
  max_in_flight : int;  (** cap on concurrently executing requests *)
  session_ttl : float;  (** lease seconds for sessions and their locks *)
  busy_retry_after : float;  (** hint returned with [Busy] *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?now:(unit -> float) ->
  ?sleep:(float -> unit) ->
  Seed_server.Server.t ->
  t
(** A server core over an engine. [now] must be the same clock the
    engine's lock table uses (injectable for tests); [sleep] is used by
    blocking checkouts (the engine mutex is released around it). *)

val engine : t -> Seed_server.Server.t

(** Per-connection state: which session, if any, the connection has
    authenticated as. *)
module Conn : sig
  type t
end

val open_conn : t -> Conn.t

val close_conn : t -> Conn.t -> unit
(** The connection is gone. Its session (if any) stays alive until the
    lease expires, waiting for a resume. *)

type action =
  | Reply of string  (** send this encoded frame, keep the connection *)
  | Reply_close of string  (** send, then drop the connection *)
  | Close  (** drop the connection without a reply *)

val on_frame : t -> Conn.t -> string -> action
(** Process one incoming encoded frame. Never raises. *)

val reap : t -> (string * string list) list
(** Expire overdue sessions now; returns [(client, freed locks)] for
    each. Called internally on every frame; exposed for idle servers
    and tests. *)

val drain : t -> unit
(** Stop executing new requests: everything arriving from now on is
    answered [Draining] (retryable); requests already executing finish
    normally. *)

val draining : t -> bool

val stats : t -> Wire.server_stats

(* --- TCP front end ---------------------------------------------------- *)

type listener

val serve :
  ?host:string ->
  ?backlog:int ->
  port:int ->
  t ->
  (listener, Seed_util.Seed_error.t) result
(** Bind and listen on [host:port] (default host 127.0.0.1; port 0
    picks an ephemeral port — see {!port}), accept in a background
    thread, one handler thread per connection. A reaper thread expires
    sessions even when the server is idle. *)

val port : listener -> int

val shutdown : ?grace:float -> listener -> unit
(** Graceful drain: stop accepting, {!drain} the core, let in-flight
    requests finish, keep answering [Draining] for [grace] seconds
    (default 0.2) so queued clients get a retryable error instead of a
    reset, then close every connection and join the threads. *)
