open Seed_util.Seed_error
module Crc32 = Seed_storage.Crc32

let magic = "SENF"
let version = 1
let header_size = 13
let max_payload = 16 * 1024 * 1024

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let encode payload =
  let len = String.length payload in
  if len > max_payload then invalid_arg "Frame.encode: payload too large";
  let b = Buffer.create (header_size + len) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr version);
  put_u32 b len;
  put_u32 b (Int32.to_int (Crc32.digest payload) land 0xffffffff);
  Buffer.add_string b payload;
  Buffer.contents b

let parse_header h =
  if String.length h < header_size then
    fail (Corrupt "frame header truncated")
  else if not (String.equal (String.sub h 0 4) magic) then
    fail (Corrupt "bad frame magic")
  else
    let v = Char.code h.[4] in
    let len = get_u32 h 5 in
    let crc = Int32.of_int (get_u32 h 9) in
    if len < 0 || len > max_payload then
      fail (Corrupt (Printf.sprintf "implausible frame length %d" len))
    else Ok (v, len, crc)

let check_payload ~crc payload =
  if Int32.equal (Crc32.digest payload) crc then Ok ()
  else fail (Corrupt "frame payload CRC mismatch")

let decode frame =
  let* _v, len, crc = parse_header frame in
  if String.length frame <> header_size + len then
    fail (Corrupt "frame length does not match header")
  else
    let payload = String.sub frame header_size len in
    let* () = check_payload ~crc payload in
    Ok payload
