(** The wire frame: one length-prefixed, CRC-checked message.

    Every message between a SEED client and server travels as one frame:

    {v
      offset 0   magic "SENF"          (4 bytes)
      offset 4   protocol version      (1 byte, currently 1)
      offset 5   payload length        (4 bytes, little-endian)
      offset 9   CRC-32 of the payload (4 bytes, little-endian)
      offset 13  payload               (length bytes)
    v}

    The CRC turns wire corruption into a detected [Corrupt] error
    instead of a misparsed message, exactly as journal frames do on
    disk; the length prefix bounds reads so a corrupted length cannot
    make the receiver allocate without limit. Framing errors are
    {e connection-fatal}: a byte stream that lost sync cannot be
    trusted again, so the peer drops the connection and the client
    reconnects and resumes its session. *)

val magic : string
(** ["SENF"]. *)

val version : int
(** Current frame/protocol version (1). A server refuses a hello whose
    version it does not speak, so old clients fail loudly and early. *)

val header_size : int
(** 13 bytes. *)

val max_payload : int
(** Upper bound on a payload (16 MiB); a length field above it is
    treated as corruption. *)

val encode : string -> string
(** [encode payload] is the full frame for [payload]. Raises
    [Invalid_argument] if the payload exceeds {!max_payload}. *)

val parse_header :
  string -> (int * int * int32, Seed_util.Seed_error.t) result
(** [parse_header h] checks magic and bounds on the 13 header bytes and
    returns [(version, payload_len, crc)]. *)

val check_payload :
  crc:int32 -> string -> (unit, Seed_util.Seed_error.t) result
(** Verify a received payload against the header's CRC. *)

val decode : string -> (string, Seed_util.Seed_error.t) result
(** [decode frame] parses a complete frame held in one string (the
    in-memory transports deliver frames whole) and returns the payload;
    trailing bytes, bad magic, bad length or a CRC mismatch are
    [Corrupt]. *)
