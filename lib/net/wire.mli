(** Request/response messages and their binary codecs.

    Messages are encoded with {!Seed_storage.Codec} (the same LEB128
    primitives as the on-disk format) and travel one per {!Frame}.

    Every request carries a client-chosen [req_id], strictly increasing
    within a session. The server remembers the last executed id and its
    encoded response; a client that lost the connection before reading a
    response reconnects, resumes its session and {e replays} the same
    request with the same id — the server answers from the cache without
    re-applying, so a check-in is applied exactly once however often the
    wire fails. Responses echo the id so a client can discard stale or
    duplicated frames. *)

open Seed_server

type req_body =
  | Hello of {
      protocol : int;
      client : string;
      resume : (int64 * int64) option;  (** session id, token *)
    }
  | Checkout of { names : string list; wait_timeout : float option }
      (** [wait_timeout = Some s] blocks up to [s] seconds on conflict
          (server-side bounded wait); [None] fails fast with [Locked]. *)
  | Checkin of Protocol.op list
  | Release
  | Find of string  (** object name -> class path, if it exists *)
  | Select_isa of string  (** class -> names of objects that are-a it *)
  | Stats
  | Ping
  | Bye
  | Search of { path : string; needles : string list }
      (** conjunctive containment search ([Query.matches]) at a class
          path ([""] = any) -> names of the matching objects *)

type request = { req_id : int64; body : req_body }

(** Wire error codes: the subset of {!Seed_util.Seed_error.t} a client
    reacts to programmatically; everything else travels as [Op_failed]
    with the rendered message. [retryable] distinguishes "try again
    later, nothing happened" from "this request is dead". *)
type err_code =
  | Locked
  | Deadlock
  | Unknown_name
  | Session_expired
  | Already_connected
  | Bad_request
  | Unsupported_protocol
  | Op_failed
  | Server_error

type wire_error = { code : err_code; message : string; retryable : bool }

type server_stats = {
  sv_sessions : int;  (** live sessions *)
  sv_max_sessions : int;
  sv_in_flight : int;
  sv_max_in_flight : int;
  sv_served : int;  (** requests executed since start *)
  sv_busy_rejects : int;  (** requests shed by admission control *)
  sv_reaped_sessions : int;  (** sessions whose lease ran out *)
  sv_checkins : int;
  sv_locks_held : int;
  sv_locks_leased : int;
  sv_locks_expired : int;  (** expired-but-unreaped lease entries *)
  sv_lock_waiters : int;
  sv_objects : int;
  sv_relationships : int;
  sv_versions : int;
}

type resp_body =
  | Welcome of {
      protocol : int;
      session : int64;
      token : int64;
      ttl : float;  (** the session lease: resume within this window *)
      resumed : bool;
    }
  | Done
  | Found of string option
  | Names of string list
  | Stats_reply of server_stats
  | Pong
  | Busy of { retry_after : float }
      (** admission control: over capacity, nothing was executed *)
  | Draining  (** server shutting down; retryable against a replica/later *)
  | Err of wire_error

type response = { rsp_id : int64; rbody : resp_body }

val encode_request : request -> string
val decode_request : string -> (request, Seed_util.Seed_error.t) result
val encode_response : response -> string
val decode_response : string -> (response, Seed_util.Seed_error.t) result

val error_to_wire : Seed_util.Seed_error.t -> wire_error
(** Classify an engine error for the wire: the code, the rendered
    message, and whether retrying the same operation later can succeed
    ([Locked], [Io_transient] — yes; consistency violations — no). *)

val retryable_resp : resp_body -> bool
(** [Busy], [Draining], and retryable [Err]s. *)

val pp_server_stats : Format.formatter -> server_stats -> unit
