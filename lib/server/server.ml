open Seed_util
open Seed_error
module Database = Seed_core.Database

type t = {
  db : Database.t;
  locks : Lock_table.t;
  mutable checkins : int;
  session : Seed_core.Persist.Session.t option;
}

let create ?now schema =
  {
    db = Database.create schema;
    locks = Lock_table.create ?now ();
    checkins = 0;
    session = None;
  }

let of_session ?now session =
  {
    db = Seed_core.Persist.Session.db session;
    locks = Lock_table.create ?now ();
    checkins = 0;
    session = Some session;
  }

let database t = t.db

(* retrieval never goes through the lock table: a snapshot is an O(1)
   grab of the last published root, immutable from then on, so readers
   — including ones running in other domains — proceed while writers
   commit *)
let snapshot t = Database.snapshot_view t.db

let do_checkout t ~client ~ttl ~names =
  let* () =
    iter_result
      (fun n ->
        match Database.find_object t.db n with
        | Some _ -> Ok ()
        | None -> (
          match Database.find_pattern t.db n with
          | Some _ -> Ok ()
          | None -> fail (Unknown_object n)))
      names
  in
  Lock_table.acquire t.locks ~client ?ttl names

let checkout t ~client ~names = do_checkout t ~client ~ttl:None ~names

let checkout_lease t ~client ~ttl ~names =
  do_checkout t ~client ~ttl:(Some ttl) ~names

let checkout_wait t ~client ?ttl ?policy ?sleep ~timeout ~names () =
  let* () =
    iter_result
      (fun n ->
        match Database.find_object t.db n with
        | Some _ -> Ok ()
        | None -> (
          match Database.find_pattern t.db n with
          | Some _ -> Ok ()
          | None -> fail (Unknown_object n)))
      names
  in
  Lock_table.acquire_wait t.locks ~client ?ttl ?policy ?sleep ~timeout names

let release t ~client = Lock_table.release_all t.locks ~client

let locked_by t ~client = Lock_table.held_by t.locks ~client

let expire_stale t = Lock_table.expire_stale t.locks

let release_session t ~client = Lock_table.release_session t.locks ~client

let refresh_leases t ~client ~ttl =
  match Lock_table.held_by t.locks ~client with
  | [] -> ()
  | names ->
    (* re-acquiring one's own live locks always succeeds and pushes the
       lease out; expired names are no longer in [held_by] *)
    ignore (Lock_table.acquire t.locks ~client ~ttl names)

let lock_stats t = Lock_table.stats t.locks

let resolve_obj db name =
  match Database.find_object db name with
  | Some id -> Ok id
  | None -> (
    match Database.find_pattern db name with
    | Some id -> Ok id
    | None -> fail (Unknown_object name))

let resolve_path db path =
  match Database.resolve db path with
  | Some id -> Ok id
  | None -> (
    (* resolve does not see patterns; fall back for pattern roots *)
    match Database.find_pattern db path with
    | Some id -> Ok id
    | None -> fail (Unknown_object path))

let find_rel db ~assoc ~endpoints =
  let* ids = map_result (resolve_obj db) endpoints in
  let candidates =
    match ids with
    | first :: _ -> Database.relationships db first
    | [] -> []
  in
  let matching =
    List.find_opt
      (fun r ->
        (match Database.assoc_of db r with
        | Some a -> String.equal a assoc
        | None -> false)
        && List.equal Ident.equal (Database.endpoints db r) ids)
      candidates
  in
  match matching with
  | Some r -> Ok r
  | None ->
    fail
      (Unknown_item
         (Printf.sprintf "%s(%s)" assoc (String.concat ", " endpoints)))

let apply_op db (op : Protocol.op) =
  match op with
  | Protocol.Create_object { cls; name; pattern } ->
    let* _ = Database.create_object db ~cls ~name ~pattern () in
    Ok ()
  | Protocol.Create_sub { owner; role; index; value } ->
    let* parent = resolve_path db owner in
    let* _ = Database.create_sub_object db ~parent ~role ?index ?value () in
    Ok ()
  | Protocol.Create_rel { assoc; endpoints; pattern } ->
    let* ids = map_result (resolve_obj db) endpoints in
    let* _ = Database.create_relationship db ~assoc ~endpoints:ids ~pattern () in
    Ok ()
  | Protocol.Set_value { path; value } ->
    let* id = resolve_path db path in
    Database.set_value db id value
  | Protocol.Rename { name; new_name } ->
    let* id = resolve_obj db name in
    Database.rename_object db id new_name
  | Protocol.Reclassify_obj { name; to_ } ->
    let* id = resolve_obj db name in
    Database.reclassify db id ~to_
  | Protocol.Reclassify_rel { assoc; endpoints; to_ } ->
    let* rel = find_rel db ~assoc ~endpoints in
    Database.reclassify db rel ~to_
  | Protocol.Delete { path } ->
    let* id = resolve_path db path in
    Database.delete db id
  | Protocol.Inherit { pattern; inheritor } ->
    let* p = resolve_obj db pattern in
    let* i = resolve_obj db inheritor in
    Database.inherit_pattern db ~pattern:p ~inheritor:i

let checkin t ~client ops =
  (* names introduced by the batch itself (creations, rename targets)
     cannot be pre-locked; they are covered by construction. Names that
     do not denote an existing object or pattern cannot be locked
     either (checkout refuses them) — such an op fails inside the
     transaction with the precise error instead *)
  let exists n =
    Database.find_object t.db n <> None
    || Database.find_pattern t.db n <> None
  in
  let _, touched =
    List.fold_left
      (fun (introduced, touched) op ->
        let needed =
          List.filter
            (fun n -> (not (List.mem n introduced)) && exists n)
            (Protocol.touches op)
        in
        let introduced =
          match op with
          | Protocol.Create_object { name; _ } -> name :: introduced
          | Protocol.Rename { new_name; _ } -> new_name :: introduced
          | _ -> introduced
        in
        (introduced, needed @ touched))
      ([], []) ops
  in
  let touched = List.sort_uniq String.compare touched in
  let* () = Lock_table.covers t.locks ~client touched in
  (* one in-memory transaction: on failure the rollback is a single
     root swap back to the savepoint — O(1), not O(ops applied) — and
     registered closures (attached procedures, transition rules) are
     never disturbed because the database instance is never replaced;
     no intermediate root is published, so concurrent snapshots never
     observe a half-applied batch *)
  match
    Database.with_transaction t.db (fun () -> iter_result (apply_op t.db) ops)
  with
  | Ok () ->
    (* a durable server publishes the committed batch through the
       store's group-commit daemon: the flush is one transaction group
       routed by the batch's root object, and concurrent checkins
       coalesce into shared fsyncs. On a flush failure the locks are
       kept and the session's shadow table is untouched, so a later
       flush (or checkin) retries exactly the same records *)
    let* () =
      match t.session with
      | None -> Ok ()
      | Some session -> Seed_core.Persist.Session.flush session
    in
    Lock_table.release_all t.locks ~client;
    t.checkins <- t.checkins + 1;
    Ok ()
  | Error _ as e ->
    (* locks are kept: the client may fix the batch and retry *)
    e

let create_version t = Database.create_version t.db

let checkin_count t = t.checkins
