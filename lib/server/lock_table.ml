open Seed_util.Seed_error

type entry = { holder : string; expires : float option }

type t = { table : (string, entry) Hashtbl.t; now : unit -> float }

let create ?(now = Unix.gettimeofday) () = { table = Hashtbl.create 32; now }

let expired t e =
  match e.expires with None -> false | Some at -> at <= t.now ()

(* The live holder of a name: an expired lease reads as free everywhere,
   so a dead client's locks stop blocking the moment they lapse even if
   nobody called [expire_stale] yet. *)
let live_entry t name =
  match Hashtbl.find_opt t.table name with
  | Some e when not (expired t e) -> Some e
  | Some _ | None -> None

let acquire t ~client ?ttl names =
  let conflict =
    List.find_opt
      (fun n ->
        match live_entry t n with
        | Some e -> not (String.equal e.holder client)
        | None -> false)
      names
  in
  match conflict with
  | Some n ->
    fail
      (Locked { item = n; holder = (Option.get (live_entry t n)).holder })
  | None ->
    let expires = Option.map (fun s -> t.now () +. s) ttl in
    List.iter (fun n -> Hashtbl.replace t.table n { holder = client; expires }) names;
    Ok ()

let release_all t ~client =
  let mine =
    Hashtbl.fold
      (fun n e acc -> if String.equal e.holder client then n :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) mine

let expire_stale t =
  let stale =
    Hashtbl.fold
      (fun n e acc -> if expired t e then (n, e.holder) :: acc else acc)
      t.table []
  in
  List.iter (fun (n, _) -> Hashtbl.remove t.table n) stale;
  List.sort (fun (a, _) (b, _) -> String.compare a b) stale

let holder t name = Option.map (fun e -> e.holder) (live_entry t name)

let expires_at t name =
  match live_entry t name with Some e -> e.expires | None -> None

let held_by t ~client =
  Hashtbl.fold
    (fun n e acc ->
      if String.equal e.holder client && not (expired t e) then n :: acc
      else acc)
    t.table []
  |> List.sort String.compare

let covers t ~client names =
  let missing =
    List.find_opt
      (fun n ->
        match live_entry t n with
        | Some e -> not (String.equal e.holder client)
        | None -> true)
      names
  in
  match missing with
  | None -> Ok ()
  | Some n ->
    (match live_entry t n with
    | Some e -> fail (Locked { item = n; holder = e.holder })
    | None ->
      fail
        (Invalid_operation
           (Printf.sprintf "client %s has not checked out %s" client n)))
