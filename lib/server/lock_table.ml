open Seed_util.Seed_error

type entry = { holder : string; expires : float option }

type t = {
  table : (string, entry) Hashtbl.t;
  (* who is currently blocked inside [acquire_wait], and on what names —
     the edges of the wait-for graph the deadlock detector walks *)
  waiting : (string, string list) Hashtbl.t;
  now : unit -> float;
}

let create ?(now = Unix.gettimeofday) () =
  { table = Hashtbl.create 32; waiting = Hashtbl.create 8; now }

let expired t e =
  match e.expires with None -> false | Some at -> at <= t.now ()

(* The live holder of a name: an expired lease reads as free everywhere,
   so a dead client's locks stop blocking the moment they lapse even if
   nobody called [expire_stale] yet. *)
let live_entry t name =
  match Hashtbl.find_opt t.table name with
  | Some e when not (expired t e) -> Some e
  | Some _ | None -> None

(* Drops every expired lease from the table. Expired leases already read
   as free through [live_entry], but reaping on each acquisition keeps
   the table from accumulating dead entries — and guarantees a stale
   lease never blocks a fresh checkout even on code paths that consult
   the raw table. *)
let reap_expired t =
  let stale =
    Hashtbl.fold
      (fun n e acc -> if expired t e then n :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale

let acquire t ~client ?ttl names =
  reap_expired t;
  let conflict =
    List.find_opt
      (fun n ->
        match live_entry t n with
        | Some e -> not (String.equal e.holder client)
        | None -> false)
      names
  in
  match conflict with
  | Some n ->
    fail
      (Locked { item = n; holder = (Option.get (live_entry t n)).holder })
  | None ->
    let expires = Option.map (fun s -> t.now () +. s) ttl in
    List.iter (fun n -> Hashtbl.replace t.table n { holder = client; expires }) names;
    Ok ()

let release_all t ~client =
  let mine =
    Hashtbl.fold
      (fun n e acc -> if String.equal e.holder client then n :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) mine

(* Session reaping: one call frees everything a dead client left behind
   — its locks (live or lapsed) and its wait-for edge, so it can neither
   block other clients nor figure in a phantom deadlock cycle. Returns
   what was freed so the server can log the reap. *)
let release_session t ~client =
  let mine =
    Hashtbl.fold
      (fun n e acc -> if String.equal e.holder client then n :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) mine;
  Hashtbl.remove t.waiting client;
  List.sort String.compare mine

(* Follows wait-for edges (waiter -> live holder of a wanted name)
   depth-first from [start]; a path back to [start] is a deadlock. *)
let find_cycle t start =
  let rec dfs visited path c =
    match Hashtbl.find_opt t.waiting c with
    | None -> None
    | Some names ->
      let holders =
        List.sort_uniq String.compare
          (List.filter_map
             (fun n ->
               match live_entry t n with
               | Some e when not (String.equal e.holder c) -> Some e.holder
               | Some _ | None -> None)
             names)
      in
      List.find_map
        (fun h ->
          if String.equal h start then Some (List.rev (h :: path))
          else if List.mem h visited then None
          else dfs (h :: visited) (h :: path) h)
        holders
  in
  dfs [ start ] [ start ] start

let acquire_wait t ~client ?ttl ?(policy = Seed_util.Retry.default_policy)
    ?(sleep = Unix.sleepf) ~timeout names =
  let deadline = t.now () +. timeout in
  let finish r =
    Hashtbl.remove t.waiting client;
    r
  in
  let rec attempt n =
    match acquire t ~client ?ttl names with
    | Ok () -> finish (Ok ())
    | Error (Locked _) as err -> (
      Hashtbl.replace t.waiting client names;
      match find_cycle t client with
      | Some cycle ->
        (* abort one victim — the requester that closed the cycle — so
           everyone else can make progress *)
        release_all t ~client;
        finish (fail (Deadlock { victim = client; cycle }))
      | None ->
        if t.now () >= deadline then finish err
        else begin
          sleep (Seed_util.Retry.delay_for policy ~attempt:(min n 16));
          attempt (n + 1)
        end)
    | other -> finish other
  in
  attempt 1

let expire_stale t =
  let stale =
    Hashtbl.fold
      (fun n e acc -> if expired t e then (n, e.holder) :: acc else acc)
      t.table []
  in
  List.iter (fun (n, _) -> Hashtbl.remove t.table n) stale;
  List.sort (fun (a, _) (b, _) -> String.compare a b) stale

type stats = {
  locks_held : int;
  locks_leased : int;
  locks_expired : int;
  waiters : int;
}

let stats t =
  let held = ref 0 and leased = ref 0 and lapsed = ref 0 in
  Hashtbl.iter
    (fun _ e ->
      if expired t e then incr lapsed
      else begin
        incr held;
        if e.expires <> None then incr leased
      end)
    t.table;
  {
    locks_held = !held;
    locks_leased = !leased;
    locks_expired = !lapsed;
    waiters = Hashtbl.length t.waiting;
  }

let holder t name = Option.map (fun e -> e.holder) (live_entry t name)

let expires_at t name =
  match live_entry t name with Some e -> e.expires | None -> None

let held_by t ~client =
  Hashtbl.fold
    (fun n e acc ->
      if String.equal e.holder client && not (expired t e) then n :: acc
      else acc)
    t.table []
  |> List.sort String.compare

let covers t ~client names =
  let missing =
    List.find_opt
      (fun n ->
        match live_entry t n with
        | Some e -> not (String.equal e.holder client)
        | None -> true)
      names
  in
  match missing with
  | None -> Ok ()
  | Some n ->
    (match live_entry t n with
    | Some e -> fail (Locked { item = n; holder = e.holder })
    | None ->
      fail
        (Invalid_operation
           (Printf.sprintf "client %s has not checked out %s" client n)))
