open Seed_schema

type op =
  | Create_object of { cls : string; name : string; pattern : bool }
  | Create_sub of {
      owner : string;
      role : string;
      index : int option;
      value : Value.t option;
    }
  | Create_rel of { assoc : string; endpoints : string list; pattern : bool }
  | Set_value of { path : string; value : Value.t option }
  | Rename of { name : string; new_name : string }
  | Reclassify_obj of { name : string; to_ : string }
  | Reclassify_rel of { assoc : string; endpoints : string list; to_ : string }
  | Delete of { path : string }
  | Inherit of { pattern : string; inheritor : string }

let root_of path =
  match String.index_opt path '.' with
  | Some i -> String.sub path 0 i
  | None -> path

let touches = function
  | Create_object _ -> []
  | Create_sub { owner; _ } -> [ root_of owner ]
  (* endpoint paths may address sub-objects: the lockable unit is the
     root object, not the raw path string *)
  | Create_rel { endpoints; _ } -> List.map root_of endpoints
  | Set_value { path; _ } -> [ root_of path ]
  (* the target name is touched too: renaming onto an existing object's
     name contends with that object's namespace *)
  | Rename { name; new_name } -> [ name; new_name ]
  | Reclassify_obj { name; _ } -> [ name ]
  | Reclassify_rel { endpoints; _ } -> List.map root_of endpoints
  | Delete { path } -> [ root_of path ]
  | Inherit { pattern; inheritor } -> [ pattern; inheritor ]

let pp ppf = function
  | Create_object { cls; name; pattern } ->
    Fmt.pf ppf "create %s%s : %s" name (if pattern then " (pattern)" else "") cls
  | Create_sub { owner; role; index; _ } ->
    Fmt.pf ppf "create sub %s.%s%s" owner role
      (match index with Some i -> Printf.sprintf "[%d]" i | None -> "")
  | Create_rel { assoc; endpoints; pattern } ->
    Fmt.pf ppf "create rel %s(%s)%s" assoc
      (String.concat ", " endpoints)
      (if pattern then " (pattern)" else "")
  | Set_value { path; value } ->
    Fmt.pf ppf "set %s = %s" path
      (match value with Some v -> Value.to_string v | None -> "(undefined)")
  | Rename { name; new_name } -> Fmt.pf ppf "rename %s -> %s" name new_name
  | Reclassify_obj { name; to_ } -> Fmt.pf ppf "reclassify %s as %s" name to_
  | Reclassify_rel { assoc; endpoints; to_ } ->
    Fmt.pf ppf "reclassify %s(%s) as %s" assoc
      (String.concat ", " endpoints)
      to_
  | Delete { path } -> Fmt.pf ppf "delete %s" path
  | Inherit { pattern; inheritor } ->
    Fmt.pf ppf "%s inherits %s" inheritor pattern
