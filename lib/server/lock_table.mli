(** Central write locks on independent objects, by name.

    "Data that has been copied to a client for update has a write lock
    in the central database" (paper, §Discussion). Acquisition is
    all-or-nothing so two clients cannot deadlock on overlapping
    checkout sets.

    Locks may carry a {e lease}: an optional time-to-live after which
    the lock lapses and reads as free, so a client that died mid-edit
    cannot wedge its objects forever. Expired leases stop covering and
    blocking immediately; {!expire_stale} additionally removes them
    from the table and reports what lapsed. *)

type t

val create : ?now:(unit -> float) -> unit -> t
(** [now] is the clock used for lease arithmetic (default
    [Unix.gettimeofday]; injectable for tests). *)

val acquire :
  t ->
  client:string ->
  ?ttl:float ->
  string list ->
  (unit, Seed_util.Seed_error.t) result
(** Lock every name for [client]; already holding a lock is fine
    (re-acquiring refreshes the lease); a name live-held by another
    client fails the whole acquisition with [Locked] (nothing is
    acquired). With [ttl] (seconds) the locks are leases that expire
    [ttl] from now; without it they are held until released. *)

val release_all : t -> client:string -> unit

val expire_stale : t -> (string * string) list
(** Remove every expired lease and return the [(name, holder)] pairs
    that lapsed, sorted by name. *)

val holder : t -> string -> string option
(** The live holder of a name ([None] if free or the lease expired). *)

val expires_at : t -> string -> float option
(** When the name's live lease expires ([None] if free or unleased). *)

val held_by : t -> client:string -> string list
(** Names this client currently (live-)locks, sorted. *)

val covers :
  t -> client:string -> string list -> (unit, Seed_util.Seed_error.t) result
(** Check that [client] holds live locks on all the given names. *)
