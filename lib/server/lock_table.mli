(** Central write locks on independent objects, by name.

    "Data that has been copied to a client for update has a write lock
    in the central database" (paper, §Discussion). Acquisition is
    all-or-nothing so two clients cannot deadlock on overlapping
    checkout sets.

    Locks may carry a {e lease}: an optional time-to-live after which
    the lock lapses and reads as free, so a client that died mid-edit
    cannot wedge its objects forever. Expired leases stop covering and
    blocking immediately, and every acquisition reaps them from the
    table; {!expire_stale} does the same on demand and reports what
    lapsed.

    {!acquire_wait} blocks (bounded backoff, injectable sleep/clock)
    until the locks come free or [timeout] elapses. Waiters form a
    wait-for graph; when a new waiter closes a cycle, the deadlock is
    broken by aborting that waiter — its locks are released and it gets
    [Deadlock] — so the remaining clients make progress. *)

type t

val create : ?now:(unit -> float) -> unit -> t
(** [now] is the clock used for lease arithmetic (default
    [Unix.gettimeofday]; injectable for tests). *)

val acquire :
  t ->
  client:string ->
  ?ttl:float ->
  string list ->
  (unit, Seed_util.Seed_error.t) result
(** Lock every name for [client]; already holding a lock is fine
    (re-acquiring refreshes the lease); a name live-held by another
    client fails the whole acquisition with [Locked] (nothing is
    acquired). With [ttl] (seconds) the locks are leases that expire
    [ttl] from now; without it they are held until released. *)

val acquire_wait :
  t ->
  client:string ->
  ?ttl:float ->
  ?policy:Seed_util.Retry.policy ->
  ?sleep:(float -> unit) ->
  timeout:float ->
  string list ->
  (unit, Seed_util.Seed_error.t) result
(** Like {!acquire}, but on conflict the caller waits and retries with
    the backoff of [policy] (default {!Seed_util.Retry.default_policy})
    until the locks come free or [timeout] seconds (on the table's
    clock) elapse — the last [Locked] error is then returned. If waiting
    would close a wait-for cycle, this requester is chosen as the
    deadlock victim: its locks are released and [Deadlock] is returned.
    [sleep] (default [Unix.sleepf]) is injectable so tests can both run
    in zero wall-clock time and drive other clients between attempts. *)

val release_all : t -> client:string -> unit

val release_session : t -> client:string -> string list
(** Free everything [client] left behind in one call: all its locks
    (live or expired) and its wait-for edge, so a reaped session can
    neither block other clients nor figure in a phantom deadlock cycle.
    Returns the names freed, sorted — empty if the client held
    nothing. *)

type stats = {
  locks_held : int;  (** live locks in the table *)
  locks_leased : int;  (** of those, lock leases with a TTL *)
  locks_expired : int;  (** expired-but-unreaped entries still in the table *)
  waiters : int;  (** clients currently blocked in {!acquire_wait} *)
}

val stats : t -> stats
(** Occupancy snapshot for monitoring — server health (are leases
    piling up? is anything wedged waiting?) at a glance. *)

val expire_stale : t -> (string * string) list
(** Remove every expired lease and return the [(name, holder)] pairs
    that lapsed, sorted by name. *)

val holder : t -> string -> string option
(** The live holder of a name ([None] if free or the lease expired). *)

val expires_at : t -> string -> float option
(** When the name's live lease expires ([None] if free or unleased). *)

val held_by : t -> client:string -> string list
(** Names this client currently (live-)locks, sorted. *)

val covers :
  t -> client:string -> string list -> (unit, Seed_util.Seed_error.t) result
(** Check that [client] holds live locks on all the given names. *)
