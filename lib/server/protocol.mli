(** The client/server update language.

    The paper sketches a two-level approach to multi-user operation
    (§Discussion): one central server runs the complete database;
    clients use the server for retrieval but take local copies for
    making updates; checked-out data is write-locked centrally; sending
    an updated copy back applies the modifications in a single
    transaction.

    Updates travel as name-addressed operations so they are independent
    of server-side item identifiers. *)

open Seed_schema

type op =
  | Create_object of { cls : string; name : string; pattern : bool }
  | Create_sub of {
      owner : string;  (** composed name of the parent (sub-)object *)
      role : string;
      index : int option;
      value : Value.t option;
    }
  | Create_rel of { assoc : string; endpoints : string list; pattern : bool }
  | Set_value of { path : string; value : Value.t option }
  | Rename of { name : string; new_name : string }
  | Reclassify_obj of { name : string; to_ : string }
  | Reclassify_rel of {
      assoc : string;
      endpoints : string list;
      to_ : string;
    }  (** a relationship addressed by its association and endpoints *)
  | Delete of { path : string }
  | Inherit of { pattern : string; inheritor : string }

val touches : op -> string list
(** Names of independent objects the operation modifies — the set that
    must be covered by the client's write locks. Paths addressing
    sub-objects (dotted) are reduced to their root object. [Rename]
    lists its target name too: it only needs a lock when it collides
    with an existing object, which the server decides (fresh names
    cannot be locked). Fresh names introduced by [Create_object] are
    not listed (the server rejects duplicates at apply time). *)

val pp : Format.formatter -> op -> unit
