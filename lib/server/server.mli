(** The central SEED server.

    One central server runs the complete database; several clients use
    the server for retrieval operations but take local copies for making
    updates (paper, §Discussion). Check-in applies a client's operations
    as a single transaction: either every operation succeeds under the
    permanent consistency rules, or the database is restored to its
    pre-check-in state. Versions are kept globally under control of the
    server. *)

open Seed_util
open Seed_schema

type t

val create : ?now:(unit -> float) -> Schema.t -> t
(** [now] is the lock table's lease clock (default [Unix.gettimeofday];
    injectable for tests). The server is in-memory only; see
    {!of_session} for a durable one. *)

val of_session : ?now:(unit -> float) -> Seed_core.Persist.Session.t -> t
(** A server over a durable session's database: every successful
    {!checkin} flushes the committed batch through the session — one
    atomic journal transaction group, routed to the partition of the
    batch's root object and coalesced with concurrent checkins by the
    store's group-commit daemon. A flush failure fails the checkin and
    keeps the client's locks; the un-flushed records stay pending, so
    the next successful flush carries them. The caller retains
    ownership of the session (close it after the server). *)

val database : t -> Seed_core.Database.t
(** The central database — retrieval operations go straight here. *)

val snapshot : t -> Seed_core.View.t
(** An immutable read-only view of the last committed state — an O(1)
    grab of the published copy-on-write root. The snapshot never takes
    the lock table and stays consistent however many check-ins commit
    after it, so retrieval (from any domain) runs concurrently with
    writers. *)

val checkout :
  t -> client:string -> names:string list -> (unit, Seed_error.t) result
(** Write-lock the named independent objects for the client. All the
    objects must exist in the current version. The locks are held until
    released (no lease). *)

val checkout_lease :
  t ->
  client:string ->
  ttl:float ->
  names:string list ->
  (unit, Seed_error.t) result
(** Like {!checkout}, but the locks are leases expiring [ttl] seconds
    from now: once expired they stop blocking other clients and stop
    covering this client's check-ins (see {!Lock_table}). *)

val checkout_wait :
  t ->
  client:string ->
  ?ttl:float ->
  ?policy:Seed_util.Retry.policy ->
  ?sleep:(float -> unit) ->
  timeout:float ->
  names:string list ->
  unit ->
  (unit, Seed_error.t) result
(** Blocking {!checkout}: on lock conflict the call waits with bounded
    backoff until the locks come free or [timeout] seconds elapse (the
    last [Locked] error is then returned). If waiting would close a
    wait-for cycle with other blocked clients, this client is aborted as
    the deadlock victim ([Deadlock]; its locks are released). See
    {!Lock_table.acquire_wait}. *)

val release : t -> client:string -> unit
(** Abandon a checkout without applying anything. *)

val locked_by : t -> client:string -> string list

val expire_stale : t -> (string * string) list
(** Reap expired leases from the lock table; returns the
    [(name, holder)] pairs that lapsed, sorted by name. A dead client's
    expired locks never block acquisition even before this is called. *)

val release_session : t -> client:string -> string list
(** Free everything the client left behind — all its locks and its
    wait-for edge — in one call; returns the names freed. This is what
    a network front end calls when a session's lease runs out. *)

val refresh_leases : t -> client:string -> ttl:float -> unit
(** Push the expiry of every lease the client still holds out to [ttl]
    seconds from now — a heartbeat. Locks whose lease already lapsed
    are gone and stay gone. *)

val lock_stats : t -> Lock_table.stats
(** Lock-table occupancy (held locks, leases, expired-but-unreaped
    entries, blocked waiters) for monitoring. *)

val checkin :
  t -> client:string -> Protocol.op list -> (unit, Seed_error.t) result
(** Apply the client's operations in one transaction
    ({!Seed_core.Database.with_transaction}): either every operation
    succeeds, or the whole batch is rolled back by an O(1) root swap —
    attached procedures and transition rules are untouched either way,
    and no intermediate state is ever published to snapshots.
    Every touched existing object must be covered by the client's
    locks; a failing operation keeps the locks (the client may fix
    and retry). On success the client's locks are released — after the
    batch has been durably flushed, when the server was built with
    {!of_session}. *)

val create_version : t -> (Version_id.t, Seed_error.t) result
(** Global version creation, server-controlled. *)

val checkin_count : t -> int
(** Successful check-ins so far (monitoring). *)
