(* Persistent string-keyed maps, plus the id-set multimap operations the
   copy-on-write database root is built from. A [Smap] with [Ident.Set]
   values replaces the mutable per-class/per-association extent tables:
   adding or removing one member shares all untouched branches with the
   previous map, which is what makes a published root an O(1) snapshot. *)

include Map.Make (String)

let set m k =
  match find_opt k m with Some s -> s | None -> Ident.Set.empty

let ids m k = Ident.Set.elements (set m k)

let add_id m k id =
  update k
    (function
      | None -> Some (Ident.Set.singleton id)
      | Some s -> Some (Ident.Set.add id s))
    m

let remove_id m k id =
  update k
    (function
      | None -> None
      | Some s ->
        let s = Ident.Set.remove id s in
        if Ident.Set.is_empty s then None else Some s)
    m

let all_ids m = fold (fun _ s acc -> Ident.Set.fold List.cons s acc) m []

let total_cardinal m = fold (fun _ s acc -> acc + Ident.Set.cardinal s) m 0
