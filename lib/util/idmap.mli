(** Persistent ident-keyed id-set multimaps (children, rels-of,
    inheritors indexes of the copy-on-write database root). *)

type t = Ident.Set.t Ident.Map.t

val empty : t
val get : t -> Ident.t -> Ident.Set.t
val ids : t -> Ident.t -> Ident.t list
val add : t -> Ident.t -> Ident.t -> t
val remove : t -> Ident.t -> Ident.t -> t
