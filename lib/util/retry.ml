type policy = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  multiplier : float;
}

let default_policy =
  { attempts = 5; base_delay = 0.001; max_delay = 0.1; multiplier = 2.0 }

let no_delay = { default_policy with base_delay = 0.0; max_delay = 0.0 }

(* Knuth multiplicative hash of the attempt index: deterministic "jitter"
   in [0.5, 1.0] without consulting Random (replays must be stable). *)
let jitter ~attempt =
  let h = attempt * 2654435761 land 0xFFFF in
  0.5 +. (float_of_int h /. 65535.0 /. 2.0)

let delay_for p ~attempt =
  let exp = p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)) in
  Float.min p.max_delay exp *. jitter ~attempt

let transient_only = function Seed_error.Io_transient _ -> true | _ -> false

let with_retry ?(policy = default_policy) ?(sleep = Unix.sleepf)
    ?(should_retry = transient_only) ?(on_retry = fun ~attempt:_ _ -> ()) f =
  let attempts = max 1 policy.attempts in
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error e when attempt < attempts && should_retry e ->
      on_retry ~attempt e;
      let d = delay_for policy ~attempt in
      if d > 0.0 then sleep d;
      go (attempt + 1)
    | Error (Seed_error.Io_transient m) ->
      (* out of attempts: harden the error so Io_transient never escapes *)
      Error (Seed_error.Io_error (Printf.sprintf "giving up after %d attempts: %s" attempts m))
    | Error _ as err -> err
  in
  go 1
