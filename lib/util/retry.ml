type policy = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  multiplier : float;
}

let default_policy =
  { attempts = 5; base_delay = 0.001; max_delay = 0.1; multiplier = 2.0 }

let no_delay = { default_policy with base_delay = 0.0; max_delay = 0.0 }

(* Knuth multiplicative hash of the attempt index: deterministic "jitter"
   in [0.5, 1.0] without consulting Random (replays must be stable). *)
let jitter ~attempt =
  let h = attempt * 2654435761 land 0xFFFF in
  0.5 +. (float_of_int h /. 65535.0 /. 2.0)

let delay_for p ~attempt =
  let exp = p.base_delay *. (p.multiplier ** float_of_int (attempt - 1)) in
  Float.min p.max_delay exp *. jitter ~attempt

let transient_only = function Seed_error.Io_transient _ -> true | _ -> false

let with_deadline ?(policy = default_policy) ?(sleep = Unix.sleepf)
    ?(now = Unix.gettimeofday) ?(should_retry = transient_only)
    ?(on_retry = fun ~attempt:_ _ -> ()) ~deadline f =
  let harden = function
    | Seed_error.Io_transient m ->
      Error
        (Seed_error.Io_error (Printf.sprintf "deadline exceeded retrying: %s" m))
    | e -> Error e
  in
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error e when should_retry e ->
      (* the next delay must fit before the deadline: sleeping past it
         would retry on borrowed time, so the tail of the window is
         spent on one final shortened wait instead *)
      let t = now () in
      if t >= deadline then harden e
      else begin
        on_retry ~attempt e;
        (* the delay curve saturates; freezing the exponent keeps the
           attempt index from overflowing on very long deadlines *)
        let d = delay_for policy ~attempt:(min attempt 32) in
        let d = Float.min d (deadline -. t) in
        if d > 0.0 then sleep d;
        go (attempt + 1)
      end
    | Error _ as err -> err
  in
  go 1

let with_retry ?(policy = default_policy) ?(sleep = Unix.sleepf)
    ?(should_retry = transient_only) ?(on_retry = fun ~attempt:_ _ -> ()) f =
  let attempts = max 1 policy.attempts in
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error e when attempt < attempts && should_retry e ->
      on_retry ~attempt e;
      let d = delay_for policy ~attempt in
      if d > 0.0 then sleep d;
      go (attempt + 1)
    | Error (Seed_error.Io_transient m) ->
      (* out of attempts: harden the error so Io_transient never escapes *)
      Error (Seed_error.Io_error (Printf.sprintf "giving up after %d attempts: %s" attempts m))
    | Error _ as err -> err
  in
  go 1
