type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let to_string i = "#" ^ string_of_int i
let pp ppf i = Fmt.string ppf (to_string i)
let to_int i = i
let of_int i = i

module Gen = struct
  type t = { mutable last : int }

  let create () = { last = 0 }

  let next g =
    g.last <- g.last + 1;
    g.last

  let mark_used g id = if id > g.last then g.last <- id
  let current g = g.last
end

module Map = Map.Make (Int)
module Set = Set.Make (Int)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Hset = struct
  type t = unit Tbl.t

  let create n = Tbl.create n
  let add s id = Tbl.replace s id ()
  let remove s id = Tbl.remove s id
  let mem s id = Tbl.mem s id
  let cardinal s = Tbl.length s
  let clear s = Tbl.reset s
  let iter f s = Tbl.iter (fun id () -> f id) s
  let fold f s init = Tbl.fold (fun id () acc -> f id acc) s init
  let elements s = fold (fun id acc -> id :: acc) s []
end
