type t =
  | Unknown_class of string
  | Unknown_association of string
  | Unknown_role of string * string
  | Unknown_object of string
  | Unknown_item of string
  | Unknown_version of string
  | Unknown_procedure of string
  | Duplicate_name of string
  | Duplicate_class of string
  | Duplicate_association of string
  | Duplicate_version of string
  | Invalid_cardinality of string
  | Cardinality_violation of {
      element : string;
      subject : string;
      bound : string;
      count : int;
    }
  | Type_mismatch of { expected : string; got : string }
  | Membership_violation of {
      expected : string;
      got : string;
      context : string;
    }
  | Cycle_detected of string
  | Not_in_generalization of { item_class : string; target : string }
  | Vetoed of { procedure : string; reason : string }
  | Pattern_violation of string
  | Version_frozen of string
  | Unsaved_changes of string
  | Locked of { item : string; holder : string }
  | Invalid_operation of string
  | Schema_violation of string
  | Io_error of string
  | Io_transient of string
  | Corrupt of string
  | Deadlock of { victim : string; cycle : string list }

let pp ppf = function
  | Unknown_class c -> Fmt.pf ppf "unknown class %S" c
  | Unknown_association a -> Fmt.pf ppf "unknown association %S" a
  | Unknown_role (a, r) -> Fmt.pf ppf "association %S has no role %S" a r
  | Unknown_object n -> Fmt.pf ppf "unknown object %S" n
  | Unknown_item i -> Fmt.pf ppf "unknown item %S" i
  | Unknown_version v -> Fmt.pf ppf "unknown version %S" v
  | Unknown_procedure p -> Fmt.pf ppf "attached procedure %S is not registered" p
  | Duplicate_name n -> Fmt.pf ppf "an object named %S already exists" n
  | Duplicate_class c -> Fmt.pf ppf "class %S is already defined" c
  | Duplicate_association a -> Fmt.pf ppf "association %S is already defined" a
  | Duplicate_version v -> Fmt.pf ppf "version %S already exists" v
  | Invalid_cardinality c -> Fmt.pf ppf "invalid cardinality %s" c
  | Cardinality_violation { element; subject; bound; count } ->
    Fmt.pf ppf "cardinality violation on %s for %s: %s but count is %d"
      element subject bound count
  | Type_mismatch { expected; got } ->
    Fmt.pf ppf "type mismatch: expected %s, got %s" expected got
  | Membership_violation { expected; got; context } ->
    Fmt.pf ppf "membership violation in %s: expected an instance of %S, got %S"
      context expected got
  | Cycle_detected a -> Fmt.pf ppf "ACYCLIC association %S would become cyclic" a
  | Not_in_generalization { item_class; target } ->
    Fmt.pf ppf
      "class %S and %S do not belong to the same generalization hierarchy"
      item_class target
  | Vetoed { procedure; reason } ->
    Fmt.pf ppf "update vetoed by attached procedure %S: %s" procedure reason
  | Pattern_violation m -> Fmt.pf ppf "pattern violation: %s" m
  | Version_frozen v -> Fmt.pf ppf "version %s is frozen and cannot be modified" v
  | Unsaved_changes v ->
    Fmt.pf ppf
      "the current version (based on %s) has unsaved changes; save it or force"
      v
  | Locked { item; holder } ->
    Fmt.pf ppf "item %s is write-locked by client %s" item holder
  | Invalid_operation m -> Fmt.pf ppf "invalid operation: %s" m
  | Schema_violation m -> Fmt.pf ppf "schema violation: %s" m
  | Io_error m -> Fmt.pf ppf "i/o error: %s" m
  | Io_transient m -> Fmt.pf ppf "transient i/o error: %s" m
  | Corrupt m -> Fmt.pf ppf "corrupt storage: %s" m
  | Deadlock { victim; cycle } ->
    Fmt.pf ppf "deadlock detected (cycle: %a); aborted %s"
      Fmt.(list ~sep:(any " -> ") string)
      cycle victim

let to_string e = Fmt.str "%a" pp e

exception Error of t

let () =
  Printexc.register_printer (function
    | Error e -> Some (Fmt.str "Seed_error.Error (%a)" pp e)
    | _ -> None)

let fail e : ('a, t) result = Stdlib.Error e

let wrap_io f =
  try Stdlib.Ok (f ()) with
  | Sys_error m -> fail (Io_error m)
  | Unix.Unix_error (((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK) as e), fn, arg)
    ->
    (* interrupted/would-block syscalls succeed when reissued: transient *)
    fail
      (Io_transient (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))
  | Unix.Unix_error (e, fn, arg) ->
    fail (Io_error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))

let ok_exn = function Stdlib.Ok v -> v | Stdlib.Error e -> raise (Error e)

let ( let* ) r f =
  match r with Stdlib.Ok v -> f v | Stdlib.Error _ as e -> e

let ( let+ ) r f =
  match r with Stdlib.Ok v -> Stdlib.Ok (f v) | Stdlib.Error _ as e -> e

let rec iter_result f = function
  | [] -> Stdlib.Ok ()
  | x :: xs -> (
    match f x with Stdlib.Ok () -> iter_result f xs | Stdlib.Error _ as e -> e)

let all_unit rs = iter_result (fun r -> r) rs

let map_result f xs =
  let rec go acc = function
    | [] -> Stdlib.Ok (List.rev acc)
    | x :: xs -> (
      match f x with
      | Stdlib.Ok y -> go (y :: acc) xs
      | Stdlib.Error e -> Stdlib.Error e)
  in
  go [] xs
