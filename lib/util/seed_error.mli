(** Errors raised or returned by SEED operations.

    Every user-facing operation of the database returns
    [('a, Seed_error.t) result]; the error type enumerates the reasons an
    operation can be refused so callers can react programmatically. *)

type t =
  | Unknown_class of string  (** no class with this path in the schema *)
  | Unknown_association of string  (** no association with this name *)
  | Unknown_role of string * string  (** association, role *)
  | Unknown_object of string  (** no object with this name *)
  | Unknown_item of string  (** no item with this id *)
  | Unknown_version of string  (** no version with this label *)
  | Unknown_procedure of string  (** attached procedure not registered *)
  | Duplicate_name of string  (** an independent object with this name exists *)
  | Duplicate_class of string  (** schema already defines this class *)
  | Duplicate_association of string  (** schema already defines this assoc *)
  | Duplicate_version of string  (** version label already exists *)
  | Invalid_cardinality of string  (** malformed min/max bounds *)
  | Cardinality_violation of {
      element : string;  (** class path or [assoc.role] *)
      subject : string;  (** item the violation is about *)
      bound : string;  (** human-readable bound, e.g. ["max 16"] *)
      count : int;  (** the offending count *)
    }
  | Type_mismatch of { expected : string; got : string }
  | Membership_violation of {
      expected : string;  (** class required by the schema element *)
      got : string;  (** class of the offending item *)
      context : string;  (** where the requirement comes from *)
    }
  | Cycle_detected of string  (** association with ACYCLIC violated *)
  | Not_in_generalization of { item_class : string; target : string }
  | Vetoed of { procedure : string; reason : string }
  | Pattern_violation of string  (** illegal operation involving a pattern *)
  | Version_frozen of string  (** attempt to modify a saved version *)
  | Unsaved_changes of string  (** switch away from a dirty current version *)
  | Locked of { item : string; holder : string }  (** write lock conflict *)
  | Invalid_operation of string  (** catch-all with explanation *)
  | Schema_violation of string  (** schema-level validation failure *)
  | Io_error of string  (** permanent storage layer failure *)
  | Io_transient of string
      (** transient storage failure (EINTR/EAGAIN class); safe to retry *)
  | Corrupt of string  (** storage integrity check failed *)
  | Deadlock of { victim : string; cycle : string list }
      (** lock wait-for cycle detected; [victim]'s locks were released *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering of an error. *)

val to_string : t -> string
(** [to_string e] is [Format.asprintf "%a" pp e]. *)

exception Error of t
(** Exception wrapper used by the [_exn] convenience variants. *)

val fail : t -> ('a, t) result
(** [fail e] is [Error e] (the [result] constructor, not the exception). *)

val wrap_io : (unit -> 'a) -> ('a, t) result
(** [wrap_io f] runs [f], converting [Sys_error] and [Unix.Unix_error]
    into results: EINTR/EAGAIN/EWOULDBLOCK become {!Io_transient} (safe
    to retry), everything else {!Io_error}. Other exceptions — notably a
    fault injector's crash — propagate untouched. *)

val ok_exn : ('a, t) result -> 'a
(** [ok_exn r] unwraps [r], raising {!Error} on failure. *)

val ( let* ) : ('a, t) result -> ('a -> ('b, t) result) -> ('b, t) result
(** Monadic bind for result-typed SEED operations. *)

val ( let+ ) : ('a, t) result -> ('a -> 'b) -> ('b, t) result
(** Map for result-typed SEED operations. *)

val all_unit : (unit, t) result list -> (unit, t) result
(** [all_unit rs] is [Ok ()] iff every element is [Ok ()], otherwise the
    first error. *)

val iter_result : ('a -> (unit, t) result) -> 'a list -> (unit, t) result
(** [iter_result f xs] applies [f] to each element, stopping at the first
    error. *)

val map_result : ('a -> ('b, t) result) -> 'a list -> ('b list, t) result
(** [map_result f xs] maps [f] over [xs], stopping at the first error. *)
