(** Bounded retry with exponential backoff and deterministic jitter.

    Transient faults (interrupted syscalls, short reads that succeed on the
    next attempt, a lock briefly held by a dying client) should be absorbed
    close to where they happen instead of bubbling up to the user.  [Retry]
    packages the loop: a policy bounds the number of attempts and shapes the
    delay curve, the sleep and clock are injectable so tests run in zero
    wall-clock time, and the jitter is a pure function of the attempt index
    so replays are reproducible. *)

type policy = {
  attempts : int;  (** total tries, including the first (>= 1) *)
  base_delay : float;  (** seconds before the first retry *)
  max_delay : float;  (** cap on any single delay *)
  multiplier : float;  (** exponential growth factor between retries *)
}

val default_policy : policy
(** 5 attempts, 1ms base, 100ms cap, 2x growth. *)

val no_delay : policy
(** [default_policy] with zero delays — for tests and in-memory retry. *)

val delay_for : policy -> attempt:int -> float
(** [delay_for p ~attempt] is the backoff before retry number [attempt]
    (1-based): [base * multiplier^(attempt-1)] capped at [max_delay], scaled
    by a deterministic jitter in [0.5, 1.0] derived from [attempt] alone. *)

val with_retry :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?should_retry:(Seed_error.t -> bool) ->
  ?on_retry:(attempt:int -> Seed_error.t -> unit) ->
  (unit -> ('a, Seed_error.t) result) ->
  ('a, Seed_error.t) result
(** [with_retry f] runs [f], retrying while it returns an error accepted by
    [should_retry] (default: only {!Seed_error.Io_transient}) and attempts
    remain.  Between tries it calls [sleep] (default [Unix.sleepf]) with
    {!delay_for}.  After the final failed attempt a transient error is
    surfaced as a permanent [Io_error] so callers never see
    [Io_transient] escape a retry boundary. *)

val with_deadline :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?now:(unit -> float) ->
  ?should_retry:(Seed_error.t -> bool) ->
  ?on_retry:(attempt:int -> Seed_error.t -> unit) ->
  deadline:float ->
  (unit -> ('a, Seed_error.t) result) ->
  ('a, Seed_error.t) result
(** [with_deadline ~deadline f] retries like {!with_retry} but against an
    absolute deadline on [now]'s clock instead of an attempt count: the
    policy's [attempts] field is ignored, its delay curve is kept, and no
    sleep ever extends past [deadline] (the last gap before the deadline
    is spent on one shortened wait).  A client reconnecting to a server
    wants exactly this shape — "keep trying until my lease window is
    over", however many attempts that is.  As with {!with_retry}, an
    exhausted transient error hardens to [Io_error]. *)
