(** Internal item identifiers.

    Every data item in a SEED database — independent object, dependent
    object, or relationship — carries a unique identifier allocated from
    the database's generator. Identifiers are never reused, which is what
    makes logical deletion and version stamping safe. *)

type t
(** An opaque item identifier. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
(** Renders as ["#<n>"]. *)

val pp : Format.formatter -> t -> unit

val to_int : t -> int
(** Stable integer image, used by the storage codec. *)

val of_int : int -> t
(** Inverse of {!to_int}; used by the storage codec only. *)

module Gen : sig
  type id := t

  type t
  (** A monotonic identifier generator. *)

  val create : unit -> t
  (** A fresh generator whose first identifier is [#1]. *)

  val next : t -> id
  (** Allocate the next identifier. *)

  val mark_used : t -> id -> unit
  (** Inform the generator that [id] is in use (after loading a database
      from storage), so it will never be handed out again. *)

  val current : t -> int
  (** Highest integer handed out so far, for persistence. *)
end

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t

(** A mutable hash set of identifiers: O(1) add/remove/mem, used by the
    in-memory secondary indexes (class extents, dirty set). *)
module Hset : sig
  type id := t

  type t

  val create : int -> t
  val add : t -> id -> unit
  val remove : t -> id -> unit
  val mem : t -> id -> bool
  val cardinal : t -> int
  val clear : t -> unit
  val iter : (id -> unit) -> t -> unit
  val fold : (id -> 'a -> 'a) -> t -> 'a -> 'a

  val elements : t -> id list
  (** Members in unspecified order. *)
end
