(* Persistent ident-keyed id-set multimaps: the copy-on-write
   replacement for the mutable [Ident.Set.t ref Ident.Tbl.t] identity
   indexes (children, rels-of, inheritors). *)

type t = Ident.Set.t Ident.Map.t

let empty : t = Ident.Map.empty

let get (m : t) k =
  match Ident.Map.find_opt k m with Some s -> s | None -> Ident.Set.empty

let ids (m : t) k = Ident.Set.elements (get m k)

let add (m : t) k id =
  Ident.Map.update k
    (function
      | None -> Some (Ident.Set.singleton id)
      | Some s -> Some (Ident.Set.add id s))
    m

let remove (m : t) k id =
  Ident.Map.update k
    (function
      | None -> None
      | Some s ->
        let s = Ident.Set.remove id s in
        if Ident.Set.is_empty s then None else Some s)
    m
