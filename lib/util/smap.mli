(** Persistent string-keyed maps with id-set multimap helpers.

    The copy-on-write database root stores its per-class and
    per-association extents as [Ident.Set.t t]: updates share structure
    with the previous map, so grabbing a snapshot of the whole root is a
    pointer copy and never blocks or copies readers. *)

include Map.S with type key = string

val set : Ident.Set.t t -> string -> Ident.Set.t
(** The id set under a key, empty when absent. *)

val ids : Ident.Set.t t -> string -> Ident.t list
(** Elements of {!set}, ascending. *)

val add_id : Ident.Set.t t -> string -> Ident.t -> Ident.Set.t t

val remove_id : Ident.Set.t t -> string -> Ident.t -> Ident.Set.t t
(** Drops the key entirely when its set becomes empty. *)

val all_ids : Ident.Set.t t -> Ident.t list
(** Union of all sets (keys are disjoint extents, so no duplicates). *)

val total_cardinal : Ident.Set.t t -> int
