open Seed_util
open Seed_error

let header_bytes = 16

let wrap_io = Seed_error.wrap_io

let write ?(io = Io.real) path ~epoch payload =
  let tmp = path ^ ".tmp" in
  let quiet_unlink () =
    (* only for the error path below — a Crash never reaches here, so
       this cannot swallow a simulated abort *)
    try io.Io.unlink tmp with Sys_error _ | Unix.Unix_error _ -> ()
  in
  try
    let f = io.Io.open_trunc tmp in
    Fun.protect
      ~finally:(fun () -> f.Io.close ())
      (fun () ->
        let b = Buffer.create (String.length payload + header_bytes) in
        Buffer.add_int32_le b Journal.magic;
        Buffer.add_int32_le b (Int32.of_int epoch);
        Buffer.add_int32_le b (Int32.of_int (String.length payload));
        Buffer.add_int32_le b (Crc32.digest payload);
        Buffer.add_string b payload;
        f.Io.write (Buffer.contents b);
        f.Io.fsync ());
    io.Io.rename tmp path;
    io.Io.fsync_dir (Filename.dirname path);
    Ok ()
  with
  | (Sys_error _ | Unix.Unix_error _) as e ->
    quiet_unlink ();
    (* classify through the shared wrapper (transient vs permanent) *)
    wrap_io (fun () -> raise e)

let read ?(io = Io.real) path =
  if not (io.Io.exists path) then Ok None
  else
    let* contents = wrap_io (fun () -> io.Io.read_file path) in
    if String.length contents < header_bytes then
      fail (Corrupt ("snapshot " ^ path ^ ": too short"))
    else
      let m = String.get_int32_le contents 0 in
      let epoch = Int32.to_int (String.get_int32_le contents 4) in
      let len = Int32.to_int (String.get_int32_le contents 8) in
      let crc = String.get_int32_le contents 12 in
      if m <> Journal.magic then
        fail (Corrupt ("snapshot " ^ path ^ ": bad magic"))
      else if epoch < 0 then
        fail (Corrupt ("snapshot " ^ path ^ ": negative epoch"))
      else if len <> String.length contents - header_bytes then
        fail (Corrupt ("snapshot " ^ path ^ ": bad length"))
      else
        let payload = String.sub contents header_bytes len in
        if Crc32.digest payload <> crc then
          fail (Corrupt ("snapshot " ^ path ^ ": crc mismatch"))
        else Ok (Some (epoch, payload))
