(** Leader/follower group-commit coalescing for one journal partition.

    Concurrently arriving committers {!submit} their encoded
    transaction; the first to find no leader active takes the leader
    role, drains the whole queue, lands everything drained in {e one}
    physical append (one fsync under [`Always_fsync]) via
    {!Journal.append_entries}, and wakes the followers with their
    durability result. Followers block in {!submit} until their entry is
    durable (or failed). With N writers contending, each fsync covers up
    to N transactions — fsyncs per transaction drop well below 1 under
    load while every acked commit is still individually durable.

    There is no background thread to manage: the daemon is a queue plus
    a leader election, driven entirely by the committers themselves. *)

type t

val create :
  ?coalesce:float ->
  ?siblings:(unit -> int) ->
  ?counts_fsync:bool ->
  (Journal.entry list -> (unit, Seed_util.Seed_error.t) result) ->
  t
(** [create write] makes a daemon whose leader lands each drained batch
    with one call to [write] (typically a retry-wrapped
    {!Journal.append_entries} on the partition's journal). When
    [counts_fsync] (default false), each successful batch also bumps
    the {!stats} fsync counter — set it iff the journal's policy is
    [`Always_fsync].

    [coalesce] (default 0, disabled) enables the adaptive commit
    window: before draining, the leader naps in increments of
    [coalesce] seconds while the round is still smaller than contention
    suggests it could reach — the larger of the previous round's size
    and [siblings ()] (default [fun () -> 0]; the store passes its
    count of writers currently inside the write path, the classic
    [commit_siblings] signal) — stopping as soon as a nap brings no
    new arrival. Without it, rounds under steady contention alternate
    between large and singleton batches (the writers of the batch being
    fsynced cannot re-enqueue until it lands) and the fsync
    amortization stalls near 2x. Values around 1e-5 s work well — the
    OS nap floor is tens of microseconds regardless. The window never
    fires single-threaded, so uncontended commit latency is
    untouched. *)

val submit : t -> Journal.entry -> (unit, Seed_util.Seed_error.t) result
(** Enqueues the entry and blocks until it is durable per the journal's
    sync policy, either by leading a batch or by being coalesced into
    another committer's. [Ok ()] is a durability ack for this entry
    (and, transitively, the whole batch it rode in). If the leader's
    physical write raises — a fault injector's crash — waiting
    followers are failed and woken before the exception propagates from
    the leader's own [submit], so no domain deadlocks on a dead
    leader. *)

val pause : t -> unit
(** Blocks new batches and waits for the in-flight one to finish.
    Committers arriving while paused enqueue and sleep until {!resume}.
    Used to quiesce the partition around compaction's journal swap. *)

val resume : t -> unit
(** Lifts {!pause}; a waiting committer takes leadership and drains
    whatever queued up. *)

type stats = {
  submitted : int;  (** transactions submitted *)
  batches : int;  (** physical writes performed *)
  fsyncs : int;  (** fsyncs performed (0 unless [counts_fsync]) *)
  max_batch : int;  (** most transactions coalesced into one write *)
  queue_hwm : int;  (** queue depth high-water mark *)
}

val empty_stats : stats
val add_stats : stats -> stats -> stats
val stats : t -> stats
