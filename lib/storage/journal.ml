open Seed_util
open Seed_error

type sync_policy = [ `Always_fsync | `Flush_only | `None ]

type t = {
  jpath : string;
  jepoch : int;
  sync_policy : sync_policy;
  pending : Buffer.t;  (* frames not yet handed to the OS (`None policy) *)
  mutable file : Io.file option;
}

(* "SEE2": version 2 of the frame format (epoch-tagged). *)
let magic = 0x53454532l

let header_bytes = 16

let wrap_io f =
  try Ok (f ()) with
  | Sys_error m -> fail (Io_error m)
  | Unix.Unix_error (e, fn, arg) ->
    fail (Io_error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))

let open_ ?(io = Io.real) ?(sync = `Flush_only) ?(epoch = 0) path =
  wrap_io (fun () ->
      let file = io.Io.open_append path in
      {
        jpath = path;
        jepoch = epoch;
        sync_policy = sync;
        pending = Buffer.create 256;
        file = Some file;
      })

let file_of j =
  match j.file with
  | Some f -> Ok f
  | None -> fail (Io_error ("journal closed: " ^ j.jpath))

let frame epoch payload =
  let b = Buffer.create (String.length payload + header_bytes) in
  Buffer.add_int32_le b magic;
  Buffer.add_int32_le b (Int32.of_int epoch);
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (Crc32.digest payload);
  Buffer.add_string b payload;
  Buffer.contents b

let write_pending j (f : Io.file) =
  if Buffer.length j.pending > 0 then begin
    f.Io.write (Buffer.contents j.pending);
    Buffer.clear j.pending
  end

let append j payload =
  let* f = file_of j in
  wrap_io (fun () ->
      let bytes = frame j.jepoch payload in
      match j.sync_policy with
      | `None -> Buffer.add_string j.pending bytes
      | `Flush_only ->
        write_pending j f;
        f.Io.write bytes
      | `Always_fsync ->
        write_pending j f;
        f.Io.write bytes;
        f.Io.fsync ())

let sync j =
  let* f = file_of j in
  wrap_io (fun () ->
      write_pending j f;
      f.Io.fsync ())

let close j =
  match j.file with
  | None -> ()
  | Some f ->
    j.file <- None;
    (* best-effort: a failed (or crashed) flush simply loses the
       unsynced records, which is what the `None policy promises *)
    (try write_pending j f with _ -> Buffer.clear j.pending);
    (try f.Io.close () with _ -> ())

let path j = j.jpath
let epoch j = j.jepoch

(* ------------------------------------------------------------------ *)
(* Recovery-side reads                                                  *)
(* ------------------------------------------------------------------ *)

type frame = { f_epoch : int; f_payload : string; f_offset : int }
type damage = { d_offset : int; d_reason : string }

type scan_result = {
  frames : frame list;
  scan_damage : damage option;
  file_size : int;
}

let scan path =
  if not (Sys.file_exists path) then
    Ok { frames = []; scan_damage = None; file_size = 0 }
  else
    wrap_io (fun () ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let size = in_channel_length ic in
            let records = ref [] in
            let rec loop pos =
              if pos = size then None
              else if size - pos < header_bytes then
                Some { d_offset = pos; d_reason = "truncated frame header" }
              else begin
                let hdr = really_input_string ic header_bytes in
                let m = String.get_int32_le hdr 0 in
                if m <> magic then
                  Some { d_offset = pos; d_reason = "bad magic" }
                else
                  let ep = Int32.to_int (String.get_int32_le hdr 4) in
                  let len = Int32.to_int (String.get_int32_le hdr 8) in
                  let crc = String.get_int32_le hdr 12 in
                  if ep < 0 then
                    Some { d_offset = pos; d_reason = "negative epoch" }
                  else if len < 0 then
                    Some { d_offset = pos; d_reason = "negative length" }
                  else if size - pos - header_bytes < len then
                    Some { d_offset = pos; d_reason = "truncated payload" }
                  else
                    let payload = really_input_string ic len in
                    if Crc32.digest payload <> crc then
                      Some { d_offset = pos; d_reason = "crc mismatch" }
                    else begin
                      records :=
                        { f_epoch = ep; f_payload = payload; f_offset = pos }
                        :: !records;
                      loop (pos + header_bytes + len)
                    end
              end
            in
            let scan_damage = loop 0 in
            { frames = List.rev !records; scan_damage; file_size = size }))

let read_all path =
  (* A damaged tail only loses the records after the damage; recovery
     keeps the intact prefix, mirroring WAL semantics. *)
  let* s = scan path in
  Ok (List.map (fun f -> f.f_payload) s.frames)

let read_all_strict path =
  let* s = scan path in
  match s.scan_damage with
  | None -> Ok (List.map (fun f -> f.f_payload) s.frames)
  | Some d ->
    fail
      (Corrupt
         (Printf.sprintf "journal %s: %s at offset %d" path d.d_reason
            d.d_offset))

let truncate ?(io = Io.real) ?(len = 0) path =
  wrap_io (fun () ->
      if io.Io.exists path then io.Io.truncate path len
      else if len <> 0 then
        raise (Sys_error (path ^ ": cannot truncate a missing journal"));
      (* sync the cut itself, then the directory entry: some filesystems
         would otherwise resurrect pre-truncation bytes after a crash *)
      let f = io.Io.open_append path in
      Fun.protect
        ~finally:(fun () -> f.Io.close ())
        (fun () -> f.Io.fsync ());
      io.Io.fsync_dir (Filename.dirname path))
