open Seed_util
open Seed_error

type sync_policy = [ `Always_fsync | `Flush_only | `None ]

type t = {
  jpath : string;
  jepoch : int;
  sync_policy : sync_policy;
  pending : Buffer.t;  (* frames not yet handed to the OS (`None policy) *)
  mutable file : Io.file option;
  mutable next_txn : int;
}

(* "SEE3": version 3 of the frame format (epoch-tagged, with the frame
   CRC covering the epoch and length header fields as well as the
   payload, so a bit flipped anywhere in the frame except the magic is
   caught as damage rather than silently changing the frame's epoch or
   extent). *)
let magic = 0x53454533l

(* "SEEC": control frames — transaction begin/commit/solo markers. Same
   envelope as data frames, so the CRC/torn-tail machinery covers them
   for free; a distinct magic keeps old readers from mistaking a marker
   for a record. *)
let control_magic = 0x53454543l

let header_bytes = 16

let wrap_io = Seed_error.wrap_io

let open_ ?(io = Io.real) ?(sync = `Flush_only) ?(epoch = 0) path =
  wrap_io (fun () ->
      let file = io.Io.open_append path in
      {
        jpath = path;
        jepoch = epoch;
        sync_policy = sync;
        pending = Buffer.create 256;
        file = Some file;
        next_txn = 1;
      })

let file_of j =
  match j.file with
  | Some f -> Ok f
  | None -> fail (Io_error ("journal closed: " ^ j.jpath))

(* The frame CRC covers epoch, length, and payload — everything after
   the magic — so header corruption is detected like payload
   corruption. *)
let frame_crc ~epoch payload =
  let b = Buffer.create (8 + String.length payload) in
  Buffer.add_int32_le b (Int32.of_int epoch);
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Crc32.digest (Buffer.contents b)

let frame_with ~magic:m epoch payload =
  let b = Buffer.create (String.length payload + header_bytes) in
  Buffer.add_int32_le b m;
  Buffer.add_int32_le b (Int32.of_int epoch);
  Buffer.add_int32_le b (Int32.of_int (String.length payload));
  Buffer.add_int32_le b (frame_crc ~epoch payload);
  Buffer.add_string b payload;
  Buffer.contents b

let frame epoch payload = frame_with ~magic epoch payload

(* Control payloads: [kind u8 | txn u32] for begin,
   [kind u8 | txn u32 | count u32 | group crc u32] for commit, and
   [kind u8 | txn u32 | crc u32] for a solo marker. The commit/solo CRC
   covers the record payload(s), so a marker vouches for the exact
   records it closes, not just their count. *)
let begin_payload txn =
  let b = Buffer.create 5 in
  Buffer.add_uint8 b 0;
  Buffer.add_int32_le b (Int32.of_int txn);
  Buffer.contents b

let commit_payload ~txn ~count ~group_crc =
  let b = Buffer.create 13 in
  Buffer.add_uint8 b 1;
  Buffer.add_int32_le b (Int32.of_int txn);
  Buffer.add_int32_le b (Int32.of_int count);
  Buffer.add_int32_le b group_crc;
  Buffer.contents b

(* A solo marker folds Begin and Commit into one control frame for
   single-record transactions: it sequences (txn) and vouches for (crc)
   exactly the one data frame that follows it. *)
let solo_payload ~txn ~crc =
  let b = Buffer.create 9 in
  Buffer.add_uint8 b 2;
  Buffer.add_int32_le b (Int32.of_int txn);
  Buffer.add_int32_le b crc;
  Buffer.contents b

(* Chained digests give the same value as digesting the concatenation,
   without materializing the concatenated copy on the commit path. *)
let group_crc payloads =
  List.fold_left (fun acc p -> Crc32.digest ~init:acc p) 0l payloads

let write_pending j (f : Io.file) =
  if Buffer.length j.pending > 0 then begin
    f.Io.write (Buffer.contents j.pending);
    Buffer.clear j.pending
  end

(* ------------------------------------------------------------------ *)
(* Appending                                                            *)
(* ------------------------------------------------------------------ *)

type entry =
  | Bare of string
  | Solo of { seq : int; payload : string }
  | Group of { seq : int; payloads : string list }

let encode_entry j b = function
  | Bare p -> Buffer.add_string b (frame j.jepoch p)
  | Solo { seq; payload } ->
    Buffer.add_string b
      (frame_with ~magic:control_magic j.jepoch
         (solo_payload ~txn:seq ~crc:(Crc32.digest payload)));
    Buffer.add_string b (frame j.jepoch payload)
  | Group { seq; payloads } ->
    Buffer.add_string b
      (frame_with ~magic:control_magic j.jepoch (begin_payload seq));
    List.iter (fun p -> Buffer.add_string b (frame j.jepoch p)) payloads;
    Buffer.add_string b
      (frame_with ~magic:control_magic j.jepoch
         (commit_payload ~txn:seq ~count:(List.length payloads)
            ~group_crc:(group_crc payloads)))

let write_bytes j f bytes =
  match j.sync_policy with
  | `None -> Buffer.add_string j.pending bytes
  | `Flush_only ->
    write_pending j f;
    f.Io.write bytes
  | `Always_fsync ->
    write_pending j f;
    f.Io.write bytes;
    f.Io.fsync ()

let append_entries j entries =
  match entries with
  | [] -> Ok ()
  | _ ->
    let* f = file_of j in
    wrap_io (fun () ->
        let b = Buffer.create 512 in
        List.iter (encode_entry j b) entries;
        (* all the entries go down in one write (and, under
           [`Always_fsync], one fsync): a crash leaves each transaction
           either whole or marker-less — never a committed prefix *)
        write_bytes j f (Buffer.contents b))

let append j payload =
  let* f = file_of j in
  wrap_io (fun () -> write_bytes j f (frame j.jepoch payload))

let fresh_seq j =
  let txn = j.next_txn in
  j.next_txn <- txn + 1;
  txn

let append_group ?seq j payloads =
  match payloads with
  | [] -> Ok ()
  | [ p ] ->
    (* a single-record transaction needs no markers: a bare frame is
       already individually committed (all-or-nothing is trivial for one
       record), so the group framing would be pure overhead *)
    append_entries j [ Bare p ]
  | _ ->
    let seq = match seq with Some s -> s | None -> fresh_seq j in
    append_entries j [ Group { seq; payloads } ]

let sync j =
  let* f = file_of j in
  wrap_io (fun () ->
      write_pending j f;
      f.Io.fsync ())

let close j =
  match j.file with
  | None -> ()
  | Some f ->
    j.file <- None;
    (* best-effort: a failed (or crashed) flush simply loses the
       unsynced records, which is what the `None policy promises *)
    (try write_pending j f with _ -> Buffer.clear j.pending);
    (try f.Io.close () with _ -> ())

let path j = j.jpath
let epoch j = j.jepoch
let sync_policy j = j.sync_policy

(* ------------------------------------------------------------------ *)
(* Recovery-side reads                                                  *)
(* ------------------------------------------------------------------ *)

type kind =
  | Data
  | Begin of { txn : int }
  | Commit of { txn : int; count : int; crc : int32 }
  | Solo_marker of { txn : int; crc : int32 }

type frame = {
  f_epoch : int;
  f_payload : string;
  f_offset : int;
  f_kind : kind;
}

type damage = { d_offset : int; d_end : int; d_reason : string }

let decode_control payload =
  let len = String.length payload in
  if len = 5 && String.get_uint8 payload 0 = 0 then
    Some (Begin { txn = Int32.to_int (String.get_int32_le payload 1) })
  else if len = 13 && String.get_uint8 payload 0 = 1 then
    Some
      (Commit
         {
           txn = Int32.to_int (String.get_int32_le payload 1);
           count = Int32.to_int (String.get_int32_le payload 5);
           crc = String.get_int32_le payload 9;
         })
  else if len = 9 && String.get_uint8 payload 0 = 2 then
    Some
      (Solo_marker
         {
           txn = Int32.to_int (String.get_int32_le payload 1);
           crc = String.get_int32_le payload 5;
         })
  else None

type scan_result = {
  frames : frame list;
  scan_damage : damage list;
  file_size : int;
}

let scan ?(io = Io.real) path =
  if not (io.Io.exists path) then
    Ok { frames = []; scan_damage = []; file_size = 0 }
  else
    wrap_io (fun () ->
        let buf = io.Io.read_file path in
        let size = String.length buf in
        (* parse the frame whose header starts at [pos] *)
        let frame_at pos =
          if size - pos < header_bytes then `Bad "truncated frame header"
          else
            let m = String.get_int32_le buf pos in
            if m <> magic && m <> control_magic then `Bad "bad magic"
            else
              let ep = Int32.to_int (String.get_int32_le buf (pos + 4)) in
              let len = Int32.to_int (String.get_int32_le buf (pos + 8)) in
              let crc = String.get_int32_le buf (pos + 12) in
              if ep < 0 then `Bad "negative epoch"
              else if len < 0 then `Bad "negative length"
              else if size - pos - header_bytes < len then
                `Bad "truncated payload"
              else
                let payload = String.sub buf (pos + header_bytes) len in
                if frame_crc ~epoch:ep payload <> crc then `Bad "crc mismatch"
                else if m = magic then
                  `Frame
                    ( { f_epoch = ep; f_payload = payload; f_offset = pos;
                        f_kind = Data },
                      pos + header_bytes + len )
                else
                  match decode_control payload with
                  | None -> `Bad "bad control record"
                  | Some k ->
                    `Frame
                      ( { f_epoch = ep; f_payload = payload; f_offset = pos;
                          f_kind = k },
                        pos + header_bytes + len )
        in
        (* after damage, hunt byte-by-byte for the next offset where a
           whole frame — magic, sane lengths, matching CRC — parses; the
           CRC makes a false resync on payload bytes vanishingly unlikely *)
        let rec resync pos =
          if size - pos < header_bytes then None
          else
            let m = String.get_int32_le buf pos in
            if
              (m = magic || m = control_magic)
              && match frame_at pos with `Frame _ -> true | `Bad _ -> false
            then Some pos
            else resync (pos + 1)
        in
        let records = ref [] and damages = ref [] in
        let rec loop pos =
          if pos < size then
            match frame_at pos with
            | `Frame (f, next) ->
              records := f :: !records;
              loop next
            | `Bad d_reason -> (
              match resync (pos + 1) with
              | Some next ->
                damages := { d_offset = pos; d_end = next; d_reason } :: !damages;
                loop next
              | None ->
                damages := { d_offset = pos; d_end = size; d_reason } :: !damages)
        in
        loop 0;
        {
          frames = List.rev !records;
          scan_damage = List.rev !damages;
          file_size = size;
        })

let tail_damage s =
  match List.rev s.scan_damage with
  | d :: _ when d.d_end = s.file_size -> Some d
  | _ -> None

let quarantined s =
  match tail_damage s with
  | None -> s.scan_damage
  | Some t -> List.filter (fun d -> d.d_offset <> t.d_offset) s.scan_damage

(* ------------------------------------------------------------------ *)
(* Transaction-group resolution                                         *)
(* ------------------------------------------------------------------ *)

type unit_ = { u_seq : int option; u_frames : frame list }

type groups = {
  g_units : unit_ list;
  g_committed : frame list;
  g_dropped_records : int;
  g_tail_records : int;
  g_tail_begin : int option;
}

let max_seq frames =
  List.fold_left
    (fun acc f ->
      match f.f_kind with
      | Begin { txn } | Commit { txn; _ } | Solo_marker { txn; _ } ->
        max acc txn
      | Data -> acc)
    0 frames

let resolve_groups ?(damage = []) frames =
  (* Walks the intact frames in append order. A bare data frame (old
     journals, single-record appends) is committed on its own, without a
     sequence tag. A [Begin] opens a group; the group's records count
     only when a matching [Commit] (same txn, right count, right group
     CRC) closes it — anything else drops the whole group, never a
     prefix of it. A [Solo_marker] is a fused begin+commit: it commits
     exactly the one data frame following it, when that frame's payload
     CRC matches.

     A quarantined [damage] region falling inside an open group is a
     barrier: the group cannot be trusted across it. The records before
     the barrier are dropped; the records after it are in limbo until
     the next marker decides them — a [Commit] means the group ran past
     the damage (a record was destroyed, so the whole group drops), a
     [Begin]/[Solo_marker] or the end of the file means the damage most
     plausibly ate the commit marker, so the limbo records are
     independent appends that must survive. *)
  let units = ref [] and dropped = ref 0 in
  let tail_records = ref 0 and tail_begin = ref None in
  let commit_unit ?seq fs = units := { u_seq = seq; u_frames = fs } :: !units in
  let commit_bare fs =
    List.iter (fun f -> commit_unit [ f ]) fs
  in
  let barrier ~last_off f =
    List.exists (fun d -> d.d_offset > last_off && d.d_end <= f.f_offset) damage
  in
  let rec walk frames =
    match frames with
    | [] -> ()
    | f :: rest -> (
      match f.f_kind with
      | Data ->
        commit_unit [ f ];
        walk rest
      | Commit _ ->
        (* a stray commit with no open group: ignore the marker *)
        walk rest
      | Begin { txn } ->
        in_group ~txn ~begin_off:f.f_offset ~last_off:f.f_offset [] rest
      | Solo_marker { txn; crc } ->
        solo ~txn ~crc ~off:f.f_offset rest)
  and solo ~txn ~crc ~off frames =
    match frames with
    | [] ->
      (* journal ends at the marker: the record never landed; the
         marker itself is a truncatable dangling tail *)
      tail_begin := Some off
    | f :: rest ->
      if barrier ~last_off:off f then begin
        (* the record the marker vouches for was destroyed *)
        walk (f :: rest)
      end
      else (
        match f.f_kind with
        | Data when Crc32.digest f.f_payload = crc ->
          commit_unit ~seq:txn [ f ];
          walk rest
        | _ ->
          (* orphaned marker: whatever follows stands on its own *)
          walk (f :: rest))
  and in_group ~txn ~begin_off ~last_off acc frames =
    match frames with
    | [] ->
      (* journal ends inside the group: uncommitted tail, truncatable *)
      dropped := !dropped + List.length acc;
      tail_records := List.length acc;
      tail_begin := Some begin_off
    | f :: rest ->
      if barrier ~last_off f then begin
        dropped := !dropped + List.length acc;
        limbo [] (f :: rest)
      end
      else (
        match f.f_kind with
        | Data -> in_group ~txn ~begin_off ~last_off:f.f_offset (f :: acc) rest
        | Begin { txn = txn' } ->
          (* nested begin: the open group never committed *)
          dropped := !dropped + List.length acc;
          in_group ~txn:txn' ~begin_off:f.f_offset ~last_off:f.f_offset [] rest
        | Solo_marker { txn = txn'; crc } ->
          (* a marker interrupting an open group: the group never
             committed *)
          dropped := !dropped + List.length acc;
          solo ~txn:txn' ~crc ~off:f.f_offset rest
        | Commit { txn = ctxn; count; crc } ->
          let recs = List.rev acc in
          let ok =
            ctxn = txn
            && count = List.length recs
            && crc = group_crc (List.map (fun r -> r.f_payload) recs)
          in
          if ok then commit_unit ~seq:txn recs
          else dropped := !dropped + List.length recs;
          walk rest)
  and limbo acc frames =
    match frames with
    | [] -> commit_bare (List.rev acc)
    | f :: rest -> (
      match f.f_kind with
      | Data -> limbo (f :: acc) rest
      | Begin { txn } ->
        commit_bare (List.rev acc);
        in_group ~txn ~begin_off:f.f_offset ~last_off:f.f_offset [] rest
      | Solo_marker { txn; crc } ->
        commit_bare (List.rev acc);
        solo ~txn ~crc ~off:f.f_offset rest
      | Commit _ ->
        (* the open group ran past the damage: a record is missing *)
        dropped := !dropped + List.length acc;
        walk rest)
  in
  walk frames;
  let units = List.rev !units in
  {
    g_units = units;
    g_committed = List.concat_map (fun u -> u.u_frames) units;
    g_dropped_records = !dropped;
    g_tail_records = !tail_records;
    g_tail_begin = !tail_begin;
  }

let read_all path =
  (* A damaged tail only loses the records after the damage; recovery
     keeps the intact prefix, mirroring WAL semantics. Records of a
     group whose commit marker never made it are invisible. *)
  let* s = scan path in
  Ok
    (List.map
       (fun f -> f.f_payload)
       (resolve_groups ~damage:s.scan_damage s.frames).g_committed)

let read_all_strict path =
  let* s = scan path in
  match s.scan_damage with
  | [] ->
    Ok (List.map (fun f -> f.f_payload) (resolve_groups s.frames).g_committed)
  | d :: _ ->
    fail
      (Corrupt
         (Printf.sprintf "journal %s: %s at offset %d" path d.d_reason
            d.d_offset))

let truncate ?(io = Io.real) ?(len = 0) path =
  wrap_io (fun () ->
      if io.Io.exists path then io.Io.truncate path len
      else if len <> 0 then
        raise (Sys_error (path ^ ": cannot truncate a missing journal"));
      (* sync the cut itself, then the directory entry: some filesystems
         would otherwise resurrect pre-truncation bytes after a crash *)
      let f = io.Io.open_append path in
      Fun.protect
        ~finally:(fun () -> f.Io.close ())
        (fun () -> f.Io.fsync ());
      io.Io.fsync_dir (Filename.dirname path))
