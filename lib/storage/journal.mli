(** Append-only journal with CRC-framed, epoch-tagged records.

    Record frame layout (little-endian):
    [magic u32 | epoch u32 | payload length u32 | crc32(payload) u32 | payload].

    The {e epoch} is the compaction epoch the record belongs to: a store
    bumps it on every successful compaction and tags the snapshot header
    with the same number, so a stale journal left behind by a crash
    mid-compaction is detected by epoch mismatch and skipped rather than
    replayed (see {!Store}).

    Recovery reads frames until end of file. Damage (partial frame, bad
    magic, CRC mismatch) does not stop the scan: the reader records the
    damaged region, hunts forward for the next offset where a whole
    valid frame parses (magic + CRC resync), and continues — corrupt
    mid-file frames are {e quarantined}, not fatal. Damage that reaches
    end of file is the classic torn tail, truncatable as before.

    {e Transaction groups.} {!append_group} brackets a batch of records
    between a begin marker and a commit marker (control frames under a
    distinct magic, same CRC'd envelope). The commit marker carries the
    record count and a CRC over the concatenated payloads, so recovery
    ({!resolve_groups}) replays a group only when all of it — including
    the commit — made it to disk; a crash mid-group durably persists
    {e none} of it. A {e single}-record group skips the markers entirely
    (a bare frame is already its own committed transaction), and a
    sequenced single-record transaction uses one fused {e solo} marker
    instead of a Begin/Commit pair. Bare data frames (old journals,
    single appends) remain individually committed, so pre-group journals
    replay unchanged.

    {e Sequence tags.} Begin, Commit and solo markers carry a caller
    supplied transaction sequence number. A partitioned store allocates
    these from one global counter, so recovery can merge several
    partition journals back into one total commit order
    ({!Store}). *)

type t
(** An open journal, positioned for appending. *)

val magic : int32

val control_magic : int32
(** Frame magic of transaction begin/commit/solo markers. *)

type sync_policy = [ `Always_fsync | `Flush_only | `None ]
(** Durability of {!append}:
    - [`Always_fsync] — every append is written and fsync'd before
      returning; an acknowledged record survives any crash.
    - [`Flush_only] — every append is written to the OS before
      returning; it survives a process crash but not a power failure
      before the next {!sync}.
    - [`None] — appends accumulate in memory until {!sync} or {!close};
      fastest, loses unsynced records even on a clean process crash. *)

val open_ :
  ?io:Io.t -> ?sync:sync_policy -> ?epoch:int -> string ->
  (t, Seed_util.Seed_error.t) result
(** Opens (creating if necessary) the journal at [path] for appending.
    Records are tagged with [epoch] (default 0); durability of appends
    follows [sync] (default [`Flush_only]). *)

val append : t -> string -> (unit, Seed_util.Seed_error.t) result
(** Appends one record, with the durability of the journal's
    {!sync_policy}. A bare record is its own committed transaction. *)

val append_group :
  ?seq:int -> t -> string list -> (unit, Seed_util.Seed_error.t) result
(** Appends the records as one atomic transaction group —
    [begin marker; records…; commit marker] — in a single write (and,
    under [`Always_fsync], a single fsync), so recovery sees either all
    of them or none. The markers carry [seq] (default: a per-journal
    counter). An empty list is a no-op; a singleton list is appended as
    a bare frame (same atomicity, no marker overhead, no sequence
    tag). *)

type entry =
  | Bare of string
      (** one record, individually committed, no sequence tag *)
  | Solo of { seq : int; payload : string }
      (** one record under a fused solo marker: atomic (trivially) and
          sequenced for cross-partition merge *)
  | Group of { seq : int; payloads : string list }
      (** an all-or-nothing multi-record group under Begin/Commit
          markers carrying [seq] *)

val append_entries : t -> entry list -> (unit, Seed_util.Seed_error.t) result
(** Appends a batch of independent transactions in {e one} physical
    write (and, under [`Always_fsync], one fsync) — the group-commit
    coalescing primitive used by {!Commit_daemon}. Each entry keeps its
    own atomicity: a crash mid-batch leaves every entry either whole or
    invisible to recovery. *)

val sync : t -> (unit, Seed_util.Seed_error.t) result
(** Writes any buffered records and fsyncs the journal file. *)

val close : t -> unit
(** Best-effort: buffered records are written if possible, then the
    descriptor is released. Errors are swallowed — call {!sync} first
    when durability matters. *)

val path : t -> string
val epoch : t -> int
val sync_policy : t -> sync_policy

(** {2 Recovery-side reads} *)

type kind =
  | Data  (** an ordinary record *)
  | Begin of { txn : int }  (** opens a transaction group *)
  | Commit of { txn : int; count : int; crc : int32 }
      (** closes a group: [count] records, [crc] over their
          concatenated payloads *)
  | Solo_marker of { txn : int; crc : int32 }
      (** fused begin+commit for the single data frame that follows *)

type frame = {
  f_epoch : int;  (** compaction epoch the record was appended under *)
  f_payload : string;
  f_offset : int;  (** byte offset of the frame's header in the file *)
  f_kind : kind;
}

type damage = {
  d_offset : int;  (** where the damaged region starts *)
  d_end : int;
      (** where scanning resynchronized (equals the file size when no
          later frame boundary was found — a torn tail) *)
  d_reason : string;  (** e.g. ["truncated payload"], ["crc mismatch"] *)
}

type scan_result = {
  frames : frame list;  (** intact frames, in append order *)
  scan_damage : damage list;
      (** damaged regions, in file order; [[]] when the file is intact *)
  file_size : int;
}

val scan : ?io:Io.t -> string -> (scan_result, Seed_util.Seed_error.t) result
(** Reads every intact frame of the journal at [path], skipping over
    damaged regions by magic/CRC resynchronization. A missing file
    yields an empty, undamaged result. Only I/O failures are errors —
    damage is data, reported in the result. *)

val tail_damage : scan_result -> damage option
(** The damaged region reaching end of file, if any — a torn tail that
    can be repaired by truncating at its [d_offset]. *)

val quarantined : scan_result -> damage list
(** Mid-file damaged regions (everything but the {!tail_damage}):
    skipped during replay and left in place, pending {!Store.fsck}
    [~repair] rewriting the journal. *)

val max_seq : frame list -> int
(** The largest transaction sequence number carried by any marker in
    [frames] (0 when there are none) — used to re-seed the global
    sequence counter on open. *)

type unit_ = {
  u_seq : int option;
      (** the transaction's sequence tag; [None] for bare records *)
  u_frames : frame list;  (** the transaction's data frames, in order *)
}
(** One committed transaction: a bare record, a solo record, or a whole
    group. The unit is the granularity at which partition journals are
    merged back into a total order. *)

type groups = {
  g_units : unit_ list;
      (** committed transactions in append order — the merge input *)
  g_committed : frame list;
      (** data frames safe to replay, in append order: bare records plus
          the records of every properly committed group (the
          concatenation of [g_units]) *)
  g_dropped_records : int;
      (** data records discarded because their group never committed (or
          its commit marker's count/CRC did not match) *)
  g_tail_records : int;
      (** of the dropped records, how many sit in an unterminated group
          at the very end of the frame list *)
  g_tail_begin : int option;
      (** offset of that unterminated tail group's begin (or dangling
          solo) marker — the natural truncation point *)
}

val resolve_groups : ?damage:damage list -> frame list -> groups
(** Resolves transaction groups over {!scan}'s intact frames. A
    [damage] region falling inside an open group is a barrier: the
    group's records before it are dropped, and the frames after it are
    decided by the next marker — a [Commit] drops them too (the group
    ran past the damage, so a record is missing), while a [Begin], a
    solo marker or the end of the journal replays them as independent
    appends (the damage ate the commit marker, not a record). *)

val read_all : string -> (string list, Seed_util.Seed_error.t) result
(** Committed payloads of {!scan}'s intact prefix, epoch-agnostic.
    Records of uncommitted groups are not returned. *)

val read_all_strict : string -> (string list, Seed_util.Seed_error.t) result
(** Like {!read_all} but any malformed byte — including a torn tail —
    is an error. Used by tests. *)

val truncate :
  ?io:Io.t -> ?len:int -> string -> (unit, Seed_util.Seed_error.t) result
(** Cuts the journal at [path] to [len] bytes (default 0, creating the
    file if missing), then fsyncs the file and its directory so the cut
    — and with it, compaction — is durable before the caller proceeds. *)
