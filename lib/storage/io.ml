type file = {
  write : string -> unit;
  fsync : unit -> unit;
  close : unit -> unit;
}

type t = {
  open_append : string -> file;
  open_trunc : string -> file;
  rename : string -> string -> unit;
  unlink : string -> unit;
  truncate : string -> int -> unit;
  fsync_dir : string -> unit;
  exists : string -> bool;
  read_file : string -> string;
}

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let of_fd fd =
  let closed = ref false in
  {
    write = (fun s -> write_all fd s);
    fsync = (fun () -> Unix.fsync fd);
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          Unix.close fd
        end);
  }

let open_flags flags path = of_fd (Unix.openfile path flags 0o644)

let fsync_dir dir =
  let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* some filesystems refuse fsync on a directory fd; treat that as
         "nothing to sync" rather than an error *)
      try Unix.fsync fd with
      | Unix.Unix_error ((Unix.EINVAL | Unix.EBADF), _, _) -> ())

let real =
  {
    open_append =
      open_flags [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ];
    open_trunc = open_flags [ Unix.O_WRONLY; Unix.O_TRUNC; Unix.O_CREAT ];
    rename = Sys.rename;
    unlink = Sys.remove;
    truncate = Unix.truncate;
    fsync_dir;
    exists = Sys.file_exists;
    read_file =
      (fun path -> In_channel.with_open_bin path In_channel.input_all);
  }
