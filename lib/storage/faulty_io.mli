(** Deterministic fault injection over {!Io}.

    A [Faulty_io.t] wraps a base I/O environment (usually {!Io.real})
    and numbers every mutating operation — open, write, fsync, rename,
    unlink, truncate, directory fsync — with a global step counter.
    Faults are scheduled against those numbers, which makes every
    failure reproducible:

    - {b crash}: before executing step [n] the injector raises {!Crash},
      simulating the process dying at that syscall. With [~torn:true] a
      crash landing on a write first emits a prefix of the bytes, so the
      on-disk state shows a torn frame. After a crash every further
      operation except [close] raises {!Crash} again — a dead process
      issues no more I/O (closing is permitted so [Fun.protect]
      finalizers in the code under test do not mask the crash).
    - {b failure}: the k-th operation of a given kind raises a
      [Unix.Unix_error] (EIO for fsync/rename, ENOSPC for writes — the
      ENOSPC write also emits a short prefix first, as a full disk
      would). The process lives on and sees the error as an [Error _]
      result, exercising the error paths of the storage layer.

    Counting a faultless run first ({!steps}) tells a sweep how many
    crash points the lifecycle has.

    {b Read faults} live on a separate counter ({!reads}) so they never
    shift the global crash-step schedule: [transient_reads:n] makes the
    first [n] reads raise EINTR (the transient class the retry layer
    absorbs); [eio_read:k] fails the k-th read with EIO (permanent);
    [short_read:k] returns only a prefix of the file; [flip_read:k]
    flips one bit in the middle of the returned bytes. [lie_fsync]
    makes every fsync report success without flushing — the classic
    lying-disk fault. After a crash, reads raise {!Crash} like any
    other operation (a dead process does no I/O). *)

exception Crash of { step : int; op : string }
(** Raised in place of performing the scheduled operation. Never caught
    by the storage layer: it propagates to the test harness like a
    process abort would. *)

type t

val create :
  ?base:Io.t ->
  ?crash_at:int ->
  ?torn:bool ->
  ?fail_fsync:int ->
  ?fail_rename:int ->
  ?enospc_write:int ->
  ?transient_reads:int ->
  ?eio_read:int ->
  ?short_read:int ->
  ?flip_read:int ->
  ?lie_fsync:bool ->
  unit ->
  t
(** [create ()] counts operations without injecting anything.
    [crash_at:n] crashes at global step [n] (0-based); [torn] makes a
    crash on a write leave half the bytes behind. [fail_fsync:k] /
    [fail_rename:k] / [enospc_write:k] fail the k-th operation of that
    kind (0-based; fsync counts file and directory fsyncs together).
    Read faults ([transient_reads], [eio_read], [short_read],
    [flip_read]) are scheduled against the separate read counter;
    [lie_fsync] silently drops every fsync. *)

val io : t -> Io.t
(** The injecting environment, to pass to [Store.open_dir] etc. *)

val steps : t -> int
(** Operations attempted so far (including the one that crashed).
    Reads are not included — see {!reads}. *)

val reads : t -> int
(** Whole-file reads attempted so far (separate from {!steps}). *)

val crashed : t -> bool
