(* Leader/follower group-commit coalescing.

   There is no background thread: the "daemon" is a role. The first
   committer to find no leader active becomes the leader, drains the
   whole queue, performs ONE physical append (and, under
   [`Always_fsync], one fsync) for everything drained, acks every
   follower, and keeps draining until the queue is empty. Committers
   arriving while a leader is mid-write enqueue and sleep; they are
   woken with their durability result when the leader's next batch
   lands. Under contention the fsync cost is amortized over the whole
   batch, which is where the fsyncs/txn << 1 scaling comes from.

   The adaptive commit window: with W writers, the writers of the batch
   being fsynced cannot re-enqueue until it completes, so rounds tend to
   alternate between large and singleton batches and the fsync
   amortization stalls near 2x. The leader therefore holds the drain in
   short naps of [coalesce] seconds while the round is still smaller
   than what contention suggests it could reach — the larger of the
   previous round's size and the store's count of writers currently in
   flight ([siblings], the commit_siblings idea) — stopping as soon as
   a nap brings no new arrival. Single-threaded neither signal ever
   exceeds the leader's own queued entry, so the window never fires and
   the uncontended latency is untouched. *)

module E = Seed_util.Seed_error

type stats = {
  submitted : int;
  batches : int;
  fsyncs : int;
  max_batch : int;
  queue_hwm : int;
}

let empty_stats =
  { submitted = 0; batches = 0; fsyncs = 0; max_batch = 0; queue_hwm = 0 }

let add_stats a b =
  {
    submitted = a.submitted + b.submitted;
    batches = a.batches + b.batches;
    fsyncs = a.fsyncs + b.fsyncs;
    max_batch = max a.max_batch b.max_batch;
    queue_hwm = max a.queue_hwm b.queue_hwm;
  }

type ticket = { mutable outcome : (unit, E.t) result option }

type t = {
  write : Journal.entry list -> (unit, E.t) result;
  counts_fsync : bool;
  coalesce : float;  (* commit-window nap length in seconds; 0 disables *)
  siblings : unit -> int;  (* writers currently in the store's write path *)
  m : Mutex.t;
  c : Condition.t;
  mutable queue : (Journal.entry * ticket) list;  (* newest first *)
  mutable queued : int;
  mutable leader : bool;
  mutable paused : bool;
  mutable last_round : int;  (* size of the previous drained batch *)
  mutable submitted : int;
  mutable batches : int;
  mutable fsyncs : int;
  mutable max_batch : int;
  mutable queue_hwm : int;
}

let create ?(coalesce = 0.) ?(siblings = fun () -> 0) ?(counts_fsync = false)
    write =
  {
    write;
    counts_fsync;
    coalesce;
    siblings;
    m = Mutex.create ();
    c = Condition.create ();
    queue = [];
    queued = 0;
    leader = false;
    paused = false;
    last_round = 1;
    submitted = 0;
    batches = 0;
    fsyncs = 0;
    max_batch = 0;
    queue_hwm = 0;
  }

(* Runs with [t.m] held; releases it around the physical write. On an
   exception from [write] (a fault injector's crash), every drained
   ticket is failed and waiters woken before the exception propagates,
   so follower domains never deadlock on a dead leader. *)
let lead t =
  while t.queued > 0 && not t.paused do
    (* Adaptive commit window (see header): while contention suggests
       the round can still grow — more writers in flight than queued
       here, or the previous round coalesced more — hold the drain so
       they land in this batch instead of forcing one fsync each.
       Stop as soon as a nap brings nobody new. *)
    (if t.coalesce > 0. then
       let target = max t.last_round (t.siblings ()) in
       let arrived = ref true in
       let naps = ref 0 in
       while !arrived && t.queued < target && !naps < 4 do
         let before = t.queued in
         incr naps;
         Mutex.unlock t.m;
         (try Unix.sleepf t.coalesce with _ -> ());
         Mutex.lock t.m;
         arrived := t.queued > before
       done);
    let batch = List.rev t.queue in
    t.queue <- [];
    t.queued <- 0;
    let n = List.length batch in
    t.last_round <- n;
    if n > t.max_batch then t.max_batch <- n;
    Mutex.unlock t.m;
    let res =
      try t.write (List.map fst batch)
      with e ->
        (* Re-raised with [t.m] held so the unlock in [submit]'s
           [finally] finds the invariant it expects. *)
        Mutex.lock t.m;
        List.iter
          (fun (_, tk) ->
            tk.outcome <- Some (E.fail (E.Io_error "commit leader crashed")))
          batch;
        t.leader <- false;
        Condition.broadcast t.c;
        raise e
    in
    Mutex.lock t.m;
    t.batches <- t.batches + 1;
    if t.counts_fsync && Result.is_ok res then t.fsyncs <- t.fsyncs + 1;
    List.iter (fun (_, tk) -> tk.outcome <- Some res) batch;
    Condition.broadcast t.c
  done

let rec drive t tk =
  match tk.outcome with
  | Some res -> res
  | None ->
      if t.leader || t.paused then (
        Condition.wait t.c t.m;
        drive t tk)
      else (
        t.leader <- true;
        Fun.protect
          ~finally:(fun () ->
            (* [lead] restores the lock and clears leadership itself on
               the exception path; on normal return we do it here. *)
            if t.leader then (
              t.leader <- false;
              Condition.broadcast t.c))
          (fun () -> lead t);
        drive t tk)

let submit t entry =
  Mutex.lock t.m;
  let tk = { outcome = None } in
  t.queue <- (entry, tk) :: t.queue;
  t.queued <- t.queued + 1;
  t.submitted <- t.submitted + 1;
  if t.queued > t.queue_hwm then t.queue_hwm <- t.queued;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () -> drive t tk)

let pause t =
  Mutex.lock t.m;
  t.paused <- true;
  while t.leader do
    Condition.wait t.c t.m
  done;
  Mutex.unlock t.m

let resume t =
  Mutex.lock t.m;
  t.paused <- false;
  Condition.broadcast t.c;
  Mutex.unlock t.m

let stats t =
  Mutex.lock t.m;
  let s =
    {
      submitted = t.submitted;
      batches = t.batches;
      fsyncs = t.fsyncs;
      max_batch = t.max_batch;
      queue_hwm = t.queue_hwm;
    }
  in
  Mutex.unlock t.m;
  s
