(* Table-driven CRC-32 with the reflected IEEE polynomial 0xEDB88320.

   The state and table live in native [int]s (the 32-bit value always
   fits): the per-byte step is then pure unboxed arithmetic, where an
   [Int32]-based loop allocates a boxed value per operation and runs an
   order of magnitude slower. This is on the commit path — every
   journal record is digested before its frame is written — so the
   byte loop is the hottest CPU in a write-heavy workload. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let mask32 = 0xFFFFFFFF

let digest_sub ?(init = 0l) buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.digest_sub";
  let t = Lazy.force table in
  let crc = ref (Int32.to_int (Int32.lognot init) land mask32) in
  for i = pos to pos + len - 1 do
    let byte = Char.code (Bytes.unsafe_get buf i) in
    crc := Array.unsafe_get t ((!crc lxor byte) land 0xff) lxor (!crc lsr 8)
  done;
  Int32.lognot (Int32.of_int !crc)

let digest ?init s =
  digest_sub ?init (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
