(** Snapshot + journal composition: the persistence engine.

    A store lives in a directory holding [snapshot.bin] and
    [journal.log], plus [snapshot.bin.1..N] — older snapshot
    {e generations} kept for fallback — and, transiently,
    [snapshot.bin.tmp] while a new snapshot is being written and
    [snapshot.bin.old] while the previous one is still mid-promotion.
    The client supplies a pure fold over its own state: opening a store
    loads the snapshot (if any) and replays the journal records appended
    since; {!append} adds a record; {!compact} writes a fresh snapshot
    and truncates the journal. All payloads are opaque strings —
    {!Seed_core.Persist} owns the encoding.

    {b Crash consistency.} Every compaction bumps a monotonically
    increasing {e epoch}, stamped on the snapshot header and on every
    journal frame. On open, a journal whose epoch predates the
    snapshot's is a leftover of a crash mid-compaction: its records are
    already folded into the snapshot, so it is skipped (and truncated)
    instead of replayed — correctness no longer rests on replay being
    idempotent. Compaction keeps the previous snapshot as
    [snapshot.bin.old] until the new snapshot and the truncated journal
    are both durable (including directory fsyncs), then retires it into
    generation slot 1 (older generations shift up, the oldest drops), so
    a crash at any point leaves at least one intact snapshot/journal
    pair — and media corruption of the newest snapshot still leaves the
    generations to fall back on.

    {b Self-healing recovery.} Transient I/O errors (EINTR class) are
    retried with bounded backoff ({!Seed_util.Retry}); journal damage
    found on open is re-read once before being trusted, so a flipped bit
    or short read on the wire never costs committed data. Real damage is
    handled by severity: a torn tail is truncated, a corrupt mid-file
    region is {e quarantined} — skipped by magic/CRC resynchronization,
    left in place for [fsck --repair] to excise — and an unreadable
    snapshot falls back generation by generation (the damaged primary is
    set aside as [snapshot.bin.corrupt]). The {!recovery} report says
    what open found and did. *)

type t

type sync_policy = Journal.sync_policy
(** Durability of {!append}; see {!Journal.sync_policy}. *)

(** {2 Partitioned write path}

    A store holds one or more journal {e partitions}: partition 0 is
    the legacy [journal.log], partitions 1..N-1 are [journal.p1..].
    Each partition has its own group-commit daemon
    ({!Commit_daemon}) — concurrently arriving transaction groups on
    the same partition coalesce into one physical write and one fsync;
    groups on different partitions proceed in parallel, each on its own
    fsync stream. A transaction group goes {e whole} to one partition
    (chosen by hashing the caller's routing [key]), so §9 all-or-nothing
    semantics stay partition-local. Every group's commit marker carries
    a sequence tag from one store-global counter; on open, the partition
    journals are each recovered independently and then merged by tag
    into one total replay order. The partition count is write-side
    configuration ({!open_dir}'s [partitions]) but read-side probed: a
    store written with 4 partitions reopens with 4 even under the
    default. *)

type recovery = {
  records_replayed : int;  (** journal records handed back to the client *)
  bytes_dropped : int;
      (** journal bytes discarded: a torn tail, an uncommitted
          transaction group, a stale journal and/or epoch-ahead
          leftovers *)
  txn_dropped : int;
      (** records discarded because their transaction group never
          committed — the all-or-nothing contract of
          {!Journal.append_group} *)
  torn_tail : string option;
      (** why the journal's tail was cut, when it was *)
  quarantined : Journal.damage list;
      (** corrupt mid-journal regions skipped by resynchronization and
          left in place (fsck [--repair] excises them) *)
  ahead_dropped : int;
      (** records stamped with an epoch newer than the recovered
          snapshot — appended after a snapshot that was later lost —
          and therefore unreplayable *)
  stale_journal : bool;
      (** a whole journal predating the snapshot's epoch was skipped *)
  used_fallback : bool;
      (** the state did not come from [snapshot.bin] *)
  snapshot_generation : int option;
      (** which generation slot recovery fell back to, when it had to go
          past the [snapshot.bin.old] fallback *)
  io_retries : int;
      (** transient I/O errors absorbed by retry during open *)
  epoch : int;  (** the store's compaction epoch after open *)
  partitions_merged : int;
      (** journal partitions recovered and merged into the replay (1
          for a legacy single-journal store) *)
}

val recovery_clean : recovery -> bool
(** No bytes dropped or quarantined, no stale journal, no fallback used.
    Absorbed transient retries do not make a recovery unclean. *)

val pp_recovery : Format.formatter -> recovery -> unit

val open_dir :
  ?io:Io.t ->
  ?sync:sync_policy ->
  ?generations:int ->
  ?partitions:int ->
  ?retry:Seed_util.Retry.policy ->
  ?sleep:(float -> unit) ->
  string ->
  (t * string option * string list * recovery, Seed_util.Seed_error.t)
  result
(** [open_dir dir] creates [dir] if needed and returns
    [(store, snapshot_payload, journal_records, recovery)] — everything
    needed to rebuild the client state, plus what recovery had to do to
    get there. [sync] (default [`Flush_only]) governs {!append};
    [generations] (default 2) how many old snapshots {!compact} keeps;
    [partitions] (default 1) how many journal partitions to write to
    (grown, never shrunk, by what is found on disk);
    [retry]/[sleep] the transient-fault retry policy and its clock.
    The replayed records are the merged total order across all
    partitions. *)

val append : ?key:string -> t -> string -> (unit, Seed_util.Seed_error.t) result
(** Appends a journal record with the store's {!sync_policy}, through
    the routed partition's group-commit daemon (concurrent appends
    coalesce into shared fsyncs). A bare record is its own committed
    transaction. Transient I/O errors are retried; a half-written first
    attempt is quarantined by the scanner and resynchronized over on
    recovery, so the retry cannot corrupt. *)

val append_group :
  ?key:string -> t -> string list -> (unit, Seed_util.Seed_error.t) result
(** Appends the records as one atomic transaction group: recovery
    replays either all of them or none, never a prefix. The group goes
    whole to the partition routed by [key]; callers whose groups can
    conflict must use the same key (the server routes by root-object
    id, which its lock table serializes on). An empty list is a no-op;
    a singleton takes the marker-free bare/solo fast path. See
    {!Journal.append_group}. *)

val sync : t -> (unit, Seed_util.Seed_error.t) result
(** Makes every appended record durable (fsync on every partition
    journal, daemons quiesced around it). *)

val partitions : t -> int
(** How many journal partitions the store is writing to. *)

val write_stats : t -> (int * Commit_daemon.stats) list
(** Per-partition group-commit counters (partition index, daemon
    stats): transactions submitted, physical batches, fsyncs, largest
    coalesced batch, queue high-water. Aggregate with
    {!Commit_daemon.add_stats}. *)

val compact : t -> snapshot:string -> (unit, Seed_util.Seed_error.t) result
(** Atomically replaces the snapshot with [snapshot] (under the next
    epoch), retires the previous snapshot into generation slot 1
    (shifting older generations up and dropping the oldest), and
    truncates the journal. On failure the store is left on its
    pre-compaction state and stays usable; a crash anywhere inside is
    recovered by {!open_dir} via the epoch check and the fallback
    chain. *)

val journal_size : t -> int
(** Records appended since the last compaction (this process's view). *)

val epoch : t -> int
(** The store's current compaction epoch. *)

val retries : t -> int
(** Transient I/O errors absorbed by retry over the store's lifetime
    (including the ones during open). *)

val close : t -> unit

val dir : t -> string

(** {2 Offline checking} *)

type file_status =
  | Absent
  | Intact of { epoch : int; bytes : int }
  | Damaged of string

type journal_health = {
  jh_frames : int;  (** committed data frames of the reference epoch *)
  jh_epoch : int option;  (** epoch of the partition's frames *)
  jh_torn_bytes : int;  (** bytes of damage reaching end of file *)
  jh_torn_reason : string option;
  jh_quarantined_regions : int;
  jh_quarantined_bytes : int;
  jh_stale : bool;  (** frames predating the snapshot's epoch *)
  jh_ahead : bool;  (** frames newer than the snapshot's epoch *)
  jh_dangling_records : int;
  jh_dangling_tail : bool;
  jh_healthy : bool;
}
(** Health of one journal partition — damage in one partition never
    taints another ([--repair] is partition-local too). *)

type fsck_report = {
  fsck_snapshot : file_status;
  fsck_fallback : file_status;  (** [snapshot.bin.old] *)
  fsck_generations : (int * file_status) list;
      (** generation slots present on disk ([snapshot.bin.k]) *)
  fsck_tmp_leftover : bool;  (** [snapshot.bin.tmp] exists *)
  fsck_partitions : (int * journal_health) list;
      (** per-partition journal health, partition 0 first *)
  fsck_journal_frames : int;
      (** intact frames of the current epoch, all partitions *)
  fsck_journal_epoch : int option;  (** epoch of the journals' frames *)
  fsck_torn_bytes : int;  (** bytes of damage reaching end of file *)
  fsck_torn_reason : string option;
  fsck_quarantined_regions : int;
      (** corrupt mid-journal regions (skipped on open, excised by
          [--repair]) *)
  fsck_quarantined_bytes : int;
  fsck_stale_journal : bool;  (** journal epoch predates the snapshot *)
  fsck_dangling_txn_records : int;
      (** records of transaction groups that never committed — invisible
          to replay, removed by [--repair] *)
  fsck_dangling_txn_tail : bool;
      (** a journal ends inside an unterminated group (the classic
          crash-mid-flush signature) *)
  fsck_healthy : bool;
  fsck_repairs : string list;  (** actions taken (with [~repair:true]) *)
}
(** The journal-level aggregate fields sum (or OR) over
    {!fsck_partitions}. *)

val fsck :
  ?io:Io.t -> ?repair:bool -> string ->
  (fsck_report, Seed_util.Seed_error.t) result
(** Reports the health of the store at [dir] without opening it for
    appending. With [repair]: truncates a torn tail, a stale journal or
    a dangling (uncommitted) transaction group, rewrites the journal to
    excise quarantined mid-file damage, removes leftover temporaries and
    damaged generations, promotes [snapshot.bin.old] — or, failing that,
    the newest intact generation — when [snapshot.bin] is missing or
    unreadable, and quarantines an unreadable snapshot (as
    [snapshot.bin.corrupt]) — after which {!open_dir} succeeds. *)

val pp_fsck_report : Format.formatter -> fsck_report -> unit
