exception Crash of { step : int; op : string }

let () =
  Printexc.register_printer (function
    | Crash { step; op } ->
      Some (Printf.sprintf "Faulty_io.Crash (step %d, %s)" step op)
    | _ -> None)

type t = {
  base : Io.t;
  crash_at : int option;
  torn : bool;
  fail_fsync : int option;
  fail_rename : int option;
  enospc_write : int option;
  transient_reads : int;
  eio_read : int option;
  short_read : int option;
  flip_read : int option;
  lie_fsync : bool;
  mutable step : int;
  mutable fsyncs : int;
  mutable renames : int;
  mutable writes : int;
  mutable read_count : int;
  mutable crashed : bool;
}

let create ?(base = Io.real) ?crash_at ?(torn = false) ?fail_fsync ?fail_rename
    ?enospc_write ?(transient_reads = 0) ?eio_read ?short_read ?flip_read
    ?(lie_fsync = false) () =
  {
    base;
    crash_at;
    torn;
    fail_fsync;
    fail_rename;
    enospc_write;
    transient_reads;
    eio_read;
    short_read;
    flip_read;
    lie_fsync;
    step = 0;
    fsyncs = 0;
    renames = 0;
    writes = 0;
    read_count = 0;
    crashed = false;
  }

let steps t = t.step
let reads t = t.read_count
let crashed t = t.crashed

(* Checks the crash schedule for the operation about to run. [partial]
   is run before dying when the fault is a torn write. *)
let gate t op ?partial () =
  if t.crashed then raise (Crash { step = t.step; op });
  let n = t.step in
  t.step <- n + 1;
  match t.crash_at with
  | Some c when c = n ->
    t.crashed <- true;
    (match partial with Some f when t.torn -> f () | _ -> ());
    raise (Crash { step = n; op })
  | _ -> ()

let count_of t = function
  | `Fsync ->
    let k = t.fsyncs in
    t.fsyncs <- k + 1;
    (k, t.fail_fsync)
  | `Rename ->
    let k = t.renames in
    t.renames <- k + 1;
    (k, t.fail_rename)
  | `Write ->
    let k = t.writes in
    t.writes <- k + 1;
    (k, t.enospc_write)

let failing t kind = match count_of t kind with k, Some f -> k = f | _ -> false

let half s = String.sub s 0 (String.length s / 2)

(* Reads keep their own counter so read faults never perturb the global
   crash-step schedule that write-path sweeps are calibrated against. *)
let faulty_read t path =
  if t.crashed then raise (Crash { step = t.step; op = "read " ^ path });
  let k = t.read_count in
  t.read_count <- k + 1;
  if k < t.transient_reads then
    raise (Unix.Unix_error (Unix.EINTR, "read", path));
  if t.eio_read = Some k then
    raise (Unix.Unix_error (Unix.EIO, "read", path));
  let s = t.base.Io.read_file path in
  let s = if t.short_read = Some k then half s else s in
  if t.flip_read = Some k && String.length s > 0 then begin
    (* flip one bit in the middle byte, deterministically *)
    let b = Bytes.of_string s in
    let i = Bytes.length b / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.unsafe_to_string b
  end
  else s

let wrap_file t path (f : Io.file) : Io.file =
  {
    Io.write =
      (fun s ->
        gate t ("write " ^ path) ~partial:(fun () -> f.Io.write (half s)) ();
        if failing t `Write then begin
          (* a full disk accepts a prefix, then refuses the rest *)
          f.Io.write (half s);
          raise (Unix.Unix_error (Unix.ENOSPC, "write", path))
        end;
        f.Io.write s);
    fsync =
      (fun () ->
        gate t ("fsync " ^ path) ();
        if failing t `Fsync then
          raise (Unix.Unix_error (Unix.EIO, "fsync", path));
        (* a lying fsync reports success without flushing anything *)
        if not t.lie_fsync then f.Io.fsync ());
    (* closing after a crash releases the descriptor (as the OS would)
       but, like every raw-fd close, flushes nothing *)
    close = (fun () -> f.Io.close ());
  }

let io t : Io.t =
  let b = t.base in
  {
    Io.open_append =
      (fun path ->
        gate t ("open_append " ^ path) ();
        wrap_file t path (b.Io.open_append path));
    open_trunc =
      (fun path ->
        gate t ("open_trunc " ^ path) ();
        wrap_file t path (b.Io.open_trunc path));
    rename =
      (fun src dst ->
        gate t ("rename " ^ dst) ();
        if failing t `Rename then
          raise (Unix.Unix_error (Unix.EIO, "rename", dst));
        b.Io.rename src dst);
    unlink =
      (fun path ->
        gate t ("unlink " ^ path) ();
        b.Io.unlink path);
    truncate =
      (fun path len ->
        gate t ("truncate " ^ path) ();
        b.Io.truncate path len);
    fsync_dir =
      (fun dir ->
        gate t ("fsync_dir " ^ dir) ();
        if failing t `Fsync then
          raise (Unix.Unix_error (Unix.EIO, "fsync", dir));
        if not t.lie_fsync then b.Io.fsync_dir dir);
    exists = b.Io.exists;
    read_file = (fun path -> faulty_read t path);
  }
