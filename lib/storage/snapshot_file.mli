(** Atomic whole-file snapshots, tagged with a compaction epoch.

    A snapshot is written to a temporary file in the same directory,
    fsync'd, renamed over the target, and the directory is fsync'd — so
    a crash mid-write never leaves a half-written snapshot behind, and a
    crash just after the rename cannot lose it either. A failed write
    unlinks the temporary file instead of leaving it around. The payload
    is framed with the journal magic, the epoch, and a CRC so {!read}
    can detect corruption and {!Store} can match the snapshot against
    the journal's epoch. *)

val write :
  ?io:Io.t -> string -> epoch:int -> string ->
  (unit, Seed_util.Seed_error.t) result
(** [write path ~epoch payload] atomically replaces [path]. *)

val read :
  ?io:Io.t -> string -> ((int * string) option, Seed_util.Seed_error.t) result
(** [read path] is [None] when no snapshot exists,
    [Some (epoch, payload)] when an intact one does, and [Corrupt]
    otherwise. Reads go through [io] so read faults are injectable. *)
