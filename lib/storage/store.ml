open Seed_util
open Seed_error

type sync_policy = Journal.sync_policy

type t = {
  dir : string;
  io : Io.t;
  sync_policy : sync_policy;
  mutable epoch : int;
  mutable journal : Journal.t option;
  mutable records : int;
}

let snapshot_path dir = Filename.concat dir "snapshot.bin"
let fallback_path dir = Filename.concat dir "snapshot.bin.old"
let tmp_path dir = Filename.concat dir "snapshot.bin.tmp"
let quarantine_path dir = Filename.concat dir "snapshot.bin.corrupt"
let journal_path dir = Filename.concat dir "journal.log"

let wrap_io f =
  try Ok (f ()) with
  | Sys_error m -> fail (Io_error m)
  | Unix.Unix_error (e, fn, arg) ->
    fail (Io_error (Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e)))

let ensure_dir dir =
  wrap_io (fun () ->
      if Sys.file_exists dir then begin
        if not (Sys.is_directory dir) then
          raise (Sys_error (dir ^ " exists and is not a directory"))
      end
      else Unix.mkdir dir 0o755)

(* ------------------------------------------------------------------ *)
(* Recovery                                                             *)
(* ------------------------------------------------------------------ *)

type recovery = {
  records_replayed : int;
  bytes_dropped : int;
  txn_dropped : int;
  torn_tail : string option;
  stale_journal : bool;
  used_fallback : bool;
  epoch : int;
}

let recovery_clean r =
  r.bytes_dropped = 0 && r.txn_dropped = 0
  && (not r.stale_journal)
  && not r.used_fallback

let pp_recovery ppf r =
  if recovery_clean r then
    Fmt.pf ppf "clean (epoch %d, %d records replayed)" r.epoch
      r.records_replayed
  else
    Fmt.pf ppf "epoch %d, %d records replayed, %d bytes dropped%s%s%s%s"
      r.epoch r.records_replayed r.bytes_dropped
      (match r.torn_tail with
      | Some reason -> Printf.sprintf ", torn tail (%s)" reason
      | None -> "")
      (if r.txn_dropped > 0 then
         Printf.sprintf ", %d uncommitted transaction record(s) discarded"
           r.txn_dropped
       else "")
      (if r.stale_journal then ", stale journal skipped" else "")
      (if r.used_fallback then ", recovered from snapshot fallback" else "")

(* Loads the authoritative snapshot: [snapshot.bin] when readable, the
   [snapshot.bin.old] compaction fallback when not. *)
let load_snapshot dir =
  let primary = Snapshot_file.read (snapshot_path dir) in
  match primary with
  | Ok (Some sp) -> Ok (Some sp, false)
  | Ok None | Error (Corrupt _) -> (
    match Snapshot_file.read (fallback_path dir) with
    | Ok (Some sp) -> Ok (Some sp, true)
    | fb -> (
      (* no usable fallback: report the primary's problem, or — when
         there is no primary at all — a damaged fallback, which would
         otherwise silently hide data *)
      match (primary, fb) with
      | Error e, _ -> Error e
      | Ok None, Error e -> Error e
      | _ -> Ok (None, false)))
  | Error e -> Error e

(* Sorts the scanned journal against the snapshot's epoch: which frames
   to replay, how many bytes are dead (torn tail and/or stale frames),
   and whether the file should be cut back on open. *)
let classify ~snap_epoch ~path (s : Journal.scan_result) =
  match
    List.find_opt (fun f -> f.Journal.f_epoch > snap_epoch) s.Journal.frames
  with
  | Some f ->
    fail
      (Corrupt
         (Printf.sprintf
            "journal %s: frame at offset %d has epoch %d ahead of snapshot \
             epoch %d — the snapshot it depends on is missing (run fsck)"
            path f.Journal.f_offset f.Journal.f_epoch snap_epoch))
  | None ->
    let live, stale =
      List.partition
        (fun f -> f.Journal.f_epoch = snap_epoch)
        s.Journal.frames
    in
    let groups = Journal.resolve_groups live in
    let committed = groups.Journal.g_committed in
    let prefix_end =
      match s.Journal.scan_damage with
      | Some d -> d.Journal.d_offset
      | None -> s.Journal.file_size
    in
    (* an unterminated transaction group at the tail is cut back along
       with any torn bytes: good data ends at its begin marker *)
    let keep_end =
      match groups.Journal.g_tail_begin with
      | Some off -> min off prefix_end
      | None -> prefix_end
    in
    let dead_tail_bytes = s.Journal.file_size - keep_end in
    let stale_bytes =
      List.fold_left
        (fun acc f -> acc + 16 + String.length f.Journal.f_payload)
        0 stale
    in
    let truncate_to =
      if committed = [] && (stale <> [] || dead_tail_bytes > 0) then Some 0
      else if dead_tail_bytes > 0 then Some keep_end
      else None
    in
    Ok
      ( committed,
        {
          records_replayed = List.length committed;
          bytes_dropped = dead_tail_bytes + stale_bytes;
          txn_dropped = groups.Journal.g_dropped_records;
          torn_tail =
            Option.map (fun d -> d.Journal.d_reason) s.Journal.scan_damage;
          stale_journal = stale <> [];
          used_fallback = false;
          epoch = snap_epoch;
        },
        truncate_to )

let open_dir ?(io = Io.real) ?(sync = `Flush_only) dir =
  let* () = ensure_dir dir in
  let* snap, used_fallback = load_snapshot dir in
  let* () =
    (* normalize: promote the fallback so [snapshot.bin] is again the
       authoritative copy (rename is atomic — a crash here is safe) *)
    if used_fallback then
      wrap_io (fun () ->
          io.Io.rename (fallback_path dir) (snapshot_path dir);
          io.Io.fsync_dir dir)
    else Ok ()
  in
  let* () =
    (* sweep compaction leftovers: an interrupted snapshot write leaves
       [snapshot.bin.tmp], an interrupted cleanup a now-redundant
       [snapshot.bin.old] — neither holds anything that is not already
       in the authoritative snapshot or the journal *)
    wrap_io (fun () ->
        let swept = ref false in
        List.iter
          (fun p ->
            if io.Io.exists p then begin
              io.Io.unlink p;
              swept := true
            end)
          [ tmp_path dir; fallback_path dir ];
        if !swept then io.Io.fsync_dir dir)
  in
  let snap_epoch = match snap with Some (e, _) -> e | None -> 0 in
  let jpath = journal_path dir in
  let* scanned = Journal.scan jpath in
  let* live, report, truncate_to = classify ~snap_epoch ~path:jpath scanned in
  let* () =
    (* cut damage back so it does not persist into the next session *)
    match truncate_to with
    | Some len when scanned.Journal.file_size > len ->
      Journal.truncate ~io ~len jpath
    | _ -> Ok ()
  in
  let* journal = Journal.open_ ~io ~sync ~epoch:snap_epoch jpath in
  Ok
    ( {
        dir;
        io;
        sync_policy = sync;
        epoch = snap_epoch;
        journal = Some journal;
        records = List.length live;
      },
      Option.map snd snap,
      List.map (fun f -> f.Journal.f_payload) live,
      { report with used_fallback } )

let journal_of t =
  match t.journal with
  | Some j -> Ok j
  | None -> fail (Io_error ("store closed: " ^ t.dir))

let append t payload =
  let* j = journal_of t in
  let* () = Journal.append j payload in
  t.records <- t.records + 1;
  Ok ()

let append_group t payloads =
  let* j = journal_of t in
  let* () = Journal.append_group j payloads in
  t.records <- t.records + List.length payloads;
  Ok ()

let sync t =
  let* j = journal_of t in
  Journal.sync j

let compact t ~snapshot =
  let* j = journal_of t in
  Journal.close j;
  t.journal <- None;
  let next = t.epoch + 1 in
  let io = t.io in
  let snap = snapshot_path t.dir and old = fallback_path t.dir in
  let reopen_journal ~epoch =
    let* j = Journal.open_ ~io ~sync:t.sync_policy ~epoch (journal_path t.dir) in
    t.journal <- Some j;
    Ok ()
  in
  (* step 1: set the previous snapshot aside as the fallback *)
  match wrap_io (fun () -> if io.Io.exists snap then io.Io.rename snap old) with
  | Error e ->
    let* () = reopen_journal ~epoch:t.epoch in
    Error e
  | Ok () -> (
    (* step 2: write the new snapshot under the next epoch (tmp file,
       fsync, rename, directory fsync — all inside Snapshot_file) *)
    match Snapshot_file.write ~io snap ~epoch:next snapshot with
    | Error e ->
      (* the new snapshot never landed: put the old one back *)
      (try
         if io.Io.exists old && not (io.Io.exists snap) then
           io.Io.rename old snap
       with Sys_error _ | Unix.Unix_error _ -> ());
      let* () = reopen_journal ~epoch:t.epoch in
      Error e
    | Ok () ->
      (* the new snapshot is durable: the store is at [next] from here
         on, even if the housekeeping below fails — recovery skips the
         now-stale journal by epoch mismatch *)
      t.epoch <- next;
      let housekeeping =
        let* () = Journal.truncate ~io (journal_path t.dir) in
        wrap_io (fun () -> if io.Io.exists old then io.Io.unlink old)
      in
      let* () = reopen_journal ~epoch:next in
      t.records <- 0;
      housekeeping)

let journal_size t = t.records
let epoch (t : t) = t.epoch

let close t =
  match t.journal with
  | None -> ()
  | Some j ->
    t.journal <- None;
    Journal.close j

let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Offline checking                                                     *)
(* ------------------------------------------------------------------ *)

type file_status =
  | Absent
  | Intact of { epoch : int; bytes : int }
  | Damaged of string

type fsck_report = {
  fsck_snapshot : file_status;
  fsck_fallback : file_status;
  fsck_tmp_leftover : bool;
  fsck_journal_frames : int;
  fsck_journal_epoch : int option;
  fsck_torn_bytes : int;
  fsck_torn_reason : string option;
  fsck_stale_journal : bool;
  fsck_dangling_txn_records : int;
  fsck_dangling_txn_tail : bool;
  fsck_healthy : bool;
  fsck_repairs : string list;
}

let status_of_snapshot path =
  match Snapshot_file.read path with
  | Ok None -> Ok Absent
  | Ok (Some (epoch, payload)) ->
    Ok (Intact { epoch; bytes = String.length payload })
  | Error (Corrupt m) -> Ok (Damaged m)
  | Error e -> Error e

let analyze dir =
  let* () = ensure_dir dir in
  let* snapshot = status_of_snapshot (snapshot_path dir) in
  let* fallback = status_of_snapshot (fallback_path dir) in
  let tmp = Sys.file_exists (tmp_path dir) in
  let* scanned = Journal.scan (journal_path dir) in
  let frames = scanned.Journal.frames in
  let snap_epoch =
    match (snapshot, fallback) with
    | Intact { epoch; _ }, _ -> Some epoch
    | _, Intact { epoch; _ } -> Some epoch
    | _ -> None
  in
  let reference = Option.value snap_epoch ~default:0 in
  let live = List.filter (fun f -> f.Journal.f_epoch = reference) frames in
  let stale = List.exists (fun f -> f.Journal.f_epoch < reference) frames in
  let ahead = List.exists (fun f -> f.Journal.f_epoch > reference) frames in
  let groups = Journal.resolve_groups live in
  let prefix_end =
    match scanned.Journal.scan_damage with
    | Some d -> d.Journal.d_offset
    | None -> scanned.Journal.file_size
  in
  let torn_bytes = scanned.Journal.file_size - prefix_end in
  let healthy =
    (match snapshot with
    | Intact _ -> true
    | Absent -> frames = [] || reference = 0
    | Damaged _ -> false)
    && (match fallback with Absent -> true | _ -> false)
    && (not tmp) && torn_bytes = 0 && (not stale) && (not ahead)
    && groups.Journal.g_dropped_records = 0
  in
  Ok
    {
      fsck_snapshot = snapshot;
      fsck_fallback = fallback;
      fsck_tmp_leftover = tmp;
      fsck_journal_frames = List.length groups.Journal.g_committed;
      fsck_journal_epoch =
        (match frames with f :: _ -> Some f.Journal.f_epoch | [] -> None);
      fsck_torn_bytes = torn_bytes;
      fsck_torn_reason =
        Option.map
          (fun d -> d.Journal.d_reason)
          scanned.Journal.scan_damage;
      fsck_stale_journal = stale;
      fsck_dangling_txn_records = groups.Journal.g_dropped_records;
      fsck_dangling_txn_tail = groups.Journal.g_tail_begin <> None;
      fsck_healthy = healthy;
      fsck_repairs = [];
    }

(* Rewrites the journal to contain exactly [frames], under [epoch]. Used
   by repair to drop a stale prefix while keeping the live tail. *)
let rewrite_journal ~io path ~epoch frames =
  let* () = Journal.truncate ~io path in
  let* j = Journal.open_ ~io ~sync:`Flush_only ~epoch path in
  let* () =
    iter_result (fun f -> Journal.append j f.Journal.f_payload) frames
  in
  let* () = Journal.sync j in
  Journal.close j;
  Ok ()

let repair_actions ~io dir report =
  let actions = ref [] in
  let act fmt = Printf.ksprintf (fun m -> actions := m :: !actions) fmt in
  let* () =
    if report.fsck_tmp_leftover then
      wrap_io (fun () ->
          io.Io.unlink (tmp_path dir);
          act "removed leftover snapshot.bin.tmp")
    else Ok ()
  in
  (* resolve the snapshot first; journal repairs depend on its epoch *)
  let* () =
    match (report.fsck_snapshot, report.fsck_fallback) with
    | (Absent | Damaged _), Intact _ ->
      wrap_io (fun () ->
          (match report.fsck_snapshot with
          | Damaged _ ->
            io.Io.rename (snapshot_path dir) (quarantine_path dir);
            act "quarantined unreadable snapshot.bin as snapshot.bin.corrupt"
          | _ -> ());
          io.Io.rename (fallback_path dir) (snapshot_path dir);
          io.Io.fsync_dir dir;
          act "promoted snapshot.bin.old to snapshot.bin")
    | Damaged _, _ ->
      wrap_io (fun () ->
          io.Io.rename (snapshot_path dir) (quarantine_path dir);
          io.Io.fsync_dir dir;
          act
            "quarantined unreadable snapshot.bin as snapshot.bin.corrupt (no \
             usable fallback — its data is lost)")
    | _ -> Ok ()
  in
  let* () =
    (* whatever is still at snapshot.bin.old is redundant or damaged *)
    if Sys.file_exists (fallback_path dir) then
      wrap_io (fun () ->
          io.Io.unlink (fallback_path dir);
          act "removed leftover snapshot.bin.old")
    else Ok ()
  in
  (* re-read the (possibly repaired) snapshot, then fix the journal *)
  let* snapshot = status_of_snapshot (snapshot_path dir) in
  let reference =
    match snapshot with Intact { epoch; _ } -> epoch | _ -> 0
  in
  let jpath = journal_path dir in
  let* scanned = Journal.scan jpath in
  let frames = scanned.Journal.frames in
  let live = List.filter (fun f -> f.Journal.f_epoch = reference) frames in
  let groups = Journal.resolve_groups live in
  let committed = groups.Journal.g_committed in
  let mid_dropped =
    groups.Journal.g_dropped_records - groups.Journal.g_tail_records
  in
  let prefix_end =
    match scanned.Journal.scan_damage with
    | Some d -> d.Journal.d_offset
    | None -> scanned.Journal.file_size
  in
  let torn_bytes = scanned.Journal.file_size - prefix_end in
  let* () =
    if List.length live <> List.length frames || mid_dropped > 0 then begin
      (* stale frames, frames with no snapshot to stand on, or dropped
         groups buried mid-journal — rewrite with exactly the committed
         records the current snapshot can base *)
      let* () = rewrite_journal ~io jpath ~epoch:reference committed in
      let other_epochs = List.length frames - List.length live in
      if other_epochs > 0 then
        act "dropped %d journal frame(s) from other epochs" other_epochs;
      if groups.Journal.g_dropped_records > 0 then
        act "dropped %d uncommitted transaction record(s)"
          groups.Journal.g_dropped_records;
      Ok ()
    end
    else
      match groups.Journal.g_tail_begin with
      | Some off ->
        (* the dangling group's begin marker is before any torn bytes,
           so one cut removes both *)
        let* () = Journal.truncate ~io ~len:(min off prefix_end) jpath in
        act
          "truncated a dangling transaction (%d uncommitted record(s), %d \
           byte(s))"
          groups.Journal.g_tail_records
          (scanned.Journal.file_size - min off prefix_end);
        Ok ()
      | None ->
        if torn_bytes > 0 then begin
          let* () = Journal.truncate ~io ~len:prefix_end jpath in
          act "truncated %d torn byte(s) off the journal tail" torn_bytes;
          Ok ()
        end
        else Ok ()
  in
  Ok (List.rev !actions)

let fsck ?(io = Io.real) ?(repair = false) dir =
  let* report = analyze dir in
  if (not repair) || report.fsck_healthy then Ok report
  else
    let* actions = repair_actions ~io dir report in
    let* after = analyze dir in
    Ok { after with fsck_repairs = actions }

let pp_file_status ppf = function
  | Absent -> Fmt.pf ppf "absent"
  | Intact { epoch; bytes } -> Fmt.pf ppf "intact (epoch %d, %d bytes)" epoch bytes
  | Damaged m -> Fmt.pf ppf "DAMAGED: %s" m

let pp_fsck_report ppf r =
  Fmt.pf ppf "snapshot.bin:      %a@." pp_file_status r.fsck_snapshot;
  (match r.fsck_fallback with
  | Absent -> ()
  | s -> Fmt.pf ppf "snapshot.bin.old:  %a (leftover fallback)@." pp_file_status s);
  if r.fsck_tmp_leftover then
    Fmt.pf ppf "snapshot.bin.tmp:  present (leftover of an interrupted write)@.";
  Fmt.pf ppf "journal.log:       %d live record(s)%s@." r.fsck_journal_frames
    (match r.fsck_journal_epoch with
    | Some e -> Printf.sprintf ", epoch %d" e
    | None -> ", empty");
  if r.fsck_stale_journal then
    Fmt.pf ppf "stale journal:     records predating the snapshot's epoch \
                (skipped on open)@.";
  if r.fsck_torn_bytes > 0 then
    Fmt.pf ppf "torn tail:         %d byte(s) — %s@." r.fsck_torn_bytes
      (Option.value r.fsck_torn_reason ~default:"damaged");
  if r.fsck_dangling_txn_records > 0 then
    Fmt.pf ppf
      "dangling txn:      %d uncommitted record(s)%s (discarded on open)@."
      r.fsck_dangling_txn_records
      (if r.fsck_dangling_txn_tail then " in an unterminated tail group"
       else "");
  List.iter (fun a -> Fmt.pf ppf "repaired:          %s@." a) r.fsck_repairs;
  Fmt.pf ppf "status:            %s@."
    (if r.fsck_healthy then "healthy" else "NEEDS ATTENTION")
