open Seed_util
open Seed_error

type sync_policy = Journal.sync_policy

type t = {
  dir : string;
  io : Io.t;
  sync_policy : sync_policy;
  retry : Retry.policy;
  sleep : (float -> unit) option;
  generations : int;
  mutable epoch : int;
  mutable journal : Journal.t option;
  mutable records : int;
  mutable retried : int;
}

let snapshot_path dir = Filename.concat dir "snapshot.bin"
let fallback_path dir = Filename.concat dir "snapshot.bin.old"
let tmp_path dir = Filename.concat dir "snapshot.bin.tmp"
let quarantine_path dir = Filename.concat dir "snapshot.bin.corrupt"
let journal_path dir = Filename.concat dir "journal.log"
let generation_path dir k = Printf.sprintf "%s.%d" (snapshot_path dir) k

let default_generations = 2

(* generation slots are probed, not configured, on the read side: a
   store reopened with a smaller [generations] must still see (and fsck
   must still clean) the slots an earlier configuration left behind *)
let max_generation_probe = 9

let wrap_io = Seed_error.wrap_io

let ensure_dir dir =
  wrap_io (fun () ->
      if Sys.file_exists dir then begin
        if not (Sys.is_directory dir) then
          raise (Sys_error (dir ^ " exists and is not a directory"))
      end
      else Unix.mkdir dir 0o755)

(* ------------------------------------------------------------------ *)
(* Recovery                                                             *)
(* ------------------------------------------------------------------ *)

type recovery = {
  records_replayed : int;
  bytes_dropped : int;
  txn_dropped : int;
  torn_tail : string option;
  quarantined : Journal.damage list;
  ahead_dropped : int;
  stale_journal : bool;
  used_fallback : bool;
  snapshot_generation : int option;
  io_retries : int;
  epoch : int;
}

let recovery_clean r =
  r.bytes_dropped = 0 && r.txn_dropped = 0
  && (not r.stale_journal)
  && (not r.used_fallback)
  && r.quarantined = [] && r.ahead_dropped = 0
  && r.snapshot_generation = None

let pp_recovery ppf r =
  if recovery_clean r then
    Fmt.pf ppf "clean (epoch %d, %d records replayed%s)" r.epoch
      r.records_replayed
      (if r.io_retries > 0 then
         Printf.sprintf ", %d transient i/o retr%s" r.io_retries
           (if r.io_retries = 1 then "y" else "ies")
       else "")
  else
    Fmt.pf ppf "epoch %d, %d records replayed, %d bytes dropped%s%s%s%s%s%s%s"
      r.epoch r.records_replayed r.bytes_dropped
      (match r.torn_tail with
      | Some reason -> Printf.sprintf ", torn tail (%s)" reason
      | None -> "")
      (match r.quarantined with
      | [] -> ""
      | ds ->
        Printf.sprintf ", %d damaged region(s) quarantined (%d byte(s))"
          (List.length ds)
          (List.fold_left
             (fun acc d -> acc + (d.Journal.d_end - d.Journal.d_offset))
             0 ds))
      (if r.txn_dropped > 0 then
         Printf.sprintf ", %d uncommitted transaction record(s) discarded"
           r.txn_dropped
       else "")
      (if r.ahead_dropped > 0 then
         Printf.sprintf
           ", %d record(s) ahead of the recovered snapshot discarded"
           r.ahead_dropped
       else "")
      (if r.stale_journal then ", stale journal skipped" else "")
      (match (r.used_fallback, r.snapshot_generation) with
      | _, Some g ->
        Printf.sprintf ", recovered from snapshot generation %d" g
      | true, None -> ", recovered from snapshot fallback"
      | false, None -> "")
      (if r.io_retries > 0 then
         Printf.sprintf ", %d transient i/o retr%s" r.io_retries
           (if r.io_retries = 1 then "y" else "ies")
       else "")

type snapshot_source = Src_primary | Src_fallback | Src_generation of int

(* Loads the newest readable snapshot, walking primary -> compaction
   fallback -> generations 1..N. Transient read errors are retried per
   [retry]; a Corrupt result is re-read once (the corruption may live in
   the transport, not the medium) before falling back a generation. *)
let load_snapshot ~io ~retry ~sleep ~count_retry dir =
  let read_one path =
    let corrupt_retried = ref false in
    Retry.with_retry ~policy:retry ?sleep
      ~should_retry:(function
        | Io_transient _ -> true
        | Corrupt _ when not !corrupt_retried ->
          corrupt_retried := true;
          true
        | _ -> false)
      ~on_retry:(fun ~attempt:_ _ -> count_retry ())
      (fun () -> Snapshot_file.read ~io path)
  in
  let candidates =
    (snapshot_path dir, Src_primary)
    :: (fallback_path dir, Src_fallback)
    :: List.init max_generation_probe (fun i ->
           (generation_path dir (i + 1), Src_generation (i + 1)))
  in
  let primary_damaged = ref false in
  let rec walk first_err = function
    | [] -> (
      (* nothing readable anywhere: absent store, or surface the first
         damage rather than silently hiding data *)
      match first_err with None -> Ok None | Some e -> Error e)
    | (path, src) :: rest -> (
      match read_one path with
      | Ok (Some sp) -> Ok (Some (sp, src))
      | Ok None -> walk first_err rest
      | Error e ->
        if src = Src_primary then primary_damaged := true;
        walk (if first_err = None then Some e else first_err) rest)
  in
  let* found = walk None candidates in
  match found with
  | None -> Ok (None, Src_primary, false)
  | Some (sp, src) -> Ok (Some sp, src, !primary_damaged)

(* Sorts the scanned journal against the snapshot's epoch: which frames
   to replay, how many bytes are dead (torn tail, stale or ahead frames),
   and whether the file should be cut back on open. [allow_ahead] is set
   when recovery fell back to an older snapshot: frames of a newer epoch
   are then unreplayable leftovers to drop (and report), not corruption. *)
let classify ~snap_epoch ~allow_ahead ~path (s : Journal.scan_result) =
  let ahead, rest =
    List.partition (fun f -> f.Journal.f_epoch > snap_epoch) s.Journal.frames
  in
  match ahead with
  | f :: _ when not allow_ahead ->
    fail
      (Corrupt
         (Printf.sprintf
            "journal %s: frame at offset %d has epoch %d ahead of snapshot \
             epoch %d — the snapshot it depends on is missing (run fsck)"
            path f.Journal.f_offset f.Journal.f_epoch snap_epoch))
  | _ ->
    let live, stale =
      List.partition (fun f -> f.Journal.f_epoch = snap_epoch) rest
    in
    let quarantined = Journal.quarantined s in
    let groups = Journal.resolve_groups ~damage:quarantined live in
    let committed = groups.Journal.g_committed in
    let prefix_end =
      match Journal.tail_damage s with
      | Some d -> d.Journal.d_offset
      | None -> s.Journal.file_size
    in
    (* an unterminated transaction group at the tail is cut back along
       with any torn bytes: good data ends at its begin marker *)
    let keep_end =
      match groups.Journal.g_tail_begin with
      | Some off -> min off prefix_end
      | None -> prefix_end
    in
    let dead_tail_bytes = s.Journal.file_size - keep_end in
    let frame_bytes fs =
      List.fold_left
        (fun acc f -> acc + 16 + String.length f.Journal.f_payload)
        0 fs
    in
    let stale_bytes = frame_bytes stale in
    let ahead_data =
      List.length
        (List.filter (fun f -> f.Journal.f_kind = Journal.Data) ahead)
    in
    let truncate_to =
      if
        committed = [] && quarantined = [] && ahead = []
        && (stale <> [] || dead_tail_bytes > 0)
      then Some 0
      else if dead_tail_bytes > 0 then Some keep_end
      else None
    in
    Ok
      ( committed,
        {
          records_replayed = List.length committed;
          bytes_dropped = dead_tail_bytes + stale_bytes + frame_bytes ahead;
          txn_dropped = groups.Journal.g_dropped_records;
          torn_tail =
            Option.map
              (fun d -> d.Journal.d_reason)
              (Journal.tail_damage s);
          quarantined;
          ahead_dropped = ahead_data;
          stale_journal = stale <> [];
          used_fallback = false;
          snapshot_generation = None;
          io_retries = 0;
          epoch = snap_epoch;
        },
        truncate_to )

(* Rewrites the journal to contain exactly [frames], under [epoch]. Used
   to drop a stale prefix, quarantined regions, or epoch-ahead leftovers
   while keeping the committed records. *)
let rewrite_journal ~io path ~epoch frames =
  let* () = Journal.truncate ~io path in
  let* j = Journal.open_ ~io ~sync:`Flush_only ~epoch path in
  let* () =
    iter_result (fun f -> Journal.append j f.Journal.f_payload) frames
  in
  let* () = Journal.sync j in
  Journal.close j;
  Ok ()

let open_dir ?(io = Io.real) ?(sync = `Flush_only)
    ?(generations = default_generations) ?(retry = Retry.default_policy)
    ?sleep dir =
  let retried = ref 0 in
  let count_retry () = incr retried in
  let* () = ensure_dir dir in
  let* snap, source, primary_damaged =
    load_snapshot ~io ~retry ~sleep ~count_retry dir
  in
  let* () =
    (* set a damaged primary aside before promoting anything over it *)
    if primary_damaged && snap <> None then
      wrap_io (fun () ->
          io.Io.rename (snapshot_path dir) (quarantine_path dir))
    else Ok ()
  in
  let* () =
    (* normalize: promote the recovered copy so [snapshot.bin] is again
       the authoritative one (rename is atomic — a crash here is safe) *)
    match source with
    | Src_primary -> Ok ()
    | Src_fallback ->
      wrap_io (fun () ->
          io.Io.rename (fallback_path dir) (snapshot_path dir);
          io.Io.fsync_dir dir)
    | Src_generation k ->
      wrap_io (fun () ->
          io.Io.rename (generation_path dir k) (snapshot_path dir);
          io.Io.fsync_dir dir)
  in
  let* () =
    (* sweep compaction leftovers: an interrupted snapshot write leaves
       [snapshot.bin.tmp]; an interrupted cleanup leaves
       [snapshot.bin.old], which becomes generation 1 (it is the
       previous epoch's snapshot — exactly what the slot holds) *)
    wrap_io (fun () ->
        let dirty = ref false in
        if io.Io.exists (tmp_path dir) then begin
          io.Io.unlink (tmp_path dir);
          dirty := true
        end;
        if io.Io.exists (fallback_path dir) then begin
          if generations > 0 && not (io.Io.exists (generation_path dir 1))
          then io.Io.rename (fallback_path dir) (generation_path dir 1)
          else io.Io.unlink (fallback_path dir);
          dirty := true
        end;
        if !dirty then io.Io.fsync_dir dir)
  in
  let snap_epoch = match snap with Some (e, _) -> e | None -> 0 in
  let jpath = journal_path dir in
  let scan_with_retry () =
    Retry.with_retry ~policy:retry ?sleep
      ~on_retry:(fun ~attempt:_ _ -> count_retry ())
      (fun () -> Journal.scan ~io jpath)
  in
  let* scanned = scan_with_retry () in
  let* scanned =
    (* read-repair double check: damage may live in the read path (a
       flipped bit on the wire, a short read), not on the medium — only
       damage that survives a second read is trusted, so a transient
       fault never truncates or quarantines committed records *)
    if scanned.Journal.scan_damage = [] then Ok scanned
    else begin
      count_retry ();
      scan_with_retry ()
    end
  in
  let* live, report, truncate_to =
    classify ~snap_epoch ~allow_ahead:(source <> Src_primary) ~path:jpath
      scanned
  in
  let* () =
    if report.ahead_dropped > 0 then
      (* epoch-ahead leftovers must not linger: a future compaction
         would reuse their epoch and mistake them for live records *)
      rewrite_journal ~io jpath ~epoch:snap_epoch live
    else
      (* cut tail damage back so it does not persist into the next
         session; quarantined mid-file regions stay (fsck rewrites) *)
      match truncate_to with
      | Some len when scanned.Journal.file_size > len ->
        Journal.truncate ~io ~len jpath
      | _ -> Ok ()
  in
  let* journal = Journal.open_ ~io ~sync ~epoch:snap_epoch jpath in
  Ok
    ( {
        dir;
        io;
        sync_policy = sync;
        retry;
        sleep;
        generations;
        epoch = snap_epoch;
        journal = Some journal;
        records = List.length live;
        retried = !retried;
      },
      Option.map snd snap,
      List.map (fun f -> f.Journal.f_payload) live,
      {
        report with
        used_fallback = source <> Src_primary;
        snapshot_generation =
          (match source with Src_generation k -> Some k | _ -> None);
        io_retries = !retried;
      } )

let journal_of t =
  match t.journal with
  | Some j -> Ok j
  | None -> fail (Io_error ("store closed: " ^ t.dir))

(* Transient write errors are retried here. Re-appending a frame whose
   first attempt half-landed is safe: the scanner quarantines the torn
   bytes and resynchronizes on the retried frame's header. *)
let with_retry t f =
  Retry.with_retry ~policy:t.retry ?sleep:t.sleep
    ~on_retry:(fun ~attempt:_ _ -> t.retried <- t.retried + 1)
    f

let append t payload =
  let* j = journal_of t in
  let* () = with_retry t (fun () -> Journal.append j payload) in
  t.records <- t.records + 1;
  Ok ()

let append_group t payloads =
  let* j = journal_of t in
  let* () = with_retry t (fun () -> Journal.append_group j payloads) in
  t.records <- t.records + List.length payloads;
  Ok ()

let sync t =
  let* j = journal_of t in
  with_retry t (fun () -> Journal.sync j)

let retries t = t.retried

(* Shifts snapshot generations up one slot (dropping the oldest) to free
   [snapshot.bin.1] for the snapshot being replaced. Every operation is
   existence-guarded, so a store without generations pays nothing. *)
let rotate_generations t =
  wrap_io (fun () ->
      let io = t.io in
      if t.generations > 0 then begin
        let last = generation_path t.dir t.generations in
        if io.Io.exists last then io.Io.unlink last;
        for k = t.generations - 1 downto 1 do
          let src = generation_path t.dir k in
          if io.Io.exists src then
            io.Io.rename src (generation_path t.dir (k + 1))
        done
      end)

let compact t ~snapshot =
  let* j = journal_of t in
  Journal.close j;
  t.journal <- None;
  let next = t.epoch + 1 in
  let io = t.io in
  let snap = snapshot_path t.dir and old = fallback_path t.dir in
  let reopen_journal ~epoch =
    let* j = Journal.open_ ~io ~sync:t.sync_policy ~epoch (journal_path t.dir) in
    t.journal <- Some j;
    Ok ()
  in
  (* step 0: make room in generation slot 1 for the snapshot being
     replaced (the previous generations shift up, the oldest drops) *)
  match rotate_generations t with
  | Error e ->
    let* () = reopen_journal ~epoch:t.epoch in
    Error e
  | Ok () -> (
    (* step 1: set the previous snapshot aside as the fallback *)
    match
      wrap_io (fun () -> if io.Io.exists snap then io.Io.rename snap old)
    with
    | Error e ->
      let* () = reopen_journal ~epoch:t.epoch in
      Error e
    | Ok () -> (
      (* step 2: write the new snapshot under the next epoch (tmp file,
         fsync, rename, directory fsync — all inside Snapshot_file) *)
      match
        with_retry t (fun () ->
            Snapshot_file.write ~io snap ~epoch:next snapshot)
      with
      | Error e ->
        (* the new snapshot never landed: put the old one back *)
        (try
           if io.Io.exists old && not (io.Io.exists snap) then
             io.Io.rename old snap
         with Sys_error _ | Unix.Unix_error _ -> ());
        let* () = reopen_journal ~epoch:t.epoch in
        Error e
      | Ok () ->
        (* the new snapshot is durable: the store is at [next] from here
           on, even if the housekeeping below fails — recovery skips the
           now-stale journal by epoch mismatch *)
        t.epoch <- next;
        let housekeeping =
          let* () = Journal.truncate ~io (journal_path t.dir) in
          wrap_io (fun () ->
              if io.Io.exists old then
                if
                  t.generations > 0
                  && not (io.Io.exists (generation_path t.dir 1))
                then begin
                  (* the replaced snapshot becomes generation 1 *)
                  io.Io.rename old (generation_path t.dir 1);
                  io.Io.fsync_dir t.dir
                end
                else io.Io.unlink old)
        in
        let* () = reopen_journal ~epoch:next in
        t.records <- 0;
        housekeeping))

let journal_size t = t.records
let epoch (t : t) = t.epoch

let close t =
  match t.journal with
  | None -> ()
  | Some j ->
    t.journal <- None;
    Journal.close j

let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Offline checking                                                     *)
(* ------------------------------------------------------------------ *)

type file_status =
  | Absent
  | Intact of { epoch : int; bytes : int }
  | Damaged of string

type fsck_report = {
  fsck_snapshot : file_status;
  fsck_fallback : file_status;
  fsck_generations : (int * file_status) list;
  fsck_tmp_leftover : bool;
  fsck_journal_frames : int;
  fsck_journal_epoch : int option;
  fsck_torn_bytes : int;
  fsck_torn_reason : string option;
  fsck_quarantined_regions : int;
  fsck_quarantined_bytes : int;
  fsck_stale_journal : bool;
  fsck_dangling_txn_records : int;
  fsck_dangling_txn_tail : bool;
  fsck_healthy : bool;
  fsck_repairs : string list;
}

let status_of_snapshot ?io path =
  match Snapshot_file.read ?io path with
  | Ok None -> Ok Absent
  | Ok (Some (epoch, payload)) ->
    Ok (Intact { epoch; bytes = String.length payload })
  | Error (Corrupt m) -> Ok (Damaged m)
  | Error e -> Error e

(* The generation slots on disk, present ones only (slots can be sparse
   after an interrupted rotation). *)
let generation_statuses ?io dir =
  let exists =
    match io with Some i -> i.Io.exists | None -> Sys.file_exists
  in
  let rec go k acc =
    if k > max_generation_probe then Ok (List.rev acc)
    else
      let p = generation_path dir k in
      if not (exists p) then go (k + 1) acc
      else
        let* st = status_of_snapshot ?io p in
        go (k + 1) ((k, st) :: acc)
  in
  go 1 []

let analyze ?io dir =
  let* () = ensure_dir dir in
  let* snapshot = status_of_snapshot ?io (snapshot_path dir) in
  let* fallback = status_of_snapshot ?io (fallback_path dir) in
  let* gens = generation_statuses ?io dir in
  let tmp = Sys.file_exists (tmp_path dir) in
  let* scanned = Journal.scan ?io (journal_path dir) in
  let frames = scanned.Journal.frames in
  let snap_epoch =
    match (snapshot, fallback) with
    | Intact { epoch; _ }, _ -> Some epoch
    | _, Intact { epoch; _ } -> Some epoch
    | _ -> (
      match
        List.find_opt (fun (_, st) -> match st with Intact _ -> true | _ -> false) gens
      with
      | Some (_, Intact { epoch; _ }) -> Some epoch
      | _ -> None)
  in
  let reference = Option.value snap_epoch ~default:0 in
  let live = List.filter (fun f -> f.Journal.f_epoch = reference) frames in
  let stale = List.exists (fun f -> f.Journal.f_epoch < reference) frames in
  let ahead = List.exists (fun f -> f.Journal.f_epoch > reference) frames in
  let quarantined = Journal.quarantined scanned in
  let groups = Journal.resolve_groups ~damage:quarantined live in
  let prefix_end =
    match Journal.tail_damage scanned with
    | Some d -> d.Journal.d_offset
    | None -> scanned.Journal.file_size
  in
  let torn_bytes = scanned.Journal.file_size - prefix_end in
  let gens_healthy =
    List.for_all
      (fun (_, st) -> match st with Intact _ -> true | _ -> false)
      gens
  in
  let healthy =
    (match snapshot with
    | Intact _ -> true
    | Absent -> frames = [] || reference = 0
    | Damaged _ -> false)
    && (match fallback with Absent -> true | _ -> false)
    && gens_healthy && (not tmp) && torn_bytes = 0 && quarantined = []
    && (not stale) && (not ahead)
    && groups.Journal.g_dropped_records = 0
  in
  Ok
    {
      fsck_snapshot = snapshot;
      fsck_fallback = fallback;
      fsck_generations = gens;
      fsck_tmp_leftover = tmp;
      fsck_journal_frames = List.length groups.Journal.g_committed;
      fsck_journal_epoch =
        (match frames with f :: _ -> Some f.Journal.f_epoch | [] -> None);
      fsck_torn_bytes = torn_bytes;
      fsck_torn_reason =
        Option.map
          (fun d -> d.Journal.d_reason)
          (Journal.tail_damage scanned);
      fsck_quarantined_regions = List.length quarantined;
      fsck_quarantined_bytes =
        List.fold_left
          (fun acc d -> acc + (d.Journal.d_end - d.Journal.d_offset))
          0 quarantined;
      fsck_stale_journal = stale;
      fsck_dangling_txn_records = groups.Journal.g_dropped_records;
      fsck_dangling_txn_tail = groups.Journal.g_tail_begin <> None;
      fsck_healthy = healthy;
      fsck_repairs = [];
    }

let repair_actions ~io dir report =
  let actions = ref [] in
  let act fmt = Printf.ksprintf (fun m -> actions := m :: !actions) fmt in
  let* () =
    if report.fsck_tmp_leftover then
      wrap_io (fun () ->
          io.Io.unlink (tmp_path dir);
          act "removed leftover snapshot.bin.tmp")
    else Ok ()
  in
  (* resolve the snapshot first; journal repairs depend on its epoch *)
  let newest_intact_generation =
    List.find_opt
      (fun (_, st) -> match st with Intact _ -> true | _ -> false)
      report.fsck_generations
  in
  let* () =
    match (report.fsck_snapshot, report.fsck_fallback) with
    | (Absent | Damaged _), Intact _ ->
      wrap_io (fun () ->
          (match report.fsck_snapshot with
          | Damaged _ ->
            io.Io.rename (snapshot_path dir) (quarantine_path dir);
            act "quarantined unreadable snapshot.bin as snapshot.bin.corrupt"
          | _ -> ());
          io.Io.rename (fallback_path dir) (snapshot_path dir);
          io.Io.fsync_dir dir;
          act "promoted snapshot.bin.old to snapshot.bin")
    | (Absent | Damaged _), (Absent | Damaged _)
      when newest_intact_generation <> None ->
      (* no primary or fallback to stand on: fall back a generation *)
      let k, _ = Option.get newest_intact_generation in
      wrap_io (fun () ->
          (match report.fsck_snapshot with
          | Damaged _ ->
            io.Io.rename (snapshot_path dir) (quarantine_path dir);
            act "quarantined unreadable snapshot.bin as snapshot.bin.corrupt"
          | _ -> ());
          io.Io.rename (generation_path dir k) (snapshot_path dir);
          io.Io.fsync_dir dir;
          act "promoted snapshot generation %d to snapshot.bin" k)
    | Damaged _, _ ->
      wrap_io (fun () ->
          io.Io.rename (snapshot_path dir) (quarantine_path dir);
          io.Io.fsync_dir dir;
          act
            "quarantined unreadable snapshot.bin as snapshot.bin.corrupt (no \
             usable fallback — its data is lost)")
    | _ -> Ok ()
  in
  let* () =
    (* whatever is still at snapshot.bin.old is redundant or damaged *)
    if Sys.file_exists (fallback_path dir) then
      wrap_io (fun () ->
          io.Io.unlink (fallback_path dir);
          act "removed leftover snapshot.bin.old")
    else Ok ()
  in
  let* () =
    (* a damaged generation can never be recovered from: drop it *)
    iter_result
      (fun (k, st) ->
        match st with
        | Damaged _ when Sys.file_exists (generation_path dir k) ->
          wrap_io (fun () ->
              io.Io.unlink (generation_path dir k);
              act "removed damaged snapshot generation %d" k)
        | _ -> Ok ())
      report.fsck_generations
  in
  (* re-read the (possibly repaired) snapshot, then fix the journal *)
  let* snapshot = status_of_snapshot ~io (snapshot_path dir) in
  let reference =
    match snapshot with Intact { epoch; _ } -> epoch | _ -> 0
  in
  let jpath = journal_path dir in
  let* scanned = Journal.scan ~io jpath in
  let frames = scanned.Journal.frames in
  let live = List.filter (fun f -> f.Journal.f_epoch = reference) frames in
  let quarantined = Journal.quarantined scanned in
  let groups = Journal.resolve_groups ~damage:quarantined live in
  let committed = groups.Journal.g_committed in
  let mid_dropped =
    groups.Journal.g_dropped_records - groups.Journal.g_tail_records
  in
  let prefix_end =
    match Journal.tail_damage scanned with
    | Some d -> d.Journal.d_offset
    | None -> scanned.Journal.file_size
  in
  let torn_bytes = scanned.Journal.file_size - prefix_end in
  let* () =
    if
      List.length live <> List.length frames
      || mid_dropped > 0 || quarantined <> []
    then begin
      (* stale or epoch-ahead frames, dropped groups buried mid-journal,
         or quarantined damage — rewrite with exactly the committed
         records the current snapshot can base *)
      let* () = rewrite_journal ~io jpath ~epoch:reference committed in
      let other_epochs = List.length frames - List.length live in
      if other_epochs > 0 then
        act "dropped %d journal frame(s) from other epochs" other_epochs;
      if quarantined <> [] then
        act "excised %d quarantined damaged region(s) (%d byte(s))"
          (List.length quarantined)
          (List.fold_left
             (fun acc d -> acc + (d.Journal.d_end - d.Journal.d_offset))
             0 quarantined);
      if groups.Journal.g_dropped_records > 0 then
        act "dropped %d uncommitted transaction record(s)"
          groups.Journal.g_dropped_records;
      Ok ()
    end
    else
      match groups.Journal.g_tail_begin with
      | Some off ->
        (* the dangling group's begin marker is before any torn bytes,
           so one cut removes both *)
        let* () = Journal.truncate ~io ~len:(min off prefix_end) jpath in
        act
          "truncated a dangling transaction (%d uncommitted record(s), %d \
           byte(s))"
          groups.Journal.g_tail_records
          (scanned.Journal.file_size - min off prefix_end);
        Ok ()
      | None ->
        if torn_bytes > 0 then begin
          let* () = Journal.truncate ~io ~len:prefix_end jpath in
          act "truncated %d torn byte(s) off the journal tail" torn_bytes;
          Ok ()
        end
        else Ok ()
  in
  Ok (List.rev !actions)

let fsck ?(io = Io.real) ?(repair = false) dir =
  let* report = analyze ~io dir in
  if (not repair) || report.fsck_healthy then Ok report
  else
    let* actions = repair_actions ~io dir report in
    let* after = analyze ~io dir in
    Ok { after with fsck_repairs = actions }

let pp_file_status ppf = function
  | Absent -> Fmt.pf ppf "absent"
  | Intact { epoch; bytes } -> Fmt.pf ppf "intact (epoch %d, %d bytes)" epoch bytes
  | Damaged m -> Fmt.pf ppf "DAMAGED: %s" m

let pp_fsck_report ppf r =
  Fmt.pf ppf "snapshot.bin:      %a@." pp_file_status r.fsck_snapshot;
  (match r.fsck_fallback with
  | Absent -> ()
  | s -> Fmt.pf ppf "snapshot.bin.old:  %a (leftover fallback)@." pp_file_status s);
  List.iter
    (fun (k, st) ->
      Fmt.pf ppf "snapshot.bin.%d:    %a (generation)@." k pp_file_status st)
    r.fsck_generations;
  if r.fsck_tmp_leftover then
    Fmt.pf ppf "snapshot.bin.tmp:  present (leftover of an interrupted write)@.";
  Fmt.pf ppf "journal.log:       %d live record(s)%s@." r.fsck_journal_frames
    (match r.fsck_journal_epoch with
    | Some e -> Printf.sprintf ", epoch %d" e
    | None -> ", empty");
  if r.fsck_stale_journal then
    Fmt.pf ppf "stale journal:     records predating the snapshot's epoch \
                (skipped on open)@.";
  if r.fsck_quarantined_regions > 0 then
    Fmt.pf ppf
      "quarantined:       %d damaged region(s), %d byte(s) (skipped on open, \
       excised by --repair)@."
      r.fsck_quarantined_regions r.fsck_quarantined_bytes;
  if r.fsck_torn_bytes > 0 then
    Fmt.pf ppf "torn tail:         %d byte(s) — %s@." r.fsck_torn_bytes
      (Option.value r.fsck_torn_reason ~default:"damaged");
  if r.fsck_dangling_txn_records > 0 then
    Fmt.pf ppf
      "dangling txn:      %d uncommitted record(s)%s (discarded on open)@."
      r.fsck_dangling_txn_records
      (if r.fsck_dangling_txn_tail then " in an unterminated tail group"
       else "");
  List.iter (fun a -> Fmt.pf ppf "repaired:          %s@." a) r.fsck_repairs;
  Fmt.pf ppf "status:            %s@."
    (if r.fsck_healthy then "healthy" else "NEEDS ATTENTION")
