open Seed_util
open Seed_error

type sync_policy = Journal.sync_policy

(* One journal partition: its file, its open journal, and the
   group-commit daemon that owns all physical appends to it. Partition 0
   keeps the legacy name [journal.log]; the rest are [journal.pK]. *)
type partition = {
  p_index : int;
  p_path : string;
  mutable p_journal : Journal.t option;
  mutable p_records : int;  (* data records since last compaction *)
  mutable p_daemon : Commit_daemon.t option;  (* Some after construction *)
}

type t = {
  dir : string;
  io : Io.t;
  sync_policy : sync_policy;
  retry : Retry.policy;
  sleep : (float -> unit) option;
  generations : int;
  mutable epoch : int;
  parts : partition array;
  seq : int Atomic.t;  (* global transaction sequence, shared by all partitions *)
  retried : int Atomic.t;
  active : int Atomic.t;  (* writers currently inside append/append_group *)
}

let snapshot_path dir = Filename.concat dir "snapshot.bin"
let fallback_path dir = Filename.concat dir "snapshot.bin.old"
let tmp_path dir = Filename.concat dir "snapshot.bin.tmp"
let quarantine_path dir = Filename.concat dir "snapshot.bin.corrupt"
let journal_path dir = Filename.concat dir "journal.log"
let generation_path dir k = Printf.sprintf "%s.%d" (snapshot_path dir) k

let partition_file dir k =
  if k = 0 then journal_path dir
  else Filename.concat dir (Printf.sprintf "journal.p%d" k)

let partition_name k =
  if k = 0 then "journal.log" else Printf.sprintf "journal.p%d" k

let default_generations = 2

(* generation slots are probed, not configured, on the read side: a
   store reopened with a smaller [generations] must still see (and fsck
   must still clean) the slots an earlier configuration left behind *)
let max_generation_probe = 9

(* likewise, partition files are probed on the read side: a store
   written with [~partitions:4] must replay all four journals even when
   reopened with the default, so the partition count only ever grows *)
let max_partition_probe = 15

let wrap_io = Seed_error.wrap_io

let ensure_dir dir =
  wrap_io (fun () ->
      if Sys.file_exists dir then begin
        if not (Sys.is_directory dir) then
          raise (Sys_error (dir ^ " exists and is not a directory"))
      end
      else Unix.mkdir dir 0o755)

(* ------------------------------------------------------------------ *)
(* Recovery                                                             *)
(* ------------------------------------------------------------------ *)

type recovery = {
  records_replayed : int;
  bytes_dropped : int;
  txn_dropped : int;
  torn_tail : string option;
  quarantined : Journal.damage list;
  ahead_dropped : int;
  stale_journal : bool;
  used_fallback : bool;
  snapshot_generation : int option;
  io_retries : int;
  epoch : int;
  partitions_merged : int;
}

let recovery_clean r =
  r.bytes_dropped = 0 && r.txn_dropped = 0
  && (not r.stale_journal)
  && (not r.used_fallback)
  && r.quarantined = [] && r.ahead_dropped = 0
  && r.snapshot_generation = None

let pp_recovery ppf r =
  let partitions =
    if r.partitions_merged > 1 then
      Printf.sprintf ", %d journal partitions merged" r.partitions_merged
    else ""
  in
  if recovery_clean r then
    Fmt.pf ppf "clean (epoch %d, %d records replayed%s%s)" r.epoch
      r.records_replayed partitions
      (if r.io_retries > 0 then
         Printf.sprintf ", %d transient i/o retr%s" r.io_retries
           (if r.io_retries = 1 then "y" else "ies")
       else "")
  else
    Fmt.pf ppf "epoch %d, %d records replayed%s, %d bytes dropped%s%s%s%s%s%s%s"
      r.epoch r.records_replayed partitions r.bytes_dropped
      (match r.torn_tail with
      | Some reason -> Printf.sprintf ", torn tail (%s)" reason
      | None -> "")
      (match r.quarantined with
      | [] -> ""
      | ds ->
        Printf.sprintf ", %d damaged region(s) quarantined (%d byte(s))"
          (List.length ds)
          (List.fold_left
             (fun acc d -> acc + (d.Journal.d_end - d.Journal.d_offset))
             0 ds))
      (if r.txn_dropped > 0 then
         Printf.sprintf ", %d uncommitted transaction record(s) discarded"
           r.txn_dropped
       else "")
      (if r.ahead_dropped > 0 then
         Printf.sprintf
           ", %d record(s) ahead of the recovered snapshot discarded"
           r.ahead_dropped
       else "")
      (if r.stale_journal then ", stale journal skipped" else "")
      (match (r.used_fallback, r.snapshot_generation) with
      | _, Some g ->
        Printf.sprintf ", recovered from snapshot generation %d" g
      | true, None -> ", recovered from snapshot fallback"
      | false, None -> "")
      (if r.io_retries > 0 then
         Printf.sprintf ", %d transient i/o retr%s" r.io_retries
           (if r.io_retries = 1 then "y" else "ies")
       else "")

type snapshot_source = Src_primary | Src_fallback | Src_generation of int

(* Loads the newest readable snapshot, walking primary -> compaction
   fallback -> generations 1..N. Transient read errors are retried per
   [retry]; a Corrupt result is re-read once (the corruption may live in
   the transport, not the medium) before falling back a generation. *)
let load_snapshot ~io ~retry ~sleep ~count_retry dir =
  let read_one path =
    let corrupt_retried = ref false in
    Retry.with_retry ~policy:retry ?sleep
      ~should_retry:(function
        | Io_transient _ -> true
        | Corrupt _ when not !corrupt_retried ->
          corrupt_retried := true;
          true
        | _ -> false)
      ~on_retry:(fun ~attempt:_ _ -> count_retry ())
      (fun () -> Snapshot_file.read ~io path)
  in
  let candidates =
    (snapshot_path dir, Src_primary)
    :: (fallback_path dir, Src_fallback)
    :: List.init max_generation_probe (fun i ->
           (generation_path dir (i + 1), Src_generation (i + 1)))
  in
  let primary_damaged = ref false in
  let rec walk first_err = function
    | [] -> (
      (* nothing readable anywhere: absent store, or surface the first
         damage rather than silently hiding data *)
      match first_err with None -> Ok None | Some e -> Error e)
    | (path, src) :: rest -> (
      match read_one path with
      | Ok (Some sp) -> Ok (Some (sp, src))
      | Ok None -> walk first_err rest
      | Error e ->
        if src = Src_primary then primary_damaged := true;
        walk (if first_err = None then Some e else first_err) rest)
  in
  let* found = walk None candidates in
  match found with
  | None -> Ok (None, Src_primary, false)
  | Some (sp, src) -> Ok (Some sp, src, !primary_damaged)

(* Sorts one scanned partition journal against the snapshot's epoch:
   which transaction units to replay, how many bytes are dead (torn
   tail, stale or ahead frames), and whether the file should be cut back
   on open. [allow_ahead] is set when recovery fell back to an older
   snapshot: frames of a newer epoch are then unreplayable leftovers to
   drop (and report), not corruption. *)
let classify ~snap_epoch ~allow_ahead ~path (s : Journal.scan_result) =
  let ahead, rest =
    List.partition (fun f -> f.Journal.f_epoch > snap_epoch) s.Journal.frames
  in
  match ahead with
  | f :: _ when not allow_ahead ->
    fail
      (Corrupt
         (Printf.sprintf
            "journal %s: frame at offset %d has epoch %d ahead of snapshot \
             epoch %d — the snapshot it depends on is missing (run fsck)"
            path f.Journal.f_offset f.Journal.f_epoch snap_epoch))
  | _ ->
    let live, stale =
      List.partition (fun f -> f.Journal.f_epoch = snap_epoch) rest
    in
    let quarantined = Journal.quarantined s in
    let groups = Journal.resolve_groups ~damage:quarantined live in
    let committed = groups.Journal.g_committed in
    let prefix_end =
      match Journal.tail_damage s with
      | Some d -> d.Journal.d_offset
      | None -> s.Journal.file_size
    in
    (* an unterminated transaction group at the tail is cut back along
       with any torn bytes: good data ends at its begin marker *)
    let keep_end =
      match groups.Journal.g_tail_begin with
      | Some off -> min off prefix_end
      | None -> prefix_end
    in
    let dead_tail_bytes = s.Journal.file_size - keep_end in
    let frame_bytes fs =
      List.fold_left
        (fun acc f -> acc + 16 + String.length f.Journal.f_payload)
        0 fs
    in
    let stale_bytes = frame_bytes stale in
    let ahead_data =
      List.length
        (List.filter (fun f -> f.Journal.f_kind = Journal.Data) ahead)
    in
    let truncate_to =
      if
        committed = [] && quarantined = [] && ahead = []
        && (stale <> [] || dead_tail_bytes > 0)
      then Some 0
      else if dead_tail_bytes > 0 then Some keep_end
      else None
    in
    Ok
      ( groups.Journal.g_units,
        {
          records_replayed = List.length committed;
          bytes_dropped = dead_tail_bytes + stale_bytes + frame_bytes ahead;
          txn_dropped = groups.Journal.g_dropped_records;
          torn_tail =
            Option.map
              (fun d -> d.Journal.d_reason)
              (Journal.tail_damage s);
          quarantined;
          ahead_dropped = ahead_data;
          stale_journal = stale <> [];
          used_fallback = false;
          snapshot_generation = None;
          io_retries = 0;
          epoch = snap_epoch;
          partitions_merged = 1;
        },
        truncate_to )

(* Rewrites a partition journal to contain exactly [units], under
   [epoch], preserving each unit's shape (bare / solo / group) and
   sequence tag so the cross-partition merge order survives the
   rewrite. Used to drop a stale prefix, quarantined regions, or
   epoch-ahead leftovers while keeping the committed records. *)
let rewrite_journal ~io path ~epoch units =
  let* () = Journal.truncate ~io path in
  let* j = Journal.open_ ~io ~sync:`Flush_only ~epoch path in
  let* () =
    iter_result
      (fun u ->
        let payloads =
          List.map (fun f -> f.Journal.f_payload) u.Journal.u_frames
        in
        match (u.Journal.u_seq, payloads) with
        | None, ps -> iter_result (Journal.append j) ps
        | Some seq, [ payload ] ->
          Journal.append_entries j [ Journal.Solo { seq; payload } ]
        | Some seq, ps -> Journal.append_group ~seq j ps)
      units
  in
  let* () = Journal.sync j in
  Journal.close j;
  Ok ()

(* Merges per-partition unit lists into one total replay order. Units
   carry the globally allocated sequence tag of their commit marker; an
   untagged (bare, legacy) unit inherits the last tag seen in its own
   partition, so it sorts right after the transaction it followed on
   disk. With a single populated partition the file order is kept as
   is — exactly the pre-partitioning semantics. *)
let merge_units per_part =
  match List.filter (fun us -> us <> []) per_part with
  | [] -> []
  | [ only ] -> only
  | _ ->
    let tag units =
      let last = ref 0 in
      List.map
        (fun u ->
          (match u.Journal.u_seq with Some s -> last := s | None -> ());
          (!last, u))
        units
    in
    List.concat_map tag per_part
    |> List.stable_sort (fun (s1, _) (s2, _) -> Int.compare s1 s2)
    |> List.map snd

let entry_records = function
  | Journal.Bare _ | Journal.Solo _ -> 1
  | Journal.Group { payloads; _ } -> List.length payloads

(* Builds a partition handle and its commit daemon. The daemon's write
   callback is the only code path that touches the journal for appends;
   transient write errors are retried there. Re-appending a batch whose
   first attempt half-landed is safe: the scanner quarantines the torn
   bytes and resynchronizes on the retried frames' headers. *)
let make_partition ~sync ~retry ~sleep ~retried ~active k path journal records
    =
  let p =
    {
      p_index = k;
      p_path = path;
      p_journal = Some journal;
      p_records = records;
      p_daemon = None;
    }
  in
  let write entries =
    match p.p_journal with
    | None -> fail (Io_error ("store closed: " ^ path))
    | Some j ->
      let* () =
        Retry.with_retry ~policy:retry ?sleep
          ~on_retry:(fun ~attempt:_ _ -> Atomic.incr retried)
          (fun () -> Journal.append_entries j entries)
      in
      p.p_records <-
        p.p_records + List.fold_left (fun acc e -> acc + entry_records e) 0 entries;
      Ok ()
  in
  (* The commit window only pays off when the physical write is
     dominated by an fsync worth amortizing; leave it off for buffered
     policies where writes are near-free. The nap request is tiny
     because the OS floor rounds it up to tens of microseconds — about
     half an fsync — which is the hold we actually want. *)
  let coalesce = if sync = `Always_fsync then 1e-5 else 0. in
  p.p_daemon <-
    Some
      (Commit_daemon.create ~coalesce
         ~siblings:(fun () -> Atomic.get active)
         ~counts_fsync:(sync = `Always_fsync) write);
  p

let daemon_of p = Option.get p.p_daemon

(* Partition files present on disk, as a count (file indexes are dense
   from the write side, but a missing [journal.pK] with a present
   [journal.pK+1] — say, after a manual delete — must not hide K+1). *)
let found_partition_count ~exists dir =
  let rec go k best =
    if k > max_partition_probe then best
    else go (k + 1) (if exists (partition_file dir k) then k + 1 else best)
  in
  go 1 1

let open_dir ?(io = Io.real) ?(sync = `Flush_only)
    ?(generations = default_generations) ?(partitions = 1)
    ?(retry = Retry.default_policy) ?sleep dir =
  let retried = Atomic.make 0 in
  let active = Atomic.make 0 in
  let count_retry () = Atomic.incr retried in
  let* () = ensure_dir dir in
  let* snap, source, primary_damaged =
    load_snapshot ~io ~retry ~sleep ~count_retry dir
  in
  let* () =
    (* set a damaged primary aside before promoting anything over it *)
    if primary_damaged && snap <> None then
      wrap_io (fun () ->
          io.Io.rename (snapshot_path dir) (quarantine_path dir))
    else Ok ()
  in
  let* () =
    (* normalize: promote the recovered copy so [snapshot.bin] is again
       the authoritative one (rename is atomic — a crash here is safe) *)
    match source with
    | Src_primary -> Ok ()
    | Src_fallback ->
      wrap_io (fun () ->
          io.Io.rename (fallback_path dir) (snapshot_path dir);
          io.Io.fsync_dir dir)
    | Src_generation k ->
      wrap_io (fun () ->
          io.Io.rename (generation_path dir k) (snapshot_path dir);
          io.Io.fsync_dir dir)
  in
  let* () =
    (* sweep compaction leftovers: an interrupted snapshot write leaves
       [snapshot.bin.tmp]; an interrupted cleanup leaves
       [snapshot.bin.old], which becomes generation 1 (it is the
       previous epoch's snapshot — exactly what the slot holds) *)
    wrap_io (fun () ->
        let dirty = ref false in
        if io.Io.exists (tmp_path dir) then begin
          io.Io.unlink (tmp_path dir);
          dirty := true
        end;
        if io.Io.exists (fallback_path dir) then begin
          if generations > 0 && not (io.Io.exists (generation_path dir 1))
          then io.Io.rename (fallback_path dir) (generation_path dir 1)
          else io.Io.unlink (fallback_path dir);
          dirty := true
        end;
        if !dirty then io.Io.fsync_dir dir)
  in
  let snap_epoch = match snap with Some (e, _) -> e | None -> 0 in
  let n_parts = max partitions (found_partition_count ~exists:io.Io.exists dir) in
  (* recover each partition independently, then merge *)
  let recover_partition k =
    let jpath = partition_file dir k in
    let scan_with_retry () =
      Retry.with_retry ~policy:retry ?sleep
        ~on_retry:(fun ~attempt:_ _ -> count_retry ())
        (fun () -> Journal.scan ~io jpath)
    in
    let* scanned = scan_with_retry () in
    let* scanned =
      (* read-repair double check: damage may live in the read path (a
         flipped bit on the wire, a short read), not on the medium — only
         damage that survives a second read is trusted, so a transient
         fault never truncates or quarantines committed records *)
      if scanned.Journal.scan_damage = [] then Ok scanned
      else begin
        count_retry ();
        scan_with_retry ()
      end
    in
    let* units, report, truncate_to =
      classify ~snap_epoch ~allow_ahead:(source <> Src_primary) ~path:jpath
        scanned
    in
    let* () =
      if report.ahead_dropped > 0 then
        (* epoch-ahead leftovers must not linger: a future compaction
           would reuse their epoch and mistake them for live records *)
        rewrite_journal ~io jpath ~epoch:snap_epoch units
      else
        (* cut tail damage back so it does not persist into the next
           session; quarantined mid-file regions stay (fsck rewrites) *)
        match truncate_to with
        | Some len when scanned.Journal.file_size > len ->
          Journal.truncate ~io ~len jpath
        | _ -> Ok ()
    in
    Ok (units, report, Journal.max_seq scanned.Journal.frames)
  in
  let rec recover_all k acc =
    if k >= n_parts then Ok (List.rev acc)
    else
      let* r = recover_partition k in
      recover_all (k + 1) (r :: acc)
  in
  let* recovered = recover_all 0 [] in
  let merged = merge_units (List.map (fun (us, _, _) -> us) recovered) in
  let live =
    List.concat_map (fun u -> u.Journal.u_frames) merged
    |> List.map (fun f -> f.Journal.f_payload)
  in
  let next_seq =
    1 + List.fold_left (fun acc (_, _, s) -> max acc s) 0 recovered
  in
  let report =
    List.fold_left
      (fun acc (_, r, _) ->
        {
          records_replayed = acc.records_replayed + r.records_replayed;
          bytes_dropped = acc.bytes_dropped + r.bytes_dropped;
          txn_dropped = acc.txn_dropped + r.txn_dropped;
          torn_tail =
            (if acc.torn_tail <> None then acc.torn_tail else r.torn_tail);
          quarantined = acc.quarantined @ r.quarantined;
          ahead_dropped = acc.ahead_dropped + r.ahead_dropped;
          stale_journal = acc.stale_journal || r.stale_journal;
          used_fallback = false;
          snapshot_generation = None;
          io_retries = 0;
          epoch = snap_epoch;
          partitions_merged = n_parts;
        })
      {
        records_replayed = 0;
        bytes_dropped = 0;
        txn_dropped = 0;
        torn_tail = None;
        quarantined = [];
        ahead_dropped = 0;
        stale_journal = false;
        used_fallback = false;
        snapshot_generation = None;
        io_retries = 0;
        epoch = snap_epoch;
        partitions_merged = n_parts;
      }
      (List.map (fun (_, r, _) -> ((), r, ())) recovered)
  in
  let rec open_parts k acc =
    if k >= n_parts then Ok (List.rev acc)
    else
      let jpath = partition_file dir k in
      let* j = Journal.open_ ~io ~sync ~epoch:snap_epoch jpath in
      let records =
        match List.nth_opt recovered k with
        | Some (us, _, _) ->
          List.fold_left (fun a u -> a + List.length u.Journal.u_frames) 0 us
        | None -> 0
      in
      open_parts (k + 1)
        (make_partition ~sync ~retry ~sleep ~retried ~active k jpath j records
        :: acc)
  in
  let* parts = open_parts 0 [] in
  Ok
    ( {
        dir;
        io;
        sync_policy = sync;
        retry;
        sleep;
        generations;
        epoch = snap_epoch;
        parts = Array.of_list parts;
        seq = Atomic.make next_seq;
        retried;
        active;
      },
      Option.map snd snap,
      live,
      {
        report with
        used_fallback = source <> Src_primary;
        snapshot_generation =
          (match source with Src_generation k -> Some k | _ -> None);
        io_retries = Atomic.get retried;
      } )

(* ------------------------------------------------------------------ *)
(* Writes                                                               *)
(* ------------------------------------------------------------------ *)

let partitions t = Array.length t.parts
let next_seq t = Atomic.fetch_and_add t.seq 1

(* Routing: a transaction group goes whole to one partition, chosen by
   hashing the caller's routing key (a root-object id / class hash);
   conflicting groups share a key — the server's lock table serializes
   them and their sequence tags are allocated in that order — so the
   per-partition daemons only ever run independent groups in parallel. *)
let partition_for t key =
  let n = Array.length t.parts in
  if n = 1 then t.parts.(0)
  else
    match key with
    | None -> t.parts.(0)
    | Some k -> t.parts.(Hashtbl.hash (k : string) mod n)

(* The in-flight writer count feeds the daemons' commit window: a
   leader holds its drain while other writers are still between here
   and their own enqueue. *)
let submit t p entry =
  Atomic.incr t.active;
  Fun.protect
    ~finally:(fun () -> Atomic.decr t.active)
    (fun () -> Commit_daemon.submit (daemon_of p) entry)

let append ?key t payload =
  let p = partition_for t key in
  let entry =
    if Array.length t.parts = 1 then Journal.Bare payload
    else Journal.Solo { seq = next_seq t; payload }
  in
  submit t p entry

let append_group ?key t payloads =
  match payloads with
  | [] -> Ok ()
  | [ payload ] -> append ?key t payload
  | _ ->
    let p = partition_for t key in
    submit t p (Journal.Group { seq = next_seq t; payloads })

let with_retry t f =
  Retry.with_retry ~policy:t.retry ?sleep:t.sleep
    ~on_retry:(fun ~attempt:_ _ -> Atomic.incr t.retried)
    f

(* Daemons are paused around direct journal access (sync, compaction):
   [Commit_daemon.pause] waits out the in-flight batch, so the journal
   is quiescent while we hold it. *)
let quiesced t f =
  Array.iter (fun p -> Commit_daemon.pause (daemon_of p)) t.parts;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun p -> Commit_daemon.resume (daemon_of p)) t.parts)
    (fun () -> f ())

let sync t =
  quiesced t (fun () ->
      Array.to_list t.parts
      |> iter_result (fun p ->
             match p.p_journal with
             | None -> fail (Io_error ("store closed: " ^ t.dir))
             | Some j -> with_retry t (fun () -> Journal.sync j)))

let retries t = Atomic.get t.retried

let write_stats t =
  Array.to_list t.parts
  |> List.map (fun p -> (p.p_index, Commit_daemon.stats (daemon_of p)))

(* ------------------------------------------------------------------ *)
(* Compaction                                                           *)
(* ------------------------------------------------------------------ *)

(* Shifts snapshot generations up one slot (dropping the oldest) to free
   [snapshot.bin.1] for the snapshot being replaced. Every operation is
   existence-guarded, so a store without generations pays nothing. *)
let rotate_generations t =
  wrap_io (fun () ->
      let io = t.io in
      if t.generations > 0 then begin
        let last = generation_path t.dir t.generations in
        if io.Io.exists last then io.Io.unlink last;
        for k = t.generations - 1 downto 1 do
          let src = generation_path t.dir k in
          if io.Io.exists src then
            io.Io.rename src (generation_path t.dir (k + 1))
        done
      end)

let close_journals t =
  Array.iter
    (fun p ->
      match p.p_journal with
      | None -> ()
      | Some j ->
        p.p_journal <- None;
        Journal.close j)
    t.parts

let reopen_journals t ~epoch =
  Array.to_list t.parts
  |> iter_result (fun p ->
         match p.p_journal with
         | Some _ -> Ok ()
         | None ->
           let* j =
             Journal.open_ ~io:t.io ~sync:t.sync_policy ~epoch p.p_path
           in
           p.p_journal <- Some j;
           Ok ())

let compact_quiesced t ~snapshot =
  close_journals t;
  let next = t.epoch + 1 in
  let io = t.io in
  let snap = snapshot_path t.dir and old = fallback_path t.dir in
  (* step 0: make room in generation slot 1 for the snapshot being
     replaced (the previous generations shift up, the oldest drops) *)
  match rotate_generations t with
  | Error e ->
    let* () = reopen_journals t ~epoch:t.epoch in
    Error e
  | Ok () -> (
    (* step 1: set the previous snapshot aside as the fallback *)
    match
      wrap_io (fun () -> if io.Io.exists snap then io.Io.rename snap old)
    with
    | Error e ->
      let* () = reopen_journals t ~epoch:t.epoch in
      Error e
    | Ok () -> (
      (* step 2: write the new snapshot under the next epoch (tmp file,
         fsync, rename, directory fsync — all inside Snapshot_file) *)
      match
        with_retry t (fun () ->
            Snapshot_file.write ~io snap ~epoch:next snapshot)
      with
      | Error e ->
        (* the new snapshot never landed: put the old one back *)
        (try
           if io.Io.exists old && not (io.Io.exists snap) then
             io.Io.rename old snap
         with Sys_error _ | Unix.Unix_error _ -> ());
        let* () = reopen_journals t ~epoch:t.epoch in
        Error e
      | Ok () ->
        (* the new snapshot is durable: the store is at [next] from here
           on, even if the housekeeping below fails — recovery skips the
           now-stale journals by epoch mismatch *)
        t.epoch <- next;
        let housekeeping =
          let* () =
            Array.to_list t.parts
            |> iter_result (fun p -> Journal.truncate ~io p.p_path)
          in
          wrap_io (fun () ->
              if io.Io.exists old then
                if
                  t.generations > 0
                  && not (io.Io.exists (generation_path t.dir 1))
                then begin
                  (* the replaced snapshot becomes generation 1 *)
                  io.Io.rename old (generation_path t.dir 1);
                  io.Io.fsync_dir t.dir
                end
                else io.Io.unlink old)
        in
        let* () = reopen_journals t ~epoch:next in
        Array.iter (fun p -> p.p_records <- 0) t.parts;
        housekeeping))

let compact t ~snapshot = quiesced t (fun () -> compact_quiesced t ~snapshot)

let journal_size t =
  Array.fold_left (fun acc p -> acc + p.p_records) 0 t.parts

let epoch (t : t) = t.epoch
let close t = close_journals t
let dir t = t.dir

(* ------------------------------------------------------------------ *)
(* Offline checking                                                     *)
(* ------------------------------------------------------------------ *)

type file_status =
  | Absent
  | Intact of { epoch : int; bytes : int }
  | Damaged of string

type journal_health = {
  jh_frames : int;  (** committed data frames of the reference epoch *)
  jh_epoch : int option;
  jh_torn_bytes : int;
  jh_torn_reason : string option;
  jh_quarantined_regions : int;
  jh_quarantined_bytes : int;
  jh_stale : bool;
  jh_ahead : bool;
  jh_dangling_records : int;
  jh_dangling_tail : bool;
  jh_healthy : bool;
}

type fsck_report = {
  fsck_snapshot : file_status;
  fsck_fallback : file_status;
  fsck_generations : (int * file_status) list;
  fsck_tmp_leftover : bool;
  fsck_partitions : (int * journal_health) list;
  fsck_journal_frames : int;
  fsck_journal_epoch : int option;
  fsck_torn_bytes : int;
  fsck_torn_reason : string option;
  fsck_quarantined_regions : int;
  fsck_quarantined_bytes : int;
  fsck_stale_journal : bool;
  fsck_dangling_txn_records : int;
  fsck_dangling_txn_tail : bool;
  fsck_healthy : bool;
  fsck_repairs : string list;
}

let status_of_snapshot ?io path =
  match Snapshot_file.read ?io path with
  | Ok None -> Ok Absent
  | Ok (Some (epoch, payload)) ->
    Ok (Intact { epoch; bytes = String.length payload })
  | Error (Corrupt m) -> Ok (Damaged m)
  | Error e -> Error e

(* The generation slots on disk, present ones only (slots can be sparse
   after an interrupted rotation). *)
let generation_statuses ?io dir =
  let exists =
    match io with Some i -> i.Io.exists | None -> Sys.file_exists
  in
  let rec go k acc =
    if k > max_generation_probe then Ok (List.rev acc)
    else
      let p = generation_path dir k in
      if not (exists p) then go (k + 1) acc
      else
        let* st = status_of_snapshot ?io p in
        go (k + 1) ((k, st) :: acc)
  in
  go 1 []

let analyze_journal ?io ~reference path =
  let* scanned = Journal.scan ?io path in
  let frames = scanned.Journal.frames in
  let live = List.filter (fun f -> f.Journal.f_epoch = reference) frames in
  let stale = List.exists (fun f -> f.Journal.f_epoch < reference) frames in
  let ahead = List.exists (fun f -> f.Journal.f_epoch > reference) frames in
  let quarantined = Journal.quarantined scanned in
  let groups = Journal.resolve_groups ~damage:quarantined live in
  let prefix_end =
    match Journal.tail_damage scanned with
    | Some d -> d.Journal.d_offset
    | None -> scanned.Journal.file_size
  in
  let torn_bytes = scanned.Journal.file_size - prefix_end in
  Ok
    {
      jh_frames = List.length groups.Journal.g_committed;
      jh_epoch =
        (match frames with f :: _ -> Some f.Journal.f_epoch | [] -> None);
      jh_torn_bytes = torn_bytes;
      jh_torn_reason =
        Option.map (fun d -> d.Journal.d_reason) (Journal.tail_damage scanned);
      jh_quarantined_regions = List.length quarantined;
      jh_quarantined_bytes =
        List.fold_left
          (fun acc d -> acc + (d.Journal.d_end - d.Journal.d_offset))
          0 quarantined;
      jh_stale = stale;
      jh_ahead = ahead;
      jh_dangling_records = groups.Journal.g_dropped_records;
      jh_dangling_tail = groups.Journal.g_tail_begin <> None;
      jh_healthy =
        torn_bytes = 0 && quarantined = [] && (not stale) && (not ahead)
        && groups.Journal.g_dropped_records = 0;
    }

let analyze ?io dir =
  let* () = ensure_dir dir in
  let* snapshot = status_of_snapshot ?io (snapshot_path dir) in
  let* fallback = status_of_snapshot ?io (fallback_path dir) in
  let* gens = generation_statuses ?io dir in
  let tmp = Sys.file_exists (tmp_path dir) in
  let snap_epoch =
    match (snapshot, fallback) with
    | Intact { epoch; _ }, _ -> Some epoch
    | _, Intact { epoch; _ } -> Some epoch
    | _ -> (
      match
        List.find_opt (fun (_, st) -> match st with Intact _ -> true | _ -> false) gens
      with
      | Some (_, Intact { epoch; _ }) -> Some epoch
      | _ -> None)
  in
  let reference = Option.value snap_epoch ~default:0 in
  let exists =
    match io with Some i -> i.Io.exists | None -> Sys.file_exists
  in
  let n_parts = found_partition_count ~exists dir in
  let rec per_partition k acc =
    if k >= n_parts then Ok (List.rev acc)
    else
      let* jh = analyze_journal ?io ~reference (partition_file dir k) in
      per_partition (k + 1) ((k, jh) :: acc)
  in
  let* parts = per_partition 0 [] in
  let sum f = List.fold_left (fun acc (_, jh) -> acc + f jh) 0 parts in
  let any f = List.exists (fun (_, jh) -> f jh) parts in
  let first f =
    List.fold_left
      (fun acc (_, jh) -> if acc = None then f jh else acc)
      None parts
  in
  let total_frames = sum (fun jh -> jh.jh_frames) in
  let gens_healthy =
    List.for_all
      (fun (_, st) -> match st with Intact _ -> true | _ -> false)
      gens
  in
  let healthy =
    (match snapshot with
    | Intact _ -> true
    | Absent -> total_frames = 0 || reference = 0
    | Damaged _ -> false)
    && (match fallback with Absent -> true | _ -> false)
    && gens_healthy && (not tmp)
    && List.for_all (fun (_, jh) -> jh.jh_healthy) parts
  in
  Ok
    {
      fsck_snapshot = snapshot;
      fsck_fallback = fallback;
      fsck_generations = gens;
      fsck_tmp_leftover = tmp;
      fsck_partitions = parts;
      fsck_journal_frames = total_frames;
      fsck_journal_epoch = first (fun jh -> jh.jh_epoch);
      fsck_torn_bytes = sum (fun jh -> jh.jh_torn_bytes);
      fsck_torn_reason = first (fun jh -> jh.jh_torn_reason);
      fsck_quarantined_regions = sum (fun jh -> jh.jh_quarantined_regions);
      fsck_quarantined_bytes = sum (fun jh -> jh.jh_quarantined_bytes);
      fsck_stale_journal = any (fun jh -> jh.jh_stale);
      fsck_dangling_txn_records = sum (fun jh -> jh.jh_dangling_records);
      fsck_dangling_txn_tail = any (fun jh -> jh.jh_dangling_tail);
      fsck_healthy = healthy;
      fsck_repairs = [];
    }

(* Repairs one partition journal against the (already repaired)
   snapshot's epoch: rewrites it when stale/ahead frames, mid-journal
   drops or quarantined damage are buried inside, otherwise truncates a
   dangling tail group and/or torn tail bytes. *)
let repair_journal ~io ~add ~reference dir k =
  let act fmt = Printf.ksprintf add fmt in
  let jpath = partition_file dir k in
  let jname = partition_name k in
  let* scanned = Journal.scan ~io jpath in
  let frames = scanned.Journal.frames in
  let live = List.filter (fun f -> f.Journal.f_epoch = reference) frames in
  let quarantined = Journal.quarantined scanned in
  let groups = Journal.resolve_groups ~damage:quarantined live in
  let mid_dropped =
    groups.Journal.g_dropped_records - groups.Journal.g_tail_records
  in
  let prefix_end =
    match Journal.tail_damage scanned with
    | Some d -> d.Journal.d_offset
    | None -> scanned.Journal.file_size
  in
  let torn_bytes = scanned.Journal.file_size - prefix_end in
  if
    List.length live <> List.length frames
    || mid_dropped > 0 || quarantined <> []
  then begin
    (* stale or epoch-ahead frames, dropped groups buried mid-journal,
       or quarantined damage — rewrite with exactly the committed
       records the current snapshot can base *)
    let* () =
      rewrite_journal ~io jpath ~epoch:reference groups.Journal.g_units
    in
    let other_epochs = List.length frames - List.length live in
    if other_epochs > 0 then
      act "%s: dropped %d frame(s) from other epochs" jname other_epochs;
    if quarantined <> [] then
      act "%s: excised %d quarantined damaged region(s) (%d byte(s))" jname
        (List.length quarantined)
        (List.fold_left
           (fun acc d -> acc + (d.Journal.d_end - d.Journal.d_offset))
           0 quarantined);
    if groups.Journal.g_dropped_records > 0 then
      act "%s: dropped %d uncommitted transaction record(s)" jname
        groups.Journal.g_dropped_records;
    Ok ()
  end
  else
    match groups.Journal.g_tail_begin with
    | Some off ->
      (* the dangling group's begin marker is before any torn bytes,
         so one cut removes both *)
      let* () = Journal.truncate ~io ~len:(min off prefix_end) jpath in
      act
        "%s: truncated a dangling transaction (%d uncommitted record(s), %d \
         byte(s))"
        jname groups.Journal.g_tail_records
        (scanned.Journal.file_size - min off prefix_end);
      Ok ()
    | None ->
      if torn_bytes > 0 then begin
        let* () = Journal.truncate ~io ~len:prefix_end jpath in
        act "%s: truncated %d torn byte(s) off the tail" jname torn_bytes;
        Ok ()
      end
      else Ok ()

let repair_actions ~io dir report =
  let actions = ref [] in
  let act fmt = Printf.ksprintf (fun m -> actions := m :: !actions) fmt in
  let* () =
    if report.fsck_tmp_leftover then
      wrap_io (fun () ->
          io.Io.unlink (tmp_path dir);
          act "removed leftover snapshot.bin.tmp")
    else Ok ()
  in
  (* resolve the snapshot first; journal repairs depend on its epoch *)
  let newest_intact_generation =
    List.find_opt
      (fun (_, st) -> match st with Intact _ -> true | _ -> false)
      report.fsck_generations
  in
  let* () =
    match (report.fsck_snapshot, report.fsck_fallback) with
    | (Absent | Damaged _), Intact _ ->
      wrap_io (fun () ->
          (match report.fsck_snapshot with
          | Damaged _ ->
            io.Io.rename (snapshot_path dir) (quarantine_path dir);
            act "quarantined unreadable snapshot.bin as snapshot.bin.corrupt"
          | _ -> ());
          io.Io.rename (fallback_path dir) (snapshot_path dir);
          io.Io.fsync_dir dir;
          act "promoted snapshot.bin.old to snapshot.bin")
    | (Absent | Damaged _), (Absent | Damaged _)
      when newest_intact_generation <> None ->
      (* no primary or fallback to stand on: fall back a generation *)
      let k, _ = Option.get newest_intact_generation in
      wrap_io (fun () ->
          (match report.fsck_snapshot with
          | Damaged _ ->
            io.Io.rename (snapshot_path dir) (quarantine_path dir);
            act "quarantined unreadable snapshot.bin as snapshot.bin.corrupt"
          | _ -> ());
          io.Io.rename (generation_path dir k) (snapshot_path dir);
          io.Io.fsync_dir dir;
          act "promoted snapshot generation %d to snapshot.bin" k)
    | Damaged _, _ ->
      wrap_io (fun () ->
          io.Io.rename (snapshot_path dir) (quarantine_path dir);
          io.Io.fsync_dir dir;
          act
            "quarantined unreadable snapshot.bin as snapshot.bin.corrupt (no \
             usable fallback — its data is lost)")
    | _ -> Ok ()
  in
  let* () =
    (* whatever is still at snapshot.bin.old is redundant or damaged *)
    if Sys.file_exists (fallback_path dir) then
      wrap_io (fun () ->
          io.Io.unlink (fallback_path dir);
          act "removed leftover snapshot.bin.old")
    else Ok ()
  in
  let* () =
    (* a damaged generation can never be recovered from: drop it *)
    iter_result
      (fun (k, st) ->
        match st with
        | Damaged _ when Sys.file_exists (generation_path dir k) ->
          wrap_io (fun () ->
              io.Io.unlink (generation_path dir k);
              act "removed damaged snapshot generation %d" k)
        | _ -> Ok ())
      report.fsck_generations
  in
  (* re-read the (possibly repaired) snapshot, then fix each journal
     partition — quarantine and repair stay partition-local *)
  let* snapshot = status_of_snapshot ~io (snapshot_path dir) in
  let reference =
    match snapshot with Intact { epoch; _ } -> epoch | _ -> 0
  in
  let* () =
    iter_result
      (fun (k, _) ->
        repair_journal ~io ~add:(fun m -> actions := m :: !actions) ~reference
          dir k)
      report.fsck_partitions
  in
  Ok (List.rev !actions)

let fsck ?(io = Io.real) ?(repair = false) dir =
  let* report = analyze ~io dir in
  if (not repair) || report.fsck_healthy then Ok report
  else
    let* actions = repair_actions ~io dir report in
    let* after = analyze ~io dir in
    Ok { after with fsck_repairs = actions }

let pp_file_status ppf = function
  | Absent -> Fmt.pf ppf "absent"
  | Intact { epoch; bytes } -> Fmt.pf ppf "intact (epoch %d, %d bytes)" epoch bytes
  | Damaged m -> Fmt.pf ppf "DAMAGED: %s" m

let pp_fsck_report ppf r =
  Fmt.pf ppf "snapshot.bin:      %a@." pp_file_status r.fsck_snapshot;
  (match r.fsck_fallback with
  | Absent -> ()
  | s -> Fmt.pf ppf "snapshot.bin.old:  %a (leftover fallback)@." pp_file_status s);
  List.iter
    (fun (k, st) ->
      Fmt.pf ppf "snapshot.bin.%d:    %a (generation)@." k pp_file_status st)
    r.fsck_generations;
  if r.fsck_tmp_leftover then
    Fmt.pf ppf "snapshot.bin.tmp:  present (leftover of an interrupted write)@.";
  List.iter
    (fun (k, jh) ->
      Fmt.pf ppf "%-18s %d live record(s)%s%s@."
        (partition_name k ^ ":")
        jh.jh_frames
        (match jh.jh_epoch with
        | Some e -> Printf.sprintf ", epoch %d" e
        | None -> ", empty")
        (if jh.jh_healthy then "" else " — NEEDS ATTENTION"))
    r.fsck_partitions;
  if r.fsck_stale_journal then
    Fmt.pf ppf "stale journal:     records predating the snapshot's epoch \
                (skipped on open)@.";
  if r.fsck_quarantined_regions > 0 then
    Fmt.pf ppf
      "quarantined:       %d damaged region(s), %d byte(s) (skipped on open, \
       excised by --repair)@."
      r.fsck_quarantined_regions r.fsck_quarantined_bytes;
  if r.fsck_torn_bytes > 0 then
    Fmt.pf ppf "torn tail:         %d byte(s) — %s@." r.fsck_torn_bytes
      (Option.value r.fsck_torn_reason ~default:"damaged");
  if r.fsck_dangling_txn_records > 0 then
    Fmt.pf ppf
      "dangling txn:      %d uncommitted record(s)%s (discarded on open)@."
      r.fsck_dangling_txn_records
      (if r.fsck_dangling_txn_tail then " in an unterminated tail group"
       else "");
  List.iter (fun a -> Fmt.pf ppf "repaired:          %s@." a) r.fsck_repairs;
  Fmt.pf ppf "status:            %s@."
    (if r.fsck_healthy then "healthy" else "NEEDS ATTENTION")
