(** Pluggable I/O environment for the storage layer.

    Every filesystem operation the persistence engine performs —
    opening, writing, flushing, fsyncing, renaming, truncating,
    unlinking, syncing a directory, and whole-file reads — goes through
    a value of type {!t}. {!real} talks to the operating system;
    {!Faulty_io} wraps it to inject deterministic faults (short writes
    and reads, bit flips, failed fsyncs, ENOSPC, simulated crashes) so
    every crash point of the snapshot + journal pipeline can be
    exercised by tests.

    Operations raise [Sys_error] or [Unix.Unix_error] on failure, like
    the Stdlib/Unix primitives they wrap; callers are expected to
    convert those into [Seed_error.Io_error]. A fault injector may also
    raise its own exception (e.g. [Faulty_io.Crash]) which must {e not}
    be converted — it simulates the process dying at that syscall. *)

type file = {
  write : string -> unit;  (** append the bytes to the file *)
  fsync : unit -> unit;  (** force file contents to stable storage *)
  close : unit -> unit;
}
(** An open file handle positioned for writing. *)

type t = {
  open_append : string -> file;
      (** open (creating, 0o644) for appending at the end *)
  open_trunc : string -> file;
      (** open (creating, 0o644) truncated to empty *)
  rename : string -> string -> unit;
  unlink : string -> unit;
  truncate : string -> int -> unit;  (** cut the file to the given length *)
  fsync_dir : string -> unit;
      (** fsync a directory, making renames/unlinks in it durable *)
  exists : string -> bool;
  read_file : string -> string;
      (** whole-file read; the one read-side operation, so read faults
          (short reads, bit flips, EIO, EINTR) can be injected too *)
}

val real : t
(** The operating system. *)
