(* Workload generators shared by the benchmark suites. All three
   backends (SEED, the rigid conventional store, the raw structures)
   receive the same logical workload so the comparisons are fair. *)

open Seed_util
open Seed_schema
module DB = Seed_core.Database
module Rigid = Seed_baseline.Rigid_store
module Raw = Seed_baseline.Raw_store

let ok = Seed_error.ok_exn

let schema = Spades_tool.Spec_model.schema

let data_name i = Printf.sprintf "Data%04d" i
let action_name i = Printf.sprintf "Action%04d" i

(* --- Fig. 1/2 population: n data objects with description, each read
   by a matching action ------------------------------------------------ *)

let seed_populate n =
  let db = DB.create schema in
  for i = 0 to n - 1 do
    let d = ok (DB.create_object db ~cls:"InputData" ~name:(data_name i) ()) in
    let a = ok (DB.create_object db ~cls:"Action" ~name:(action_name i) ()) in
    let _ =
      ok
        (DB.create_sub_object db ~parent:d ~role:"Description"
           ~value:(Value.String "generated") ())
    in
    ignore (ok (DB.create_relationship db ~assoc:"Read" ~endpoints:[ d; a ] ()))
  done;
  db

let rigid_populate n =
  let t = Rigid.create schema in
  for i = 0 to n - 1 do
    ok
      (Rigid.insert_cluster t
         ~objs:
           [
             {
               Rigid.no_name = data_name i;
               no_cls = "InputData";
               no_value = None;
               no_subs = [ ("Description", Some (Value.String "generated")) ];
             };
             {
               Rigid.no_name = action_name i;
               no_cls = "Action";
               no_value = None;
               no_subs = [];
             };
           ]
         ~rels:
           [
             {
               Rigid.nr_assoc = "Read";
               nr_endpoints = [ data_name i; action_name i ];
             };
           ])
  done;
  t

let raw_populate n =
  let t = Raw.create () in
  for i = 0 to n - 1 do
    Raw.put_object t ~name:(data_name i) ~cls:"InputData";
    Raw.put_object t ~name:(action_name i) ~cls:"Action";
    Raw.set_attr t ~name:(data_name i) ~attr:"Description"
      (Value.String "generated");
    Raw.add_rel t ~assoc:"Read" ~from_:(data_name i) ~to_:(action_name i)
  done;
  t

(* --- Fig. 3 lifecycle: enter vaguely, refine in three steps ---------- *)

(* SEED: the natural path — re-classification in place. Returns the
   number of schema-level update operations used. *)
let seed_vague_lifecycle db i =
  let d = ok (DB.create_object db ~cls:"Thing" ~name:(data_name i) ()) in
  let a = ok (DB.create_object db ~cls:"Thing" ~name:(action_name i) ()) in
  (* step 2: classes become known *)
  ok (DB.reclassify db d ~to_:"Data");
  ok (DB.reclassify db a ~to_:"Action");
  let acc = ok (DB.create_relationship db ~assoc:"Access" ~endpoints:[ d; a ] ()) in
  (* step 3: direction becomes known *)
  ok (DB.reclassify db d ~to_:"InputData");
  ok (DB.reclassify db acc ~to_:"Read");
  7

(* Rigid: vague states cannot be stored at all; every refinement is a
   delete + re-insert of the complete cluster. Returns op count. *)
let rigid_vague_lifecycle t i =
  (* step 1 impossible (no Thing; nothing to store). step 2: the cluster
     becomes representable only when fully precise, so the conventional
     process stores it only at step 3 — but a faithful tool re-enters the
     whole cluster at each refinement that *is* representable. *)
  let insert cls assoc =
    ok
      (Rigid.insert_cluster t
         ~objs:
           [
             { Rigid.no_name = data_name i; no_cls = cls; no_value = None; no_subs = [] };
             {
               Rigid.no_name = action_name i;
               no_cls = "Action";
               no_value = None;
               no_subs = [];
             };
           ]
         ~rels:
           [ { Rigid.nr_assoc = assoc; nr_endpoints = [ data_name i; action_name i ] } ])
  in
  (* first representable state *)
  insert "InputData" "Read";
  (* a later refinement (say, the data turns out to be OutputData/Write)
     forces delete + re-insert of the pair *)
  ok (Rigid.delete_object t (action_name i));
  ok (Rigid.delete_object t (data_name i));
  let insert2 () =
    ok
      (Rigid.insert_cluster t
         ~objs:
           [
             {
               Rigid.no_name = data_name i;
               no_cls = "OutputData";
               no_value = None;
               no_subs = [];
             };
             {
               Rigid.no_name = action_name i;
               no_cls = "Action";
               no_value = None;
               no_subs = [];
             };
           ]
         ~rels:
           [ { Rigid.nr_assoc = "Write"; nr_endpoints = [ data_name i; action_name i ] } ])
  in
  insert2 ();
  4

let raw_vague_lifecycle t i =
  Raw.put_object t ~name:(data_name i) ~cls:"Thing";
  Raw.put_object t ~name:(action_name i) ~cls:"Thing";
  Raw.put_object t ~name:(data_name i) ~cls:"Data";
  Raw.put_object t ~name:(action_name i) ~cls:"Action";
  Raw.add_rel t ~assoc:"Access" ~from_:(data_name i) ~to_:(action_name i);
  Raw.put_object t ~name:(data_name i) ~cls:"InputData";
  7

(* --- Fig. 4: version churn ------------------------------------------ *)

(* a database of n objects with a description each; [churn] of them are
   touched between snapshots *)
let seed_versioned_db n =
  let db = DB.create schema in
  let descriptions =
    Array.init n (fun i ->
        let d = ok (DB.create_object db ~cls:"InputData" ~name:(data_name i) ()) in
        ok
          (DB.create_sub_object db ~parent:d ~role:"Description"
             ~value:(Value.String "initial") ()))
  in
  (db, descriptions)

let seed_churn db descriptions ~churn ~round =
  let n = Array.length descriptions in
  for k = 0 to churn - 1 do
    let idx = k * 7919 mod n in
    ok
      (DB.set_value db descriptions.(idx)
         (Some (Value.String (Printf.sprintf "revision %d" round))))
  done

let rigid_versioned_db n =
  let t = Rigid.create schema in
  for i = 0 to n - 1 do
    ok
      (Rigid.insert_cluster t
         ~objs:
           [
             {
               Rigid.no_name = data_name i;
               no_cls = "InputData";
               no_value = None;
               no_subs = [ ("Description", Some (Value.String "initial")) ];
             };
           ]
         ~rels:[])
  done;
  t

let rigid_churn t n ~churn ~round =
  for k = 0 to churn - 1 do
    let idx = k * 7919 mod n in
    ok
      (Rigid.set_value t ~name:(data_name idx) ~role:("Description", 0)
         (Value.String (Printf.sprintf "revision %d" round)))
  done

(* --- Fig. 5: shared deadline via pattern vs manual copies ------------ *)

let pattern_schema =
  Schema.of_defs_exn
    [
      Class_def.v [ "Procedure" ];
      Class_def.v ~card:Cardinality.opt ~content:Value_type.Date
        [ "Procedure"; "Deadline" ];
      Class_def.v ~card:Cardinality.any ~content:Value_type.String
        [ "Procedure"; "Note" ];
    ]
    []

let seed_pattern_family k =
  let db = DB.create pattern_schema in
  let p = ok (DB.create_object db ~cls:"Procedure" ~name:"Std" ~pattern:true ()) in
  let deadline =
    ok (DB.create_sub_object db ~parent:p ~role:"Deadline" ~value:(Value.date 1986 6 1) ())
  in
  for i = 0 to k - 1 do
    let m =
      ok (DB.create_object db ~cls:"Procedure" ~name:(Printf.sprintf "P%04d" i) ())
    in
    ok (DB.inherit_pattern db ~pattern:p ~inheritor:m)
  done;
  (db, deadline)

let raw_copy_family k =
  let t = Raw.create () in
  for i = 0 to k - 1 do
    let name = Printf.sprintf "P%04d" i in
    Raw.put_object t ~name ~cls:"Procedure";
    Raw.set_attr t ~name ~attr:"Deadline" (Value.String "1986-06-01")
  done;
  t

(* --- S1: the SPADES editing session ---------------------------------- *)

let spades_session_on_seed n =
  let module S = Spades_tool.Spades in
  let t = S.create () in
  for i = 0 to n - 1 do
    ignore (ok (S.note_thing t (data_name i) ~description:"d" ()));
    ignore (ok (S.note_thing t (action_name i) ()));
    let f = ok (S.add_flow t ~data:(data_name i) ~action:(action_name i) S.Vague) in
    ok (S.refine_flow t f S.Reading);
    ignore (ok (S.add_keyword t (data_name i) "bench"))
  done;
  t

let spades_session_on_raw n =
  let module S = Spades_tool.Spades in
  let module R = Spades_tool.Spades_raw in
  let t = R.create () in
  for i = 0 to n - 1 do
    R.note_thing t (data_name i) ~description:"d" ();
    R.note_thing t (action_name i) ();
    R.add_flow t ~data:(data_name i) ~action:(action_name i) S.Vague;
    R.refine_flow t ~data:(data_name i) ~action:(action_name i) S.Reading;
    R.add_keyword t (data_name i) "bench"
  done;
  t

(* --- Q1: the query-planner workload ---------------------------------- *)

(* A generalization chain C0 <- C1 <- ... <- C7 with 24 leaf classes
   under C0. Objects are spread so that each chain class holds ~n/125 of
   the database — queries over the chain are selective, which is where
   an extent index pays off; the leaves hold the bulk. *)
let query_schema =
  let cname i = Printf.sprintf "C%d" i in
  let chain =
    List.init 8 (fun i ->
        if i = 0 then Class_def.v [ cname 0 ]
        else Class_def.v ~super:(cname (i - 1)) [ cname i ])
  in
  let leaves =
    List.init 24 (fun i ->
        Class_def.v ~super:(cname 0) [ Printf.sprintf "D%02d" i ])
  in
  Schema.of_defs_exn (chain @ leaves) []

let query_name i = Printf.sprintf "Q%06d" i

let query_populate n =
  let db = DB.create query_schema in
  for i = 0 to n - 1 do
    let cls =
      if i mod 125 < 8 then Printf.sprintf "C%d" (i mod 125)
      else Printf.sprintf "D%02d" (i mod 24)
    in
    ignore (ok (DB.create_object db ~cls ~name:(query_name i) ()))
  done;
  db

(* --- V1: the version-read workload ----------------------------------- *)

(* The query-planner database grown through [versions] snapshots: each
   round re-classifies ~5% of the objects among the leaf classes and
   takes a snapshot, so stamps spread over the whole version chain and
   resolving the view of the newest version walks deep ancestor chains
   for the ~95% of items untouched since early rounds. Returns the
   version labels in creation order. *)
let versioned_query_db ~items ~versions =
  let db = DB.create query_schema in
  for i = 0 to items - 1 do
    let cls =
      if i mod 125 < 8 then Printf.sprintf "C%d" (i mod 125)
      else Printf.sprintf "D%02d" (i mod 24)
    in
    ignore (ok (DB.create_object db ~cls ~name:(query_name i) ()))
  done;
  let vids = ref [ ok (DB.create_version db) ] in
  let churn = max 1 (items / 20) in
  for round = 1 to versions - 1 do
    for k = 1 to churn do
      let idx = k * 7919 mod items in
      match DB.find_object db (query_name idx) with
      | Some id ->
        ignore (DB.reclassify db id ~to_:(Printf.sprintf "D%02d" ((idx + round) mod 24)))
      | None -> ()
    done;
    vids := ok (DB.create_version db) :: !vids
  done;
  (db, List.rev !vids)

(* --- X1: the content-search workload --------------------------------- *)

(* n specification documents over the SPADES schema: each a [Data]
   object whose [Description] carries a sentence of 12 vocabulary words
   drawn by a deterministic LCG. Selectivity is planted: the phrase
   "fault quarantine beacon" (words outside the vocabulary) appears in
   exactly 10 documents at any size, "recovery" shows up in roughly a
   fifth of them, and "holographic xylophone" in none. *)

let text_vocab =
  [|
    "the"; "module"; "reads"; "its"; "input"; "stream"; "and"; "writes";
    "a"; "checked"; "record"; "to"; "journal"; "before"; "commit";
    "every"; "alarm"; "handler"; "must"; "release"; "lease"; "within";
    "bounded"; "time"; "or"; "escalate"; "recovery"; "path"; "replays";
    "pending"; "groups"; "after"; "crash"; "version"; "views"; "stay";
    "immutable"; "while"; "branch"; "switch"; "rebuilds"; "extent";
    "caches"; "operator"; "confirms"; "each"; "step"; "manually";
  |]

let text_doc_name i = Printf.sprintf "Spec%06d" i

let text_body ~n i =
  let buf = Buffer.create 96 in
  let s = ref ((i * 2654435761) land 0x3FFFFFFF) in
  for w = 0 to 11 do
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    if w > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf text_vocab.(!s mod Array.length text_vocab)
  done;
  if i mod (max 1 (n / 10)) = 0 then
    Buffer.add_string buf " fault quarantine beacon";
  Buffer.contents buf

(* Returns the database and the carrier (Description sub-object) ids,
   indexable by document number, for the update benchmarks. *)
let text_populate n =
  let db = DB.create schema in
  let carriers = Array.make n Seed_util.Ident.(of_int 0) in
  for i = 0 to n - 1 do
    let d = ok (DB.create_object db ~cls:"Data" ~name:(text_doc_name i) ()) in
    carriers.(i) <-
      ok
        (DB.create_sub_object db ~parent:d ~role:"Description"
           ~value:(Value.String (text_body ~n i)) ())
  done;
  (db, carriers)
