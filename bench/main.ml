(* The SEED benchmark harness: one suite per experiment of DESIGN.md §3.

   The paper (ICDE 1986) reports no quantitative tables; its evaluation
   is the qualitative claim that SPADES-on-SEED became "considerably
   slower, but much more flexible". Each suite below regenerates the
   scenario of one figure (or of that claim) and prints timings/sizes so
   the *shape* — who wins, by what factor, where the costs sit — can be
   compared against the paper's narrative. See EXPERIMENTS.md.

   Run all suites:      dune exec bench/main.exe
   Run one suite:       dune exec bench/main.exe -- fig4 spades *)

open Bechamel
open Seed_util
open Seed_schema
module DB = Seed_core.Database
module Rigid = Seed_baseline.Rigid_store
module Raw = Seed_baseline.Raw_store
module Persist = Seed_core.Persist

let ok = Seed_error.ok_exn

let heading id what =
  Fmt.pr "@.==================================================================@.";
  Fmt.pr "Experiment %s - %s@." id what;
  Fmt.pr "==================================================================@."

(* ------------------------------------------------------------------ *)
(* F1/F2: the Fig. 1/2 workload: populate + retrieve-by-name            *)
(* ------------------------------------------------------------------ *)

let fig1_2 () =
  heading "F1/F2" "storing and retrieving the Fig. 1 structure (3 backends)";
  let n = 100 in
  Report.bench ~name:(Printf.sprintf "populate %d clusters" n)
    [
      Test.make ~name:"seed" (Staged.stage (fun () -> ignore (Workloads.seed_populate n)));
      Test.make ~name:"rigid"
        (Staged.stage (fun () -> ignore (Workloads.rigid_populate n)));
      Test.make ~name:"raw" (Staged.stage (fun () -> ignore (Workloads.raw_populate n)));
    ];
  let size = 2000 in
  let seed_db = Workloads.seed_populate size in
  let rigid_db = Workloads.rigid_populate size in
  let raw_db = Workloads.raw_populate size in
  let counter = ref 0 in
  let next () =
    counter := (!counter + 1) mod size;
    Workloads.data_name !counter
  in
  Report.bench ~name:(Printf.sprintf "retrieve by name (db of %d clusters)" size)
    [
      Test.make ~name:"seed" (Staged.stage (fun () -> ignore (DB.find_object seed_db (next ()))));
      Test.make ~name:"rigid" (Staged.stage (fun () -> ignore (Rigid.mem rigid_db (next ()))));
      Test.make ~name:"raw" (Staged.stage (fun () -> ignore (Raw.mem raw_db (next ()))));
    ];
  Report.table ~title:"capability comparison (same workload)"
    ~header:[ "backend"; "objects"; "relationships"; "checks on entry"; "vague data" ]
    [
      [ "seed"; string_of_int (DB.object_count seed_db); "2000"; "consistency only"; "yes" ];
      [ "rigid"; string_of_int (Rigid.object_count rigid_db); "2000"; "consistency + completeness"; "no" ];
      [ "raw"; string_of_int (Raw.object_count raw_db); "2000"; "none"; "untyped" ];
    ]

(* ------------------------------------------------------------------ *)
(* F3: the vague-to-precise lifecycle of Fig. 3                         *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  heading "F3" "vague entry and stepwise refinement (Fig. 3 lifecycle)";
  let seed_db = DB.create Workloads.schema in
  let rigid_db = Rigid.create Workloads.schema in
  let raw_db = Raw.create () in
  let c1 = ref 0 and c2 = ref 0 and c3 = ref 0 in
  Report.bench ~name:"one full lifecycle (enter vague, refine twice)"
    [
      Test.make ~name:"seed (re-classify in place)"
        (Staged.stage (fun () ->
             incr c1;
             ignore (Workloads.seed_vague_lifecycle seed_db !c1)));
      Test.make ~name:"rigid (delete + re-insert)"
        (Staged.stage (fun () ->
             incr c2;
             ignore (Workloads.rigid_vague_lifecycle rigid_db !c2)));
      Test.make ~name:"raw (overwrite, unchecked)"
        (Staged.stage (fun () ->
             incr c3;
             ignore (Workloads.raw_vague_lifecycle raw_db !c3)));
    ];
  Report.table ~title:"expressiveness along the refinement path"
    ~header:
      [ "backend"; "storable stages"; "update ops"; "identity kept"; "checked" ]
    [
      [ "seed"; "3 of 3 (Thing, Data+Access, InputData+Read)"; "7"; "yes"; "yes" ];
      [ "rigid"; "1 of 3 (only the fully precise state)"; "4 + data re-entry"; "no"; "yes" ];
      [ "raw"; "3 of 3"; "7"; "n/a"; "no" ];
    ]

(* ------------------------------------------------------------------ *)
(* F4: versions - delta storage vs full copies (Fig. 4)                 *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  heading "F4" "version storage and views: SEED deltas vs full copies (Fig. 4)";
  let n = 1000 and rounds = 8 in
  let churn = n / 20 in
  (* SEED: delta snapshots *)
  let db, descriptions = Workloads.seed_versioned_db n in
  let _ = ok (DB.create_version db) in
  let base_size = String.length (Persist.encode_db db) in
  let seed_rows = ref [] in
  let prev_size = ref base_size in
  for round = 1 to rounds do
    Workloads.seed_churn db descriptions ~churn ~round;
    let v, t = Report.time_of (fun () -> ok (DB.create_version db)) in
    let size = String.length (Persist.encode_db db) in
    seed_rows :=
      [
        Version_id.to_string v;
        Report.human_bytes (size - !prev_size);
        Report.ms t;
      ]
      :: !seed_rows;
    prev_size := size
  done;
  (* rigid: full copies *)
  let rt = Workloads.rigid_versioned_db n in
  let rigid_rows = ref [] in
  for round = 1 to rounds do
    Workloads.rigid_churn rt n ~churn ~round;
    let snap, t = Report.time_of (fun () -> Rigid.Full_copy.take rt) in
    rigid_rows :=
      [
        Printf.sprintf "copy %d" round;
        Report.human_bytes (Rigid.Full_copy.size_bytes snap);
        Report.ms t;
      ]
      :: !rigid_rows
  done;
  Report.table
    ~title:
      (Printf.sprintf
         "per-version storage cost, %d objects, %d touched per round (SEED \
          deltas)"
         n churn)
    ~header:[ "version"; "added bytes"; "snapshot time" ]
    (List.rev !seed_rows);
  Report.table ~title:"per-version storage cost (full copies, Tichy-style)"
    ~header:[ "version"; "copy bytes"; "copy time" ]
    (List.rev !rigid_rows);
  (* view reconstruction: reading an old version vs the current one *)
  let v1 = Version_id.trunk 1 in
  let counter = ref 0 in
  let next () =
    counter := (!counter + 1) mod n;
    Workloads.data_name !counter
  in
  ok (DB.select_version db None);
  Report.bench ~name:"retrieval: current vs old version view"
    [
      Test.make ~name:"current version"
        (Staged.stage (fun () -> ignore (DB.find_object db (next ()))));
      Test.make ~name:"version 1.0 (resolved through the tree)"
        (Staged.stage (fun () ->
             let v = ok (DB.view_at db v1) in
             ignore (Seed_core.View.find_object v (next ()))));
    ]

(* ------------------------------------------------------------------ *)
(* F5: patterns - one shared update vs K copies (Fig. 5)                *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  heading "F5" "pattern update propagation vs per-copy updates (Fig. 5)";
  let rows = ref [] in
  List.iter
    (fun k ->
      let db, deadline = Workloads.seed_pattern_family k in
      let flip = ref false in
      let _, seed_t =
        Report.time_of (fun () ->
            for _ = 1 to 100 do
              flip := not !flip;
              let d = if !flip then Value.date 1986 12 31 else Value.date 1986 6 1 in
              ok (DB.set_value db deadline (Some d))
            done)
      in
      let raw = Workloads.raw_copy_family k in
      let _, raw_t =
        Report.time_of (fun () ->
            for _ = 1 to 100 do
              for i = 0 to k - 1 do
                Raw.set_attr raw ~name:(Printf.sprintf "P%04d" i)
                  ~attr:"Deadline" (Value.String "1986-12-31")
              done
            done)
      in
      rows :=
        [
          string_of_int k;
          Report.ms (seed_t /. 100.);
          Report.ms (raw_t /. 100.);
          Printf.sprintf "%.2fx" (raw_t /. seed_t);
        ]
        :: !rows)
    [ 10; 100; 1000 ];
  Report.table
    ~title:
      "updating one shared deadline of K inheritors (100 updates averaged)"
    ~header:[ "K"; "seed pattern (1 update)"; "raw copies (K updates)"; "copies/pattern" ]
    (List.rev !rows);
  (* the retrieval side of the trade: reading through the expansion *)
  let db, _ = Workloads.seed_pattern_family 100 in
  let raw = Workloads.raw_copy_family 100 in
  let member = Option.get (DB.find_object db "P0050") in
  let item = Option.get (Seed_core.Db_state.find_item (DB.raw db) member) in
  Report.bench ~name:"reading one member's deadline (family of 100)"
    [
      Test.make ~name:"seed (query-time expansion)"
        (Staged.stage (fun () ->
             let v = DB.view db in
             ignore
               (Seed_core.View.child_v v (Seed_core.View.vitem_real item)
                  ~role:"Deadline" ())));
      Test.make ~name:"raw (direct field)"
        (Staged.stage (fun () ->
             ignore (Raw.get_attr raw ~name:"P0050" ~attr:"Deadline")));
    ]

(* ------------------------------------------------------------------ *)
(* S1: the SPADES claim - "considerably slower, but much more flexible" *)
(* ------------------------------------------------------------------ *)

let spades () =
  heading "S1" "SPADES-on-SEED vs SPADES-on-raw-structures";
  let n = 200 in
  let (_ : Spades_tool.Spades.t), seed_t =
    Report.time_of (fun () -> Workloads.spades_session_on_seed n)
  in
  let (_ : Spades_tool.Spades_raw.t), raw_t =
    Report.time_of (fun () -> Workloads.spades_session_on_raw n)
  in
  Report.table
    ~title:
      (Printf.sprintf
         "identical specification session (%d things, flows, refinements)" n)
    ~header:[ "configuration"; "session time"; "slowdown"; "gains" ]
    [
      [ "SPADES on raw structures"; Report.ms raw_t; "1.0x"; "-" ];
      [
        "SPADES on SEED";
        Report.ms seed_t;
        Printf.sprintf "%.1fx" (seed_t /. raw_t);
        "consistency, versions, completeness, queries";
      ];
    ];
  Fmt.pr
    "@.paper: \"SPADES has become considerably slower, but much more \
     flexible\" - the factor above is this build's 'considerably'.@."

(* ------------------------------------------------------------------ *)
(* C1: ablation - what the permanent consistency checking costs         *)
(* ------------------------------------------------------------------ *)

let ablation () =
  heading "C1" "cost of the permanent consistency checks";
  (* acyclicity: the DFS grows with the containment chain depth *)
  let chain_db depth =
    let db = DB.create Workloads.schema in
    let prev = ref None in
    let last = ref None in
    for i = 0 to depth - 1 do
      let a = ok (DB.create_object db ~cls:"Action" ~name:(Workloads.action_name i) ()) in
      (match !prev with
      | Some p ->
        ignore (ok (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ a; p ] ()))
      | None -> ());
      prev := Some a;
      last := Some a
    done;
    (db, Option.get !last)
  in
  let mk_test depth =
    let db, deepest = chain_db depth in
    let leaf = ok (DB.create_object db ~cls:"Action" ~name:"Leaf" ()) in
    Test.make ~name:(Printf.sprintf "chain depth %d" depth)
      (Staged.stage (fun () ->
           let r =
             ok
               (DB.create_relationship db ~assoc:"Contained"
                  ~endpoints:[ leaf; deepest ] ())
           in
           ok (DB.delete db r)))
  in
  Report.bench ~name:"ACYCLIC check: add+remove an edge below a chain"
    [ mk_test 10; mk_test 100; mk_test 500 ];
  (* completeness: on-demand, full sweep *)
  let rows =
    List.map
      (fun n ->
        let db = Workloads.seed_populate n in
        let report, t = Report.time_of (fun () -> DB.completeness_report db) in
        [ string_of_int (2 * n); Report.ms t; string_of_int (List.length report) ])
      [ 100; 500; 2000 ]
  in
  Report.table ~title:"completeness sweep (on demand, whole database)"
    ~header:[ "objects"; "sweep time"; "diagnostics" ]
    rows;
  (* persistence: encode/decode scale *)
  let rows =
    List.map
      (fun n ->
        let db = Workloads.seed_populate n in
        let payload, enc_t = Report.time_of (fun () -> Persist.encode_db db) in
        let _, dec_t =
          Report.time_of (fun () -> ok (Persist.decode_db payload))
        in
        [
          string_of_int (2 * n);
          Report.human_bytes (String.length payload);
          Report.ms enc_t;
          Report.ms dec_t;
        ])
      [ 100; 500; 2000 ]
  in
  Report.table ~title:"snapshot encode/decode (decode includes verification)"
    ~header:[ "objects"; "bytes"; "encode"; "decode" ]
    rows;
  (* structural pattern updates re-validate every inheritor context —
     the correctness price that value updates avoid *)
  let rows =
    List.map
      (fun k ->
        let db, _ = Workloads.seed_pattern_family k in
        let p = Option.get (DB.find_pattern db "Std") in
        let _, structural_t =
          Report.time_of (fun () ->
              for _ = 1 to 20 do
                (* add and remove a pattern sub-object: each step
                   re-checks all K contexts *)
                match
                  DB.create_sub_object db ~parent:p ~role:"Note"
                    ~value:(Value.String "structural") ()
                with
                | Ok id -> ok (DB.delete db id)
                | Error _ -> ()
              done)
        in
        [ string_of_int k; Report.ms (structural_t /. 40.) ])
      [ 10; 100; 1000 ]
  in
  Report.table
    ~title:
      "structural pattern update (re-validates all K inheritor contexts)"
    ~header:[ "K inheritors"; "per update" ]
    rows

(* ------------------------------------------------------------------ *)
(* P1: storage substrate micro-benchmarks                               *)
(* ------------------------------------------------------------------ *)

let storage () =
  heading "P1" "storage substrate micro-benchmarks";
  let module BT = Seed_storage.Btree.Make (Int) in
  let grow = BT.create () in
  let c = ref 0 in
  let lookup_tree = BT.create () in
  for i = 0 to 99_999 do
    BT.insert lookup_tree i i
  done;
  let k = ref 0 in
  let payload = String.make 4096 'x' in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "seed_bench_journal" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let jpath = Filename.concat dir "bench.log" in
  (try Sys.remove jpath with Sys_error _ -> ());
  let journal = ok (Seed_storage.Journal.open_ jpath) in
  Report.bench ~name:"primitives"
    [
      Test.make ~name:"btree insert (growing)"
        (Staged.stage (fun () ->
             incr c;
             BT.insert grow !c !c));
      Test.make ~name:"btree lookup (100k keys)"
        (Staged.stage (fun () ->
             k := (!k + 7919) mod 100_000;
             ignore (BT.find lookup_tree !k)));
      Test.make ~name:"crc32 of 4 KiB"
        (Staged.stage (fun () -> ignore (Seed_storage.Crc32.digest payload)));
      Test.make ~name:"journal append 4 KiB"
        (Staged.stage (fun () -> ok (Seed_storage.Journal.append journal payload)));
    ];
  Seed_storage.Journal.close journal

(* ------------------------------------------------------------------ *)
(* P2: crash recovery - journal replay vs compacted open,               *)
(*     and the price of each durability policy                          *)
(* ------------------------------------------------------------------ *)

let recovery () =
  heading "P2" "recovery time and durability policy cost";
  let module Store = Seed_storage.Store in
  let fresh_dir =
    let c = ref 0 in
    fun () ->
      incr c;
      let d =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "seed_bench_rec_%d_%d" (Unix.getpid ()) !c)
      in
      if Sys.file_exists d then
        Array.iter
          (fun f -> Sys.remove (Filename.concat d f))
          (Sys.readdir d);
      d
  in
  let payload = String.make 512 'r' in
  (* open time as a function of journal length, against the same data
     folded into a snapshot by compaction *)
  let rows =
    List.map
      (fun n ->
        let dir = fresh_dir () in
        let store, _, _, _ = ok (Store.open_dir dir) in
        for _ = 1 to n do
          ok (Store.append store payload)
        done;
        Store.close store;
        let (s1, _, replayed, _), replay_t =
          Report.time_of (fun () -> ok (Store.open_dir dir))
        in
        Store.close s1;
        (* now compact and measure the post-compaction open *)
        let store, _, _, _ = ok (Store.open_dir dir) in
        ok (Store.compact store ~snapshot:(String.concat "" [ payload ]));
        Store.close store;
        let (s2, _, _, _), snap_t =
          Report.time_of (fun () -> ok (Store.open_dir dir))
        in
        Store.close s2;
        [
          string_of_int n;
          string_of_int (List.length replayed);
          Report.ms replay_t;
          Report.ms snap_t;
          Printf.sprintf "%.1fx" (replay_t /. snap_t);
        ])
      [ 100; 1_000; 10_000 ]
  in
  Report.table
    ~title:"Store.open_dir: replaying an uncompacted journal vs a snapshot"
    ~header:
      [ "journal records"; "replayed"; "replay open"; "compacted open"; "ratio" ]
    rows;
  (* append cost per durability policy *)
  let mk_store sync =
    let dir = fresh_dir () in
    let store, _, _, _ = ok (Store.open_dir ~sync dir) in
    store
  in
  let s_fsync = mk_store `Always_fsync in
  let s_flush = mk_store `Flush_only in
  let s_none = mk_store `None in
  Report.bench ~name:"append 512 B under each sync policy"
    [
      Test.make ~name:"`Always_fsync"
        (Staged.stage (fun () -> ok (Store.append s_fsync payload)));
      Test.make ~name:"`Flush_only"
        (Staged.stage (fun () -> ok (Store.append s_flush payload)));
      Test.make ~name:"`None (buffered)"
        (Staged.stage (fun () -> ok (Store.append s_none payload)));
    ];
  Store.close s_fsync;
  Store.close s_flush;
  Store.close s_none

(* ------------------------------------------------------------------ *)
(* Q1: the query planner - extent/index-backed select vs a full scan    *)
(* ------------------------------------------------------------------ *)

let query () =
  heading "Q1" "query planner: extent/index-backed select vs full scan";
  let module Q = Seed_core.Query in
  let module View = Seed_core.View in
  let module Db_state = Seed_core.Db_state in
  let module Item = Seed_core.Item in
  (* the pre-planner select: walk the whole item table, test every live
     normal independent, sort by name — what [Q.select] compiles to when
     a predicate is opaque *)
  let naive_select v p =
    Db_state.fold_items (View.db v) ~init:[] ~f:(fun acc it ->
        if
          it.Item.body = Item.Independent
          && View.live_normal v it
          && Q.test p v it
        then it :: acc
        else acc)
    |> List.sort (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)
  in
  let bench_op ~iters f =
    ignore (f ());
    let _, t =
      Report.time_of (fun () ->
          for _ = 1 to iters do
            ignore (f ())
          done)
    in
    t /. float_of_int iters
  in
  let rows = ref [] in
  let json = ref [] in
  List.iter
    (fun n ->
      let db = Workloads.query_populate n in
      let v = DB.view db in
      let iters = if n >= 100_000 then 10 else if n >= 10_000 then 50 else 200 in
      let ops =
        [
          ("select_by_class", Q.in_class "C4");
          ("is_a_deep", Q.is_a "C6");
          ("name_lookup", Q.name_is (Workloads.query_name (n / 2)));
        ]
      in
      List.iter
        (fun (key, p) ->
          let indexed = bench_op ~iters (fun () -> Q.select v p) in
          let scan = bench_op ~iters (fun () -> naive_select v p) in
          let hits = List.length (Q.select v p) in
          rows :=
            [
              string_of_int n;
              key;
              string_of_int hits;
              Report.ms indexed;
              Report.ms scan;
              Printf.sprintf "%.1fx" (scan /. indexed);
            ]
            :: !rows;
          json :=
            Printf.sprintf
              "    {\"items\": %d, \"query\": %S, \"hits\": %d, \
               \"indexed_us\": %.2f, \"scan_us\": %.2f, \"speedup\": %.1f}"
              n key hits (indexed *. 1e6) (scan *. 1e6) (scan /. indexed)
            :: !json)
        ops)
    [ 1_000; 10_000; 100_000 ];
  Report.table
    ~title:"planner-backed select vs naive item-table scan (per query)"
    ~header:[ "items"; "query"; "hits"; "indexed"; "scan"; "speedup" ]
    (List.rev !rows);
  let oc = open_out "BENCH_query.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"query\",\n  \"command\": \"dune exec bench/main.exe -- \
     query\",\n  \"results\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.rev !json));
  close_out oc;
  Fmt.pr "@.wrote BENCH_query.json@."

(* ------------------------------------------------------------------ *)
(* X1: content search - trigram positional index vs full scan           *)

let text () =
  heading "X1" "content search: trigram positional index vs full scan";
  let module Q = Seed_core.Query in
  let module View = Seed_core.View in
  let module Db_state = Seed_core.Db_state in
  let module Item = Seed_core.Item in
  (* the pre-index containment select: walk the whole item table,
     re-test every live independent (for Contains that fetches and
     substring-scans its string carriers) and sort by name exactly as
     [Q.select] does, so the two arms differ only in the access path *)
  let by_name v (a : Item.t) (b : Item.t) =
    match (View.full_name v a, View.full_name v b) with
    | Some x, Some y -> String.compare x y
    | Some _, None -> -1
    | None, Some _ -> 1
    | None, None -> Ident.compare a.Item.id b.Item.id
  in
  let naive_select v p =
    Db_state.fold_items (View.db v) ~init:[] ~f:(fun acc it ->
        if
          it.Item.body = Item.Independent
          && View.live_normal v it
          && Q.test p v it
        then it :: acc
        else acc)
    |> List.sort (by_name v)
  in
  let bench_op ~iters f =
    ignore (f ());
    let _, t =
      Report.time_of (fun () ->
          for _ = 1 to iters do
            ignore (f ())
          done)
    in
    t /. float_of_int iters
  in
  let rows = ref [] in
  let json = ref [] in
  List.iter
    (fun n ->
      let db, carriers = Workloads.text_populate n in
      let v = DB.view db in
      let scan_iters = if n >= 100_000 then 3 else 20 in
      let ops =
        [
          ("selective", Q.contains "" "fault quarantine beacon");
          ("common", Q.contains "" "recovery");
          ("negative", Q.contains "" "holographic xylophone");
          ("conjunction", Q.matches "" [ "fault quarantine"; "beacon" ]);
          ("path_scoped", Q.contains "Thing.Description" "quarantine");
        ]
      in
      List.iter
        (fun (key, p) ->
          let plan =
            match Q.explain v p with
            | Q.Indexed { texts = _ :: _; _ } -> "index"
            | Q.Indexed _ -> "index(other)"
            | Q.Scan _ -> "scan"
          in
          let select_iters = if plan = "scan" then scan_iters else 200 in
          let indexed = bench_op ~iters:select_iters (fun () -> Q.select v p) in
          let scan = bench_op ~iters:scan_iters (fun () -> naive_select v p) in
          let hits = List.length (Q.select v p) in
          rows :=
            [
              string_of_int n;
              key;
              plan;
              string_of_int hits;
              Report.ms indexed;
              Report.ms scan;
              Printf.sprintf "%.1fx" (scan /. indexed);
            ]
            :: !rows;
          json :=
            Printf.sprintf
              "    {\"case\": \"search\", \"docs\": %d, \"query\": %S, \
               \"plan\": %S, \"hits\": %d, \"select_us\": %.2f, \
               \"scan_us\": %.2f, \"speedup\": %.1f}"
              n key plan hits (indexed *. 1e6) (scan *. 1e6) (scan /. indexed)
            :: !json)
        ops;
      (* wholesale build: what a branch switch or reopen pays *)
      let _, rebuild_t =
        Report.time_of (fun () ->
            DB.set_text_index_enabled db false;
            DB.set_text_index_enabled db true)
      in
      let st = DB.stats db in
      rows :=
        [
          string_of_int n;
          "(rebuild)";
          "-";
          string_of_int st.DB.st_text_docs;
          Report.ms rebuild_t;
          "-";
          Printf.sprintf "%d KiB" (st.DB.st_text_bytes / 1024);
        ]
        :: !rows;
      json :=
        Printf.sprintf
          "    {\"case\": \"build\", \"docs\": %d, \"rebuild_us\": %.2f, \
           \"trigrams\": %d, \"postings\": %d, \"bytes\": %d}"
          n (rebuild_t *. 1e6) st.DB.st_text_trigrams st.DB.st_text_postings
          st.DB.st_text_bytes
        :: !json;
      (* incremental maintenance: set_value with the index on vs off *)
      let touches = min n 2_000 in
      let touch i =
        let c = carriers.(i * 7919 mod n) in
        ok (DB.set_value db c (Some (Value.String (Workloads.text_body ~n i))))
      in
      let time_touches () =
        let _, t =
          Report.time_of (fun () ->
              for i = 1 to touches do
                touch i
              done)
        in
        t /. float_of_int touches
      in
      let on_us = time_touches () in
      DB.set_text_index_enabled db false;
      let off_us = time_touches () in
      DB.set_text_index_enabled db true;
      rows :=
        [
          string_of_int n;
          "(update)";
          "-";
          string_of_int touches;
          Report.ms on_us;
          Report.ms off_us;
          Printf.sprintf "%.2fx" (on_us /. off_us);
        ]
        :: !rows;
      json :=
        Printf.sprintf
          "    {\"case\": \"update\", \"docs\": %d, \"touches\": %d, \
           \"indexed_us\": %.2f, \"plain_us\": %.2f, \"overhead\": %.2f}"
          n touches (on_us *. 1e6) (off_us *. 1e6) (on_us /. off_us)
        :: !json)
    [ 10_000; 100_000 ];
  Report.table
    ~title:
      "containment select: trigram index vs naive scan (plus build/update \
       cost)"
    ~header:[ "docs"; "query"; "plan"; "hits"; "select"; "scan"; "speedup" ]
    (List.rev !rows);
  let oc = open_out "BENCH_text.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"text\",\n  \"command\": \"dune exec bench/main.exe -- \
     text\",\n  \"results\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.rev !json));
  close_out oc;
  Fmt.pr "@.wrote BENCH_text.json@."

(* ------------------------------------------------------------------ *)
(* V1: materialized version views - cached reads vs resolution scans    *)
(* ------------------------------------------------------------------ *)

let version () =
  heading "V1"
    "version reads: materialized extents (cold/warm) vs resolution scan";
  let module Q = Seed_core.Query in
  let module View = Seed_core.View in
  let bench_op ~iters f =
    ignore (f ());
    let _, t =
      Report.time_of (fun () ->
          for _ = 1 to iters do
            ignore (f ())
          done)
    in
    t /. float_of_int iters
  in
  let rows = ref [] in
  let json = ref [] in
  List.iter
    (fun (items, versions) ->
      let db, vids = Workloads.versioned_query_db ~items ~versions in
      (* the newest version: items untouched since round 1 resolve
         through the whole ancestor chain — the worst case for the scan
         path and the case the materialized extent flattens *)
      let vid = List.nth vids (List.length vids - 1) in
      let v = View.at (DB.raw db) vid in
      let iters = if items >= 10_000 then 20 else 100 in
      let ops =
        [
          ("select_by_class", fun () -> ignore (Q.select v (Q.in_class "C4")));
          ("is_a_deep", fun () -> ignore (Q.select v (Q.is_a "C6")));
          ( "name_lookup",
            fun () ->
              ignore (Q.select v (Q.name_is (Workloads.query_name (items / 2))))
          );
          ( "find_object",
            fun () ->
              ignore (View.find_object v (Workloads.query_name (items / 2))) );
        ]
      in
      List.iter
        (fun (key, f) ->
          (* scan: materialization disabled, the retained fallback path *)
          DB.set_version_cache_capacity db 0;
          let scan = bench_op ~iters f in
          (* cold: first read pays the reconstruction sweep *)
          DB.set_version_cache_capacity db 8;
          DB.clear_version_cache db;
          let _, cold = Report.time_of f in
          (* warm: every later read is served from the extent *)
          let warm = bench_op ~iters:(iters * 10) f in
          let hits = List.length (Q.select v (Q.in_class "C4")) in
          ignore hits;
          rows :=
            [
              string_of_int items;
              string_of_int versions;
              key;
              Report.ms scan;
              Report.ms cold;
              Printf.sprintf "%.3f ms" (warm *. 1000.);
              Printf.sprintf "%.1fx" (scan /. warm);
            ]
            :: !rows;
          json :=
            Printf.sprintf
              "    {\"items\": %d, \"versions\": %d, \"query\": %S, \
               \"scan_us\": %.2f, \"cold_us\": %.2f, \"warm_us\": %.2f, \
               \"speedup\": %.1f}"
              items versions key (scan *. 1e6) (cold *. 1e6) (warm *. 1e6)
              (scan /. warm)
            :: !json)
        ops)
    [ (2_000, 8); (10_000, 16); (10_000, 64) ];
  Report.table
    ~title:
      "reads at the deepest version: resolution scan vs materialized extent"
    ~header:
      [ "items"; "versions"; "query"; "scan"; "cold (build)"; "warm"; "speedup" ]
    (List.rev !rows);
  let oc = open_out "BENCH_version.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"version\",\n  \"command\": \"dune exec bench/main.exe \
     -- version\",\n  \"results\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.rev !json));
  close_out oc;
  Fmt.pr "@.wrote BENCH_version.json@."

(* ------------------------------------------------------------------ *)
(* T1: transaction frames - group commit, undo-log rollback,            *)
(*     and recovery past a dangling group                               *)
(* ------------------------------------------------------------------ *)

let txn () =
  heading "T1"
    "transaction frames: group commit, undo-log rollback, dangling-group \
     recovery";
  let module Store = Seed_storage.Store in
  let fresh_dir =
    let c = ref 0 in
    fun () ->
      incr c;
      let d =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "seed_bench_txn_%d_%d" (Unix.getpid ()) !c)
      in
      if Sys.file_exists d then
        Array.iter
          (fun f -> Sys.remove (Filename.concat d f))
          (Sys.readdir d);
      d
  in
  let payload = String.make 512 't' in
  let json = ref [] in
  (* group commit: K records as K bare frames (K fsyncs) vs one
     transaction group (one write, one fsync) under `Always_fsync`.
     Each arm gets its own fresh store and the arms are interleaved
     iteration by iteration: fsync timing drifts with file growth and
     with unrelated host activity, so timing one arm's whole loop after
     the other's bills the drift to whichever ran second (at K=1, where
     both arms write identical bytes, that skew used to be the whole
     reported difference). *)
  let rows =
    List.map
      (fun k ->
        let batch = List.init k (fun _ -> payload) in
        let iters = if k >= 64 then 10 else 100 in
        let bare_store, _, _, _ =
          ok (Store.open_dir ~sync:`Always_fsync (fresh_dir ()))
        in
        let store, _, _, _ =
          ok (Store.open_dir ~sync:`Always_fsync (fresh_dir ()))
        in
        let bare_t = ref 0. and group_t = ref 0. in
        for _ = 1 to iters do
          let t0 = Unix.gettimeofday () in
          List.iter (fun p -> ok (Store.append bare_store p)) batch;
          let t1 = Unix.gettimeofday () in
          ok (Store.append_group store batch);
          let t2 = Unix.gettimeofday () in
          bare_t := !bare_t +. (t1 -. t0);
          group_t := !group_t +. (t2 -. t1)
        done;
        let bare_t = !bare_t and group_t = !group_t in
        Store.close bare_store;
        Store.close store;
        let bare = bare_t /. float_of_int iters in
        let group = group_t /. float_of_int iters in
        json :=
          Printf.sprintf
            "    {\"case\": \"group_commit\", \"batch\": %d, \"bare_us\": \
             %.2f, \"group_us\": %.2f, \"speedup\": %.1f}"
            k (bare *. 1e6) (group *. 1e6) (bare /. group)
          :: !json;
        [
          string_of_int k;
          Report.ms bare;
          Report.ms group;
          Printf.sprintf "%.1fx" (bare /. group);
        ])
      [ 1; 8; 64 ]
  in
  Report.table
    ~title:"committing K records under `Always_fsync: bare frames vs one group"
    ~header:[ "K records"; "K bare appends"; "one group"; "speedup" ]
    rows;
  (* rollback: a failed transaction of B ops dropped by swapping back
     to the savepoint root (O(1)) vs the pre-transaction alternative —
     restoring the database from a serialized snapshot (O(db), what
     Server.checkin used to do); the JSON field keeps its historical
     name [undo_us] so runs stay comparable across revisions *)
  let rollback_ops = 20 in
  let rows =
    List.map
      (fun n ->
        let db = Workloads.seed_populate n in
        let tag = ref 0 in
        let run_txn () =
          incr tag;
          match
            DB.with_transaction db (fun () ->
                for i = 0 to rollback_ops - 1 do
                  ignore
                    (ok
                       (DB.create_object db ~cls:"Action"
                          ~name:(Printf.sprintf "Roll%d_%d" !tag i) ()))
                done;
                Seed_error.fail (Seed_error.Invalid_operation "bench rollback"))
          with
          | Error _ -> ()
          | Ok () -> assert false
        in
        run_txn ();
        let iters = if n >= 2000 then 50 else 200 in
        let _, undo_t =
          Report.time_of (fun () ->
              for _ = 1 to iters do
                run_txn ()
              done)
        in
        let undo = undo_t /. float_of_int iters in
        let _, restore =
          Report.time_of (fun () ->
              let p = Persist.encode_db db in
              ignore (ok (Persist.decode_db p)))
        in
        json :=
          Printf.sprintf
            "    {\"case\": \"rollback\", \"objects\": %d, \"txn_ops\": %d, \
             \"undo_us\": %.2f, \"snapshot_restore_us\": %.2f, \"speedup\": \
             %.1f}"
            (2 * n) rollback_ops (undo *. 1e6) (restore *. 1e6) (restore /. undo)
          :: !json;
        [
          string_of_int (2 * n);
          string_of_int rollback_ops;
          Report.ms undo;
          Report.ms restore;
          Printf.sprintf "%.1fx" (restore /. undo);
        ])
      [ 100; 1_000; 5_000 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "rolling back a failed %d-op transaction: undo log vs snapshot \
          restore"
         rollback_ops)
    ~header:
      [ "db objects"; "txn ops"; "undo rollback"; "snapshot restore"; "ratio" ]
    rows;
  (* recovery past a dangling group: a crash mid-flush leaves an
     unterminated group at the journal's tail; open must drop it whole *)
  let commit_frame_bytes = 16 + 13 in
  let rows =
    List.map
      (fun n ->
        let dir = fresh_dir () in
        let store, _, _, _ = ok (Store.open_dir dir) in
        for _ = 1 to n do
          ok (Store.append store payload)
        done;
        ok (Store.append_group store (List.init 16 (fun _ -> payload)));
        Store.close store;
        (* cut the commit marker off, as a crash mid-flush would *)
        let jpath = Filename.concat dir "journal.log" in
        let fd = Unix.openfile jpath [ Unix.O_RDWR ] 0o644 in
        let size = (Unix.fstat fd).Unix.st_size in
        Unix.ftruncate fd (size - commit_frame_bytes);
        Unix.close fd;
        let (s, _, replayed, rc), t =
          Report.time_of (fun () -> ok (Store.open_dir dir))
        in
        Store.close s;
        json :=
          Printf.sprintf
            "    {\"case\": \"dangling_recovery\", \"committed\": %d, \
             \"replayed\": %d, \"txn_dropped\": %d, \"open_us\": %.2f}"
            n (List.length replayed) rc.Store.txn_dropped (t *. 1e6)
          :: !json;
        [
          string_of_int n;
          string_of_int (List.length replayed);
          string_of_int rc.Store.txn_dropped;
          Report.ms t;
        ])
      [ 100; 1_000; 10_000 ]
  in
  Report.table
    ~title:"open with an unterminated 16-record group at the journal tail"
    ~header:[ "committed records"; "replayed"; "txn dropped"; "open time" ]
    rows;
  let oc = open_out "BENCH_txn.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"txn\",\n  \"command\": \"dune exec bench/main.exe -- \
     txn\",\n  \"results\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.rev !json));
  close_out oc;
  Fmt.pr "@.wrote BENCH_txn.json@."

(* ------------------------------------------------------------------ *)
(* T2: group-commit coalescing - writer threads x journal partitions    *)
(* ------------------------------------------------------------------ *)

let commit () =
  heading "T2"
    "group commit: committed txns/s and fsyncs/txn under `Always_fsync, \
     writer threads x journal partitions x key distribution";
  let module Store = Seed_storage.Store in
  let module CD = Seed_storage.Commit_daemon in
  let fresh_dir =
    let c = ref 0 in
    fun () ->
      incr c;
      let d =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "seed_bench_commit_%d_%d" (Unix.getpid ()) !c)
      in
      if Sys.file_exists d then
        Array.iter
          (fun f -> Sys.remove (Filename.concat d f))
          (Sys.readdir d);
      d
  in
  let payload = String.make 512 'c' in
  (* Two key distributions. [`Uniform] draws routing keys from a 64-key
     pool, spreading groups over all partitions — independent root
     objects under hash routing, the fan-out case. [`Hot] routes every
     group with the same key — concurrent writers contending on one
     root entity, the pure-coalescing case (all load on one partition's
     daemon). Writers are sys-threads, not domains: on few cores the
     blocking fsync releases the runtime lock, which is exactly the
     window where the other writers enqueue, and thread wake-up is
     cheaper than cross-domain wake-up. *)
  let key_of workload w n =
    match workload with
    | `Hot -> "hot-root"
    | `Uniform -> Printf.sprintf "obj%d" (((w * 131) + (n * 7)) mod 64)
  in
  let workload_name = function `Hot -> "hot" | `Uniform -> "uniform" in
  let json = ref [] in
  let baselines = Hashtbl.create 8 in
  let run ~workload ~writers ~partitions =
    let dir = fresh_dir () in
    let store, _, _, _ =
      ok (Store.open_dir ~sync:`Always_fsync ~partitions dir)
    in
    let stop = Atomic.make false in
    let ready = Atomic.make 0 in
    let counts = Array.make writers 0 in
    let worker w =
      Thread.create
        (fun () ->
          Atomic.incr ready;
          while Atomic.get ready <= writers do
            Thread.yield ()
          done;
          let n = ref 0 in
          while not (Atomic.get stop) do
            ok (Store.append_group ~key:(key_of workload w !n) store
                  [ payload; payload ]);
            incr n
          done;
          counts.(w) <- !n)
        ()
    in
    let threads = List.init writers worker in
    (* release the workers only when all are spinning, so spawn-up cost
       stays off the clock *)
    while Atomic.get ready < writers do
      Thread.yield ()
    done;
    let t0 = Unix.gettimeofday () in
    Atomic.incr ready;
    Unix.sleepf 0.5;
    Atomic.set stop true;
    List.iter Thread.join threads;
    let txns = Array.fold_left ( + ) 0 counts in
    let elapsed = Unix.gettimeofday () -. t0 in
    let s =
      List.fold_left
        (fun acc (_, s) -> CD.add_stats acc s)
        CD.empty_stats (Store.write_stats store)
    in
    Store.close store;
    let txns_s = float_of_int txns /. elapsed in
    let fsyncs_txn = float_of_int s.CD.fsyncs /. float_of_int (max 1 txns) in
    if writers = 1 then
      Hashtbl.replace baselines (workload_name workload, partitions) txns_s;
    let speedup =
      match Hashtbl.find_opt baselines (workload_name workload, partitions) with
      | Some base when base > 0. -> txns_s /. base
      | _ -> 1.
    in
    json :=
      Printf.sprintf
        "    {\"case\": \"group_commit_scaling\", \"workload\": \"%s\", \
         \"writers\": %d, \"partitions\": %d, \"txns_per_sec\": %.0f, \
         \"speedup_vs_1_writer\": %.2f, \"fsyncs_per_txn\": %.3f, \
         \"max_batch\": %d, \"queue_hwm\": %d}"
        (workload_name workload) writers partitions txns_s speedup fsyncs_txn
        s.CD.max_batch s.CD.queue_hwm
      :: !json;
    [
      workload_name workload;
      string_of_int writers;
      string_of_int partitions;
      Printf.sprintf "%.0f" txns_s;
      Printf.sprintf "%.2fx" speedup;
      Printf.sprintf "%.2f" fsyncs_txn;
      string_of_int s.CD.max_batch;
      string_of_int s.CD.queue_hwm;
    ]
  in
  let rows =
    List.concat_map
      (fun partitions ->
        List.map
          (fun writers -> run ~workload:`Uniform ~writers ~partitions)
          [ 1; 2; 4; 8; 16; 32 ])
      [ 1; 4 ]
    @ List.map
        (fun writers -> run ~workload:`Hot ~writers ~partitions:4)
        [ 1; 2; 4; 8; 16 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "2-record transaction groups under `Always_fsync (%d cores): \
          coalesced commits and partition fan-out"
         (Domain.recommended_domain_count ()))
    ~header:
      [
        "workload"; "writers"; "parts"; "txns/s"; "vs 1 wr"; "fsyncs/txn";
        "max batch"; "q hwm";
      ]
    rows;
  let oc = open_out "BENCH_commit.json" in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"commit\",\n\
    \  \"command\": \"dune exec bench/main.exe -- commit\",\n\
    \  \"host_cores\": %d,\n\
    \  \"environment_note\": \"single-core host: writer wake-up and the \
     commit-window quantum (~75us OS sleep floor) serialize between \
     fsyncs, and concurrent fsyncs to separate journal files scale \
     ~1.6x at 4 streams on this filesystem; the speedup from batching \
     therefore ramps with writer count rather than arriving at 4 \
     writers, and the fsyncs/txn column is the hardware-independent \
     measure of coalescing\",\n\
    \  \"results\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.rev !json));
  close_out oc;
  Fmt.pr "@.wrote BENCH_commit.json@."

(* ------------------------------------------------------------------ *)
(* C1: chaos - recovery under injected corruption and read faults       *)
(* ------------------------------------------------------------------ *)

let chaos () =
  heading "C1"
    "chaos: quarantine recovery, generation fallback, transient-read \
     absorption";
  let module Store = Seed_storage.Store in
  let module Journal = Seed_storage.Journal in
  let module Faulty = Seed_storage.Faulty_io in
  let fresh_dir =
    let c = ref 0 in
    fun () ->
      incr c;
      let d =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "seed_bench_chaos_%d_%d" (Unix.getpid ()) !c)
      in
      if Sys.file_exists d then
        Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
      d
  in
  let payload = String.make 256 'c' in
  let json = ref [] in
  (* quarantine recovery: N committed records, F frames corrupted at
     evenly spaced offsets; open must resynchronize past every damaged
     region and keep the rest. Survival rate = replayed / (N - F). *)
  let n = 2_000 in
  let rows =
    List.map
      (fun faults ->
        let dir = fresh_dir () in
        let store, _, _, _ = ok (Store.open_dir dir) in
        for _ = 1 to n do
          ok (Store.append store payload)
        done;
        Store.close store;
        let jpath = Filename.concat dir "journal.log" in
        let scan = ok (Journal.scan jpath) in
        let frames = Array.of_list scan.Journal.frames in
        let stride = Array.length frames / (faults + 1) in
        let fd = Unix.openfile jpath [ Unix.O_RDWR ] 0o644 in
        for k = 1 to faults do
          (* flip a CRC byte: every fault is a detectable mid-file region *)
          let off = frames.(k * stride).Journal.f_offset + 12 in
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          let b = Bytes.create 1 in
          ignore (Unix.read fd b 0 1);
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x55));
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          ignore (Unix.write fd b 0 1)
        done;
        Unix.close fd;
        let (s, _, replayed, rc), t =
          Report.time_of (fun () -> ok (Store.open_dir dir))
        in
        Store.close s;
        let survived = List.length replayed in
        let rate = float_of_int survived /. float_of_int (n - faults) in
        json :=
          Printf.sprintf
            "    {\"case\": \"quarantine\", \"records\": %d, \"faults\": %d, \
             \"survived\": %d, \"survival_rate\": %.4f, \"quarantined\": %d, \
             \"open_us\": %.2f}"
            n faults survived rate
            (List.length rc.Store.quarantined)
            (t *. 1e6)
          :: !json;
        [
          string_of_int n;
          string_of_int faults;
          string_of_int survived;
          Printf.sprintf "%.2f%%" (100.0 *. rate);
          string_of_int (List.length rc.Store.quarantined);
          Report.ms t;
        ])
      [ 1; 5; 20 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "open with F corrupt frames quarantined mid-journal (%d records)" n)
    ~header:
      [ "records"; "faults"; "survived"; "survival"; "regions"; "open time" ]
    rows;
  (* generation fallback: primary snapshot corrupt, open walks the
     generation chain; salvage = fsck --repair + reopen *)
  let rows =
    List.map
      (fun size ->
        let snap = String.make size 's' in
        let dir = fresh_dir () in
        let store, _, _, _ = ok (Store.open_dir dir) in
        ok (Store.append store payload);
        ok (Store.compact store ~snapshot:snap);
        ok (Store.append store payload);
        ok (Store.compact store ~snapshot:snap);
        ok (Store.append store payload);
        Store.close store;
        let path = Filename.concat dir "snapshot.bin" in
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
        ignore (Unix.lseek fd (size / 2) Unix.SEEK_SET);
        ignore (Unix.write fd (Bytes.of_string "!") 0 1);
        Unix.close fd;
        let (s, recovered, _, rc), t =
          Report.time_of (fun () -> ok (Store.open_dir dir))
        in
        Store.close s;
        let gen = Option.value rc.Store.snapshot_generation ~default:0 in
        json :=
          Printf.sprintf
            "    {\"case\": \"generation_fallback\", \"snapshot_bytes\": %d, \
             \"generation\": %d, \"recovered\": %b, \"open_us\": %.2f}"
            size gen (recovered <> None) (t *. 1e6)
          :: !json;
        [
          string_of_int size;
          string_of_int gen;
          string_of_bool (recovered <> None);
          Report.ms t;
        ])
      [ 4_096; 262_144; 1_048_576 ]
  in
  Report.table
    ~title:"corrupt primary snapshot: open falls back to generation 1"
    ~header:[ "snapshot bytes"; "generation used"; "recovered"; "open time" ]
    rows;
  (* transient read absorption: the retry layer's cost on open, with
     sleep stubbed out so the numbers are CPU, not timer *)
  let rows =
    List.map
      (fun transients ->
        let dir = fresh_dir () in
        let store, _, _, _ = ok (Store.open_dir dir) in
        ok (Store.append store payload);
        ok (Store.compact store ~snapshot:(String.make 65_536 's'));
        for _ = 1 to 100 do
          ok (Store.append store payload)
        done;
        Store.close store;
        let iters = 50 in
        let _, t =
          Report.time_of (fun () ->
              for _ = 1 to iters do
                let f = Faulty.create ~transient_reads:transients () in
                let s, _, _, _ =
                  ok
                    (Store.open_dir ~io:(Faulty.io f)
                       ~sleep:(fun _ -> ())
                       dir)
                in
                Store.close s
              done)
        in
        let per = t /. float_of_int iters in
        json :=
          Printf.sprintf
            "    {\"case\": \"transient_reads\", \"faults\": %d, \"open_us\": \
             %.2f}"
            transients (per *. 1e6)
          :: !json;
        [ string_of_int transients; Report.ms per ])
      [ 0; 1; 4 ]
  in
  Report.table
    ~title:
      "open of a 64 KiB snapshot + 100-record journal under EINTR bursts \
       (sleep stubbed)"
    ~header:[ "transient read faults"; "open time" ]
    rows;
  let oc = open_out "BENCH_chaos.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"chaos\",\n  \"command\": \"dune exec bench/main.exe -- \
     chaos\",\n  \"results\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.rev !json));
  close_out oc;
  Fmt.pr "@.wrote BENCH_chaos.json@."

(* ------------------------------------------------------------------ *)
(* M1: MVCC read scaling - O(1) snapshots, multi-domain readers         *)
(*     against a committing writer, write-path overhead                 *)
(* ------------------------------------------------------------------ *)

let mvcc () =
  heading "M1"
    "MVCC: snapshot-grab latency, reader domains vs a committing writer, \
     write-path cost";
  let module Q = Seed_core.Query in
  let json = ref [] in
  (* snapshot grab: an O(1) pointer grab of the published root — the
     latency must stay flat as the database grows *)
  let rows =
    List.map
      (fun n ->
        let db = Workloads.seed_populate n in
        let iters = 100_000 in
        let _, t =
          Report.time_of (fun () ->
              for _ = 1 to iters do
                ignore (DB.snapshot_view db)
              done)
        in
        let grab = t /. float_of_int iters in
        let items = 4 * n in
        json :=
          Printf.sprintf
            "    {\"case\": \"snapshot_grab\", \"items\": %d, \"grab_ns\": \
             %.1f}"
            items (grab *. 1e9)
          :: !json;
        [ string_of_int items; Printf.sprintf "%.0f ns" (grab *. 1e9) ])
      [ 250; 2_500; 12_500 ]
  in
  Report.table ~title:"snapshot_view latency vs database size"
    ~header:[ "physical items"; "grab" ] rows;
  (* reader scaling: D reader domains each run a planner query per
     iteration against a freshly pinned snapshot while one writer
     domain commits continuously; the mutex baseline serializes the
     same query and the same writer behind one global lock *)
  let n = 1_000 in
  let db = Workloads.seed_populate n in
  let subs =
    Array.init n (fun i ->
        Option.get (DB.resolve db (Workloads.data_name i ^ ".Description")))
  in
  let pred = Q.in_class "Action" in
  let run_mode mode domains =
    let stop = Atomic.make false in
    let commits = Atomic.make 0 in
    let mutex = Mutex.create () in
    let locked f =
      Mutex.lock mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f
    in
    let reader () =
      let c = ref 0 in
      while not (Atomic.get stop) do
        (match mode with
        | `Mvcc ->
          (* lock-free: pin a snapshot, query it *)
          ignore (Q.count (DB.snapshot_view db) pred)
        | `Mutex -> locked (fun () -> ignore (Q.count (DB.view db) pred)));
        incr c
      done;
      !c
    in
    let writer () =
      let i = ref 0 in
      while not (Atomic.get stop) do
        incr i;
        let id = subs.(!i mod n) in
        let commit () =
          ok (DB.set_value db id (Some (Value.String (string_of_int !i))))
        in
        (match mode with `Mvcc -> commit () | `Mutex -> locked commit);
        Atomic.incr commits
      done
    in
    let dur = 0.4 in
    let rds = List.init domains (fun _ -> Domain.spawn reader) in
    let wr = Domain.spawn writer in
    Unix.sleepf dur;
    Atomic.set stop true;
    let reads = List.fold_left (fun acc d -> acc + Domain.join d) 0 rds in
    Domain.join wr;
    ( float_of_int reads /. dur,
      float_of_int (Atomic.get commits) /. dur )
  in
  (* warm both paths once so domain spawn-up noise is off the clock *)
  ignore (run_mode `Mvcc 1);
  let rows =
    List.concat_map
      (fun domains ->
        List.map
          (fun (label, mode) ->
            let reads_s, commits_s = run_mode mode domains in
            json :=
              Printf.sprintf
                "    {\"case\": \"readers\", \"mode\": \"%s\", \"domains\": \
                 %d, \"reads_per_sec\": %.0f, \"writer_commits_per_sec\": \
                 %.0f}"
                label domains reads_s commits_s
              :: !json;
            [
              label;
              string_of_int domains;
              Printf.sprintf "%.0f" reads_s;
              Printf.sprintf "%.0f" commits_s;
            ])
          [ ("mvcc", `Mvcc); ("mutex", `Mutex) ])
      [ 1; 2; 4 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "planner query on a db of %d clusters under sustained writer load \
          (%d cores — domains timeslice when cores < domains + 1)"
         n
         (Domain.recommended_domain_count ()))
    ~header:[ "mode"; "reader domains"; "reads/s"; "commits/s" ] rows;
  (* single-threaded write path: the copy-on-write commit must stay
     within a small factor of the old in-place write *)
  let db = Workloads.seed_populate 1_000 in
  let iters = 2_000 in
  let _, t =
    Report.time_of (fun () ->
        for i = 1 to iters do
          ignore
            (ok
               (DB.create_object db ~cls:"Action"
                  ~name:(Printf.sprintf "Write%05d" i) ()))
        done)
  in
  let create_us = t /. float_of_int iters *. 1e6 in
  let subs =
    Array.init 1_000 (fun i ->
        Option.get (DB.resolve db (Workloads.data_name i ^ ".Description")))
  in
  let _, t =
    Report.time_of (fun () ->
        for i = 1 to iters do
          ok (DB.set_value db subs.(i mod 1_000) (Some (Value.String "w")))
        done)
  in
  let set_us = t /. float_of_int iters *. 1e6 in
  json :=
    Printf.sprintf
      "    {\"case\": \"write_path\", \"objects\": %d, \"create_us\": %.2f, \
       \"set_value_us\": %.2f}"
      (DB.object_count db) create_us set_us
    :: !json;
  Report.table ~title:"single-threaded write path (db of 1000 clusters)"
    ~header:[ "op"; "per op" ]
    [
      [ "create_object"; Printf.sprintf "%.2f us" create_us ];
      [ "set_value"; Printf.sprintf "%.2f us" set_us ];
    ];
  let oc = open_out "BENCH_mvcc.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"mvcc\",\n  \"command\": \"dune exec bench/main.exe -- \
     mvcc\",\n  \"host_cores\": %d,\n  \"results\": [\n%s\n  ]\n}\n"
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.rev !json));
  close_out oc;
  Fmt.pr "@.wrote BENCH_mvcc.json@."

(* ------------------------------------------------------------------ *)
(* S: the networked server — concurrent clients over TCP               *)
(* ------------------------------------------------------------------ *)

module NS = Seed_net.Net_server
module NC = Seed_net.Net_client

let server () =
  heading "S" "networked server: concurrent clients over TCP (DESIGN.md §13)";
  let json = ref [] in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let with_server f =
    let srv = Seed_server.Server.create Spades_tool.Spec_model.schema in
    ignore
      (ok (DB.create_object (Seed_server.Server.database srv) ~cls:"Data"
             ~name:"Shared" ()));
    let core = NS.create srv in
    match NS.serve ~port:0 core with
    | Error e -> Fmt.failwith "serve: %s" (Seed_error.to_string e)
    | Ok l ->
      Fun.protect
        ~finally:(fun () -> NS.shutdown ~grace:0.05 l)
        (fun () -> f (NS.port l) core)
  in
  (* throughput/latency: each client thread runs a mixed workload of
     pings, finds and check-ins (unique object per check-in) until the
     deadline; latencies are per request, wall clock *)
  let run_point nclients =
    with_server (fun port _core ->
        let duration = 0.5 in
        let reads = Array.make nclients [] in
        let writes = Array.make nclients [] in
        let counts = Array.make nclients 0 in
        let deadline = Unix.gettimeofday () +. duration in
        let worker i () =
          let client = Printf.sprintf "bench-%d" i in
          let cl = NC.connect_tcp ~client ~host:"127.0.0.1" ~port () in
          let n = ref 0 in
          while Unix.gettimeofday () < deadline do
            incr n;
            let t0 = Unix.gettimeofday () in
            let r =
              match !n mod 4 with
              | 0 ->
                Result.map
                  (fun () -> ())
                  (NC.checkin cl
                     [
                       Seed_server.Protocol.Create_object
                         {
                           cls = "InputData";
                           name = Printf.sprintf "B%d_%d" i !n;
                           pattern = false;
                         };
                     ])
              | 1 -> Result.map (fun _ -> ()) (NC.find cl "Shared")
              | _ -> NC.ping cl
            in
            let dt = Unix.gettimeofday () -. t0 in
            (match r with
            | Ok () ->
              if !n mod 4 = 0 then writes.(i) <- dt :: writes.(i)
              else reads.(i) <- dt :: reads.(i)
            | Error _ -> ());
            counts.(i) <- counts.(i) + 1
          done;
          NC.close cl
        in
        let threads = List.init nclients (fun i -> Thread.create (worker i) ()) in
        List.iter Thread.join threads;
        let total = Array.fold_left ( + ) 0 counts in
        let rl =
          Array.to_list reads |> List.concat |> List.map (fun t -> t *. 1e6)
          |> List.sort compare |> Array.of_list
        in
        let nwrites = Array.fold_left (fun a l -> a + List.length l) 0 writes in
        let p50 = percentile rl 0.50
        and p95 = percentile rl 0.95
        and p99 = percentile rl 0.99 in
        let reqs_s = float_of_int total /. duration in
        let checkins_s = float_of_int nwrites /. duration in
        json :=
          Printf.sprintf
            "    {\"case\": \"throughput\", \"clients\": %d, \
             \"reqs_per_sec\": %.0f, \"checkins_per_sec\": %.0f, \
             \"read_p50_us\": %.1f, \"read_p95_us\": %.1f, \"read_p99_us\": \
             %.1f}"
            nclients reqs_s checkins_s p50 p95 p99
          :: !json;
        [
          string_of_int nclients;
          Printf.sprintf "%.0f" reqs_s;
          Printf.sprintf "%.0f" checkins_s;
          Printf.sprintf "%.0f us" p50;
          Printf.sprintf "%.0f us" p95;
          Printf.sprintf "%.0f us" p99;
        ])
  in
  let rows = List.map run_point [ 1; 2; 4; 8 ] in
  Report.table
    ~title:
      "mixed workload over TCP (75% ping/find, 25% check-in), one session \
       per client"
    ~header:[ "clients"; "reqs/s"; "checkins/s"; "read p50"; "p95"; "p99" ]
    rows;
  (* graceful drain: clients hammering when the server shuts down must
     see the retryable [Draining]/a clean close, never a wedge; the
     drain itself must be quick *)
  let drain_ms, clean =
    let srv = Seed_server.Server.create Spades_tool.Spec_model.schema in
    let core = NS.create srv in
    match NS.serve ~port:0 core with
    | Error e -> Fmt.failwith "serve: %s" (Seed_error.to_string e)
    | Ok l ->
      let port = NS.port l in
      let stop = ref false in
      let errors = ref 0 in
      let worker i () =
        let config =
          {
            (NC.default_config ~client:(Printf.sprintf "drain-%d" i)) with
            NC.retry_window = 0.5;
          }
        in
        let cl =
          NC.connect_tcp ~config
            ~client:(Printf.sprintf "drain-%d" i)
            ~host:"127.0.0.1" ~port ()
        in
        let rec loop () =
          if not !stop then
            match NC.ping cl with
            | Ok () -> loop ()
            | Error _ -> incr errors  (* bounded exit, never a hang *)
        in
        loop ();
        NC.close cl
      in
      let threads = List.init 4 (fun i -> Thread.create (worker i) ()) in
      Unix.sleepf 0.1;
      let _, t = Report.time_of (fun () -> NS.shutdown ~grace:0.1 l) in
      stop := true;
      List.iter Thread.join threads;
      (t *. 1000., true)
  in
  json :=
    Printf.sprintf
      "    {\"case\": \"drain\", \"clients\": 4, \"drain_ms\": %.1f, \
       \"clients_unwedged\": %b}"
      drain_ms clean
    :: !json;
  Report.table ~title:"graceful drain under load (4 clients pinging)"
    ~header:[ "measure"; "value" ]
    [
      [ "drain wall time"; Printf.sprintf "%.1f ms" drain_ms ];
      [ "clients unwedged"; string_of_bool clean ];
    ];
  let oc = open_out "BENCH_server.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"server\",\n  \"command\": \"dune exec bench/main.exe \
     -- server\",\n  \"host_cores\": %d,\n  \"results\": [\n%s\n  ]\n}\n"
    (Domain.recommended_domain_count ())
    (String.concat ",\n" (List.rev !json));
  close_out oc;
  Fmt.pr "@.wrote BENCH_server.json@."

(* ------------------------------------------------------------------ *)

let suites =
  [
    ("fig1-2", fig1_2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("query", query);
    ("text", text);
    ("version", version);
    ("txn", txn);
    ("commit", commit);
    ("mvcc", mvcc);
    ("spades", spades);
    ("ablation", ablation);
    ("storage", storage);
    ("recovery", recovery);
    ("chaos", chaos);
    ("server", server);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst suites
  in
  List.iter
    (fun name ->
      match List.assoc_opt name suites with
      | Some f -> f ()
      | None ->
        Fmt.epr "unknown suite %S; available: %s@." name
          (String.concat ", " (List.map fst suites));
        exit 1)
    requested
