(* seed — a command-line shell around a persistent SEED database.

   The database lives in a directory (snapshot + journal). Every command
   opens the directory, performs its operation, flushes, and exits; the
   directory is created by `seed init`.

     seed init /tmp/db
     seed add /tmp/db --class Thing Alarms
     seed set /tmp/db Alarms.Description "Alarms are things"
     seed reclassify /tmp/db Alarms Data
     seed link /tmp/db --assoc Access --from Alarms --by Sensor
     seed report /tmp/db
     seed snapshot /tmp/db
     seed show /tmp/db Alarms
     seed history /tmp/db Alarms *)

open Cmdliner
open Seed_util
open Seed_schema
module DB = Seed_core.Database
module Persist = Seed_core.Persist

let exit_err e =
  Fmt.epr "seed: %s@." (Seed_error.to_string e);
  exit 1

let warn_recovery session =
  let r = Persist.Session.recovery session in
  if not (Seed_storage.Store.recovery_clean r) then
    Fmt.epr "seed: warning: recovery was not clean: %a@."
      Seed_storage.Store.pp_recovery r

let with_session dir f =
  match Persist.Session.open_ ~dir () with
  | Error e -> exit_err e
  | Ok session ->
    warn_recovery session;
    let db = Persist.Session.db session in
    let result = f db in
    (match Persist.Session.flush session with
    | Ok () -> ()
    | Error e ->
      Persist.Session.close session;
      exit_err e);
    Persist.Session.close session;
    (match result with Ok () -> () | Error e -> exit_err e)

let dir_arg =
  Arg.(
    required
    & pos 0 (some dir) None
    & info [] ~docv:"DB" ~doc:"Database directory.")

let dir_new_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DB" ~doc:"Database directory (created).")

(* --- init ----------------------------------------------------------- *)

let init_cmd =
  let run dir schema_file =
    let schema =
      match schema_file with
      | None -> Spades_tool.Spec_model.schema
      | Some path -> (
        let src =
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Schema_text.parse src with
        | Ok s -> s
        | Error e -> exit_err e)
    in
    match Persist.Session.open_ ~dir ~schema () with
    | Error e -> exit_err e
    | Ok session ->
      (match Persist.Session.compact session with
      | Ok () -> Fmt.pr "initialized SEED database in %s@." dir
      | Error e ->
        Persist.Session.close session;
        exit_err e);
      Persist.Session.close session
  in
  let schema_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "schema"; "s" ] ~docv:"FILE"
          ~doc:
            "Schema definition file (see the Schema_text language); \
             defaults to the built-in SPADES specification schema.")
  in
  Cmd.v
    (Cmd.info "init"
       ~doc:"Create a database (default: the SPADES specification schema).")
    Term.(const run $ dir_new_arg $ schema_file)

let schema_cmd =
  let run dir =
    with_session dir (fun db ->
        print_string (Schema_text.print (DB.schema db));
        Ok ())
  in
  Cmd.v
    (Cmd.info "schema" ~doc:"Print the database's schema in the textual \
                             schema language.")
    Term.(const run $ dir_arg)

(* --- add ------------------------------------------------------------ *)

let add_cmd =
  let run dir cls pattern name =
    with_session dir (fun db ->
        match DB.create_object db ~cls ~name ~pattern () with
        | Ok id ->
          Fmt.pr "created %s %s (%a)@."
            (if pattern then "pattern" else "object")
            name Ident.pp id;
          Ok ()
        | Error e -> Error e)
  in
  let cls =
    Arg.(
      value
      & opt string "Thing"
      & info [ "class"; "c" ] ~docv:"CLASS" ~doc:"Object class (default Thing).")
  in
  let pattern =
    Arg.(value & flag & info [ "pattern" ] ~doc:"Enter the object as a pattern.")
  in
  let name_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME")
  in
  Cmd.v
    (Cmd.info "add" ~doc:"Add an independent object.")
    Term.(const run $ dir_arg $ cls $ pattern $ name_arg)

(* --- set ------------------------------------------------------------ *)

let parse_value s =
  match int_of_string_opt s with
  | Some i -> Value.Int i
  | None -> (
    match bool_of_string_opt s with
    | Some b -> Value.Bool b
    | None -> (
      match float_of_string_opt s with
      | Some f -> Value.Float f
      | None -> Value.String s))

let set_cmd =
  let run dir path value =
    with_session dir (fun db ->
        let open Seed_error in
        let* id =
          match DB.resolve db path with
          | Some id -> Ok id
          | None -> (
            (* auto-create a missing single sub-object: X.Role *)
            match String.rindex_opt path '.' with
            | None -> fail (Unknown_object path)
            | Some i ->
              let parent = String.sub path 0 i in
              let role = String.sub path (i + 1) (String.length path - i - 1) in
              (match DB.resolve db parent with
              | Some p ->
                DB.create_sub_object db ~parent:p ~role
                  ~value:(parse_value value) ()
              | None -> fail (Unknown_object parent)))
        in
        let* () = DB.set_value db id (Some (parse_value value)) in
        Fmt.pr "%s = %s@." path value;
        Ok ())
  in
  let path = Arg.(required & pos 1 (some string) None & info [] ~docv:"PATH") in
  let value = Arg.(required & pos 2 (some string) None & info [] ~docv:"VALUE") in
  Cmd.v
    (Cmd.info "set"
       ~doc:"Set the value of a (sub-)object, creating the sub-object if \
             needed.")
    Term.(const run $ dir_arg $ path $ value)

(* --- reclassify ------------------------------------------------------ *)

let reclassify_cmd =
  let run dir name cls =
    with_session dir (fun db ->
        let open Seed_error in
        let* id =
          match DB.resolve db name with
          | Some id -> Ok id
          | None -> fail (Unknown_object name)
        in
        let* () = DB.reclassify db id ~to_:cls in
        Fmt.pr "%s is now a %s@." name cls;
        Ok ())
  in
  let name_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME") in
  let cls = Arg.(required & pos 2 (some string) None & info [] ~docv:"CLASS") in
  Cmd.v
    (Cmd.info "reclassify"
       ~doc:"Make vague information more precise (or vaguer) by moving an \
             object within its generalization hierarchy.")
    Term.(const run $ dir_arg $ name_arg $ cls)

(* --- link ------------------------------------------------------------ *)

let link_cmd =
  let run dir assoc from_ by =
    with_session dir (fun db ->
        let open Seed_error in
        let resolve n =
          match DB.find_object db n with
          | Some id -> Ok id
          | None -> fail (Unknown_object n)
        in
        let* a = resolve from_ in
        let* b = resolve by in
        let* id = DB.create_relationship db ~assoc ~endpoints:[ a; b ] () in
        Fmt.pr "%s(%s, %s) created (%a)@." assoc from_ by Ident.pp id;
        Ok ())
  in
  let assoc =
    Arg.(
      value & opt string "Access"
      & info [ "assoc"; "a" ] ~docv:"ASSOC" ~doc:"Association (default Access).")
  in
  let from_ =
    Arg.(required & opt (some string) None & info [ "from" ] ~docv:"NAME")
  in
  let by = Arg.(required & opt (some string) None & info [ "by" ] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "link" ~doc:"Relate two objects.")
    Term.(const run $ dir_arg $ assoc $ from_ $ by)

(* --- show ------------------------------------------------------------ *)

let show_cmd =
  let run dir name =
    with_session dir (fun db ->
        let v = DB.view db in
        let module View = Seed_core.View in
        let rec print_tree indent (vi : View.vitem) =
          let label =
            match View.vitem_name v vi with
            | Some n -> n
            | None -> Ident.to_string vi.View.item.Seed_core.Item.id
          in
          let value =
            match View.obj_state v vi.View.item with
            | Some { Seed_core.Item.value = Some value; _ } ->
              " = " ^ Value.to_string value
            | _ -> ""
          in
          let cls =
            match View.obj_state v vi.View.item with
            | Some o -> o.Seed_core.Item.cls
            | None -> "?"
          in
          let inherited = if vi.View.via <> None then "  (inherited)" else "" in
          Fmt.pr "%s%s : %s%s%s@." (String.make indent ' ') label cls value
            inherited;
          List.iter (print_tree (indent + 2)) (View.children_v v vi)
        in
        match name with
        | Some n -> (
          match View.resolve_name v n with
          | Some item ->
            print_tree 0 (View.vitem_real item);
            Ok ()
          | None -> Seed_error.fail (Seed_error.Unknown_object n))
        | None ->
          List.iter
            (fun it -> print_tree 0 (View.vitem_real it))
            (View.all_objects v);
          let patterns = View.all_patterns v in
          if patterns <> [] then begin
            Fmt.pr "@.patterns:@.";
            List.iter (fun it -> print_tree 2 (View.vitem_real it)) patterns
          end;
          Ok ())
  in
  let name_arg = Arg.(value & pos 1 (some string) None & info [] ~docv:"NAME") in
  Cmd.v
    (Cmd.info "show" ~doc:"Print an object tree (or the whole database).")
    Term.(const run $ dir_arg $ name_arg)

(* --- dot -------------------------------------------------------------- *)

let dot_cmd =
  let run dir no_subs no_patterns =
    with_session dir (fun db ->
        print_string
          (Seed_core.Dot.of_view ~include_subs:(not no_subs)
             ~include_patterns:(not no_patterns) (DB.view db));
        Ok ())
  in
  let no_subs =
    Arg.(value & flag & info [ "no-subs" ] ~doc:"Omit sub-object values.")
  in
  let no_patterns =
    Arg.(value & flag & info [ "no-patterns" ] ~doc:"Omit patterns and inheritance.")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Emit the current view as a Graphviz digraph (Fig. 1 style).")
    Term.(const run $ dir_arg $ no_subs $ no_patterns)

(* --- select ------------------------------------------------------------ *)

let select_cmd =
  let run dir cls incomplete =
    with_session dir (fun db ->
        let v = DB.view db in
        let module Q = Seed_core.Query in
        let pred =
          let base = match cls with None -> Q.is_a "Thing" | Some c -> Q.is_a c in
          if incomplete then Q.( &&& ) base Q.is_incomplete else base
        in
        List.iter
          (fun (it : Seed_core.Item.t) ->
            Fmt.pr "%s : %s@."
              (Option.get (Seed_core.View.full_name v it))
              (Option.value
                 (Seed_core.View.class_path_of v it)
                 ~default:"?"))
          (Q.select v pred);
        Ok ())
  in
  let cls =
    Arg.(
      value
      & opt (some string) None
      & info [ "class"; "c" ] ~docv:"CLASS"
          ~doc:"Only objects of this class or its specializations.")
  in
  let incomplete =
    Arg.(value & flag & info [ "incomplete" ] ~doc:"Only incomplete objects.")
  in
  Cmd.v
    (Cmd.info "select" ~doc:"Query objects by class and completeness.")
    Term.(const run $ dir_arg $ cls $ incomplete)

(* --- explain ----------------------------------------------------------- *)

(* tiny predicate language for the planner: terms [class=C], [isa=C],
   [name=N], [contains=PATH:NEEDLE] (or [contains=NEEDLE] for any path),
   [incomplete], combined with [and], [or], [not] — binding tightest to
   loosest: not, and, or *)
let parse_pred tokens =
  let module Q = Seed_core.Query in
  let open Seed_error in
  let atom tok =
    match String.index_opt tok '=' with
    | Some i -> (
      let k = String.sub tok 0 i
      and v = String.sub tok (i + 1) (String.length tok - i - 1) in
      match k with
      | "class" -> Ok (Q.in_class v)
      | "isa" -> Ok (Q.is_a v)
      | "name" -> Ok (Q.name_is v)
      | "contains" -> (
        (* class paths never contain ':', so the first one splits
           PATH:NEEDLE; without it the needle searches every path *)
        match String.index_opt v ':' with
        | Some j ->
          let path = String.sub v 0 j
          and needle = String.sub v (j + 1) (String.length v - j - 1) in
          Ok (Q.contains path needle)
        | None -> Ok (Q.contains "" v))
      | _ -> fail (Invalid_operation ("unknown predicate term " ^ tok)))
    | None -> (
      match tok with
      | "incomplete" -> Ok Q.is_incomplete
      | _ -> fail (Invalid_operation ("unknown predicate term " ^ tok)))
  in
  let rec parse_or toks =
    let* l, toks = parse_and toks in
    match toks with
    | "or" :: rest ->
      let* r, toks = parse_or rest in
      Ok (Q.( ||| ) l r, toks)
    | _ -> Ok (l, toks)
  and parse_and toks =
    let* l, toks = parse_not toks in
    match toks with
    | "and" :: rest ->
      let* r, toks = parse_and rest in
      Ok (Q.( &&& ) l r, toks)
    | _ -> Ok (l, toks)
  and parse_not = function
    | "not" :: rest ->
      let* p, toks = parse_not rest in
      Ok (Q.not_ p, toks)
    | tok :: rest ->
      let* p = atom tok in
      Ok (p, rest)
    | [] -> fail (Invalid_operation "empty predicate")
  in
  let* p, leftover = parse_or tokens in
  match leftover with
  | [] -> Ok p
  | tok :: _ -> fail (Invalid_operation ("predicate syntax error at " ^ tok))

let explain_pred db tokens =
  let open Seed_error in
  let* pred = parse_pred tokens in
  let module Q = Seed_core.Query in
  Fmt.pr "%a@." Q.pp_plan (Q.explain (DB.view db) pred);
  Ok ()

let explain_cmd =
  let run dir tokens = with_session dir (fun db -> explain_pred db tokens) in
  let tokens =
    Arg.(
      non_empty & pos_right 0 string []
      & info [] ~docv:"PRED"
          ~doc:
            "Predicate terms: $(b,class=C), $(b,isa=C), $(b,name=N), \
             $(b,contains=PATH:NEEDLE) (or $(b,contains=NEEDLE) for any \
             path), $(b,incomplete), combined with $(b,and), $(b,or), \
             $(b,not).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the access path the query planner would take for a \
          predicate — indexed candidate set with estimated cardinality, \
          or a full scan and why — without running the query.")
    Term.(const run $ dir_arg $ tokens)

(* --- export / import ---------------------------------------------------- *)

let export_cmd =
  let run dir =
    with_session dir (fun db ->
        print_string (Seed_core.Data_text.export_view (DB.view db));
        Ok ())
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Write the current view as a data text (objects, patterns, \
             relationships).")
    Term.(const run $ dir_arg)

let import_cmd =
  let run dir file =
    with_session dir (fun db ->
        let src =
          let ic = open_in file in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let open Seed_error in
        let* () = Seed_core.Data_text.import db src in
        Fmt.pr "imported %s (%d objects now live)@." file (DB.object_count db);
        Ok ())
  in
  let file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:"Replay a data text into the database; every operation goes \
             through the consistency checker.")
    Term.(const run $ dir_arg $ file)

(* --- report ----------------------------------------------------------- *)

let report_cmd =
  let run dir =
    with_session dir (fun db ->
        let report = DB.completeness_report db in
        if report = [] then Fmt.pr "the database is complete@."
        else begin
          Fmt.pr "%d incompleteness finding(s):@." (List.length report);
          List.iter
            (fun d -> Fmt.pr "  - %a@." Seed_core.Completeness.pp_diagnostic d)
            report
        end;
        Ok ())
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Check the completeness conditions (minimum cardinalities, \
             covering generalizations) on demand.")
    Term.(const run $ dir_arg)

(* --- fsck ------------------------------------------------------------- *)

let fsck_cmd =
  let run dir repair =
    match Seed_storage.Store.fsck ~repair dir with
    | Error e -> exit_err e
    | Ok report ->
      Fmt.pr "%a" Seed_storage.Store.pp_fsck_report report;
      (* corruption found is reportable even when it was repaired: an
         operator piping fsck into CI must see a nonzero status *)
      if
        (not report.Seed_storage.Store.fsck_healthy)
        || report.Seed_storage.Store.fsck_repairs <> []
      then exit 1
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Fix what can be fixed: truncate a torn journal tail or a \
             dangling (uncommitted) transaction group, drop a stale journal, \
             promote the snapshot fallback, remove leftover temporary files. \
             An unreadable snapshot with no fallback is quarantined (its \
             data is lost).")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check the health of the store: snapshot and journal integrity, \
          compaction epochs, torn-tail bytes, dangling transaction groups. \
          Exits non-zero when the store needs attention.")
    Term.(const run $ dir_arg $ repair)

(* --- salvage ----------------------------------------------------------- *)

let salvage_cmd =
  let run dir =
    let module Store = Seed_storage.Store in
    (* phase 1: repair everything fsck knows how to fix *)
    let repaired =
      match Store.fsck ~repair:true dir with
      | Error e -> exit_err e
      | Ok report ->
        Fmt.pr "%a" Store.pp_fsck_report report;
        if report.Store.fsck_repairs = [] then Fmt.pr "no repairs needed@.";
        report.Store.fsck_repairs <> []
    in
    (* phase 2: prove the store opens and the data is consistent *)
    match Persist.Session.open_ ~dir () with
    | Error e ->
      Fmt.epr "seed: store does not open after repair: %s@."
        (Seed_error.to_string e);
      exit 2
    | Ok session ->
      let r = Persist.Session.recovery session in
      Fmt.pr "recovery: %a@." Store.pp_recovery r;
      let objects = DB.object_count (Persist.Session.db session) in
      (* compacting folds the salvaged state into a fresh snapshot and
         drops quarantined journal damage for good *)
      (match Persist.Session.compact session with
      | Ok () -> ()
      | Error e ->
        Persist.Session.close session;
        Fmt.epr "seed: compaction after salvage failed: %s@."
          (Seed_error.to_string e);
        exit 2);
      Persist.Session.close session;
      Fmt.pr "salvage complete: %d objects live@." objects;
      (* damage worked around in either phase — repaired by fsck or
         absorbed on open — is still damage the caller should hear about *)
      if repaired || not (Store.recovery_clean r) then exit 1
  in
  Cmd.v
    (Cmd.info "salvage"
       ~doc:
         "Best-effort recovery of a damaged store: run every fsck repair \
          (truncate torn tails, excise quarantined journal regions, fall \
          back through snapshot generations), then reopen the database, \
          verify its consistency, and compact the survivors into a fresh \
          snapshot. Exits 0 when the store was already clean, 1 when \
          damage was found and worked around, 2 when the store cannot be \
          recovered.")
    Term.(const run $ dir_arg)

(* --- snapshot / versions / history ------------------------------------ *)

let parse_hostport s =
  match String.rindex_opt s ':' with
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p -> Ok ((if host = "" then "127.0.0.1" else host), p)
    | None -> Error (Printf.sprintf "invalid port in %S" s))
  | None -> (
    match int_of_string_opt s with
    | Some p -> Ok ("127.0.0.1", p)
    | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" s))

let stats_cmd =
  let run dir server =
    match server with
    | Some addr -> (
      (* live occupancy — sessions, in-flight, lock-table leases — only
         exists in a serving process, so it is asked over the wire *)
      match parse_hostport addr with
      | Error msg ->
        Fmt.epr "seed: %s@." msg;
        exit 1
      | Ok (host, port) -> (
        let client = Printf.sprintf "stats-%d" (Unix.getpid ()) in
        let cl = Seed_net.Net_client.connect_tcp ~client ~host ~port () in
        match Seed_net.Net_client.stats cl with
        | Ok s ->
          Seed_net.Net_client.close cl;
          Fmt.pr "%a@." Seed_net.Wire.pp_server_stats s
        | Error e ->
          Seed_net.Net_client.close cl;
          Fmt.epr "seed: %a@." Seed_net.Net_client.pp_error e;
          exit 1))
    | None -> (
      match dir with
      | Some dir ->
        with_session dir (fun db ->
            Fmt.pr "%a@." DB.pp_stats (DB.stats db);
            Ok ())
      | None ->
        Fmt.epr "seed: stats needs a DB directory or --server HOST:PORT@.";
        exit 1)
  in
  let dir_opt =
    Arg.(
      value & pos 0 (some dir) None & info [] ~docv:"DB" ~doc:"Database directory.")
  in
  let server =
    Arg.(
      value
      & opt (some string) None
      & info [ "server" ] ~docv:"HOST:PORT"
          ~doc:
            "Ask a running $(b,seed serve) instead: adds live occupancy \
             (sessions, in-flight requests, lock leases) to the database \
             summary.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Database size and state summary — of a directory, or of a \
             running server with $(b,--server).")
    Term.(const run $ dir_opt $ server)

let snapshot_cmd =
  let run dir =
    with_session dir (fun db ->
        let open Seed_error in
        let* v = DB.create_version db in
        Fmt.pr "version %a created@." Version_id.pp v;
        Ok ())
  in
  Cmd.v
    (Cmd.info "snapshot" ~doc:"Save the current database state as a version.")
    Term.(const run $ dir_arg)

let versions_cmd =
  let run dir =
    with_session dir (fun db ->
        List.iter
          (fun (n : Seed_core.Versioning.node) ->
            Fmt.pr "%a%s@." Version_id.pp n.Seed_core.Versioning.vid
              (match n.Seed_core.Versioning.parent with
              | Some p -> "  (from " ^ Version_id.to_string p ^ ")"
              | None -> ""))
          (DB.versions db);
        Ok ())
  in
  Cmd.v (Cmd.info "versions" ~doc:"List saved versions.") Term.(const run $ dir_arg)

let branch_cmd =
  let run dir version force =
    with_session dir (fun db ->
        let open Seed_error in
        let* v = Version_id.of_string version in
        let* () = DB.begin_alternative db ~from_:v ~force () in
        Fmt.pr "current version now based on %a@." Version_id.pp v;
        Ok ())
  in
  let version =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"VERSION")
  in
  let force =
    Arg.(value & flag & info [ "force"; "f" ] ~doc:"Discard unsaved changes.")
  in
  Cmd.v
    (Cmd.info "branch"
       ~doc:"Make a historical version the basis of the current version (an \
             alternative). The next snapshot opens a branch.")
    Term.(const run $ dir_arg $ version $ force)

let delete_version_cmd =
  let run dir version =
    with_session dir (fun db ->
        let open Seed_error in
        let* v = Version_id.of_string version in
        let* () = DB.delete_version db v in
        Fmt.pr "version %a deleted@." Version_id.pp v;
        Ok ())
  in
  let version =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"VERSION")
  in
  Cmd.v
    (Cmd.info "delete-version"
       ~doc:"Delete a leaf version (versions cannot be modified, except for \
             deletion).")
    Term.(const run $ dir_arg $ version)

let diff_cmd =
  let run dir v1 v2 =
    with_session dir (fun db ->
        let open Seed_error in
        let* v1 = Version_id.of_string v1 in
        let* v2 = Version_id.of_string v2 in
        let* changed = Seed_core.History.changed_between db v1 v2 in
        if changed = [] then Fmt.pr "versions are identical@."
        else
          List.iter
            (fun id ->
              let describe v =
                match Seed_core.History.state_in db id v with
                | Ok (Some (Seed_core.Item.Obj o)) ->
                  Printf.sprintf "%s%s%s"
                    o.Seed_core.Item.cls
                    (match o.Seed_core.Item.value with
                    | Some value -> " = " ^ Seed_schema.Value.to_string value
                    | None -> "")
                    (if o.Seed_core.Item.deleted then " (deleted)" else "")
                | Ok (Some (Seed_core.Item.Rel r)) ->
                  Printf.sprintf "%s%s" r.Seed_core.Item.assoc
                    (if r.Seed_core.Item.rel_deleted then " (deleted)" else "")
                | Ok None -> "(absent)"
                | Error _ -> "(?)"
              in
              let name =
                match DB.full_name db id with
                | Some n -> n
                | None -> Ident.to_string id
              in
              Fmt.pr "%s: %s  ->  %s@." name (describe v1) (describe v2))
            changed;
        Ok ())
  in
  let v1 = Arg.(required & pos 1 (some string) None & info [] ~docv:"FROM") in
  let v2 = Arg.(required & pos 2 (some string) None & info [] ~docv:"TO") in
  Cmd.v
    (Cmd.info "diff" ~doc:"Show the items whose state differs between two versions.")
    Term.(const run $ dir_arg $ v1 $ v2)

let history_cmd =
  let run dir name from_ =
    with_session dir (fun db ->
        let open Seed_error in
        let* from_ =
          match from_ with
          | None -> Ok None
          | Some s ->
            let* v = Version_id.of_string s in
            Ok (Some v)
        in
        let* entries = Seed_core.History.versions_of_object db name ?from_ () in
        List.iter (fun e -> Fmt.pr "%a@." Seed_core.History.pp_entry e) entries;
        Ok ())
  in
  let name_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME") in
  let from_ =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"VERSION"
          ~doc:"List versions beginning with this one.")
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"Find all versions of an object, optionally beginning with a \
             given version.")
    Term.(const run $ dir_arg $ name_arg $ from_)

(* --- shell -------------------------------------------------------------- *)

(* minimal tokenizer: whitespace-separated words, double quotes group *)
let split_words line =
  let n = String.length line in
  let words = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  let rec go i in_quotes =
    if i >= n then flush ()
    else
      match line.[i] with
      | '"' -> go (i + 1) (not in_quotes)
      | (' ' | '\t') when not in_quotes ->
        flush ();
        go (i + 1) false
      | c ->
        Buffer.add_char buf c;
        go (i + 1) in_quotes
  in
  go 0 false;
  List.rev !words

let shell_help () =
  print_string
    "commands:\n\
    \  add [-p] CLASS NAME        create an (optionally pattern) object\n\
    \  set PATH VALUE             set a value (creates the sub-object)\n\
    \  link ASSOC FROM TO         relate two objects\n\
    \  reclassify NAME CLASS      move within the generalization hierarchy\n\
    \  inherit PATTERN NAME       NAME inherits PATTERN\n\
    \  delete PATH                logical deletion\n\
    \  show [NAME]                object tree(s)\n\
    \  report                     completeness findings\n\
    \  explain PRED...            planner access path for a predicate\n\
    \  search [PATH:]N [N...]     objects whose text contains every needle\n\
    \  stats                      database summary\n\
    \  snapshot                   save a version\n\
    \  versions                   list versions\n\
    \  select [VERSION]           choose the retrieval version\n\
    \  branch VERSION             rebase the current state\n\
    \  help                       this text\n\
    \  quit                       flush and exit\n"

let shell_cmd =
  let run dir =
    match Persist.Session.open_ ~dir () with
    | Error e -> exit_err e
    | Ok session ->
      warn_recovery session;
      let db = Persist.Session.db session in
      let report_result = function
        | Ok () -> ()
        | Error e -> Fmt.pr "error: %s@." (Seed_error.to_string e)
      in
      let resolve_or_fail name k =
        match DB.resolve db name with
        | Some id -> k id
        | None -> Fmt.pr "error: unknown object %s@." name
      in
      let running = ref true in
      while !running do
        print_string "seed> ";
        match In_channel.input_line stdin with
        | None -> running := false
        | Some line -> (
          match split_words line with
          | [] -> ()
          | [ "quit" ] | [ "exit" ] -> running := false
          | [ "help" ] -> shell_help ()
          | [ "add"; cls; name ] ->
            report_result
              (Result.map (fun _ -> ()) (DB.create_object db ~cls ~name ()))
          | [ "add"; "-p"; cls; name ] ->
            report_result
              (Result.map
                 (fun _ -> ())
                 (DB.create_object db ~cls ~name ~pattern:true ()))
          | [ "set"; path; value ] ->
            let open Seed_error in
            report_result
              (let* id =
                 match DB.resolve db path with
                 | Some id -> Ok id
                 | None -> (
                   match String.rindex_opt path '.' with
                   | None -> fail (Unknown_object path)
                   | Some i -> (
                     let parent = String.sub path 0 i in
                     let role =
                       String.sub path (i + 1) (String.length path - i - 1)
                     in
                     match DB.resolve db parent with
                     | Some p ->
                       DB.create_sub_object db ~parent:p ~role
                         ~value:(parse_value value) ()
                     | None -> fail (Unknown_object parent)))
               in
               DB.set_value db id (Some (parse_value value)))
          | [ "link"; assoc; a; b ] ->
            resolve_or_fail a (fun x ->
                resolve_or_fail b (fun y ->
                    report_result
                      (Result.map
                         (fun _ -> ())
                         (DB.create_relationship db ~assoc
                            ~endpoints:[ x; y ] ()))))
          | [ "reclassify"; name; cls ] ->
            resolve_or_fail name (fun id ->
                report_result (DB.reclassify db id ~to_:cls))
          | [ "inherit"; pname; iname ] -> (
            match (DB.find_pattern db pname, DB.find_object db iname) with
            | Some pattern, Some inheritor ->
              report_result (DB.inherit_pattern db ~pattern ~inheritor)
            | _ -> Fmt.pr "error: unknown pattern or object@.")
          | [ "delete"; path ] ->
            resolve_or_fail path (fun id -> report_result (DB.delete db id))
          | [ "show" ] | [ "show"; _ ] -> (
            let v = DB.view db in
            let module View = Seed_core.View in
            let rec tree indent (vi : View.vitem) =
              (match View.vitem_name v vi with
              | Some n ->
                Fmt.pr "%s%s : %s%s@." (String.make indent ' ') n
                  (Option.value (View.class_path_of v vi.View.item) ~default:"?")
                  (match View.obj_state v vi.View.item with
                  | Some { Seed_core.Item.value = Some value; _ } ->
                    " = " ^ Seed_schema.Value.to_string value
                  | _ -> "")
              | None -> ());
              List.iter (tree (indent + 2)) (View.children_v v vi)
            in
            match split_words line with
            | [ "show"; name ] -> (
              match View.resolve_name v name with
              | Some it -> tree 0 (View.vitem_real it)
              | None -> Fmt.pr "error: unknown object %s@." name)
            | _ ->
              List.iter (fun it -> tree 0 (View.vitem_real it)) (View.all_objects v))
          | [ "report" ] ->
            let findings = DB.completeness_report db in
            if findings = [] then Fmt.pr "complete@."
            else
              List.iter
                (fun d -> Fmt.pr "- %a@." Seed_core.Completeness.pp_diagnostic d)
                findings
          | "explain" :: tokens -> report_result (explain_pred db tokens)
          | "search" :: tokens -> (
            match tokens with
            | [] -> Fmt.pr "error: search needs at least one needle@."
            | first :: rest ->
              (* a ':' in the first token scopes the search to one class
                 path, mirroring the explain syntax contains=PATH:NEEDLE *)
              let path, needles =
                match String.index_opt first ':' with
                | Some i ->
                  ( String.sub first 0 i,
                    String.sub first (i + 1) (String.length first - i - 1)
                    :: rest )
                | None -> ("", first :: rest)
              in
              let module Q = Seed_core.Query in
              let v = DB.view db in
              let hits = Q.select v (Q.matches path needles) in
              if hits = [] then Fmt.pr "no matches@."
              else
                List.iter
                  (fun it ->
                    match Seed_core.View.full_name v it with
                    | Some n -> Fmt.pr "%s@." n
                    | None -> ())
                  hits)
          | [ "stats" ] -> Fmt.pr "%a@." DB.pp_stats (DB.stats db)
          | [ "snapshot" ] ->
            report_result
              (Result.map
                 (fun v -> Fmt.pr "version %a@." Version_id.pp v)
                 (DB.create_version db))
          | [ "versions" ] ->
            List.iter
              (fun (n : Seed_core.Versioning.node) ->
                Fmt.pr "%a@." Version_id.pp n.Seed_core.Versioning.vid)
              (DB.versions db)
          | [ "select" ] -> report_result (DB.select_version db None)
          | [ "select"; v ] ->
            let open Seed_error in
            report_result
              (let* vid = Version_id.of_string v in
               DB.select_version db (Some vid))
          | [ "branch"; v ] ->
            let open Seed_error in
            report_result
              (let* vid = Version_id.of_string v in
               DB.begin_alternative db ~from_:vid ())
          | w :: _ -> Fmt.pr "error: unknown command %s (try 'help')@." w)
      done;
      (match Persist.Session.flush session with
      | Ok () -> ()
      | Error e -> Fmt.epr "flush failed: %s@." (Seed_error.to_string e));
      Persist.Session.close session
  in
  Cmd.v
    (Cmd.info "shell"
       ~doc:"Interactive session against a database directory; changes are \
             flushed on exit.")
    Term.(const run $ dir_arg)

(* --- serve / connect ---------------------------------------------------- *)

let serve_cmd =
  let run dir host port ttl max_sessions max_in_flight =
    match Persist.Session.open_ ~dir () with
    | Error e -> exit_err e
    | Ok session ->
      warn_recovery session;
      let engine = Seed_server.Server.of_session session in
      let config =
        {
          Seed_net.Net_server.default_config with
          session_ttl = ttl;
          max_sessions;
          max_in_flight;
        }
      in
      let core = Seed_net.Net_server.create ~config engine in
      (match Seed_net.Net_server.serve ~host ~port core with
      | Error e ->
        Persist.Session.close session;
        exit_err e
      | Ok listener ->
        (* the exact line a supervisor (or a test) scrapes for the
           ephemeral port when started with --port 0 *)
        Fmt.pr "seed: serving %s on %s:%d (session ttl %gs)@." dir host
          (Seed_net.Net_server.port listener)
          ttl;
        let stop = ref false in
        let handler = Sys.Signal_handle (fun _ -> stop := true) in
        Sys.set_signal Sys.sigint handler;
        Sys.set_signal Sys.sigterm handler;
        while not !stop do
          Thread.delay 0.1
        done;
        Fmt.pr "seed: draining@.";
        Seed_net.Net_server.shutdown listener;
        (match Persist.Session.flush session with
        | Ok () -> ()
        | Error e ->
          Fmt.epr "seed: final flush failed: %s@." (Seed_error.to_string e));
        Persist.Session.close session;
        Fmt.pr "seed: stopped@.")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (default loopback).")
  in
  let port =
    Arg.(
      value & opt int 7464
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"TCP port (0 picks an ephemeral port, printed on startup).")
  in
  let ttl =
    Arg.(
      value & opt float 30.0
      & info [ "ttl" ] ~docv:"SECONDS"
          ~doc:
            "Session lease: a client silent this long loses its session \
             and all its locks.")
  in
  let max_sessions =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Admission cap; further clients get a retryable Busy.")
  in
  let max_in_flight =
    Arg.(
      value & opt int 128
      & info [ "max-in-flight" ] ~docv:"N"
          ~doc:"Cap on concurrently executing requests (load shedding).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a database directory to networked clients. Sessions hold \
          TTL leases, so a dead client's locks are reaped; SIGINT/SIGTERM \
          drains gracefully (in-flight requests finish, queued clients get \
          a retryable error).")
    Term.(const run $ dir_arg $ host $ port $ ttl $ max_sessions $ max_in_flight)

let connect_help () =
  print_string
    "commands:\n\
    \  checkout [-w SECS] NAME...  write-lock objects (optionally waiting);\n\
    \                              a successful check-in releases the locks\n\
    \  add CLASS NAME              check in a new object\n\
    \  set PATH VALUE              check in a value update\n\
    \  link ASSOC FROM TO          check in a relationship\n\
    \  delete PATH                 check in a deletion\n\
    \  release                     drop locks without applying\n\
    \  find NAME                   class of an object, via a server snapshot\n\
    \  select CLASS                names of objects that are-a CLASS\n\
    \  search [PATH:]N [N...]      objects whose text contains every needle\n\
    \                              (trigram-indexed on the server)\n\
    \  stats                       server occupancy and database summary\n\
    \  ping                        round-trip check\n\
    \  help                        this text\n\
    \  quit                        free the session's locks and exit\n"

(* one REPL/script command against a connected client; false = the
   command failed (used for --exec exit status) *)
let connect_exec cl words =
  let module C = Seed_net.Net_client in
  let module P = Seed_server.Protocol in
  let report = function
    | Ok () -> true
    | Error e ->
      Fmt.pr "error: %a@." C.pp_error e;
      false
  in
  match words with
  | [] -> true
  | [ "help" ] ->
    connect_help ();
    true
  | "checkout" :: "-w" :: secs :: names -> (
    match float_of_string_opt secs with
    | Some s when names <> [] ->
      report (C.checkout ~wait_timeout:s cl names)
    | _ ->
      Fmt.pr "error: usage: checkout -w SECS NAME...@.";
      false)
  | "checkout" :: (_ :: _ as names) -> report (C.checkout cl names)
  | [ "add"; cls; name ] ->
    report (C.checkin cl [ P.Create_object { cls; name; pattern = false } ])
  | [ "set"; path; value ] -> (
    let v = Some (parse_value value) in
    match C.checkin cl [ P.Set_value { path; value = v } ] with
    | Ok () -> true
    | Error (C.Remote { code = Seed_net.Wire.Unknown_name; _ })
      when String.contains path '.' ->
      (* mirror the local CLI: a missing sub-object is created on first
         set *)
      let i = String.rindex path '.' in
      let owner = String.sub path 0 i in
      let role = String.sub path (i + 1) (String.length path - i - 1) in
      report
        (C.checkin cl [ P.Create_sub { owner; role; index = None; value = v } ])
    | Error e ->
      Fmt.pr "error: %a@." C.pp_error e;
      false)
  | [ "link"; assoc; from_; to_ ] ->
    report
      (C.checkin cl
         [ P.Create_rel { assoc; endpoints = [ from_; to_ ]; pattern = false } ])
  | [ "delete"; path ] -> report (C.checkin cl [ P.Delete { path } ])
  | [ "release" ] -> report (C.release cl)
  | [ "find"; name ] -> (
    match C.find cl name with
    | Ok (Some cls) ->
      Fmt.pr "%s : %s@." name cls;
      true
    | Ok None ->
      Fmt.pr "%s: not found@." name;
      true
    | Error e ->
      Fmt.pr "error: %a@." C.pp_error e;
      false)
  | [ "select"; cls ] -> (
    match C.select_isa cl cls with
    | Ok names ->
      List.iter (Fmt.pr "%s@.") names;
      true
    | Error e ->
      Fmt.pr "error: %a@." C.pp_error e;
      false)
  | "search" :: first :: rest -> (
    let path, needles =
      match String.index_opt first ':' with
      | Some i ->
        ( String.sub first 0 i,
          String.sub first (i + 1) (String.length first - i - 1) :: rest )
      | None -> ("", first :: rest)
    in
    match C.search cl ~path needles with
    | Ok [] ->
      Fmt.pr "no matches@.";
      true
    | Ok names ->
      List.iter (Fmt.pr "%s@.") names;
      true
    | Error e ->
      Fmt.pr "error: %a@." C.pp_error e;
      false)
  | [ "stats" ] -> (
    match C.stats cl with
    | Ok s ->
      Fmt.pr "%a@." Seed_net.Wire.pp_server_stats s;
      true
    | Error e ->
      Fmt.pr "error: %a@." C.pp_error e;
      false)
  | [ "ping" ] -> (
    match C.ping cl with
    | Ok () ->
      Fmt.pr "pong@.";
      true
    | Error e ->
      Fmt.pr "error: %a@." C.pp_error e;
      false)
  | w :: _ ->
    Fmt.pr "error: unknown command %s (try 'help')@." w;
    false

let connect_cmd =
  let run addr client execs =
    match parse_hostport addr with
    | Error msg ->
      Fmt.epr "seed: %s@." msg;
      exit 1
    | Ok (host, port) ->
      let client =
        match client with
        | Some c -> c
        | None -> Printf.sprintf "cli-%d" (Unix.getpid ())
      in
      let cl = Seed_net.Net_client.connect_tcp ~client ~host ~port () in
      let status = ref 0 in
      if execs <> [] then
        (* script mode: each --exec is a ';'-separated command list *)
        List.iter
          (fun script ->
            List.iter
              (fun cmd ->
                if not (connect_exec cl (split_words cmd)) then status := 1)
              (String.split_on_char ';' script))
          execs
      else begin
        let running = ref true in
        while !running do
          Fmt.pr "%s@%s:%d> " client host port;
          Format.pp_print_flush Format.std_formatter ();
          match In_channel.input_line stdin with
          | None -> running := false
          | Some line -> (
            match split_words line with
            | [ "quit" ] | [ "exit" ] -> running := false
            | words -> ignore (connect_exec cl words))
        done
      end;
      Seed_net.Net_client.close cl;
      exit !status
  in
  let addr =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HOST:PORT" ~doc:"A running $(b,seed serve).")
  in
  let client =
    Arg.(
      value
      & opt (some string) None
      & info [ "client"; "c" ] ~docv:"NAME"
          ~doc:"Lock-owner name (default cli-<pid>).")
  in
  let execs =
    Arg.(
      value & opt_all string []
      & info [ "exec"; "e" ] ~docv:"CMDS"
          ~doc:
            "Run this ';'-separated command list instead of the interactive \
             prompt; exits non-zero if any command fails. Repeatable.")
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:
         "Connect to a $(b,seed serve). The client library reconnects with \
          exponential backoff, resumes its session inside the lease window \
          and replays lost requests idempotently.")
    Term.(const run $ addr $ client $ execs)

let main =
  Cmd.group
    (Cmd.info "seed" ~version:"1.0"
       ~doc:
         "A DBMS for software engineering applications based on the \
          entity-relationship approach (Glinz & Ludewig, ICDE 1986).")
    [
      init_cmd;
      schema_cmd;
      add_cmd;
      set_cmd;
      reclassify_cmd;
      link_cmd;
      show_cmd;
      select_cmd;
      explain_cmd;
      dot_cmd;
      export_cmd;
      import_cmd;
      report_cmd;
      fsck_cmd;
      salvage_cmd;
      stats_cmd;
      snapshot_cmd;
      versions_cmd;
      branch_cmd;
      delete_version_cmd;
      diff_cmd;
      history_cmd;
      shell_cmd;
      serve_cmd;
      connect_cmd;
    ]

let () = exit (Cmd.eval main)
