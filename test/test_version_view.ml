(* Cached version views must be invisible.

   A materialized version extent ([Db_state.version_extent]) answers
   [Query], [View.all_*], [View.find_object], and [History] reads for a
   saved version. Its one obligation is to agree, always, with the
   definition of a version view: resolve every item to the stamp of the
   nearest ancestor of the version. The references below bypass {e all}
   acceleration — the extent cache, the memoized ancestor chains, and
   the planner — by walking explicit parent links with [Item.stamp_at]
   and evaluating a private predicate AST, so drift in any layer
   surfaces as a disagreement here. The suite drives random operation
   sequences (including version deletion), then checks every surviving
   version under the default cache, a capacity-1 cache (eviction paths),
   a disabled cache (fallback scans), and after a persistence
   roundtrip. *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module Db_state = Seed_core.Db_state
module Versioning = Seed_core.Versioning
module View = Seed_core.View
module Item = Seed_core.Item
module Q = Seed_core.Query
module History = Seed_core.History
module Persist = Seed_core.Persist

(* ------------------------------------------------------------------ *)
(* Symbolic operations                                                  *)
(* ------------------------------------------------------------------ *)

type op =
  | Create of int * string
  | CreatePattern of int
  | CreateSub of int * int
  | SetValue of int * int
  | Rename of int * int
  | CreateRel of int * int * string
  | Reclassify of int * string
  | Delete of int
  | Inherit of int * int
  | Snapshot
  | Branch of int
  | DeleteVersion of int

let classes = [ "Thing"; "Data"; "Action"; "InputData"; "OutputData" ]
let assocs = [ "Access"; "Read"; "Write"; "Contained" ]

let op_gen =
  let open QCheck2.Gen in
  frequency
    [
      (5, map2 (fun i c -> Create (i, c)) (int_bound 40) (oneofl classes));
      (1, map (fun i -> CreatePattern i) (int_bound 40));
      (2, map2 (fun i v -> CreateSub (i, v)) (int_bound 40) (int_bound 99));
      (2, map2 (fun i v -> SetValue (i, v)) (int_bound 40) (int_bound 99));
      (2, map2 (fun i n -> Rename (i, n)) (int_bound 40) (int_bound 40));
      ( 3,
        map3
          (fun a b s -> CreateRel (a, b, s))
          (int_bound 40) (int_bound 40) (oneofl assocs) );
      (3, map2 (fun i c -> Reclassify (i, c)) (int_bound 40) (oneofl classes));
      (2, map (fun i -> Delete i) (int_bound 40));
      (1, map2 (fun p i -> Inherit (p, i)) (int_bound 40) (int_bound 40));
      (2, return Snapshot);
      (1, map (fun i -> Branch i) (int_bound 8));
      (1, map (fun i -> DeleteVersion i) (int_bound 8));
    ]

let ops_gen = QCheck2.Gen.(list_size (int_range 0 60) op_gen)

type env = {
  db : DB.t;
  mutable objects : Ident.t list;
  mutable subs : Ident.t list;
  mutable patterns : Ident.t list;
  mutable versions : Version_id.t list;
}

let pick xs i =
  match xs with [] -> None | _ -> Some (List.nth xs (i mod List.length xs))

let apply env op =
  let ignore_result (r : (_, Seed_error.t) result) = ignore r in
  match op with
  | Create (i, cls) -> (
    match DB.create_object env.db ~cls ~name:(Printf.sprintf "obj%d" i) () with
    | Ok id -> env.objects <- id :: env.objects
    | Error _ -> ())
  | CreatePattern i -> (
    match
      DB.create_object env.db ~cls:"Data" ~name:(Printf.sprintf "pat%d" i)
        ~pattern:true ()
    with
    | Ok id -> env.patterns <- id :: env.patterns
    | Error _ -> ())
  | CreateSub (i, v) -> (
    match pick env.objects i with
    | None -> ()
    | Some parent -> (
      match
        DB.create_sub_object env.db ~parent ~role:"Description"
          ~value:(Value.String (Printf.sprintf "d%d" v))
          ()
      with
      | Ok id -> env.subs <- id :: env.subs
      | Error _ -> ()))
  | SetValue (i, v) -> (
    match pick env.subs i with
    | None -> ()
    | Some id ->
      ignore_result
        (DB.set_value env.db id (Some (Value.String (Printf.sprintf "d%d" v)))))
  | Rename (i, n) -> (
    match pick env.objects i with
    | None -> ()
    | Some id ->
      ignore_result (DB.rename_object env.db id (Printf.sprintf "obj%dR" n)))
  | CreateRel (a, b, assoc) -> (
    match (pick env.objects a, pick env.objects b) with
    | Some x, Some y ->
      ignore_result (DB.create_relationship env.db ~assoc ~endpoints:[ x; y ] ())
    | _ -> ())
  | Reclassify (i, cls) -> (
    match pick env.objects i with
    | None -> ()
    | Some id -> ignore_result (DB.reclassify env.db id ~to_:cls))
  | Delete i -> (
    match pick env.objects i with
    | None -> ()
    | Some id -> ignore_result (DB.delete env.db id))
  | Inherit (p, i) -> (
    match (pick env.patterns p, pick env.objects i) with
    | Some pattern, Some inheritor ->
      ignore_result (DB.inherit_pattern env.db ~pattern ~inheritor)
    | _ -> ())
  | Snapshot -> (
    match DB.create_version env.db with
    | Ok v -> env.versions <- v :: env.versions
    | Error _ -> ())
  | Branch i -> (
    match pick env.versions i with
    | None -> ()
    | Some v ->
      ignore_result (DB.begin_alternative env.db ~from_:v ~force:true ()))
  | DeleteVersion i -> (
    match pick env.versions i with
    | None -> ()
    | Some v -> (
      match DB.delete_version env.db v with
      | Ok () ->
        env.versions <-
          List.filter (fun w -> not (Version_id.equal w v)) env.versions
      | Error _ -> ()))

let run_model ops =
  let env =
    {
      db = DB.create (fig3_schema ());
      objects = [];
      subs = [];
      patterns = [];
      versions = [];
    }
  in
  List.iter (apply env) ops;
  env

(* ------------------------------------------------------------------ *)
(* Reference implementations (no memo, no cache, no planner)            *)
(* ------------------------------------------------------------------ *)

(* The defining walk: the stamp at the nearest ancestor, following the
   version tree's explicit parent links only. *)
let ref_state st (it : Item.t) vid =
  let rec go v =
    match Item.stamp_at it v with
    | Some s -> Some s
    | None -> (
      match Versioning.find (Db_state.versions st) v with
      | None -> None
      | Some n -> (
        match n.Versioning.parent with None -> None | Some p -> go p))
  in
  go vid

let sorted_ids items =
  List.map (fun (it : Item.t) -> it.Item.id) items |> List.sort Ident.compare

let ref_fold st vid keep =
  Db_state.fold_items st ~init:[] ~f:(fun acc it ->
      match ref_state st it vid with
      | Some s when keep it s -> it.Item.id :: acc
      | Some _ | None -> acc)
  |> List.sort Ident.compare

let ref_all_objects st vid =
  ref_fold st vid (fun it s ->
      it.Item.body = Item.Independent
      && (not (Item.state_deleted s))
      && not (Item.state_pattern s))

let ref_all_patterns st vid =
  ref_fold st vid (fun it s ->
      it.Item.body = Item.Independent
      && (not (Item.state_deleted s))
      && Item.state_pattern s)

let ref_all_rels st vid =
  ref_fold st vid (fun it s ->
      it.Item.body = Item.Relationship
      && (not (Item.state_deleted s))
      && not (Item.state_pattern s))

let ref_select_rels st vid assoc =
  let schema = View.schema (View.at st vid) in
  ref_fold st vid (fun it s ->
      match (it.Item.body, s) with
      | Item.Relationship, Item.Rel rs ->
        (not rs.Item.rel_deleted)
        && (not rs.Item.rel_pattern)
        && Schema.assoc_is_a schema ~sub:rs.Item.assoc ~super:assoc
      | _ -> false)

(* find_object: live independents, patterns included (callers filter) *)
let ref_find st vid name =
  Db_state.fold_items st ~init:None ~f:(fun acc it ->
      match acc with
      | Some _ -> acc
      | None -> (
        if it.Item.body <> Item.Independent then None
        else
          match ref_state st it vid with
          | Some (Item.Obj { Item.name = Some n; deleted = false; _ })
            when String.equal n name ->
            Some it.Item.id
          | Some _ | None -> None))

let ref_changed st v1 v2 =
  Db_state.fold_items st ~init:[] ~f:(fun acc it ->
      if ref_state st it v1 <> ref_state st it v2 then it.Item.id :: acc
      else acc)
  |> List.sort Ident.compare

(* A private predicate AST, evaluated directly on reference-resolved
   object states — independent of [Query.test] and of [View]. *)
type tpred =
  | TIn of string
  | TIsa of string
  | TName of string
  | TAnd of tpred * tpred
  | TOr of tpred * tpred
  | TNot of tpred

let rec to_q = function
  | TIn c -> Q.in_class c
  | TIsa c -> Q.is_a c
  | TName n -> Q.name_is n
  | TAnd (a, b) -> Q.( &&& ) (to_q a) (to_q b)
  | TOr (a, b) -> Q.( ||| ) (to_q a) (to_q b)
  | TNot a -> Q.not_ (to_q a)

let rec ref_eval schema (o : Item.obj_state) = function
  | TIn c -> String.equal o.Item.cls c
  | TIsa c -> Schema.class_is_a schema ~sub:o.Item.cls ~super:c
  | TName n -> (
    (* an independent's full name is its own name *)
    match o.Item.name with Some m -> String.equal m n | None -> false)
  | TAnd (a, b) -> ref_eval schema o a && ref_eval schema o b
  | TOr (a, b) -> ref_eval schema o a || ref_eval schema o b
  | TNot a -> not (ref_eval schema o a)

let ref_select st vid p =
  let schema = View.schema (View.at st vid) in
  ref_fold st vid (fun it s ->
      match (it.Item.body, s) with
      | Item.Independent, Item.Obj o ->
        (not o.Item.deleted) && (not o.Item.pattern) && ref_eval schema o p
      | _ -> false)

(* Planner-recognised shapes, fallback shapes, and mixtures. *)
let predicate_pool =
  List.concat_map (fun c -> [ TIn c; TIsa c ]) classes
  @ [
      TName "obj3";
      TName "obj17R";
      TName "pat5";
      TName "no-such-object";
      TAnd (TIn "Data", TIsa "Thing");
      TAnd (TIsa "Data", TName "obj3");
      TOr (TIn "InputData", TIn "OutputData");
      TOr (TIsa "Data", TIsa "Action");
      TNot (TIsa "Data");
      TAnd (TIsa "Thing", TNot (TIn "Data"));
    ]

let names_pool = [ "obj3"; "obj17"; "obj17R"; "pat5"; "no-such-object" ]

(* ------------------------------------------------------------------ *)
(* The equivalence check                                                *)
(* ------------------------------------------------------------------ *)

let version_agrees db vid =
  let st = DB.raw db in
  let v = View.at st vid in
  List.for_all
    (fun p ->
      let q = to_q p in
      let expected = ref_select st vid p in
      sorted_ids (Q.select v q) = expected
      && Q.count v q = List.length expected)
    predicate_pool
  && List.for_all
       (fun assoc ->
         sorted_ids (Q.select_rels v ~assoc) = ref_select_rels st vid assoc)
       ("NoSuchAssoc" :: assocs)
  && List.for_all
       (fun name ->
         Option.map (fun (it : Item.t) -> it.Item.id) (View.find_object v name)
         = ref_find st vid name)
       names_pool
  && sorted_ids (View.all_objects v) = ref_all_objects st vid
  && sorted_ids (View.all_patterns v) = ref_all_patterns st vid
  && sorted_ids (View.all_rels v) = ref_all_rels st vid

let history_agrees db versions =
  let st = DB.raw db in
  match versions with
  | v1 :: v2 :: _ -> (
    match History.changed_between db v1 v2 with
    | Ok ids -> ids = ref_changed st v1 v2
    | Error _ -> false)
  | _ -> true

let all_agree db versions =
  List.for_all (version_agrees db) versions && history_agrees db versions

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop_equiv =
  qcheck_case ~count:60 "cached version reads = reference walk" ops_gen
    (fun ops ->
      let env = run_model ops in
      all_agree env.db env.versions)

let prop_equiv_disabled =
  qcheck_case ~count:40 "disabled cache falls back to agreeing scans" ops_gen
    (fun ops ->
      let env = run_model ops in
      DB.set_version_cache_capacity env.db 0;
      all_agree env.db env.versions)

let prop_equiv_capacity_one =
  qcheck_case ~count:40 "capacity-1 cache agrees through evictions" ops_gen
    (fun ops ->
      let env = run_model ops in
      DB.set_version_cache_capacity env.db 1;
      DB.clear_version_cache env.db;
      all_agree env.db env.versions
      &&
      (* visiting several versions through one slot must evict *)
      (List.length env.versions < 2
      || (DB.version_cache_stats env.db).Db_state.vc_evictions > 0))

let prop_equiv_after_load =
  qcheck_case ~count:30 "version reads agree after a persistence roundtrip"
    ops_gen
    (fun ops ->
      let env = run_model ops in
      match Persist.decode_db (Persist.encode_db env.db) with
      | Error _ -> false
      | Ok db2 -> all_agree db2 env.versions)

let prop_all_prefixes =
  qcheck_case ~count:15 "version reads agree at every prefix"
    QCheck2.Gen.(list_size (int_range 0 25) op_gen)
    (fun ops ->
      let env =
        {
          db = DB.create (fig3_schema ());
          objects = [];
          subs = [];
          patterns = [];
          versions = [];
        }
      in
      List.for_all
        (fun op ->
          apply env op;
          all_agree env.db env.versions)
        ops)

(* ------------------------------------------------------------------ *)
(* Deterministic cache behaviour                                        *)
(* ------------------------------------------------------------------ *)

let test_delete_version_invalidates () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"a" ()) in
  let v1 = ok (DB.create_version db) in
  let _b = ok (DB.create_object db ~cls:"Data" ~name:"b" ()) in
  let v2 = ok (DB.create_version db) in
  let st = DB.raw db in
  ignore (Q.select (View.at st v2) (Q.in_class "Data"));
  Alcotest.(check bool)
    "v2 materialized" true
    (Db_state.cached_version_extent st v2 <> None);
  ok (DB.begin_alternative db ~from_:v1 ~force:true ());
  check_ok "delete v2" (DB.delete_version db v2);
  Alcotest.(check bool)
    "v2 extent dropped" true
    (Db_state.cached_version_extent st v2 = None);
  Alcotest.(check bool)
    "v2 not materializable" true
    (Db_state.version_extent st v2 = None);
  Alcotest.(check int)
    "deleted version reads as empty" 0
    (List.length (Q.select (View.at st v2) (Q.in_class "Data")));
  let ids = sorted_ids (Q.select (View.at st v1) (Q.in_class "Data")) in
  Alcotest.(check bool) "v1 still sees exactly a" true (ids = [ a ])

let test_cache_stats () =
  let db = fresh_db () in
  let _a = ok (DB.create_object db ~cls:"Data" ~name:"a" ()) in
  let v1 = ok (DB.create_version db) in
  let st = DB.raw db in
  DB.clear_version_cache db;
  let s0 = DB.version_cache_stats db in
  ignore (Q.select (View.at st v1) (Q.in_class "Data"));
  ignore (Q.select (View.at st v1) (Q.is_a "Thing"));
  ignore (Q.count (View.at st v1) (Q.is_a "Thing"));
  let s1 = DB.version_cache_stats db in
  Alcotest.(check int)
    "one build for three queries" 1
    (s1.Db_state.vc_misses - s0.Db_state.vc_misses);
  Alcotest.(check bool)
    "subsequent queries hit" true
    (s1.Db_state.vc_hits >= s0.Db_state.vc_hits + 2)

let test_capacity_knob () =
  let db = fresh_db () in
  let _a = ok (DB.create_object db ~cls:"Data" ~name:"a" ()) in
  let v1 = ok (DB.create_version db) in
  let _b = ok (DB.create_object db ~cls:"Action" ~name:"b" ()) in
  let v2 = ok (DB.create_version db) in
  let st = DB.raw db in
  DB.set_version_cache_capacity db 0;
  Alcotest.(check bool)
    "capacity 0 disables materialization" true
    (Db_state.version_extent st v1 = None);
  Alcotest.(check int)
    "reads still answered by scan" 1
    (Q.count (View.at st v1) (Q.is_a "Thing"));
  DB.set_version_cache_capacity db 1;
  ignore (Q.select (View.at st v1) (Q.is_a "Thing"));
  ignore (Q.select (View.at st v2) (Q.is_a "Thing"));
  let cached vid = Db_state.cached_version_extent st vid <> None in
  Alcotest.(check bool)
    "one slot: v2 in, v1 evicted" true
    (cached v2 && not (cached v1));
  Alcotest.(check bool)
    "eviction counted" true
    ((DB.version_cache_stats db).Db_state.vc_evictions > 0)

let () =
  Alcotest.run "version_view"
    [
      ( "equivalence",
        [
          prop_equiv;
          prop_equiv_disabled;
          prop_equiv_capacity_one;
          prop_equiv_after_load;
          prop_all_prefixes;
        ] );
      ( "cache behaviour",
        [
          tc "delete_version invalidates" test_delete_version_invalidates;
          tc "stats count builds and hits" test_cache_stats;
          tc "capacity knob disables and bounds" test_capacity_knob;
        ] );
    ]
