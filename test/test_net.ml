(* The networked server: framing, wire codecs, session lifecycle with
   TTL leases, replay idempotency, admission control, graceful drain —
   all driven deterministically through the transport-agnostic core —
   plus a threaded TCP loopback test with concurrent clients. *)

open Seed_util
open Helpers
module Frame = Seed_net.Frame
module Wire = Seed_net.Wire
module Transport = Seed_net.Transport
module FT = Seed_net.Faulty_transport
module NS = Seed_net.Net_server
module NC = Seed_net.Net_client
module Server = Seed_server.Server
module Protocol = Seed_server.Protocol
module DB = Seed_core.Database

(* --- frame ------------------------------------------------------------ *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let f = Frame.encode payload in
      Alcotest.(check string) "roundtrip" payload (ok (Frame.decode f)))
    [ ""; "x"; "hello frame"; String.make 4096 '\xAB' ]

let test_frame_detects_corruption () =
  let f = Bytes.of_string (Frame.encode "an important payload") in
  (* flip one bit in the payload: the CRC must catch it *)
  let i = Frame.header_size + 3 in
  Bytes.set f i (Char.chr (Char.code (Bytes.get f i) lxor 0x10));
  check_err "bit flip"
    (function Seed_error.Corrupt _ -> true | _ -> false)
    (Frame.decode (Bytes.to_string f));
  (* bad magic *)
  let f = Bytes.of_string (Frame.encode "p") in
  Bytes.set f 0 'X';
  check_err "bad magic"
    (function Seed_error.Corrupt _ -> true | _ -> false)
    (Frame.decode (Bytes.to_string f));
  (* truncation *)
  let f = Frame.encode "some payload" in
  check_err "truncated"
    (function Seed_error.Corrupt _ -> true | _ -> false)
    (Frame.decode (String.sub f 0 (String.length f - 3)));
  check_err "short header"
    (function Seed_error.Corrupt _ -> true | _ -> false)
    (Frame.decode (String.sub f 0 5))

let test_frame_length_bounded () =
  (* a length field past the bound is corruption, not an allocation *)
  let f = Bytes.of_string (Frame.encode "p") in
  Bytes.set f 7 '\xFF';
  Bytes.set f 8 '\x7F';
  check_err "oversize length"
    (function Seed_error.Corrupt _ -> true | _ -> false)
    (Frame.decode (Bytes.to_string f))

(* --- wire codecs ------------------------------------------------------ *)

let roundtrip_req r =
  match Wire.decode_request (Wire.encode_request r) with
  | Ok r' -> Alcotest.(check bool) "request roundtrip" true (r = r')
  | Error e -> Alcotest.failf "decode: %s" (Seed_error.to_string e)

let roundtrip_resp r =
  match Wire.decode_response (Wire.encode_response r) with
  | Ok r' -> Alcotest.(check bool) "response roundtrip" true (r = r')
  | Error e -> Alcotest.failf "decode: %s" (Seed_error.to_string e)

let test_wire_request_roundtrips () =
  List.iteri
    (fun i body -> roundtrip_req { Wire.req_id = Int64.of_int i; body })
    [
      Wire.Hello { protocol = 1; client = "alice"; resume = None };
      Wire.Hello
        { protocol = 1; client = "bob"; resume = Some (42L, -17L) };
      Wire.Checkout { names = [ "A"; "B" ]; wait_timeout = None };
      Wire.Checkout { names = [ "A" ]; wait_timeout = Some 2.5 };
      Wire.Checkin
        [
          Protocol.Create_object { cls = "Data"; name = "X"; pattern = true };
          Protocol.Create_sub
            {
              owner = "X";
              role = "r";
              index = Some 3;
              value = Some (Seed_schema.Value.Date { year = 1986; month = 2; day = 5 });
            };
          Protocol.Create_rel
            { assoc = "Read"; endpoints = [ "X"; "Y" ]; pattern = false };
          Protocol.Set_value
            { path = "X.r"; value = Some (Seed_schema.Value.Float 1.5) };
          Protocol.Rename { name = "X"; new_name = "Y" };
          Protocol.Reclassify_obj { name = "X"; to_ = "Data" };
          Protocol.Reclassify_rel
            { assoc = "Read"; endpoints = [ "X"; "Y" ]; to_ = "Write" };
          Protocol.Delete { path = "X.r[1]" };
          Protocol.Inherit { pattern = "P"; inheritor = "X" };
        ];
      Wire.Release;
      Wire.Find "Alarms";
      Wire.Select_isa "Data";
      Wire.Stats;
      Wire.Ping;
      Wire.Bye;
    ]

let test_wire_response_roundtrips () =
  List.iteri
    (fun i rbody -> roundtrip_resp { Wire.rsp_id = Int64.of_int i; rbody })
    [
      Wire.Welcome
        { protocol = 1; session = 7L; token = -3L; ttl = 30.0; resumed = true };
      Wire.Done;
      Wire.Found None;
      Wire.Found (Some "Data.Text");
      Wire.Names [ "A"; "B"; "C" ];
      Wire.Stats_reply
        {
          Wire.sv_sessions = 1;
          sv_max_sessions = 2;
          sv_in_flight = 3;
          sv_max_in_flight = 4;
          sv_served = 5;
          sv_busy_rejects = 6;
          sv_reaped_sessions = 7;
          sv_checkins = 8;
          sv_locks_held = 9;
          sv_locks_leased = 10;
          sv_locks_expired = 11;
          sv_lock_waiters = 12;
          sv_objects = 13;
          sv_relationships = 14;
          sv_versions = 15;
        };
      Wire.Pong;
      Wire.Busy { retry_after = 0.25 };
      Wire.Draining;
      Wire.Err
        { code = Wire.Session_expired; message = "gone"; retryable = false };
    ]

let test_wire_garbage_rejected () =
  check_err "garbage request"
    (fun _ -> true)
    (Wire.decode_request "\x99\xFFnot a request");
  check_err "empty" (fun _ -> true) (Wire.decode_request "")

let test_error_classification () =
  let w = Wire.error_to_wire (Seed_error.Locked { item = "X"; holder = "a" }) in
  Alcotest.(check bool) "locked retryable" true (w.Wire.retryable && w.Wire.code = Wire.Locked);
  let w = Wire.error_to_wire (Seed_error.Unknown_object "X") in
  Alcotest.(check bool) "unknown name" true
    (w.Wire.code = Wire.Unknown_name && not w.Wire.retryable);
  let w = Wire.error_to_wire (Seed_error.Corrupt "bits") in
  Alcotest.(check bool) "corrupt is a server error" true
    (w.Wire.code = Wire.Server_error && not w.Wire.retryable)

(* --- the transport-agnostic server core ------------------------------- *)

let test_ttl = 10.0

let make_core ?(config = { NS.default_config with session_ttl = test_ttl }) () =
  let clock = ref 0.0 in
  let srv = Server.create ~now:(fun () -> !clock) (fig3_schema ()) in
  let db = Server.database srv in
  ignore (ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()));
  ignore (ok (DB.create_object db ~cls:"Action" ~name:"Handler" ()));
  let core =
    NS.create ~config
      ~now:(fun () -> !clock)
      ~sleep:(fun d -> clock := !clock +. d)
      srv
  in
  (core, srv, clock)

(* one request through the core, decoding the reply *)
let step core conn ~req_id body =
  match NS.on_frame core conn (Frame.encode (Wire.encode_request { Wire.req_id; body })) with
  | NS.Reply f | NS.Reply_close f -> (
    match Frame.decode f with
    | Ok p -> (
      match Wire.decode_response p with
      | Ok r -> r
      | Error e -> Alcotest.failf "response decode: %s" (Seed_error.to_string e))
    | Error e -> Alcotest.failf "frame decode: %s" (Seed_error.to_string e))
  | NS.Close -> Alcotest.fail "unexpected close"

let hello core conn ?resume ~client () =
  match
    (step core conn ~req_id:1L
       (Wire.Hello { protocol = Frame.version; client; resume }))
      .Wire.rbody
  with
  | Wire.Welcome { session; token; resumed; _ } -> (session, token, resumed)
  | r -> Alcotest.failf "expected welcome, got %s" (match r with
      | Wire.Err w -> w.Wire.message
      | Wire.Busy _ -> "busy"
      | Wire.Draining -> "draining"
      | _ -> "other")

let expect_done what (r : Wire.response) =
  match r.Wire.rbody with
  | Wire.Done -> ()
  | Wire.Err w -> Alcotest.failf "%s: %s" what w.Wire.message
  | _ -> Alcotest.failf "%s: unexpected response" what

let test_session_lifecycle () =
  let core, srv, _ = make_core () in
  let conn = NS.open_conn core in
  let sid, _, resumed = hello core conn ~client:"alice" () in
  Alcotest.(check bool) "fresh" false resumed;
  Alcotest.(check bool) "positive sid" true (Int64.compare sid 0L > 0);
  expect_done "checkout"
    (step core conn ~req_id:2L
       (Wire.Checkout { names = [ "Alarms" ]; wait_timeout = None }));
  expect_done "checkin"
    (step core conn ~req_id:3L
       (Wire.Checkin
          [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ]));
  Alcotest.(check int) "applied" 1 (Server.checkin_count srv);
  (* retrieval through a snapshot *)
  (match (step core conn ~req_id:4L (Wire.Find "Alarms")).Wire.rbody with
  | Wire.Found (Some cls) ->
    Alcotest.(check bool) "reclassified" true
      (String.ends_with ~suffix:"InputData" cls)
  | _ -> Alcotest.fail "find failed");
  (match (step core conn ~req_id:5L (Wire.Select_isa "Data")).Wire.rbody with
  | Wire.Names names -> Alcotest.(check bool) "alarms listed" true (List.mem "Alarms" names)
  | _ -> Alcotest.fail "select failed");
  (* bye ends the session *)
  (match
     NS.on_frame core conn
       (Frame.encode (Wire.encode_request { Wire.req_id = 6L; body = Wire.Bye }))
   with
  | NS.Reply_close _ -> ()
  | _ -> Alcotest.fail "bye should close");
  let st = NS.stats core in
  Alcotest.(check int) "no sessions left" 0 st.Wire.sv_sessions

let test_request_before_hello_refused () =
  let core, _, _ = make_core () in
  let conn = NS.open_conn core in
  match NS.on_frame core conn (Frame.encode (Wire.encode_request { Wire.req_id = 1L; body = Wire.Ping })) with
  | NS.Reply_close f -> (
    match Wire.decode_response (ok (Frame.decode f)) with
    | Ok { Wire.rbody = Wire.Err w; _ } ->
      Alcotest.(check bool) "bad request" true (w.Wire.code = Wire.Bad_request)
    | _ -> Alcotest.fail "expected an error reply")
  | _ -> Alcotest.fail "expected reply+close"

let test_protocol_mismatch_refused () =
  let core, _, _ = make_core () in
  let conn = NS.open_conn core in
  match
    (step core conn ~req_id:1L
       (Wire.Hello { protocol = 99; client = "alice"; resume = None }))
      .Wire.rbody
  with
  | Wire.Err w ->
    Alcotest.(check bool) "unsupported" true (w.Wire.code = Wire.Unsupported_protocol)
  | _ -> Alcotest.fail "expected refusal"

let test_corrupt_frame_closes_connection () =
  let core, _, _ = make_core () in
  let conn = NS.open_conn core in
  let f = Bytes.of_string (Frame.encode (Wire.encode_request { Wire.req_id = 1L; body = Wire.Ping })) in
  Bytes.set f (Frame.header_size) (Char.chr (Char.code (Bytes.get f Frame.header_size) lxor 1));
  (match NS.on_frame core conn (Bytes.to_string f) with
  | NS.Close -> ()
  | _ -> Alcotest.fail "corruption must close the connection");
  (* garbage that frames correctly but does not parse as a request is
     answered then closed *)
  let conn = NS.open_conn core in
  match NS.on_frame core conn (Frame.encode "\xF0garbage") with
  | NS.Reply_close _ -> ()
  | _ -> Alcotest.fail "unparseable request must answer then close"

let test_replay_returns_cache_without_reapplying () =
  let core, srv, _ = make_core () in
  let conn = NS.open_conn core in
  let _ = hello core conn ~client:"alice" () in
  expect_done "checkout"
    (step core conn ~req_id:2L
       (Wire.Checkout { names = [ "Alarms" ]; wait_timeout = None }));
  let checkin =
    Wire.Checkin [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ]
  in
  expect_done "checkin" (step core conn ~req_id:3L checkin);
  Alcotest.(check int) "applied once" 1 (Server.checkin_count srv);
  (* the response was lost: the client replays the same request id —
     the server answers from the cache without touching the engine *)
  let r = step core conn ~req_id:3L checkin in
  expect_done "replayed answer" r;
  Alcotest.(check int) "NOT applied twice" 1 (Server.checkin_count srv);
  (* a lower id is a protocol violation, answered and closed *)
  (match (step core conn ~req_id:2L Wire.Ping).Wire.rbody with
  | Wire.Err w -> Alcotest.(check bool) "stale id" true (w.Wire.code = Wire.Bad_request)
  | _ -> Alcotest.fail "expected stale-id error")

let test_resume_within_lease () =
  let core, srv, _ = make_core () in
  let conn = NS.open_conn core in
  let sid, token, _ = hello core conn ~client:"alice" () in
  expect_done "checkout"
    (step core conn ~req_id:2L
       (Wire.Checkout { names = [ "Alarms" ]; wait_timeout = None }));
  (* the connection dies; the session and its locks survive *)
  NS.close_conn core conn;
  Alcotest.(check (list string)) "locks survive" [ "Alarms" ]
    (Server.locked_by srv ~client:"alice");
  let conn2 = NS.open_conn core in
  let sid2, _, resumed =
    hello core conn2 ~client:"alice" ~resume:(sid, token) ()
  in
  Alcotest.(check bool) "resumed" true resumed;
  Alcotest.(check bool) "same session" true (Int64.equal sid sid2);
  (* and the locks still cover a check-in *)
  expect_done "checkin after resume"
    (step core conn2 ~req_id:3L
       (Wire.Checkin
          [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ]))

let test_resume_with_wrong_token_refused () =
  let core, _, _ = make_core () in
  let conn = NS.open_conn core in
  let sid, token, _ = hello core conn ~client:"alice" () in
  NS.close_conn core conn;
  let conn2 = NS.open_conn core in
  match
    (step core conn2 ~req_id:2L
       (Wire.Hello
          {
            protocol = Frame.version;
            client = "alice";
            resume = Some (sid, Int64.lognot token);
          }))
      .Wire.rbody
  with
  | Wire.Err w ->
    Alcotest.(check bool) "expired code" true (w.Wire.code = Wire.Session_expired)
  | _ -> Alcotest.fail "wrong token must not resume"

let test_lease_expiry_reaps_session_and_locks () =
  let core, srv, clock = make_core () in
  let conn = NS.open_conn core in
  let sid, token, _ = hello core conn ~client:"alice" () in
  expect_done "checkout"
    (step core conn ~req_id:2L
       (Wire.Checkout { names = [ "Alarms"; "Handler" ]; wait_timeout = None }));
  NS.close_conn core conn;
  clock := test_ttl +. 1.0;
  let reaped = NS.reap core in
  Alcotest.(check (list (pair string (list string)))) "session reaped"
    [ ("alice", [ "Alarms"; "Handler" ]) ]
    reaped;
  Alcotest.(check (list string)) "no lease outlives the ttl" []
    (Server.locked_by srv ~client:"alice");
  (* resume after expiry is refused — replay safety is gone *)
  let conn2 = NS.open_conn core in
  (match
     (step core conn2 ~req_id:3L
        (Wire.Hello
           { protocol = Frame.version; client = "alice"; resume = Some (sid, token) }))
       .Wire.rbody
   with
  | Wire.Err w ->
    Alcotest.(check bool) "session expired" true (w.Wire.code = Wire.Session_expired)
  | _ -> Alcotest.fail "expired resume must be refused");
  (* a fresh hello under the same client name works: the old session
     is gone, nothing is leaked *)
  let conn3 = NS.open_conn core in
  let _, _, resumed = hello core conn3 ~client:"alice" () in
  Alcotest.(check bool) "fresh session" false resumed

let test_requests_renew_the_lease () =
  let core, _, clock = make_core () in
  let conn = NS.open_conn core in
  let _ = hello core conn ~client:"alice" () in
  (* heartbeat every ttl-1 seconds: the session must survive well past
     the original window *)
  for i = 1 to 5 do
    clock := !clock +. (test_ttl -. 1.0);
    match (step core conn ~req_id:(Int64.of_int (i + 1)) Wire.Ping).Wire.rbody with
    | Wire.Pong -> ()
    | Wire.Err w -> Alcotest.failf "heartbeat %d: %s" i w.Wire.message
    | _ -> Alcotest.fail "expected pong"
  done;
  let st = NS.stats core in
  Alcotest.(check int) "still one live session" 1 st.Wire.sv_sessions;
  Alcotest.(check int) "nothing reaped" 0 st.Wire.sv_reaped_sessions

let test_max_sessions_sheds_load () =
  let config = { NS.default_config with max_sessions = 2; session_ttl = test_ttl } in
  let core, _, clock = make_core ~config () in
  let c1 = NS.open_conn core in
  let _ = hello core c1 ~client:"a" () in
  let c2 = NS.open_conn core in
  let _ = hello core c2 ~client:"b" () in
  let c3 = NS.open_conn core in
  (match
     (step core c3 ~req_id:1L
        (Wire.Hello { protocol = Frame.version; client = "c"; resume = None }))
       .Wire.rbody
   with
  | Wire.Busy { retry_after } ->
    Alcotest.(check bool) "retry hint" true (retry_after > 0.0)
  | _ -> Alcotest.fail "third session must be shed");
  Alcotest.(check int) "shed counted" 1 (NS.stats core).Wire.sv_busy_rejects;
  (* a session expiring frees a slot *)
  clock := test_ttl +. 1.0;
  let c4 = NS.open_conn core in
  let _ = hello core c4 ~client:"c" () in
  ()

let test_duplicate_client_name_refused () =
  let core, _, _ = make_core () in
  let c1 = NS.open_conn core in
  let _ = hello core c1 ~client:"alice" () in
  let c2 = NS.open_conn core in
  match
    (step core c2 ~req_id:1L
       (Wire.Hello { protocol = Frame.version; client = "alice"; resume = None }))
      .Wire.rbody
  with
  | Wire.Err w ->
    Alcotest.(check bool) "already connected (retryable)" true
      (w.Wire.code = Wire.Already_connected && w.Wire.retryable)
  | _ -> Alcotest.fail "duplicate client name must be refused"

let test_drain_answers_retryable () =
  let core, _, _ = make_core () in
  let conn = NS.open_conn core in
  let _ = hello core conn ~client:"alice" () in
  NS.drain core;
  Alcotest.(check bool) "draining" true (NS.draining core);
  (match (step core conn ~req_id:2L Wire.Ping).Wire.rbody with
  | Wire.Draining -> ()
  | _ -> Alcotest.fail "established sessions must see Draining");
  let conn2 = NS.open_conn core in
  match
    (step core conn2 ~req_id:1L
       (Wire.Hello { protocol = Frame.version; client = "late"; resume = None }))
      .Wire.rbody
  with
  | Wire.Draining -> ()
  | _ -> Alcotest.fail "new sessions must see Draining"

let test_engine_exception_becomes_error_response () =
  let core, _, _ = make_core () in
  let conn = NS.open_conn core in
  let _ = hello core conn ~client:"alice" () in
  (* a wait with a negative timeout exercises unusual engine paths; what
     matters is the contract: whatever happens, the server answers
     instead of dying *)
  match
    (step core conn ~req_id:2L
       (Wire.Checkout { names = [ "Alarms" ]; wait_timeout = Some (-1.0) }))
      .Wire.rbody
  with
  | Wire.Done | Wire.Err _ -> ()
  | _ -> Alcotest.fail "expected done or an error"

(* --- faulty transport ------------------------------------------------- *)

let test_faulty_transport_deterministic () =
  let config = { FT.quiet with FT.seed = 7; drop = 0.3; dup = 0.2; corrupt = 0.1 } in
  let run () =
    let t = FT.create config in
    List.concat_map (fun f -> FT.apply t f)
      [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]
  in
  Alcotest.(check (list string)) "same seed, same schedule" (run ()) (run ());
  let t1 = FT.create { config with FT.seed = 8 } in
  let t2 = FT.create { config with FT.seed = 9 } in
  let out1 = List.concat_map (FT.apply t1) [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  let out2 = List.concat_map (FT.apply t2) [ "a"; "b"; "c"; "d"; "e"; "f" ] in
  Alcotest.(check bool) "different seeds diverge eventually" true
    (out1 <> out2 || FT.injected t1 <> FT.injected t2)

let test_faulty_transport_quiet_is_transparent () =
  let t = FT.create FT.quiet in
  List.iter
    (fun f -> Alcotest.(check (list string)) "delivered verbatim" [ f ] (FT.apply t f))
    [ "x"; "y"; "z" ];
  Alcotest.(check int) "no faults" 0 (FT.injected t)

let test_faulty_transport_delay_and_cut () =
  let t = FT.create { FT.quiet with FT.seed = 1; delay = 1.0 } in
  Alcotest.(check (list string)) "held" [] (FT.apply t "first");
  let t2 = FT.create { FT.quiet with FT.seed = 1; delay = 1.0 } in
  Alcotest.(check (list string)) "held too" [] (FT.apply t2 "first");
  FT.cut t2;
  Alcotest.(check (list string)) "cut loses the backlog" [] (FT.flush t2);
  Alcotest.(check bool) "flush delivers the backlog" true
    (List.mem "first" (FT.flush t))

(* --- the client library over a synthetic wire -------------------------- *)

(* A client wired straight into a server core. [drop_replies] models a
   connection that dies after the server executed but before the client
   read the answer ([on_drop] fires at that moment, e.g. to advance the
   clock); each dial opens a fresh server-side connection, like a real
   reconnect. *)
let make_client_harness ?(ttl = test_ttl) () =
  let config = { NS.default_config with session_ttl = ttl } in
  let core, srv, clock = make_core ~config () in
  let drop_replies = ref 0 in
  let on_drop = ref (fun () -> ()) in
  let dials = ref 0 in
  let dial () =
    incr dials;
    let conn = NS.open_conn core in
    let inbox = Queue.create () in
    let closed = ref false in
    Ok
      (Transport.of_functions
         ~send:(fun frame ->
           if !closed then Seed_error.fail (Seed_error.Io_error "closed")
           else
             match NS.on_frame core conn frame with
             | NS.Reply r | NS.Reply_close r ->
               if !drop_replies > 0 then begin
                 decr drop_replies;
                 !on_drop ()
               end
               else Queue.push r inbox;
               Ok ()
             | NS.Close ->
               closed := true;
               Seed_error.fail (Seed_error.Io_error "server closed"))
         ~recv:(fun ~timeout:_ ->
           if Queue.is_empty inbox then
             Seed_error.fail (Seed_error.Io_transient "empty")
           else Ok (Queue.pop inbox))
         ~close:(fun () -> closed := true))
  in
  let cl =
    NC.create ~client:"alice"
      ~now:(fun () -> !clock)
      ~sleep:(fun d -> clock := !clock +. d)
      ~dial ()
  in
  (cl, core, srv, clock, drop_replies, on_drop, dials)

let client_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what NC.pp_error e

let test_client_basic_ops () =
  let cl, core, srv, _, _, _, _ = make_client_harness () in
  client_ok "ping" (NC.ping cl);
  client_ok "checkout" (NC.checkout cl [ "Alarms" ]);
  client_ok "checkin"
    (NC.checkin cl
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ]);
  Alcotest.(check int) "applied" 1 (Server.checkin_count srv);
  (match client_ok "find" (NC.find cl "Alarms") with
  | Some _ -> ()
  | None -> Alcotest.fail "alarms must resolve");
  let names = client_ok "select" (NC.select_isa cl "Data") in
  Alcotest.(check bool) "alarms listed" true (List.mem "Alarms" names);
  let st = client_ok "stats" (NC.stats cl) in
  Alcotest.(check int) "one session" 1 st.Wire.sv_sessions;
  NC.close cl;
  Alcotest.(check int) "bye freed the session" 0 (NS.stats core).Wire.sv_sessions

let test_client_replays_lost_response_exactly_once () =
  let cl, _, srv, _, drop_replies, _, dials = make_client_harness () in
  client_ok "checkout" (NC.checkout cl [ "Alarms" ]);
  let before = !dials in
  (* the wire eats the check-in answer: the client must reconnect,
     resume, replay — and the engine must apply exactly once *)
  drop_replies := 1;
  client_ok "checkin survives a lost response"
    (NC.checkin cl
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ]);
  Alcotest.(check int) "applied exactly once" 1 (Server.checkin_count srv);
  Alcotest.(check bool) "reconnected" true (!dials > before);
  (* the session survived the reconnect (resumed, not recreated) *)
  let st = client_ok "stats" (NC.stats cl) in
  Alcotest.(check int) "one session" 1 st.Wire.sv_sessions;
  Alcotest.(check int) "no session was reaped" 0 st.Wire.sv_reaped_sessions

let test_client_surfaces_expired_session () =
  let cl, _, srv, clock, drop_replies, on_drop, _ =
    make_client_harness ~ttl:5.0 ()
  in
  client_ok "checkout" (NC.checkout cl [ "Alarms" ]);
  (* the answer is lost AND the client stays away past the lease: the
     check-in's outcome is unknowable (here it did apply), so the client
     must surface the expiry rather than replay blind into a fresh
     session and risk a double apply *)
  drop_replies := 1;
  (on_drop := fun () -> clock := !clock +. 6.0);
  let before = Server.checkin_count srv in
  (match
     NC.checkin cl
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ]
   with
  | Error (NC.Remote w) ->
    Alcotest.(check bool) "expired surfaces" true
      (w.Wire.code = Wire.Session_expired)
  | Ok () -> Alcotest.fail "must not report success with unknown outcome"
  | Error (NC.Transport e) ->
    Alcotest.failf "expected the remote expiry: %s" (Seed_error.to_string e));
  (* the engine applied it exactly once — never twice *)
  Alcotest.(check int) "no double apply" (before + 1) (Server.checkin_count srv)

let test_client_retries_busy () =
  let config = { NS.default_config with max_sessions = 1; session_ttl = 5.0 } in
  let core, _, clock = make_core ~config () in
  (* occupy the only slot with a session that dies at t=5 *)
  let c1 = NS.open_conn core in
  let _ = hello core c1 ~client:"squatter" () in
  NS.close_conn core c1;
  let dial () =
    let conn = NS.open_conn core in
    let inbox = Queue.create () in
    Ok
      (Transport.of_functions
         ~send:(fun frame ->
           (match NS.on_frame core conn frame with
           | NS.Reply r | NS.Reply_close r -> Queue.push r inbox
           | NS.Close -> ());
           Ok ())
         ~recv:(fun ~timeout:_ ->
           if Queue.is_empty inbox then
             Seed_error.fail (Seed_error.Io_transient "empty")
           else Ok (Queue.pop inbox))
         ~close:(fun () -> ()))
  in
  let cl =
    NC.create ~client:"patient"
      ~now:(fun () -> !clock)
      ~sleep:(fun d -> clock := !clock +. d)
      ~dial ()
  in
  (* Busy at first (admission full), then the squatter's lease runs out
     and the client's backoff retry gets the slot — no hang, no error *)
  client_ok "waits out the busy server" (NC.ping cl)

(* --- TCP loopback ------------------------------------------------------ *)

let with_tcp_server ?(config = NS.default_config) f =
  let srv = Server.create (fig3_schema ()) in
  let db = Server.database srv in
  ignore (ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()));
  ignore (ok (DB.create_object db ~cls:"Action" ~name:"Handler" ()));
  let core = NS.create ~config srv in
  match NS.serve ~port:0 core with
  | Error e -> Alcotest.failf "serve: %s" (Seed_error.to_string e)
  | Ok listener ->
    Fun.protect
      ~finally:(fun () -> NS.shutdown ~grace:0.05 listener)
      (fun () -> f (NS.port listener) core srv)

let test_tcp_basic () =
  with_tcp_server (fun port _ srv ->
      let cl = NC.connect_tcp ~client:"tcp-basic" ~host:"127.0.0.1" ~port () in
      client_ok "ping" (NC.ping cl);
      client_ok "checkout" (NC.checkout cl [ "Alarms" ]);
      client_ok "checkin"
        (NC.checkin cl
           [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ]);
      Alcotest.(check int) "applied" 1 (Server.checkin_count srv);
      NC.close cl)

let test_tcp_concurrent_clients () =
  with_tcp_server (fun port core srv ->
      let n = 8 in
      let failures = ref [] in
      let fm = Mutex.create () in
      let worker i () =
        let client = Printf.sprintf "worker-%d" i in
        let cl = NC.connect_tcp ~client ~host:"127.0.0.1" ~port () in
        let name = Printf.sprintf "Obj%d" i in
        let res =
          let ( >>= ) r f = match r with Ok v -> f v | Error e -> Error e in
          NC.ping cl
          >>= fun () ->
          NC.checkin cl
            [ Protocol.Create_object { cls = "InputData"; name; pattern = false } ]
          >>= fun () ->
          NC.checkout cl ~wait_timeout:5.0 [ name; "Handler" ]
          >>= fun () ->
          NC.checkin cl
            [
              Protocol.Create_rel
                { assoc = "Read"; endpoints = [ name; "Handler" ]; pattern = false };
            ]
          >>= fun () ->
          NC.find cl name
          >>= fun found ->
          if found = None then
            Error (NC.Remote { Wire.code = Wire.Server_error; message = name ^ " vanished"; retryable = false })
          else NC.select_isa cl "Data" >>= fun _ -> Ok ()
        in
        (match res with
        | Ok () -> ()
        | Error e ->
          Mutex.lock fm;
          failures := Format.asprintf "%s: %a" client NC.pp_error e :: !failures;
          Mutex.unlock fm);
        NC.close cl
      in
      let threads = List.init n (fun i -> Thread.create (worker i) ()) in
      List.iter Thread.join threads;
      (match !failures with
      | [] -> ()
      | fs -> Alcotest.failf "client failures: %s" (String.concat "; " fs));
      (* every client's object and relationship landed *)
      let db = Server.database srv in
      for i = 0 to n - 1 do
        let name = Printf.sprintf "Obj%d" i in
        match DB.find_object db name with
        | Some id ->
          Alcotest.(check int) (name ^ " linked") 1 (List.length (DB.relationships db id))
        | None -> Alcotest.failf "%s missing" name
      done;
      Alcotest.(check int) "2n check-ins" (2 * n) (Server.checkin_count srv);
      let st = NS.stats core in
      Alcotest.(check int) "sessions freed by bye" 0 st.Wire.sv_sessions)

let test_tcp_graceful_drain () =
  let srv = Server.create (fig3_schema ()) in
  let core = NS.create srv in
  match NS.serve ~port:0 core with
  | Error e -> Alcotest.failf "serve: %s" (Seed_error.to_string e)
  | Ok listener ->
    let port = NS.port listener in
    let cl = NC.connect_tcp ~client:"drainee" ~host:"127.0.0.1" ~port () in
    client_ok "ping before drain" (NC.ping cl);
    NS.shutdown ~grace:0.05 listener;
    (* the server is gone: the client's bounded retry must fail cleanly
       (no hang) with a transport error or a Draining-derived error *)
    let cfg = { (NC.default_config ~client:"drainee2") with NC.retry_window = 0.4 } in
    let cl2 = NC.connect_tcp ~config:cfg ~client:"drainee2" ~host:"127.0.0.1" ~port () in
    (match NC.ping cl2 with
    | Ok () -> Alcotest.fail "server should be down"
    | Error _ -> ());
    NC.close cl2;
    NC.close cl

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          tc "roundtrip" test_frame_roundtrip;
          tc "corruption detected" test_frame_detects_corruption;
          tc "length bounded" test_frame_length_bounded;
        ] );
      ( "wire",
        [
          tc "request roundtrips" test_wire_request_roundtrips;
          tc "response roundtrips" test_wire_response_roundtrips;
          tc "garbage rejected" test_wire_garbage_rejected;
          tc "error classification" test_error_classification;
        ] );
      ( "sessions",
        [
          tc "lifecycle" test_session_lifecycle;
          tc "request before hello" test_request_before_hello_refused;
          tc "protocol mismatch" test_protocol_mismatch_refused;
          tc "corrupt frame closes" test_corrupt_frame_closes_connection;
          tc "replay answers from cache" test_replay_returns_cache_without_reapplying;
          tc "resume within lease" test_resume_within_lease;
          tc "wrong token refused" test_resume_with_wrong_token_refused;
          tc "expiry reaps session + locks" test_lease_expiry_reaps_session_and_locks;
          tc "requests renew the lease" test_requests_renew_the_lease;
          tc "max sessions sheds" test_max_sessions_sheds_load;
          tc "duplicate client refused" test_duplicate_client_name_refused;
          tc "drain is retryable" test_drain_answers_retryable;
          tc "engine exception answered" test_engine_exception_becomes_error_response;
        ] );
      ( "faulty-transport",
        [
          tc "deterministic" test_faulty_transport_deterministic;
          tc "quiet transparent" test_faulty_transport_quiet_is_transparent;
          tc "delay and cut" test_faulty_transport_delay_and_cut;
        ] );
      ( "client",
        [
          tc "basic ops" test_client_basic_ops;
          tc "replays lost response once" test_client_replays_lost_response_exactly_once;
          tc "surfaces expired session" test_client_surfaces_expired_session;
          tc "retries busy" test_client_retries_busy;
        ] );
      ( "tcp",
        [
          tc "basic" test_tcp_basic;
          tc "8 concurrent clients" test_tcp_concurrent_clients;
          tc "graceful drain" test_tcp_graceful_drain;
        ] );
    ]
