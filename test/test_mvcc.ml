(* MVCC semantics: copy-on-write roots, O(1) snapshots, root-swap
   rollback, the publication counters, and the planner's explain
   output. The multi-domain equivalence sweep lives in mvcc_stress.ml;
   these are the single-threaded semantic contracts. *)

open Seed_util
open Helpers
module DB = Seed_core.Database
module Db_state = Seed_core.Db_state
module View = Seed_core.View
module Q = Seed_core.Query
module Server = Seed_server.Server

(* --- snapshot isolation ------------------------------------------- *)

let test_snapshot_isolation () =
  let db = fresh_db () in
  let _ = ok (DB.create_object db ~cls:"Action" ~name:"Before" ()) in
  let snap = DB.snapshot_view db in
  let _ = ok (DB.create_object db ~cls:"Action" ~name:"After" ()) in
  Alcotest.(check bool)
    "snapshot sees the object created before it" true
    (View.resolve_name snap "Before" <> None);
  Alcotest.(check bool)
    "snapshot does not see the later commit" true
    (View.resolve_name snap "After" = None);
  Alcotest.(check bool)
    "the live view sees both" true
    (View.resolve_name (DB.view db) "After" <> None)

let test_snapshot_survives_mutation () =
  let db = fresh_db () in
  let id = ok (DB.create_object db ~cls:"Data" ~name:"Doc" ()) in
  let sub =
    ok
      (DB.create_sub_object db ~parent:id ~role:"Description"
         ~value:(Seed_schema.Value.String "old") ())
  in
  let snap = DB.snapshot_view db in
  check_ok "set_value"
    (DB.set_value db sub (Some (Seed_schema.Value.String "new")));
  check_ok "rename" (DB.rename_object db id "Doc2");
  let value v i =
    match View.obj_state v i with
    | Some { Seed_core.Item.value = Some x; _ } ->
      Seed_schema.Value.to_string x
    | _ -> "-"
  in
  let sub_item v name =
    let it = Option.get (View.resolve_name v name) in
    Option.get (View.child v it.Seed_core.Item.id ~role:"Description" ())
  in
  Alcotest.(check string)
    "snapshot pins the old value" {|"old"|}
    (value snap (sub_item snap "Doc"));
  Alcotest.(check string)
    "live view has the new value" {|"new"|}
    (value (DB.view db) (sub_item (DB.view db) "Doc2"));
  Alcotest.(check bool)
    "snapshot still resolves the old name" true
    (View.resolve_name snap "Doc" <> None)

(* --- transactions: no mid-publish, O(1) rollback -------------------- *)

let test_txn_no_mid_publish () =
  let db = fresh_db () in
  let observed = ref None in
  let r =
    DB.with_transaction db (fun () ->
        let _ = ok (DB.create_object db ~cls:"Action" ~name:"Mid" ()) in
        (* a snapshot grabbed while the transaction is open must show
           the pre-transaction state: nothing is published mid-flight *)
        observed := Some (DB.snapshot_view db);
        Ok ())
  in
  check_ok "transaction" r;
  Alcotest.(check bool)
    "mid-transaction snapshot did not see the uncommitted object" true
    (View.resolve_name (Option.get !observed) "Mid" = None);
  Alcotest.(check bool)
    "after commit the object is published" true
    (View.resolve_name (DB.snapshot_view db) "Mid" <> None)

let test_txn_rollback_is_root_swap () =
  let db = fresh_db () in
  let _ = ok (DB.create_object db ~cls:"Action" ~name:"Keep" ()) in
  let before_items = DB.object_count db in
  let before_commits = (DB.stats db).DB.st_commits in
  let r =
    DB.with_transaction db (fun () ->
        let _ = ok (DB.create_object db ~cls:"Action" ~name:"Drop1" ()) in
        let _ = ok (DB.create_object db ~cls:"Data" ~name:"Drop2" ()) in
        Seed_error.fail (Seed_error.Invalid_operation "abort"))
  in
  Alcotest.(check bool) "transaction failed" true (Result.is_error r);
  Alcotest.(check int)
    "object count restored" before_items (DB.object_count db);
  Alcotest.(check bool)
    "no trace of the aborted objects" true
    (DB.find_object db "Drop1" = None && DB.find_object db "Drop2" = None);
  Alcotest.(check bool)
    "the pre-transaction object survives" true
    (DB.find_object db "Keep" <> None);
  Alcotest.(check int)
    "nothing was published by the aborted transaction" before_commits
    (DB.stats db).DB.st_commits

(* --- counters ------------------------------------------------------ *)

let test_counters () =
  let db = fresh_db () in
  let s0 = DB.stats db in
  let _ = DB.snapshot_view db in
  let _ = DB.snapshot_view db in
  let s1 = DB.stats db in
  Alcotest.(check int)
    "two snapshots grabbed" (s0.DB.st_snapshots + 2) s1.DB.st_snapshots;
  let _ = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let s2 = DB.stats db in
  Alcotest.(check bool)
    "a commit publishes a root" true
    (s2.DB.st_commits > s1.DB.st_commits);
  (* version-extent cache counters: first version-view query misses,
     the second hits *)
  let v = ok (DB.create_version db) in
  let vv = View.at (DB.raw db) v in
  let _ = Q.select vv (Q.is_a "Thing") in
  let s3 = DB.stats db in
  Alcotest.(check bool)
    "first version query misses the cache" true
    (s3.DB.st_vc_misses > s2.DB.st_vc_misses);
  let _ = Q.select vv (Q.is_a "Thing") in
  let s4 = DB.stats db in
  Alcotest.(check bool)
    "second version query hits the cache" true
    (s4.DB.st_vc_hits > s3.DB.st_vc_hits);
  Alcotest.(check bool) "evictions counter exposed" true
    (s4.DB.st_vc_evictions >= 0)

(* --- explain ------------------------------------------------------- *)

let test_explain_indexed () =
  let db = fresh_db () in
  let _ = ok (DB.create_object db ~cls:"Action" ~name:"A1" ()) in
  let _ = ok (DB.create_object db ~cls:"Action" ~name:"A2" ()) in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"D1" ()) in
  let v = DB.view db in
  (match Q.explain v (Q.in_class "Action") with
  | Q.Indexed { classes; est_candidates; _ } ->
    Alcotest.(check (list string)) "class extents" [ "Action" ] classes;
    Alcotest.(check int) "estimated candidates" 2 est_candidates
  | Q.Scan _ -> Alcotest.fail "in_class must be indexed");
  (match Q.explain v Q.(name_is "D1" ||| in_class "Action") with
  | Q.Indexed { names; est_candidates; _ } ->
    Alcotest.(check (list string)) "name lookups" [ "D1" ] names;
    Alcotest.(check int) "candidates = 2 actions + 1 name" 3 est_candidates
  | Q.Scan _ -> Alcotest.fail "name_is ||| in_class must be indexed")

let test_explain_scan () =
  let db = fresh_db () in
  let v = DB.view db in
  (match Q.explain v (Q.not_ (Q.in_class "Action")) with
  | Q.Scan _ -> ()
  | Q.Indexed _ -> Alcotest.fail "negation must scan");
  (match Q.explain v (Q.of_fun (fun _ _ -> true)) with
  | Q.Scan _ -> ()
  | Q.Indexed _ -> Alcotest.fail "opaque predicates must scan");
  (* a disjunction with one unbounded arm is unbounded as a whole *)
  match Q.explain v Q.(in_class "Action" ||| of_fun (fun _ _ -> true)) with
  | Q.Scan _ -> ()
  | Q.Indexed _ -> Alcotest.fail "disjunction with an opaque arm must scan"

(* --- server: lock-free read path ----------------------------------- *)

let test_server_snapshot_lock_free () =
  let srv = Server.create (fig3_schema ()) in
  let db = Server.database srv in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Spec" ()) in
  (* another client holds the only lock on the object *)
  check_ok "checkout" (Server.checkout srv ~client:"alice" ~names:[ "Spec" ]);
  (* the read path never consults the lock table: snapshots work while
     every lock is taken, and pin the state at grab time *)
  let snap = Server.snapshot srv in
  Alcotest.(check bool)
    "snapshot resolves the locked object" true
    (View.resolve_name snap "Spec" <> None);
  check_ok "checkin"
    (Server.checkin srv ~client:"alice"
       [ Seed_server.Protocol.Rename { name = "Spec"; new_name = "Spec2" } ]);
  Alcotest.(check bool)
    "the pinned snapshot still shows the pre-checkin name" true
    (View.resolve_name snap "Spec" <> None
    && View.resolve_name snap "Spec2" = None);
  Alcotest.(check bool)
    "a fresh snapshot shows the checked-in state" true
    (View.resolve_name (Server.snapshot srv) "Spec2" <> None)

let () =
  Alcotest.run "mvcc"
    [
      ( "snapshots",
        [
          tc "isolation" test_snapshot_isolation;
          tc "pinned values survive mutation" test_snapshot_survives_mutation;
        ] );
      ( "transactions",
        [
          tc "no mid-transaction publish" test_txn_no_mid_publish;
          tc "rollback is a root swap" test_txn_rollback_is_root_swap;
        ] );
      ("counters", [ tc "snapshot/commit/cache counters" test_counters ]);
      ( "explain",
        [
          tc "indexed plans" test_explain_indexed;
          tc "scan fallbacks" test_explain_scan;
        ] );
      ( "server",
        [ tc "snapshot is lock-free" test_server_snapshot_lock_free ] );
    ]
