open Seed_storage
open Helpers

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "seed_test_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then () else Unix.mkdir dir 0o755;
    dir

(* ------------------------------------------------------------------ *)
(* CRC-32                                                               *)
(* ------------------------------------------------------------------ *)

let test_crc_known_vectors () =
  (* standard IEEE CRC-32 check value *)
  Alcotest.(check int32) "123456789" 0xCBF43926l (Crc32.digest "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.digest "");
  Alcotest.(check int32) "a" 0xE8B7BE43l (Crc32.digest "a")

let test_crc_sub () =
  let b = Bytes.of_string "xx123456789yy" in
  Alcotest.(check int32) "slice" 0xCBF43926l (Crc32.digest_sub b ~pos:2 ~len:9);
  Alcotest.check_raises "oob" (Invalid_argument "Crc32.digest_sub") (fun () ->
      ignore (Crc32.digest_sub b ~pos:10 ~len:10))

let prop_crc_detects_flip =
  qcheck_case "crc differs after byte flip"
    QCheck2.Gen.(string_size (int_range 1 64))
    (fun s ->
      let b = Bytes.of_string s in
      let i = String.length s / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
      Crc32.digest s <> Crc32.digest (Bytes.to_string b))

(* ------------------------------------------------------------------ *)
(* Codec                                                                *)
(* ------------------------------------------------------------------ *)

let test_codec_primitives () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 255;
  Codec.Writer.varint w (-123456);
  Codec.Writer.varint w max_int;
  Codec.Writer.varint w min_int;
  Codec.Writer.i64 w 0x0123456789ABCDEFL;
  Codec.Writer.float w 3.14159;
  Codec.Writer.bool w true;
  Codec.Writer.string w "hello";
  Codec.Writer.option w Codec.Writer.string None;
  Codec.Writer.option w Codec.Writer.string (Some "x");
  Codec.Writer.list w Codec.Writer.varint [ 1; 2; 3 ];
  let r = Codec.Reader.of_string (Codec.Writer.contents w) in
  Alcotest.(check int) "u8" 255 (ok (Codec.Reader.u8 r));
  Alcotest.(check int) "varint neg" (-123456) (ok (Codec.Reader.varint r));
  Alcotest.(check int) "varint max" max_int (ok (Codec.Reader.varint r));
  Alcotest.(check int) "varint min" min_int (ok (Codec.Reader.varint r));
  Alcotest.(check int64) "i64" 0x0123456789ABCDEFL (ok (Codec.Reader.i64 r));
  Alcotest.(check (float 0.0)) "float" 3.14159 (ok (Codec.Reader.float r));
  Alcotest.(check bool) "bool" true (ok (Codec.Reader.bool r));
  Alcotest.(check string) "string" "hello" (ok (Codec.Reader.string r));
  Alcotest.(check (option string)) "none" None (ok (Codec.Reader.option r Codec.Reader.string));
  Alcotest.(check (option string)) "some" (Some "x")
    (ok (Codec.Reader.option r Codec.Reader.string));
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ]
    (ok (Codec.Reader.list r Codec.Reader.varint));
  check_ok "end" (Codec.Reader.expect_end r)

let test_codec_truncation () =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "hello world";
  let payload = Codec.Writer.contents w in
  let truncated = String.sub payload 0 (String.length payload - 3) in
  let r = Codec.Reader.of_string truncated in
  check_err "truncated"
    (function Seed_util.Seed_error.Corrupt _ -> true | _ -> false)
    (Codec.Reader.string r)

let test_codec_trailing () =
  let r = Codec.Reader.of_string "xx" in
  check_err "trailing"
    (function Seed_util.Seed_error.Corrupt _ -> true | _ -> false)
    (Codec.Reader.expect_end r)

let test_codec_bad_tags () =
  let r = Codec.Reader.of_string "\x07" in
  check_err "bad option tag" (fun _ -> true)
    (Codec.Reader.option r Codec.Reader.u8);
  let r = Codec.Reader.of_string "\x07" in
  check_err "bad bool" (fun _ -> true) (Codec.Reader.bool r)

let prop_codec_varint =
  qcheck_case "varint roundtrip" QCheck2.Gen.int (fun n ->
      let w = Codec.Writer.create () in
      Codec.Writer.varint w n;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      ok (Codec.Reader.varint r) = n && Codec.Reader.at_end r)

let prop_codec_string =
  qcheck_case "string roundtrip" QCheck2.Gen.string (fun s ->
      let w = Codec.Writer.create () in
      Codec.Writer.string w s;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      String.equal (ok (Codec.Reader.string r)) s)

let prop_codec_float =
  qcheck_case "float roundtrip" QCheck2.Gen.float (fun f ->
      let w = Codec.Writer.create () in
      Codec.Writer.float w f;
      let r = Codec.Reader.of_string (Codec.Writer.contents w) in
      let g = ok (Codec.Reader.float r) in
      Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g))

(* ------------------------------------------------------------------ *)
(* B-tree                                                               *)
(* ------------------------------------------------------------------ *)

module BT = Btree.Make (Int)
module IM = Map.Make (Int)

let test_btree_basic () =
  let t = BT.create () in
  Alcotest.(check bool) "empty" true (BT.is_empty t);
  BT.insert t 1 "a";
  BT.insert t 2 "b";
  BT.insert t 1 "a2";
  Alcotest.(check int) "length counts replace once" 2 (BT.length t);
  Alcotest.(check (option string)) "find" (Some "a2") (BT.find t 1);
  Alcotest.(check bool) "mem" true (BT.mem t 2);
  Alcotest.(check bool) "remove" true (BT.remove t 1);
  Alcotest.(check bool) "remove gone" false (BT.remove t 1);
  Alcotest.(check int) "length" 1 (BT.length t)

let test_btree_ordered_iteration () =
  let t = BT.create () in
  let keys = [ 5; 3; 9; 1; 7; 2; 8; 4; 6; 0 ] in
  List.iter (fun k -> BT.insert t k (string_of_int k)) keys;
  let collected = List.map fst (BT.to_list t) in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] collected;
  Alcotest.(check (option (pair int string))) "min" (Some (0, "0")) (BT.min_binding t);
  Alcotest.(check (option (pair int string))) "max" (Some (9, "9")) (BT.max_binding t)

let test_btree_large_sequential () =
  let t = BT.create () in
  for i = 1 to 5000 do
    BT.insert t i i
  done;
  Alcotest.(check int) "length" 5000 (BT.length t);
  Alcotest.(check bool) "invariants" true (BT.invariants_ok t);
  for i = 1 to 5000 do
    if BT.find t i <> Some i then Alcotest.failf "missing %d" i
  done;
  (* delete odd keys *)
  for i = 1 to 5000 do
    if i mod 2 = 1 then ignore (BT.remove t i)
  done;
  Alcotest.(check int) "half left" 2500 (BT.length t);
  Alcotest.(check bool) "invariants after delete" true (BT.invariants_ok t);
  Alcotest.(check (option int)) "odd gone" None (BT.find t 4999);
  Alcotest.(check (option int)) "even kept" (Some 4998) (BT.find t 4998)

let test_btree_range () =
  let t = BT.create () in
  for i = 0 to 99 do
    BT.insert t i (i * 10)
  done;
  let seen = ref [] in
  BT.iter_range ~lo:10 ~hi:15 (fun k _ -> seen := k :: !seen) t;
  Alcotest.(check (list int)) "range" [ 10; 11; 12; 13; 14; 15 ] (List.rev !seen);
  let seen = ref [] in
  BT.iter_range ~hi:2 (fun k _ -> seen := k :: !seen) t;
  Alcotest.(check (list int)) "open lo" [ 0; 1; 2 ] (List.rev !seen);
  let seen = ref [] in
  BT.iter_range ~lo:97 (fun k _ -> seen := k :: !seen) t;
  Alcotest.(check (list int)) "open hi" [ 97; 98; 99 ] (List.rev !seen)

let btree_ops_gen =
  QCheck2.Gen.(
    list_size (int_range 0 400)
      (oneof
         [
           map (fun k -> `Insert k) (int_range 0 100);
           map (fun k -> `Remove k) (int_range 0 100);
         ]))

let prop_btree_vs_map =
  qcheck_case ~count:300 "btree agrees with Map" btree_ops_gen (fun ops ->
      let t = BT.create () in
      let m = ref IM.empty in
      List.iter
        (function
          | `Insert k ->
            BT.insert t k k;
            m := IM.add k k !m
          | `Remove k ->
            ignore (BT.remove t k);
            m := IM.remove k !m)
        ops;
      BT.invariants_ok t
      && BT.length t = IM.cardinal !m
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && v1 = v2)
           (BT.to_list t) (IM.bindings !m))

let prop_btree_fold =
  qcheck_case "fold visits ascending"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 1000))
    (fun keys ->
      let t = BT.create () in
      List.iter (fun k -> BT.insert t k ()) keys;
      let collected = List.rev (BT.fold (fun k () acc -> k :: acc) t []) in
      collected = List.sort_uniq Int.compare keys)

(* ------------------------------------------------------------------ *)
(* Journal                                                              *)
(* ------------------------------------------------------------------ *)

let test_journal_roundtrip () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j.log" in
  let j = ok (Journal.open_ path) in
  check_ok "a" (Journal.append j "alpha");
  check_ok "b" (Journal.append j "beta");
  check_ok "sync" (Journal.sync j);
  Journal.close j;
  Alcotest.(check (list string)) "read" [ "alpha"; "beta" ] (ok (Journal.read_all path));
  (* appending after reopen preserves earlier records *)
  let j = ok (Journal.open_ path) in
  check_ok "c" (Journal.append j "gamma");
  Journal.close j;
  Alcotest.(check (list string)) "read 3" [ "alpha"; "beta"; "gamma" ]
    (ok (Journal.read_all path))

let test_journal_missing_file () =
  let dir = tmp_dir () in
  Alcotest.(check (list string)) "missing" []
    (ok (Journal.read_all (Filename.concat dir "absent.log")))

let test_journal_torn_tail () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j.log" in
  let j = ok (Journal.open_ path) in
  check_ok "a" (Journal.append j "alpha");
  check_ok "b" (Journal.append j "beta");
  Journal.close j;
  (* cut the file mid-record *)
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - 3);
  Unix.close fd;
  Alcotest.(check (list string)) "intact prefix" [ "alpha" ] (ok (Journal.read_all path));
  check_err "strict fails"
    (function Seed_util.Seed_error.Corrupt _ -> true | _ -> false)
    (Journal.read_all_strict path)

let test_journal_corrupt_payload () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j.log" in
  let j = ok (Journal.open_ path) in
  check_ok "a" (Journal.append j "alpha");
  check_ok "b" (Journal.append j "beta");
  Journal.close j;
  (* flip a byte inside the second record's payload *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let first_record = 16 + 5 in
  ignore (Unix.lseek fd (first_record + 16 + 1) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "X") 0 1);
  Unix.close fd;
  Alcotest.(check (list string)) "crc cut" [ "alpha" ] (ok (Journal.read_all path))

let test_journal_truncate () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j.log" in
  let j = ok (Journal.open_ path) in
  check_ok "a" (Journal.append j "alpha");
  Journal.close j;
  check_ok "truncate" (Journal.truncate path);
  Alcotest.(check (list string)) "empty" [] (ok (Journal.read_all path))

(* ------------------------------------------------------------------ *)
(* Transaction groups                                                   *)
(* ------------------------------------------------------------------ *)

(* header (16) + commit payload [kind u8 | txn u32 | count u32 | crc u32] *)
let commit_frame_bytes = 16 + 13

let kind_label = function
  | Journal.Data -> "data"
  | Journal.Begin _ -> "begin"
  | Journal.Commit _ -> "commit"
  | Journal.Solo_marker _ -> "solo"

let test_group_roundtrip () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j.log" in
  let j = ok (Journal.open_ path) in
  check_ok "bare" (Journal.append j "solo");
  check_ok "group" (Journal.append_group j [ "g1"; "g2"; "g3" ]);
  check_ok "empty group is a no-op" (Journal.append_group j []);
  check_ok "bare after" (Journal.append j "tail");
  Journal.close j;
  Alcotest.(check (list string)) "committed records, in order"
    [ "solo"; "g1"; "g2"; "g3"; "tail" ]
    (ok (Journal.read_all path));
  (* the markers are visible to scan as control frames bracketing the
     group's data frames *)
  let s = ok (Journal.scan path) in
  Alcotest.(check (list string)) "frame kinds"
    [ "data"; "begin"; "data"; "data"; "data"; "commit"; "data" ]
    (List.map (fun f -> kind_label f.Journal.f_kind) s.Journal.frames);
  Alcotest.(check bool) "no damage" true (s.Journal.scan_damage = [])

let test_group_without_commit_invisible () =
  (* the crash-mid-flush signature: the begin marker and the records
     landed, the commit marker did not — recovery replays none of the
     group, and the whole thing is truncatable at the begin marker *)
  let dir = tmp_dir () in
  let path = Filename.concat dir "j.log" in
  let j = ok (Journal.open_ path) in
  check_ok "bare" (Journal.append j "keep");
  check_ok "group" (Journal.append_group j [ "lost1"; "lost2" ]);
  Journal.close j;
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - commit_frame_bytes);
  Alcotest.(check (list string)) "group invisible" [ "keep" ]
    (ok (Journal.read_all path));
  (* not tail damage: every remaining byte is intact, the commit is
     simply missing, so even the strict reader agrees *)
  Alcotest.(check (list string)) "strict agrees" [ "keep" ]
    (ok (Journal.read_all_strict path));
  let s = ok (Journal.scan path) in
  let g = Journal.resolve_groups s.Journal.frames in
  Alcotest.(check int) "both records dropped" 2 g.Journal.g_dropped_records;
  Alcotest.(check int) "as an unterminated tail" 2 g.Journal.g_tail_records;
  Alcotest.(check (option int)) "truncation point = begin marker"
    (Some (16 + 4)) (* right after the bare "keep" frame *)
    g.Journal.g_tail_begin

let test_group_torn_commit_marker () =
  (* the commit marker itself is half-written: CRC framing rejects the
     marker, which leaves the group unterminated — all of it dropped *)
  let dir = tmp_dir () in
  let path = Filename.concat dir "j.log" in
  let j = ok (Journal.open_ path) in
  check_ok "bare" (Journal.append j "keep");
  check_ok "group" (Journal.append_group j [ "lost1"; "lost2" ]);
  Journal.close j;
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 5);
  Alcotest.(check (list string)) "group invisible" [ "keep" ]
    (ok (Journal.read_all path));
  let s = ok (Journal.scan path) in
  Alcotest.(check bool) "torn marker is damage" true
    (s.Journal.scan_damage <> []);
  let g = Journal.resolve_groups s.Journal.frames in
  Alcotest.(check int) "group dropped" 2 g.Journal.g_dropped_records

let test_nested_begin_drops_open_group () =
  (* a writer that continued into a journal holding an unterminated
     group (crash, then append without healing): the stale open group
     must not leak into replay, and it is not a truncatable tail *)
  let dir = tmp_dir () in
  let path = Filename.concat dir "j.log" in
  let j = ok (Journal.open_ path) in
  check_ok "group a" (Journal.append_group j [ "a1"; "a2" ]);
  Journal.close j;
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - commit_frame_bytes);
  let j = ok (Journal.open_ path) in
  check_ok "group b" (Journal.append_group j [ "b1"; "b2" ]);
  Journal.close j;
  Alcotest.(check (list string)) "only the committed group" [ "b1"; "b2" ]
    (ok (Journal.read_all path));
  let s = ok (Journal.scan path) in
  let g = Journal.resolve_groups s.Journal.frames in
  Alcotest.(check int) "stale group dropped" 2 g.Journal.g_dropped_records;
  Alcotest.(check int) "not a tail" 0 g.Journal.g_tail_records;
  Alcotest.(check (option int)) "no truncation point" None
    g.Journal.g_tail_begin

let test_store_group_recovery () =
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "base" (Store.append store "base");
  check_ok "group" (Store.append_group store [ "t1"; "t2"; "t3" ]);
  Alcotest.(check int) "journal_size counts records" 4
    (Store.journal_size store);
  Store.close store;
  let store, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "all recovered" [ "base"; "t1"; "t2"; "t3" ]
    records;
  Alcotest.(check int) "nothing dropped" 0 report.Store.txn_dropped;
  Alcotest.(check bool) "clean" true (Store.recovery_clean report);
  Store.close store

let test_store_uncommitted_group_dropped () =
  (* store-level all-or-nothing: an uncommitted group is reported,
     dropped from replay, and cut from the file so recovery converges *)
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "base" (Store.append store "base");
  check_ok "group" (Store.append_group store [ "t1"; "t2"; "t3" ]);
  Store.close store;
  let jpath = Filename.concat dir "journal.log" in
  let size = (Unix.stat jpath).Unix.st_size in
  Unix.truncate jpath (size - commit_frame_bytes);
  let store, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "group gone" [ "base" ] records;
  Alcotest.(check int) "dropped count" 3 report.Store.txn_dropped;
  Alcotest.(check bool) "bytes counted" true (report.Store.bytes_dropped > 0);
  Alcotest.(check bool) "not clean" false (Store.recovery_clean report);
  (* the store is immediately usable and the damage does not persist *)
  check_ok "after" (Store.append store "after");
  Store.close store;
  let _, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "healed" [ "base"; "after" ] records;
  Alcotest.(check bool) "second open clean" true (Store.recovery_clean report)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let snap_pair = Alcotest.(option (pair int string))

let test_snapshot_roundtrip () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "s.bin" in
  Alcotest.check snap_pair "missing" None (ok (Snapshot_file.read path));
  check_ok "write" (Snapshot_file.write path ~epoch:1 "payload");
  Alcotest.check snap_pair "read" (Some (1, "payload")) (ok (Snapshot_file.read path));
  check_ok "overwrite" (Snapshot_file.write path ~epoch:2 "payload2");
  Alcotest.check snap_pair "read2" (Some (2, "payload2")) (ok (Snapshot_file.read path));
  Alcotest.(check bool) "no tmp left" false (Sys.file_exists (path ^ ".tmp"))

let test_snapshot_corrupt () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "s.bin" in
  check_ok "write" (Snapshot_file.write path ~epoch:1 "payload");
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd 18 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "!") 0 1);
  Unix.close fd;
  check_err "corrupt"
    (function Seed_util.Seed_error.Corrupt _ -> true | _ -> false)
    (Snapshot_file.read path)

(* ------------------------------------------------------------------ *)
(* Store                                                                *)
(* ------------------------------------------------------------------ *)

let test_store_lifecycle () =
  let dir = tmp_dir () in
  let store, snap, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "fresh snapshot" None snap;
  Alcotest.(check (list string)) "fresh journal" [] records;
  Alcotest.(check bool) "clean recovery" true (Store.recovery_clean report);
  Alcotest.(check int) "fresh epoch" 0 (Store.epoch store);
  check_ok "r1" (Store.append store "r1");
  check_ok "r2" (Store.append store "r2");
  Alcotest.(check int) "journal size" 2 (Store.journal_size store);
  Store.close store;
  let store, snap, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "still no snapshot" None snap;
  Alcotest.(check (list string)) "recovered" [ "r1"; "r2" ] records;
  Alcotest.(check int) "replayed count" 2 report.Store.records_replayed;
  check_ok "compact" (Store.compact store ~snapshot:"SNAP");
  Alcotest.(check int) "journal emptied" 0 (Store.journal_size store);
  Alcotest.(check int) "epoch bumped" 1 (Store.epoch store);
  check_ok "r3" (Store.append store "r3");
  Store.close store;
  let store, snap, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "snapshot" (Some "SNAP") snap;
  Alcotest.(check (list string)) "tail" [ "r3" ] records;
  Alcotest.(check bool) "clean after compact" true (Store.recovery_clean report);
  Alcotest.(check bool) "no fallback left" false
    (Sys.file_exists (Filename.concat dir "snapshot.bin.old"));
  Store.close store

let test_store_append_after_close_fails () =
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir dir) in
  Store.close store;
  check_err "closed"
    (function Seed_util.Seed_error.Io_error _ -> true | _ -> false)
    (Store.append store "x")

let test_store_sync_policies () =
  (* all three durability levels accept and recover the same records
     when the process shuts down cleanly *)
  List.iter
    (fun sync ->
      let dir = tmp_dir () in
      let store, _, _, _ = ok (Store.open_dir ~sync dir) in
      check_ok "a" (Store.append store "a");
      check_ok "b" (Store.append store "b");
      check_ok "sync" (Store.sync store);
      check_ok "c" (Store.append store "c");
      Store.close store;
      let store, _, records, _ = ok (Store.open_dir dir) in
      Alcotest.(check (list string)) "all recovered" [ "a"; "b"; "c" ] records;
      Store.close store)
    [ `Always_fsync; `Flush_only; `None ]

let test_store_unsynced_none_policy_lost_on_abandon () =
  (* with `None, records not yet synced never reach the OS: reopening
     the directory behind the session's back does not see them *)
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir ~sync:`None dir) in
  check_ok "a" (Store.append store "a");
  check_ok "sync" (Store.sync store);
  check_ok "b" (Store.append store "b");
  let _, _, records, _ = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "only synced" [ "a" ] records;
  Store.close store

(* ------------------------------------------------------------------ *)
(* Epochs                                                               *)
(* ------------------------------------------------------------------ *)

let test_journal_epoch_tagging () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "j.log" in
  let j = ok (Journal.open_ ~epoch:7 path) in
  check_ok "a" (Journal.append j "alpha");
  Journal.close j;
  let s = ok (Journal.scan path) in
  Alcotest.(check (list int)) "epochs" [ 7 ]
    (List.map (fun f -> f.Journal.f_epoch) s.Journal.frames);
  Alcotest.(check bool) "no damage" true (s.Journal.scan_damage = [])

let test_stale_journal_skipped () =
  (* a journal left behind by a crash between snapshot rename and
     journal truncation predates the snapshot's epoch: its records are
     already folded into the snapshot and must NOT be replayed *)
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "r1" (Store.append store "r1");
  check_ok "r2" (Store.append store "r2");
  Store.close store;
  (* simulate the interrupted compact: the new snapshot (epoch 1) is
     durable but the epoch-0 journal was never truncated *)
  check_ok "snapshot"
    (Snapshot_file.write (Filename.concat dir "snapshot.bin") ~epoch:1
       "SNAP-r1-r2");
  let store, snap, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "snapshot" (Some "SNAP-r1-r2") snap;
  Alcotest.(check (list string)) "stale records skipped" [] records;
  Alcotest.(check bool) "flagged" true report.Store.stale_journal;
  Alcotest.(check bool) "bytes counted" true (report.Store.bytes_dropped > 0);
  Alcotest.(check int) "epoch adopted" 1 (Store.epoch store);
  (* the skip is persistent: the stale journal was truncated on open *)
  check_ok "r3" (Store.append store "r3");
  Store.close store;
  let _, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "new epoch records" [ "r3" ] records;
  Alcotest.(check bool) "second open clean" true (Store.recovery_clean report)

let test_journal_ahead_of_snapshot_refused () =
  (* records whose epoch exceeds the snapshot's depend on a snapshot
     that does not exist — replaying them would corrupt silently *)
  let dir = tmp_dir () in
  let jpath = Filename.concat dir "journal.log" in
  let j = ok (Journal.open_ ~epoch:3 jpath) in
  check_ok "r" (Journal.append j "orphan");
  Journal.close j;
  check_err "refused"
    (function Seed_util.Seed_error.Corrupt _ -> true | _ -> false)
    (Store.open_dir dir)

let test_torn_tail_truncated_on_open () =
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "r1" (Store.append store "r1");
  check_ok "r2" (Store.append store "r2");
  Store.close store;
  let jpath = Filename.concat dir "journal.log" in
  let intact = (16 + 2) * 2 in
  let size = (Unix.stat jpath).Unix.st_size in
  Alcotest.(check int) "frame math" intact size;
  (* cut the second frame in half *)
  Unix.truncate jpath (size - 9);
  let store, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "prefix" [ "r1" ] records;
  Alcotest.(check int) "dropped" 9 report.Store.bytes_dropped;
  Alcotest.(check bool) "torn reported" true (report.Store.torn_tail <> None);
  Store.close store;
  (* the damage is gone from disk, not just ignored *)
  Alcotest.(check int) "file cut back" (16 + 2)
    (Unix.stat jpath).Unix.st_size;
  let _, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "stable" [ "r1" ] records;
  Alcotest.(check bool) "clean now" true (Store.recovery_clean report)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                      *)
(* ------------------------------------------------------------------ *)

let test_fsync_failure_on_append () =
  let dir = tmp_dir () in
  let f = Faulty_io.create ~fail_fsync:0 () in
  let store, _, _, _ =
    ok (Store.open_dir ~io:(Faulty_io.io f) ~sync:`Always_fsync dir)
  in
  check_err "append surfaces the fsync failure"
    (function Seed_util.Seed_error.Io_error _ -> true | _ -> false)
    (Store.append store "r1");
  (* the store survives: the next append (fsync healthy again) works *)
  check_ok "next append" (Store.append store "r2");
  Store.close store;
  let _, _, _, _ = ok (Store.open_dir dir) in
  ()

let test_rename_failure_during_snapshot_write () =
  let dir = tmp_dir () in
  let f = Faulty_io.create ~fail_rename:0 () in
  let store, _, _, _ = ok (Store.open_dir ~io:(Faulty_io.io f) dir) in
  check_ok "r1" (Store.append store "r1");
  check_err "compact fails"
    (function Seed_util.Seed_error.Io_error _ -> true | _ -> false)
    (Store.compact store ~snapshot:"SNAP");
  (* no half-written snapshot or stray tmp file is left behind *)
  Alcotest.(check bool) "no tmp" false
    (Sys.file_exists (Filename.concat dir "snapshot.bin.tmp"));
  Alcotest.(check bool) "no snapshot" false
    (Sys.file_exists (Filename.concat dir "snapshot.bin"));
  (* the store stays usable on its pre-compaction state *)
  check_ok "r2" (Store.append store "r2");
  Store.close store;
  let _, snap, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "still journal-only" None snap;
  Alcotest.(check (list string)) "nothing lost" [ "r1"; "r2" ] records;
  Alcotest.(check bool) "clean" true (Store.recovery_clean report)

let test_enospc_mid_journal_frame () =
  let dir = tmp_dir () in
  let f = Faulty_io.create ~enospc_write:1 () in
  let store, _, _, _ = ok (Store.open_dir ~io:(Faulty_io.io f) dir) in
  check_ok "r1" (Store.append store "r1");
  check_err "disk full"
    (function Seed_util.Seed_error.Io_error m -> String.length m > 0 | _ -> false)
    (Store.append store "r2-too-big-for-the-disk");
  Store.close store;
  (* the half-written frame is dropped and cut off on reopen *)
  let store, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "intact prefix" [ "r1" ] records;
  Alcotest.(check bool) "torn" true (report.Store.torn_tail <> None);
  Alcotest.(check bool) "bytes dropped" true (report.Store.bytes_dropped > 0);
  check_ok "can append again" (Store.append store "r3");
  Store.close store;
  let _, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "healed" [ "r1"; "r3" ] records;
  Alcotest.(check bool) "clean" true (Store.recovery_clean report)

let test_crash_during_snapshot_tmp_write () =
  (* a torn crash inside the tmp-file write must leave the previous
     snapshot + journal pair untouched *)
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "r1" (Store.append store "r1");
  check_ok "compact" (Store.compact store ~snapshot:"SNAP1");
  check_ok "r2" (Store.append store "r2");
  Store.close store;
  (* count ops up to the tmp write: reopen (1 op), compact's open_trunc
     (1 op), then the write — crash at global step 2, mid-write *)
  let f = Faulty_io.create ~crash_at:2 ~torn:true () in
  let store, _, _, _ = ok (Store.open_dir ~io:(Faulty_io.io f) dir) in
  (try
     ignore (Store.compact store ~snapshot:"SNAP2");
     Alcotest.fail "expected a crash"
   with Faulty_io.Crash _ -> ());
  Alcotest.(check bool) "crashed" true (Faulty_io.crashed f);
  let _, snap, records, _ = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "old snapshot intact" (Some "SNAP1") snap;
  Alcotest.(check (list string)) "journal intact" [ "r2" ] records

(* ------------------------------------------------------------------ *)
(* fsck                                                                 *)
(* ------------------------------------------------------------------ *)

let is_intact = function Store.Intact _ -> true | _ -> false
let is_damaged = function Store.Damaged _ -> true | _ -> false

let populated_dir () =
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "r1" (Store.append store "r1");
  check_ok "compact" (Store.compact store ~snapshot:"SNAP");
  check_ok "r2" (Store.append store "r2");
  Store.close store;
  dir

let test_fsck_healthy () =
  let dir = populated_dir () in
  let r = ok (Store.fsck dir) in
  Alcotest.(check bool) "healthy" true r.Store.fsck_healthy;
  Alcotest.(check bool) "snapshot intact" true (is_intact r.Store.fsck_snapshot);
  Alcotest.(check int) "frames" 1 r.Store.fsck_journal_frames;
  Alcotest.(check (option int)) "epoch" (Some 1) r.Store.fsck_journal_epoch;
  Alcotest.(check int) "no torn bytes" 0 r.Store.fsck_torn_bytes

let test_fsck_torn_tail () =
  let dir = populated_dir () in
  let jpath = Filename.concat dir "journal.log" in
  let size = (Unix.stat jpath).Unix.st_size in
  Unix.truncate jpath (size - 5);
  let r = ok (Store.fsck dir) in
  Alcotest.(check bool) "unhealthy" false r.Store.fsck_healthy;
  Alcotest.(check int) "torn bytes" (16 + 2 - 5) r.Store.fsck_torn_bytes;
  let r = ok (Store.fsck ~repair:true dir) in
  Alcotest.(check bool) "repaired" true r.Store.fsck_healthy;
  Alcotest.(check bool) "actions reported" true (r.Store.fsck_repairs <> []);
  let _, snap, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "snapshot kept" (Some "SNAP") snap;
  Alcotest.(check (list string)) "tail dropped" [] records;
  Alcotest.(check bool) "clean open" true (Store.recovery_clean report)

let test_fsck_corrupt_snapshot_with_fallback () =
  let dir = populated_dir () in
  (* another compact leaves epoch 2; then corrupt the snapshot but
     plant a valid fallback, as a crash between compact renames would *)
  let snap = Filename.concat dir "snapshot.bin" in
  check_ok "fallback"
    (Snapshot_file.write (Filename.concat dir "snapshot.bin.old") ~epoch:1
       "SNAP");
  let fd = Unix.openfile snap [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd 17 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "?") 0 1);
  Unix.close fd;
  let r = ok (Store.fsck dir) in
  Alcotest.(check bool) "unhealthy" false r.Store.fsck_healthy;
  Alcotest.(check bool) "snapshot damaged" true (is_damaged r.Store.fsck_snapshot);
  Alcotest.(check bool) "fallback intact" true (is_intact r.Store.fsck_fallback);
  let r = ok (Store.fsck ~repair:true dir) in
  Alcotest.(check bool) "repaired" true r.Store.fsck_healthy;
  let _, snap_payload, records, _ = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "fallback data" (Some "SNAP") snap_payload;
  Alcotest.(check (list string)) "journal matches fallback epoch" [ "r2" ] records

let test_fsck_corrupt_snapshot_no_fallback () =
  let dir = populated_dir () in
  let snap = Filename.concat dir "snapshot.bin" in
  let fd = Unix.openfile snap [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd 17 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "?") 0 1);
  Unix.close fd;
  (* open refuses: the data cannot be trusted *)
  check_err "open refuses"
    (function Seed_util.Seed_error.Corrupt _ -> true | _ -> false)
    (Store.open_dir dir);
  let r = ok (Store.fsck dir) in
  Alcotest.(check bool) "unhealthy" false r.Store.fsck_healthy;
  (* repair quarantines the snapshot; the store reopens empty *)
  let r = ok (Store.fsck ~repair:true dir) in
  Alcotest.(check bool) "healthy after repair" true r.Store.fsck_healthy;
  Alcotest.(check bool) "quarantine kept" true
    (Sys.file_exists (Filename.concat dir "snapshot.bin.corrupt"));
  let _, snap_payload, records, _ = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "empty" None snap_payload;
  Alcotest.(check (list string)) "no records" [] records

let test_fsck_leftover_tmp_and_fallback () =
  let dir = populated_dir () in
  Out_channel.with_open_bin (Filename.concat dir "snapshot.bin.tmp")
    (fun oc -> Out_channel.output_string oc "garbage");
  check_ok "stale fallback"
    (Snapshot_file.write (Filename.concat dir "snapshot.bin.old") ~epoch:0 "OLD");
  let r = ok (Store.fsck dir) in
  Alcotest.(check bool) "unhealthy" false r.Store.fsck_healthy;
  Alcotest.(check bool) "tmp seen" true r.Store.fsck_tmp_leftover;
  let r = ok (Store.fsck ~repair:true dir) in
  Alcotest.(check bool) "healthy" true r.Store.fsck_healthy;
  Alcotest.(check bool) "tmp gone" false
    (Sys.file_exists (Filename.concat dir "snapshot.bin.tmp"));
  Alcotest.(check bool) "fallback gone" false
    (Sys.file_exists (Filename.concat dir "snapshot.bin.old"))

let test_fsck_dangling_txn () =
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "base" (Store.append store "base");
  check_ok "group" (Store.append_group store [ "t1"; "t2" ]);
  Store.close store;
  let jpath = Filename.concat dir "journal.log" in
  let size = (Unix.stat jpath).Unix.st_size in
  Unix.truncate jpath (size - commit_frame_bytes);
  let r = ok (Store.fsck dir) in
  Alcotest.(check bool) "unhealthy" false r.Store.fsck_healthy;
  Alcotest.(check int) "dangling records" 2 r.Store.fsck_dangling_txn_records;
  Alcotest.(check bool) "tail signature" true r.Store.fsck_dangling_txn_tail;
  Alcotest.(check int) "replayable frames" 1 r.Store.fsck_journal_frames;
  let r = ok (Store.fsck ~repair:true dir) in
  Alcotest.(check bool) "repaired" true r.Store.fsck_healthy;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "repair names the dangling txn" true
    (List.exists (fun m -> contains m "dangling") r.Store.fsck_repairs);
  let _, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "only committed data" [ "base" ] records;
  Alcotest.(check bool) "clean open" true (Store.recovery_clean report)

(* ------------------------------------------------------------------ *)
(* Self-healing recovery                                                *)
(* ------------------------------------------------------------------ *)

(* three standalone records, then flip one byte inside the middle
   frame's payload — a mid-file corruption that is NOT a torn tail *)
let corrupt_middle_frame dir =
  let jpath = Filename.concat dir "journal.log" in
  let fd = Unix.openfile jpath [ Unix.O_RDWR ] 0o644 in
  (* frames are 16-byte header + 2-byte payload; frame 2 spans 18..35 *)
  ignore (Unix.lseek fd (18 + 16) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "!") 0 1);
  Unix.close fd

let three_record_dir () =
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "r1" (Store.append store "r1");
  check_ok "r2" (Store.append store "r2");
  check_ok "r3" (Store.append store "r3");
  Store.close store;
  dir

let test_mid_journal_corruption_quarantined () =
  (* a corrupt frame in the middle of the journal must not cost the
     committed records on either side of it: the scanner resynchronizes
     on the next frame boundary and reports the damage *)
  let dir = three_record_dir () in
  corrupt_middle_frame dir;
  let store, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "survivors" [ "r1"; "r3" ] records;
  Alcotest.(check int) "one region" 1 (List.length report.Store.quarantined);
  (match report.Store.quarantined with
  | [ d ] ->
    Alcotest.(check int) "region start" 18 d.Journal.d_offset;
    Alcotest.(check int) "region end" 36 d.Journal.d_end
  | _ -> Alcotest.fail "expected one damage region");
  Alcotest.(check (option string)) "not a torn tail" None report.Store.torn_tail;
  Alcotest.(check bool) "not clean" false (Store.recovery_clean report);
  (* the store stays usable; the damage stays on disk until repair *)
  check_ok "append after" (Store.append store "r4");
  Store.close store;
  let _, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "stable" [ "r1"; "r3"; "r4" ] records;
  Alcotest.(check int) "still quarantined" 1
    (List.length report.Store.quarantined)

let test_fsck_excises_quarantined_region () =
  let dir = three_record_dir () in
  corrupt_middle_frame dir;
  let r = ok (Store.fsck dir) in
  Alcotest.(check bool) "unhealthy" false r.Store.fsck_healthy;
  Alcotest.(check int) "regions" 1 r.Store.fsck_quarantined_regions;
  Alcotest.(check int) "bytes" 18 r.Store.fsck_quarantined_bytes;
  let r = ok (Store.fsck ~repair:true dir) in
  Alcotest.(check bool) "healthy after repair" true r.Store.fsck_healthy;
  Alcotest.(check bool) "repairs named" true (r.Store.fsck_repairs <> []);
  let _, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "survivors kept" [ "r1"; "r3" ] records;
  Alcotest.(check bool) "clean open" true (Store.recovery_clean report)

let generations_dir () =
  (* two compactions leave snapshot.bin (epoch 2, "S2"), generation 1
     (epoch 1, "S1"), and an epoch-2 journal holding "c" *)
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "a" (Store.append store "a");
  check_ok "compact1" (Store.compact store ~snapshot:"S1");
  check_ok "b" (Store.append store "b");
  check_ok "compact2" (Store.compact store ~snapshot:"S2");
  check_ok "c" (Store.append store "c");
  Store.close store;
  dir

let corrupt_file path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd 17 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "?") 0 1);
  Unix.close fd

let test_generation_rotation_on_compact () =
  let dir = generations_dir () in
  Alcotest.check snap_pair "generation 1 holds the previous snapshot"
    (Some (1, "S1"))
    (ok (Snapshot_file.read (Filename.concat dir "snapshot.bin.1")));
  Alcotest.(check bool) "no .old left" false
    (Sys.file_exists (Filename.concat dir "snapshot.bin.old"));
  (* a third compact shifts S2 into slot 1 and retires S1 to slot 2 *)
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "compact3" (Store.compact store ~snapshot:"S3");
  Store.close store;
  Alcotest.check snap_pair "slot 1 rotated" (Some (2, "S2"))
    (ok (Snapshot_file.read (Filename.concat dir "snapshot.bin.1")));
  Alcotest.check snap_pair "slot 2 rotated" (Some (1, "S1"))
    (ok (Snapshot_file.read (Filename.concat dir "snapshot.bin.2")));
  (* default keeps 2 generations: a fourth compact drops S1 for good *)
  let store, _, _, _ = ok (Store.open_dir dir) in
  check_ok "compact4" (Store.compact store ~snapshot:"S4");
  Store.close store;
  Alcotest.(check bool) "oldest dropped" false
    (Sys.file_exists (Filename.concat dir "snapshot.bin.3"))

let test_generation_fallback_on_open () =
  (* the newest snapshot is corrupt and there is no .old: recovery must
     walk back to generation 1, quarantine the damaged primary, and
     drop the now-unreplayable epoch-2 journal records *)
  let dir = generations_dir () in
  corrupt_file (Filename.concat dir "snapshot.bin");
  let store, snap, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "generation data" (Some "S1") snap;
  Alcotest.(check (list string)) "ahead records dropped" [] records;
  Alcotest.(check bool) "fallback flagged" true report.Store.used_fallback;
  Alcotest.(check (option int)) "generation flagged" (Some 1)
    report.Store.snapshot_generation;
  Alcotest.(check int) "ahead counted" 1 report.Store.ahead_dropped;
  Alcotest.(check bool) "not clean" false (Store.recovery_clean report);
  Alcotest.(check int) "epoch adopted" 1 (Store.epoch store);
  Alcotest.(check bool) "damaged primary quarantined" true
    (Sys.file_exists (Filename.concat dir "snapshot.bin.corrupt"));
  (* recovery converges: life goes on from the generation's state *)
  check_ok "append" (Store.append store "d");
  Store.close store;
  let _, snap, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "promoted" (Some "S1") snap;
  Alcotest.(check (list string)) "new records" [ "d" ] records;
  Alcotest.(check bool) "second open clean" true (Store.recovery_clean report)

let test_fsck_promotes_generation () =
  let dir = generations_dir () in
  corrupt_file (Filename.concat dir "snapshot.bin");
  let r = ok (Store.fsck dir) in
  Alcotest.(check bool) "unhealthy" false r.Store.fsck_healthy;
  Alcotest.(check bool) "snapshot damaged" true (is_damaged r.Store.fsck_snapshot);
  Alcotest.(check bool) "generation 1 intact" true
    (List.exists
       (fun (k, st) -> k = 1 && is_intact st)
       r.Store.fsck_generations);
  let r = ok (Store.fsck ~repair:true dir) in
  Alcotest.(check bool) "healthy after repair" true r.Store.fsck_healthy;
  let _, snap, _, _ = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "generation promoted" (Some "S1") snap

let test_transient_reads_absorbed () =
  (* EINTR-class read faults on open are retried away: the recovery is
     clean and only the retry counter remembers them *)
  let dir = populated_dir () in
  let f = Faulty_io.create ~transient_reads:2 () in
  let store, snap, records, report = ok (Store.open_dir ~io:(Faulty_io.io f) dir) in
  Alcotest.(check (option string)) "snapshot read" (Some "SNAP") snap;
  Alcotest.(check (list string)) "journal read" [ "r2" ] records;
  Alcotest.(check bool) "clean" true (Store.recovery_clean report);
  Alcotest.(check bool) "retries counted" true (report.Store.io_retries >= 2);
  Alcotest.(check bool) "store counter agrees" true (Store.retries store >= 2);
  Store.close store

let test_flip_read_double_checked () =
  (* a bit flipped on the wire (not on disk) makes the first journal
     scan look damaged; the double-check re-read comes back clean, so
     nothing is quarantined or truncated *)
  let dir = populated_dir () in
  let f = Faulty_io.create ~flip_read:1 () in
  let _, snap, records, report = ok (Store.open_dir ~io:(Faulty_io.io f) dir) in
  Alcotest.(check (option string)) "snapshot" (Some "SNAP") snap;
  Alcotest.(check (list string)) "no data lost" [ "r2" ] records;
  Alcotest.(check (list pass)) "nothing quarantined" []
    report.Store.quarantined;
  Alcotest.(check bool) "clean" true (Store.recovery_clean report);
  Alcotest.(check bool) "re-read counted" true (report.Store.io_retries >= 1)

let test_short_read_double_checked () =
  (* a short read looks like a torn tail; the re-read proves the file
     is whole, so the tail must NOT be truncated *)
  let dir = populated_dir () in
  let jsize = (Unix.stat (Filename.concat dir "journal.log")).Unix.st_size in
  let f = Faulty_io.create ~short_read:1 () in
  let _, _, records, report = ok (Store.open_dir ~io:(Faulty_io.io f) dir) in
  Alcotest.(check (list string)) "no data lost" [ "r2" ] records;
  Alcotest.(check (option string)) "no torn tail" None report.Store.torn_tail;
  Alcotest.(check bool) "clean" true (Store.recovery_clean report);
  Alcotest.(check int) "file untouched" jsize
    (Unix.stat (Filename.concat dir "journal.log")).Unix.st_size

let test_eio_read_is_permanent () =
  (* EIO is a media error, not a transient: with no fallback in the
     directory the open must surface it rather than spin retrying *)
  let dir = populated_dir () in
  let f = Faulty_io.create ~eio_read:0 () in
  check_err "surfaced"
    (function Seed_util.Seed_error.Io_error _ -> true | _ -> false)
    (Store.open_dir ~io:(Faulty_io.io f) dir);
  Alcotest.(check bool) "no runaway retries" true (Faulty_io.reads f <= 3)

let test_lie_fsync_keeps_schedule () =
  (* a lying fsync must not change the operation schedule (crash-step
     sweeps depend on it) and a clean shutdown still recovers *)
  let run lie =
    let dir = tmp_dir () in
    let f = Faulty_io.create ~lie_fsync:lie () in
    let store, _, _, _ =
      ok (Store.open_dir ~io:(Faulty_io.io f) ~sync:`Always_fsync dir)
    in
    check_ok "a" (Store.append store "a");
    check_ok "compact" (Store.compact store ~snapshot:"S");
    check_ok "b" (Store.append store "b");
    Store.close store;
    let _, snap, records, _ = ok (Store.open_dir dir) in
    Alcotest.(check (option string)) "snapshot" (Some "S") snap;
    Alcotest.(check (list string)) "records" [ "b" ] records;
    Faulty_io.steps f
  in
  let honest = run false and lying = run true in
  Alcotest.(check int) "same step schedule" honest lying

let test_salvage_sweep () =
  (* ISSUE acceptance: for EVERY single corrupt mid-journal frame, and
     for a corrupt newest snapshot generation, fsck --repair + reopen
     recovers with the damage quarantined and every acked committed
     record outside the damage intact *)
  let mk () =
    let dir = tmp_dir () in
    let store, _, _, _ = ok (Store.open_dir dir) in
    check_ok "a" (Store.append store "a1");
    check_ok "compact" (Store.compact store ~snapshot:"BASE");
    check_ok "g1" (Store.append_group store [ "g1a"; "g1b" ]);
    check_ok "solo" (Store.append store "solo");
    check_ok "g2" (Store.append_group store [ "g2a"; "g2b" ]);
    Store.close store;
    dir
  in
  (* count the journal frames of a pristine copy *)
  let probe = mk () in
  let s = ok (Journal.scan (Filename.concat probe "journal.log")) in
  let frames = s.Journal.frames in
  Alcotest.(check bool) "several frames" true (List.length frames > 5);
  List.iteri
    (fun i f ->
      let dir = mk () in
      let jpath = Filename.concat dir "journal.log" in
      (* flip a payload/header byte inside frame i *)
      let fd = Unix.openfile jpath [ Unix.O_RDWR ] 0o644 in
      ignore (Unix.lseek fd (f.Journal.f_offset + 5) Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      ignore (Unix.lseek fd (f.Journal.f_offset + 5) Unix.SEEK_SET);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      let name = Printf.sprintf "frame %d" i in
      (* recovery must succeed and keep every committed unit that does
         not share a transaction group with the damaged frame *)
      let _ = ok (Store.fsck ~repair:true dir) in
      let _, snap, records, report = ok (Store.open_dir dir) in
      Alcotest.(check (option string)) (name ^ ": snapshot") (Some "BASE") snap;
      Alcotest.(check bool) (name ^ ": clean after repair") true
        (Store.recovery_clean report);
      let survived r = List.mem r records in
      let group_intact g = List.for_all survived g in
      let group_gone g = List.for_all (fun r -> not (survived r)) g in
      Alcotest.(check bool) (name ^ ": g1 all-or-nothing") true
        (group_intact [ "g1a"; "g1b" ] || group_gone [ "g1a"; "g1b" ]);
      Alcotest.(check bool) (name ^ ": g2 all-or-nothing") true
        (group_intact [ "g2a"; "g2b" ] || group_gone [ "g2a"; "g2b" ]);
      (* at most the damaged frame's own commit unit may be missing *)
      let units = [ [ "g1a"; "g1b" ]; [ "solo" ]; [ "g2a"; "g2b" ] ] in
      let lost = List.filter (fun u -> not (group_intact u)) units in
      Alcotest.(check bool) (name ^ ": at most one unit lost") true
        (List.length lost <= 1))
    frames;
  (* corrupt newest snapshot generation: recovery falls back to it only
     when the primary dies too, so damage there must not block opening *)
  let dir = generations_dir () in
  corrupt_file (Filename.concat dir "snapshot.bin.1");
  let _ = ok (Store.fsck ~repair:true dir) in
  let _, snap, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "primary wins" (Some "S2") snap;
  Alcotest.(check (list string)) "journal intact" [ "c" ] records;
  Alcotest.(check bool) "clean" true (Store.recovery_clean report)

(* ------------------------------------------------------------------ *)
(* Partitioned journals + group commit                                  *)
(* ------------------------------------------------------------------ *)

(* a routing key that lands on partition [p] of [parts] — mirrors the
   store's [Hashtbl.hash key mod n] routing *)
let key_for ~parts p =
  let rec go i =
    let k = Printf.sprintf "key%d" i in
    if Hashtbl.hash k mod parts = p then k else go (i + 1)
  in
  go 0

let test_partitioned_merge_order () =
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir ~partitions:3 dir) in
  Alcotest.(check int) "write-side partitions" 3 (Store.partitions store);
  (* interleave groups and solo records across all three partitions *)
  let expect = ref [] in
  List.iteri
    (fun i p ->
      let key = key_for ~parts:3 p in
      if i mod 2 = 0 then begin
        let rs = [ Printf.sprintf "g%d-a" i; Printf.sprintf "g%d-b" i ] in
        check_ok "group" (Store.append_group ~key store rs);
        expect := List.rev_append rs !expect
      end
      else begin
        let r = Printf.sprintf "s%d" i in
        check_ok "solo" (Store.append ~key store r);
        expect := r :: !expect
      end)
    [ 0; 1; 2; 2; 1; 0; 1; 0; 2 ];
  let expect = List.rev !expect in
  Alcotest.(check int) "journal_size sums partitions" (List.length expect)
    (Store.journal_size store);
  Store.close store;
  Alcotest.(check bool) "p1 file" true
    (Sys.file_exists (Filename.concat dir "journal.p1"));
  Alcotest.(check bool) "p2 file" true
    (Sys.file_exists (Filename.concat dir "journal.p2"));
  (* reopen under the default: the count is probed from disk and the
     replay is the seq-merged total order across partitions *)
  let store, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check int) "probed partitions" 3 (Store.partitions store);
  Alcotest.(check int) "merged" 3 report.Store.partitions_merged;
  Alcotest.(check (list string)) "merged total order" expect records;
  Alcotest.(check bool) "clean" true (Store.recovery_clean report);
  Store.close store

let test_partition_probe_growth () =
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir ~partitions:4 dir) in
  check_ok "a" (Store.append ~key:(key_for ~parts:4 3) store "a");
  Store.close store;
  (* asking for fewer partitions cannot shrink what is on disk *)
  let store, _, records, _ = ok (Store.open_dir ~partitions:2 dir) in
  Alcotest.(check int) "grown to what disk holds" 4 (Store.partitions store);
  Alcotest.(check (list string)) "record kept" [ "a" ] records;
  check_ok "b" (Store.append ~key:(key_for ~parts:4 3) store "b");
  Store.close store;
  let store, _, records, _ = ok (Store.open_dir dir) in
  Alcotest.(check int) "still 4" 4 (Store.partitions store);
  Alcotest.(check (list string)) "order kept" [ "a"; "b" ] records;
  Store.close store

let test_partitioned_compaction () =
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir ~partitions:2 dir) in
  let k0 = key_for ~parts:2 0 and k1 = key_for ~parts:2 1 in
  check_ok "g0" (Store.append_group ~key:k0 store [ "a1"; "a2" ]);
  check_ok "g1" (Store.append_group ~key:k1 store [ "b1"; "b2" ]);
  check_ok "compact" (Store.compact store ~snapshot:"SNAP");
  Alcotest.(check int) "all partitions emptied" 0 (Store.journal_size store);
  check_ok "after" (Store.append ~key:k1 store "c");
  Store.close store;
  let store, snap, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (option string)) "snapshot" (Some "SNAP") snap;
  Alcotest.(check (list string)) "post-compact tail" [ "c" ] records;
  Alcotest.(check bool) "clean" true (Store.recovery_clean report);
  Alcotest.(check int) "epoch" 1 (Store.epoch store);
  Store.close store

let test_partitioned_write_stats () =
  let dir = tmp_dir () in
  let store, _, _, _ =
    ok (Store.open_dir ~partitions:2 ~sync:`Always_fsync dir)
  in
  let k0 = key_for ~parts:2 0 and k1 = key_for ~parts:2 1 in
  check_ok "a" (Store.append ~key:k0 store "a");
  check_ok "b" (Store.append ~key:k1 store "b");
  check_ok "g" (Store.append_group ~key:k1 store [ "c"; "d" ]);
  let stats = Store.write_stats store in
  Alcotest.(check (list int)) "one entry per partition" [ 0; 1 ]
    (List.map fst stats);
  let total =
    List.fold_left
      (fun acc (_, s) -> Commit_daemon.add_stats acc s)
      Commit_daemon.empty_stats stats
  in
  Alcotest.(check int) "txns submitted" 3 total.Commit_daemon.submitted;
  (* single-threaded: every transaction is its own batch and fsync *)
  Alcotest.(check int) "batches" 3 total.Commit_daemon.batches;
  Alcotest.(check int) "fsyncs" 3 total.Commit_daemon.fsyncs;
  Alcotest.(check bool) "max batch seen" true
    (total.Commit_daemon.max_batch >= 1);
  Store.close store

let test_partitioned_concurrent_writers () =
  (* four writer domains, one per partition: every transaction survives,
     per-writer order is preserved by the seq merge, and the daemon
     counters account for every submission *)
  let dir = tmp_dir () in
  let parts = 4 in
  let store, _, _, _ = ok (Store.open_dir ~partitions:parts dir) in
  let n_domains = 4 and per = 50 in
  let ready = Atomic.make 0 in
  let worker d =
    Domain.spawn (fun () ->
        Atomic.incr ready;
        while Atomic.get ready < n_domains do
          Domain.cpu_relax ()
        done;
        let key = key_for ~parts d in
        for i = 0 to per - 1 do
          match
            Store.append_group ~key store
              [
                Printf.sprintf "d%d-%03d-a" d i; Printf.sprintf "d%d-%03d-b" d i;
              ]
          with
          | Ok () -> ()
          | Error e -> failwith (Seed_util.Seed_error.to_string e)
        done)
  in
  let domains = List.init n_domains worker in
  List.iter Domain.join domains;
  let total =
    List.fold_left
      (fun acc (_, s) -> Commit_daemon.add_stats acc s)
      Commit_daemon.empty_stats (Store.write_stats store)
  in
  Alcotest.(check int) "every txn submitted" (n_domains * per)
    total.Commit_daemon.submitted;
  Alcotest.(check bool) "no more batches than txns" true
    (total.Commit_daemon.batches <= total.Commit_daemon.submitted);
  Store.close store;
  let _, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check int) "all partitions merged" parts
    report.Store.partitions_merged;
  Alcotest.(check int) "every record survives" (n_domains * per * 2)
    (List.length records);
  for d = 0 to n_domains - 1 do
    let prefix = Printf.sprintf "d%d-" d in
    let mine =
      List.filter
        (fun r -> String.length r >= 3 && String.sub r 0 3 = prefix)
        records
    in
    let expected =
      List.concat
        (List.init per (fun i ->
             [
               Printf.sprintf "d%d-%03d-a" d i; Printf.sprintf "d%d-%03d-b" d i;
             ]))
    in
    Alcotest.(check (list string))
      (Printf.sprintf "writer %d order preserved" d)
      expected mine
  done

let test_partitioned_crash_sweep () =
  (* crash at EVERY I/O step of a two-partition schedule, with torn
     writes: whatever the step, recovery keeps every acknowledged group
     whole, drops at most the in-flight one whole (never a prefix), the
     merged replay is a prefix of the schedule, and a second open is
     clean — the damage does not persist *)
  let k0 = key_for ~parts:2 0 and k1 = key_for ~parts:2 1 in
  let groups =
    [
      (k0, [ "a1"; "a2" ]);
      (k1, [ "b1"; "b2" ]);
      (k0, [ "a3"; "a4" ]);
      (k1, [ "b3"; "b4" ]);
      (k0, [ "a5" ]);
      (k1, [ "b5" ]);
    ]
  in
  let schedule ~io dir acked =
    let store, _, _, _ =
      ok (Store.open_dir ~io ~sync:`Always_fsync ~partitions:2 dir)
    in
    List.iter
      (fun (key, rs) ->
        check_ok "group" (Store.append_group ~key store rs);
        acked := rs :: !acked)
      groups;
    Store.close store
  in
  let probe = Faulty_io.create () in
  schedule ~io:(Faulty_io.io probe) (tmp_dir ()) (ref []);
  let total = Faulty_io.steps probe in
  Alcotest.(check bool) "schedule has crash points" true (total > 6);
  let full = List.concat_map snd groups in
  let rec is_prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | x :: xs', y :: ys' when String.equal x y -> is_prefix xs' ys'
    | _ -> false
  in
  for k = 0 to total - 1 do
    let name = Printf.sprintf "crash@%d/%d" k total in
    let dir = tmp_dir () in
    let f = Faulty_io.create ~crash_at:k ~torn:true () in
    let acked = ref [] in
    (try
       schedule ~io:(Faulty_io.io f) dir acked;
       Alcotest.failf "%s did not fire" name
     with Faulty_io.Crash _ -> ());
    let _, _, records, _ = ok (Store.open_dir dir) in
    (* every group acknowledged under `Always_fsync survives whole *)
    List.iter
      (fun rs ->
        List.iter
          (fun r ->
            Alcotest.(check bool) (name ^ ": acked " ^ r) true
              (List.mem r records))
          rs)
      !acked;
    (* all-or-nothing for every group, acknowledged or in-flight *)
    List.iter
      (fun (_, rs) ->
        let live = List.filter (fun r -> List.mem r records) rs in
        Alcotest.(check bool) (name ^ ": all-or-nothing") true
          (live = [] || List.length live = List.length rs))
      groups;
    (* the merge restores submission order: the replay is a prefix *)
    Alcotest.(check bool) (name ^ ": replay is a schedule prefix") true
      (is_prefix records full);
    (* recovery converges: the second open sees the same records, clean *)
    let _, _, records2, report2 = ok (Store.open_dir dir) in
    Alcotest.(check (list string)) (name ^ ": converged") records records2;
    Alcotest.(check bool) (name ^ ": second open clean") true
      (Store.recovery_clean report2)
  done

let test_fsck_partition_local_damage () =
  (* one partition ends inside an unterminated group (the crash-mid-
     flush signature) while another holds a corrupt frame mid-journal:
     fsck reports each damage on its own partition, --repair heals both
     without crossing partitions, and the survivors keep their merged
     order *)
  let dir = tmp_dir () in
  let store, _, _, _ = ok (Store.open_dir ~partitions:2 dir) in
  let k0 = key_for ~parts:2 0 and k1 = key_for ~parts:2 1 in
  check_ok "g1" (Store.append_group ~key:k1 store [ "p1a"; "p1b" ]);
  check_ok "g2" (Store.append_group ~key:k0 store [ "p0a"; "p0b" ]);
  check_ok "g3" (Store.append_group ~key:k1 store [ "p1c"; "p1d" ]);
  check_ok "g4" (Store.append_group ~key:k0 store [ "p0c"; "p0d" ]);
  Store.close store;
  (* partition 0: cut g4's commit marker — a dangling tail group *)
  let p0 = Filename.concat dir "journal.log" in
  Unix.truncate p0 ((Unix.stat p0).Unix.st_size - commit_frame_bytes);
  (* partition 1: flip a byte in a data frame of g1 — mid-journal rot *)
  let p1 = Filename.concat dir "journal.p1" in
  let s = ok (Journal.scan p1) in
  let data_frame =
    List.find
      (fun f -> match f.Journal.f_kind with Journal.Data -> true | _ -> false)
      s.Journal.frames
  in
  let fd = Unix.openfile p1 [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (data_frame.Journal.f_offset + 16) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  ignore (Unix.lseek fd (data_frame.Journal.f_offset + 16) Unix.SEEK_SET);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x20));
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let r = ok (Store.fsck dir) in
  Alcotest.(check bool) "unhealthy" false r.Store.fsck_healthy;
  let h0 = List.assoc 0 r.Store.fsck_partitions in
  let h1 = List.assoc 1 r.Store.fsck_partitions in
  (* the damage is reported partition-locally: the dangling tail on
     partition 0 only, the quarantined region on partition 1 only *)
  Alcotest.(check bool) "p0 dangling tail" true h0.Store.jh_dangling_tail;
  Alcotest.(check int) "p0 dangling records" 2 h0.Store.jh_dangling_records;
  Alcotest.(check int) "p0 not quarantined" 0 h0.Store.jh_quarantined_regions;
  Alcotest.(check bool) "p0 unhealthy" false h0.Store.jh_healthy;
  Alcotest.(check bool) "p1 quarantined" true
    (h1.Store.jh_quarantined_regions >= 1);
  Alcotest.(check bool) "p1 no dangling tail" false h1.Store.jh_dangling_tail;
  Alcotest.(check bool) "p1 unhealthy" false h1.Store.jh_healthy;
  let r = ok (Store.fsck ~repair:true dir) in
  Alcotest.(check bool) "healthy after repair" true r.Store.fsck_healthy;
  Alcotest.(check bool) "repairs reported" true (r.Store.fsck_repairs <> []);
  (* the intact groups survive, in their cross-partition merged order:
     g2 (seq 2, partition 0) before g3 (seq 3, partition 1) *)
  let _, _, records, report = ok (Store.open_dir dir) in
  Alcotest.(check (list string)) "survivors merged in seq order"
    [ "p0a"; "p0b"; "p1c"; "p1d" ]
    records;
  Alcotest.(check bool) "clean open" true (Store.recovery_clean report)

let () =
  Alcotest.run "storage"
    [
      ( "crc32",
        [
          tc "known vectors" test_crc_known_vectors;
          tc "slices" test_crc_sub;
          prop_crc_detects_flip;
        ] );
      ( "codec",
        [
          tc "primitives" test_codec_primitives;
          tc "truncation" test_codec_truncation;
          tc "trailing bytes" test_codec_trailing;
          tc "bad tags" test_codec_bad_tags;
          prop_codec_varint;
          prop_codec_string;
          prop_codec_float;
        ] );
      ( "btree",
        [
          tc "basic" test_btree_basic;
          tc "ordered iteration" test_btree_ordered_iteration;
          tc "large sequential" test_btree_large_sequential;
          tc "range scans" test_btree_range;
          prop_btree_vs_map;
          prop_btree_fold;
        ] );
      ( "journal",
        [
          tc "roundtrip" test_journal_roundtrip;
          tc "missing file" test_journal_missing_file;
          tc "torn tail recovery" test_journal_torn_tail;
          tc "corrupt payload" test_journal_corrupt_payload;
          tc "truncate" test_journal_truncate;
        ] );
      ( "transaction groups",
        [
          tc "roundtrip" test_group_roundtrip;
          tc "uncommitted group invisible" test_group_without_commit_invisible;
          tc "torn commit marker" test_group_torn_commit_marker;
          tc "nested begin" test_nested_begin_drops_open_group;
          tc "store group recovery" test_store_group_recovery;
          tc "store drops uncommitted group" test_store_uncommitted_group_dropped;
        ] );
      ( "snapshot",
        [ tc "roundtrip" test_snapshot_roundtrip; tc "corrupt" test_snapshot_corrupt ] );
      ( "store",
        [
          tc "lifecycle" test_store_lifecycle;
          tc "closed store" test_store_append_after_close_fails;
          tc "sync policies" test_store_sync_policies;
          tc "unsynced loss under `None" test_store_unsynced_none_policy_lost_on_abandon;
        ] );
      ( "epochs",
        [
          tc "frames tagged" test_journal_epoch_tagging;
          tc "stale journal skipped" test_stale_journal_skipped;
          tc "journal ahead refused" test_journal_ahead_of_snapshot_refused;
          tc "torn tail truncated on open" test_torn_tail_truncated_on_open;
        ] );
      ( "fault injection",
        [
          tc "fsync failure on append" test_fsync_failure_on_append;
          tc "rename failure in snapshot write" test_rename_failure_during_snapshot_write;
          tc "enospc mid-frame" test_enospc_mid_journal_frame;
          tc "crash during tmp write" test_crash_during_snapshot_tmp_write;
        ] );
      ( "fsck",
        [
          tc "healthy" test_fsck_healthy;
          tc "torn tail" test_fsck_torn_tail;
          tc "corrupt snapshot with fallback" test_fsck_corrupt_snapshot_with_fallback;
          tc "corrupt snapshot without fallback" test_fsck_corrupt_snapshot_no_fallback;
          tc "leftover tmp and fallback" test_fsck_leftover_tmp_and_fallback;
          tc "dangling transaction" test_fsck_dangling_txn;
        ] );
      ( "self-healing",
        [
          tc "mid-journal corruption quarantined"
            test_mid_journal_corruption_quarantined;
          tc "fsck excises quarantined region"
            test_fsck_excises_quarantined_region;
          tc "generation rotation on compact" test_generation_rotation_on_compact;
          tc "generation fallback on open" test_generation_fallback_on_open;
          tc "fsck promotes generation" test_fsck_promotes_generation;
          tc "transient reads absorbed" test_transient_reads_absorbed;
          tc "flip read double-checked" test_flip_read_double_checked;
          tc "short read double-checked" test_short_read_double_checked;
          tc "eio read is permanent" test_eio_read_is_permanent;
          tc "lying fsync keeps schedule" test_lie_fsync_keeps_schedule;
          tc "salvage sweep" test_salvage_sweep;
        ] );
      ( "partitions",
        [
          tc "merged replay order" test_partitioned_merge_order;
          tc "probe grows, never shrinks" test_partition_probe_growth;
          tc "compaction across partitions" test_partitioned_compaction;
          tc "write stats" test_partitioned_write_stats;
          tc "concurrent writers" test_partitioned_concurrent_writers;
          tc "crash sweep over two partitions" test_partitioned_crash_sweep;
          tc "partition-local fsck damage" test_fsck_partition_local_damage;
        ] );
    ]
