(* Query combinators (the complex-retrieval extension) and their
   interaction with generalization, undefined values, and patterns. *)

open Seed_schema
open Helpers
module DB = Seed_core.Database
module Q = Seed_core.Query
module View = Seed_core.View
module Item = Seed_core.Item

let setup () =
  let db = fresh_db () in
  let mk name cls = ok (DB.create_object db ~cls ~name ()) in
  let alarms = mk "Alarms" "OutputData" in
  let events = mk "Events" "InputData" in
  let config = mk "Config" "Data" in
  let sensor = mk "Sensor" "Action" in
  let handler = mk "AlarmHandler" "Action" in
  let misc = mk "Misc" "Thing" in
  let w = ok (DB.create_relationship db ~assoc:"Write" ~endpoints:[ alarms; sensor ] ()) in
  let r = ok (DB.create_relationship db ~assoc:"Read" ~endpoints:[ events; handler ] ()) in
  let a = ok (DB.create_relationship db ~assoc:"Access" ~endpoints:[ config; handler ] ()) in
  ignore (w, r, a);
  (db, alarms, events, config, sensor, handler, misc)

let names v items = List.filter_map (View.full_name v) items

let test_in_class_vs_is_a () =
  let db, _, _, _, _, _, _ = setup () in
  let v = DB.view db in
  Alcotest.(check (list string)) "exact Data" [ "Config" ]
    (names v (Q.select v (Q.in_class "Data")));
  Alcotest.(check (list string)) "is_a Data" [ "Alarms"; "Config"; "Events" ]
    (names v (Q.select v (Q.is_a "Data")));
  Alcotest.(check int) "is_a Thing = all" 6 (Q.count v (Q.is_a "Thing"))

let test_name_predicates () =
  let db, _, _, _, _, _, _ = setup () in
  let v = DB.view db in
  Alcotest.(check (list string)) "name_is" [ "Alarms" ]
    (names v (Q.select v (Q.name_is "Alarms")));
  let starts_with_a s = String.length s > 0 && s.[0] = 'A' in
  Alcotest.(check (list string)) "prefix" [ "AlarmHandler"; "Alarms" ]
    (names v (Q.select v (Q.name_matches starts_with_a)))

let test_related () =
  let db, _, _, _, sensor, handler, _ = setup () in
  let v = DB.view db in
  (* who accesses anything, generalization-aware *)
  Alcotest.(check (list string)) "writers" [ "Alarms"; "Sensor" ]
    (names v (Q.select v (Q.related ~assoc:"Write")));
  (* Access covers Read, Write and itself: Alarms, Sensor, Events,
     AlarmHandler, Config take part; Misc does not *)
  Alcotest.(check int) "access participants" 5
    (Q.count v (Q.related ~assoc:"Access"));
  Alcotest.(check (list string)) "related to sensor (not sensor itself)"
    [ "Alarms" ]
    (names v (Q.select v (Q.related_to ~assoc:"Access" sensor)));
  Alcotest.(check (list string)) "related to handler via Read" [ "Events" ]
    (names v (Q.select v Q.(related_to ~assoc:"Read" handler &&& is_a "Data")))

let test_combinators () =
  let db, _, _, _, _, _, _ = setup () in
  let v = DB.view db in
  Alcotest.(check (list string)) "and" [ "Events" ]
    (names v (Q.select v Q.(is_a "Data" &&& related ~assoc:"Read")));
  Alcotest.(check (list string)) "or includes both" [ "Alarms"; "Events" ]
    (names v (Q.select v Q.(related ~assoc:"Read" ||| related ~assoc:"Write")
             |> List.filter (Q.test (Q.is_a "Data") v)));
  Alcotest.(check (list string)) "not" [ "Misc" ]
    (names v (Q.select v Q.(not_ (is_a "Data") &&& not_ (is_a "Action"))))

let test_undefined_matches_nothing () =
  (* "when the database is searched for data that meet certain selection
     criteria, an undefined object matches nothing" *)
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"Data" ~name:"D" ()) in
  let desc = ok (DB.create_sub_object db ~parent:d ~role:"Description" ()) in
  let v = DB.view db in
  Alcotest.(check int) "undefined value matches nothing" 0
    (Q.count v (Q.child_value ~role:"Description" (fun _ -> true)));
  check_ok "define" (DB.set_value db desc (Some (Value.String "x")));
  Alcotest.(check int) "defined matches" 1
    (Q.count v (Q.child_value ~role:"Description" (fun _ -> true)))

let test_has_child_and_value () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"Data" ~name:"D" ()) in
  let _ = ok (DB.create_sub_object db ~parent:d ~role:"Keywords" ~value:(Value.String "alarm") ()) in
  let _e = ok (DB.create_object db ~cls:"Data" ~name:"E" ()) in
  let v = DB.view db in
  Alcotest.(check (list string)) "has_child" [ "D" ]
    (names v (Q.select v (Q.has_child ~role:"Keywords")));
  Alcotest.(check (list string)) "child_value" [ "D" ]
    (names v
       (Q.select v
          (Q.child_value ~role:"Keywords" (fun x -> x = Value.String "alarm"))))

let test_is_incomplete_predicate () =
  let db = fresh_db () in
  let _d = ok (DB.create_object db ~cls:"Data" ~name:"D" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let v = DB.view db in
  (* the Action lacks its Access (min 1) *)
  Alcotest.(check bool) "action incomplete" true
    (List.mem "A" (names v (Q.select v Q.is_incomplete)));
  let d2 = ok (DB.create_object db ~cls:"InputData" ~name:"I" ()) in
  let _ = ok (DB.create_relationship db ~assoc:"Read" ~endpoints:[ d2; a ] ()) in
  Alcotest.(check bool) "action complete now" false
    (List.mem "A" (names v (Q.select v Q.is_incomplete)))

let test_select_rels () =
  let db, _, _, _, _, _, _ = setup () in
  let v = DB.view db in
  Alcotest.(check int) "reads" 1 (List.length (Q.select_rels v ~assoc:"Read"));
  Alcotest.(check int) "accesses include specializations" 3
    (List.length (Q.select_rels v ~assoc:"Access"))

let test_neighbors () =
  let db, alarms, _, _, _sensor, _, _ = setup () in
  let v = DB.view db in
  let item id = Option.get (Seed_core.Db_state.find_item (DB.raw db) id) in
  let ns = Q.neighbors v (item alarms) ~assoc:"Access" ~from_pos:0 ~to_pos:1 in
  Alcotest.(check (list string)) "alarms accessed by" [ "Sensor" ] (names v ns)

let test_reachable_containment () =
  let db = fresh_db () in
  let mk n = ok (DB.create_object db ~cls:"Action" ~name:n ()) in
  let root = mk "Root" and a = mk "A" and b = mk "B" and c = mk "C" in
  let edge child parent =
    ignore (ok (DB.create_relationship db ~assoc:"Contained" ~endpoints:[ child; parent ] ()))
  in
  edge a root;
  edge b root;
  edge c a;
  let v = DB.view db in
  let item id = Option.get (Seed_core.Db_state.find_item (DB.raw db) id) in
  (* everything transitively contained in Root: follow container->contained *)
  let inside =
    Q.reachable v (item root) ~assoc:"Contained" ~from_pos:1 ~to_pos:0
  in
  Alcotest.(check (list string)) "subtree" [ "A"; "B"; "C" ]
    (List.sort String.compare (names v inside));
  (* and upward: C's ancestors *)
  let up = Q.reachable v (item c) ~assoc:"Contained" ~from_pos:0 ~to_pos:1 in
  Alcotest.(check (list string)) "ancestors" [ "A"; "Root" ]
    (List.sort String.compare (names v up))

let test_queries_see_inherited_relationships () =
  let db = fresh_db () in
  let common = ok (DB.create_object db ~cls:"Action" ~name:"Common" ()) in
  let po = ok (DB.create_object db ~cls:"Data" ~name:"PO" ~pattern:true ()) in
  let _pr =
    ok
      (DB.create_relationship db ~assoc:"Access" ~endpoints:[ po; common ]
         ~pattern:true ())
  in
  let variant = ok (DB.create_object db ~cls:"Data" ~name:"V" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:po ~inheritor:variant);
  let v = DB.view db in
  Alcotest.(check (list string)) "inherited rel visible to queries" [ "V" ]
    (names v (Q.select v (Q.related_to ~assoc:"Access" common)))

let test_queries_respect_versions () =
  let db = fresh_db () in
  let d = ok (DB.create_object db ~cls:"Thing" ~name:"D" ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.reclassify db d ~to_:"Data");
  let _v2 = ok (DB.create_version db) in
  let old_view = ok (DB.view_at db v1) in
  let now_view = DB.view db in
  Alcotest.(check int) "was a thing" 1 (Q.count old_view (Q.in_class "Thing"));
  Alcotest.(check int) "not yet data" 0 (Q.count old_view (Q.in_class "Data"));
  Alcotest.(check int) "is data now" 1 (Q.count now_view (Q.in_class "Data"))

let () =
  Alcotest.run "query"
    [
      ( "predicates",
        [
          tc "in_class vs is_a" test_in_class_vs_is_a;
          tc "names" test_name_predicates;
          tc "related" test_related;
          tc "combinators" test_combinators;
          tc "undefined matches nothing" test_undefined_matches_nothing;
          tc "children and values" test_has_child_and_value;
          tc "is_incomplete" test_is_incomplete_predicate;
        ] );
      ( "navigation",
        [
          tc "select_rels" test_select_rels;
          tc "neighbors" test_neighbors;
          tc "reachable" test_reachable_containment;
        ] );
      ( "integration",
        [
          tc "inherited relationships" test_queries_see_inherited_relationships;
          tc "version views" test_queries_respect_versions;
        ] );
    ]
