(* Planner/scan equivalence for the query layer.

   The planner in [Query] answers index-recognisable predicates from the
   class extents and the name index. Its one obligation is to return
   exactly what a naive scan over the item table returns — for every
   predicate shape, after any operation sequence, on current and on
   version views. The naive reference below deliberately bypasses both
   the extents and [View.all_objects] (which is itself extent-backed on
   current views), so any drift in extent maintenance shows up as a
   disagreement here. *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module Db_state = Seed_core.Db_state
module View = Seed_core.View
module Item = Seed_core.Item
module Q = Seed_core.Query

(* ------------------------------------------------------------------ *)
(* Symbolic operations                                                  *)
(* ------------------------------------------------------------------ *)

type op =
  | Create of int * string
  | CreatePattern of int
  | CreateRel of int * int * string
  | Reclassify of int * string
  | Delete of int
  | Inherit of int * int
  | Snapshot
  | Branch of int

let classes = [ "Thing"; "Data"; "Action"; "InputData"; "OutputData" ]
let assocs = [ "Access"; "Read"; "Write"; "Contained" ]

let op_gen =
  let open QCheck2.Gen in
  frequency
    [
      (5, map2 (fun i c -> Create (i, c)) (int_bound 40) (oneofl classes));
      (1, map (fun i -> CreatePattern i) (int_bound 40));
      ( 3,
        map3
          (fun a b s -> CreateRel (a, b, s))
          (int_bound 40) (int_bound 40) (oneofl assocs) );
      (3, map2 (fun i c -> Reclassify (i, c)) (int_bound 40) (oneofl classes));
      (2, map (fun i -> Delete i) (int_bound 40));
      (1, map2 (fun p i -> Inherit (p, i)) (int_bound 40) (int_bound 40));
      (1, return Snapshot);
      (1, map (fun i -> Branch i) (int_bound 8));
    ]

let ops_gen = QCheck2.Gen.(list_size (int_range 0 60) op_gen)

type env = {
  db : DB.t;
  mutable objects : Ident.t list;
  mutable patterns : Ident.t list;
  mutable versions : Version_id.t list;
}

let pick xs i =
  match xs with [] -> None | _ -> Some (List.nth xs (i mod List.length xs))

let apply env op =
  let ignore_result (r : (_, Seed_error.t) result) = ignore r in
  match op with
  | Create (i, cls) -> (
    match DB.create_object env.db ~cls ~name:(Printf.sprintf "obj%d" i) () with
    | Ok id -> env.objects <- id :: env.objects
    | Error _ -> ())
  | CreatePattern i -> (
    match
      DB.create_object env.db ~cls:"Data" ~name:(Printf.sprintf "pat%d" i)
        ~pattern:true ()
    with
    | Ok id -> env.patterns <- id :: env.patterns
    | Error _ -> ())
  | CreateRel (a, b, assoc) -> (
    match (pick env.objects a, pick env.objects b) with
    | Some x, Some y ->
      ignore_result (DB.create_relationship env.db ~assoc ~endpoints:[ x; y ] ())
    | _ -> ())
  | Reclassify (i, cls) -> (
    match pick env.objects i with
    | None -> ()
    | Some id -> ignore_result (DB.reclassify env.db id ~to_:cls))
  | Delete i -> (
    match pick env.objects i with
    | None -> ()
    | Some id -> ignore_result (DB.delete env.db id))
  | Inherit (p, i) -> (
    match (pick env.patterns p, pick env.objects i) with
    | Some pattern, Some inheritor ->
      ignore_result (DB.inherit_pattern env.db ~pattern ~inheritor)
    | _ -> ())
  | Snapshot -> (
    match DB.create_version env.db with
    | Ok v -> env.versions <- v :: env.versions
    | Error _ -> ())
  | Branch i -> (
    match pick env.versions i with
    | None -> ()
    | Some v ->
      ignore_result (DB.begin_alternative env.db ~from_:v ~force:true ()))

let run_model ops =
  let env =
    { db = DB.create (fig3_schema ()); objects = []; patterns = []; versions = [] }
  in
  List.iter (apply env) ops;
  env

(* ------------------------------------------------------------------ *)
(* Naive reference evaluation                                           *)
(* ------------------------------------------------------------------ *)

let sorted_ids items =
  List.map (fun (it : Item.t) -> it.Item.id) items |> List.sort Ident.compare

let naive_select v p =
  Db_state.fold_items (View.db v) ~init:[] ~f:(fun acc it ->
      if
        it.Item.body = Item.Independent
        && View.live_normal v it
        && Q.test p v it
      then it.Item.id :: acc
      else acc)
  |> List.sort Ident.compare

let naive_select_rels v ~assoc =
  let schema = View.schema v in
  Db_state.fold_items (View.db v) ~init:[] ~f:(fun acc it ->
      match (it.Item.body, View.rel_state v it) with
      | Item.Relationship, Some rs
        when View.live_normal v it
             && Schema.assoc_is_a schema ~sub:rs.Item.assoc ~super:assoc ->
        it.Item.id :: acc
      | _ -> acc)
  |> List.sort Ident.compare

(* Every predicate shape the planner handles (bounded, intersected,
   unioned) plus shapes that must fall back (negation, opaque, mixed). *)
let predicate_pool =
  List.concat_map (fun c -> [ Q.in_class c; Q.is_a c ]) classes
  @ [
      Q.name_is "obj3";
      Q.name_is "obj17";
      Q.name_is "no-such-object";
      Q.name_is "pat5";
      Q.(in_class "Data" &&& is_a "Thing");
      Q.(is_a "Data" &&& name_is "obj3");
      Q.(in_class "InputData" ||| in_class "OutputData");
      Q.(is_a "Data" ||| is_a "Action");
      Q.(not_ (is_a "Data"));
      Q.(is_a "Thing" &&& not_ (in_class "Data"));
      Q.of_fun (fun v it ->
          match View.full_name v it with
          | Some n -> String.length n mod 2 = 0
          | None -> false);
      Q.(is_a "Data"
        &&& of_fun (fun v it ->
                match View.obj_state v it with
                | Some o -> not o.Item.pattern
                | None -> false));
    ]

let views env =
  let st = DB.raw env.db in
  View.current st :: List.map (View.at st) env.versions

let select_agrees env =
  List.for_all
    (fun v ->
      List.for_all
        (fun p ->
          let planned = sorted_ids (Q.select v p) in
          planned = naive_select v p
          && Q.count v p = List.length planned)
        predicate_pool)
    (views env)

let select_rels_agrees env =
  List.for_all
    (fun v ->
      List.for_all
        (fun assoc ->
          sorted_ids (Q.select_rels v ~assoc) = naive_select_rels v ~assoc)
        ("NoSuchAssoc" :: assocs))
    (views env)

let extents_agree env =
  (* View.all_objects / all_patterns / all_rels on the current view are
     extent-backed; a raw table scan must see the same sets *)
  let st = DB.raw env.db in
  let v = View.current st in
  let scan keep =
    Db_state.fold_items st ~init:[] ~f:(fun acc it ->
        if keep it then it.Item.id :: acc else acc)
    |> List.sort Ident.compare
  in
  sorted_ids (View.all_objects v)
  = scan (fun it -> it.Item.body = Item.Independent && View.live_normal v it)
  && sorted_ids (View.all_patterns v)
     = scan (fun it -> it.Item.body = Item.Independent && View.live_pattern v it)
  && sorted_ids (View.all_rels v)
     = scan (fun it -> it.Item.body = Item.Relationship && View.live_normal v it)

let prop_select =
  qcheck_case ~count:100 "planned select/count = naive scan" ops_gen (fun ops ->
      select_agrees (run_model ops))

let prop_select_rels =
  qcheck_case ~count:100 "planned select_rels = naive scan" ops_gen (fun ops ->
      select_rels_agrees (run_model ops))

let prop_extents =
  qcheck_case ~count:100 "extents = table scan after any op sequence" ops_gen
    (fun ops -> extents_agree (run_model ops))

let prop_all_prefixes =
  qcheck_case ~count:30 "planner agrees at every prefix"
    QCheck2.Gen.(list_size (int_range 0 25) op_gen)
    (fun ops ->
      let env =
        {
          db = DB.create (fig3_schema ());
          objects = [];
          patterns = [];
          versions = [];
        }
      in
      List.for_all
        (fun op ->
          apply env op;
          extents_agree env && select_agrees env && select_rels_agrees env)
        ops)

let () =
  Alcotest.run "query_plan"
    [
      ( "planner equivalence",
        [ prop_select; prop_select_rels; prop_extents; prop_all_prefixes ] );
    ]
