(* Edge cases and failure injection across module boundaries. *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module Persist = Seed_core.Persist
module View = Seed_core.View
module Store = Seed_storage.Store
module Server = Seed_server.Server
module Protocol = Seed_server.Protocol

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seed_robust_%d_%d" (Unix.getpid ()) !counter)

(* --- crash consistency ----------------------------------------------- *)

let test_crash_between_compact_steps () =
  (* Store.compact = write snapshot (at epoch+1), then truncate the
     journal. A crash in between leaves the NEW snapshot plus the OLD
     epoch-0 journal; recovery must detect the epoch mismatch and skip
     the stale journal — its records are already folded into the
     snapshot. *)
  let dir = tmp_dir () in
  let s = ok (Persist.Session.open_ ~dir ~schema:(fig3_schema ()) ()) in
  let db = Persist.Session.db s in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  check_ok "flush1" (Persist.Session.flush s);
  check_ok "reclass" (DB.reclassify db a ~to_:"InputData");
  check_ok "flush2" (Persist.Session.flush s);
  (* simulate the crash: write the epoch-1 snapshot but keep the journal *)
  let snapshot = Persist.encode_db db in
  check_ok "snapshot written"
    (Seed_storage.Snapshot_file.write
       (Filename.concat dir "snapshot.bin") ~epoch:1 snapshot);
  Persist.Session.close s;
  let s2 = ok (Persist.Session.open_ ~dir ()) in
  let db2 = Persist.Session.db s2 in
  Alcotest.(check bool) "stale journal flagged" true
    (Persist.Session.recovery s2).Store.stale_journal;
  Alcotest.(check (option string)) "state matches snapshot" (Some "InputData")
    (DB.class_of db2 (Option.get (DB.find_object db2 "A")));
  Alcotest.(check int) "one object" 1 (DB.object_count db2);
  Persist.Session.close s2

module Faulty = Seed_storage.Faulty_io

let test_crash_point_sweep () =
  (* Inject an abort at every gated I/O step of a full
     append -> sync -> compact -> append lifecycle and prove that
     recovery always yields a database consistent with what had been
     acknowledged at the moment of the crash. *)
  let records = [ "a1"; "a2"; "a3" ] and tail = [ "b1"; "b2" ] in
  let all = records @ tail in
  (* run the workload, recording acknowledged records in [acked] as we
     go (so the list survives a mid-run crash exception) *)
  let run io dir acked =
    let ack r = acked := !acked @ [ r ] in
    let store, _, _, _ = ok (Store.open_dir ~io ~sync:`Always_fsync dir) in
    List.iter (fun r -> ok (Store.append store r); ack r) records;
    ok (Store.sync store);
    ok (Store.compact store ~snapshot:(String.concat "\n" !acked));
    List.iter (fun r -> ok (Store.append store r); ack r) tail;
    Store.close store
  in
  let recovered dir =
    let store, snap, records, report = ok (Store.open_dir dir) in
    Store.close store;
    let from_snap =
      match snap with
      | None -> []
      | Some s -> List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
    in
    (from_snap @ records, report)
  in
  let rec is_prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
    | _ :: _, [] -> false
  in
  (* dry run to count the gated I/O steps *)
  let probe = Faulty.create () in
  let full = ref [] in
  run (Faulty.io probe) (tmp_dir ()) full;
  Alcotest.(check (list string)) "dry run completes" all !full;
  let total = Faulty.steps probe in
  Alcotest.(check bool)
    (Printf.sprintf "sweep covers >= 15 crash points (got %d)" total)
    true (total >= 15);
  let stale_seen = ref 0 in
  for n = 0 to total - 1 do
    let dir = tmp_dir () in
    let f = Faulty.create ~crash_at:n ~torn:(n mod 2 = 0) () in
    let acked = ref [] in
    (try
       run (Faulty.io f) dir acked;
       Alcotest.fail (Printf.sprintf "crash point %d did not fire" n)
     with Faulty.Crash _ -> ());
    let state, report = recovered dir in
    if report.Store.stale_journal then incr stale_seen;
    (* with `Always_fsync every acknowledged record is durable, so the
       recovered state must extend [acked]; it may additionally contain
       the single record whose append was in flight when the crash hit;
       and it can never contain anything the workload did not write *)
    Alcotest.(check bool)
      (Printf.sprintf "crash %d: nothing acknowledged lost (%s vs %s)" n
         (String.concat "," !acked) (String.concat "," state))
      true (is_prefix !acked state);
    Alcotest.(check bool)
      (Printf.sprintf "crash %d: recovered [%s] is a workload prefix" n
         (String.concat "," state))
      true (is_prefix state all);
    Alcotest.(check bool)
      (Printf.sprintf "crash %d: at most one in-flight record" n)
      true (List.length state <= List.length !acked + 1);
    (* recovery is convergent: a second open is clean and identical *)
    let state2, report2 = recovered dir in
    Alcotest.(check (list string))
      (Printf.sprintf "crash %d: stable" n) state state2;
    Alcotest.(check bool)
      (Printf.sprintf "crash %d: second open clean" n)
      true (Store.recovery_clean report2)
  done;
  Alcotest.(check bool) "epoch-skip path exercised" true (!stale_seen >= 1)

let test_flush_atomicity_crash_sweep () =
  (* The transaction-frame contract: a multi-item [Session.flush] goes
     into the journal as one group, so a crash at ANY I/O point leaves
     either the whole transaction or none of it. Sweep a crash over
     every gated I/O step of a two-flush workload and classify the
     recovered database — a partially applied transaction (some of the
     new items but not all) is the bug this machinery exists to
     prevent. *)
  let run io dir acked =
    let s =
      ok
        (Persist.Session.open_ ~dir ~schema:(fig3_schema ()) ~io
           ~sync:`Always_fsync ())
    in
    let db = Persist.Session.db s in
    let base = ok (DB.create_object db ~cls:"Data" ~name:"Base" ()) in
    ok (Persist.Session.flush s);
    acked := `Base;
    (* the multi-item transaction under test: two objects, a
       relationship, a valued sub-object and a rename — five dirty
       items plus metadata, flushed as one journal group *)
    ok
      (DB.with_transaction db (fun () ->
           let open Seed_util.Seed_error in
           let* d = DB.create_object db ~cls:"InputData" ~name:"D" () in
           let* a = DB.create_object db ~cls:"Action" ~name:"A" () in
           let* _ =
             DB.create_relationship db ~assoc:"Read" ~endpoints:[ d; a ] ()
           in
           let* _ =
             DB.create_sub_object db ~parent:d ~role:"Description"
               ~value:(Value.String "atomic") ()
           in
           DB.rename_object db base "Root"));
    ok (Persist.Session.flush s);
    acked := `Full;
    Persist.Session.close s
  in
  let rank = function `Empty -> 0 | `Base -> 1 | `Full -> 2 | `Partial -> -1 in
  let classify db =
    let has n = DB.find_object db n <> None in
    match (has "Base", has "D", has "A", has "Root") with
    | false, false, false, false -> `Empty
    | true, false, false, false -> `Base
    | false, true, true, true ->
      let d = Option.get (DB.find_object db "D") in
      let rel_ok = DB.relationships db d <> [] in
      let sub_ok =
        match DB.resolve db "D.Description" with
        | Some id -> DB.get_value db id = Some (Value.String "atomic")
        | None -> false
      in
      if rel_ok && sub_ok then `Full else `Partial
    | _ -> `Partial
  in
  let recovered dir =
    let s = ok (Persist.Session.open_ ~dir ~schema:(fig3_schema ()) ()) in
    let db = Persist.Session.db s in
    let c = classify db in
    check_ok "recovered state consistent"
      (Seed_core.Consistency.check_database (View.current (DB.raw db)));
    Persist.Session.close s;
    c
  in
  (* dry run to count the I/O steps and fix the expected end state *)
  let probe = Faulty.create () in
  let final = ref `Empty in
  run (Faulty.io probe) (tmp_dir ()) final;
  Alcotest.(check bool) "dry run commits" true (!final = `Full);
  let total = Faulty.steps probe in
  Alcotest.(check bool)
    (Printf.sprintf "sweep covers >= 6 crash points (got %d)" total)
    true (total >= 6);
  for n = 0 to total - 1 do
    let dir = tmp_dir () in
    let f = Faulty.create ~crash_at:n ~torn:(n mod 2 = 0) () in
    let acked = ref `Empty in
    (try
       run (Faulty.io f) dir acked;
       Alcotest.fail (Printf.sprintf "crash point %d did not fire" n)
     with Faulty.Crash _ -> ());
    let c = recovered dir in
    if rank c < 0 then
      Alcotest.failf "crash %d: partially applied transaction visible" n;
    if rank c < rank !acked then
      Alcotest.failf "crash %d: acknowledged state lost" n;
    (* recovery is convergent: the second open is identical *)
    Alcotest.(check bool)
      (Printf.sprintf "crash %d: stable" n)
      true
      (recovered dir = c)
  done

let test_stale_journal_records_last_wins () =
  (* many updates to the same item produce many journal records; the
     last one must win on replay *)
  let dir = tmp_dir () in
  let s = ok (Persist.Session.open_ ~dir ~schema:(fig3_schema ()) ()) in
  let db = Persist.Session.db s in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let d = ok (DB.create_sub_object db ~parent:a ~role:"Description" ()) in
  for i = 1 to 10 do
    check_ok "set" (DB.set_value db d (Some (Value.String (string_of_int i))));
    check_ok "flush" (Persist.Session.flush s)
  done;
  Persist.Session.close s;
  let s2 = ok (Persist.Session.open_ ~dir ()) in
  let db2 = Persist.Session.db s2 in
  Alcotest.(check bool) "last wins" true
    (DB.get_value db2 d = Some (Value.String "10"));
  Persist.Session.close s2

let test_load_verification_catches_tampering () =
  let dir = tmp_dir () in
  let db = fresh_db () in
  (* a relationship whose endpoint class we will corrupt *)
  let d = ok (DB.create_object db ~cls:"InputData" ~name:"D" ()) in
  let a = ok (DB.create_object db ~cls:"Action" ~name:"A" ()) in
  let _ = ok (DB.create_relationship db ~assoc:"Read" ~endpoints:[ d; a ] ()) in
  (* break the invariant behind the API's back, then save *)
  let item = Option.get (Seed_core.Db_state.find_item (DB.raw db) d) in
  (match item.Seed_core.Item.current with
  | Some (Seed_core.Item.Obj o) ->
    Seed_core.Db_state.unsafe_put_item (DB.raw db)
      (Seed_core.Item.with_current item
         (Some (Seed_core.Item.Obj { o with Seed_core.Item.cls = "Action" })))
  | _ -> ());
  check_ok "save" (Persist.save db ~dir);
  check_err "verification refuses" is_membership (Persist.load ~dir ());
  (* but a forced load works for forensics *)
  check_ok "unverified load"
    (Result.map (fun _ -> ()) (Persist.load ~verify:false ~dir ()))

(* --- deep version trees ---------------------------------------------- *)

let test_deep_branch_tree () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Thing" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  check_ok "trunk grows" (DB.rename_object db a "Trunk");
  let _v2 = ok (DB.create_version db) in
  (* a chain of 9 nested branches hanging off the historical 1.0 *)
  let v = ref v1 in
  for i = 1 to 9 do
    ok (DB.begin_alternative db ~from_:!v ());
    check_ok "touch" (DB.rename_object db a (Printf.sprintf "A%d" i));
    v := ok (DB.create_version db)
  done;
  Alcotest.(check string) "deep label" "1.1.1.1.1.1.1.1.1.1"
    (Version_id.to_string !v);
  (* every level resolves its own name *)
  ok (DB.select_version db (Some !v));
  Alcotest.(check bool) "leaf view" true (DB.find_object db "A9" = Some a);
  ok (DB.select_version db (Some v1));
  Alcotest.(check bool) "root view" true (DB.find_object db "A" = Some a);
  ok (DB.select_version db None);
  (* the tree survives persistence *)
  let db2 = ok (Persist.decode_db (Persist.encode_db db)) in
  Alcotest.(check int) "versions survive" 11 (List.length (DB.versions db2))

let test_many_siblings () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Thing" ~name:"A" ()) in
  let base = ok (DB.create_version db) in
  check_ok "trunk grows" (DB.rename_object db a "Trunk");
  let _v2 = ok (DB.create_version db) in
  (* 1.0 is now historical: deriving from it opens sibling branches *)
  for i = 1 to 9 do
    ok (DB.begin_alternative db ~from_:base ~force:true ());
    check_ok "touch" (DB.rename_object db a (Printf.sprintf "A%d" i));
    let v = ok (DB.create_version db) in
    Alcotest.(check string) "sibling label" (Printf.sprintf "1.%d" i)
      (Version_id.to_string v)
  done;
  (* continuing from the latest trunk version extends the trunk *)
  ok (DB.begin_alternative db ~from_:(Version_id.trunk 2) ~force:true ());
  check_ok "touch" (DB.rename_object db a "T3");
  let v3 = ok (DB.create_version db) in
  Alcotest.(check string) "trunk continues" "3.0" (Version_id.to_string v3)

(* --- pattern name resolution ------------------------------------------ *)

let test_resolve_into_patterns () =
  let db = fresh_db () in
  let po = ok (DB.create_object db ~cls:"Data" ~name:"Template" ~pattern:true ()) in
  let _ =
    ok
      (DB.create_sub_object db ~parent:po ~role:"Description"
         ~value:(Value.String "std") ())
  in
  (* the pattern's own composed name resolves (tools need to edit it) *)
  Alcotest.(check bool) "pattern sub resolvable" true
    (DB.resolve db "Template.Description" <> None);
  (* but plain object retrieval does not see it *)
  Alcotest.(check (option Alcotest.reject)) "find_object blind" None
    (DB.find_object db "Template")

let test_pattern_rename_propagates_to_inherited_names () =
  let db = fresh_db () in
  let po = ok (DB.create_object db ~cls:"Data" ~name:"Template" ~pattern:true ()) in
  let sub = ok (DB.create_sub_object db ~parent:po ~role:"Description" ~value:(Value.String "s") ()) in
  let inh = ok (DB.create_object db ~cls:"Data" ~name:"Real" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:po ~inheritor:inh);
  let v = DB.view db in
  let item = Option.get (Seed_core.Db_state.find_item (DB.raw db) inh) in
  let kid = Option.get (View.child_v v (View.vitem_real item) ~role:"Description" ()) in
  Alcotest.(check (option string)) "inherited name" (Some "Real.Description")
    (View.vitem_name v kid);
  (* renaming the inheritor renames the view *)
  check_ok "rename" (DB.rename_object db inh "Realer");
  Alcotest.(check (option string)) "follows rename" (Some "Realer.Description")
    (View.vitem_name v kid);
  ignore sub

(* --- server batches ---------------------------------------------------- *)

let test_batch_creates_and_uses_fresh_objects () =
  let s = Server.create (fig3_schema ()) in
  check_ok "empty checkout ok" (Server.checkout s ~client:"alice" ~names:[]);
  check_ok "whole cluster in one batch"
    (Server.checkin s ~client:"alice"
       [
         Protocol.Create_object { cls = "InputData"; name = "D"; pattern = false };
         Protocol.Create_object { cls = "Action"; name = "A"; pattern = false };
         Protocol.Create_rel
           { assoc = "Read"; endpoints = [ "D"; "A" ]; pattern = false };
         Protocol.Create_sub
           { owner = "D"; role = "Description"; index = None;
             value = Some (Value.String "fresh") };
       ]);
  let db = Server.database s in
  Alcotest.(check int) "two objects" 2 (DB.object_count db);
  Alcotest.(check bool) "sub exists" true (DB.resolve db "D.Description" <> None)

let test_batch_rename_then_reference () =
  let s = Server.create (fig3_schema ()) in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"InputData" ~name:"Old" ()) in
  check_ok "checkout" (Server.checkout s ~client:"alice" ~names:[ "Old" ]);
  check_ok "rename then use new name"
    (Server.checkin s ~client:"alice"
       [
         Protocol.Rename { name = "Old"; new_name = "New" };
         Protocol.Create_sub
           { owner = "New"; role = "Description"; index = None;
             value = Some (Value.String "renamed") };
       ]);
  Alcotest.(check bool) "applied" true (DB.resolve db "New.Description" <> None)

let test_server_rollback_preserves_procedures () =
  let schema =
    Schema.of_defs_exn
      [ Class_def.v ~procedures:[ "p" ] [ "Doc" ] ]
      []
  in
  let s = Server.create schema in
  let hits = ref 0 in
  Seed_core.Database.register_procedure (Server.database s) "p" (fun _ _ ->
      incr hits;
      Ok ());
  check_ok "checkout none" (Server.checkout s ~client:"a" ~names:[]);
  (* second op fails (duplicate), rolling the database back *)
  check_err "fails" is_duplicate
    (Server.checkin s ~client:"a"
       [
         Protocol.Create_object { cls = "Doc"; name = "X"; pattern = false };
         Protocol.Create_object { cls = "Doc"; name = "X"; pattern = false };
       ]);
  (* procedures survived the snapshot/restore *)
  check_ok "retry"
    (Server.checkin s ~client:"a"
       [ Protocol.Create_object { cls = "Doc"; name = "X"; pattern = false } ]);
  Alcotest.(check bool) "procedure still registered" true (!hits >= 2)

(* --- attached-procedure reentrancy -------------------------------------- *)

let reentrant_schema () =
  Schema.of_defs_exn
    [
      Class_def.v ~procedures:[ "derive" ] [ "Doc" ];
      Class_def.v ~card:Cardinality.opt ~content:Value_type.Int
        [ "Doc"; "Pages" ];
      Class_def.v ~card:Cardinality.opt ~content:Value_type.String
        [ "Doc"; "SizeClass" ];
    ]
    []

let test_procedure_performs_derived_update () =
  (* the paper's "complex integrity constraints": a procedure keeps a
     derived attribute in sync with a stored one *)
  let db = DB.create (reentrant_schema ()) in
  DB.register_procedure db "derive" (fun st e ->
      let ddb = Seed_core.Database.of_raw st in
      match e with
      | Seed_core.Event.Value_updated { id; _ } -> (
        match DB.get_value ddb id with
        | Some (Value.Int n) -> (
          (* only react to Pages updates *)
          match DB.full_name ddb id with
          | Some name when Filename.check_suffix name ".Pages" |> not -> Ok ()
          | _ ->
            let doc =
              match Seed_core.Db_state.find_item st id with
              | Some { Seed_core.Item.body = Seed_core.Item.Dependent { parent; _ }; _ } ->
                parent
              | _ -> id
            in
            let label = if n > 100 then "long" else "short" in
            let set target =
              DB.set_value ddb target (Some (Value.String label))
            in
            (match DB.resolve ddb (Option.get (DB.full_name ddb doc) ^ ".SizeClass") with
            | Some sc -> set sc
            | None ->
              Result.map (fun _ -> ())
                (DB.create_sub_object ddb ~parent:doc ~role:"SizeClass"
                   ~value:(Value.String label) ())))
        | _ -> Ok ())
      | _ -> Ok ());
  let doc = ok (DB.create_object db ~cls:"Doc" ~name:"Spec" ()) in
  let pages = ok (DB.create_sub_object db ~parent:doc ~role:"Pages" ()) in
  check_ok "set pages" (DB.set_value db pages (Some (Value.Int 250)));
  Alcotest.(check bool) "derived" true
    (match DB.resolve db "Spec.SizeClass" with
    | Some sc -> DB.get_value db sc = Some (Value.String "long")
    | None -> false);
  check_ok "shrink" (DB.set_value db pages (Some (Value.Int 10)));
  Alcotest.(check bool) "re-derived" true
    (match DB.resolve db "Spec.SizeClass" with
    | Some sc -> DB.get_value db sc = Some (Value.String "short")
    | None -> false)

let test_procedure_recursion_guard () =
  (* a procedure that re-triggers itself forever is cut off by the
     nesting guard and the whole update rolls back *)
  let db = DB.create (reentrant_schema ()) in
  let n = ref 0 in
  DB.register_procedure db "derive" (fun st _ ->
      incr n;
      let ddb = Seed_core.Database.of_raw st in
      Result.map
        (fun _ -> ())
        (DB.create_object ddb ~cls:"Doc" ~name:(Printf.sprintf "spawn%d" !n) ()))
  ;
  check_err "cut off"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (DB.create_object db ~cls:"Doc" ~name:"Doc0" ());
  Alcotest.(check bool) "bounded" true (!n <= 32)

(* --- miscellaneous ------------------------------------------------------ *)

let test_uninherit_then_delete_pattern_subtree () =
  let db = fresh_db () in
  let po = ok (DB.create_object db ~cls:"Data" ~name:"P" ~pattern:true ()) in
  let _ = ok (DB.create_sub_object db ~parent:po ~role:"Description" ~value:(Value.String "x") ()) in
  let o = ok (DB.create_object db ~cls:"Data" ~name:"O" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:po ~inheritor:o);
  check_ok "uninherit" (DB.uninherit_pattern db ~pattern:po ~inheritor:o);
  check_ok "delete pattern" (DB.delete db po);
  (* the former inheritor is unaffected and consistent *)
  Alcotest.(check bool) "object intact" true (DB.exists db o);
  check_ok "sweep"
    (Seed_core.Consistency.check_database (View.current (DB.raw db)))

let test_delete_inheritor_keeps_pattern () =
  let db = fresh_db () in
  let po = ok (DB.create_object db ~cls:"Data" ~name:"P" ~pattern:true ()) in
  let o = ok (DB.create_object db ~cls:"Data" ~name:"O" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:po ~inheritor:o);
  check_ok "delete inheritor" (DB.delete db o);
  Alcotest.(check (list Alcotest.reject)) "no inheritors left" []
    (DB.inheritors db po);
  (* pattern is now deletable *)
  check_ok "delete pattern" (DB.delete db po)

let test_reuse_name_after_delete_in_new_version () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"X" ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.delete db a);
  let b = ok (DB.create_object db ~cls:"Action" ~name:"X" ()) in
  let _v2 = ok (DB.create_version db) in
  (* both versions resolve "X" to the item that was live then *)
  ok (DB.select_version db (Some v1));
  Alcotest.(check bool) "v1 X is data" true (DB.find_object db "X" = Some a);
  ok (DB.select_version db None);
  Alcotest.(check bool) "current X is action" true (DB.find_object db "X" = Some b)

let () =
  Alcotest.run "robustness"
    [
      ( "crash consistency",
        [
          tc "compact interrupted" test_crash_between_compact_steps;
          tc "crash-point sweep" test_crash_point_sweep;
          tc "flush atomicity sweep" test_flush_atomicity_crash_sweep;
          tc "last record wins" test_stale_journal_records_last_wins;
          tc "verification on load" test_load_verification_catches_tampering;
        ] );
      ( "version trees",
        [
          tc "deep branches" test_deep_branch_tree;
          tc "many siblings" test_many_siblings;
          tc "name reuse across versions" test_reuse_name_after_delete_in_new_version;
        ] );
      ( "patterns",
        [
          tc "resolution into patterns" test_resolve_into_patterns;
          tc "renames propagate" test_pattern_rename_propagates_to_inherited_names;
          tc "uninherit then delete" test_uninherit_then_delete_pattern_subtree;
          tc "delete inheritor" test_delete_inheritor_keeps_pattern;
        ] );
      ( "procedure reentrancy",
        [
          tc "derived updates" test_procedure_performs_derived_update;
          tc "recursion guard" test_procedure_recursion_guard;
        ] );
      ( "server batches",
        [
          tc "fresh objects in one batch" test_batch_creates_and_uses_fresh_objects;
          tc "rename then reference" test_batch_rename_then_reference;
          tc "rollback keeps procedures" test_server_rollback_preserves_procedures;
        ] );
    ]
