(* Network chaos soak.

   Drives the transport-agnostic server core ([Net_server.on_frame])
   over a durable store with a population of simulated clients whose
   frames pass, in both directions, through seeded [Faulty_transport]
   injectors: frames are dropped, duplicated, bit-flipped, truncated
   and delayed; connections drop; clients die holding locks; the
   virtual clock jumps past lease expiry mid-conversation. Everything
   derives from [--seed], so a failure replays bit-for-bit.

   Each client follows the real protocol discipline: a request keeps
   its id across retransmits, reconnects resume the session, and a
   check-in whose session expired mid-flight is never blindly replayed
   — the client re-verifies by name, exactly as the lease contract
   demands. The invariants checked every iteration:

   - no schedule crashes or wedges the server: every request reaches a
     definitive response in a bounded number of attempts;
   - exactly-once check-in: the server's applied-check-in counter
     equals the clients' confirmed count — no lost wire schedule can
     double-apply a replayed batch or lose an acknowledged one;
   - confirmed objects stay visible: a [Find] for any acknowledged
     creation succeeds, and [Select_isa Thing] lists them all;
   - no lease outlives its TTL: once a dead client's window lapses,
     the reaper has freed every lock it held; after the final sweep the
     session table and lock table are empty;
   - the store survives: flush, fsck healthy, reopen, fingerprint
     identical, consistency sweep clean. *)

open Seed_util
module DB = Seed_core.Database
module Db_state = Seed_core.Db_state
module View = Seed_core.View
module Item = Seed_core.Item
module Persist = Seed_core.Persist
module Store = Seed_storage.Store
module Server = Seed_server.Server
module Protocol = Seed_server.Protocol
module NS = Seed_net.Net_server
module Wire = Seed_net.Wire
module Frame = Seed_net.Frame
module FT = Seed_net.Faulty_transport

let schema () = Spades_tool.Spec_model.schema

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seed_chaos_net_%d_%d" (Unix.getpid ()) !counter)

exception Chaos_failure of string

let failf fmt = Printf.ksprintf (fun m -> raise (Chaos_failure m)) fmt

(* ------------------------------------------------------------------ *)
(* Simulated clients                                                    *)
(* ------------------------------------------------------------------ *)

type client = {
  name : string;
  c2s : FT.t;  (* faults on the client -> server direction *)
  s2c : FT.t;  (* faults on the server -> client direction *)
  mutable conn : NS.Conn.t option;
  mutable authed : bool;  (* the current connection has said hello *)
  mutable session : (int64 * int64) option;  (* id, resume token *)
  mutable next_id : int64;  (* never reused, even across sessions *)
  mutable objects : string list;  (* names with a confirmed create *)
  mutable nobj : int;
  mutable holds_shared : bool;
  mutable dead : bool;
}

type env = {
  core : NS.t;
  srv : Server.t;
  clock : float ref;
  ttl : float;
  mutable deaths : (string * float) list;  (* client, lease deadline *)
}

let resp_name = function
  | Wire.Welcome _ -> "welcome"
  | Wire.Done -> "done"
  | Wire.Found _ -> "found"
  | Wire.Names _ -> "names"
  | Wire.Stats_reply _ -> "stats"
  | Wire.Pong -> "pong"
  | Wire.Busy _ -> "busy"
  | Wire.Draining -> "draining"
  | Wire.Err w -> Printf.sprintf "err(%s)" w.Wire.message

let fresh_id cl =
  cl.next_id <- Int64.add cl.next_id 1L;
  cl.next_id

let req id body = Frame.encode (Wire.encode_request { Wire.req_id = id; body })

let drop_conn env cl =
  (match cl.conn with Some c -> NS.close_conn env.core c | None -> ());
  cl.conn <- None;
  cl.authed <- false;
  (* frames delayed inside a dead connection die with it, as on TCP *)
  FT.cut cl.c2s;
  FT.cut cl.s2c

(* One encoded frame through the injectors to the core and back.
   [clean = true] bypasses the injectors (the bounded escape hatch that
   guarantees every exchange terminates) but first flushes any frames
   the injectors were holding, so a delayed copy can never jump a
   session boundary. *)
let deliver env cl ~clean frame =
  let conn = match cl.conn with Some c -> c | None -> assert false in
  let inbound =
    if clean then FT.flush cl.c2s @ [ frame ] else FT.apply cl.c2s frame
  in
  let outbound = ref (if clean then FT.flush cl.s2c else []) in
  let closed = ref false in
  List.iter
    (fun f ->
      if not !closed then
        match NS.on_frame env.core conn f with
        | NS.Reply r ->
          outbound := !outbound @ (if clean then [ r ] else FT.apply cl.s2c r)
        | NS.Reply_close r ->
          outbound := !outbound @ (if clean then [ r ] else FT.apply cl.s2c r);
          closed := true
        | NS.Close -> closed := true)
    inbound;
  if !closed then drop_conn env cl;
  List.filter_map
    (fun f ->
      match Frame.decode f with
      | Error _ -> None  (* a corrupted reply is a lost reply *)
      | Ok p -> (
        match Wire.decode_response p with Ok r -> Some r | Error _ -> None))
    !outbound

(* Make sure [cl] has a connection whose hello has been answered.
   Returns [`Ready] if the previous session survived (or there was
   none in flight), [`Reset] if it expired and a fresh one had to be
   established — the caller's replay safety is gone in that case. *)
let ensure_session env cl ~clean0 =
  let reset = ref false in
  let rec go attempt =
    if attempt > 40 then
      failf "client %s: could not establish a session in 40 attempts" cl.name;
    if cl.authed && cl.conn <> None then ()
    else begin
      if cl.conn = None then cl.conn <- Some (NS.open_conn env.core);
      let clean = clean0 || attempt > 8 in
      let id = fresh_id cl in
      let resps =
        deliver env cl ~clean
          (req id
             (Wire.Hello
                {
                  protocol = Frame.version;
                  client = cl.name;
                  resume = cl.session;
                }))
      in
      match List.find_opt (fun r -> Int64.equal r.Wire.rsp_id id) resps with
      | Some { Wire.rbody = Wire.Welcome { session; token; _ }; _ } ->
        cl.session <- Some (session, token);
        cl.authed <- true
      | Some { Wire.rbody = Wire.Err { code = Wire.Session_expired; _ }; _ } ->
        cl.session <- None;
        cl.holds_shared <- false;
        reset := true;
        go (attempt + 1)
      | Some { Wire.rbody = Wire.Err { code = Wire.Already_connected; _ }; _ }
        ->
        (* the Welcome for an earlier hello was lost on the wire: the
           server holds a session we have no token for. Nothing to do
           but let its lease run out. *)
        env.clock := !(env.clock) +. env.ttl +. 0.01;
        ignore (NS.reap env.core);
        reset := true;
        go (attempt + 1)
      | Some { Wire.rbody = Wire.Err w; _ } ->
        failf "client %s: hello refused: %s" cl.name w.Wire.message
      | Some _ -> failf "client %s: unexpected hello response" cl.name
      | None -> go (attempt + 1)
    end
  in
  go 1;
  if !reset then `Reset else `Ready

(* One request to a definitive response, retransmitting the same id
   across reconnects and resumes. Returns [None] when the session
   expired after the request may already have been delivered — the one
   case where replaying would risk a double apply, so the caller must
   re-verify instead. *)
let rpc env cl body =
  let id = fresh_id cl in
  let frame = req id body in
  let sent = ref false in
  let rec go attempt =
    if attempt > 40 then
      failf "client %s: no definitive reply to %Ld in 40 attempts" cl.name id;
    let clean = attempt > 8 in
    match ensure_session env cl ~clean0:clean with
    | `Reset when !sent -> None
    | `Reset | `Ready -> (
      sent := true;
      let resps = deliver env cl ~clean frame in
      match List.find_opt (fun r -> Int64.equal r.Wire.rsp_id id) resps with
      | Some { Wire.rbody = Wire.Err { code = Wire.Session_expired; _ }; _ } ->
        cl.session <- None;
        cl.authed <- false;
        cl.holds_shared <- false;
        None
      | Some { Wire.rbody = Wire.Err { code = Wire.Bad_request; _ }; _ } ->
        (* our id is never genuinely stale (ids are monotonic and only
           executed requests advance last_req), so Bad_request means
           the connection lost its authentication — e.g. the
           Session_expired answer to the previous transmit was itself
           dropped. Re-establish and retry. *)
        cl.authed <- false;
        go (attempt + 1)
      | Some r -> Some r.Wire.rbody
      | None -> go (attempt + 1))
  in
  go 1

(* ------------------------------------------------------------------ *)
(* Workload actions                                                     *)
(* ------------------------------------------------------------------ *)

let classes = [| "Thing"; "Data"; "Action"; "InputData"; "OutputData" |]
let data_classes = [| "Data"; "InputData"; "OutputData" |]
let pick rng a = a.(Random.State.int rng (Array.length a))

let do_checkin env rng expected cl =
  let n = cl.nobj in
  cl.nobj <- cl.nobj + 1;
  let name = Printf.sprintf "%s_o%d" cl.name n in
  let ops =
    [ Protocol.Create_object { cls = pick rng classes; name; pattern = false } ]
  in
  let ops =
    if cl.holds_shared && Random.State.bool rng then
      ops
      @ [ Protocol.Reclassify_obj { name = "Shared"; to_ = pick rng data_classes } ]
    else ops
  in
  let confirm () =
    incr expected;
    cl.objects <- name :: cl.objects
  in
  match rpc env cl (Wire.Checkin ops) with
  | Some Wire.Done ->
    confirm ();
    (* a successful check-in releases the client's locks *)
    cl.holds_shared <- false
  | Some (Wire.Err _) | Some (Wire.Busy _) | Some Wire.Draining ->
    ()  (* definitively not applied *)
  | Some _ -> failf "client %s: unexpected checkin response" cl.name
  | None ->
    (* session expired with the batch possibly delivered: re-verify by
       name — the object is unique to this request, so its existence
       decides whether the batch applied *)
    let rec verify attempt =
      if attempt > 10 then failf "client %s: cannot verify %s" cl.name name;
      match rpc env cl (Wire.Find name) with
      | Some (Wire.Found (Some _)) -> confirm ()
      | Some (Wire.Found None) -> ()
      | None -> verify (attempt + 1)
      | Some _ -> failf "client %s: unexpected find response" cl.name
    in
    verify 1

let do_checkout env rng cl =
  let names =
    if cl.objects = [] || Random.State.int rng 3 = 0 then [ "Shared" ]
    else [ List.nth cl.objects (Random.State.int rng (List.length cl.objects)) ]
  in
  let wait_timeout =
    if Random.State.int rng 4 = 0 then Some 1.0 else None
  in
  match rpc env cl (Wire.Checkout { names; wait_timeout }) with
  | Some Wire.Done -> if List.mem "Shared" names then cl.holds_shared <- true
  | Some (Wire.Err _) | Some (Wire.Busy _) | Some Wire.Draining | None -> ()
  | Some _ -> failf "client %s: unexpected checkout response" cl.name

let do_release env cl =
  match rpc env cl Wire.Release with
  | Some Wire.Done -> cl.holds_shared <- false
  | Some (Wire.Err _) | None -> ()
  | Some _ -> failf "client %s: unexpected release response" cl.name

let do_read env rng cl =
  match Random.State.int rng 3 with
  | 0 when cl.objects <> [] ->
    (* every acknowledged creation must stay visible *)
    let name =
      List.nth cl.objects (Random.State.int rng (List.length cl.objects))
    in
    (match rpc env cl (Wire.Find name) with
    | Some (Wire.Found (Some _)) -> ()
    | Some (Wire.Found None) ->
      failf "client %s: confirmed object %s vanished" cl.name name
    | None | Some (Wire.Err _) -> ()
    | Some _ -> failf "client %s: unexpected find response" cl.name)
  | 1 -> (
    match rpc env cl (Wire.Select_isa "Thing") with
    | Some (Wire.Names names) ->
      List.iter
        (fun n ->
          if not (List.mem n names) then
            failf "client %s: %s missing from Select_isa Thing" cl.name n)
        cl.objects
    | None | Some (Wire.Err _) -> ()
    | Some _ -> failf "client %s: unexpected select response" cl.name)
  | _ -> (
    match rpc env cl Wire.Ping with
    | Some Wire.Pong | None -> ()
    | Some r -> failf "client %s: unexpected ping response %s" cl.name (resp_name r))

let do_bye env cl =
  match rpc env cl Wire.Bye with
  | Some Wire.Done ->
    cl.session <- None;
    cl.authed <- false;
    cl.holds_shared <- false
  | Some (Wire.Err _) | None -> ()
  | Some _ -> failf "client %s: unexpected bye response" cl.name

(* ------------------------------------------------------------------ *)
(* Store fingerprint (semantic dump, as in soak.ml)                     *)
(* ------------------------------------------------------------------ *)

let fingerprint db =
  let st = DB.raw db in
  let v = View.current st in
  let buf = Buffer.create 1024 in
  Db_state.fold_items st ~init:[] ~f:(fun acc it -> it :: acc)
  |> List.sort (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)
  |> List.iter (fun (it : Item.t) ->
         match View.state v it with
         | None -> ()
         | Some (Item.Obj o) ->
           Buffer.add_string buf
             (Printf.sprintf "O%d:%s:%s:%b;"
                (Ident.to_int it.Item.id)
                (Option.value o.Item.name ~default:"-")
                o.Item.cls o.Item.deleted)
         | Some (Item.Rel r) ->
           Buffer.add_string buf
             (Printf.sprintf "R%d:%s;" (Ident.to_int it.Item.id) r.Item.assoc));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* One iteration                                                        *)
(* ------------------------------------------------------------------ *)

let profiles =
  [|
    FT.quiet;
    { FT.quiet with FT.drop = 0.12; dup = 0.08 };
    { FT.quiet with FT.corrupt = 0.08; truncate = 0.04; delay = 0.15 };
    { FT.quiet with FT.drop = 0.08; dup = 0.06; corrupt = 0.06; truncate = 0.03; delay = 0.1 };
  |]

let iteration ~seed ~iter ~steps ~nclients ~verbose =
  let rng = Random.State.make [| 0x5EED; seed; iter |] in
  let dir = tmp_dir () in
  let s = Seed_error.ok_exn (Persist.Session.open_ ~dir ~schema:(schema ()) ()) in
  let db = Persist.Session.db s in
  ignore (Seed_error.ok_exn (DB.create_object db ~cls:"Data" ~name:"Shared" ()));
  Seed_error.ok_exn (Persist.Session.flush s);
  let clock = ref 0.0 in
  let ttl = 5.0 in
  let srv = Server.of_session ~now:(fun () -> !clock) s in
  let core =
    NS.create
      ~config:{ NS.default_config with NS.session_ttl = ttl }
      ~now:(fun () -> !clock)
      ~sleep:(fun d -> clock := !clock +. d)
      srv
  in
  let env = { core; srv; clock; ttl; deaths = [] } in
  let mk_client i =
    let profile () = profiles.(Random.State.int rng (Array.length profiles)) in
    {
      name = Printf.sprintf "c%d" i;
      c2s = FT.create { (profile ()) with FT.seed = Random.State.bits rng };
      s2c = FT.create { (profile ()) with FT.seed = Random.State.bits rng };
      conn = None;
      authed = false;
      session = None;
      next_id = 0L;
      objects = [];
      nobj = 0;
      holds_shared = false;
      dead = false;
    }
  in
  let clients = Array.init nclients mk_client in
  let expected = ref 0 in
  let kills = ref 0 in
  let live () =
    Array.to_list clients |> List.filter (fun c -> not c.dead)
  in
  for _step = 1 to steps do
    (match live () with
    | [] -> ()
    | ls -> (
      let cl = List.nth ls (Random.State.int rng (List.length ls)) in
      match Random.State.int rng 16 with
      | 0 | 1 | 2 | 3 | 4 -> do_checkin env rng expected cl
      | 5 | 6 | 7 -> do_checkout env rng cl
      | 8 -> do_release env cl
      | 9 | 10 | 11 -> do_read env rng cl
      | 12 ->
        (* client-side disconnect without bye: the session lingers and
           the next request resumes it *)
        drop_conn env cl
      | 13 -> do_bye env cl
      | 14 ->
        clock := !clock +. (Random.State.float rng (ttl /. 2.0));
        if Random.State.int rng 8 = 0 then
          (* a big jump: everything unrefreshed expires *)
          clock := !clock +. ttl +. 0.1;
        ignore (NS.reap env.core)
      | _ ->
        if !kills < nclients - 1 && cl.session <> None then begin
          (* sudden death, possibly holding locks: only the lease can
             free them *)
          incr kills;
          cl.dead <- true;
          drop_conn env cl;
          env.deaths <- (cl.name, !clock +. ttl) :: env.deaths
        end));
    (* a dead client's locks must be gone once its lease deadline
       passes *)
    List.iter
      (fun (name, deadline) ->
        if !clock > deadline +. 0.5 then begin
          ignore (NS.reap env.core);
          match Server.locked_by env.srv ~client:name with
          | [] -> ()
          | l ->
            failf "iteration %d: dead client %s still holds [%s] at %.2f"
              iter name (String.concat "; " l) !clock
        end)
      env.deaths
  done;
  (* exactly-once: every confirmed batch applied once, nothing else *)
  let applied = Server.checkin_count srv in
  if applied <> !expected then
    failf
      "iteration %d: server applied %d check-ins, clients confirmed %d — a \
       replay was double-applied or an acknowledged batch was lost"
      iter applied !expected;
  (* final lease sweep: everything expires, the reaper frees it all *)
  clock := !clock +. ttl +. 1.0;
  ignore (NS.reap env.core);
  let st = NS.stats core in
  if st.Wire.sv_sessions <> 0 then
    failf "iteration %d: %d sessions survive the final sweep" iter
      st.Wire.sv_sessions;
  let ls = Server.lock_stats srv in
  if
    ls.Seed_server.Lock_table.locks_held <> 0
    || ls.Seed_server.Lock_table.locks_leased <> 0
    || ls.Seed_server.Lock_table.locks_expired <> 0
    || ls.Seed_server.Lock_table.waiters <> 0
  then
    failf
      "iteration %d: lock table not empty after final sweep (held %d leased \
       %d expired %d waiters %d)"
      iter ls.Seed_server.Lock_table.locks_held
      ls.Seed_server.Lock_table.locks_leased
      ls.Seed_server.Lock_table.locks_expired
      ls.Seed_server.Lock_table.waiters;
  (* the store survived the schedule: durable, fsck-clean, reopenable *)
  Seed_error.ok_exn (Persist.Session.flush s);
  let fp = fingerprint db in
  (match Seed_core.Consistency.check_database (View.current (DB.raw db)) with
  | Ok () -> ()
  | Error e ->
    failf "iteration %d: consistency sweep failed: %s" iter
      (Seed_error.to_string e));
  Persist.Session.close s;
  let report = Seed_error.ok_exn (Store.fsck dir) in
  if not report.Store.fsck_healthy then
    failf "iteration %d: store unhealthy after the run:\n%s" iter
      (Format.asprintf "%a" Store.pp_fsck_report report);
  let s2 =
    Seed_error.ok_exn (Persist.Session.open_ ~dir ~schema:(schema ()) ())
  in
  if not (String.equal (fingerprint (Persist.Session.db s2)) fp) then
    failf "iteration %d: state differs after reopen" iter;
  Persist.Session.close s2;
  if verbose then begin
    let faults =
      Array.fold_left
        (fun n c -> n + FT.injected c.c2s + FT.injected c.s2c)
        0 clients
    in
    Printf.printf
      "iter %3d: steps=%d clients=%d checkins=%d faults=%d kills=%d \
       reaped=%d served=%d busy=%d\n%!"
      iter steps nclients !expected faults !kills st.Wire.sv_reaped_sessions
      st.Wire.sv_served st.Wire.sv_busy_rejects
  end

let () =
  let iters = ref 25
  and seed = ref 42
  and steps = ref 120
  and nclients = ref 5
  and verbose = ref false in
  let spec =
    [
      ("--iters", Arg.Set_int iters, "N  number of iterations (default 25)");
      ("--seed", Arg.Set_int seed, "N  base random seed (default 42)");
      ("--steps", Arg.Set_int steps, "N  workload steps per iteration (default 120)");
      ("--clients", Arg.Set_int nclients, "N  simulated clients (default 5)");
      ("-v", Arg.Set verbose, "  one line per iteration");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "chaos_net [--iters N] [--seed N] [--steps N] [--clients N] [-v]";
  (try
     for i = 0 to !iters - 1 do
       iteration ~seed:!seed ~iter:i ~steps:!steps ~nclients:!nclients
         ~verbose:!verbose
     done
   with Chaos_failure m ->
     Printf.eprintf "NET CHAOS FAILURE: %s\n%!" m;
     exit 1);
  Printf.printf
    "net chaos OK: %d iterations x %d steps, %d clients, all invariants held\n%!"
    !iters !steps !nclients
