(* MVCC reader/writer equivalence stress.

   Each iteration runs one writer against N reader domains over a
   shared in-memory database. The writer applies randomized
   transactional batches (with occasional version snapshots and
   deliberate mid-transaction failures) and records the fingerprint of
   every state it publishes. The readers continuously pin snapshots
   ([Database.snapshot]) and check, on each one, the invariants the
   copy-on-write design promises:

   - a pinned snapshot is frozen: fingerprinting it twice, with writer
     commits in between, yields the same bytes;
   - every snapshot is internally consistent: the permanent consistency
     rules hold, and the query planner agrees with a naive table scan on
     the current view and on a version view;
   - every snapshot is a published state: its fingerprint appears in the
     writer's sequential history — no torn or intermediate state is ever
     observable, including states from inside transactions that later
     rolled back.

   After the domains join, the same op list is replayed sequentially on
   a fresh database and the final fingerprints are compared, so the
   concurrent run is provably equivalent to its sequential replay. The
   workload derives from [--seed]; failures are reproducible. *)

open Seed_util
open Seed_schema
module DB = Seed_core.Database
module Db_state = Seed_core.Db_state
module View = Seed_core.View
module Item = Seed_core.Item
module Q = Seed_core.Query

let schema () = Spades_tool.Spec_model.schema

(* ------------------------------------------------------------------ *)
(* Symbolic workload (a trimmed-down soak.ml vocabulary)                *)
(* ------------------------------------------------------------------ *)

type op =
  | Create of int * string
  | CreateSub of int * string
  | CreateRel of int * int * string
  | SetValue of int * string option
  | Rename of int * int
  | Reclassify of int * string
  | Delete of int

type step =
  | Batch of op list
  | FailingBatch of op list  (* aborts mid-flight: must be invisible *)
  | Stream of op list  (* unbatched: every successful op publishes *)
  | Snapshot

let classes = [ "Thing"; "Data"; "Action"; "InputData"; "OutputData" ]
let roles = [ "Description"; "Keywords"; "Text" ]
let assocs = [ "Access"; "Read"; "Write" ]

let gen_op rng =
  let int n = Random.State.int rng n in
  let pick l = List.nth l (int (List.length l)) in
  match int 16 with
  | 0 | 1 | 2 | 3 | 4 | 5 -> Create (int 60, pick classes)
  | 6 | 7 -> CreateSub (int 40, pick roles)
  | 8 | 9 -> CreateRel (int 40, int 40, pick assocs)
  | 10 | 11 ->
    SetValue
      (int 40, if int 4 = 0 then None else Some (Printf.sprintf "v%d" (int 100)))
  | 12 -> Rename (int 40, int 100)
  | 13 -> Reclassify (int 40, pick classes)
  | _ -> Delete (int 40)

let gen_steps rng =
  let nbatches = 8 + Random.State.int rng 4 in
  List.concat
    (List.init nbatches (fun _ ->
         let nops = 5 + Random.State.int rng 5 in
         let ops = List.init nops (fun _ -> gen_op rng) in
         match Random.State.int rng 6 with
         | 0 -> [ Batch ops; Snapshot ]
         | 1 -> [ FailingBatch ops; Batch ops ]
         | 2 | 3 -> [ Stream ops ]
         | _ -> [ Batch ops ]))

type env = {
  db : DB.t;
  mutable objects : Ident.t list;
  mutable subs : Ident.t list;
}

let pick xs i =
  match xs with [] -> None | _ -> Some (List.nth xs (i mod List.length xs))

let apply_op env op : (unit, Seed_error.t) result =
  match op with
  | Create (i, cls) ->
    Result.map
      (fun id -> env.objects <- id :: env.objects)
      (DB.create_object env.db ~cls ~name:(Printf.sprintf "obj%d" i) ())
  | CreateSub (p, role) -> (
    match pick env.objects p with
    | None -> Ok ()
    | Some parent ->
      let value =
        if role = "Description" || role = "Keywords" then
          Some (Value.String "x")
        else None
      in
      Result.map
        (fun id -> env.subs <- id :: env.subs)
        (DB.create_sub_object env.db ~parent ~role ?value ()))
  | CreateRel (a, b, assoc) -> (
    match (pick env.objects a, pick env.objects b) with
    | Some x, Some y ->
      Result.map
        (fun _ -> ())
        (DB.create_relationship env.db ~assoc ~endpoints:[ x; y ] ())
    | _ -> Ok ())
  | SetValue (i, v) -> (
    match pick env.subs i with
    | None -> Ok ()
    | Some id -> DB.set_value env.db id (Option.map (fun s -> Value.String s) v))
  | Rename (i, n) -> (
    match pick env.objects i with
    | None -> Ok ()
    | Some id -> DB.rename_object env.db id (Printf.sprintf "obj%d" n))
  | Reclassify (i, cls) -> (
    match pick env.objects i with
    | None -> Ok ()
    | Some id -> DB.reclassify env.db id ~to_:cls)
  | Delete i -> (
    match pick (env.objects @ env.subs) i with
    | None -> Ok ()
    | Some id -> DB.delete env.db id)

(* ------------------------------------------------------------------ *)
(* Fingerprints over a frozen state                                     *)
(* ------------------------------------------------------------------ *)

let fingerprint st =
  let v = View.current st in
  let buf = Buffer.create 1024 in
  Db_state.fold_items st ~init:[] ~f:(fun acc it -> it :: acc)
  |> List.sort (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)
  |> List.iter (fun (it : Item.t) ->
         match View.state v it with
         | None -> ()
         | Some (Item.Obj o) ->
           Buffer.add_string buf
             (Printf.sprintf "O%d:%s:%s:%s:%b:%b;"
                (Ident.to_int it.Item.id)
                (Option.value o.Item.name ~default:"-")
                o.Item.cls
                (match o.Item.value with
                | Some v -> Value.to_string v
                | None -> "-")
                o.Item.pattern o.Item.deleted)
         | Some (Item.Rel r) ->
           Buffer.add_string buf
             (Printf.sprintf "R%d:%s:%s:%b;"
                (Ident.to_int it.Item.id)
                r.Item.assoc
                (String.concat ","
                   (List.map
                      (fun i -> string_of_int (Ident.to_int i))
                      r.Item.endpoints))
                r.Item.rel_deleted));
  Buffer.add_string buf "|";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (n : Seed_core.Versioning.node) ->
            Version_id.to_string n.Seed_core.Versioning.vid)
          (Seed_core.Versioning.all (Db_state.versions st))));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Per-snapshot invariants                                              *)
(* ------------------------------------------------------------------ *)

let sorted_ids items =
  List.map (fun (it : Item.t) -> it.Item.id) items |> List.sort Ident.compare

let naive_select v p =
  Db_state.fold_items (View.db v) ~init:[] ~f:(fun acc it ->
      if
        it.Item.body = Item.Independent
        && View.live_normal v it
        && Q.test p v it
      then it.Item.id :: acc
      else acc)
  |> List.sort Ident.compare

let predicate_pool =
  List.concat_map (fun c -> [ Q.in_class c; Q.is_a c ]) classes
  @ [
      Q.name_is "obj3";
      Q.(in_class "Data" &&& is_a "Thing");
      Q.(in_class "InputData" ||| in_class "OutputData");
      Q.(not_ (is_a "Data"));
    ]

let planner_agrees v =
  List.for_all
    (fun p ->
      let planned = sorted_ids (Q.select v p) in
      planned = naive_select v p && Q.count v p = List.length planned)
    predicate_pool

(* ------------------------------------------------------------------ *)
(* Reader domains                                                       *)
(* ------------------------------------------------------------------ *)

exception Stress_failure of string

let failf fmt = Printf.ksprintf (fun m -> raise (Stress_failure m)) fmt

(* One reader: pin snapshots until [stop], checking each one. Returns
   the deduplicated fingerprints of every state it observed. *)
let reader ~iter ~db ~stop () =
  let observed = Hashtbl.create 64 in
  let checked = ref 0 in
  let check_snapshot () =
    let st = DB.snapshot db in
    let fp = fingerprint st in
    (* frozen: re-fingerprinting the same pinned snapshot after the
       writer has had time to commit more batches yields the same
       bytes *)
    for _ = 1 to 50 do
      Domain.cpu_relax ()
    done;
    if not (String.equal (fingerprint st) fp) then
      failf "iteration %d: pinned snapshot mutated under the reader" iter;
    let v = View.current st in
    (match Seed_core.Consistency.check_database v with
    | Ok () -> ()
    | Error e ->
      failf "iteration %d: snapshot fails the consistency sweep: %s" iter
        (Seed_error.to_string e));
    if not (planner_agrees v) then
      failf "iteration %d: planner disagrees with naive scan on a snapshot"
        iter;
    (* same checks through a version view, when the snapshot has one —
       this pins the materialized (sorted-array) version extents too *)
    (match Seed_core.Versioning.all (Db_state.versions st) with
    | [] -> ()
    | n :: _ ->
      let vv = View.at st n.Seed_core.Versioning.vid in
      if not (planner_agrees vv) then
        failf
          "iteration %d: planner disagrees with naive scan on a version view"
          iter);
    Hashtbl.replace observed fp ();
    incr checked
  in
  (* at least one full check even if the writer already finished *)
  check_snapshot ();
  while not (Atomic.get stop) do
    check_snapshot ()
  done;
  (!checked, Hashtbl.fold (fun fp () acc -> fp :: acc) observed [])

(* ------------------------------------------------------------------ *)
(* The writer and the iteration                                         *)
(* ------------------------------------------------------------------ *)

let apply_steps db steps ~record =
  let env = { db; objects = []; subs = [] } in
  List.iter
    (fun step ->
      match step with
      | Batch ops ->
        (match
           DB.with_transaction db (fun () ->
               Seed_error.iter_result (apply_op env) ops)
         with
        | Ok () | Error _ -> ());
        record ()
      | FailingBatch ops ->
        (* applies its ops, then aborts: the rollback is a root swap,
           so nothing of it may ever reach a published state *)
        (match
           DB.with_transaction db (fun () ->
               match Seed_error.iter_result (apply_op env) ops with
               | Error _ as e -> e
               | Ok () ->
                 Seed_error.fail
                   (Seed_error.Invalid_operation "mvcc-stress abort"))
         with
        | Ok () -> assert false
        | Error _ -> ());
        record ()
      | Stream ops ->
        (* each successful op commits and publishes its own root, so
           the record must land between ops, not after the stream *)
        List.iter
          (fun op ->
            (match apply_op env op with Ok () | Error _ -> ());
            record ())
          ops
      | Snapshot ->
        (match DB.create_version db with Ok _ | Error _ -> ());
        record ())
    steps

let n_readers = 2

let iteration ~seed ~iter ~verbose =
  let rng = Random.State.make [| seed; iter; 0x5eed |] in
  let steps = gen_steps rng in
  let db = DB.create (schema ()) in
  let published = Hashtbl.create 64 in
  let prev = ref (fingerprint (DB.raw db)) in
  Hashtbl.replace published !prev ();
  let record () =
    let fp = fingerprint (DB.raw db) in
    Hashtbl.replace published fp ();
    prev := fp
  in
  let stop = Atomic.make false in
  let readers =
    List.init n_readers (fun _ -> Domain.spawn (reader ~iter ~db ~stop))
  in
  let fail_check () =
    apply_steps db steps ~record;
    (* rolled-back batches must leave the published fingerprint where
       it was: check one explicit abort after the workload *)
    let before = fingerprint (DB.raw db) in
    (match
       DB.with_transaction db (fun () ->
           match
             DB.create_object db ~cls:"Action" ~name:"mvcc_stress_tail" ()
           with
           | Error _ as e -> Result.map (fun _ -> ()) e
           | Ok _ ->
             Seed_error.fail (Seed_error.Invalid_operation "tail abort"))
     with
    | Ok () -> failf "iteration %d: aborting transaction succeeded" iter
    | Error _ -> ());
    if not (String.equal (fingerprint (DB.raw db)) before) then
      failf "iteration %d: rollback left a trace in the state" iter
  in
  let writer_failure =
    match fail_check () with
    | () -> None
    | exception Stress_failure m -> Some m
  in
  Atomic.set stop true;
  let results = List.map Domain.join readers in
  (match writer_failure with Some m -> raise (Stress_failure m) | None -> ());
  let snapshots_checked =
    List.fold_left (fun acc (c, _) -> acc + c) 0 results
  in
  List.iter
    (fun (_, fps) ->
      List.iter
        (fun fp ->
          if not (Hashtbl.mem published fp) then
            failf
              "iteration %d: a reader observed a state the writer never \
               published"
              iter)
        fps)
    results;
  (* the concurrent run is equivalent to a sequential replay of the
     same ops on a fresh database *)
  let db2 = DB.create (schema ()) in
  apply_steps db2 steps ~record:(fun () -> ());
  if
    not
      (String.equal (fingerprint (DB.raw db2)) (fingerprint (DB.raw db)))
  then failf "iteration %d: concurrent run differs from sequential replay" iter;
  if verbose then
    Printf.printf "iter %3d: steps=%d snapshots-checked=%d states=%d\n%!" iter
      (List.length steps) snapshots_checked (Hashtbl.length published)

let () =
  let iters = ref 25 and seed = ref 42 and verbose = ref false in
  let spec =
    [
      ("--iters", Arg.Set_int iters, "N  number of iterations (default 25)");
      ("--seed", Arg.Set_int seed, "N  base random seed (default 42)");
      ("-v", Arg.Set verbose, "  one line per iteration");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "mvcc_stress [--iters N] [--seed N] [-v]";
  (try
     for i = 0 to !iters - 1 do
       iteration ~seed:!seed ~iter:i ~verbose:!verbose
     done
   with Stress_failure m ->
     Printf.eprintf "MVCC STRESS FAILURE: %s\n%!" m;
     exit 1);
  Printf.printf
    "mvcc stress OK: %d iterations x %d reader domains (seed %d), all \
     snapshots consistent and published\n%!"
    !iters n_readers !seed
