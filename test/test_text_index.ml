(* Trigram index / scan equivalence for containment search.

   [Query.contains]/[Query.matches] answer from the trigram positional
   index; their one obligation is to return exactly what re-testing the
   predicate over a naive item-table scan returns — after any operation
   sequence (text creates, updates, clears, deletes, re-classification,
   transaction rollback, branch switches), on current and on version
   views, and across an encode/decode reopen. A second invariant pins
   the maintenance itself: the incrementally maintained index must stay
   structurally equal to a wholesale rebuild from the live states. *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module Db_state = Seed_core.Db_state
module Persist = Seed_core.Persist
module View = Seed_core.View
module Item = Seed_core.Item
module Q = Seed_core.Query
module Text_index = Seed_core.Text_index

(* ------------------------------------------------------------------ *)
(* Symbolic operations                                                  *)
(* ------------------------------------------------------------------ *)

(* Texts share trigrams aggressively ("recovery", "recover", repeated
   letters) so posting lists overlap and positional verification has
   false candidates to reject. Short and empty strings ride along. *)
let texts =
  [|
    "";
    "ab";
    "abc";
    "abcabc";
    "aaaa";
    "recover";
    "the recovery path";
    "spec 7 revises the recovery path";
    "keyword: alarm reset";
    "alarm";
    "mississippi";
    "self-describing specification text";
  |]

let text i = texts.(i mod Array.length texts)
let classes = [ "Thing"; "Data"; "Action"; "InputData"; "OutputData" ]

(* Simple (non-structuring) operations, reusable inside transactions. *)
type sop =
  | Create of int * string
  | MkText of int  (** a [Data.Text] node: carriers can nest below it *)
  | MkCarrier of int * int * int  (** role choice, owner, text *)
  | SetText of int * int  (** carrier, new text *)
  | ClearText of int
  | Reclassify of int * string
  | Delete of int  (** an independent: cascades over its carriers *)
  | DeleteCarrier of int

type op =
  | Op of sop
  | Txn of sop list * bool  (** batched apply; [false] rolls back *)
  | Snapshot
  | Branch of int

let sop_gen =
  let open QCheck2.Gen in
  frequency
    [
      (5, map2 (fun i c -> Create (i, c)) (int_bound 40) (oneofl classes));
      (3, map (fun i -> MkText i) (int_bound 40));
      ( 9,
        map3
          (fun r o t -> MkCarrier (r, o, t))
          (int_bound 5) (int_bound 40) (int_bound 40) );
      (5, map2 (fun c t -> SetText (c, t)) (int_bound 40) (int_bound 40));
      (1, map (fun c -> ClearText c) (int_bound 40));
      (2, map2 (fun i c -> Reclassify (i, c)) (int_bound 40) (oneofl classes));
      (1, map (fun i -> Delete i) (int_bound 40));
      (1, map (fun c -> DeleteCarrier c) (int_bound 40));
    ]

let op_gen =
  let open QCheck2.Gen in
  frequency
    [
      (10, map (fun s -> Op s) sop_gen);
      (1, map2 (fun sops ok -> Txn (sops, ok)) (list_size (int_range 1 6) sop_gen) bool);
      (1, return Snapshot);
      (1, map (fun i -> Branch i) (int_bound 2));
    ]

let ops_gen = QCheck2.Gen.(list_size (int_range 0 80) op_gen)

type env = {
  mutable db : DB.t;
  mutable stamp : int;  (** uniquifies object names across branches *)
  mutable objects : Ident.t list;
  mutable texts : Ident.t list;  (** Data.Text nodes *)
  mutable carriers : Ident.t list;  (** string-valued sub-objects *)
  mutable versions : Version_id.t list;
}

let pick xs i =
  match xs with [] -> None | _ -> Some (List.nth xs (i mod List.length xs))

let apply_sop env sop =
  let ignore_result (r : (_, Seed_error.t) result) = ignore r in
  match sop with
  | Create (i, cls) -> (
    env.stamp <- env.stamp + 1;
    match
      DB.create_object env.db ~cls
        ~name:(Printf.sprintf "obj%d_%d" i env.stamp) ()
    with
    | Ok id -> env.objects <- id :: env.objects
    | Error _ -> ())
  | MkText i -> (
    match pick env.objects i with
    | None -> ()
    | Some parent -> (
      match DB.create_sub_object env.db ~parent ~role:"Text" () with
      | Ok id -> env.texts <- id :: env.texts
      | Error _ -> ()))
  | MkCarrier (r, o, t) -> (
    (* Description/Keywords hang off any Thing; Body/Selector off a
       Data.Text node — exercising paths at different nesting depths *)
    let choice =
      match r mod 5 with
      | 0 | 1 -> Option.map (fun p -> (p, "Description")) (pick env.objects o)
      | 2 -> Option.map (fun p -> (p, "Keywords")) (pick env.objects o)
      | 3 -> Option.map (fun p -> (p, "Body")) (pick env.texts o)
      | _ -> Option.map (fun p -> (p, "Selector")) (pick env.texts o)
    in
    match choice with
    | None -> ()
    | Some (parent, role) -> (
      match
        DB.create_sub_object env.db ~parent ~role
          ~value:(Value.String (text t)) ()
      with
      | Ok id -> env.carriers <- id :: env.carriers
      | Error _ -> ()))
  | SetText (c, t) -> (
    match pick env.carriers c with
    | None -> ()
    | Some id ->
      ignore_result (DB.set_value env.db id (Some (Value.String (text t)))))
  | ClearText c -> (
    match pick env.carriers c with
    | None -> ()
    | Some id -> ignore_result (DB.set_value env.db id None))
  | Reclassify (i, cls) -> (
    match pick env.objects i with
    | None -> ()
    | Some id -> ignore_result (DB.reclassify env.db id ~to_:cls))
  | Delete i -> (
    match pick env.objects i with
    | None -> ()
    | Some id -> ignore_result (DB.delete env.db id))
  | DeleteCarrier c -> (
    match pick env.carriers c with
    | None -> ()
    | Some id -> ignore_result (DB.delete env.db id))

let apply env op =
  match op with
  | Op sop -> apply_sop env sop
  | Txn (sops, commit) ->
    (* id lists may keep ids a rollback erased; later picks on them
       just fail and are ignored, like any other refused operation *)
    ignore
      (DB.with_transaction env.db (fun () ->
           List.iter (apply_sop env) sops;
           if commit then Ok () else Error (Seed_error.Invalid_operation "rollback")))
  | Snapshot -> (
    match DB.create_version env.db with
    | Ok v -> env.versions <- v :: env.versions
    | Error _ -> ())
  | Branch i -> (
    match pick env.versions i with
    | None -> ()
    | Some v ->
      ignore (DB.begin_alternative env.db ~from_:v ~force:true ()))

let fresh_env () =
  {
    db = DB.create (fig3_schema ());
    stamp = 0;
    objects = [];
    texts = [];
    carriers = [];
    versions = [];
  }

let run_model ops =
  let env = fresh_env () in
  List.iter (apply env) ops;
  env

(* ------------------------------------------------------------------ *)
(* The two invariants                                                   *)
(* ------------------------------------------------------------------ *)

let sorted_ids items =
  List.map (fun (it : Item.t) -> it.Item.id) items |> List.sort Ident.compare

(* The naive reference bypasses the planner entirely: [Q.test] on
   Contains/Matches reads the strings through the view, never the
   index. *)
let naive_select v p =
  Db_state.fold_items (View.db v) ~init:[] ~f:(fun acc it ->
      if
        it.Item.body = Item.Independent
        && View.live_normal v it
        && Q.test p v it
      then it.Item.id :: acc
      else acc)
  |> List.sort Ident.compare

(* Planted needles, common needles, negatives, sub-trigram shorties
   (scan fallback), path-scoped probes at both nesting depths, and
   conjunctions with the class planner. *)
let predicate_pool =
  [
    Q.contains "" "recovery";
    Q.contains "" "recover";
    Q.contains "" "the recovery path";
    Q.contains "" "issip";
    Q.contains "" "aaa";
    Q.contains "" "abcab";
    Q.contains "" "no-such-needle";
    Q.contains "" "ab";
    Q.contains "" "z";
    Q.contains "" "";
    Q.contains "Thing.Description" "recovery";
    Q.contains "Thing.Keywords" "alarm";
    Q.contains "Data.Text.Body" "spec";
    Q.contains "Data.Text.Selector" "recovery";
    Q.contains "No.Such.Path" "recovery";
    Q.matches "" [ "spec"; "recovery path" ];
    Q.matches "" [ "alarm"; "reset" ];
    Q.matches "" [ "recovery"; "xyzzy" ];
    Q.matches "" [ "ab"; "recovery" ];
    Q.matches "" [];
    Q.(is_a "Data" &&& contains "" "recovery");
    Q.(in_class "Action" &&& contains "Thing.Description" "alarm");
    Q.(contains "" "spec" ||| contains "" "alarm");
    Q.(not_ (contains "" "recovery"));
  ]

let views env =
  let st = DB.raw env.db in
  View.current st :: List.map (View.at st) env.versions

let select_agrees env =
  List.for_all
    (fun v ->
      List.for_all
        (fun p ->
          let planned = sorted_ids (Q.select v p) in
          planned = naive_select v p
          && Q.count v p = List.length planned)
        predicate_pool)
    (views env)

let index_consistent env =
  let st = DB.raw env.db in
  match Db_state.text_index st with
  | None -> true
  | Some tx -> Text_index.equal tx (Db_state.rebuilt_text_index st)

(* ------------------------------------------------------------------ *)
(* Randomized properties                                                *)
(* ------------------------------------------------------------------ *)

let prop_select =
  qcheck_case ~count:80 "indexed select/count = naive scan" ops_gen (fun ops ->
      select_agrees (run_model ops))

let prop_consistent =
  qcheck_case ~count:80 "incremental index = wholesale rebuild" ops_gen
    (fun ops -> index_consistent (run_model ops))

let prop_all_prefixes =
  qcheck_case ~count:25 "index agrees at every prefix"
    QCheck2.Gen.(list_size (int_range 0 20) op_gen)
    (fun ops ->
      let env = fresh_env () in
      List.for_all
        (fun op ->
          apply env op;
          index_consistent env && select_agrees env)
        ops)

let prop_reopen =
  qcheck_case ~count:50 "reopen rebuilds an equivalent index" ops_gen
    (fun ops ->
      let env = run_model ops in
      let db2 = ok (Persist.decode_db (Persist.encode_db env.db)) in
      let env2 = { env with db = db2 } in
      index_consistent env2 && select_agrees env2)

let prop_disable =
  qcheck_case ~count:50 "disable falls back to scan; re-enable rebuilds"
    ops_gen (fun ops ->
      let env = run_model ops in
      DB.set_text_index_enabled env.db false;
      let off_ok =
        (Db_state.text_index (DB.raw env.db) = None) && select_agrees env
      in
      DB.set_text_index_enabled env.db true;
      off_ok && index_consistent env && select_agrees env)

(* ------------------------------------------------------------------ *)
(* Directed cases                                                       *)
(* ------------------------------------------------------------------ *)

let test_structure () =
  let open Text_index in
  let id i = Ident.of_int i in
  let t = empty in
  Alcotest.(check bool) "empty" true (is_empty t);
  let t = add_doc t (id 1) ~path:"P" "the recovery path" in
  let t = add_doc t (id 2) ~path:"Q" "recover quickly" in
  let t = add_doc t (id 3) ~path:"P" "aaaa" in
  Alcotest.(check int) "docs" 3 (doc_count t);
  let hits needle = Ident.Set.cardinal (query t needle) in
  Alcotest.(check int) "shared stem" 2 (hits "recover");
  Alcotest.(check int) "full phrase" 1 (hits "the recovery path");
  (* overlapping occurrences: "aaaa" holds "aaa" at offsets 0 and 1 *)
  Alcotest.(check int) "overlap" 1 (hits "aaa");
  Alcotest.(check int) "negative" 0 (hits "covery path x");
  (* trigrams present but never adjacent: positions must reject *)
  Alcotest.(check int) "adjacency" 0 (hits "pathrec");
  Alcotest.(check int) "path scope" 1
    (Ident.Set.cardinal (query t ~path:"Q" "recover"));
  Alcotest.(check int) "wrong path" 0
    (Ident.Set.cardinal (query t ~path:"Z" "recover"));
  let t = remove_doc t (id 2) "recover quickly" in
  Alcotest.(check int) "after remove" 1
    (Ident.Set.cardinal (query t "recover"));
  let s = stats t in
  Alcotest.(check int) "stats docs" 2 s.docs;
  Alcotest.(check bool) "stats positions" true (s.positions > 0);
  Alcotest.check
    (Alcotest.testable
       (fun ppf e -> Format.fprintf ppf "%s" (Printexc.to_string e))
       (fun a b -> a = b))
    "short needle refused"
    (Invalid_argument "Text_index.query: needle shorter than 3 bytes")
    (try
       ignore (query t "ab");
       Failure "no exception"
     with e -> e)

let test_explain () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let _ =
    ok
      (DB.create_sub_object db ~parent:a ~role:"Description"
         ~value:(Value.String "the recovery path") ())
  in
  let v = View.current (DB.raw db) in
  (match Q.explain v (Q.contains "" "recovery") with
  | Q.Indexed { texts = [ tp ]; est_candidates; _ } ->
    Alcotest.(check string) "needle" "recovery" tp.Q.tp_needle;
    Alcotest.(check int) "trigrams" 6 tp.Q.tp_trigrams;
    Alcotest.(check bool) "verified" true (tp.Q.tp_verified >= 1);
    Alcotest.(check int) "candidates bound" 1 est_candidates
  | _ -> Alcotest.fail "expected an indexed plan with one text probe");
  (match Q.explain v (Q.contains "" "ab") with
  | Q.Scan _ -> ()
  | Q.Indexed _ -> Alcotest.fail "short needle must fall back to scan");
  DB.set_text_index_enabled db false;
  (match Q.explain (View.current (DB.raw db)) (Q.contains "" "recovery") with
  | Q.Scan _ -> ()
  | Q.Indexed _ -> Alcotest.fail "disabled index must fall back to scan");
  DB.set_text_index_enabled db true

let test_counters () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let _ =
    ok
      (DB.create_sub_object db ~parent:a ~role:"Description"
         ~value:(Value.String "alarm reset") ())
  in
  let v = View.current (DB.raw db) in
  let _ = Q.select v (Q.contains "" "alarm") in
  let _ = Q.select v (Q.contains "" "al") in
  let hits, fallbacks = Db_state.text_counters (DB.raw db) in
  Alcotest.(check bool) "hit counted" true (hits >= 1);
  Alcotest.(check bool) "fallback counted" true (fallbacks >= 1);
  let st = DB.stats db in
  Alcotest.(check bool) "stats enabled" true st.DB.st_text_enabled;
  Alcotest.(check bool) "stats docs" true (st.DB.st_text_docs >= 1);
  Alcotest.(check int) "stats hits" hits st.DB.st_text_hits

let test_version_views () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Data" ~name:"A" ()) in
  let d =
    ok
      (DB.create_sub_object db ~parent:a ~role:"Description"
         ~value:(Value.String "old text here") ())
  in
  let v1 = ok (DB.create_version db) in
  ok (DB.set_value db d (Some (Value.String "new words entirely")));
  let st = DB.raw db in
  let old_v = View.at st v1 and cur_v = View.current st in
  let names v p = List.filter_map (View.full_name v) (Q.select v p) in
  Alcotest.(check (list string)) "old view sees old text" [ "A" ]
    (names old_v (Q.contains "" "old text"));
  Alcotest.(check (list string)) "old view misses new text" []
    (names old_v (Q.contains "" "new words"));
  Alcotest.(check (list string)) "current misses old text" []
    (names cur_v (Q.contains "" "old text"));
  Alcotest.(check (list string)) "current sees new text" [ "A" ]
    (names cur_v (Q.contains "" "new words"))

let () =
  Alcotest.run "text_index"
    [
      ( "structure",
        [ tc "postings and verification" test_structure;
          tc "explain" test_explain;
          tc "counters and stats" test_counters;
          tc "version views" test_version_views ] );
      ( "equivalence",
        [ prop_select; prop_consistent; prop_all_prefixes; prop_reopen;
          prop_disable ] );
    ]
