(* Chaos soak harness.

   Each iteration runs a randomized transactional workload — batches of
   random operations applied through [Database.with_transaction] and
   flushed through [Persist.Session] — under [Faulty_io] with a crash
   scheduled at a random I/O step, then recovers and checks the
   invariants the transaction machinery promises:

   - no partially applied transaction is visible: the recovered state is
     semantically identical to a flush boundary at or after the last
     acknowledged one (with [`Always_fsync], an acknowledged flush can
     never be lost, and an in-flight one is all-or-nothing);
   - the recovered state passes the full consistency sweep;
   - the query planner agrees with a naive table scan on the recovered
     state, on the current view and on every version view;
   - [Store.fsck] runs on the crashed directory, and is healthy again
     after recovery;
   - a read-fault pass reopens the recovered directory under injected
     wire-level read faults (EINTR bursts, a flipped bit, a short read)
     and checks the self-healing layer absorbs them: the open succeeds,
     the state is bit-identical, and nothing is quarantined or
     truncated.

   The workload, crash point, torn-write choice and read-fault schedule
   all derive from [--seed], so a failing iteration is reproducible
   bit-for-bit. With [--partitions N] the store journals across N
   partitions: the same invariants must hold when the crash lands
   between (or inside) per-partition writes and recovery has to merge
   the partition journals back into one replay order. *)

open Seed_util
open Seed_schema
module DB = Seed_core.Database
module Db_state = Seed_core.Db_state
module View = Seed_core.View
module Item = Seed_core.Item
module Q = Seed_core.Query
module Persist = Seed_core.Persist
module Store = Seed_storage.Store
module Faulty = Seed_storage.Faulty_io

let schema () = Spades_tool.Spec_model.schema

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "seed_soak_%d_%d" (Unix.getpid ()) !counter)

(* ------------------------------------------------------------------ *)
(* Symbolic workloads                                                   *)
(* ------------------------------------------------------------------ *)

type op =
  | Create of int * string
  | CreatePattern of int
  | CreateSub of int * string
  | CreateRel of int * int * string
  | SetValue of int * string option
  | Rename of int * int
  | Reclassify of int * string
  | Delete of int
  | Inherit of int * int

type step =
  | Batch of op list  (* one transaction, then a flush *)
  | Snapshot  (* create_version, then a flush *)
  | Branch of int  (* begin_alternative, then a flush *)
  | Compact

let classes = [ "Thing"; "Data"; "Action"; "InputData"; "OutputData" ]
let roles = [ "Description"; "Keywords"; "Text"; "Revised" ]
let assocs = [ "Access"; "Read"; "Write"; "Contained" ]

let gen_op rng =
  let int n = Random.State.int rng n in
  let pick l = List.nth l (int (List.length l)) in
  match int 20 with
  | 0 | 1 | 2 | 3 | 4 -> Create (int 60, pick classes)
  | 5 -> CreatePattern (int 40)
  | 6 | 7 | 8 -> CreateSub (int 40, pick roles)
  | 9 | 10 | 11 -> CreateRel (int 40, int 40, pick assocs)
  | 12 | 13 ->
    SetValue
      ( int 40,
        if int 4 = 0 then None
        else if int 3 = 0 then
          (* longer bodies give the trigram index real content *)
          Some (Printf.sprintf "spec %d revises the recovery path" (int 100))
        else Some (Printf.sprintf "v%d" (int 100)) )
  | 14 -> Rename (int 40, int 100)
  | 15 | 16 -> Reclassify (int 40, pick classes)
  | 17 -> Delete (int 40)
  | _ -> Inherit (int 40, int 40)

let gen_steps rng =
  (* at least 9 x 6 = 54 data ops per iteration, split into
     transactional batches with occasional version and compaction steps
     in between *)
  let nbatches = 9 + Random.State.int rng 4 in
  List.concat
    (List.init nbatches (fun _ ->
         let nops = 6 + Random.State.int rng 4 in
         let batch = Batch (List.init nops (fun _ -> gen_op rng)) in
         match Random.State.int rng 6 with
         | 0 -> [ batch; Snapshot ]
         | 1 -> [ batch; Branch (Random.State.int rng 8) ]
         | 2 -> [ batch; Compact ]
         | _ -> [ batch ]))

let count_ops steps =
  List.fold_left
    (fun n -> function Batch ops -> n + List.length ops | _ -> n)
    0 steps

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

type env = {
  db : DB.t;
  mutable objects : Ident.t list;
  mutable subs : Ident.t list;
  mutable patterns : Ident.t list;
  mutable versions : Version_id.t list;
}

let pick xs i =
  match xs with [] -> None | _ -> Some (List.nth xs (i mod List.length xs))

let apply_op env op : (unit, Seed_error.t) result =
  match op with
  | Create (i, cls) ->
    Result.map
      (fun id -> env.objects <- id :: env.objects)
      (DB.create_object env.db ~cls ~name:(Printf.sprintf "obj%d" i) ())
  | CreatePattern i ->
    Result.map
      (fun id -> env.patterns <- id :: env.patterns)
      (DB.create_object env.db ~cls:"Data"
         ~name:(Printf.sprintf "pat%d" i)
         ~pattern:true ())
  | CreateSub (p, role) -> (
    match pick (env.objects @ env.patterns) p with
    | None -> Ok ()
    | Some parent ->
      let value =
        if role = "Description" || role = "Keywords" then
          Some (Value.String "x")
        else None
      in
      Result.map
        (fun id -> env.subs <- id :: env.subs)
        (DB.create_sub_object env.db ~parent ~role ?value ()))
  | CreateRel (a, b, assoc) -> (
    match (pick env.objects a, pick env.objects b) with
    | Some x, Some y ->
      Result.map
        (fun _ -> ())
        (DB.create_relationship env.db ~assoc ~endpoints:[ x; y ] ())
    | _ -> Ok ())
  | SetValue (i, v) -> (
    match pick env.subs i with
    | None -> Ok ()
    | Some id ->
      DB.set_value env.db id (Option.map (fun s -> Value.String s) v))
  | Rename (i, n) -> (
    match pick env.objects i with
    | None -> Ok ()
    | Some id -> DB.rename_object env.db id (Printf.sprintf "obj%d" n))
  | Reclassify (i, cls) -> (
    match pick env.objects i with
    | None -> Ok ()
    | Some id -> DB.reclassify env.db id ~to_:cls)
  | Delete i -> (
    match pick (env.objects @ env.subs) i with
    | None -> Ok ()
    | Some id -> DB.delete env.db id)
  | Inherit (p, i) -> (
    match (pick env.patterns p, pick env.objects i) with
    | Some pattern, Some inheritor ->
      DB.inherit_pattern env.db ~pattern ~inheritor
    | _ -> Ok ())

(* A semantic dump of the current view plus the version-tree labels:
   two databases with equal fingerprints are the same database as far
   as the data model is concerned. *)
let fingerprint db =
  let st = DB.raw db in
  let v = View.current st in
  let buf = Buffer.create 1024 in
  Db_state.fold_items st ~init:[] ~f:(fun acc it -> it :: acc)
  |> List.sort (fun (a : Item.t) b -> Ident.compare a.Item.id b.Item.id)
  |> List.iter (fun (it : Item.t) ->
         match View.state v it with
         | None -> ()
         | Some (Item.Obj o) ->
           Buffer.add_string buf
             (Printf.sprintf "O%d:%s:%s:%s:%b:%b:%s;"
                (Ident.to_int it.Item.id)
                (Option.value o.Item.name ~default:"-")
                o.Item.cls
                (match o.Item.value with
                | Some v -> Value.to_string v
                | None -> "-")
                o.Item.pattern o.Item.deleted
                (String.concat ","
                   (List.map
                      (fun i -> string_of_int (Ident.to_int i))
                      o.Item.inherits)))
         | Some (Item.Rel r) ->
           Buffer.add_string buf
             (Printf.sprintf "R%d:%s:%s:%b:%b;"
                (Ident.to_int it.Item.id)
                r.Item.assoc
                (String.concat ","
                   (List.map
                      (fun i -> string_of_int (Ident.to_int i))
                      r.Item.endpoints))
                r.Item.rel_pattern r.Item.rel_deleted));
  Buffer.add_string buf "|";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (n : Seed_core.Versioning.node) ->
            Version_id.to_string n.Seed_core.Versioning.vid)
          (DB.versions db)));
  Buffer.contents buf

(* The incrementally maintained trigram index must equal a wholesale
   rebuild from the item table — checked after the live workload (where
   every create/update/delete/re-classify/rollback/branch maintained it
   hook by hook) and again on the recovered state. *)
let text_index_consistent db =
  let st = DB.raw db in
  match Db_state.text_index st with
  | None -> true
  | Some tx -> Seed_core.Text_index.equal tx (Db_state.rebuilt_text_index st)

(* Runs the whole workload against [dir] through [io]. [acked] always
   holds the fingerprint of the last acknowledged flush; [pending] the
   fingerprint an in-flight flush would establish. A [Faulty.Crash]
   escapes to the caller with both refs at their moment-of-crash
   values. *)
let run ~io ~dir ~partitions ~steps ~acked ~pending =
  let s =
    Seed_error.ok_exn
      (Persist.Session.open_ ~dir ~schema:(schema ()) ~io ~sync:`Always_fsync
         ~partitions ())
  in
  let db = Persist.Session.db s in
  let env = { db; objects = []; subs = []; patterns = []; versions = [] } in
  let flush () =
    pending := Some (fingerprint db);
    Seed_error.ok_exn (Persist.Session.flush s);
    acked := Option.get !pending;
    pending := None
  in
  List.iter
    (fun step ->
      match step with
      | Batch ops ->
        (* all-or-nothing: a failing op rolls the whole batch back via
           the undo log; either way the database is in a transaction
           boundary state, which the flush makes durable *)
        (match
           DB.with_transaction db (fun () ->
               Seed_error.iter_result (apply_op env) ops)
         with
        | Ok () | Error _ -> ());
        flush ()
      | Snapshot ->
        (match DB.create_version db with
        | Ok v -> env.versions <- v :: env.versions
        | Error _ -> ());
        flush ()
      | Branch i ->
        (match pick env.versions i with
        | None -> ()
        | Some v ->
          ignore (DB.begin_alternative db ~from_:v ~force:true ()));
        flush ()
      | Compact -> Seed_error.ok_exn (Persist.Session.compact s))
    steps;
  if not (text_index_consistent db) then
    invalid_arg "soak: incrementally maintained text index diverged";
  Persist.Session.close s

(* ------------------------------------------------------------------ *)
(* Recovered-state invariants                                           *)
(* ------------------------------------------------------------------ *)

let sorted_ids items =
  List.map (fun (it : Item.t) -> it.Item.id) items |> List.sort Ident.compare

let naive_select v p =
  Db_state.fold_items (View.db v) ~init:[] ~f:(fun acc it ->
      if
        it.Item.body = Item.Independent
        && View.live_normal v it
        && Q.test p v it
      then it.Item.id :: acc
      else acc)
  |> List.sort Ident.compare

let naive_select_rels v ~assoc =
  let schema = View.schema v in
  Db_state.fold_items (View.db v) ~init:[] ~f:(fun acc it ->
      match (it.Item.body, View.rel_state v it) with
      | Item.Relationship, Some rs
        when View.live_normal v it
             && Schema.assoc_is_a schema ~sub:rs.Item.assoc ~super:assoc ->
        it.Item.id :: acc
      | _ -> acc)
  |> List.sort Ident.compare

let predicate_pool =
  List.concat_map (fun c -> [ Q.in_class c; Q.is_a c ]) classes
  @ [
      Q.name_is "obj3";
      Q.name_is "no-such-object";
      Q.(in_class "Data" &&& is_a "Thing");
      Q.(in_class "InputData" ||| in_class "OutputData");
      Q.(not_ (is_a "Data"));
      (* text containment: indexed, conjunctive, selective, negative,
         short-needle scan fallback, and combined with a class bound *)
      Q.contains "" "recovery";
      Q.contains "" "v1";
      Q.matches "" [ "spec"; "recovery path" ];
      Q.contains "" "no-such-needle";
      Q.contains "" "v";
      Q.(is_a "Data" &&& contains "" "revises");
    ]

let planner_agrees db =
  let st = DB.raw db in
  let views =
    View.current st
    :: List.map
         (fun (n : Seed_core.Versioning.node) ->
           View.at st n.Seed_core.Versioning.vid)
         (DB.versions db)
  in
  List.for_all
    (fun v ->
      List.for_all
        (fun p ->
          let planned = sorted_ids (Q.select v p) in
          planned = naive_select v p && Q.count v p = List.length planned)
        predicate_pool
      && List.for_all
           (fun assoc ->
             sorted_ids (Q.select_rels v ~assoc) = naive_select_rels v ~assoc)
           ("NoSuchAssoc" :: assocs))
    views

(* ------------------------------------------------------------------ *)
(* The soak loop                                                        *)
(* ------------------------------------------------------------------ *)

exception Soak_failure of string

let failf fmt = Printf.ksprintf (fun m -> raise (Soak_failure m)) fmt

let iteration ~seed ~iter ~partitions ~verbose =
  let rng = Random.State.make [| seed; iter |] in
  let steps = gen_steps rng in
  let empty_fp = fingerprint (DB.create (schema ())) in
  (* dry run: count the workload's I/O steps and make sure it completes *)
  let probe = Faulty.create () in
  let acked = ref empty_fp and pending = ref None in
  run ~io:(Faulty.io probe) ~dir:(tmp_dir ()) ~partitions ~steps ~acked
    ~pending;
  let total = Faulty.steps probe in
  (* a quiet workload (every batch rolled back, deltas empty) can be
     down to a handful of steps; all we need is somewhere to crash *)
  if total < 2 then failf "iteration %d: only %d I/O steps" iter total;
  (* crash run: same workload, crash at a random I/O step *)
  let crash_at = Random.State.int rng total in
  let torn = Random.State.bool rng in
  let dir = tmp_dir () in
  let f = Faulty.create ~crash_at ~torn () in
  let acked = ref empty_fp and pending = ref None in
  (try
     run ~io:(Faulty.io f) ~dir ~partitions ~steps ~acked ~pending;
     failf "iteration %d: crash at step %d/%d did not fire" iter crash_at
       total
   with Faulty.Crash _ -> ());
  (* fsck must run on the crashed directory; on odd iterations let it
     repair, after which recovery must be clean *)
  let report = Seed_error.ok_exn (Store.fsck dir) in
  let repaired = iter mod 2 = 1 in
  if repaired then ignore (Seed_error.ok_exn (Store.fsck ~repair:true dir));
  (* recover and check the invariants *)
  let s = Seed_error.ok_exn (Persist.Session.open_ ~dir ~schema:(schema ()) ()) in
  let db = Persist.Session.db s in
  if repaired && not (Store.recovery_clean (Persist.Session.recovery s)) then
    failf "iteration %d: open not clean after fsck --repair" iter;
  let fp = fingerprint db in
  let where =
    if String.equal fp !acked then Some "acked"
    else
      match !pending with
      | Some p when String.equal fp p -> Some "in-flight"
      | _ -> None
  in
  (match where with
  | Some _ -> ()
  | None ->
    failf
      "iteration %d (crash@%d/%d torn=%b): recovered state is neither the \
       last acknowledged flush nor the in-flight one — a partially applied \
       transaction is visible"
      iter crash_at total torn);
  (match
     Seed_core.Consistency.check_database (View.current (DB.raw db))
   with
  | Ok () -> ()
  | Error e ->
    failf "iteration %d: consistency sweep failed: %s" iter
      (Seed_error.to_string e));
  if not (planner_agrees db) then
    failf "iteration %d: planner disagrees with naive scan after recovery"
      iter;
  if not (text_index_consistent db) then
    failf "iteration %d: text index inconsistent after recovery" iter;
  Persist.Session.close s;
  (* recovery healed the directory: fsck is happy now *)
  let after = Seed_error.ok_exn (Store.fsck dir) in
  if not after.Store.fsck_healthy then
    failf "iteration %d: store unhealthy after recovery:\n%s" iter
      (Format.asprintf "%a" Store.pp_fsck_report after);
  (* read-fault pass: the directory is intact, so wire-level read
     faults must be absorbed by retry and the double-check re-read —
     same state, clean recovery, nothing quarantined or truncated *)
  let probe_r = Faulty.create () in
  let nreads =
    let s =
      Seed_error.ok_exn
        (Persist.Session.open_ ~dir ~schema:(schema ())
           ~io:(Faulty.io probe_r) ())
    in
    Persist.Session.close s;
    max 1 (Faulty.reads probe_r)
  in
  let fault_kind, fr =
    match Random.State.int rng 3 with
    | 0 -> ("transient", Faulty.create ~transient_reads:(1 + Random.State.int rng 3) ())
    | 1 -> ("flip", Faulty.create ~flip_read:(Random.State.int rng nreads) ())
    | _ -> ("short", Faulty.create ~short_read:(Random.State.int rng nreads) ())
  in
  let s =
    Seed_error.ok_exn
      (Persist.Session.open_ ~dir ~schema:(schema ()) ~io:(Faulty.io fr)
         ~sleep:(fun _ -> ()) ())
  in
  let r = Persist.Session.recovery s in
  if not (Store.recovery_clean r) then
    failf "iteration %d: %s read fault not absorbed: %s" iter fault_kind
      (Format.asprintf "%a" Store.pp_recovery r);
  if not (String.equal (fingerprint (Persist.Session.db s)) fp) then
    failf "iteration %d: state differs under %s read fault" iter fault_kind;
  Persist.Session.close s;
  if verbose then
    Printf.printf
      "iter %3d: ops=%d io-steps=%d crash@%d torn=%b dangling=%d \
       read-fault=%s retries=%d -> %s\n%!"
      iter (count_ops steps) total crash_at torn
      report.Store.fsck_dangling_txn_records fault_kind r.Store.io_retries
      (Option.value ~default:"?" where)

let () =
  let iters = ref 25
  and seed = ref 42
  and partitions = ref 1
  and verbose = ref false in
  let spec =
    [
      ("--iters", Arg.Set_int iters, "N  number of iterations (default 25)");
      ("--seed", Arg.Set_int seed, "N  base random seed (default 42)");
      ( "--partitions",
        Arg.Set_int partitions,
        "N  journal partitions for the workload store (default 1)" );
      ("-v", Arg.Set verbose, "  one line per iteration");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "soak [--iters N] [--seed N] [--partitions N] [-v]";
  (try
     for i = 0 to !iters - 1 do
       iteration ~seed:!seed ~iter:i ~partitions:!partitions
         ~verbose:!verbose
     done
   with Soak_failure m ->
     Printf.eprintf "SOAK FAILURE: %s\n%!" m;
     exit 1);
  Printf.printf
    "soak OK: %d iterations (seed %d, %d partition%s), all invariants held\n%!"
    !iters !seed !partitions
    (if !partitions = 1 then "" else "s")
