(* The multi-user sketch: central server, write locks, single-transaction
   check-in (paper, §Discussion / open problems). *)

open Seed_util
open Helpers
module Server = Seed_server.Server
module Client = Seed_server.Client
module Protocol = Seed_server.Protocol
module DB = Seed_core.Database

let schema () = fig3_schema ()

let with_seeded_server () =
  let s = Server.create (schema ()) in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let _ = ok (DB.create_object db ~cls:"Action" ~name:"Handler" ()) in
  s

let test_checkout_locks () =
  let s = with_seeded_server () in
  check_ok "alice" (Server.checkout s ~client:"alice" ~names:[ "Alarms" ]);
  Alcotest.(check (list string)) "alice holds" [ "Alarms" ]
    (Server.locked_by s ~client:"alice");
  check_err "bob blocked"
    (function Seed_error.Locked _ -> true | _ -> false)
    (Server.checkout s ~client:"bob" ~names:[ "Alarms" ]);
  (* disjoint checkout fine *)
  check_ok "bob other" (Server.checkout s ~client:"bob" ~names:[ "Handler" ]);
  (* all-or-nothing: overlapping set acquires nothing *)
  check_err "partial conflict"
    (function Seed_error.Locked _ -> true | _ -> false)
    (Server.checkout s ~client:"bob" ~names:[ "Handler"; "Alarms" ]);
  Server.release s ~client:"alice";
  check_ok "bob after release" (Server.checkout s ~client:"bob" ~names:[ "Alarms" ])

let test_checkout_requires_existing () =
  let s = with_seeded_server () in
  check_err "ghost"
    (function Seed_error.Unknown_object _ -> true | _ -> false)
    (Server.checkout s ~client:"alice" ~names:[ "Ghost" ])

let test_checkin_requires_locks () =
  let s = with_seeded_server () in
  check_err "unlocked write"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (Server.checkin s ~client:"alice"
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ])

let test_checkin_applies_and_releases () =
  let s = with_seeded_server () in
  check_ok "checkout" (Server.checkout s ~client:"alice" ~names:[ "Alarms"; "Handler" ]);
  check_ok "checkin"
    (Server.checkin s ~client:"alice"
       [
         Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" };
         Protocol.Create_rel
           { assoc = "Read"; endpoints = [ "Alarms"; "Handler" ]; pattern = false };
         Protocol.Create_sub
           {
             owner = "Alarms";
             role = "Description";
             index = None;
             value = Some (Seed_schema.Value.String "checked in");
           };
       ]);
  let db = Server.database s in
  let alarms = Option.get (DB.find_object db "Alarms") in
  Alcotest.(check (option string)) "applied" (Some "InputData") (DB.class_of db alarms);
  Alcotest.(check int) "rel there" 1 (List.length (DB.relationships db alarms));
  Alcotest.(check (list string)) "locks released" []
    (Server.locked_by s ~client:"alice");
  Alcotest.(check int) "counted" 1 (Server.checkin_count s)

let test_checkin_is_atomic () =
  let s = with_seeded_server () in
  check_ok "checkout" (Server.checkout s ~client:"alice" ~names:[ "Alarms"; "Handler" ]);
  (* second op fails (Read needs InputData); first must be rolled back *)
  check_err "fails"
    (function Seed_error.Membership_violation _ -> true | _ -> false)
    (Server.checkin s ~client:"alice"
       [
         Protocol.Rename { name = "Alarms"; new_name = "Alerts" };
         Protocol.Create_rel
           { assoc = "Read"; endpoints = [ "Alerts"; "Handler" ]; pattern = false };
       ]);
  let db = Server.database s in
  Alcotest.(check bool) "rename rolled back" true (DB.find_object db "Alarms" <> None);
  Alcotest.(check (option Alcotest.reject)) "no Alerts" None (DB.find_object db "Alerts");
  (* locks kept so the client can amend and retry *)
  Alcotest.(check bool) "locks kept" true (Server.locked_by s ~client:"alice" <> []);
  check_ok "retry"
    (Server.checkin s ~client:"alice"
       [
         Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" };
         Protocol.Rename { name = "Alarms"; new_name = "Alerts" };
         Protocol.Create_rel
           { assoc = "Read"; endpoints = [ "Alerts"; "Handler" ]; pattern = false };
       ]);
  Alcotest.(check bool) "applied after retry" true (DB.find_object db "Alerts" <> None)

let test_checkin_rollback_mixed_batch () =
  (* every kind of applied mutation is undone when a later op fails:
     creations vanish, renames revert, values come back *)
  let s = with_seeded_server () in
  let db = Server.database s in
  let alarms = Option.get (DB.find_object db "Alarms") in
  let desc =
    ok
      (DB.create_sub_object db ~parent:alarms ~role:"Description"
         ~value:(Seed_schema.Value.String "old") ())
  in
  check_ok "checkout"
    (Server.checkout s ~client:"alice" ~names:[ "Alarms"; "Handler" ]);
  let before_count = DB.object_count db in
  check_err "batch fails at the end" is_duplicate
    (Server.checkin s ~client:"alice"
       [
         Protocol.Create_object
           { cls = "InputData"; name = "Fresh"; pattern = false };
         Protocol.Create_rel
           { assoc = "Read"; endpoints = [ "Fresh"; "Handler" ]; pattern = false };
         Protocol.Set_value
           {
             path = "Alarms.Description";
             value = Some (Seed_schema.Value.String "new");
           };
         Protocol.Rename { name = "Alarms"; new_name = "Sirens" };
         Protocol.Create_sub
           { owner = "Sirens"; role = "Keywords"; index = None;
             value = Some (Seed_schema.Value.String "k") };
         (* the failure: "Handler" already exists *)
         Protocol.Create_object { cls = "Data"; name = "Handler"; pattern = false };
       ]);
  Alcotest.(check (option Alcotest.reject)) "created object gone" None
    (DB.find_object db "Fresh");
  Alcotest.(check (option Alcotest.reject)) "rename reverted" None
    (DB.find_object db "Sirens");
  Alcotest.(check bool) "old name back" true
    (DB.find_object db "Alarms" = Some alarms);
  Alcotest.(check bool) "value restored" true
    (DB.get_value db desc = Some (Seed_schema.Value.String "old"));
  Alcotest.(check (option Alcotest.reject)) "created sub gone" None
    (DB.resolve db "Alarms.Keywords");
  let handler = Option.get (DB.find_object db "Handler") in
  Alcotest.(check (list Alcotest.reject)) "relationship gone" []
    (DB.relationships db handler);
  Alcotest.(check int) "object count unchanged" before_count
    (DB.object_count db);
  Alcotest.(check bool) "locks kept" true
    (Server.locked_by s ~client:"alice" <> []);
  check_ok "rolled-back state is consistent"
    (Seed_core.Consistency.check_database
       (Seed_core.View.current (DB.raw db)));
  (* the same batch minus the bad op goes through on the kept locks *)
  check_ok "retry"
    (Server.checkin s ~client:"alice"
       [
         Protocol.Create_object
           { cls = "InputData"; name = "Fresh"; pattern = false };
         Protocol.Create_rel
           { assoc = "Read"; endpoints = [ "Fresh"; "Handler" ]; pattern = false };
         Protocol.Set_value
           {
             path = "Alarms.Description";
             value = Some (Seed_schema.Value.String "new");
           };
         Protocol.Rename { name = "Alarms"; new_name = "Sirens" };
       ]);
  Alcotest.(check bool) "applied after retry" true
    (DB.find_object db "Sirens" = Some alarms)

let test_rename_collision_needs_target_lock () =
  (* renaming onto an existing object's name contends with that object:
     the target must be covered by the client's locks; a fresh target
     name needs none *)
  let s = with_seeded_server () in
  check_ok "checkout source only"
    (Server.checkout s ~client:"alice" ~names:[ "Alarms" ]);
  check_err "collision without target lock"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (Server.checkin s ~client:"alice"
       [ Protocol.Rename { name = "Alarms"; new_name = "Handler" } ]);
  check_ok "fresh target needs no lock"
    (Server.checkin s ~client:"alice"
       [ Protocol.Rename { name = "Alarms"; new_name = "Klaxons" } ])

let test_touches_roots_and_rename () =
  let t op = List.sort String.compare (Protocol.touches op) in
  Alcotest.(check (list string)) "rel endpoints reduce to roots" [ "A"; "B" ]
    (t (Protocol.Create_rel
          { assoc = "R"; endpoints = [ "A.Sub"; "B" ]; pattern = false }));
  Alcotest.(check (list string)) "reclassify_rel too" [ "A"; "B" ]
    (t (Protocol.Reclassify_rel
          { assoc = "R"; endpoints = [ "A.Sub.Deep"; "B" ]; to_ = "S" }));
  Alcotest.(check (list string)) "rename lists both ends" [ "New"; "Old" ]
    (t (Protocol.Rename { name = "Old"; new_name = "New" }));
  Alcotest.(check (list string)) "create_object is fresh" []
    (t (Protocol.Create_object { cls = "C"; name = "X"; pattern = false }))

let test_two_clients_disjoint_edits () =
  let s = with_seeded_server () in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Config" ()) in
  check_ok "alice" (Server.checkout s ~client:"alice" ~names:[ "Alarms" ]);
  check_ok "bob" (Server.checkout s ~client:"bob" ~names:[ "Config" ]);
  check_ok "alice in"
    (Server.checkin s ~client:"alice"
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "OutputData" } ]);
  check_ok "bob in"
    (Server.checkin s ~client:"bob"
       [ Protocol.Reclassify_obj { name = "Config"; to_ = "InputData" } ]);
  Alcotest.(check (option string)) "alice's edit" (Some "OutputData")
    (DB.class_of db (Option.get (DB.find_object db "Alarms")));
  Alcotest.(check (option string)) "bob's edit" (Some "InputData")
    (DB.class_of db (Option.get (DB.find_object db "Config")))

let test_client_api () =
  let s = with_seeded_server () in
  let alice = Client.connect s ~name:"alice" in
  check_ok "checkout" (Client.checkout alice [ "Alarms" ]);
  Client.stage alice (Protocol.Reclassify_obj { name = "Alarms"; to_ = "Data" });
  Client.stage alice
    (Protocol.Create_sub
       { owner = "Alarms"; role = "Keywords"; index = None;
         value = Some (Seed_schema.Value.String "alarm") });
  Alcotest.(check int) "staged" 2 (List.length (Client.staged alice));
  check_ok "commit" (Client.commit alice);
  Alcotest.(check int) "queue cleared" 0 (List.length (Client.staged alice));
  Alcotest.(check bool) "visible" true (Client.retrieve alice "Alarms" <> None)

let test_client_abort () =
  let s = with_seeded_server () in
  let alice = Client.connect s ~name:"alice" in
  check_ok "checkout" (Client.checkout alice [ "Alarms" ]);
  Client.stage alice (Protocol.Delete { path = "Alarms" });
  Client.abort alice;
  Alcotest.(check int) "queue dropped" 0 (List.length (Client.staged alice));
  Alcotest.(check (list string)) "locks released" []
    (Server.locked_by s ~client:"alice");
  let db = Server.database s in
  Alcotest.(check bool) "nothing applied" true (DB.find_object db "Alarms" <> None)

(* --- lock leases ------------------------------------------------------ *)

module Lock_table = Seed_server.Lock_table

let test_lock_table_lease_refresh () =
  let clock = ref 0.0 in
  let lt = Lock_table.create ~now:(fun () -> !clock) () in
  check_ok "lease" (Lock_table.acquire lt ~client:"a" ~ttl:10.0 [ "X" ]);
  Alcotest.(check (option (float 1e-6))) "expiry set" (Some 10.0)
    (Lock_table.expires_at lt "X");
  clock := 8.0;
  check_ok "re-acquire refreshes" (Lock_table.acquire lt ~client:"a" ~ttl:10.0 [ "X" ]);
  Alcotest.(check (option (float 1e-6))) "lease pushed out" (Some 18.0)
    (Lock_table.expires_at lt "X");
  clock := 12.0;
  Alcotest.(check (option string)) "still held" (Some "a")
    (Lock_table.holder lt "X");
  clock := 19.0;
  Alcotest.(check (option string)) "lapsed reads as free" None
    (Lock_table.holder lt "X");
  (* an expired name is immediately acquirable, and a permanent
     re-acquire clears the lease *)
  check_ok "retake" (Lock_table.acquire lt ~client:"b" [ "X" ]);
  Alcotest.(check (option (float 1e-6))) "no expiry" None
    (Lock_table.expires_at lt "X")

let test_lease_expiry_unblocks () =
  let clock = ref 0.0 in
  let s = Server.create ~now:(fun () -> !clock) (schema ()) in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  check_ok "alice leases"
    (Server.checkout_lease s ~client:"alice" ~ttl:10.0 ~names:[ "Alarms" ]);
  check_err "bob blocked while live"
    (function Seed_error.Locked _ -> true | _ -> false)
    (Server.checkout s ~client:"bob" ~names:[ "Alarms" ]);
  clock := 11.0;
  Alcotest.(check (list string)) "lease lapsed" []
    (Server.locked_by s ~client:"alice");
  (* the dead client's check-in no longer covers the object *)
  check_err "stale checkin refused"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (Server.checkin s ~client:"alice"
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ]);
  check_ok "bob takes over without expire_stale"
    (Server.checkout s ~client:"bob" ~names:[ "Alarms" ]);
  check_ok "bob's edit lands"
    (Server.checkin s ~client:"bob"
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "OutputData" } ])

let test_expire_stale_reaps () =
  let clock = ref 0.0 in
  let s = Server.create ~now:(fun () -> !clock) (schema ()) in
  let db = Server.database s in
  List.iter
    (fun n -> ignore (ok (DB.create_object db ~cls:"Data" ~name:n ())))
    [ "A"; "B"; "C" ];
  check_ok "leased"
    (Server.checkout_lease s ~client:"alice" ~ttl:5.0 ~names:[ "A"; "B" ]);
  check_ok "permanent" (Server.checkout s ~client:"bob" ~names:[ "C" ]);
  Alcotest.(check (list (pair string string))) "nothing stale yet" []
    (Server.expire_stale s);
  clock := 6.0;
  Alcotest.(check (list (pair string string))) "leases reaped"
    [ ("A", "alice"); ("B", "alice") ]
    (Server.expire_stale s);
  Alcotest.(check (list string)) "permanent lock untouched" [ "C" ]
    (Server.locked_by s ~client:"bob");
  Alcotest.(check (list (pair string string))) "reap is idempotent" []
    (Server.expire_stale s)

let test_lease_boundary_exact_expiry () =
  (* the lease boundary is inclusive: at exactly [expires = now] the
     lock reads as free, covers nothing, and is acquirable *)
  let clock = ref 0.0 in
  let lt = Lock_table.create ~now:(fun () -> !clock) () in
  check_ok "lease" (Lock_table.acquire lt ~client:"a" ~ttl:5.0 [ "X" ]);
  clock := 4.999;
  Alcotest.(check (option string)) "held just before" (Some "a")
    (Lock_table.holder lt "X");
  check_ok "still covers" (Lock_table.covers lt ~client:"a" [ "X" ]);
  clock := 5.0;
  Alcotest.(check (option string)) "free at the boundary" None
    (Lock_table.holder lt "X");
  Alcotest.(check (list string)) "held_by empty" []
    (Lock_table.held_by lt ~client:"a");
  check_err "no longer covers"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (Lock_table.covers lt ~client:"a" [ "X" ]);
  (* the holder changes hands exactly at expiry, no grace period *)
  check_ok "b takes at boundary" (Lock_table.acquire lt ~client:"b" ~ttl:5.0 [ "X" ]);
  Alcotest.(check (option string)) "new holder" (Some "b")
    (Lock_table.holder lt "X");
  Alcotest.(check (option (float 1e-6))) "fresh ttl from now" (Some 10.0)
    (Lock_table.expires_at lt "X")

let test_acquire_reaps_expired () =
  (* every acquisition sweeps expired leases out of the table, even for
     unrelated names: expire_stale afterwards finds nothing left *)
  let clock = ref 0.0 in
  let lt = Lock_table.create ~now:(fun () -> !clock) () in
  check_ok "a leases" (Lock_table.acquire lt ~client:"a" ~ttl:5.0 [ "X"; "Y" ]);
  clock := 6.0;
  check_ok "b acquires elsewhere" (Lock_table.acquire lt ~client:"b" [ "Z" ]);
  Alcotest.(check (list (pair string string))) "already reaped" []
    (Lock_table.expire_stale lt)

let test_acquire_wait_succeeds_after_release () =
  let clock = ref 0.0 in
  let lt = Lock_table.create ~now:(fun () -> !clock) () in
  check_ok "a holds" (Lock_table.acquire lt ~client:"a" [ "X" ]);
  let delays = ref [] in
  let sleep d =
    delays := d :: !delays;
    clock := !clock +. d;
    (* the holder finishes its work after the second backoff *)
    if List.length !delays = 2 then Lock_table.release_all lt ~client:"a"
  in
  check_ok "b waits it out"
    (Lock_table.acquire_wait lt ~client:"b" ~sleep ~timeout:60.0 [ "X" ]);
  Alcotest.(check (option string)) "b holds now" (Some "b")
    (Lock_table.holder lt "X");
  Alcotest.(check int) "two waits" 2 (List.length !delays);
  Alcotest.(check bool) "backoff grows" true
    (match !delays with [ d2; d1 ] -> d2 > d1 | _ -> false)

let test_acquire_wait_times_out () =
  let clock = ref 0.0 in
  let lt = Lock_table.create ~now:(fun () -> !clock) () in
  check_ok "a holds" (Lock_table.acquire lt ~client:"a" [ "X" ]);
  let sleep d = clock := !clock +. d in
  check_err "locked after deadline"
    (function
      | Seed_error.Locked { item = "X"; holder = "a" } -> true | _ -> false)
    (Lock_table.acquire_wait lt ~client:"b" ~sleep ~timeout:0.05 [ "X" ]);
  Alcotest.(check bool) "clock advanced past deadline" true (!clock >= 0.05);
  (* the failed waiter left no wait-for edge behind: a fresh third
     client sees no phantom cycle through b *)
  check_ok "c acquires free name" (Lock_table.acquire lt ~client:"c" [ "Y" ])

let test_deadlock_detected_and_broken () =
  (* a holds X and wants Y; b holds Y and, from inside a's backoff,
     wants X — the classic cycle. b closes it, so b is the victim:
     its locks are released and a's next attempt succeeds. *)
  let clock = ref 0.0 in
  let lt = Lock_table.create ~now:(fun () -> !clock) () in
  check_ok "a holds X" (Lock_table.acquire lt ~client:"a" [ "X" ]);
  check_ok "b holds Y" (Lock_table.acquire lt ~client:"b" [ "Y" ]);
  let b_result = ref None in
  let a_sleep _ =
    if !b_result = None then
      b_result :=
        Some
          (Lock_table.acquire_wait lt ~client:"b" ~sleep:(fun _ -> ())
             ~timeout:10.0 [ "X" ])
  in
  check_ok "a eventually wins"
    (Lock_table.acquire_wait lt ~client:"a" ~sleep:a_sleep ~timeout:10.0 [ "Y" ]);
  (match !b_result with
  | Some (Error (Seed_error.Deadlock { victim; cycle })) ->
    Alcotest.(check string) "victim is the closer" "b" victim;
    Alcotest.(check (list string)) "cycle path" [ "b"; "a"; "b" ] cycle
  | _ -> Alcotest.fail "expected b to be aborted as deadlock victim");
  Alcotest.(check (list string)) "victim's locks released" []
    (Lock_table.held_by lt ~client:"b");
  Alcotest.(check (list string)) "survivor holds both" [ "X"; "Y" ]
    (Lock_table.held_by lt ~client:"a")

let test_server_checkout_wait () =
  let clock = ref 0.0 in
  let s = Server.create ~now:(fun () -> !clock) (schema ()) in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  check_ok "alice takes" (Server.checkout s ~client:"alice" ~names:[ "Alarms" ]);
  (* names must exist even on the waiting path *)
  check_err "ghost refused"
    (function Seed_error.Unknown_object _ -> true | _ -> false)
    (Server.checkout_wait s ~client:"bob" ~sleep:(fun _ -> ()) ~timeout:1.0
       ~names:[ "Ghost" ] ());
  let sleeps = ref 0 in
  let sleep d =
    incr sleeps;
    clock := !clock +. d;
    if !sleeps = 1 then Server.release s ~client:"alice"
  in
  check_ok "bob blocks then wins"
    (Server.checkout_wait s ~client:"bob" ~sleep ~timeout:60.0
       ~names:[ "Alarms" ] ());
  Alcotest.(check (list string)) "bob holds" [ "Alarms" ]
    (Server.locked_by s ~client:"bob");
  (* and with a lease: the waited-for lock expires like any other *)
  Server.release s ~client:"bob";
  check_ok "carol leases via wait"
    (Server.checkout_wait s ~client:"carol" ~ttl:5.0 ~sleep:(fun _ -> ())
       ~timeout:1.0 ~names:[ "Alarms" ] ());
  clock := !clock +. 6.0;
  Alcotest.(check (list string)) "lease lapsed" []
    (Server.locked_by s ~client:"carol")

(* --- session bulk release, heartbeats, occupancy ---------------------- *)

let test_release_session_bulk () =
  let s = Server.create (schema ()) in
  let db = Server.database s in
  List.iter
    (fun n -> ignore (ok (DB.create_object db ~cls:"Data" ~name:n ())))
    [ "A"; "B"; "C" ];
  check_ok "alice leases"
    (Server.checkout_lease s ~client:"alice" ~ttl:10.0 ~names:[ "B"; "A" ]);
  check_ok "bob holds" (Server.checkout s ~client:"bob" ~names:[ "C" ]);
  Alcotest.(check (list string)) "freed, sorted" [ "A"; "B" ]
    (Server.release_session s ~client:"alice");
  Alcotest.(check (list string)) "alice empty" []
    (Server.locked_by s ~client:"alice");
  Alcotest.(check (list string)) "bob untouched" [ "C" ]
    (Server.locked_by s ~client:"bob");
  Alcotest.(check (list string)) "idempotent" []
    (Server.release_session s ~client:"alice")

let test_refresh_leases_heartbeat () =
  let clock = ref 0.0 in
  let s = Server.create ~now:(fun () -> !clock) (schema ()) in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  check_ok "lease"
    (Server.checkout_lease s ~client:"alice" ~ttl:5.0 ~names:[ "Alarms" ]);
  (* heartbeats at 4 and 8 carry the lease to 13 — past the original
     expiry twice over *)
  clock := 4.0;
  Server.refresh_leases s ~client:"alice" ~ttl:5.0;
  clock := 8.0;
  Server.refresh_leases s ~client:"alice" ~ttl:5.0;
  clock := 12.9;
  Alcotest.(check (list string)) "still held" [ "Alarms" ]
    (Server.locked_by s ~client:"alice");
  clock := 13.0;
  Alcotest.(check (list string)) "lapsed" []
    (Server.locked_by s ~client:"alice");
  (* a heartbeat after death resurrects nothing *)
  Server.refresh_leases s ~client:"alice" ~ttl:5.0;
  Alcotest.(check (list string)) "stays gone" []
    (Server.locked_by s ~client:"alice")

let test_lock_stats_occupancy () =
  let clock = ref 0.0 in
  let s = Server.create ~now:(fun () -> !clock) (schema ()) in
  let db = Server.database s in
  List.iter
    (fun n -> ignore (ok (DB.create_object db ~cls:"Data" ~name:n ())))
    [ "X"; "Y"; "Z" ];
  check_ok "permanent" (Server.checkout s ~client:"a" ~names:[ "X" ]);
  check_ok "leased"
    (Server.checkout_lease s ~client:"b" ~ttl:5.0 ~names:[ "Y"; "Z" ]);
  let st = Server.lock_stats s in
  Alcotest.(check int) "held" 3 st.Lock_table.locks_held;
  Alcotest.(check int) "leased" 2 st.Lock_table.locks_leased;
  Alcotest.(check int) "expired" 0 st.Lock_table.locks_expired;
  Alcotest.(check int) "waiters" 0 st.Lock_table.waiters;
  (* past the ttl the leases read as expired-but-unreaped until some
     acquisition (or expire_stale) sweeps them *)
  clock := 6.0;
  let st = Server.lock_stats s in
  Alcotest.(check int) "held after lapse" 1 st.Lock_table.locks_held;
  Alcotest.(check int) "leased after lapse" 0 st.Lock_table.locks_leased;
  Alcotest.(check int) "expired unreaped" 2 st.Lock_table.locks_expired;
  let _ = Server.expire_stale s in
  let st = Server.lock_stats s in
  Alcotest.(check int) "swept" 0 st.Lock_table.locks_expired

(* --- lease-expiry races ----------------------------------------------- *)

let test_checkin_exactly_at_lease_expiry () =
  (* the race the network layer must survive: a client's lease runs out
     at the very instant its check-in arrives. The boundary is inclusive
     (expires = now reads as free), so the answer is a deterministic
     refusal — and the object is immediately safe for others to take *)
  let clock = ref 0.0 in
  let s = Server.create ~now:(fun () -> !clock) (schema ()) in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let _ = ok (DB.create_object db ~cls:"Action" ~name:"Handler" ()) in
  check_ok "lease"
    (Server.checkout_lease s ~client:"alice" ~ttl:5.0
       ~names:[ "Alarms"; "Handler" ]);
  clock := 5.0;
  check_err "refused at the boundary"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (Server.checkin s ~client:"alice"
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ]);
  Alcotest.(check int) "nothing counted" 0 (Server.checkin_count s);
  let alarms = Option.get (DB.find_object db "Alarms") in
  Alcotest.(check (option string)) "nothing applied" (Some "Data")
    (DB.class_of db alarms);
  check_ok "bob takes over at the same instant"
    (Server.checkout s ~client:"bob" ~names:[ "Alarms"; "Handler" ]);
  (* one tick earlier the same check-in lands *)
  Server.release s ~client:"bob";
  check_ok "re-lease"
    (Server.checkout_lease s ~client:"alice" ~ttl:5.0 ~names:[ "Alarms" ]);
  clock := 9.999;
  check_ok "applies just inside the lease"
    (Server.checkin s ~client:"alice"
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ])

let test_expiry_race_never_partial () =
  (* a batch mixing lock-free ops (fresh creations) with ops on an
     expired lease must be refused as a whole: the fresh object must not
     exist afterwards *)
  let clock = ref 0.0 in
  let s = Server.create ~now:(fun () -> !clock) (schema ()) in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  check_ok "lease"
    (Server.checkout_lease s ~client:"alice" ~ttl:5.0 ~names:[ "Alarms" ]);
  clock := 5.0;
  check_err "whole batch refused"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (Server.checkin s ~client:"alice"
       [
         Protocol.Create_object { cls = "Data"; name = "Fresh"; pattern = false };
         Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" };
       ]);
  Alcotest.(check (option Alcotest.reject)) "no partial batch" None
    (DB.find_object db "Fresh");
  Alcotest.(check (option string)) "target untouched" (Some "Data")
    (DB.class_of db (Option.get (DB.find_object db "Alarms")))

let test_versions_server_controlled () =
  let s = with_seeded_server () in
  let v1 = ok (Server.create_version s) in
  Alcotest.(check string) "1.0" "1.0" (Version_id.to_string v1);
  check_ok "checkout" (Server.checkout s ~client:"alice" ~names:[ "Alarms" ]);
  check_ok "edit"
    (Server.checkin s ~client:"alice"
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "OutputData" } ]);
  let v2 = ok (Server.create_version s) in
  Alcotest.(check string) "2.0" "2.0" (Version_id.to_string v2);
  (* the old version is still retrievable through the server's database *)
  let db = Server.database s in
  ok (DB.select_version db (Some v1));
  Alcotest.(check (option string)) "old state" (Some "Data")
    (DB.class_of db (Option.get (DB.find_object db "Alarms")));
  ok (DB.select_version db None)

let test_pattern_ops_through_protocol () =
  let s = Server.create (schema ()) in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Template" ~pattern:true ()) in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Instance" ()) in
  check_ok "checkout" (Server.checkout s ~client:"alice" ~names:[ "Template"; "Instance" ]);
  check_ok "inherit via protocol"
    (Server.checkin s ~client:"alice"
       [ Protocol.Inherit { pattern = "Template"; inheritor = "Instance" } ]);
  let p = Option.get (DB.find_pattern db "Template") in
  Alcotest.(check int) "inherited" 1 (List.length (DB.inheritors db p))

let test_protocol_printing () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "printable" true
        (String.length (Fmt.str "%a" Protocol.pp op) > 0))
    [
      Protocol.Create_object { cls = "Data"; name = "X"; pattern = true };
      Protocol.Create_sub { owner = "X"; role = "r"; index = Some 1; value = None };
      Protocol.Create_rel { assoc = "A"; endpoints = [ "X"; "Y" ]; pattern = false };
      Protocol.Set_value { path = "X.r"; value = None };
      Protocol.Rename { name = "X"; new_name = "Y" };
      Protocol.Reclassify_obj { name = "X"; to_ = "Data" };
      Protocol.Reclassify_rel { assoc = "A"; endpoints = [ "X"; "Y" ]; to_ = "B" };
      Protocol.Delete { path = "X" };
      Protocol.Inherit { pattern = "P"; inheritor = "X" };
    ]

let () =
  Alcotest.run "server"
    [
      ( "locks",
        [
          tc "checkout" test_checkout_locks;
          tc "existence" test_checkout_requires_existing;
          tc "checkin needs locks" test_checkin_requires_locks;
        ] );
      ( "transactions",
        [
          tc "apply and release" test_checkin_applies_and_releases;
          tc "atomic rollback" test_checkin_is_atomic;
          tc "mixed-batch rollback" test_checkin_rollback_mixed_batch;
          tc "rename collision locking" test_rename_collision_needs_target_lock;
          tc "touches" test_touches_roots_and_rename;
          tc "disjoint clients" test_two_clients_disjoint_edits;
        ] );
      ( "leases",
        [
          tc "lock table ttl" test_lock_table_lease_refresh;
          tc "expiry unblocks" test_lease_expiry_unblocks;
          tc "expire_stale" test_expire_stale_reaps;
          tc "exact-expiry boundary" test_lease_boundary_exact_expiry;
          tc "acquire reaps expired" test_acquire_reaps_expired;
        ] );
      ( "sessions",
        [
          tc "bulk release" test_release_session_bulk;
          tc "heartbeat refresh" test_refresh_leases_heartbeat;
          tc "occupancy stats" test_lock_stats_occupancy;
          tc "checkin at exact expiry" test_checkin_exactly_at_lease_expiry;
          tc "expiry never partial" test_expiry_race_never_partial;
        ] );
      ( "blocking checkout",
        [
          tc "wait then acquire" test_acquire_wait_succeeds_after_release;
          tc "timeout" test_acquire_wait_times_out;
          tc "deadlock broken" test_deadlock_detected_and_broken;
          tc "server checkout_wait" test_server_checkout_wait;
        ] );
      ( "clients",
        [ tc "stage and commit" test_client_api; tc "abort" test_client_abort ] );
      ( "server features",
        [
          tc "global versions" test_versions_server_controlled;
          tc "patterns via protocol" test_pattern_ops_through_protocol;
          tc "protocol printing" test_protocol_printing;
        ] );
    ]
