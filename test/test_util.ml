open Seed_util
open Helpers

(* ------------------------------------------------------------------ *)
(* Path                                                                 *)
(* ------------------------------------------------------------------ *)

let path_roundtrip s () =
  let p = Path.of_string_exn s in
  Alcotest.(check string) "roundtrip" s (Path.to_string p)

let test_path_parse_simple () =
  let p = Path.of_string_exn "Alarms" in
  Alcotest.(check int) "depth" 1 (Path.depth p);
  Alcotest.(check bool) "root" true (Path.is_root p);
  Alcotest.(check string) "basename" "Alarms" (Path.basename p)

let test_path_parse_nested () =
  let p = Path.of_string_exn "Alarms.Text.Body.Keywords[1]" in
  Alcotest.(check int) "depth" 4 (Path.depth p);
  Alcotest.(check string) "basename" "Keywords" (Path.basename p);
  let last = Path.last p in
  Alcotest.(check (option int)) "index" (Some 1) last.Path.index

let test_path_parent () =
  let p = Path.of_string_exn "A.B.C" in
  let parent = Option.get (Path.parent p) in
  Alcotest.(check string) "parent" "A.B" (Path.to_string parent);
  Alcotest.(check (option reject)) "root has no parent" None
    (Path.parent (Path.root "A"))

let test_path_child () =
  let p = Path.child ~index:3 (Path.root "A") "Kw" in
  Alcotest.(check string) "child" "A.Kw[3]" (Path.to_string p)

let test_path_bad () =
  let bad s =
    check_err s (function Seed_error.Invalid_operation _ -> true | _ -> false)
      (Path.of_string s)
  in
  bad "";
  bad "A..B";
  bad "A.";
  bad ".A";
  bad "A[";
  bad "A[x]";
  bad "A[-1]";
  bad "A[1";
  bad "A]b"

let test_path_class_path () =
  let p = Path.of_string_exn "Alarms.Text[2].Body" in
  Alcotest.(check string) "class path" "Alarms.Text.Body"
    (Path.class_path_string p)

let test_path_prefix () =
  let p = Path.of_string_exn "A.B" and q = Path.of_string_exn "A.B.C" in
  Alcotest.(check bool) "prefix" true (Path.is_prefix p q);
  Alcotest.(check bool) "not prefix" false (Path.is_prefix q p);
  Alcotest.(check bool) "self" true (Path.is_prefix p p)

let test_path_compare () =
  let a = Path.of_string_exn "A.B" and b = Path.of_string_exn "A.C" in
  Alcotest.(check bool) "lt" true (Path.compare a b < 0);
  Alcotest.(check bool) "eq" true (Path.compare a a = 0);
  let i1 = Path.of_string_exn "A.K[1]" and i2 = Path.of_string_exn "A.K[2]" in
  Alcotest.(check bool) "index order" true (Path.compare i1 i2 < 0)

let path_gen =
  let open QCheck2.Gen in
  let component =
    let* name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
    let* index = opt (int_range 0 99) in
    return { Path.name; index }
  in
  list_size (int_range 1 5) component

let prop_path_roundtrip =
  qcheck_case "path to_string/of_string roundtrip" path_gen (fun p ->
      Path.equal p (Path.of_string_exn (Path.to_string p)))

(* ------------------------------------------------------------------ *)
(* Version_id                                                           *)
(* ------------------------------------------------------------------ *)

let test_vid_trunk () =
  let v = Version_id.trunk 3 in
  Alcotest.(check string) "print" "3.0" (Version_id.to_string v);
  Alcotest.(check bool) "trunk" true (Version_id.is_trunk v);
  Alcotest.(check int) "major" 3 (Version_id.major v)

let test_vid_child () =
  let v = Version_id.trunk 1 in
  let b1 = Version_id.child v 1 in
  Alcotest.(check string) "branch" "1.1" (Version_id.to_string b1);
  Alcotest.(check bool) "branch not trunk" false (Version_id.is_trunk b1);
  let b11 = Version_id.child b1 1 in
  Alcotest.(check string) "nested branch" "1.1.1" (Version_id.to_string b11)

let test_vid_parse () =
  let v = Version_id.of_string_exn "2.0" in
  Alcotest.(check bool) "eq" true (Version_id.equal v (Version_id.trunk 2));
  check_err "empty" (fun _ -> true) (Version_id.of_string "");
  check_err "alpha" (fun _ -> true) (Version_id.of_string "1.a");
  check_err "negative" (fun _ -> true) (Version_id.of_string "1.-2")

let test_vid_order () =
  let v a = Version_id.of_string_exn a in
  Alcotest.(check bool) "1.0 < 2.0" true (Version_id.compare (v "1.0") (v "2.0") < 0);
  Alcotest.(check bool) "1.0 < 1.1" true (Version_id.compare (v "1.0") (v "1.1") < 0);
  Alcotest.(check bool) "1.1 < 1.1.1" true (Version_id.compare (v "1.1") (v "1.1.1") < 0)

let test_vid_invalid_args () =
  Alcotest.check_raises "trunk 0" (Invalid_argument "Version_id.trunk: major must be >= 1")
    (fun () -> ignore (Version_id.trunk 0));
  Alcotest.check_raises "child 0" (Invalid_argument "Version_id.child: index must be >= 1")
    (fun () -> ignore (Version_id.child (Version_id.trunk 1) 0))

let vid_gen =
  QCheck2.Gen.(list_size (int_range 1 4) (int_range 0 20))

let prop_vid_roundtrip =
  qcheck_case "version id roundtrip" vid_gen (fun ints ->
      match Version_id.of_ints ints with
      | Ok v ->
        Version_id.equal v (Version_id.of_string_exn (Version_id.to_string v))
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Ident                                                                *)
(* ------------------------------------------------------------------ *)

let test_ident_gen () =
  let g = Ident.Gen.create () in
  let a = Ident.Gen.next g and b = Ident.Gen.next g in
  Alcotest.(check bool) "distinct" false (Ident.equal a b);
  Alcotest.(check string) "printed" "#1" (Ident.to_string a);
  Alcotest.(check int) "current" 2 (Ident.Gen.current g)

let test_ident_mark_used () =
  let g = Ident.Gen.create () in
  Ident.Gen.mark_used g (Ident.of_int 10);
  let next = Ident.Gen.next g in
  Alcotest.(check int) "skips used" 11 (Ident.to_int next);
  Ident.Gen.mark_used g (Ident.of_int 5);
  Alcotest.(check int) "never goes back" 12 (Ident.to_int (Ident.Gen.next g))

(* ------------------------------------------------------------------ *)
(* Seed_error combinators                                               *)
(* ------------------------------------------------------------------ *)

let test_error_combinators () =
  let open Seed_error in
  Alcotest.(check bool) "all_unit ok" true (all_unit [ Ok (); Ok () ] = Ok ());
  let e = Unknown_object "x" in
  Alcotest.(check bool) "all_unit err" true
    (all_unit [ Ok (); Error e ] = Error e);
  let r = map_result (fun x -> if x > 0 then Ok (x * 2) else Error e) [ 1; 2 ] in
  Alcotest.(check bool) "map_result" true (r = Ok [ 2; 4 ]);
  let r = map_result (fun x -> if x > 0 then Ok x else Error e) [ 1; -1; 2 ] in
  Alcotest.(check bool) "map_result stops" true (r = Error e)

let test_error_printing () =
  let open Seed_error in
  let non_empty e = String.length (to_string e) > 0 in
  List.iter
    (fun e -> Alcotest.(check bool) "printable" true (non_empty e))
    [
      Unknown_class "C";
      Unknown_association "A";
      Unknown_role ("A", "r");
      Unknown_object "o";
      Unknown_item "#1";
      Unknown_version "1.0";
      Unknown_procedure "p";
      Duplicate_name "n";
      Duplicate_class "c";
      Duplicate_association "a";
      Duplicate_version "1.0";
      Invalid_cardinality "x";
      Cardinality_violation
        { element = "e"; subject = "s"; bound = "max 1"; count = 2 };
      Type_mismatch { expected = "STRING"; got = "INT" };
      Membership_violation { expected = "Data"; got = "Thing"; context = "c" };
      Cycle_detected "Contained";
      Not_in_generalization { item_class = "Data"; target = "X" };
      Vetoed { procedure = "p"; reason = "r" };
      Pattern_violation "m";
      Version_frozen "1.0";
      Unsaved_changes "1.0";
      Locked { item = "i"; holder = "h" };
      Invalid_operation "m";
      Schema_violation "m";
      Io_error "m";
      Corrupt "m";
    ]

let test_ok_exn () =
  Alcotest.(check int) "ok" 1 (Seed_error.ok_exn (Ok 1));
  Alcotest.check_raises "raises"
    (Seed_error.Error (Seed_error.Unknown_object "x"))
    (fun () -> ignore (Seed_error.ok_exn (Error (Seed_error.Unknown_object "x"))))

(* ------------------------------------------------------------------ *)
(* Retry                                                                *)
(* ------------------------------------------------------------------ *)

let test_retry_first_try_no_sleep () =
  let slept = ref [] in
  let r =
    Retry.with_retry ~sleep:(fun d -> slept := d :: !slept) (fun () -> Ok 42)
  in
  Alcotest.(check int) "value" 42 (ok r);
  Alcotest.(check (list (float 0.0))) "no sleeps" [] !slept

let test_retry_bounded_attempts () =
  let calls = ref 0 in
  let policy = { Retry.default_policy with Retry.attempts = 3 } in
  let r =
    Retry.with_retry ~policy ~sleep:(fun _ -> ()) (fun () ->
        incr calls;
        Seed_error.fail (Seed_error.Io_transient "flaky"))
  in
  Alcotest.(check int) "exactly attempts calls" 3 !calls;
  (* the exhausted transient is hardened: callers never see
     Io_transient escape the retry layer *)
  check_err "hardened to permanent"
    (function Seed_error.Io_error m -> String.length m > 0 | _ -> false)
    r

let test_retry_transient_then_ok () =
  let calls = ref 0 and slept = ref [] in
  let r =
    Retry.with_retry ~sleep:(fun d -> slept := d :: !slept) (fun () ->
        incr calls;
        if !calls < 3 then Seed_error.fail (Seed_error.Io_transient "eintr")
        else Ok "done")
  in
  Alcotest.(check string) "succeeds" "done" (ok r);
  Alcotest.(check int) "two backoffs" 2 (List.length !slept);
  Alcotest.(check bool) "delays positive" true (List.for_all (fun d -> d > 0.0) !slept);
  Alcotest.(check bool) "backoff grows" true
    (match !slept with [ d2; d1 ] -> d2 > d1 | _ -> false)

let test_retry_permanent_not_retried () =
  let calls = ref 0 in
  let r =
    Retry.with_retry ~sleep:(fun _ -> ()) (fun () ->
        incr calls;
        Seed_error.fail (Seed_error.Io_error "media died"))
  in
  Alcotest.(check int) "one call" 1 !calls;
  check_err "error verbatim"
    (function Seed_error.Io_error "media died" -> true | _ -> false)
    r

let test_retry_custom_should_retry () =
  let calls = ref 0 in
  let should_retry = function Seed_error.Corrupt _ -> !calls < 2 | _ -> false in
  let r =
    Retry.with_retry ~should_retry ~sleep:(fun _ -> ()) (fun () ->
        incr calls;
        Seed_error.fail (Seed_error.Corrupt "maybe a bad read"))
  in
  Alcotest.(check int) "retried once then surfaced" 2 !calls;
  check_err "corrupt stays corrupt"
    (function Seed_error.Corrupt _ -> true | _ -> false)
    r

let test_retry_delay_curve () =
  let p =
    { Retry.attempts = 10; base_delay = 0.001; max_delay = 0.05; multiplier = 2.0 }
  in
  (* deterministic: same attempt, same delay — replays are stable *)
  List.iter
    (fun a ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "attempt %d deterministic" a)
        (Retry.delay_for p ~attempt:a)
        (Retry.delay_for p ~attempt:a))
    [ 1; 2; 3; 7 ];
  (* jittered exponential: within [0.5x, 1x] of the nominal value,
     capped by max_delay *)
  List.iter
    (fun a ->
      let nominal = Float.min p.Retry.max_delay (0.001 *. (2.0 ** float_of_int (a - 1))) in
      let d = Retry.delay_for p ~attempt:a in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in band" a)
        true
        (d >= (0.5 *. nominal) -. 1e-12 && d <= nominal +. 1e-12))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  (* the cap holds even deep into the schedule *)
  Alcotest.(check bool) "capped" true
    (Retry.delay_for p ~attempt:40 <= p.Retry.max_delay)

let test_retry_on_retry_hook () =
  let seen = ref [] in
  let calls = ref 0 in
  let _ =
    Retry.with_retry ~policy:Retry.no_delay
      ~on_retry:(fun ~attempt e -> seen := (attempt, e) :: !seen)
      (fun () ->
        incr calls;
        if !calls < 3 then Seed_error.fail (Seed_error.Io_transient "x")
        else Ok ())
  in
  Alcotest.(check (list int)) "attempts reported" [ 1; 2 ]
    (List.rev_map fst !seen)

(* deadline-based retry: a virtual clock advanced by the injected sleep
   makes the whole schedule observable in zero wall time *)
let deadline_harness ?(policy = Retry.default_policy) ~deadline f =
  let clock = ref 0.0 and sleeps = ref [] in
  let r =
    Retry.with_deadline ~policy
      ~sleep:(fun d ->
        sleeps := d :: !sleeps;
        clock := !clock +. d)
      ~now:(fun () -> !clock)
      ~deadline f
  in
  (r, !clock, List.rev !sleeps)

let test_deadline_retries_until_deadline () =
  let calls = ref 0 in
  let r, clock, sleeps =
    deadline_harness ~deadline:0.5 (fun () ->
        incr calls;
        Seed_error.fail (Seed_error.Io_transient "down"))
  in
  Alcotest.(check bool) "many attempts" true (!calls > Retry.default_policy.Retry.attempts);
  (* no sleep may extend past the deadline: the clamp spends the tail of
     the window on one shortened wait, so the clock lands exactly on it *)
  Alcotest.(check (float 1e-9)) "stopped at the deadline" 0.5 clock;
  Alcotest.(check bool) "sleeps all positive" true
    (List.for_all (fun d -> d > 0.0) sleeps);
  check_err "hardened to permanent"
    (function Seed_error.Io_error _ -> true | _ -> false)
    r

let test_deadline_success_midway () =
  let calls = ref 0 in
  let r, clock, _ =
    deadline_harness ~deadline:10.0 (fun () ->
        incr calls;
        if !calls < 4 then Seed_error.fail (Seed_error.Io_transient "warming up")
        else Ok "up")
  in
  Alcotest.(check string) "succeeds" "up" (ok r);
  Alcotest.(check int) "four calls" 4 !calls;
  Alcotest.(check bool) "well before the deadline" true (clock < 10.0)

let test_deadline_ignores_attempt_count () =
  (* the policy's [attempts] bounds [with_retry], not [with_deadline]:
     only the clock ends this loop *)
  let calls = ref 0 in
  let policy = { Retry.default_policy with Retry.attempts = 1 } in
  let r, _, _ =
    deadline_harness ~policy ~deadline:0.1 (fun () ->
        incr calls;
        Seed_error.fail (Seed_error.Io_transient "flaky"))
  in
  Alcotest.(check bool) "more than [attempts] calls" true (!calls > 1);
  check_err "still hardened"
    (function Seed_error.Io_error _ -> true | _ -> false)
    r

let test_deadline_permanent_not_retried () =
  let calls = ref 0 in
  let r, _, sleeps =
    deadline_harness ~deadline:10.0 (fun () ->
        incr calls;
        Seed_error.fail (Seed_error.Io_error "media died"))
  in
  Alcotest.(check int) "one call" 1 !calls;
  Alcotest.(check (list (float 0.0))) "no sleeps" [] sleeps;
  check_err "error verbatim"
    (function Seed_error.Io_error "media died" -> true | _ -> false)
    r

let test_deadline_already_expired () =
  (* a deadline in the past still grants exactly one try — callers get
     one honest attempt, never a synthetic failure *)
  let calls = ref 0 in
  let r, _, sleeps =
    deadline_harness ~deadline:(-1.0) (fun () ->
        incr calls;
        Seed_error.fail (Seed_error.Io_transient "late"))
  in
  Alcotest.(check int) "one call" 1 !calls;
  Alcotest.(check (list (float 0.0))) "no sleeps" [] sleeps;
  check_err "hardened immediately"
    (function Seed_error.Io_error _ -> true | _ -> false)
    r

let () =
  Alcotest.run "util"
    [
      ( "path",
        [
          tc "parse simple" test_path_parse_simple;
          tc "parse nested" test_path_parse_nested;
          tc "roundtrip composed" (path_roundtrip "Alarms.Text.Body.Keywords[1]");
          tc "roundtrip plain" (path_roundtrip "A.B.C");
          tc "parent" test_path_parent;
          tc "child" test_path_child;
          tc "malformed inputs" test_path_bad;
          tc "class path strips indices" test_path_class_path;
          tc "prefix" test_path_prefix;
          tc "compare" test_path_compare;
          prop_path_roundtrip;
        ] );
      ( "version-id",
        [
          tc "trunk" test_vid_trunk;
          tc "child labels" test_vid_child;
          tc "parse" test_vid_parse;
          tc "lexicographic order" test_vid_order;
          tc "invalid arguments" test_vid_invalid_args;
          prop_vid_roundtrip;
        ] );
      ( "ident",
        [ tc "generator" test_ident_gen; tc "mark_used" test_ident_mark_used ] );
      ( "error",
        [
          tc "combinators" test_error_combinators;
          tc "printing" test_error_printing;
          tc "ok_exn" test_ok_exn;
        ] );
      ( "retry",
        [
          tc "first try, no sleep" test_retry_first_try_no_sleep;
          tc "bounded attempts" test_retry_bounded_attempts;
          tc "transient then ok" test_retry_transient_then_ok;
          tc "permanent not retried" test_retry_permanent_not_retried;
          tc "custom should_retry" test_retry_custom_should_retry;
          tc "delay curve" test_retry_delay_curve;
          tc "on_retry hook" test_retry_on_retry_hook;
        ] );
      ( "retry-deadline",
        [
          tc "retries until the deadline" test_deadline_retries_until_deadline;
          tc "success midway" test_deadline_success_midway;
          tc "ignores the attempt count" test_deadline_ignores_attempt_count;
          tc "permanent not retried" test_deadline_permanent_not_retried;
          tc "already expired" test_deadline_already_expired;
        ] );
    ]
