(* An evolutionary specification session with the SPADES tool layer:
   informal, incomplete and vague information first, formality grown step
   by step, milestones saved, maturity tracked — the development style
   the paper's Concepts section describes.

   Run with: dune exec examples/spades_workflow.exe *)

open Seed_util
module S = Spades_tool.Spades
module DB = Seed_core.Database

let ok = Seed_error.ok_exn

let show t label =
  Fmt.pr "@.-- %s --@.%a@." label S.pp_maturity (S.maturity t)

let () =
  let t = S.create () in

  (* Session 1: brain dump. Nothing is classified yet. *)
  List.iter
    (fun (name, description) ->
      ignore (ok (S.note_thing t name ~description ())))
    [
      ("Alarms", "Alarms are represented in an alarm display matrix");
      ("ProcessData", "Raw values sampled from the plant");
      ("Sensor", "Watches process data");
      ("AlarmHandler", "Generates alarms from process data");
      ("OperatorAlert", "Rings the operator");
    ];
  show t "after the first brain dump";
  let m1 = ok (S.save_milestone t) in
  Fmt.pr "milestone %a saved@." Version_id.pp m1;

  (* Session 2: data flows appear, still partly vague. *)
  let f1 = ok (S.add_flow t ~data:"ProcessData" ~action:"Sensor" S.Vague) in
  let f2 = ok (S.add_flow t ~data:"ProcessData" ~action:"AlarmHandler" S.Vague) in
  let f3 = ok (S.add_flow t ~data:"Alarms" ~action:"AlarmHandler" S.Vague) in
  ok (S.classify_action t "OperatorAlert");
  ignore (ok (S.contain t ~container:"AlarmHandler" ~action:"OperatorAlert"));
  show t "after sketching the data flows";
  let m2 = ok (S.save_milestone t) in
  Fmt.pr "milestone %a saved@." Version_id.pp m2;

  (* Session 3: precision. The handler turns out to GENERATE alarms. *)
  ok (S.refine_flow t f1 S.Reading);
  ok (S.refine_flow t f3 S.Writing);
  show t "after refining two flows";

  (* The remaining gaps are found by the completeness machinery. *)
  let diags = (S.maturity t).S.diagnostics in
  Fmt.pr "@.the tool's to-do list:@.";
  List.iter
    (fun d -> Fmt.pr "  * %a@." Seed_core.Completeness.pp_diagnostic d)
    diags;

  (* Session 4: finishing up — and being caught by the checker. Alarms
     became OutputData when f3 turned into a Write; letting the operator
     alert READ it would contradict that, and SEED refuses. *)
  (match S.add_flow t ~data:"Alarms" ~action:"OperatorAlert" S.Reading with
  | Error e ->
    Fmt.pr "@.consistency check caught a modelling conflict:@.  %s@."
      (Seed_error.to_string e)
  | Ok _ -> assert false);
  (* the alert writes its own output instead *)
  ignore (ok (S.note_thing t "OperatorMessage" ()));
  ignore (ok (S.add_flow t ~data:"OperatorMessage" ~action:"OperatorAlert" S.Writing));
  ok (S.refine_flow t f2 S.Reading);
  ok (S.set_revised t "Alarms" { Seed_schema.Value.year = 1986; month = 2; day = 5 });
  show t "after the last refinements";
  Fmt.pr "@.implementable: %b@." (S.is_implementable t);
  let m3 = ok (S.save_milestone t) in
  Fmt.pr "milestone %a saved@." Version_id.pp m3;

  (* Rollback to prior states is always possible. *)
  let db = S.db t in
  ok (DB.select_version db (Some m1));
  Fmt.pr "@.in milestone %a the database held %d objects, all vague@."
    Version_id.pp m1 (DB.object_count db);
  ok (DB.select_version db None)
