(* Durable storage and the multi-user sketch: a specification repository
   on disk, edited by two cooperating clients through the central server
   (paper, §Discussion).

   Run with: dune exec examples/persistent_repo.exe *)

open Seed_util
module DB = Seed_core.Database
module Persist = Seed_core.Persist
module Server = Seed_server.Server
module Client = Seed_server.Client
module Protocol = Seed_server.Protocol

let ok = Seed_error.ok_exn

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "seed_repo_example" in
  (* wipe any previous run *)
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir)
  end;

  (* --- a durable session ------------------------------------------- *)
  let session =
    ok (Persist.Session.open_ ~dir ~schema:Spades_tool.Spec_model.schema ())
  in
  let db = Persist.Session.db session in
  let alarms = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let handler = ok (DB.create_object db ~cls:"Action" ~name:"AlarmHandler" ()) in
  let _ = ok (DB.create_relationship db ~assoc:"Access" ~endpoints:[ alarms; handler ] ()) in
  let _v1 = ok (DB.create_version db) in
  ok (Persist.Session.flush session);
  Fmt.pr "flushed %d journal records to %s@."
    (Persist.Session.journal_records session)
    dir;
  ok (Persist.Session.compact session);
  Fmt.pr "compacted into a snapshot; journal now holds %d records@."
    (Persist.Session.journal_records session);
  Persist.Session.close session;

  (* --- reopen: everything is still there ---------------------------- *)
  let session = ok (Persist.Session.open_ ~dir ()) in
  let db = Persist.Session.db session in
  Fmt.pr "reopened: %d objects, %d saved versions@." (DB.object_count db)
    (List.length (DB.versions db));
  Persist.Session.close session;

  (* --- the two-level multi-user approach ----------------------------- *)
  Fmt.pr "@.-- central server with two clients --@.";
  let server = Server.create Spades_tool.Spec_model.schema in
  let sdb = Server.database server in
  let _ = ok (DB.create_object sdb ~cls:"Data" ~name:"Alarms" ()) in
  let _ = ok (DB.create_object sdb ~cls:"Action" ~name:"Sensor" ()) in
  let _ = ok (DB.create_object sdb ~cls:"Action" ~name:"Logger" ()) in

  let alice = Client.connect server ~name:"alice" in
  let bob = Client.connect server ~name:"bob" in

  (* alice checks out the alarm cluster; bob is blocked on it but can
     work elsewhere *)
  ok (Client.checkout alice [ "Alarms"; "Sensor" ]);
  (match Client.checkout bob [ "Alarms" ] with
  | Error e -> Fmt.pr "bob blocked as expected: %s@." (Seed_error.to_string e)
  | Ok () -> assert false);
  ok (Client.checkout bob [ "Logger" ]);

  Client.stage alice
    (Protocol.Reclassify_obj { name = "Alarms"; to_ = "OutputData" });
  Client.stage alice
    (Protocol.Create_rel
       { assoc = "Write"; endpoints = [ "Alarms"; "Sensor" ]; pattern = false });
  Client.stage bob
    (Protocol.Create_sub
       {
         owner = "Logger";
         role = "Description";
         index = None;
         value = Some (Seed_schema.Value.String "Writes the audit log");
       });

  ok (Client.commit alice);
  ok (Client.commit bob);
  Fmt.pr "both check-ins applied; server count = %d@."
    (Server.checkin_count server);

  let v = ok (Server.create_version server) in
  Fmt.pr "server-controlled version %a created@." Version_id.pp v;
  Fmt.pr "Alarms is now: %s@."
    (Option.get (DB.class_of sdb (Option.get (DB.find_object sdb "Alarms"))))
