examples/spades_workflow.mli:
