examples/persistent_repo.mli:
