examples/schema_evolution.mli:
