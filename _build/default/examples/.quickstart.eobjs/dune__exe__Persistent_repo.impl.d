examples/persistent_repo.ml: Array Filename Fmt List Option Seed_core Seed_error Seed_schema Seed_server Seed_util Spades_tool Sys Version_id
