examples/spades_workflow.ml: Fmt List Seed_core Seed_error Seed_schema Seed_util Spades_tool Version_id
