examples/alarm_system.ml: Fmt Ident List Option Seed_core Seed_error Seed_schema Seed_util Spades_tool Value Version_id
