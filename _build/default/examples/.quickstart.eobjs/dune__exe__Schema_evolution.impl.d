examples/schema_evolution.ml: Fmt List Schema Schema_diff Schema_text Seed_core Seed_error Seed_schema Seed_util Value Version_id
