examples/alarm_system.mli:
