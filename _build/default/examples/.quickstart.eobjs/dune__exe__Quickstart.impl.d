examples/quickstart.ml: Assoc_def Cardinality Class_def Fmt List Option Schema Seed_core Seed_error Seed_schema Seed_util Value Value_type Version_id
