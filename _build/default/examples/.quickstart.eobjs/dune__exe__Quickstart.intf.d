examples/quickstart.mli:
