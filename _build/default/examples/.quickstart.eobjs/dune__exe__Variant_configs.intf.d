examples/variant_configs.mli:
