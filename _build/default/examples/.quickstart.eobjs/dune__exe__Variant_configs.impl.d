examples/variant_configs.ml: Assoc_def Cardinality Class_def Fmt Ident List Option Schema Seed_core Seed_error Seed_schema Seed_util String Value_type Version_id
