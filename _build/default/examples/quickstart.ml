(* Quickstart: define a small schema, store vague information, refine it,
   check completeness, and take a version snapshot.

   Run with: dune exec examples/quickstart.exe *)

open Seed_util
open Seed_schema
module DB = Seed_core.Database

let ok = Seed_error.ok_exn

let () =
  (* 1. A schema: documents and authors, with a generalized 'Involved'
     association that can later be refined to 'Wrote' or 'Reviewed'. *)
  let schema =
    Schema.of_defs_exn
      [
        Class_def.v ~covering:true [ "Person" ];
        Class_def.v ~super:"Person" [ "Author" ];
        Class_def.v ~super:"Person" [ "Reviewer" ];
        Class_def.v [ "Document" ];
        Class_def.v ~card:Cardinality.opt ~content:Value_type.String
          [ "Document"; "Title" ];
        Class_def.v ~card:(Cardinality.between 0 4)
          ~content:Value_type.String
          [ "Document"; "Tags" ];
      ]
      [
        Assoc_def.v "Involved"
          [
            Assoc_def.role ~card:Cardinality.any "who" "Person";
            Assoc_def.role ~card:(Cardinality.at_least 1) "what" "Document";
          ];
        Assoc_def.v ~super:"Involved" "Wrote"
          [ Assoc_def.role "who" "Author"; Assoc_def.role "what" "Document" ];
        Assoc_def.v ~super:"Involved" "Reviewed"
          [ Assoc_def.role "who" "Reviewer"; Assoc_def.role "what" "Document" ];
      ]
  in
  let db = DB.create schema in

  (* 2. Enter information as vague as it currently is. *)
  let martin = ok (DB.create_object db ~cls:"Person" ~name:"Martin" ()) in
  let paper = ok (DB.create_object db ~cls:"Document" ~name:"SEED-Paper" ()) in
  let _ =
    ok
      (DB.create_sub_object db ~parent:paper ~role:"Title"
         ~value:(Value.String "SEED - A DBMS for Software Engineering Applications")
         ())
  in
  let involvement =
    ok (DB.create_relationship db ~assoc:"Involved" ~endpoints:[ martin; paper ] ())
  in
  Fmt.pr "Stored: %s involved with %s@."
    (Option.get (DB.full_name db martin))
    (Option.get (DB.full_name db paper));

  (* 3. Completeness is checked only on demand. *)
  let report = DB.completeness_report db in
  Fmt.pr "@.Completeness report (%d findings):@." (List.length report);
  List.iter
    (fun d -> Fmt.pr "  - %a@." Seed_core.Completeness.pp_diagnostic d)
    report;

  (* 4. Save this state, then make the information more precise. *)
  let v1 = ok (DB.create_version db) in
  Fmt.pr "@.Saved version %a@." Version_id.pp v1;

  ok (DB.reclassify db martin ~to_:"Author");
  ok (DB.reclassify db involvement ~to_:"Wrote");
  Fmt.pr "Refined: Martin is an Author who Wrote the paper@.";
  Fmt.pr "Complete now? %b@." (DB.is_complete db);

  let v2 = ok (DB.create_version db) in
  Fmt.pr "Saved version %a@." Version_id.pp v2;

  (* 5. Old versions remain retrievable, unchanged. *)
  ok (DB.select_version db (Some v1));
  Fmt.pr "@.In version %a, Martin was classified as: %s@." Version_id.pp v1
    (Option.get (DB.class_of db martin));
  ok (DB.select_version db None);
  Fmt.pr "In the current version, Martin is: %s@."
    (Option.get (DB.class_of db martin))
