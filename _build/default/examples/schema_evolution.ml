(* Schema evolution and schema versions: "when the schema is modified,
   the interpretation of versions that were created before this
   modification becomes a problem; therefore, we must generate schema
   versions, too" (paper, §Versions).

   Run with: dune exec examples/schema_evolution.exe *)

open Seed_util
open Seed_schema
module DB = Seed_core.Database
module View = Seed_core.View

let ok = Seed_error.ok_exn

let v1_text =
  {|
// revision 1: documents and people
class Document {
  Title : STRING [0..1]
}
class Person

assoc Wrote (author : Person, what : Document)
|}

let v2_text =
  {|
// revision 2: documents gained tags and review status; people are
// specialized; reviews arrived
class Document {
  Title : STRING [0..1]
  Tags : STRING [0..8]
}
class Person covering
class Author isa Person
class Reviewer isa Person

assoc Wrote (author : Person, what : Document)
assoc Reviewed (reviewer : Reviewer, what : Document) {
  Verdict : ENUM(accept,reject,revise) required
}
|}

let () =
  let schema_v1 = ok (Schema_text.parse v1_text) in
  let schema_v2 = ok (Schema_text.parse v2_text) in

  Fmt.pr "-- changes from revision 1 to revision 2 --@.";
  List.iter
    (fun c ->
      Fmt.pr "  %a  [%s]@." Schema_diff.pp_change c
        (match Schema_diff.classify c with
        | Schema_diff.Compatible -> "compatible"
        | Schema_diff.Incompatible -> "incompatible"))
    (Schema_diff.diff schema_v1 schema_v2);
  Fmt.pr "overall compatible: %b@.@." (Schema_diff.compatible schema_v1 schema_v2);

  (* live migration *)
  let db = DB.create schema_v1 in
  let paper = ok (DB.create_object db ~cls:"Document" ~name:"SEED-Paper" ()) in
  let martin = ok (DB.create_object db ~cls:"Person" ~name:"Martin" ()) in
  let _ = ok (DB.create_relationship db ~assoc:"Wrote" ~endpoints:[ martin; paper ] ()) in
  let old_version = ok (DB.create_version db) in
  Fmt.pr "version %a saved under schema revision 1@." Version_id.pp old_version;

  (match DB.update_schema db schema_v2 with
  | Ok () -> Fmt.pr "schema updated to revision %d@." (Schema.revision (DB.schema db))
  | Error e -> Fmt.pr "schema update refused: %s@." (Seed_error.to_string e));

  (* the new capabilities exist immediately *)
  ok (DB.reclassify db martin ~to_:"Author");
  let reviewer = ok (DB.create_object db ~cls:"Reviewer" ~name:"Ludewig" ()) in
  let review =
    ok (DB.create_relationship db ~assoc:"Reviewed" ~endpoints:[ reviewer; paper ] ())
  in
  ok (DB.set_rel_attr db review "Verdict" (Some (Value.Enum "accept")));
  let _ = ok (DB.create_sub_object db ~parent:paper ~role:"Tags" ~value:(Value.String "dbms") ()) in
  let new_version = ok (DB.create_version db) in
  Fmt.pr "version %a saved under schema revision 2@.@." Version_id.pp new_version;

  (* old versions keep their old schema *)
  let old_view = ok (DB.view_at db old_version) in
  Fmt.pr "version %a sees schema revision %d (has Reviewer: %b)@."
    Version_id.pp old_version
    (Schema.revision (View.schema old_view))
    (Schema.find_class (View.schema old_view) "Reviewer" <> None);
  let new_view = ok (DB.view_at db new_version) in
  Fmt.pr "version %a sees schema revision %d (has Reviewer: %b)@."
    Version_id.pp new_version
    (Schema.revision (View.schema new_view))
    (Schema.find_class (View.schema new_view) "Reviewer" <> None);

  (* an incompatible change is refused while data depends on it *)
  Fmt.pr "@.-- attempting an incompatible change --@.";
  let shrunk =
    ok
      (Schema_text.parse
         {|
class Document {
  Title : STRING [0..1]
  Tags : STRING [0..0]
}
class Person covering
class Author isa Person
class Reviewer isa Person
assoc Wrote (author : Person, what : Document)
assoc Reviewed (reviewer : Reviewer, what : Document) {
  Verdict : ENUM(accept,reject,revise) required
}
|})
  in
  (match DB.update_schema db shrunk with
  | Ok () -> Fmt.pr "unexpectedly accepted@."
  | Error e -> Fmt.pr "refused, as it must be: %s@." (Seed_error.to_string e));
  Fmt.pr "schema still at revision %d@." (Schema.revision (DB.schema db))
