(* Fig. 5 of the paper: a variants family. A set of system
   configurations shares most of its software modules (the common part)
   but differs in some hardware-dependent modules (the variant parts).
   The connections between common and variant parts are pattern
   relationships, so pattern semantics guarantee that every variant has
   the same relationships to the common part.

   Run with: dune exec examples/variant_configs.exe *)

open Seed_util
open Seed_schema
module DB = Seed_core.Database
module Variant = Seed_core.Variant
module View = Seed_core.View

let ok = Seed_error.ok_exn

let schema =
  Schema.of_defs_exn
    [
      Class_def.v [ "Module" ];
      Class_def.v ~card:Cardinality.opt ~content:Value_type.String
        [ "Module"; "Platform" ];
      Class_def.v [ "Config" ];
    ]
    [
      Assoc_def.v "Uses"
        [
          Assoc_def.role ~card:Cardinality.any "user" "Config";
          Assoc_def.role ~card:Cardinality.any "used" "Module";
        ];
    ]

let () =
  let db = DB.create schema in

  (* the common part: software modules every configuration ships *)
  let kernel = ok (DB.create_object db ~cls:"Module" ~name:"Kernel" ()) in
  let netstack = ok (DB.create_object db ~cls:"Module" ~name:"NetStack" ()) in
  let ui = ok (DB.create_object db ~cls:"Module" ~name:"UI" ()) in

  (* pattern objects PO1/PO2 of Fig. 5: stand-ins wired to the common
     part through pattern relationships PR1/PR2 *)
  let po = ok (DB.create_object db ~cls:"Config" ~name:"StandardConfig" ~pattern:true ()) in
  List.iter
    (fun common ->
      ignore
        (ok
           (Variant.connect_common db ~pattern:po ~assoc:"Uses"
              ~pattern_role:"user" ~common)))
    [ kernel; netstack; ui ];
  Fmt.pr "pattern 'StandardConfig' wired to 3 common modules@.";

  (* the variant parts: one configuration per hardware platform *)
  let mk_variant name platform_module =
    let cfg = ok (DB.create_object db ~cls:"Config" ~name ()) in
    ok (Variant.add_variant db ~member:cfg ~patterns:[ po ]);
    let hw = ok (DB.create_object db ~cls:"Module" ~name:platform_module ()) in
    let _ =
      ok (DB.create_relationship db ~assoc:"Uses" ~endpoints:[ cfg; hw ] ())
    in
    cfg
  in
  let vax = mk_variant "Config-VAX" "Driver-VAX" in
  let m68k = mk_variant "Config-68k" "Driver-68k" in
  Fmt.pr "variants: Config-VAX and Config-68k created@.";

  (* every variant sees the common modules through inheritance *)
  let v = DB.view db in
  let show_config id =
    let item = Option.get (Seed_core.Db_state.find_item (DB.raw db) id) in
    let uses =
      View.rels_v v item
      |> List.filter_map (fun (vr : View.vrel) ->
             List.find_opt (fun e -> not (Ident.equal e id)) vr.View.endpoints)
      |> List.filter_map (fun e ->
             Option.bind
               (Seed_core.Db_state.find_item (DB.raw db) e)
               (View.full_name v))
      |> List.sort String.compare
    in
    Fmt.pr "  %s uses: %a@."
      (Option.get (DB.full_name db id))
      Fmt.(list ~sep:(any ", ") string)
      uses
  in
  show_config vax;
  show_config m68k;

  Fmt.pr "@.family invariant (same connections to the common part): %b@."
    (Variant.shares_common v ~patterns:[ po ]);

  (* evolving the common part once updates every variant *)
  let crypto = ok (DB.create_object db ~cls:"Module" ~name:"Crypto" ()) in
  let _ =
    ok (Variant.connect_common db ~pattern:po ~assoc:"Uses" ~pattern_role:"user"
          ~common:crypto)
  in
  Fmt.pr "@.added 'Crypto' to the common part (one update):@.";
  show_config vax;
  show_config m68k;

  (* contrast with versions: an alternative is a different database
     state, not a coexisting variant *)
  let v1 = ok (DB.create_version db) in
  ok (DB.begin_alternative db ~from_:v1 ());
  ok (DB.delete db m68k);
  let alt = ok (DB.create_version db) in
  Fmt.pr
    "@.alternative %a drops Config-68k entirely; variant family in %a is \
     untouched@."
    Version_id.pp alt Version_id.pp v1;
  ok (DB.begin_alternative db ~from_:v1 ());
  Fmt.pr "members on the basis of %a: %d@." Version_id.pp v1
    (List.length (Variant.members (DB.view db) ~patterns:[ po ]))
