(* The paper's running example, Figures 1-4: the alarm-handling
   specification, entered vaguely, refined step by step, and versioned.

   Run with: dune exec examples/alarm_system.exe *)

open Seed_util
open Seed_schema
module DB = Seed_core.Database
module History = Seed_core.History

let ok = Seed_error.ok_exn

let banner title = Fmt.pr "@.== %s ==@." title

let show_report db =
  let report = DB.completeness_report db in
  if report = [] then Fmt.pr "  (the specification is complete)@."
  else
    List.iter
      (fun d -> Fmt.pr "  incomplete: %a@." Seed_core.Completeness.pp_diagnostic d)
      report

let () =
  let db = DB.create Spades_tool.Spec_model.schema in

  banner "Step 1 - vague entry (Fig. 3: 'there is a thing with name Alarms')";
  let alarms = ok (DB.create_object db ~cls:"Thing" ~name:"Alarms" ()) in
  let handler = ok (DB.create_object db ~cls:"Thing" ~name:"AlarmHandler" ()) in
  let _ =
    ok
      (DB.create_sub_object db ~parent:handler ~role:"Description"
         ~value:(Value.String "Handles alarms") ())
  in
  Fmt.pr "  entered %s and %s as bare Things@."
    (Option.get (DB.full_name db alarms))
    (Option.get (DB.full_name db handler));
  show_report db;

  banner "Step 2 - first milestone (version 1.0 of Fig. 4)";
  let v1 = ok (DB.create_version db) in
  Fmt.pr "  saved as %a@." Version_id.pp v1;

  banner "Step 3 - refinement: Alarms is data, read by the handler";
  ok (DB.reclassify db alarms ~to_:"Data");
  ok (DB.reclassify db handler ~to_:"Action");
  let access =
    ok (DB.create_relationship_named db ~assoc:"Access"
          ~bindings:[ ("from", alarms); ("by", handler) ] ())
  in
  Fmt.pr "  Access relationship %a established@." Ident.pp access;
  (* Fig. 1's textual annotation *)
  let text = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  let _ =
    ok
      (DB.create_sub_object db ~parent:text ~role:"Body"
         ~value:(Value.String "Alarms are represented in an alarm display matrix")
         ())
  in
  let _ =
    ok
      (DB.create_sub_object db ~parent:text ~role:"Selector"
         ~value:(Value.String "Representation") ())
  in
  List.iter
    (fun kw ->
      ignore
        (ok
           (DB.create_sub_object db ~parent:alarms ~role:"Keywords"
              ~value:(Value.String kw) ())))
    [ "Alarmhandling"; "Display" ];
  Fmt.pr "  annotated: %s = %s@."
    (Option.get (DB.full_name db (Option.get (DB.resolve db "Alarms.Text[0].Body"))))
    (match DB.get_value db (Option.get (DB.resolve db "Alarms.Text[0].Body")) with
    | Some v -> Value.to_string v
    | None -> "(undefined)");
  show_report db;

  banner "Step 4 - second milestone, then full precision";
  let v2 = ok (DB.create_version db) in
  Fmt.pr "  saved as %a@." Version_id.pp v2;
  ok (DB.reclassify db alarms ~to_:"InputData");
  ok (DB.reclassify db access ~to_:"Read");
  let d =
    ok (DB.resolve db "AlarmHandler.Description" |> Option.to_result ~none:(Seed_error.Unknown_object "AlarmHandler.Description"))
  in
  ok (DB.set_value db d
        (Some (Value.String "Generates alarms from process data, triggers Operator Alert")));
  show_report db;
  let v3 = ok (DB.create_version db) in
  Fmt.pr "  saved as %a@." Version_id.pp v3;

  banner "Step 5 - Fig. 4 views: the same question in three versions";
  let describe_at version =
    (match version with
    | Some v -> ok (DB.select_version db (Some v))
    | None -> ok (DB.select_version db None));
    let cls = Option.get (DB.class_of db alarms) in
    let desc =
      match DB.resolve db "AlarmHandler.Description" with
      | Some id -> (
        match DB.get_value db id with
        | Some v -> Value.to_string v
        | None -> "(undefined)")
      | None -> "(no description)"
    in
    let label =
      match version with
      | Some v -> Version_id.to_string v
      | None -> "current"
    in
    Fmt.pr "  [%s] Alarms : %s; AlarmHandler.Description = %s@." label cls desc
  in
  describe_at (Some v1);
  describe_at (Some v2);
  describe_at None;
  ok (DB.select_version db None);

  banner "Step 6 - history navigation";
  let entries = ok (History.versions_of_object db "AlarmHandler" ()) in
  Fmt.pr "  all stored versions of AlarmHandler:@.";
  List.iter (fun e -> Fmt.pr "    %a@." History.pp_entry e) entries;
  let d_id = Option.get (DB.resolve db "AlarmHandler.Description") in
  let entries = ok (History.versions_of db d_id ~from_:v2 ()) in
  Fmt.pr "  versions of its description beginning with %a:@." Version_id.pp v2;
  List.iter (fun e -> Fmt.pr "    %a@." History.pp_entry e) entries;

  banner "Step 7 - exploring an alternative from 1.0";
  ok (DB.begin_alternative db ~from_:v1 ());
  Fmt.pr "  back on the basis of %a: Alarms is a %s again@." Version_id.pp v1
    (Option.get (DB.class_of db alarms));
  (* in this alternative, Alarms turns out to be an output *)
  ok (DB.reclassify db alarms ~to_:"OutputData");
  ok (DB.reclassify db handler ~to_:"Action");
  let _ =
    ok (DB.create_relationship db ~assoc:"Write" ~endpoints:[ alarms; handler ] ())
  in
  let alt = ok (DB.create_version db) in
  Fmt.pr "  alternative saved as %a@." Version_id.pp alt;
  Fmt.pr "@.version tree:@.";
  List.iter
    (fun (n : Seed_core.Versioning.node) ->
      Fmt.pr "  %a%s@." Version_id.pp n.Seed_core.Versioning.vid
        (match n.Seed_core.Versioning.parent with
        | Some p -> "  (derived from " ^ Version_id.to_string p ^ ")"
        | None -> ""))
    (DB.versions db)
