(* Data import/export: roundtrips, values, patterns, error paths. *)

open Seed_util
open Seed_schema
open Helpers
module DB = Seed_core.Database
module DT = Seed_core.Data_text

let populated () =
  let db = fresh_db () in
  let alarms = ok (DB.create_object db ~cls:"OutputData" ~name:"Alarms" ()) in
  let sensor = ok (DB.create_object db ~cls:"Action" ~name:"Sensor" ()) in
  let _ =
    ok
      (DB.create_sub_object db ~parent:alarms ~role:"Description"
         ~value:(Value.String "alarm \"store\"\nwith newline") ())
  in
  let text = ok (DB.create_sub_object db ~parent:alarms ~role:"Text" ()) in
  let _ =
    ok (DB.create_sub_object db ~parent:text ~role:"Body" ~value:(Value.String "b") ())
  in
  let _ =
    ok
      (DB.create_sub_object db ~parent:alarms ~role:"Keywords"
         ~value:(Value.String "Alarmhandling") ())
  in
  let _ =
    ok
      (DB.create_sub_object db ~parent:sensor ~role:"Revised"
         ~value:(Value.date 1986 2 5) ())
  in
  let w = ok (DB.create_relationship db ~assoc:"Write" ~endpoints:[ alarms; sensor ] ()) in
  check_ok "attr" (DB.set_rel_attr db w "NumberOfWrites" (Some (Value.Int 3)));
  check_ok "attr2" (DB.set_rel_attr db w "OnError" (Some (Value.Enum "repeat")));
  (* a pattern family *)
  let po = ok (DB.create_object db ~cls:"Data" ~name:"Template" ~pattern:true ()) in
  let _ =
    ok
      (DB.create_sub_object db ~parent:po ~role:"Description"
         ~value:(Value.String "std") ())
  in
  let real = ok (DB.create_object db ~cls:"Data" ~name:"Real" ()) in
  check_ok "inherit" (DB.inherit_pattern db ~pattern:po ~inheritor:real);
  let _ =
    ok
      (DB.create_relationship db ~assoc:"Access" ~endpoints:[ po; sensor ]
         ~pattern:true ())
  in
  db

let test_export_shape () =
  let db = populated () in
  let text = DT.export_view (DB.view db) in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "object header" true (contains "object Alarms : OutputData {");
  Alcotest.(check bool) "escaped string" true
    (contains "Description = \"alarm \\\"store\\\"\\nwith newline\"");
  Alcotest.(check bool) "date" true (contains "Revised = 1986-02-05");
  Alcotest.(check bool) "pattern header" true (contains "pattern Template : Data {");
  Alcotest.(check bool) "inherits" true (contains "inherits (Template)");
  Alcotest.(check bool) "rel" true (contains "rel Write (Alarms, Sensor) {");
  Alcotest.(check bool) "attr" true (contains "NumberOfWrites = 3");
  Alcotest.(check bool) "enum attr" true (contains "OnError = repeat");
  Alcotest.(check bool) "pattern rel" true
    (contains "pattern rel Access (Template, Sensor)")

let test_roundtrip () =
  let db = populated () in
  let text = DT.export_view (DB.view db) in
  let db2 = fresh_db () in
  check_ok "import" (DT.import db2 text);
  let text2 = DT.export_view (DB.view db2) in
  Alcotest.(check string) "stable roundtrip" text text2;
  (* and the semantics carried over *)
  Alcotest.(check int) "objects" (DB.object_count db) (DB.object_count db2);
  let real = Option.get (DB.find_object db2 "Real") in
  Alcotest.(check int) "inheritance restored" 1
    (List.length
       (Seed_core.View.children_v (DB.view db2)
          (Seed_core.View.vitem_real
             (Option.get (Seed_core.Db_state.find_item (DB.raw db2) real)))))

let test_import_is_checked () =
  let db = fresh_db () in
  check_err "unknown class"
    (function Seed_error.Unknown_class _ -> true | _ -> false)
    (DT.import db "object X : Nope\n");
  check_err "bad membership" is_membership
    (DT.import db
       "object D : Thing\nobject A : Action\nrel Read (D, A)\n");
  check_err "duplicate" is_duplicate
    (DT.import db "object A : Action\nobject A : Action\n")

let test_import_syntax_errors () =
  let db = fresh_db () in
  List.iter
    (fun src ->
      check_err src
        (function Seed_error.Invalid_operation _ -> true | _ -> false)
        (DT.import db src))
    [
      "object";
      "object X";
      "object X : C {";
      "wibble Y : C";
      "object X : C = @";
      "rel R (A";
      "object X : C { Sub = \"unterminated }";
      "object X : C { Sub = 1986-13 }";
    ]

let test_value_forms () =
  let schema =
    Schema.of_defs_exn
      [
        Class_def.v [ "Box" ];
        Class_def.v ~card:Cardinality.opt ~content:Value_type.Int [ "Box"; "I" ];
        Class_def.v ~card:Cardinality.opt ~content:Value_type.Float [ "Box"; "F" ];
        Class_def.v ~card:Cardinality.opt ~content:Value_type.Bool [ "Box"; "B" ];
        Class_def.v ~card:Cardinality.opt ~content:Value_type.Date [ "Box"; "D" ];
        Class_def.v ~card:Cardinality.opt
          ~content:(Value_type.Enum [ "on"; "off" ])
          [ "Box"; "E" ];
      ]
      []
  in
  let db = DB.create schema in
  let b = ok (DB.create_object db ~cls:"Box" ~name:"b" ()) in
  List.iter
    (fun (role, v) ->
      ignore (ok (DB.create_sub_object db ~parent:b ~role ~value:v ())))
    [
      ("I", Value.Int (-42));
      ("F", Value.Float 2.5);
      ("B", Value.Bool true);
      ("D", Value.date 2000 2 29);
      ("E", Value.Enum "off");
    ];
  let text = DT.export_view (DB.view db) in
  let db2 = DB.create schema in
  check_ok "import" (DT.import db2 text);
  let get role = DB.get_value db2 (Option.get (DB.resolve db2 ("b." ^ role))) in
  Alcotest.(check bool) "int" true (get "I" = Some (Value.Int (-42)));
  Alcotest.(check bool) "float" true (get "F" = Some (Value.Float 2.5));
  Alcotest.(check bool) "bool" true (get "B" = Some (Value.Bool true));
  Alcotest.(check bool) "date" true (get "D" = Some (Value.date 2000 2 29));
  Alcotest.(check bool) "enum" true (get "E" = Some (Value.Enum "off"))

let test_export_respects_versions () =
  let db = fresh_db () in
  let a = ok (DB.create_object db ~cls:"Thing" ~name:"A" ()) in
  let v1 = ok (DB.create_version db) in
  ok (DB.reclassify db a ~to_:"Data");
  let _v2 = ok (DB.create_version db) in
  let old_text = DT.export_view (ok (DB.view_at db v1)) in
  let now_text = DT.export_view (DB.view db) in
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "old class" true (contains old_text "object A : Thing");
  Alcotest.(check bool) "new class" true (contains now_text "object A : Data")

(* randomised roundtrip: build a random database through the API, then
   export → import → export must be a fixed point *)
let random_ops_gen =
  let open QCheck2.Gen in
  list_size (int_range 0 40)
    (frequency
       [
         (4, map2 (fun i c -> `Obj (i, c)) (int_bound 20)
            (oneofl [ "Thing"; "Data"; "Action"; "InputData"; "OutputData" ]));
         (1, map (fun i -> `Pattern i) (int_bound 20));
         (3, map2 (fun p s -> `Sub (p, s)) (int_bound 20)
            (oneofl [ "Description"; "Keywords"; "Revised" ]));
         (2, map2 (fun a b -> `Rel (a, b)) (int_bound 20) (int_bound 20));
         (1, map2 (fun p i -> `Inherit (p, i)) (int_bound 20) (int_bound 20));
       ])

let prop_random_roundtrip =
  qcheck_case ~count:80 "random databases roundtrip" random_ops_gen (fun ops ->
      let db = fresh_db () in
      let objects = ref [] and patterns = ref [] in
      let pick xs i =
        match xs with [] -> None | _ -> Some (List.nth xs (i mod List.length xs))
      in
      List.iter
        (fun op ->
          match op with
          | `Obj (i, cls) -> (
            match
              DB.create_object db ~cls ~name:(Printf.sprintf "o%d" i) ()
            with
            | Ok id -> objects := id :: !objects
            | Error _ -> ())
          | `Pattern i -> (
            match
              DB.create_object db ~cls:"Data" ~name:(Printf.sprintf "p%d" i)
                ~pattern:true ()
            with
            | Ok id -> patterns := id :: !patterns
            | Error _ -> ())
          | `Sub (p, role) -> (
            match pick (!objects @ !patterns) p with
            | Some parent ->
              let value =
                if role = "Revised" then Value.date 1986 2 5
                else Value.String "v"
              in
              ignore (DB.create_sub_object db ~parent ~role ~value ())
            | None -> ())
          | `Rel (a, b) -> (
            match (pick !objects a, pick !objects b) with
            | Some x, Some y ->
              ignore
                (DB.create_relationship db ~assoc:"Access" ~endpoints:[ x; y ] ())
            | _ -> ())
          | `Inherit (p, i) -> (
            match (pick !patterns p, pick !objects i) with
            | Some pattern, Some inheritor ->
              ignore (DB.inherit_pattern db ~pattern ~inheritor)
            | _ -> ()))
        ops;
      let text = DT.export_view (DB.view db) in
      let db2 = fresh_db () in
      match DT.import db2 text with
      | Error _ -> false
      | Ok () -> String.equal text (DT.export_view (DB.view db2)))

let test_import_empty_and_comments () =
  let db = fresh_db () in
  check_ok "empty" (DT.import db "");
  check_ok "only comments" (DT.import db "// nothing here\n// at all\n");
  Alcotest.(check int) "no objects" 0 (DB.object_count db)

let () =
  Alcotest.run "data_text"
    [
      ( "export",
        [
          tc "shape" test_export_shape;
          tc "versions" test_export_respects_versions;
        ] );
      ( "roundtrip",
        [
          tc "full" test_roundtrip;
          tc "value forms" test_value_forms;
          prop_random_roundtrip;
        ] );
      ( "import",
        [
          tc "consistency checked" test_import_is_checked;
          tc "syntax errors" test_import_syntax_errors;
          tc "empty input" test_import_empty_and_comments;
        ] );
    ]
