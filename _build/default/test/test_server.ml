(* The multi-user sketch: central server, write locks, single-transaction
   check-in (paper, §Discussion / open problems). *)

open Seed_util
open Helpers
module Server = Seed_server.Server
module Client = Seed_server.Client
module Protocol = Seed_server.Protocol
module DB = Seed_core.Database

let schema () = fig3_schema ()

let with_seeded_server () =
  let s = Server.create (schema ()) in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Alarms" ()) in
  let _ = ok (DB.create_object db ~cls:"Action" ~name:"Handler" ()) in
  s

let test_checkout_locks () =
  let s = with_seeded_server () in
  check_ok "alice" (Server.checkout s ~client:"alice" ~names:[ "Alarms" ]);
  Alcotest.(check (list string)) "alice holds" [ "Alarms" ]
    (Server.locked_by s ~client:"alice");
  check_err "bob blocked"
    (function Seed_error.Locked _ -> true | _ -> false)
    (Server.checkout s ~client:"bob" ~names:[ "Alarms" ]);
  (* disjoint checkout fine *)
  check_ok "bob other" (Server.checkout s ~client:"bob" ~names:[ "Handler" ]);
  (* all-or-nothing: overlapping set acquires nothing *)
  check_err "partial conflict"
    (function Seed_error.Locked _ -> true | _ -> false)
    (Server.checkout s ~client:"bob" ~names:[ "Handler"; "Alarms" ]);
  Server.release s ~client:"alice";
  check_ok "bob after release" (Server.checkout s ~client:"bob" ~names:[ "Alarms" ])

let test_checkout_requires_existing () =
  let s = with_seeded_server () in
  check_err "ghost"
    (function Seed_error.Unknown_object _ -> true | _ -> false)
    (Server.checkout s ~client:"alice" ~names:[ "Ghost" ])

let test_checkin_requires_locks () =
  let s = with_seeded_server () in
  check_err "unlocked write"
    (function Seed_error.Invalid_operation _ -> true | _ -> false)
    (Server.checkin s ~client:"alice"
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" } ])

let test_checkin_applies_and_releases () =
  let s = with_seeded_server () in
  check_ok "checkout" (Server.checkout s ~client:"alice" ~names:[ "Alarms"; "Handler" ]);
  check_ok "checkin"
    (Server.checkin s ~client:"alice"
       [
         Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" };
         Protocol.Create_rel
           { assoc = "Read"; endpoints = [ "Alarms"; "Handler" ]; pattern = false };
         Protocol.Create_sub
           {
             owner = "Alarms";
             role = "Description";
             index = None;
             value = Some (Seed_schema.Value.String "checked in");
           };
       ]);
  let db = Server.database s in
  let alarms = Option.get (DB.find_object db "Alarms") in
  Alcotest.(check (option string)) "applied" (Some "InputData") (DB.class_of db alarms);
  Alcotest.(check int) "rel there" 1 (List.length (DB.relationships db alarms));
  Alcotest.(check (list string)) "locks released" []
    (Server.locked_by s ~client:"alice");
  Alcotest.(check int) "counted" 1 (Server.checkin_count s)

let test_checkin_is_atomic () =
  let s = with_seeded_server () in
  check_ok "checkout" (Server.checkout s ~client:"alice" ~names:[ "Alarms"; "Handler" ]);
  (* second op fails (Read needs InputData); first must be rolled back *)
  check_err "fails"
    (function Seed_error.Membership_violation _ -> true | _ -> false)
    (Server.checkin s ~client:"alice"
       [
         Protocol.Rename { name = "Alarms"; new_name = "Alerts" };
         Protocol.Create_rel
           { assoc = "Read"; endpoints = [ "Alerts"; "Handler" ]; pattern = false };
       ]);
  let db = Server.database s in
  Alcotest.(check bool) "rename rolled back" true (DB.find_object db "Alarms" <> None);
  Alcotest.(check (option Alcotest.reject)) "no Alerts" None (DB.find_object db "Alerts");
  (* locks kept so the client can amend and retry *)
  Alcotest.(check bool) "locks kept" true (Server.locked_by s ~client:"alice" <> []);
  check_ok "retry"
    (Server.checkin s ~client:"alice"
       [
         Protocol.Reclassify_obj { name = "Alarms"; to_ = "InputData" };
         Protocol.Rename { name = "Alarms"; new_name = "Alerts" };
         Protocol.Create_rel
           { assoc = "Read"; endpoints = [ "Alerts"; "Handler" ]; pattern = false };
       ]);
  Alcotest.(check bool) "applied after retry" true (DB.find_object db "Alerts" <> None)

let test_two_clients_disjoint_edits () =
  let s = with_seeded_server () in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Config" ()) in
  check_ok "alice" (Server.checkout s ~client:"alice" ~names:[ "Alarms" ]);
  check_ok "bob" (Server.checkout s ~client:"bob" ~names:[ "Config" ]);
  check_ok "alice in"
    (Server.checkin s ~client:"alice"
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "OutputData" } ]);
  check_ok "bob in"
    (Server.checkin s ~client:"bob"
       [ Protocol.Reclassify_obj { name = "Config"; to_ = "InputData" } ]);
  Alcotest.(check (option string)) "alice's edit" (Some "OutputData")
    (DB.class_of db (Option.get (DB.find_object db "Alarms")));
  Alcotest.(check (option string)) "bob's edit" (Some "InputData")
    (DB.class_of db (Option.get (DB.find_object db "Config")))

let test_client_api () =
  let s = with_seeded_server () in
  let alice = Client.connect s ~name:"alice" in
  check_ok "checkout" (Client.checkout alice [ "Alarms" ]);
  Client.stage alice (Protocol.Reclassify_obj { name = "Alarms"; to_ = "Data" });
  Client.stage alice
    (Protocol.Create_sub
       { owner = "Alarms"; role = "Keywords"; index = None;
         value = Some (Seed_schema.Value.String "alarm") });
  Alcotest.(check int) "staged" 2 (List.length (Client.staged alice));
  check_ok "commit" (Client.commit alice);
  Alcotest.(check int) "queue cleared" 0 (List.length (Client.staged alice));
  Alcotest.(check bool) "visible" true (Client.retrieve alice "Alarms" <> None)

let test_client_abort () =
  let s = with_seeded_server () in
  let alice = Client.connect s ~name:"alice" in
  check_ok "checkout" (Client.checkout alice [ "Alarms" ]);
  Client.stage alice (Protocol.Delete { path = "Alarms" });
  Client.abort alice;
  Alcotest.(check int) "queue dropped" 0 (List.length (Client.staged alice));
  Alcotest.(check (list string)) "locks released" []
    (Server.locked_by s ~client:"alice");
  let db = Server.database s in
  Alcotest.(check bool) "nothing applied" true (DB.find_object db "Alarms" <> None)

let test_versions_server_controlled () =
  let s = with_seeded_server () in
  let v1 = ok (Server.create_version s) in
  Alcotest.(check string) "1.0" "1.0" (Version_id.to_string v1);
  check_ok "checkout" (Server.checkout s ~client:"alice" ~names:[ "Alarms" ]);
  check_ok "edit"
    (Server.checkin s ~client:"alice"
       [ Protocol.Reclassify_obj { name = "Alarms"; to_ = "OutputData" } ]);
  let v2 = ok (Server.create_version s) in
  Alcotest.(check string) "2.0" "2.0" (Version_id.to_string v2);
  (* the old version is still retrievable through the server's database *)
  let db = Server.database s in
  ok (DB.select_version db (Some v1));
  Alcotest.(check (option string)) "old state" (Some "Data")
    (DB.class_of db (Option.get (DB.find_object db "Alarms")));
  ok (DB.select_version db None)

let test_pattern_ops_through_protocol () =
  let s = Server.create (schema ()) in
  let db = Server.database s in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Template" ~pattern:true ()) in
  let _ = ok (DB.create_object db ~cls:"Data" ~name:"Instance" ()) in
  check_ok "checkout" (Server.checkout s ~client:"alice" ~names:[ "Template"; "Instance" ]);
  check_ok "inherit via protocol"
    (Server.checkin s ~client:"alice"
       [ Protocol.Inherit { pattern = "Template"; inheritor = "Instance" } ]);
  let p = Option.get (DB.find_pattern db "Template") in
  Alcotest.(check int) "inherited" 1 (List.length (DB.inheritors db p))

let test_protocol_printing () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "printable" true
        (String.length (Fmt.str "%a" Protocol.pp op) > 0))
    [
      Protocol.Create_object { cls = "Data"; name = "X"; pattern = true };
      Protocol.Create_sub { owner = "X"; role = "r"; index = Some 1; value = None };
      Protocol.Create_rel { assoc = "A"; endpoints = [ "X"; "Y" ]; pattern = false };
      Protocol.Set_value { path = "X.r"; value = None };
      Protocol.Rename { name = "X"; new_name = "Y" };
      Protocol.Reclassify_obj { name = "X"; to_ = "Data" };
      Protocol.Reclassify_rel { assoc = "A"; endpoints = [ "X"; "Y" ]; to_ = "B" };
      Protocol.Delete { path = "X" };
      Protocol.Inherit { pattern = "P"; inheritor = "X" };
    ]

let () =
  Alcotest.run "server"
    [
      ( "locks",
        [
          tc "checkout" test_checkout_locks;
          tc "existence" test_checkout_requires_existing;
          tc "checkin needs locks" test_checkin_requires_locks;
        ] );
      ( "transactions",
        [
          tc "apply and release" test_checkin_applies_and_releases;
          tc "atomic rollback" test_checkin_is_atomic;
          tc "disjoint clients" test_two_clients_disjoint_edits;
        ] );
      ( "clients",
        [ tc "stage and commit" test_client_api; tc "abort" test_client_abort ] );
      ( "server features",
        [
          tc "global versions" test_versions_server_controlled;
          tc "patterns via protocol" test_pattern_ops_through_protocol;
          tc "protocol printing" test_protocol_printing;
        ] );
    ]
