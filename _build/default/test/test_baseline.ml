(* The baselines: the conventional store must refuse what SEED accepts,
   and full-copy versioning must cost what delta versioning avoids. *)

open Seed_schema
open Helpers
module Rigid = Seed_baseline.Rigid_store
module Raw = Seed_baseline.Raw_store

let rigid () = Rigid.create (fig3_schema ())

let alarms_cluster ?(name = "Alarms") ?(action = "Handler") () =
  ( [
      {
        Rigid.no_name = name;
        no_cls = "InputData";
        no_value = None;
        no_subs = [ ("Description", Some (Value.String "alarm store")) ];
      };
      { Rigid.no_name = action; no_cls = "Action"; no_value = None; no_subs = [] };
    ],
    [ { Rigid.nr_assoc = "Read"; nr_endpoints = [ name; action ] } ] )

let test_rigid_accepts_complete_cluster () =
  let t = rigid () in
  let objs, rels = alarms_cluster () in
  check_ok "cluster" (Rigid.insert_cluster t ~objs ~rels);
  Alcotest.(check bool) "alarms there" true (Rigid.mem t "Alarms");
  Alcotest.(check (option string)) "class" (Some "InputData") (Rigid.class_of t "Alarms");
  Alcotest.(check int) "objects" 2 (Rigid.object_count t);
  Alcotest.(check int) "rels" 1 (Rigid.rel_count t)

let test_rigid_refuses_incomplete () =
  (* the paper's example (2): a bare Action without its Access violates
     the minimum — the conventional store refuses it outright *)
  let t = rigid () in
  check_err "action alone" is_cardinality
    (Rigid.insert_cluster t
       ~objs:[ { Rigid.no_name = "H"; no_cls = "Action"; no_value = None; no_subs = [] } ]
       ~rels:[])

let test_rigid_refuses_vague () =
  (* no covering class membership: 'there is a thing' cannot be stored *)
  let t = rigid () in
  check_err "thing refused"
    (function Seed_util.Seed_error.Schema_violation _ -> true | _ -> false)
    (Rigid.insert_cluster t
       ~objs:[ { Rigid.no_name = "X"; no_cls = "Thing"; no_value = None; no_subs = [] } ]
       ~rels:[]);
  (* nor a vague Access relationship *)
  let objs, _ = alarms_cluster () in
  check_err "access refused"
    (function Seed_util.Seed_error.Schema_violation _ -> true | _ -> false)
    (Rigid.insert_cluster t ~objs
       ~rels:[ { Rigid.nr_assoc = "Access"; nr_endpoints = [ "Alarms"; "Handler" ] } ])

let test_rigid_all_or_nothing () =
  let t = rigid () in
  let objs, _ = alarms_cluster () in
  (* bad relationship: nothing of the cluster lands *)
  check_err "bad rel" is_membership
    (Rigid.insert_cluster t ~objs
       ~rels:[ { Rigid.nr_assoc = "Read"; nr_endpoints = [ "Handler"; "Alarms" ] } ]);
  Alcotest.(check int) "nothing inserted" 0 (Rigid.object_count t)

let test_rigid_membership_and_types () =
  let t = rigid () in
  check_err "bad value type" is_type
    (Rigid.insert_cluster t
       ~objs:
         [
           {
             Rigid.no_name = "X";
             no_cls = "InputData";
             no_value = None;
             no_subs = [ ("Description", Some (Value.Int 3)) ];
           };
           { Rigid.no_name = "H"; no_cls = "Action"; no_value = None; no_subs = [] };
         ]
       ~rels:[ { Rigid.nr_assoc = "Read"; nr_endpoints = [ "X"; "H" ] } ])

let test_rigid_duplicate () =
  let t = rigid () in
  let objs, rels = alarms_cluster () in
  check_ok "first" (Rigid.insert_cluster t ~objs ~rels);
  let objs2, rels2 = alarms_cluster ~action:"Handler2" () in
  check_err "duplicate name" is_duplicate (Rigid.insert_cluster t ~objs:objs2 ~rels:rels2)

let test_rigid_acyclic () =
  let t = rigid () in
  (* two mutually contained actions; give each a Read to satisfy minima *)
  let mk_action n = { Rigid.no_name = n; no_cls = "Action"; no_value = None; no_subs = [] } in
  let data n = { Rigid.no_name = n; no_cls = "InputData"; no_value = None; no_subs = [] } in
  check_err "cycle" is_cycle
    (Rigid.insert_cluster t
       ~objs:[ mk_action "A"; mk_action "B"; data "D1"; data "D2" ]
       ~rels:
         [
           { Rigid.nr_assoc = "Read"; nr_endpoints = [ "D1"; "A" ] };
           { Rigid.nr_assoc = "Read"; nr_endpoints = [ "D2"; "B" ] };
           { Rigid.nr_assoc = "Contained"; nr_endpoints = [ "A"; "B" ] };
           { Rigid.nr_assoc = "Contained"; nr_endpoints = [ "B"; "A" ] };
         ])

let test_rigid_delete_referential_integrity () =
  let t = rigid () in
  let objs, rels = alarms_cluster () in
  check_ok "insert" (Rigid.insert_cluster t ~objs ~rels);
  (* deleting Alarms would leave Handler below its Access minimum *)
  check_err "refused" is_cardinality (Rigid.delete_object t "Alarms");
  (* deleting Handler first is also refused: Alarms would... actually
     Alarms (InputData) has no minimum on Read.from = 0..*, but Handler's
     deletion leaves Alarms fine; Access.by 1..* binds actions only *)
  check_err "handler load-bearing for itself" is_cardinality
    (Rigid.delete_object t "Alarms")

let test_rigid_set_value () =
  let t = rigid () in
  let objs, rels = alarms_cluster () in
  check_ok "insert" (Rigid.insert_cluster t ~objs ~rels);
  check_ok "set sub value"
    (Rigid.set_value t ~name:"Alarms" ~role:("Description", 0) (Value.String "new"));
  Alcotest.(check bool) "updated" true
    (Rigid.sub_values t "Alarms" ~role:"Description" = [ Value.String "new" ]);
  check_err "bad type" is_type
    (Rigid.set_value t ~name:"Alarms" ~role:("Description", 0) (Value.Int 1))

let test_full_copy_versioning () =
  let t = rigid () in
  let objs, rels = alarms_cluster () in
  check_ok "insert" (Rigid.insert_cluster t ~objs ~rels);
  let snap1 = Rigid.Full_copy.take t in
  let objs2, rels2 = alarms_cluster ~name:"Events" ~action:"H2" () in
  check_ok "more data" (Rigid.insert_cluster t ~objs:objs2 ~rels:rels2);
  let snap2 = Rigid.Full_copy.take t in
  (* full copies grow with the database, not with the delta *)
  Alcotest.(check bool) "copies grow" true
    (Rigid.Full_copy.size_bytes snap2 > Rigid.Full_copy.size_bytes snap1);
  Rigid.Full_copy.restore t snap1;
  Alcotest.(check int) "restored" 2 (Rigid.object_count t);
  Alcotest.(check bool) "events gone" false (Rigid.mem t "Events");
  Rigid.Full_copy.restore t snap2;
  Alcotest.(check bool) "events back" true (Rigid.mem t "Events")

let test_raw_store () =
  let t = Raw.create () in
  Raw.put_object t ~name:"A" ~cls:"Data";
  Raw.put_object t ~name:"B" ~cls:"Action";
  Raw.set_attr t ~name:"A" ~attr:"Description" (Value.String "d");
  Raw.add_rel t ~assoc:"Read" ~from_:"A" ~to_:"B";
  Alcotest.(check bool) "mem" true (Raw.mem t "A");
  Alcotest.(check (option string)) "class" (Some "Data") (Raw.class_of t "A");
  Alcotest.(check bool) "attr" true
    (Raw.get_attr t ~name:"A" ~attr:"Description" = Some (Value.String "d"));
  Alcotest.(check int) "rels" 1 (List.length (Raw.rels_of t "A"));
  (* no checking whatsoever: nonsense goes straight in *)
  Raw.add_rel t ~assoc:"Read" ~from_:"Ghost" ~to_:"Phantom";
  Alcotest.(check int) "nonsense accepted" 2 (Raw.rel_count t);
  Raw.delete_object t "A";
  Alcotest.(check bool) "gone" false (Raw.mem t "A");
  Alcotest.(check int) "rels pruned" 1 (Raw.rel_count t)

let test_seed_vs_rigid_divergence () =
  (* the headline behavioural difference, side by side: the same
     evolutionary workload succeeds step-by-step in SEED and is
     impossible stepwise in the conventional store *)
  let module DB = Seed_core.Database in
  let seed = fresh_db () in
  check_ok "seed step 1"
    (Result.map (fun _ -> ()) (DB.create_object seed ~cls:"Thing" ~name:"Alarms" ()));
  let t = rigid () in
  check_err "rigid step 1 impossible"
    (function Seed_util.Seed_error.Schema_violation _ -> true | _ -> false)
    (Rigid.insert_cluster t
       ~objs:[ { Rigid.no_name = "Alarms"; no_cls = "Thing"; no_value = None; no_subs = [] } ]
       ~rels:[])

let () =
  Alcotest.run "baseline"
    [
      ( "rigid store",
        [
          tc "accepts complete clusters" test_rigid_accepts_complete_cluster;
          tc "refuses incomplete (paper ex. 2)" test_rigid_refuses_incomplete;
          tc "refuses vague (paper ex. 1)" test_rigid_refuses_vague;
          tc "all-or-nothing" test_rigid_all_or_nothing;
          tc "membership and types" test_rigid_membership_and_types;
          tc "duplicates" test_rigid_duplicate;
          tc "acyclic" test_rigid_acyclic;
          tc "referential integrity on delete" test_rigid_delete_referential_integrity;
          tc "value updates" test_rigid_set_value;
        ] );
      ( "full-copy versioning", [ tc "snapshots" test_full_copy_versioning ] );
      ( "raw store", [ tc "no checking" test_raw_store ] );
      ( "divergence", [ tc "seed vs rigid" test_seed_vs_rigid_divergence ] );
    ]
